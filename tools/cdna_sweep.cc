/**
 * @file
 * `cdna_sweep`: parallel experiment-sweep driver.
 *
 * One binary regenerates every paper artifact (and the repository's
 * extension/ablation sweeps) from the shared presets, running the
 * expanded grid on a work-stealing thread pool:
 *
 *   cdna_sweep --preset table2                      # one artifact
 *   cdna_sweep --preset fig3 -j 8 --seeds 5 --out fig3.json
 *   cdna_sweep --preset paper -j 8 --out paper.json # tables 1-4 + figs
 *   cdna_sweep --list                               # available presets
 *
 * Per-run JSON inside --out is byte-identical for any -j and matches a
 * standalone run of the same configuration at the same seed (see
 * sim/sweep.hh for the determinism contract).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sim/sweep.hh"
#include "sim/sweep_presets.hh"
#include "sim/thread_pool.hh"

using namespace cdna;

namespace {

constexpr const char *kUsage =
    "usage: cdna_sweep --preset NAME [options]\n"
    "\n"
    "presets:\n"
    "  --preset NAME       experiment preset to expand and run; 'paper'\n"
    "                      runs tables 1-4 and figures 3-4 in sequence\n"
    "  --list              print the available presets and exit\n"
    "\n"
    "execution (never affects results):\n"
    "  -j, --jobs N        worker threads (default: hardware threads)\n"
    "  --seeds N           run each cell with seeds 1..N (default 1)\n"
    "  --out FILE          write the sweep JSON document to FILE\n"
    "                      ('paper' appends the preset name per file)\n"
    "  --quiet             suppress per-run progress lines\n"
    "  --help              this text\n";

struct Args
{
    std::vector<std::string> presets;
    unsigned jobs = 0; // 0 = defaultThreadCount()
    std::uint32_t seeds = 1;
    std::string out;
    bool quiet = false;
};

bool
needValue(int argc, char **argv, int *i, const char *flag,
          std::string *value)
{
    if (*i + 1 >= argc) {
        std::fprintf(stderr, "cdna_sweep: %s needs a value\n", flag);
        return false;
    }
    *value = argv[++*i];
    return true;
}

/** Print a compact per-cell summary table for one finished sweep. */
void
printSummary(const sim::SweepResult &result)
{
    std::printf("%-28s %5s %10s %9s %8s %8s\n", "cell", "n", "Mb/s",
                "+-ci95", "idle%", "gstIrq/s");
    for (const auto &cell : result.cells) {
        double mbps = 0, ci = 0, idle = 0, irq = 0;
        for (const auto &[name, st] : cell.metrics) {
            if (!std::strcmp(name.c_str(), "mbps")) {
                mbps = st.mean;
                ci = st.ci95;
            } else if (!std::strcmp(name.c_str(), "idle_pct")) {
                idle = st.mean;
            } else if (!std::strcmp(name.c_str(),
                                    "guest_intr_per_sec")) {
                irq = st.mean;
            }
        }
        std::printf("%-28s %5zu %10.0f %9.1f %8.1f %8.0f\n",
                    cell.cell.c_str(), cell.runs, mbps, ci, idle, irq);
    }
}

int
runOne(const std::string &name, const Args &args)
{
    auto spec = sim::presets::byName(name);
    if (!spec) {
        std::fprintf(stderr, "cdna_sweep: unknown preset '%s' "
                             "(--list shows the choices)\n",
                     name.c_str());
        return 1;
    }
    spec->seeds(args.seeds);

    sim::SweepOptions opt;
    opt.jobs = args.jobs;
    if (!args.quiet) {
        opt.onResult = [](const sim::RunResult &r, std::size_t done,
                          std::size_t total) {
            std::fprintf(stderr, "  [%zu/%zu] %s seed=%llu: %.0f Mb/s\n",
                         done, total, r.point.cell.c_str(),
                         static_cast<unsigned long long>(r.point.seed),
                         r.report.mbps);
        };
    }

    std::size_t totalRuns = spec->expand().size();
    unsigned jobs = args.jobs ? args.jobs : sim::defaultThreadCount();
    std::fprintf(stderr, "=== %s: %zu runs on %u worker(s) ===\n",
                 name.c_str(), totalRuns, jobs);

    auto t0 = std::chrono::steady_clock::now();
    sim::SweepResult result = sim::runSweep(*spec, opt);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    std::fprintf(stderr, "=== %s: done in %.2f s ===\n", name.c_str(),
                 wall);

    printSummary(result);

    if (!args.out.empty()) {
        std::string path = args.out;
        if (args.presets.size() > 1) {
            // Several presets share --out: suffix each with its name.
            std::size_t dot = path.rfind('.');
            std::string stem =
                dot == std::string::npos ? path : path.substr(0, dot);
            std::string ext =
                dot == std::string::npos ? "" : path.substr(dot);
            path = stem + "-" + name + ext;
        }
        std::ofstream f(path, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "cdna_sweep: cannot write %s\n",
                         path.c_str());
            return 1;
        }
        f << sim::sweepToJson(result);
        std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        std::string v;
        // Accept --opt=value as well as --opt value.
        std::size_t eq = a.find('=');
        bool inlineValue = a.size() > 2 && a.compare(0, 2, "--") == 0 &&
                           eq != std::string::npos;
        if (inlineValue) {
            v = a.substr(eq + 1);
            a = a.substr(0, eq);
        }
        auto value = [&](const char *flag) {
            return inlineValue ? !v.empty()
                               : needValue(argc, argv, &i, flag, &v);
        };

        if (a == "--help" || a == "-h") {
            std::printf("%s", kUsage);
            return 0;
        } else if (a == "--list") {
            for (const auto &[name, make] : sim::presets::all()) {
                auto spec = make();
                std::printf("  %-12s %zu runs/seed\n", name.c_str(),
                            spec.expand().size());
            }
            return 0;
        } else if (a == "--preset") {
            if (!value("--preset"))
                return 1;
            if (v == "paper")
                args.presets = {"table1", "table2", "table3",
                                "table4", "fig3",   "fig4"};
            else
                args.presets.push_back(v);
        } else if (a == "-j" || a == "--jobs") {
            if (!value("--jobs"))
                return 1;
            args.jobs = static_cast<unsigned>(std::strtoul(
                v.c_str(), nullptr, 10));
            if (args.jobs == 0) {
                std::fprintf(stderr,
                             "cdna_sweep: --jobs needs a positive "
                             "integer\n");
                return 1;
            }
        } else if (a == "--seeds") {
            if (!value("--seeds"))
                return 1;
            args.seeds = static_cast<std::uint32_t>(std::strtoul(
                v.c_str(), nullptr, 10));
            if (args.seeds == 0) {
                std::fprintf(stderr,
                             "cdna_sweep: --seeds needs a positive "
                             "integer\n");
                return 1;
            }
        } else if (a == "--out") {
            if (!value("--out"))
                return 1;
            args.out = v;
        } else if (a == "--quiet") {
            args.quiet = true;
        } else {
            std::fprintf(stderr, "cdna_sweep: unknown option %s\n%s",
                         a.c_str(), kUsage);
            return 1;
        }
    }

    if (args.presets.empty()) {
        std::fprintf(stderr, "cdna_sweep: --preset is required\n%s",
                     kUsage);
        return 1;
    }

    for (const std::string &name : args.presets) {
        int rc = runOne(name, args);
        if (rc)
            return rc;
    }
    return 0;
}
