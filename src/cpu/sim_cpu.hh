/**
 * @file
 * Single-core CPU execution model with virtual CPUs.
 *
 * All simulated software runs here.  Work is expressed as Tasks (a cost
 * in simulated time, an accounting bucket, and a completion callback)
 * posted to a Vcpu; the hypervisor's own work (hypercalls, interrupt
 * dispatch, domain switches) runs at higher priority through
 * runHypervisor().  A boost-on-wake round-robin scheduler approximates
 * Xen's credit scheduler in the I/O-bound regime the paper measures.
 *
 * Two costs make multi-guest scaling behave like the real machine
 * (paper figures 3-4): a per-domain-switch hypervisor cost, and a
 * cold-cache surcharge added to the first task a domain runs after
 * being switched in.
 */

#ifndef CDNA_CPU_SIM_CPU_HH
#define CDNA_CPU_SIM_CPU_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cpu/exec_profile.hh"
#include "mem/phys_memory.hh"
#include "sim/sim_object.hh"

namespace cdna::cpu {

class SimCpu;

/** Scheduling parameters of the CPU model. */
struct CpuParams
{
    /** Hypervisor cost of switching the CPU between domains. */
    sim::Time domainSwitchCost = sim::microseconds(0.9);
    /**
     * Cold-cache/TLB surcharge added to the first task a domain runs
     * after being switched in (models the cache pollution the paper's
     * scalability curves reflect).
     */
    sim::Time cacheColdSurcharge = sim::microseconds(1.4);
    /** Round-robin slice before a busy vCPU is rotated. */
    sim::Time slice = sim::milliseconds(30);
    /**
     * Cache/TLB contention between guest working sets: with n guest
     * vCPUs active within contentionWindow, every domain task costs
     * (1 + alpha * (1 - 1/n)) times its base cost.  Calibrated against
     * the paper's figures 3-4: it is what makes Xen's aggregate
     * bandwidth fall and CDNA's idle time vanish as guests are added,
     * while single-guest (n = 1) results are unaffected.
     */
    double cacheContentionAlpha = 0.90;
    sim::Time contentionWindow = sim::milliseconds(30);
    /**
     * Anti-starvation (the fairness half of Xen's credit scheduler):
     * after this many consecutive boosted dispatches, the oldest
     * non-boosted runnable vCPU gets the CPU even if boosted work is
     * pending.
     */
    std::uint32_t boostStreakLimit = 12;
};

/**
 * A virtual CPU belonging to one domain.
 *
 * Tasks run in FIFO order; interrupt-context tasks (postIrq) run before
 * process-context tasks and wake the vCPU with scheduler boost.
 */
class Vcpu
{
  public:
    Vcpu(SimCpu &cpu, mem::DomainId dom, std::string name, int weight);

    Vcpu(const Vcpu &) = delete;
    Vcpu &operator=(const Vcpu &) = delete;

    /** Post process-context work (application / kernel thread). */
    void post(Bucket bucket, sim::Time cost,
              std::function<void()> done = {});

    /** Post interrupt-context work; wakes the vCPU with boost. */
    void postIrq(Bucket bucket, sim::Time cost,
                 std::function<void()> done = {});

    mem::DomainId domain() const { return dom_; }
    const std::string &name() const { return name_; }
    int weight() const { return weight_; }

    /** Whether this vCPU's working set contends for the cache (guests). */
    void setContends(bool on) { contends_ = on; }
    bool contends() const { return contends_; }

    /** True when no work is queued (the vCPU would block). */
    bool idle() const { return irqQ_.empty() && normalQ_.empty(); }

    std::size_t queuedTasks() const { return irqQ_.size() + normalQ_.size(); }

  private:
    friend class SimCpu;

    struct Task
    {
        Bucket bucket;
        sim::Time cost;
        std::function<void()> done;
    };

    enum class State { kBlocked, kRunnable, kRunning };

    SimCpu &cpu_;
    mem::DomainId dom_;
    std::string name_;
    int weight_;
    sim::Tracer::LaneId traceLane_ = 0;
    bool contends_ = false;
    sim::Time lastRan_ = std::numeric_limits<sim::Time>::min() / 2;
    State state_ = State::kBlocked;
    bool boosted_ = false;
    bool ranSinceSched_ = false;
    sim::Time sliceUsed_ = 0;
    std::deque<Task> irqQ_;
    std::deque<Task> normalQ_;
};

/** The single physical CPU of the simulated host. */
class SimCpu : public sim::SimObject
{
  public:
    SimCpu(sim::SimContext &ctx, std::string name, CpuParams params = {});

    /** Create a vCPU for @p dom.  The SimCpu owns the returned object. */
    Vcpu &createVcpu(mem::DomainId dom, std::string name, int weight = 1);

    /**
     * Run hypervisor work at priority above all domains.
     * @param cost CPU time consumed
     * @param done invoked when the work completes
     */
    void runHypervisor(sim::Time cost, std::function<void()> done = {});

    /** Accumulated execution profile. */
    ExecProfile &profile() { return profile_; }
    const ExecProfile &profile() const { return profile_; }

    /** Discard accounting so far; the measurement window starts now. */
    void resetAccounting();

    /** Start of the current measurement window. */
    sim::Time accountingStart() const { return accountingStart_; }

    /** Elapsed time in the current measurement window. */
    sim::Time elapsed() const { return now() - accountingStart_; }

    /** Flush any in-progress idle span into the profile (call before
     *  reading the profile). */
    void syncIdle();

    std::uint64_t domainSwitches() const { return nSwitches_.value(); }
    std::uint64_t tasksRun() const { return nTasks_.value(); }
    std::uint64_t hvItemsRun() const { return nHvItems_.value(); }

    const CpuParams &params() const { return params_; }

  private:
    friend class Vcpu;

    struct HvItem
    {
        sim::Time cost;
        std::function<void()> done;
    };

    /** A vCPU gained work; make it runnable and kick the CPU. */
    void notifyWake(Vcpu *v, bool boost);

    void kick();
    void dispatch();
    void beginBusy();
    Vcpu *pickNext();
    void makeRunnable(Vcpu *v, bool boost);
    double contentionMultiplier() const;

    CpuParams params_;
    ExecProfile profile_;
    std::vector<std::unique_ptr<Vcpu>> vcpus_;

    std::deque<HvItem> hvQ_;
    std::deque<Vcpu *> runnable_; //!< boosted at front, normal at back
    Vcpu *current_ = nullptr;
    Vcpu *lastRan_ = nullptr; //!< last domain to occupy the CPU
    bool busy_ = false;
    bool idling_ = true;
    sim::Time idleSince_ = 0;
    sim::Time accountingStart_ = 0;
    bool surchargePending_ = false;
    std::uint32_t boostStreak_ = 0;
    sim::Tracer::LaneId hvLane_;

    sim::Counter &nSwitches_;
    sim::Counter &nTasks_;
    sim::Counter &nHvItems_;
};

} // namespace cdna::cpu

#endif // CDNA_CPU_SIM_CPU_HH
