#include "cpu/sim_cpu.hh"

#include <algorithm>
#include <utility>

#include "sim/assert.hh"

namespace cdna::cpu {

Vcpu::Vcpu(SimCpu &cpu, mem::DomainId dom, std::string name, int weight)
    : cpu_(cpu), dom_(dom), name_(std::move(name)), weight_(weight)
{
}

void
Vcpu::post(Bucket bucket, sim::Time cost, std::function<void()> done)
{
    normalQ_.push_back(Task{bucket, cost, std::move(done)});
    cpu_.notifyWake(this, false);
}

void
Vcpu::postIrq(Bucket bucket, sim::Time cost, std::function<void()> done)
{
    irqQ_.push_back(Task{bucket, cost, std::move(done)});
    cpu_.notifyWake(this, true);
}

SimCpu::SimCpu(sim::SimContext &ctx, std::string name, CpuParams params)
    : sim::SimObject(ctx, std::move(name)),
      params_(params),
      // Hypervisor execution spans share the hypervisor component's lane.
      hvLane_(ctx.tracer().lane("hypervisor")),
      nSwitches_(stats().addCounter("domain_switches")),
      nTasks_(stats().addCounter("tasks")),
      nHvItems_(stats().addCounter("hv_items"))
{
    idleSince_ = now();
}

Vcpu &
SimCpu::createVcpu(mem::DomainId dom, std::string name, int weight)
{
    vcpus_.push_back(std::make_unique<Vcpu>(*this, dom, std::move(name),
                                            weight));
    vcpus_.back()->traceLane_ = ctx().tracer().lane(vcpus_.back()->name());
    return *vcpus_.back();
}

void
SimCpu::runHypervisor(sim::Time cost, std::function<void()> done)
{
    SIM_ASSERT(cost >= 0, "negative hypervisor cost");
    hvQ_.push_back(HvItem{cost, std::move(done)});
    kick();
}

void
SimCpu::resetAccounting()
{
    syncIdle();
    profile_.reset();
    accountingStart_ = now();
}

void
SimCpu::syncIdle()
{
    if (idling_) {
        profile_.chargeIdle(now() - idleSince_);
        idleSince_ = now();
    }
}

void
SimCpu::notifyWake(Vcpu *v, bool boost)
{
    switch (v->state_) {
      case Vcpu::State::kRunning:
        // Already on the CPU; it will see the new task next dispatch.
        return;
      case Vcpu::State::kRunnable:
        if (boost && !v->boosted_) {
            // Promote within the runnable queue.
            auto it = std::find(runnable_.begin(), runnable_.end(), v);
            SIM_ASSERT(it != runnable_.end(), "runnable vcpu not queued");
            runnable_.erase(it);
            v->boosted_ = true;
            runnable_.push_front(v);
        }
        return;
      case Vcpu::State::kBlocked:
        makeRunnable(v, boost);
        kick();
        return;
    }
}

void
SimCpu::makeRunnable(Vcpu *v, bool boost)
{
    v->state_ = Vcpu::State::kRunnable;
    v->boosted_ = boost;
    if (boost) {
        // FIFO among boosted vCPUs: insert after the last boosted entry
        // so repeated wakes cannot systematically starve late arrivals.
        auto it = runnable_.begin();
        while (it != runnable_.end() && (*it)->boosted_)
            ++it;
        runnable_.insert(it, v);
    } else {
        runnable_.push_back(v);
    }
}

void
SimCpu::kick()
{
    if (!busy_)
        dispatch();
}

void
SimCpu::beginBusy()
{
    if (idling_) {
        profile_.chargeIdle(now() - idleSince_);
        idling_ = false;
    }
    busy_ = true;
}

Vcpu *
SimCpu::pickNext()
{
    if (current_) {
        Vcpu *cur = current_;
        bool has_tasks = !cur->idle();
        bool slice_ok = cur->sliceUsed_ < params_.slice;
        // A boosted waiter preempts -- but never before the current
        // vCPU has run at least one task since being scheduled, or a
        // steady stream of boosted wakeups could livelock it into
        // paying switch costs without ever making progress.
        bool boosted_waiter = !runnable_.empty() &&
                              runnable_.front()->boosted_ &&
                              cur->ranSinceSched_;
        if (has_tasks && slice_ok && !boosted_waiter)
            return cur;
        // Give up the CPU: block if out of work, else requeue at tail.
        current_ = nullptr;
        if (has_tasks) {
            cur->state_ = Vcpu::State::kRunnable;
            cur->boosted_ = false;
            if (!slice_ok)
                cur->sliceUsed_ = 0;
            runnable_.push_back(cur);
        } else {
            cur->state_ = Vcpu::State::kBlocked;
            cur->boosted_ = false;
            cur->sliceUsed_ = 0;
        }
    }
    if (runnable_.empty())
        return nullptr;

    // Anti-starvation: a long run of boosted dispatches yields one slot
    // to the oldest non-boosted waiter (credit-scheduler fairness).
    auto it = runnable_.begin();
    if ((*it)->boosted_) {
        if (++boostStreak_ > params_.boostStreakLimit) {
            auto nb = std::find_if(runnable_.begin(), runnable_.end(),
                                   [](Vcpu *v) { return !v->boosted_; });
            if (nb != runnable_.end()) {
                it = nb;
                boostStreak_ = 0;
            }
        }
    } else {
        boostStreak_ = 0;
    }

    Vcpu *v = *it;
    runnable_.erase(it);
    // Boost is consumed by being dispatched.
    v->boosted_ = false;
    v->state_ = Vcpu::State::kRunning;
    v->sliceUsed_ = 0;
    v->ranSinceSched_ = false;
    return v;
}

double
SimCpu::contentionMultiplier() const
{
    if (params_.cacheContentionAlpha <= 0.0)
        return 1.0;
    sim::Time horizon = now() - params_.contentionWindow;
    int n = 0;
    for (const auto &v : vcpus_) {
        if (!v->contends_)
            continue;
        // A guest contends if it holds work (runnable/running) or ran
        // recently -- a starved-but-runnable guest still owns cache
        // footprint the moment it is dispatched.
        if (v->state_ != Vcpu::State::kBlocked || !v->idle() ||
            v->lastRan_ >= horizon)
            ++n;
    }
    if (n <= 1)
        return 1.0;
    return 1.0 + params_.cacheContentionAlpha *
                     (1.0 - 1.0 / static_cast<double>(n));
}

void
SimCpu::dispatch()
{
    SIM_ASSERT(!busy_, "dispatch while busy");

    // 1. Hypervisor work preempts all domains.
    if (!hvQ_.empty()) {
        HvItem item = std::move(hvQ_.front());
        hvQ_.pop_front();
        beginBusy();
        nHvItems_.inc();
        CDNA_TRACE_SPAN(ctx().tracer(), hvLane_, "hv", now(), item.cost);
        events().schedule(item.cost, [this, item = std::move(item)] {
            profile_.chargeHypervisor(item.cost);
            busy_ = false;
            if (item.done)
                item.done();
            kick();
        });
        return;
    }

    // 2. Pick a domain.
    Vcpu *v = pickNext();
    if (!v) {
        if (!idling_) {
            idling_ = true;
            idleSince_ = now();
        }
        return;
    }

    // 3. Domain switch: when a *different* domain takes the CPU, charge
    //    the world-switch cost in the hypervisor and mark the incoming
    //    domain cache-cold.  A domain re-waking with no intervening
    //    domain pays neither (address space and cache are still warm).
    if (v != lastRan_) {
        nSwitches_.inc();
        surchargePending_ = true;
        lastRan_ = v;
        current_ = v;
        beginBusy();
        CDNA_TRACE_SPAN(ctx().tracer(), hvLane_, "domain_switch", now(),
                        params_.domainSwitchCost);
        events().schedule(params_.domainSwitchCost, [this] {
            profile_.chargeHypervisor(params_.domainSwitchCost);
            busy_ = false;
            kick();
        });
        return;
    }

    // 4. Run the domain's next task.
    current_ = v;
    SIM_ASSERT(!v->idle(), "picked vcpu with no tasks");
    auto &q = v->irqQ_.empty() ? v->normalQ_ : v->irqQ_;
    Vcpu::Task task = std::move(q.front());
    q.pop_front();

    v->lastRan_ = now();
    v->ranSinceSched_ = true;
    sim::Time cost = static_cast<sim::Time>(
        static_cast<double>(task.cost) * contentionMultiplier());
    if (surchargePending_) {
        cost += params_.cacheColdSurcharge;
        surchargePending_ = false;
    }
    v->sliceUsed_ += cost;
    beginBusy();
    nTasks_.inc();
    CDNA_TRACE_SPAN(ctx().tracer(), v->traceLane_,
                    task.bucket == Bucket::kOs ? "os" : "user", now(),
                    cost);
    events().schedule(cost, [this, v, cost,
                             task = std::move(task)]() mutable {
        profile_.chargeDomain(v->dom_, task.bucket, cost);
        busy_ = false;
        if (task.done)
            task.done();
        kick();
    });
}

} // namespace cdna::cpu
