/**
 * @file
 * Execution-time accounting, mirroring the paper's Xenoprof columns.
 *
 * Tables 2-4 of the paper break CPU time into: hypervisor, driver-domain
 * OS, driver-domain user, guest OS, guest user, and idle.  SimCpu
 * accumulates picoseconds into these buckets; the report layer turns
 * them into percentages of elapsed time.
 */

#ifndef CDNA_CPU_EXEC_PROFILE_HH
#define CDNA_CPU_EXEC_PROFILE_HH

#include <cstdint>
#include <map>

#include "mem/phys_memory.hh"
#include "sim/time.hh"

namespace cdna::cpu {

/** Where a slice of domain CPU time is charged. */
enum class Bucket { kOs, kUser };

/** Accumulated CPU time, queryable per domain and in aggregate. */
class ExecProfile
{
  public:
    /** OS/user split for one domain. */
    struct DomTime
    {
        sim::Time os = 0;
        sim::Time user = 0;
    };

    void
    chargeDomain(mem::DomainId dom, Bucket b, sim::Time t)
    {
        auto &d = domains_[dom];
        (b == Bucket::kOs ? d.os : d.user) += t;
    }

    void chargeHypervisor(sim::Time t) { hypervisor_ += t; }
    void chargeIdle(sim::Time t) { idle_ += t; }

    sim::Time hypervisor() const { return hypervisor_; }
    sim::Time idle() const { return idle_; }

    sim::Time
    domainTime(mem::DomainId dom, Bucket b) const
    {
        auto it = domains_.find(dom);
        if (it == domains_.end())
            return 0;
        return b == Bucket::kOs ? it->second.os : it->second.user;
    }

    /** Sum of OS+user time across all domains. */
    sim::Time
    allDomainTime() const
    {
        sim::Time t = 0;
        for (const auto &[dom, d] : domains_)
            t += d.os + d.user;
        return t;
    }

    /** Total accounted time (busy + idle). */
    sim::Time total() const { return hypervisor_ + allDomainTime() + idle_; }

    /** Per-domain breakdown (report assembly). */
    const std::map<mem::DomainId, DomTime> &domains() const
    {
        return domains_;
    }

    void
    reset()
    {
        hypervisor_ = 0;
        idle_ = 0;
        domains_.clear();
    }

  private:
    sim::Time hypervisor_ = 0;
    sim::Time idle_ = 0;
    std::map<mem::DomainId, DomTime> domains_;
};

} // namespace cdna::cpu

#endif // CDNA_CPU_EXEC_PROFILE_HH
