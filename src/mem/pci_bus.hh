/**
 * @file
 * Shared PCI bus bandwidth/latency model.
 *
 * The paper's testbed put the NICs on a 64-bit/66 MHz PCI bus
 * (~528 MB/s peak).  We model the bus as a serially-reused resource:
 * each transaction pays a fixed arbitration/setup latency plus a
 * per-byte serialization time, and transactions queue FIFO when the bus
 * is busy.  This keeps descriptor fetches and payload DMA honest about
 * sharing one physical resource.
 */

#ifndef CDNA_MEM_PCI_BUS_HH
#define CDNA_MEM_PCI_BUS_HH

#include <cstdint>
#include <functional>

#include "sim/sim_object.hh"

namespace cdna::mem {

/** FIFO-arbitrated shared bus with fixed setup cost + per-byte cost. */
class PciBus : public sim::SimObject
{
  public:
    /**
     * @param ctx           simulation context
     * @param name          component name
     * @param bytes_per_sec sustained bandwidth (default 528 MB/s PCI64/66)
     * @param setup         per-transaction arbitration/setup latency
     */
    PciBus(sim::SimContext &ctx, std::string name,
           double bytes_per_sec = 528.0e6,
           sim::Time setup = sim::nanoseconds(120));

    /**
     * Enqueue a transfer of @p bytes; @p done fires when the last byte
     * has crossed the bus.
     * @return the simulated completion time
     */
    sim::Time transfer(std::uint64_t bytes, std::function<void()> done);

    /** Completion time a transfer of @p bytes would get if issued now. */
    sim::Time estimate(std::uint64_t bytes) const;

    /** Total bytes carried. */
    std::uint64_t bytesCarried() const { return nBytes_.value(); }

    /** Fraction of elapsed time the bus has been busy. */
    double utilization(sim::Time elapsed) const;

  private:
    sim::Time costOf(std::uint64_t bytes) const;

    double psPerByte_;
    sim::Time setup_;
    sim::Time busyUntil_ = 0;
    sim::Time busyAccum_ = 0;

    sim::Counter &nTransfers_;
    sim::Counter &nBytes_;
};

} // namespace cdna::mem

#endif // CDNA_MEM_PCI_BUS_HH
