/**
 * @file
 * Xen-style grant table: controlled inter-domain page sharing.
 *
 * The software I/O virtualization path (paper section 2.1) moves packets
 * between guest and driver domain with grants: a guest *grants* the
 * driver domain access to the pages holding a packet (TX), and received
 * packets are *transferred* (page-flipped) into the guest (RX).  This
 * model implements the ownership bookkeeping; the CPU cost of the
 * map/unmap/flip hypercalls is charged by the VMM layer.
 */

#ifndef CDNA_MEM_GRANT_TABLE_HH
#define CDNA_MEM_GRANT_TABLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/phys_memory.hh"
#include "sim/sim_object.hh"

namespace cdna::mem {

/** Handle naming one granted page. */
using GrantRef = std::uint64_t;

inline constexpr GrantRef kInvalidGrant = 0;

class GrantTable : public sim::SimObject
{
  public:
    GrantTable(sim::SimContext &ctx, PhysMemory &mem);

    /**
     * Grant @p to access to @p page owned by @p from.
     * @return a grant reference, or kInvalidGrant if @p from does not
     *         own the page.
     */
    GrantRef grantAccess(DomainId from, DomainId to, PageNum page);

    /**
     * Map a granted page into @p mapper's address space.
     * Pins the page so it cannot be reallocated while mapped.
     * @return the page number, or an empty optional encoded as false
     */
    bool mapGrant(GrantRef ref, DomainId mapper, PageNum *page_out);

    /** Unmap a previously mapped grant (unpins). */
    bool unmapGrant(GrantRef ref, DomainId mapper);

    /** Revoke a grant entry; fails if still mapped. */
    bool endGrant(GrantRef ref, DomainId from);

    /**
     * Transfer (page-flip) @p page from @p from to @p to.
     * @retval true the flip happened
     */
    bool transferPage(DomainId from, DomainId to, PageNum page);

    /** Outcome of a bulk revocation. */
    struct RevokeStats
    {
        std::uint64_t revoked = 0;     //!< grant entries invalidated
        std::uint64_t quarantined = 0; //!< mapped pages quarantined
    };

    /**
     * Forcibly invalidate every grant issued *to* @p mapper (the
     * mapper crashed).  Entries stay in the table flagged revoked, so
     * a frontend replaying a pre-crash reference after the backend
     * restarts is rejected (use-after-revoke) while the granter can
     * still endGrant() to reclaim.  Pages that were mapped when the
     * crash hit may still be referenced by in-flight DMA, so their
     * pins are *not* dropped: they enter quarantine and stay
     * unreusable until drainQuarantine() runs after the DMA engine
     * drains.
     */
    RevokeStats revokeMappingsOf(DomainId mapper);

    /** Release quarantined pages (the DMA engine has drained). */
    std::uint64_t drainQuarantine();

    std::uint64_t activeGrants() const { return entries_.size(); }
    std::uint64_t flipCount() const { return nFlips_.value(); }
    std::uint64_t quarantinedPages() const { return quarantine_.size(); }
    std::uint64_t revokedGrants() const { return nRevoked_.value(); }
    std::uint64_t
    quarantineAdmissions() const
    {
        return nQuarantined_.value();
    }
    std::uint64_t
    quarantineReleases() const
    {
        return nQuarReleased_.value();
    }
    std::uint64_t useAfterRevoke() const { return nUseAfterRevoke_.value(); }

  private:
    struct Entry
    {
        DomainId from;
        DomainId to;
        PageNum page;
        bool mapped = false;
        bool revoked = false;
    };

    PhysMemory &mem_;
    GrantRef nextRef_ = 1;
    std::unordered_map<GrantRef, Entry> entries_;
    /** Pages still pinned on behalf of a crashed mapper's DMA. */
    std::vector<PageNum> quarantine_;

    sim::Counter &nGrants_;
    sim::Counter &nMaps_;
    sim::Counter &nFlips_;
    sim::Counter &nDenied_;
    sim::Counter &nRevoked_;
    sim::Counter &nQuarantined_;
    sim::Counter &nQuarReleased_;
    sim::Counter &nUseAfterRevoke_;
};

} // namespace cdna::mem

#endif // CDNA_MEM_GRANT_TABLE_HH
