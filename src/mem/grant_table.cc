#include "mem/grant_table.hh"

namespace cdna::mem {

GrantTable::GrantTable(sim::SimContext &ctx, PhysMemory &mem)
    : sim::SimObject(ctx, "grant-table"),
      mem_(mem),
      nGrants_(stats().addCounter("grants")),
      nMaps_(stats().addCounter("maps")),
      nFlips_(stats().addCounter("flips")),
      nDenied_(stats().addCounter("denied"))
{
}

GrantRef
GrantTable::grantAccess(DomainId from, DomainId to, PageNum page)
{
    if (!mem_.ownedBy(page, from)) {
        nDenied_.inc();
        return kInvalidGrant;
    }
    GrantRef ref = nextRef_++;
    entries_.emplace(ref, Entry{from, to, page, false});
    nGrants_.inc();
    return ref;
}

bool
GrantTable::mapGrant(GrantRef ref, DomainId mapper, PageNum *page_out)
{
    auto it = entries_.find(ref);
    if (it == entries_.end() || it->second.to != mapper ||
        it->second.mapped) {
        nDenied_.inc();
        return false;
    }
    // Ownership may have changed since the grant was issued.
    if (!mem_.ownedBy(it->second.page, it->second.from)) {
        nDenied_.inc();
        return false;
    }
    it->second.mapped = true;
    mem_.getRef(it->second.page);
    mem_.noteGrantMapped(it->second.page, mapper);
    nMaps_.inc();
    if (page_out)
        *page_out = it->second.page;
    return true;
}

bool
GrantTable::unmapGrant(GrantRef ref, DomainId mapper)
{
    auto it = entries_.find(ref);
    if (it == entries_.end() || it->second.to != mapper ||
        !it->second.mapped) {
        nDenied_.inc();
        return false;
    }
    it->second.mapped = false;
    mem_.clearGrantMapped(it->second.page);
    mem_.putRef(it->second.page);
    return true;
}

bool
GrantTable::endGrant(GrantRef ref, DomainId from)
{
    auto it = entries_.find(ref);
    if (it == entries_.end() || it->second.from != from ||
        it->second.mapped) {
        nDenied_.inc();
        return false;
    }
    entries_.erase(it);
    return true;
}

bool
GrantTable::transferPage(DomainId from, DomainId to, PageNum page)
{
    if (!mem_.ownedBy(page, from) || mem_.refCount(page) != 0) {
        nDenied_.inc();
        return false;
    }
    mem_.transferOwnership(page, to);
    nFlips_.inc();
    return true;
}

} // namespace cdna::mem
