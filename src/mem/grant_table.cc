#include "mem/grant_table.hh"

#include <algorithm>

namespace cdna::mem {

GrantTable::GrantTable(sim::SimContext &ctx, PhysMemory &mem)
    : sim::SimObject(ctx, "grant-table"),
      mem_(mem),
      nGrants_(stats().addCounter("grants")),
      nMaps_(stats().addCounter("maps")),
      nFlips_(stats().addCounter("flips")),
      nDenied_(stats().addCounter("denied")),
      nRevoked_(stats().addCounter("revoked")),
      nQuarantined_(stats().addCounter("quarantined")),
      nQuarReleased_(stats().addCounter("quarantine_released")),
      nUseAfterRevoke_(stats().addCounter("use_after_revoke"))
{
}

GrantRef
GrantTable::grantAccess(DomainId from, DomainId to, PageNum page)
{
    if (!mem_.ownedBy(page, from)) {
        nDenied_.inc();
        return kInvalidGrant;
    }
    GrantRef ref = nextRef_++;
    entries_.emplace(ref, Entry{from, to, page, false});
    nGrants_.inc();
    return ref;
}

bool
GrantTable::mapGrant(GrantRef ref, DomainId mapper, PageNum *page_out)
{
    auto it = entries_.find(ref);
    if (it == entries_.end() || it->second.to != mapper ||
        it->second.mapped) {
        nDenied_.inc();
        return false;
    }
    if (it->second.revoked) {
        // A reference the hypervisor force-revoked (backend crash)
        // must never become mappable again, even by the same domain
        // after it restarts.
        nUseAfterRevoke_.inc();
        nDenied_.inc();
        return false;
    }
    // Ownership may have changed since the grant was issued.
    if (!mem_.ownedBy(it->second.page, it->second.from)) {
        nDenied_.inc();
        return false;
    }
    it->second.mapped = true;
    mem_.getRef(it->second.page);
    mem_.noteGrantMapped(it->second.page, mapper);
    nMaps_.inc();
    if (page_out)
        *page_out = it->second.page;
    return true;
}

bool
GrantTable::unmapGrant(GrantRef ref, DomainId mapper)
{
    auto it = entries_.find(ref);
    if (it == entries_.end() || it->second.to != mapper ||
        !it->second.mapped) {
        nDenied_.inc();
        return false;
    }
    it->second.mapped = false;
    mem_.clearGrantMapped(it->second.page);
    mem_.putRef(it->second.page);
    return true;
}

bool
GrantTable::endGrant(GrantRef ref, DomainId from)
{
    auto it = entries_.find(ref);
    if (it == entries_.end() || it->second.from != from ||
        it->second.mapped) {
        nDenied_.inc();
        return false;
    }
    entries_.erase(it);
    return true;
}

bool
GrantTable::transferPage(DomainId from, DomainId to, PageNum page)
{
    if (!mem_.ownedBy(page, from) || mem_.refCount(page) != 0) {
        nDenied_.inc();
        return false;
    }
    mem_.transferOwnership(page, to);
    nFlips_.inc();
    return true;
}

GrantTable::RevokeStats
GrantTable::revokeMappingsOf(DomainId mapper)
{
    // Only entries the dead domain actually MAPPED are revoked: an
    // unmapped grant still belongs to the granting guest, who replays
    // it to the restarted backend (the request survives in the shared
    // ring).  Process references in sorted order: quarantine insertion
    // order feeds the free list at drain time, and allocation order
    // must not depend on unordered_map iteration.
    std::vector<GrantRef> refs;
    for (const auto &[ref, e] : entries_)
        if (e.to == mapper && e.mapped && !e.revoked)
            refs.push_back(ref);
    std::sort(refs.begin(), refs.end());

    RevokeStats rs;
    for (GrantRef ref : refs) {
        Entry &e = entries_[ref];
        e.revoked = true;
        ++rs.revoked;
        nRevoked_.inc();
        e.mapped = false;
        // Keep both the pin and the DMA window: the physical NIC may
        // still be draining descriptors that reference this page on
        // behalf of the dead mapper, and that in-flight DMA must stay
        // legal until the quarantine drains.  Both are released only
        // by drainQuarantine().
        quarantine_.push_back(e.page);
        ++rs.quarantined;
        nQuarantined_.inc();
    }
    return rs;
}

std::uint64_t
GrantTable::drainQuarantine()
{
    std::uint64_t released = quarantine_.size();
    for (PageNum p : quarantine_) {
        mem_.clearGrantMapped(p);
        mem_.putRef(p);
        nQuarReleased_.inc();
    }
    quarantine_.clear();
    return released;
}

} // namespace cdna::mem
