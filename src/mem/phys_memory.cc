#include "mem/phys_memory.hh"

#include <algorithm>

#include "sim/assert.hh"

namespace cdna::mem {

PhysMemory::PhysMemory(sim::SimContext &ctx, std::uint64_t total_pages)
    : sim::SimObject(ctx, "phys-mem"),
      pages_(total_pages),
      nAllocs_(stats().addCounter("allocs")),
      nReleases_(stats().addCounter("releases")),
      nDeferredReleases_(stats().addCounter("deferred_releases")),
      nDmaAccesses_(stats().addCounter("dma_accesses")),
      nViolations_(stats().addCounter("dma_violations"))
{
    freeList_.reserve(total_pages);
    // Allocate ascending page numbers first: push in reverse.
    for (std::uint64_t p = total_pages; p-- > 0;)
        freeList_.push_back(p);
}

PhysMemory::PageInfo &
PhysMemory::info(PageNum page)
{
    SIM_ASSERT(page < pages_.size(), "page out of range");
    return pages_[page];
}

const PhysMemory::PageInfo &
PhysMemory::info(PageNum page) const
{
    SIM_ASSERT(page < pages_.size(), "page out of range");
    return pages_[page];
}

std::vector<PageNum>
PhysMemory::alloc(DomainId dom, std::uint64_t n)
{
    std::vector<PageNum> out;
    if (freeList_.size() < n)
        return out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        PageNum p = freeList_.back();
        freeList_.pop_back();
        PageInfo &pi = info(p);
        SIM_ASSERT(pi.owner == kDomFree, "free-list page not free");
        SIM_ASSERT(pi.refs == 0, "free-list page still pinned");
        pi.owner = dom;
        pi.pendingFree = false;
        out.push_back(p);
        nAllocs_.inc();
    }
    return out;
}

PageNum
PhysMemory::allocOne(DomainId dom)
{
    auto v = alloc(dom, 1);
    if (v.empty())
        SIM_PANIC("out of physical memory");
    return v[0];
}

bool
PhysMemory::release(PageNum page)
{
    PageInfo &pi = info(page);
    SIM_ASSERT(pi.owner != kDomFree, "releasing a free page");
    nReleases_.inc();
    if (pi.refs > 0) {
        // Deferred: the page is the source/target of an outstanding DMA.
        pi.pendingFree = true;
        nDeferredReleases_.inc();
        return false;
    }
    pi.owner = kDomFree;
    pi.pendingFree = false;
    freeList_.push_back(page);
    return true;
}

DomainId
PhysMemory::ownerOf(PageNum page) const
{
    return info(page).owner;
}

bool
PhysMemory::ownedBy(PageNum page, DomainId dom) const
{
    if (page >= pages_.size())
        return false;
    return pages_[page].owner == dom;
}

void
PhysMemory::getRef(PageNum page)
{
    ++info(page).refs;
}

void
PhysMemory::putRef(PageNum page)
{
    PageInfo &pi = info(page);
    SIM_ASSERT(pi.refs > 0, "putRef on unpinned page");
    if (--pi.refs == 0 && pi.pendingFree) {
        pi.owner = kDomFree;
        pi.pendingFree = false;
        freeList_.push_back(page);
    }
}

std::uint32_t
PhysMemory::refCount(PageNum page) const
{
    return info(page).refs;
}

void
PhysMemory::transferOwnership(PageNum page, DomainId to)
{
    PageInfo &pi = info(page);
    SIM_ASSERT(pi.refs == 0, "flipping a pinned page");
    SIM_ASSERT(pi.owner != kDomFree, "flipping a free page");
    pi.owner = to;
}

bool
PhysMemory::releasePending(PageNum page) const
{
    return info(page).pendingFree;
}

bool
PhysMemory::dmaAccessibleBy(PageNum page, DomainId dom) const
{
    if (page >= pages_.size())
        return false;
    const PageInfo &pi = pages_[page];
    return pi.owner == dom || (pi.mapCount > 0 && pi.mapper == dom);
}

void
PhysMemory::noteGrantMapped(PageNum page, DomainId mapper)
{
    PageInfo &pi = info(page);
    SIM_ASSERT(pi.mapCount == 0 || pi.mapper == mapper,
               "page grant-mapped by two domains");
    pi.mapper = mapper;
    ++pi.mapCount;
}

void
PhysMemory::clearGrantMapped(PageNum page)
{
    PageInfo &pi = info(page);
    SIM_ASSERT(pi.mapCount > 0, "clearing unmapped grant");
    if (--pi.mapCount == 0)
        pi.mapper = kDomInvalid;
}

bool
PhysMemory::noteDmaAccess(PageNum page, DomainId dom, bool write)
{
    nDmaAccesses_.inc();
    if (page >= pages_.size()) {
        nViolations_.inc();
        violations_.push_back({page, dom, kDomInvalid, write, now()});
        return false;
    }
    const PageInfo &pi = pages_[page];
    if (pi.owner != dom && !(pi.mapCount > 0 && pi.mapper == dom)) {
        nViolations_.inc();
        violations_.push_back({page, dom, pi.owner, write, now()});
        log_.warn("DMA %s violation: page %llu owner=%u on behalf of %u",
                  write ? "write" : "read",
                  static_cast<unsigned long long>(page), pi.owner, dom);
        return false;
    }
    return true;
}

} // namespace cdna::mem
