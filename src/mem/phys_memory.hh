/**
 * @file
 * Physical memory model: page ownership, reference counts, allocation.
 *
 * This is the substrate CDNA's DMA memory protection (paper section 3.3)
 * is built on.  Every 4 KB page has an owner domain and a reference
 * count.  The hypervisor pins pages (getRef) while they are the source or
 * target of an outstanding DMA; a page freed by its owner while pinned is
 * *deferred* and only returns to the free pool when the last reference
 * drops -- exactly the reallocation-delay rule of section 3.3.
 *
 * Payload contents are not simulated, but every DMA access is checked
 * against ownership at access time so corruption (a device touching a
 * page its requesting domain no longer owns) is detected and counted.
 */

#ifndef CDNA_MEM_PHYS_MEMORY_HH
#define CDNA_MEM_PHYS_MEMORY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/sim_object.hh"

namespace cdna::mem {

/** Identifier of a virtual machine / domain. */
using DomainId = std::uint32_t;

/** Owner value for pages in the hypervisor's free pool. */
inline constexpr DomainId kDomFree = 0xFFFFFFFFu;
/** Owner value for pages owned by the hypervisor itself. */
inline constexpr DomainId kDomHypervisor = 0xFFFFFFFEu;
/** Sentinel for "no domain". */
inline constexpr DomainId kDomInvalid = 0xFFFFFFFDu;

/** Physical page frame number. */
using PageNum = std::uint64_t;
/** Physical byte address. */
using PhysAddr = std::uint64_t;

inline constexpr std::uint64_t kPageSize = 4096;
inline constexpr std::uint64_t kPageShift = 12;

/** Page frame number containing @p addr. */
constexpr PageNum
pageOf(PhysAddr addr)
{
    return addr >> kPageShift;
}

/** First byte address of page @p page. */
constexpr PhysAddr
addrOf(PageNum page)
{
    return page << kPageShift;
}

/**
 * The machine's physical memory: a page-granular ownership map with
 * reference counting and a free-list frame allocator.
 */
class PhysMemory : public sim::SimObject
{
  public:
    /** Record of one detected DMA protection violation. */
    struct Violation
    {
        PageNum page;
        DomainId expected;  //!< domain the DMA was performed on behalf of
        DomainId actual;    //!< owner of the page at access time
        bool write;
        sim::Time when;
    };

    PhysMemory(sim::SimContext &ctx, std::uint64_t total_pages);

    std::uint64_t totalPages() const { return pages_.size(); }
    std::uint64_t freePages() const { return freeList_.size(); }

    /**
     * Allocate @p n pages to @p dom from the free pool.
     * @return the allocated page numbers (empty if insufficient memory)
     */
    std::vector<PageNum> alloc(DomainId dom, std::uint64_t n);

    /** Allocate a single page (panics if out of memory). */
    PageNum allocOne(DomainId dom);

    /**
     * Release a page back toward the free pool.  If the page is pinned
     * (refcount > 0), the release is deferred until the count drops to
     * zero; the page keeps its owner until then.
     * @retval true the page entered the free pool immediately
     * @retval false the release was deferred (page was pinned)
     */
    bool release(PageNum page);

    /** Owner of @p page. */
    DomainId ownerOf(PageNum page) const;

    /** True when @p page is owned by @p dom (not freed, not foreign). */
    bool ownedBy(PageNum page, DomainId dom) const;

    /**
     * True when @p dom may legitimately DMA to/from @p page: it owns
     * the page, or the page is currently grant-mapped into it (the Xen
     * driver domain driving DMA on guests' granted packet pages).
     */
    bool dmaAccessibleBy(PageNum page, DomainId dom) const;

    /** Pin a page for DMA; increments its reference count. */
    void getRef(PageNum page);

    /** Unpin; completes a deferred release when the count drops to 0. */
    void putRef(PageNum page);

    std::uint32_t refCount(PageNum page) const;

    /**
     * Directly change a page's owner (Xen page flipping).  The page must
     * not be pinned -- flipping a page under outstanding DMA is exactly
     * the corruption CDNA's protection prevents, and the Xen software
     * path never does it.
     */
    void transferOwnership(PageNum page, DomainId to);

    /** True if release() was called while pinned and is still pending. */
    bool releasePending(PageNum page) const;

    /**
     * Mark @p page as grant-mapped into @p mapper's address space (the
     * Xen driver domain mapping a guest's packet pages).  DMA on behalf
     * of the mapper is then legal for this page.  Reference-counted for
     * nested grants of the same page.
     */
    void noteGrantMapped(PageNum page, DomainId mapper);

    /** Remove one grant mapping of @p page. */
    void clearGrantMapped(PageNum page);

    /**
     * Record a DMA access to @p page performed on behalf of @p dom.
     * Ownership is checked at access time; mismatches are counted and
     * reported (they model real memory corruption / disclosure).
     * @retval true the access was safe
     */
    bool noteDmaAccess(PageNum page, DomainId dom, bool write);

    /** All violations detected so far (for tests and reports). */
    const std::vector<Violation> &violations() const { return violations_; }

    std::uint64_t violationCount() const { return nViolations_.value(); }

  private:
    struct PageInfo
    {
        DomainId owner = kDomFree;
        std::uint32_t refs = 0;
        bool pendingFree = false;
        DomainId mapper = kDomInvalid; //!< grant-mapped into this domain
        std::uint16_t mapCount = 0;
    };

    PageInfo &info(PageNum page);
    const PageInfo &info(PageNum page) const;

    std::vector<PageInfo> pages_;
    std::vector<PageNum> freeList_;
    std::vector<Violation> violations_;

    sim::Counter &nAllocs_;
    sim::Counter &nReleases_;
    sim::Counter &nDeferredReleases_;
    sim::Counter &nDmaAccesses_;
    sim::Counter &nViolations_;
};

} // namespace cdna::mem

#endif // CDNA_MEM_PHYS_MEMORY_HH
