#include "mem/pci_bus.hh"

#include <algorithm>
#include <utility>

namespace cdna::mem {

PciBus::PciBus(sim::SimContext &ctx, std::string name, double bytes_per_sec,
               sim::Time setup)
    : sim::SimObject(ctx, std::move(name)),
      psPerByte_(static_cast<double>(sim::kSecond) / bytes_per_sec),
      setup_(setup),
      nTransfers_(stats().addCounter("transfers")),
      nBytes_(stats().addCounter("bytes"))
{
}

sim::Time
PciBus::costOf(std::uint64_t bytes) const
{
    return setup_ + static_cast<sim::Time>(psPerByte_
                                           * static_cast<double>(bytes));
}

sim::Time
PciBus::estimate(std::uint64_t bytes) const
{
    sim::Time start = std::max(now(), busyUntil_);
    return start + costOf(bytes);
}

sim::Time
PciBus::transfer(std::uint64_t bytes, std::function<void()> done)
{
    nTransfers_.inc();
    nBytes_.inc(bytes);
    sim::Time start = std::max(now(), busyUntil_);
    sim::Time cost = costOf(bytes);
    busyUntil_ = start + cost;
    busyAccum_ += cost;
    CDNA_TRACE_SPAN_ARG(ctx().tracer(), traceLane(), "dma", start, cost,
                        "bytes", bytes);
    events().scheduleAt(busyUntil_, std::move(done));
    return busyUntil_;
}

double
PciBus::utilization(sim::Time elapsed) const
{
    if (elapsed <= 0)
        return 0.0;
    return static_cast<double>(busyAccum_) / static_cast<double>(elapsed);
}

} // namespace cdna::mem
