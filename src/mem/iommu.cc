#include "mem/iommu.hh"

namespace cdna::mem {

Iommu::Iommu(sim::SimContext &ctx, PhysMemory &mem, Mode mode)
    : sim::SimObject(ctx, "iommu"),
      mem_(mem),
      mode_(mode),
      nChecks_(stats().addCounter("checks")),
      nBlocked_(stats().addCounter("blocked"))
{
}

void
Iommu::bindDevice(DeviceId dev, DomainId dom)
{
    deviceBinding_[dev] = dom;
}

void
Iommu::bindContext(DeviceId dev, ContextId cxt, DomainId dom)
{
    contextBinding_[{dev, cxt}] = dom;
}

void
Iommu::unbindContext(DeviceId dev, ContextId cxt)
{
    contextBinding_.erase({dev, cxt});
}

IommuVerdict
Iommu::check(DeviceId dev, ContextId cxt, PageNum page)
{
    if (mode_ == Mode::kNone)
        return IommuVerdict::kAllowed;
    nChecks_.inc();

    DomainId dom = kDomInvalid;
    if (mode_ == Mode::kPerDevice) {
        auto it = deviceBinding_.find(dev);
        if (it == deviceBinding_.end()) {
            nBlocked_.inc();
            return IommuVerdict::kBlockedNoBinding;
        }
        dom = it->second;
    } else {
        auto it = contextBinding_.find({dev, cxt});
        if (it == contextBinding_.end()) {
            // A whole-device access in per-context mode falls back to the
            // device binding (e.g. interrupt bit-vector DMA bound to the
            // hypervisor).
            auto dit = deviceBinding_.find(dev);
            if (dit == deviceBinding_.end()) {
                nBlocked_.inc();
                return IommuVerdict::kBlockedNoBinding;
            }
            dom = dit->second;
        } else {
            dom = it->second;
        }
    }

    if (!mem_.dmaAccessibleBy(page, dom)) {
        nBlocked_.inc();
        return IommuVerdict::kBlockedOwnership;
    }
    return IommuVerdict::kAllowed;
}

} // namespace cdna::mem
