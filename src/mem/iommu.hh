/**
 * @file
 * IOMMU model (paper section 5.3).
 *
 * The paper discusses AMD's then-proposed IOMMU, which restricts the
 * physical memory a *device* may access, and argues CDNA would need a
 * *per-context* extension.  We model three modes:
 *
 *  - kNone:       no IOMMU; every DMA passes (x86 of 2007).
 *  - kPerDevice:  each device is bound to one domain; a DMA is allowed
 *                 iff the touched page is owned by that domain.
 *  - kPerContext: each (device, context) pair is bound to a domain --
 *                 the extension section 5.3 calls for.
 *
 * The hypervisor keeps bindings in sync with context assignment.  The
 * IOMMU blocks (does not perform) disallowed accesses, unlike the bare
 * machine where they corrupt memory.
 */

#ifndef CDNA_MEM_IOMMU_HH
#define CDNA_MEM_IOMMU_HH

#include <cstdint>
#include <map>

#include "mem/phys_memory.hh"
#include "sim/sim_object.hh"

namespace cdna::mem {

/** Identifier of a DMA-capable device on the bus. */
using DeviceId = std::uint32_t;
/** Identifier of a hardware context within a device (CDNA). */
using ContextId = std::uint32_t;

/** Context value used for DMA issued by the device as a whole. */
inline constexpr ContextId kWholeDevice = 0xFFFFFFFFu;

/** Protection lookup result. */
enum class IommuVerdict { kAllowed, kBlockedNoBinding, kBlockedOwnership };

class Iommu : public sim::SimObject
{
  public:
    enum class Mode { kNone, kPerDevice, kPerContext };

    Iommu(sim::SimContext &ctx, PhysMemory &mem, Mode mode);

    Mode mode() const { return mode_; }

    /** Bind every context of @p dev to @p dom (per-device mode). */
    void bindDevice(DeviceId dev, DomainId dom);

    /** Bind one context of @p dev to @p dom (per-context mode). */
    void bindContext(DeviceId dev, ContextId cxt, DomainId dom);

    /** Remove a context binding (context revocation). */
    void unbindContext(DeviceId dev, ContextId cxt);

    /**
     * Check a DMA access to @p page by @p dev / @p cxt.
     * In kNone mode everything is allowed.
     */
    IommuVerdict check(DeviceId dev, ContextId cxt, PageNum page);

    std::uint64_t blockedCount() const { return nBlocked_.value(); }

  private:
    PhysMemory &mem_;
    Mode mode_;
    std::map<DeviceId, DomainId> deviceBinding_;
    std::map<std::pair<DeviceId, ContextId>, DomainId> contextBinding_;

    sim::Counter &nChecks_;
    sim::Counter &nBlocked_;
};

} // namespace cdna::mem

#endif // CDNA_MEM_IOMMU_HH
