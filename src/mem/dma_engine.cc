#include "mem/dma_engine.hh"

#include <utility>

#include "sim/fault_injector.hh"

namespace cdna::mem {

std::uint64_t
sgBytes(const SgList &sg)
{
    std::uint64_t n = 0;
    for (const auto &e : sg)
        n += e.len;
    return n;
}

DmaEngine::DmaEngine(sim::SimContext &ctx, std::string name, PciBus &bus,
                     PhysMemory &mem, DeviceId dev, Iommu *iommu)
    : sim::SimObject(ctx, std::move(name)),
      bus_(bus),
      mem_(mem),
      dev_(dev),
      iommu_(iommu),
      nReads_(stats().addCounter("reads")),
      nWrites_(stats().addCounter("writes")),
      nReadBytes_(stats().addCounter("read_bytes")),
      nWriteBytes_(stats().addCounter("write_bytes"))
{
}

void
DmaEngine::read(const SgList &sg, DomainId behalf, ContextId cxt, Callback cb)
{
    nReads_.inc();
    nReadBytes_.inc(sgBytes(sg));
    doTransfer(sg, behalf, cxt, false, std::move(cb));
}

void
DmaEngine::write(const SgList &sg, DomainId behalf, ContextId cxt, Callback cb)
{
    nWrites_.inc();
    nWriteBytes_.inc(sgBytes(sg));
    doTransfer(sg, behalf, cxt, true, std::move(cb));
}

void
DmaEngine::doTransfer(const SgList &sg, DomainId behalf, ContextId cxt,
                      bool write, Callback cb)
{
    DmaResult result;
    std::uint64_t carried = 0;
    for (const auto &e : sg) {
        if (e.len == 0)
            continue;
        PageNum first = pageOf(e.addr);
        PageNum last = pageOf(e.addr + e.len - 1);
        for (PageNum p = first; p <= last; ++p) {
            if (iommu_) {
                auto verdict = iommu_->check(dev_, cxt, p);
                if (verdict != IommuVerdict::kAllowed) {
                    ++result.blockedPages;
                    continue; // access suppressed by the IOMMU
                }
            }
            if (!mem_.noteDmaAccess(p, behalf, write))
                result.safe = false;
        }
        carried += e.len;
    }
    // Fault injection: a delayed completion widens the window between a
    // descriptor being consumed and its pages being released, stressing
    // the protection layer's deferred-reallocation rule.
    sim::Time extra = 0;
    if (sim::FaultInjector *fi = ctx().faultInjector(); fi && fi->dmaArmed())
        extra = fi->dmaDelay();
    if (extra > 0) {
        bus_.transfer(carried, [this, cb = std::move(cb), result, extra] {
            events().schedule(extra, [cb, result] { cb(result); });
        });
        return;
    }
    bus_.transfer(carried, [cb = std::move(cb), result] { cb(result); });
}

} // namespace cdna::mem
