/**
 * @file
 * Per-device DMA engine.
 *
 * Devices move data to/from host memory through a DmaEngine, which
 * charges the shared PCI bus for the bytes, runs the (optional) IOMMU
 * check, and records every page touched against the ownership map so
 * protection violations are detected at *access* time -- the property
 * CDNA's deferred-reallocation rule exists to preserve.
 */

#ifndef CDNA_MEM_DMA_ENGINE_HH
#define CDNA_MEM_DMA_ENGINE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/iommu.hh"
#include "mem/pci_bus.hh"
#include "mem/phys_memory.hh"
#include "sim/sim_object.hh"

namespace cdna::mem {

/** One contiguous piece of a scatter/gather transfer. */
struct SgEntry
{
    PhysAddr addr = 0;
    std::uint32_t len = 0;
};

/** Scatter/gather list. */
using SgList = std::vector<SgEntry>;

/** Total byte count of a scatter/gather list. */
std::uint64_t sgBytes(const SgList &sg);

/** Outcome of a DMA operation. */
struct DmaResult
{
    bool safe = true;           //!< no ownership violations occurred
    std::uint32_t blockedPages = 0; //!< pages the IOMMU refused to access
};

class DmaEngine : public sim::SimObject
{
  public:
    using Callback = std::function<void(DmaResult)>;

    /**
     * @param ctx   simulation context
     * @param name  component name
     * @param bus   shared PCI bus the transfers are charged to
     * @param mem   host physical memory (ownership map)
     * @param dev   this device's id for IOMMU lookups
     * @param iommu optional IOMMU; null means unchecked 2007-era x86 DMA
     */
    DmaEngine(sim::SimContext &ctx, std::string name, PciBus &bus,
              PhysMemory &mem, DeviceId dev, Iommu *iommu = nullptr);

    /** Device reads host memory (descriptor fetch, TX payload). */
    void read(const SgList &sg, DomainId behalf, ContextId cxt, Callback cb);

    /** Device writes host memory (RX payload, completion records). */
    void write(const SgList &sg, DomainId behalf, ContextId cxt, Callback cb);

    DeviceId deviceId() const { return dev_; }
    void setIommu(Iommu *iommu) { iommu_ = iommu; }

    std::uint64_t bytesRead() const { return nReadBytes_.value(); }
    std::uint64_t bytesWritten() const { return nWriteBytes_.value(); }

  private:
    void doTransfer(const SgList &sg, DomainId behalf, ContextId cxt,
                    bool write, Callback cb);

    PciBus &bus_;
    PhysMemory &mem_;
    DeviceId dev_;
    Iommu *iommu_;

    sim::Counter &nReads_;
    sim::Counter &nWrites_;
    sim::Counter &nReadBytes_;
    sim::Counter &nWriteBytes_;
};

} // namespace cdna::mem

#endif // CDNA_MEM_DMA_ENGINE_HH
