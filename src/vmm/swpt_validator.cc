#include "vmm/swpt_validator.hh"

#include <algorithm>
#include <utility>

#include "sim/assert.hh"

namespace cdna::vmm {

SwptValidator::SwptValidator(sim::SimContext &ctx, std::string name,
                             Hypervisor &hv, nic::IntelNic &nic,
                             const core::CostModel &costs)
    : sim::SimObject(ctx, std::move(name)),
      hv_(hv),
      nic_(nic),
      costs_(costs),
      nDoorbells_(stats().addCounter("doorbell_traps")),
      nValidated_(stats().addCounter("desc_validated")),
      nRejected_(stats().addCounter("desc_rejected")),
      nRxDemuxDrop_(stats().addCounter("rx_demux_drops")),
      nRxNoBuf_(stats().addCounter("rx_no_guest_buf")),
      nDetachDrops_(stats().addCounter("detach_drops"))
{
}

void
SwptValidator::attach()
{
    auto &mem = hv_.mem();
    mem::PageNum tx_ring = mem.allocOne(mem::kDomHypervisor);
    mem::PageNum rx_ring = mem.allocOne(mem::kDomHypervisor);
    mem::PageNum status = mem.allocOne(mem::kDomHypervisor);

    nic_.configureTxRing(256, mem::addrOf(tx_ring));
    nic_.configureRxRing(256, mem::addrOf(rx_ring));
    nic_.setStatusBlockAddr(mem::addrOf(status));
    // One shared context, owned by the hypervisor: the device DMAs with
    // the hypervisor's identity, so a descriptor only reaches memory
    // after this layer pinned + grant-mapped its pages below.
    nic_.setDmaDomain(mem::kDomHypervisor);
    nic_.setPromiscuous(true);

    std::uint32_t entries = nic_.rxRing().size();
    rxSlotPage_.assign(entries, 0);
    for (std::uint32_t i = 0; i < entries; ++i)
        postOwnRxBuffer(mem.allocOne(mem::kDomHypervisor));
    nic_.pioWriteRxProducer(rxProducer_);

    nic_.setIrqLine([this] { onIrq(); });
}

SwptValidator::GuestId
SwptValidator::addGuest(Domain &dom, net::MacAddr mac,
                        std::function<void()> irq_handler)
{
    auto gs = std::make_unique<GuestState>();
    gs->dom = &dom;
    gs->mac = mac;
    gs->channel = &hv_.createChannel(dom, costs_.irqEntry,
                                     std::move(irq_handler));
    guests_.push_back(std::move(gs));
    return static_cast<GuestId>(guests_.size() - 1);
}

SwptValidator::GuestState &
SwptValidator::state(GuestId g)
{
    SIM_ASSERT(g < guests_.size(), "bad swpt guest id");
    return *guests_[g];
}

bool
SwptValidator::guestActive(GuestId g) const
{
    return g < guests_.size() && guests_[g]->active;
}

std::uint64_t
SwptValidator::pagesSpanned(const mem::SgList &sg)
{
    std::uint64_t pages = 0;
    for (const auto &e : sg)
        pages += mem::pageOf(e.addr + (e.len ? e.len - 1 : 0)) -
                 mem::pageOf(e.addr) + 1;
    return pages;
}

void
SwptValidator::pinForDma(const mem::SgList &sg)
{
    auto &mem = hv_.mem();
    for (const auto &e : sg) {
        mem::PageNum first = mem::pageOf(e.addr);
        mem::PageNum last = mem::pageOf(e.addr + e.len - 1);
        for (mem::PageNum p = first; p <= last; ++p) {
            mem.getRef(p);
            mem.noteGrantMapped(p, mem::kDomHypervisor);
        }
    }
}

void
SwptValidator::unpinAfterDma(const mem::SgList &sg)
{
    auto &mem = hv_.mem();
    for (const auto &e : sg) {
        mem::PageNum first = mem::pageOf(e.addr);
        mem::PageNum last = mem::pageOf(e.addr + e.len - 1);
        for (mem::PageNum p = first; p <= last; ++p) {
            mem.clearGrantMapped(p);
            mem.putRef(p);
        }
    }
}

// --------------------------------------------------------------- doorbells

void
SwptValidator::txDoorbell(GuestId g, std::vector<TxReq> batch)
{
    GuestState &gs = state(g);
    if (!gs.active || batch.empty())
        return;
    nDoorbells_.inc();
    validationTime_ += costs_.swptDoorbellTrap;
    for (auto &r : batch)
        gs.pendingTx.push_back(std::move(r));
    hv_.hypercall(costs_.swptDoorbellTrap, [this, g] {
        if (!stalled_)
            processTxPending(g);
    });
}

void
SwptValidator::rxDoorbell(GuestId g, std::vector<mem::PageNum> pages)
{
    GuestState &gs = state(g);
    if (!gs.active || pages.empty())
        return;
    nDoorbells_.inc();
    validationTime_ += costs_.swptDoorbellTrap;
    for (auto p : pages)
        gs.pendingRxPost.push_back(p);
    hv_.hypercall(costs_.swptDoorbellTrap, [this, g] {
        if (!stalled_)
            processRxPending(g);
    });
}

void
SwptValidator::processTxPending(GuestId g)
{
    GuestState &gs = state(g);
    if (gs.pendingTx.empty())
        return;
    std::deque<TxReq> batch = std::move(gs.pendingTx);
    gs.pendingTx.clear();
    sim::Time cost = static_cast<sim::Time>(batch.size()) *
        (costs_.swptValidatePerDesc + costs_.swptShadowCopyPerDesc);
    validationTime_ += cost;
    hv_.cpu().runHypervisor(cost,
                            [this, g, batch = std::move(batch)]() mutable {
        validateTxBatch(g, std::move(batch));
    });
}

void
SwptValidator::processRxPending(GuestId g)
{
    GuestState &gs = state(g);
    if (gs.pendingRxPost.empty())
        return;
    std::deque<mem::PageNum> pages = std::move(gs.pendingRxPost);
    gs.pendingRxPost.clear();
    sim::Time cost = static_cast<sim::Time>(pages.size()) *
        costs_.swptValidatePerDesc;
    validationTime_ += cost;
    hv_.cpu().runHypervisor(cost,
                            [this, g, pages = std::move(pages)]() mutable {
        validateRxBatch(g, std::move(pages));
    });
}

void
SwptValidator::validateTxBatch(GuestId g, std::deque<TxReq> batch)
{
    GuestState &gs = state(g);
    auto &mem = hv_.mem();
    bool notify = false;
    for (auto &req : batch) {
        if (!gs.active)
            break;
        // An empty sg list is a header-only frame (e.g. a bare ACK): it
        // references no payload memory, so there is nothing to audit.
        bool ok = true;
        for (const auto &e : req.sg) {
            mem::PageNum first = mem::pageOf(e.addr);
            mem::PageNum last = mem::pageOf(e.addr + e.len - 1);
            for (mem::PageNum p = first; p <= last; ++p) {
                if (!mem.dmaAccessibleBy(p, gs.dom->id())) {
                    ok = false;
                    break;
                }
            }
            if (!ok)
                break;
        }
        if (!ok) {
            // The forged descriptor dies here: it is never shadow-copied
            // to the device, so no DMA with a bad address ever starts.
            nRejected_.inc();
            hv_.recordFault(gs.dom->id(), Fault::kNotOwner);
            gs.comp.count++;
            gs.comp.bytes.push_back(0); // error completion
            notify = true;
            continue;
        }
        nValidated_.inc();
        pinForDma(req.sg);

        ShadowTx s;
        s.g = g;
        s.bytes = req.pkt.payloadBytes;
        s.desc.sg = req.sg;
        s.desc.flags = nic::kDescValid | nic::kDescEop;
        if (req.pkt.payloadBytes > net::kMss)
            s.desc.flags |= nic::kDescTso;
        s.pkt = std::move(req.pkt);
        shadowQueue_.push_back(std::move(s));
    }
    if (notify && gs.active)
        hv_.deliverVirtIrq(*gs.channel);
    pumpShadow();
}

void
SwptValidator::validateRxBatch(GuestId g, std::deque<mem::PageNum> pages)
{
    GuestState &gs = state(g);
    auto &mem = hv_.mem();
    for (auto p : pages) {
        if (!gs.active)
            break;
        if (!mem.dmaAccessibleBy(p, gs.dom->id())) {
            nRejected_.inc();
            hv_.recordFault(gs.dom->id(), Fault::kNotOwner);
            continue;
        }
        nValidated_.inc();
        mem.getRef(p); // pinned while the hypervisor may copy into it
        gs.rxBufs.push_back(p);
    }
}

void
SwptValidator::pumpShadow()
{
    if (resetting_ || stalled_)
        return;
    std::uint32_t space =
        nic_.txRing().size() - (txProducer_ - nic_.txConsumer());
    bool wrote = false;
    while (space > 0 && !shadowQueue_.empty()) {
        ShadowTx s = std::move(shadowQueue_.front());
        shadowQueue_.pop_front();
        inflight_.push_back({s.g, s.bytes, s.desc.sg});
        nic_.txRing().write(txProducer_, s.desc);
        nic_.txRing().attachPacket(txProducer_, std::move(s.pkt));
        ++txProducer_;
        --space;
        wrote = true;
    }
    if (wrote)
        nic_.pioWriteTxProducer(txProducer_);
}

// --------------------------------------------------------------- interrupt

void
SwptValidator::onIrq()
{
    hv_.physicalInterrupt(hv_.params().virtIrqDeliver,
                          [this] { handleIrq(); });
}

void
SwptValidator::handleIrq()
{
    if (stalled_ || resetting_)
        return; // validator software is down; state drains at restart
    std::uint32_t completed = nic_.txConsumer() - txDrained_;
    txDrained_ += completed;
    auto deliveries = nic_.drainRx();

    // Cost of the hypervisor-side bottom half: lazy unpin of completed
    // descriptors, demux decision + copy for each received frame.
    std::uint64_t unpin_pages = 0;
    for (std::uint32_t i = 0; i < completed && i < inflight_.size(); ++i)
        unpin_pages += pagesSpanned(inflight_[i].sg);
    sim::Time cost =
        static_cast<sim::Time>(unpin_pages) * costs_.protUnpinPerPage;
    for (const auto &d : deliveries)
        cost += costs_.bridgePerPacket +
            static_cast<sim::Time>(costs_.swptRxCopyPerByteNs *
                                   static_cast<double>(d.pkt.payloadBytes) *
                                   sim::kNanosecond);

    hv_.cpu().runHypervisor(cost,
                            [this, completed,
                             deliveries = std::move(deliveries)]() mutable {
        std::vector<char> notify(guests_.size(), 0);

        for (std::uint32_t i = 0; i < completed; ++i) {
            SIM_ASSERT(!inflight_.empty(), "swpt completion underflow");
            Inflight f = std::move(inflight_.front());
            inflight_.pop_front();
            unpinAfterDma(f.sg);
            GuestState &gs = state(f.g);
            if (gs.active) {
                gs.comp.count++;
                gs.comp.bytes.push_back(f.bytes);
                notify[f.g] = true;
            }
        }

        for (auto &d : deliveries) {
            // Recycle the hypervisor-owned buffer this frame landed in.
            std::uint32_t slot = d.pos % rxSlotPage_.size();
            postOwnRxBuffer(rxSlotPage_[slot]);

            GuestState *dst = nullptr;
            GuestId dst_id = 0;
            for (GuestId g = 0; g < guests_.size(); ++g) {
                if (guests_[g]->active && guests_[g]->mac == d.pkt.dst) {
                    dst = guests_[g].get();
                    dst_id = g;
                    break;
                }
            }
            if (!dst) {
                nRxDemuxDrop_.inc();
                continue;
            }
            if (dst->rxBufs.empty()) {
                nRxNoBuf_.inc();
                continue;
            }
            mem::PageNum page = dst->rxBufs.front();
            dst->rxBufs.pop_front();
            hv_.mem().putRef(page); // back under guest control
            d.pkt.hostSg = {{mem::addrOf(page),
                             d.pkt.payloadBytes + net::kTcpIpHeader}};
            dst->rxMail.push_back(std::move(d.pkt));
            notify[dst_id] = true;
        }
        nic_.pioWriteRxProducer(rxProducer_);

        for (GuestId g = 0; g < guests_.size(); ++g)
            if (notify[g] && guests_[g]->active)
                hv_.deliverVirtIrq(*guests_[g]->channel);

        pumpShadow();
    });
}

void
SwptValidator::postOwnRxBuffer(mem::PageNum page)
{
    std::uint32_t slot = rxProducer_ % rxSlotPage_.size();
    rxSlotPage_[slot] = page;
    nic::DmaDescriptor desc;
    desc.sg = {{mem::addrOf(page), net::kMtu}};
    desc.flags = nic::kDescValid;
    nic_.rxRing().write(rxProducer_, desc);
    ++rxProducer_;
}

// --------------------------------------------------------------- mailboxes

SwptValidator::Completions
SwptValidator::takeCompletions(GuestId g)
{
    return std::exchange(state(g).comp, {});
}

std::vector<net::Packet>
SwptValidator::takeRx(GuestId g)
{
    return std::exchange(state(g).rxMail, {});
}

// --------------------------------------------------------------- faults

void
SwptValidator::stall()
{
    stalled_ = true;
}

void
SwptValidator::restart()
{
    if (!stalled_)
        return;
    stalled_ = false;
    for (GuestId g = 0; g < guests_.size(); ++g) {
        processTxPending(g);
        processRxPending(g);
    }
    handleIrq(); // drain completions / receives held during the stall
}

void
SwptValidator::detachGuest(GuestId g)
{
    GuestState &gs = state(g);
    if (!gs.active)
        return;
    gs.active = false;
    nDetachDrops_.inc(gs.pendingTx.size());
    gs.pendingTx.clear();
    gs.pendingRxPost.clear();
    auto &mem = hv_.mem();
    for (auto p : gs.rxBufs)
        mem.putRef(p);
    gs.rxBufs.clear();
    gs.rxMail.clear();
    gs.comp = {};
    // Flush its accepted-but-unposted descriptors; in-flight ones stay
    // pinned until the NIC consumes them.
    std::deque<ShadowTx> keep;
    for (auto &s : shadowQueue_) {
        if (s.g == g) {
            unpinAfterDma(s.desc.sg);
            nDetachDrops_.inc();
        } else {
            keep.push_back(std::move(s));
        }
    }
    shadowQueue_ = std::move(keep);
}

std::uint64_t
SwptValidator::resetNic()
{
    resetting_ = true;
    return nic_.quiesceTx();
}

void
SwptValidator::reconcileAfterReset()
{
    resetting_ = false;
    handleIrq();
}

} // namespace cdna::vmm
