/**
 * @file
 * A virtual machine (Xen "domain").
 *
 * Domains tie together an identity (DomainId used for page ownership),
 * a vCPU on the simulated core, and a kind (the privileged driver
 * domain vs an untrusted guest) used by report aggregation.
 */

#ifndef CDNA_VMM_DOMAIN_HH
#define CDNA_VMM_DOMAIN_HH

#include <string>

#include "cpu/sim_cpu.hh"
#include "mem/phys_memory.hh"
#include "sim/sim_object.hh"

namespace cdna::vmm {

class Hypervisor;

class Domain : public sim::SimObject
{
  public:
    enum class Kind { kDriver, kGuest };

    Domain(sim::SimContext &ctx, Hypervisor &hv, mem::DomainId id,
           std::string name, Kind kind, cpu::Vcpu &vcpu);

    mem::DomainId id() const { return id_; }
    Kind kind() const { return kind_; }
    cpu::Vcpu &vcpu() { return vcpu_; }
    Hypervisor &hypervisor() { return hv_; }

    /** Virtual interrupts delivered to this domain. */
    sim::Counter &virtIrqs() { return nVirtIrqs_; }
    std::uint64_t virtIrqCount() const { return nVirtIrqs_.value(); }

  private:
    Hypervisor &hv_;
    mem::DomainId id_;
    Kind kind_;
    cpu::Vcpu &vcpu_;
    sim::Counter &nVirtIrqs_;
};

} // namespace cdna::vmm

#endif // CDNA_VMM_DOMAIN_HH
