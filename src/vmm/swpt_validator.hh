/**
 * @file
 * Software-only passthrough validator (Kedia & Bansal's design point).
 *
 * Guests program real Intel-style descriptor rings in their own
 * memory; every doorbell PIO traps into the hypervisor, which audits
 * each descriptor against page ownership / grant state, pins the
 * referenced pages for the DMA lifetime, and shadow-copies accepted
 * descriptors onto ONE shared single-context IntelNic.  RX is
 * demultiplexed in software by destination MAC and copied into
 * guest-posted (validated, pinned) buffers.
 *
 * Contrast with CDNA: protection work is identical in *kind*
 * (validate + pin + stamp), but it runs on the doorbell path of a
 * shared device instead of against per-guest NIC hardware contexts --
 * so every guest's traffic serializes through one hypervisor-owned
 * ring and one interrupt, and the validator itself is a software
 * failure domain (see stall()/restart()).
 */

#ifndef CDNA_VMM_SWPT_VALIDATOR_HH
#define CDNA_VMM_SWPT_VALIDATOR_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/cost_model.hh"
#include "mem/dma_engine.hh"
#include "net/packet.hh"
#include "nic/intel_nic.hh"
#include "sim/sim_object.hh"
#include "vmm/hypervisor.hh"

namespace cdna::vmm {

class SwptValidator : public sim::SimObject
{
  public:
    using GuestId = std::uint32_t;

    /** One guest-authored TX descriptor handed through a doorbell.
     *  @p sg is what the guest *wrote* (an attacker may forge it);
     *  the validator audits sg, not the packet. */
    struct TxReq
    {
        mem::SgList sg;
        net::Packet pkt;
    };

    /** TX completions surfaced to one guest since it last drained.
     *  A zero-byte entry is an error completion (rejected descriptor). */
    struct Completions
    {
        std::uint32_t count = 0;
        std::vector<std::uint64_t> bytes;
    };

    SwptValidator(sim::SimContext &ctx, std::string name, Hypervisor &hv,
                  nic::IntelNic &nic, const core::CostModel &costs);

    /** Take ownership of the device: allocate hypervisor-owned rings
     *  and RX buffers, enable promiscuous RX, wire the interrupt. */
    void attach();

    /** Register a guest port; the validator creates its event channel
     *  and delivers @p irq_handler upcalls through it. */
    GuestId addGuest(Domain &dom, net::MacAddr mac,
                     std::function<void()> irq_handler);

    // --- doorbells (guest PIO -> hypervisor trap) ------------------------
    /** Guest advertises freshly written TX descriptors. */
    void txDoorbell(GuestId g, std::vector<TxReq> batch);
    /** Guest posts RX buffer pages (each validated + pinned). */
    void rxDoorbell(GuestId g, std::vector<mem::PageNum> pages);

    // --- mailboxes (drained by the guest driver's virtual IRQ) -----------
    Completions takeCompletions(GuestId g);
    std::vector<net::Packet> takeRx(GuestId g);

    // --- fault-plan composition ------------------------------------------
    /** Validator software stalls (dom0-equivalent kill): doorbells
     *  still trap but latch unprocessed; the NIC keeps consuming what
     *  was already posted and its RX ring runs dry. */
    void stall();
    /** Validator restarts: reprocess latched doorbells, drain the
     *  completions and receives that accumulated during the stall. */
    void restart();
    bool stalled() const { return stalled_; }

    /** Guest killed mid-DMA: drop its latched/queued descriptors,
     *  release its posted RX buffers, stop demuxing to it.  Pages
     *  referenced by descriptors already on the NIC stay pinned until
     *  the device consumes them (the quarantine argument). */
    void detachGuest(GuestId g);
    bool guestActive(GuestId g) const;

    /** Device reset (firmware-reboot fault): quiesce the TX engine and
     *  park the datapath; returns packets dropped in flight. */
    std::uint64_t resetNic();
    /** After the reboot delay: surface the quiesced completions and
     *  restart shadow-ring pumping. */
    void reconcileAfterReset();

    // --- stats ------------------------------------------------------------
    std::uint64_t doorbellTraps() const { return nDoorbells_.value(); }
    std::uint64_t descValidated() const { return nValidated_.value(); }
    std::uint64_t descRejected() const { return nRejected_.value(); }
    /** Hypervisor CPU time spent on the doorbell/validation path. */
    sim::Time validationTime() const { return validationTime_; }
    std::uint64_t rxDemuxDrops() const { return nRxDemuxDrop_.value(); }
    std::uint64_t rxNoBufDrops() const { return nRxNoBuf_.value(); }

    nic::IntelNic &nic() { return nic_; }

  private:
    struct GuestState
    {
        Domain *dom = nullptr;
        net::MacAddr mac;
        EventChannel *channel = nullptr;
        bool active = true;
        std::deque<TxReq> pendingTx;             //!< latched doorbells
        std::deque<mem::PageNum> pendingRxPost;  //!< latched RX posts
        std::deque<mem::PageNum> rxBufs;         //!< validated + pinned
        Completions comp;                        //!< completion mailbox
        std::vector<net::Packet> rxMail;         //!< delivery mailbox
    };

    /** Accepted descriptor waiting for space on the shared real ring. */
    struct ShadowTx
    {
        GuestId g;
        nic::DmaDescriptor desc;
        net::Packet pkt;
        std::uint64_t bytes;
    };

    /** Descriptor on the NIC; pages pinned until the device consumes. */
    struct Inflight
    {
        GuestId g;
        std::uint64_t bytes;
        mem::SgList sg;
    };

    GuestState &state(GuestId g);
    void onIrq();
    void handleIrq();
    void processTxPending(GuestId g);
    void processRxPending(GuestId g);
    void validateTxBatch(GuestId g, std::deque<TxReq> batch);
    void validateRxBatch(GuestId g, std::deque<mem::PageNum> pages);
    void pumpShadow();
    void postOwnRxBuffer(mem::PageNum page);
    void pinForDma(const mem::SgList &sg);
    void unpinAfterDma(const mem::SgList &sg);
    static std::uint64_t pagesSpanned(const mem::SgList &sg);

    Hypervisor &hv_;
    nic::IntelNic &nic_;
    const core::CostModel &costs_;

    std::vector<std::unique_ptr<GuestState>> guests_;
    std::deque<ShadowTx> shadowQueue_;
    std::deque<Inflight> inflight_;

    bool stalled_ = false;
    bool resetting_ = false;

    // shared real-ring state (free-running, hypervisor-owned)
    std::uint32_t txProducer_ = 0;
    std::uint32_t txDrained_ = 0;
    std::uint32_t rxProducer_ = 0;
    std::vector<mem::PageNum> rxSlotPage_;

    sim::Time validationTime_ = 0;

    sim::Counter &nDoorbells_;
    sim::Counter &nValidated_;
    sim::Counter &nRejected_;
    sim::Counter &nRxDemuxDrop_;
    sim::Counter &nRxNoBuf_;
    sim::Counter &nDetachDrops_;
};

} // namespace cdna::vmm

#endif // CDNA_VMM_SWPT_VALIDATOR_HH
