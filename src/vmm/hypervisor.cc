#include "vmm/hypervisor.hh"

#include <utility>

namespace cdna::vmm {

const char *
faultName(Fault f)
{
    switch (f) {
      case Fault::kNone: return "none";
      case Fault::kNotOwner: return "not-owner";
      case Fault::kBadSeqno: return "bad-seqno";
      case Fault::kBadContext: return "bad-context";
      case Fault::kRingFull: return "ring-full";
    }
    return "?";
}

Domain::Domain(sim::SimContext &ctx, Hypervisor &hv, mem::DomainId id,
               std::string name, Kind kind, cpu::Vcpu &vcpu)
    : sim::SimObject(ctx, std::move(name)),
      hv_(hv),
      id_(id),
      kind_(kind),
      vcpu_(vcpu),
      nVirtIrqs_(stats().addCounter("virt_irqs"))
{
}

Hypervisor::Hypervisor(sim::SimContext &ctx, cpu::SimCpu &cpu,
                       mem::PhysMemory &mem, HvParams params)
    : sim::SimObject(ctx, "hypervisor"),
      cpu_(cpu),
      mem_(mem),
      grants_(ctx, mem),
      params_(params),
      nHypercalls_(stats().addCounter("hypercalls")),
      nPhysIrqs_(stats().addCounter("phys_irqs")),
      nVirtIrqs_(stats().addCounter("virt_irqs")),
      nFaults_(stats().addCounter("faults")),
      nCxtTraps_(stats().addCounter("context_traps"))
{
}

Domain &
Hypervisor::createDomain(Domain::Kind kind, const std::string &name,
                         int weight)
{
    mem::DomainId id = nextDomId_++;
    cpu::Vcpu &vcpu = cpu_.createVcpu(id, name + ".vcpu", weight);
    // Guest working sets contend for the cache; the (single) driver
    // domain's footprint is part of the calibrated baseline.
    vcpu.setContends(kind == Domain::Kind::kGuest);
    domains_.push_back(std::make_unique<Domain>(ctx(), *this, id, name,
                                                kind, vcpu));
    return *domains_.back();
}

Domain *
Hypervisor::domain(mem::DomainId id)
{
    for (auto &d : domains_)
        if (d->id() == id)
            return d.get();
    return nullptr;
}

EventChannel &
Hypervisor::createChannel(Domain &target, sim::Time entry_cost,
                          std::function<void()> handler)
{
    channels_.push_back(std::make_unique<EventChannel>(target, entry_cost,
                                                       std::move(handler)));
    return *channels_.back();
}

void
Hypervisor::notifyChannel(EventChannel &ch)
{
    nVirtIrqs_.inc();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "evtchn_send", now());
    cpu_.runHypervisor(params_.hypercallOverhead + params_.evtchnSend +
                           params_.virtIrqDeliver,
                       [&ch] { ch.notify(); });
}

void
Hypervisor::deliverVirtIrq(EventChannel &ch)
{
    nVirtIrqs_.inc();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "virt_irq", now());
    cpu_.runHypervisor(params_.virtIrqDeliver, [&ch] { ch.notify(); });
}

void
Hypervisor::physicalInterrupt(sim::Time isr_cost, std::function<void()> body)
{
    nPhysIrqs_.inc();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "phys_irq", now());
    cpu_.runHypervisor(params_.physIrqDispatch + isr_cost, std::move(body));
}

void
Hypervisor::hypercall(sim::Time cost, std::function<void()> body,
                      std::function<void()> done)
{
    nHypercalls_.inc();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "hypercall", now());
    cpu_.runHypervisor(params_.hypercallOverhead + cost,
                       [body = std::move(body), done = std::move(done)] {
                           if (body)
                               body();
                           if (done)
                               done();
                       });
}

void
Hypervisor::contextTrap(sim::Time cost, std::function<void()> body)
{
    nCxtTraps_.inc();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "cxt_trap", now());
    cpu_.runHypervisor(params_.hypercallOverhead + cost, std::move(body));
}

void
Hypervisor::recordFault(mem::DomainId dom, Fault f)
{
    nFaults_.inc();
    CDNA_TRACE_INSTANT_ARG(ctx().tracer(), traceLane(), "fault", now(),
                           "domain", dom);
    faults_.emplace_back(dom, f, now());
    log_.warn("protection fault: domain %u %s", dom, faultName(f));
}

std::uint64_t
Hypervisor::faultCount(mem::DomainId dom, Fault f) const
{
    std::uint64_t n = 0;
    for (const auto &[d, kind, when] : faults_)
        if (d == dom && kind == f)
            ++n;
    return n;
}

} // namespace cdna::vmm
