/**
 * @file
 * The hypervisor: domain lifecycle, hypercalls, interrupt dispatch,
 * grant operations (paper section 2.1).
 *
 * Xen's three key functions (allocate/isolate resources, field all
 * physical interrupts, mediate I/O) are implemented here.  All
 * hypervisor CPU time flows through SimCpu::runHypervisor so the
 * "Hyp" column of the paper's execution profiles falls out of the
 * accounting directly.
 */

#ifndef CDNA_VMM_HYPERVISOR_HH
#define CDNA_VMM_HYPERVISOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/sim_cpu.hh"
#include "mem/grant_table.hh"
#include "mem/phys_memory.hh"
#include "sim/sim_object.hh"
#include "vmm/domain.hh"
#include "vmm/event_channel.hh"

namespace cdna::vmm {

/** Hypervisor CPU-cost parameters (calibrated; see core/cost_model). */
struct HvParams
{
    /** Entry/exit overhead of any hypercall. */
    sim::Time hypercallOverhead = sim::nanoseconds(600);
    /** Hypervisor ISR cost of fielding one physical interrupt. */
    sim::Time physIrqDispatch = sim::nanoseconds(1100);
    /** Cost of scheduling one virtual interrupt to a domain. */
    sim::Time virtIrqDeliver = sim::nanoseconds(400);
    /** Grant-table costs, charged per page. */
    sim::Time grantMapPerPage = sim::nanoseconds(300);
    sim::Time grantUnmapPerPage = sim::nanoseconds(250);
    /** One RX page-flip exchange (transfer in + balance page out). */
    sim::Time pageFlipPerPage = sim::nanoseconds(2200);
    /** Event-channel send hypercall body. */
    sim::Time evtchnSend = sim::nanoseconds(300);
};

/** Protection fault kinds the CDNA architecture can report. */
enum class Fault
{
    kNone,
    kNotOwner,    //!< DMA descriptor names a page the guest doesn't own
    kBadSeqno,    //!< NIC saw a stale/forged descriptor sequence number
    kBadContext,  //!< access to a context not assigned to the caller
    kRingFull,    //!< no descriptor slots available
};

const char *faultName(Fault f);

class Hypervisor : public sim::SimObject
{
  public:
    Hypervisor(sim::SimContext &ctx, cpu::SimCpu &cpu, mem::PhysMemory &mem,
               HvParams params = {});

    /** Create a domain with a fresh vCPU and page-ownership identity. */
    Domain &createDomain(Domain::Kind kind, const std::string &name,
                         int weight = 1);

    Domain *domain(mem::DomainId id);
    const std::vector<std::unique_ptr<Domain>> &domains() const
    {
        return domains_;
    }

    /** Create an event channel targeting @p target. */
    EventChannel &createChannel(Domain &target, sim::Time entry_cost,
                                std::function<void()> handler);

    /**
     * Inter-domain notification (evtchn_send hypercall): charges the
     * hypercall + delivery cost, then raises the channel.
     */
    void notifyChannel(EventChannel &ch);

    /**
     * Deliver a virtual interrupt from *hypervisor context* (already in
     * the ISR): charges only the per-delivery cost.
     */
    void deliverVirtIrq(EventChannel &ch);

    /**
     * A device raised its physical interrupt line.
     * @param isr_cost additional ISR body cost beyond the dispatch cost
     * @param body     decode work executed in hypervisor context
     */
    void physicalInterrupt(sim::Time isr_cost, std::function<void()> body);

    /**
     * Execute a hypercall from a domain: charges overhead + @p cost in
     * hypervisor context, runs @p body, then @p done.
     */
    void hypercall(sim::Time cost, std::function<void()> body,
                   std::function<void()> done = {});

    /**
     * Virtual-context page trap (oversubscribed CDNA): a doorbell to a
     * paged-out context lands here.  Charges @p cost in hypervisor
     * context, then runs @p body (the context pager's switch logic).
     */
    void contextTrap(sim::Time cost, std::function<void()> body);

    cpu::SimCpu &cpu() { return cpu_; }
    mem::PhysMemory &mem() { return mem_; }
    mem::GrantTable &grants() { return grants_; }
    const HvParams &params() const { return params_; }

    /** Record a protection fault (reported by the CDNA NIC or checks). */
    void recordFault(mem::DomainId dom, Fault f);

    std::uint64_t faultCount() const { return nFaults_.value(); }
    std::uint64_t faultCount(mem::DomainId dom, Fault f) const;
    std::uint64_t hypercallCount() const { return nHypercalls_.value(); }
    std::uint64_t physIrqCount() const { return nPhysIrqs_.value(); }
    std::uint64_t contextTrapCount() const { return nCxtTraps_.value(); }

  private:
    cpu::SimCpu &cpu_;
    mem::PhysMemory &mem_;
    mem::GrantTable grants_;
    HvParams params_;
    mem::DomainId nextDomId_ = 1;
    std::vector<std::unique_ptr<Domain>> domains_;
    std::vector<std::unique_ptr<EventChannel>> channels_;
    std::vector<std::tuple<mem::DomainId, Fault, sim::Time>> faults_;

    sim::Counter &nHypercalls_;
    sim::Counter &nPhysIrqs_;
    sim::Counter &nVirtIrqs_;
    sim::Counter &nFaults_;
    sim::Counter &nCxtTraps_;
};

} // namespace cdna::vmm

#endif // CDNA_VMM_HYPERVISOR_HH
