/**
 * @file
 * Event channels: Xen's virtual interrupt primitive.
 *
 * An event channel is a *pending bit*, not a queue: notifying an
 * already-pending channel merges with the earlier notification.  This
 * merging is what lets per-wake costs amortize under load -- the
 * batching behaviour behind both CDNA's flat bandwidth curve and Xen's
 * graceful (rather than collapsing) decline in the paper's figures 3
 * and 4.
 */

#ifndef CDNA_VMM_EVENT_CHANNEL_HH
#define CDNA_VMM_EVENT_CHANNEL_HH

#include <functional>
#include <string>

#include "cpu/sim_cpu.hh"
#include "sim/stats.hh"
#include "vmm/domain.hh"

namespace cdna::vmm {

class EventChannel
{
  public:
    /**
     * @param target     domain whose vCPU fields the upcall
     * @param entry_cost guest-OS cost of taking the virtual interrupt
     *                   (upcall entry, EOI, handler prologue)
     * @param handler    device-driver handler body; its own cost is
     *                   charged by the tasks the handler posts
     */
    EventChannel(Domain &target, sim::Time entry_cost,
                 std::function<void()> handler)
        : target_(target),
          entryCost_(entry_cost),
          handler_(std::move(handler))
    {
    }

    EventChannel(const EventChannel &) = delete;
    EventChannel &operator=(const EventChannel &) = delete;

    /**
     * Mark the channel pending and schedule the upcall.  If already
     * pending, the notification merges and nothing new is scheduled.
     * @retval true a fresh upcall was scheduled
     */
    bool
    notify()
    {
        nNotifies_++;
        if (pending_)
            return false;
        pending_ = true;
        target_.virtIrqs().inc();
        target_.vcpu().postIrq(cpu::Bucket::kOs, entryCost_, [this] {
            pending_ = false;
            if (handler_)
                handler_();
        });
        return true;
    }

    bool pending() const { return pending_; }
    Domain &target() { return target_; }
    std::uint64_t notifyCount() const { return nNotifies_; }

  private:
    Domain &target_;
    sim::Time entryCost_;
    std::function<void()> handler_;
    bool pending_ = false;
    std::uint64_t nNotifies_ = 0;
};

} // namespace cdna::vmm

#endif // CDNA_VMM_EVENT_CHANNEL_HH
