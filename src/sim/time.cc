#include "sim/time.hh"

#include <cstdio>

namespace cdna::sim {

std::string
formatTime(Time t)
{
    char buf[64];
    const char *sign = t < 0 ? "-" : "";
    Time a = t < 0 ? -t : t;
    if (a >= kSecond) {
        std::snprintf(buf, sizeof(buf), "%s%.3f s", sign, toSeconds(a));
    } else if (a >= kMillisecond) {
        std::snprintf(buf, sizeof(buf), "%s%.3f ms", sign,
                      static_cast<double>(a) / kMillisecond);
    } else if (a >= kMicrosecond) {
        std::snprintf(buf, sizeof(buf), "%s%.3f us", sign,
                      static_cast<double>(a) / kMicrosecond);
    } else if (a >= kNanosecond) {
        std::snprintf(buf, sizeof(buf), "%s%.3f ns", sign,
                      static_cast<double>(a) / kNanosecond);
    } else {
        std::snprintf(buf, sizeof(buf), "%s%lld ps", sign,
                      static_cast<long long>(a));
    }
    return buf;
}

} // namespace cdna::sim
