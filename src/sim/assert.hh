/**
 * @file
 * Internal-invariant checking for the simulator.
 *
 * Following the gem5 panic()/fatal() convention:
 *  - SIM_PANIC / SIM_ASSERT fire on conditions that indicate a bug in the
 *    simulator itself; they abort.
 *  - simFatal() reports a condition that is the *user's* fault (bad
 *    configuration, impossible parameter combination) and exits cleanly.
 *
 * Protection violations by simulated guests are neither: they are modeled
 * outcomes, reported as values (see vmm::Fault), never as aborts.
 */

#ifndef CDNA_SIM_ASSERT_HH
#define CDNA_SIM_ASSERT_HH

#include <cstdarg>

namespace cdna::sim {

/** Abort with a formatted message; used for simulator bugs. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);

/** Exit(1) with a formatted message; used for user/configuration errors. */
[[noreturn]] void simFatal(const char *fmt, ...);

} // namespace cdna::sim

/** Abort: something happened that should never happen (simulator bug). */
#define SIM_PANIC(...) \
    ::cdna::sim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an internal invariant; aborts with location on failure. */
#define SIM_ASSERT(cond, ...)                                             \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::cdna::sim::panicImpl(__FILE__, __LINE__,                    \
                                   "assertion failed: %s", #cond);        \
        }                                                                 \
    } while (0)

#endif // CDNA_SIM_ASSERT_HH
