#include "sim/fault_injector.hh"

#include <utility>

#include "sim/trace.hh"

namespace cdna::sim {

FaultInjector::FaultInjector(SimContext &ctx, std::string name,
                             std::uint64_t system_seed, FaultRates rates)
    : SimObject(ctx, std::move(name)),
      rates_(rates),
      rng_(faultStreamSeed(system_seed)),
      nDrop_(stats().addCounter("frames_dropped")),
      nCorrupt_(stats().addCounter("frames_corrupted")),
      nDup_(stats().addCounter("frames_duplicated")),
      nDmaDelay_(stats().addCounter("dma_delays")),
      nFwStall_(stats().addCounter("firmware_stalls")),
      nFwReset_(stats().addCounter("firmware_resets")),
      nGuestKill_(stats().addCounter("guest_kills")),
      nMboxTimeout_(stats().addCounter("mailbox_timeouts")),
      nRingResync_(stats().addCounter("ring_resyncs")),
      nDomKill_(stats().addCounter("driver_domain_kills")),
      nDomRestart_(stats().addCounter("driver_domain_restarts")),
      nFwReboot_(stats().addCounter("firmware_reboots")),
      nFeReconnect_(stats().addCounter("frontend_reconnects"))
{
}

FaultInjector::FrameFault
FaultInjector::frameFault()
{
    if (!rates_.framesArmed())
        return FrameFault::kNone;
    // One draw decides the frame's fate; the sub-ranges partition [0,1).
    double u = rng_.uniform();
    if (u < rates_.frameDrop) {
        nDrop_.inc();
        CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "frame_drop",
                           now());
        return FrameFault::kDrop;
    }
    u -= rates_.frameDrop;
    if (u < rates_.frameCorrupt) {
        nCorrupt_.inc();
        CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "frame_corrupt",
                           now());
        return FrameFault::kCorrupt;
    }
    u -= rates_.frameCorrupt;
    if (u < rates_.frameDuplicate) {
        nDup_.inc();
        CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "frame_dup",
                           now());
        return FrameFault::kDuplicate;
    }
    return FrameFault::kNone;
}

Time
FaultInjector::dmaDelay()
{
    if (!rates_.dmaArmed() || !rng_.chance(rates_.dmaDelayChance))
        return 0;
    nDmaDelay_.inc();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "dma_delay", now());
    return rates_.dmaDelay;
}

void
FaultInjector::noteFirmwareStall()
{
    nFwStall_.inc();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "firmware_stall",
                       now());
}

void
FaultInjector::noteFirmwareReset()
{
    nFwReset_.inc();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "firmware_reset",
                       now());
}

void
FaultInjector::noteGuestKill()
{
    nGuestKill_.inc();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "guest_kill", now());
}

void
FaultInjector::noteMailboxTimeout()
{
    nMboxTimeout_.inc();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "mailbox_timeout",
                       now());
}

void
FaultInjector::noteRingResync()
{
    nRingResync_.inc();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "ring_resync", now());
}

void
FaultInjector::noteDriverDomainKill()
{
    nDomKill_.inc();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "driver_domain_kill",
                       now());
}

void
FaultInjector::noteDriverDomainRestart()
{
    nDomRestart_.inc();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(),
                       "driver_domain_restart", now());
}

void
FaultInjector::noteFirmwareReboot()
{
    nFwReboot_.inc();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "firmware_reboot",
                       now());
}

void
FaultInjector::noteFrontendReconnect()
{
    nFeReconnect_.inc();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "frontend_reconnect",
                       now());
}

} // namespace cdna::sim
