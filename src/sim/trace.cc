#include "sim/trace.hh"

#include <cstdio>

namespace cdna::sim {

namespace {

/** Minimal JSON string escaping (names are simple identifiers). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Picoseconds to the microsecond doubles Chrome's "ts"/"dur" expect. */
double
toUs(Time t)
{
    return static_cast<double>(t) / 1.0e6;
}

} // namespace

Tracer::LaneId
Tracer::lane(const std::string &name)
{
    for (LaneId i = 0; i < laneNames_.size(); ++i)
        if (laneNames_[i] == name)
            return i;
    laneNames_.push_back(name);
    laneWanted_.push_back(laneMatchesFilter(name) ? 1 : 0);
    return static_cast<LaneId>(laneNames_.size() - 1);
}

void
Tracer::enable(std::size_t capacity)
{
    if (capacity == 0)
        capacity = 1;
    if (capacity_ != capacity) {
        capacity_ = capacity;
        buf_.clear();
        buf_.reserve(capacity_ <= kDefaultCapacity ? capacity_ : 0);
        total_ = 0;
    }
    enabled_ = true;
}

void
Tracer::setFilter(const std::string &filter)
{
    filter_.clear();
    std::size_t pos = 0;
    while (pos <= filter.size()) {
        std::size_t comma = filter.find(',', pos);
        if (comma == std::string::npos)
            comma = filter.size();
        if (comma > pos)
            filter_.push_back(filter.substr(pos, comma - pos));
        pos = comma + 1;
    }
    for (LaneId i = 0; i < laneNames_.size(); ++i)
        laneWanted_[i] = laneMatchesFilter(laneNames_[i]) ? 1 : 0;
}

bool
Tracer::laneMatchesFilter(const std::string &name) const
{
    if (filter_.empty())
        return true;
    for (const auto &f : filter_)
        if (name.find(f) != std::string::npos)
            return true;
    return false;
}

void
Tracer::push(const Event &e)
{
    if (buf_.size() < capacity_)
        buf_.push_back(e);
    else
        buf_[total_ % capacity_] = e;
    ++total_;
}

void
Tracer::span(LaneId lane, const char *name, Time start, Time dur,
             const char *arg_name, std::uint64_t arg)
{
    push(Event{start, dur, name, arg_name, static_cast<double>(arg), lane,
               Kind::kSpan});
}

void
Tracer::instant(LaneId lane, const char *name, Time at,
                const char *arg_name, std::uint64_t arg)
{
    push(Event{at, 0, name, arg_name, static_cast<double>(arg), lane,
               Kind::kInstant});
}

void
Tracer::counter(LaneId lane, const char *name, Time at, double value)
{
    push(Event{at, 0, name, nullptr, value, lane, Kind::kCounter});
}

std::size_t
Tracer::eventCount() const
{
    return buf_.size();
}

std::uint64_t
Tracer::droppedCount() const
{
    return total_ > buf_.size() ? total_ - buf_.size() : 0;
}

void
Tracer::clear()
{
    buf_.clear();
    total_ = 0;
}

void
Tracer::appendEventJson(std::string &out, const Event &e) const
{
    char buf[256];
    switch (e.kind) {
      case Kind::kSpan:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,"
                      "\"tid\":%u,\"ts\":%.6f,\"dur\":%.6f",
                      e.name, e.lane, toUs(e.start), toUs(e.dur));
        out += buf;
        break;
      case Kind::kInstant:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                      "\"pid\":0,\"tid\":%u,\"ts\":%.6f",
                      e.name, e.lane, toUs(e.start));
        out += buf;
        break;
      case Kind::kCounter:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,"
                      "\"tid\":%u,\"ts\":%.6f,\"args\":{\"value\":%.6g}}",
                      e.name, e.lane, toUs(e.start), e.arg);
        out += buf;
        return;
    }
    if (e.argName) {
        std::snprintf(buf, sizeof(buf), ",\"args\":{\"%s\":%.17g}",
                      e.argName, e.arg);
        out += buf;
    }
    out += "}";
}

std::string
Tracer::toChromeJson() const
{
    std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    char buf[256];
    bool first = true;
    for (LaneId i = 0; i < laneNames_.size(); ++i) {
        std::snprintf(buf, sizeof(buf),
                      "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                      "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                      first ? "" : ",\n", i,
                      jsonEscape(laneNames_[i]).c_str());
        out += buf;
        first = false;
    }
    // Oldest surviving event first (ring may have wrapped).
    std::size_t n = buf_.size();
    std::size_t start = total_ > n ? total_ % capacity_ : 0;
    for (std::size_t k = 0; k < n; ++k) {
        out += first ? "" : ",\n";
        first = false;
        appendEventJson(out, buf_[(start + k) % n]);
    }
    out += "\n]}\n";
    return out;
}

bool
Tracer::writeChromeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string json = toChromeJson();
    bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

} // namespace cdna::sim
