#include "sim/assert.hh"

#include <cstdio>
#include <cstdlib>

namespace cdna::sim {

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
simFatal(const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

} // namespace cdna::sim
