#include "sim/thread_pool.hh"

#include <algorithm>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace cdna::sim {

namespace {

/** One worker's deque of pending task indices. */
struct WorkQueue
{
    std::mutex mu;
    std::deque<std::size_t> tasks;

    bool
    popFront(std::size_t *out)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (tasks.empty())
            return false;
        *out = tasks.front();
        tasks.pop_front();
        return true;
    }

    bool
    stealBack(std::size_t *out)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (tasks.empty())
            return false;
        *out = tasks.back();
        tasks.pop_back();
        return true;
    }

    std::size_t
    size()
    {
        std::lock_guard<std::mutex> lock(mu);
        return tasks.size();
    }
};

} // namespace

unsigned
defaultThreadCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
parallelFor(unsigned threads, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    unsigned workers = std::max(1u, threads);
    workers = static_cast<unsigned>(
        std::min<std::size_t>(workers, n));

    if (workers == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::vector<WorkQueue> queues(workers);
    for (std::size_t i = 0; i < n; ++i)
        queues[i % workers].tasks.push_back(i);

    std::mutex errMu;
    std::exception_ptr firstError;

    auto workerBody = [&](unsigned self) {
        std::size_t task;
        for (;;) {
            if (!queues[self].popFront(&task)) {
                // Own deque dry: steal from the victim with the most
                // queued work (ties broken by lowest index, so the
                // scan is deterministic even if the outcome of the
                // race is not -- results are index-addressed anyway).
                std::size_t bestSize = 0;
                unsigned victim = workers;
                for (unsigned q = 0; q < workers; ++q) {
                    if (q == self)
                        continue;
                    std::size_t s = queues[q].size();
                    if (s > bestSize) {
                        bestSize = s;
                        victim = q;
                    }
                }
                if (victim == workers ||
                    !queues[victim].stealBack(&task))
                    return; // nothing left anywhere
            }
            try {
                fn(task);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errMu);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(workerBody, w);
    for (auto &t : pool)
        t.join();

    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace cdna::sim
