/**
 * @file
 * Work-stealing thread pool for running independent simulations.
 *
 * The sweep runner executes many fully isolated System instances; all
 * it needs from a pool is "run tasks 0..n-1 on k threads, balancing
 * load".  Each worker owns a deque seeded round-robin with task
 * indices; it pops work from the front of its own deque and, when that
 * runs dry, steals from the back of the busiest victim.  Deques are
 * mutex-protected (simulation runs dwarf any locking cost, and plain
 * locks keep the pool trivially ThreadSanitizer-clean).
 *
 * With one thread the tasks run inline on the calling thread, so a
 * `-j1` sweep is byte-for-byte the sequential program.
 */

#ifndef CDNA_SIM_THREAD_POOL_HH
#define CDNA_SIM_THREAD_POOL_HH

#include <cstddef>
#include <functional>

namespace cdna::sim {

/**
 * Run @p fn(i) for every i in [0, n), using up to @p threads workers.
 *
 * Blocks until every task has completed.  Task indices are distributed
 * round-robin across workers and rebalanced by stealing, so stragglers
 * (e.g. a 24-guest run next to a 1-guest run) do not serialize the
 * sweep.  The first exception thrown by a task is rethrown here after
 * all workers have stopped.
 *
 * @param threads  worker count; clamped to [1, n].  1 means inline.
 * @param n        number of tasks
 * @param fn       task body; called exactly once per index
 */
void parallelFor(unsigned threads, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

/** Reasonable default worker count: the hardware concurrency, >= 1. */
unsigned defaultThreadCount();

} // namespace cdna::sim

#endif // CDNA_SIM_THREAD_POOL_HH
