/**
 * @file
 * Discrete-event kernel: a single global-ordered event queue.
 *
 * All simulated hardware and software progress is expressed as callbacks
 * scheduled at absolute picosecond timestamps.  Events with equal
 * timestamps execute in scheduling order (FIFO), which together with the
 * deterministic Rng makes every run bit-reproducible for a given seed.
 */

#ifndef CDNA_SIM_EVENT_QUEUE_HH
#define CDNA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hh"

namespace cdna::sim {

/** Opaque handle to a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/** Sentinel returned for operations that scheduled nothing. */
inline constexpr EventId kInvalidEvent = 0;

/**
 * Min-heap event queue ordered by (time, insertion sequence).
 *
 * The queue owns the simulated clock: now() advances only as events are
 * dispatched (or explicitly via runUntil()'s horizon).  Scheduling in the
 * past is a simulator bug and panics.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p fn to run @p delay after now.
     * @param delay  non-negative offset from the current time
     * @param fn     callback to invoke
     * @return a handle that can be passed to cancel()
     */
    EventId schedule(Time delay, Callback fn);

    /** Schedule @p fn at the absolute time @p when (>= now). */
    EventId scheduleAt(Time when, Callback fn);

    /**
     * Cancel a pending event.
     * @retval true the event was pending and is now cancelled
     * @retval false the handle was invalid, already fired, or cancelled
     */
    bool cancel(EventId id);

    /** True when no live events remain. */
    bool empty() const { return live_.empty(); }

    /** Number of live (not-yet-fired, not-cancelled) events. */
    std::size_t pendingCount() const { return live_.size(); }

    /** Timestamp of the next live event; horizon if none. */
    Time nextEventTime() const;

    /**
     * Dispatch the single next event, advancing the clock to it.
     * @retval true an event was dispatched
     * @retval false the queue was empty
     */
    bool runOne();

    /**
     * Dispatch all events with timestamp <= @p horizon, then advance the
     * clock to @p horizon.
     * @return the number of events dispatched
     */
    std::uint64_t runUntil(Time horizon);

    /** Dispatch events until the queue drains (or @p max_events fire). */
    std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

    /** Total number of events dispatched since construction. */
    std::uint64_t dispatchedCount() const { return dispatched_; }

  private:
    struct HeapEntry
    {
        Time when;
        EventId id;

        bool
        operator>(const HeapEntry &o) const
        {
            return when != o.when ? when > o.when : id > o.id;
        }
    };

    Time now_ = 0;
    EventId nextId_ = 1;
    std::uint64_t dispatched_ = 0;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>> heap_;
    /** Live events; absence of a heap entry's id here means "cancelled". */
    std::unordered_map<EventId, Callback> live_;
};

} // namespace cdna::sim

#endif // CDNA_SIM_EVENT_QUEUE_HH
