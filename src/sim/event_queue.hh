/**
 * @file
 * Discrete-event kernel: a single global-ordered event queue.
 *
 * All simulated hardware and software progress is expressed as callbacks
 * scheduled at absolute picosecond timestamps.  Events with equal
 * timestamps execute in scheduling order (FIFO), which together with the
 * deterministic Rng makes every run bit-reproducible for a given seed.
 *
 * The queue is the simulator's hot path: a full-system run schedules and
 * dispatches tens of millions of events.  Event state therefore lives in
 * pooled nodes organised as an intrusive 4-ary min-heap -- scheduling
 * reuses a free node instead of allocating, cancellation is O(log n)
 * with immediate removal (no tombstones), and callbacks are stored in a
 * small-buffer type so typical captures never touch the heap.
 */

#ifndef CDNA_SIM_EVENT_QUEUE_HH
#define CDNA_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hh"

namespace cdna::sim {

/** Opaque handle to a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/** Sentinel returned for operations that scheduled nothing. */
inline constexpr EventId kInvalidEvent = 0;

/**
 * Move-only callable of signature void() with inline storage.
 *
 * Callables up to kInlineSize bytes (every capture pattern in this
 * simulator: a few pointers and integers) are stored inside the event
 * node itself; larger ones fall back to a heap allocation.  This is the
 * drop-in replacement for the std::function the queue used to hold,
 * minus the per-schedule allocation.
 */
class InplaceCallback
{
  public:
    static constexpr std::size_t kInlineSize = 48;

    InplaceCallback() = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InplaceCallback>>>
    InplaceCallback(F &&f) // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            vt_ = inlineVtable<Fn>();
        } else {
            *reinterpret_cast<Fn **>(buf_) = new Fn(std::forward<F>(f));
            vt_ = heapVtable<Fn>();
        }
    }

    InplaceCallback(InplaceCallback &&o) noexcept { moveFrom(o); }

    InplaceCallback &
    operator=(InplaceCallback &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    InplaceCallback(const InplaceCallback &) = delete;
    InplaceCallback &operator=(const InplaceCallback &) = delete;

    ~InplaceCallback() { reset(); }

    explicit operator bool() const { return vt_ != nullptr; }

    void operator()() { vt_->invoke(buf_); }

    void
    reset()
    {
        if (vt_) {
            vt_->destroy(buf_);
            vt_ = nullptr;
        }
    }

  private:
    struct VTable
    {
        void (*invoke)(void *);
        void (*move)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    static const VTable *
    inlineVtable()
    {
        static const VTable vt = {
            [](void *p) { (*static_cast<Fn *>(p))(); },
            [](void *dst, void *src) noexcept {
                ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
                static_cast<Fn *>(src)->~Fn();
            },
            [](void *p) noexcept { static_cast<Fn *>(p)->~Fn(); },
        };
        return &vt;
    }

    template <typename Fn>
    static const VTable *
    heapVtable()
    {
        static const VTable vt = {
            [](void *p) { (**static_cast<Fn **>(p))(); },
            [](void *dst, void *src) noexcept {
                *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
            },
            [](void *p) noexcept { delete *static_cast<Fn **>(p); },
        };
        return &vt;
    }

    void
    moveFrom(InplaceCallback &o) noexcept
    {
        vt_ = o.vt_;
        if (vt_) {
            vt_->move(buf_, o.buf_);
            o.vt_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
    const VTable *vt_ = nullptr;
};

/**
 * Min-heap event queue ordered by (time, insertion sequence).
 *
 * The queue owns the simulated clock: now() advances only as events are
 * dispatched (or explicitly via runUntil()'s horizon).  Scheduling in the
 * past is a simulator bug and panics.
 *
 * EventIds encode (generation << 32 | pool slot); freeing a node bumps
 * its generation, so a stale handle can never cancel an unrelated later
 * event that reuses the slot.
 */
class EventQueue
{
  public:
    using Callback = InplaceCallback;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p fn to run @p delay after now.
     * @param delay  non-negative offset from the current time
     * @param fn     callback to invoke
     * @return a handle that can be passed to cancel()
     */
    EventId schedule(Time delay, Callback fn);

    /** Schedule @p fn at the absolute time @p when (>= now). */
    EventId scheduleAt(Time when, Callback fn);

    /**
     * Cancel a pending event.
     * @retval true the event was pending and is now cancelled
     * @retval false the handle was invalid, already fired, or cancelled
     */
    bool cancel(EventId id);

    /** True when no live events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of live (not-yet-fired, not-cancelled) events. */
    std::size_t pendingCount() const { return heap_.size(); }

    /** Timestamp of the next live event; horizon if none. */
    Time nextEventTime() const;

    /**
     * Dispatch the single next event, advancing the clock to it.
     * @retval true an event was dispatched
     * @retval false the queue was empty
     */
    bool runOne();

    /**
     * Dispatch all events with timestamp <= @p horizon, then advance the
     * clock to @p horizon.
     * @return the number of events dispatched
     */
    std::uint64_t runUntil(Time horizon);

    /** Dispatch events until the queue drains (or @p max_events fire). */
    std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

    /** Total number of events dispatched since construction. */
    std::uint64_t dispatchedCount() const { return dispatched_; }

  private:
    static constexpr std::uint32_t kNotInHeap = UINT32_MAX;

    /** Pooled per-event state; the ordering key lives in HeapEntry. */
    struct Node
    {
        std::uint32_t gen = 1;       //!< liveness generation (never 0)
        std::uint32_t heapIndex = kNotInHeap;
        Callback fn;
    };

    /**
     * One heap element, carrying its own (when, seq) ordering key so
     * sift comparisons stay within this contiguous array and never
     * dereference the pool (the dominant cost of an indirect heap).
     */
    struct HeapEntry
    {
        Time when;
        std::uint64_t seq;           //!< FIFO tie-break at equal times
        std::uint32_t slot;

        bool
        before(const HeapEntry &o) const
        {
            return when != o.when ? when < o.when : seq < o.seq;
        }
    };

    void siftUp(std::uint32_t pos);
    void siftDown(std::uint32_t pos);
    void heapRemove(std::uint32_t pos);
    void freeNode(std::uint32_t slot);

    Time now_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t dispatched_ = 0;
    std::vector<Node> pool_;           //!< slot-addressed node storage
    std::vector<std::uint32_t> free_;  //!< recyclable pool slots
    std::vector<HeapEntry> heap_;      //!< 4-ary min-heap
};

} // namespace cdna::sim

#endif // CDNA_SIM_EVENT_QUEUE_HH
