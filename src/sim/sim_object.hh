/**
 * @file
 * Base class and shared context for simulated components.
 *
 * A SimContext bundles the services every component needs -- the event
 * queue/clock, a root random stream, and a place to register itself so
 * whole-system stat dumps can enumerate components.  SimObject wires a
 * named component to that context.
 */

#ifndef CDNA_SIM_SIM_OBJECT_HH
#define CDNA_SIM_SIM_OBJECT_HH

#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logger.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace cdna::sim {

class SimObject;
class FaultInjector;

/** Shared simulation services: clock, randomness, component registry. */
class SimContext
{
  public:
    explicit SimContext(std::uint64_t seed = 1);

    EventQueue &events() { return events_; }
    const EventQueue &events() const { return events_; }
    Time now() const { return events_.now(); }

    /** Root random stream; components should fork() their own. */
    Rng &rng() { return rng_; }

    /** Event tracer (disabled by default; see sim/trace.hh). */
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    void registerObject(SimObject *obj) { objects_.push_back(obj); }
    const std::vector<SimObject *> &objects() const { return objects_; }

    /**
     * Fault injector, or null when no faults are configured.  Fault
     * hooks throughout the simulator key off this pointer and must not
     * change behavior at all while it is null (see
     * sim/fault_injector.hh).
     */
    FaultInjector *faultInjector() { return faults_; }
    void setFaultInjector(FaultInjector *f) { faults_ = f; }

    /** Dump every registered component's stats (debugging aid). */
    std::string dumpStats() const;

  private:
    EventQueue events_;
    Rng rng_;
    Tracer tracer_;
    std::vector<SimObject *> objects_;
    FaultInjector *faults_ = nullptr;
};

/** A named component bound to a SimContext. */
class SimObject
{
  public:
    SimObject(SimContext &ctx, std::string name);
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    SimContext &ctx() { return ctx_; }
    EventQueue &events() { return ctx_.events(); }
    Time now() const { return ctx_.now(); }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** This component's trace lane (interned at construction). */
    Tracer::LaneId traceLane() const { return traceLane_; }

  protected:
    Logger log_;

  private:
    SimContext &ctx_;
    std::string name_;
    StatGroup stats_;
    Tracer::LaneId traceLane_;
};

} // namespace cdna::sim

#endif // CDNA_SIM_SIM_OBJECT_HH
