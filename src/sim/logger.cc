#include "sim/logger.hh"

#include <atomic>
#include <cstdio>

#include "sim/event_queue.hh"

namespace cdna::sim {

namespace {

// Atomic so sweep worker threads can consult the threshold while the
// main thread (or a test) adjusts it; relaxed is enough for a level.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char *
levelTag(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::kError: return "ERROR";
      case LogLevel::kWarn:  return "WARN ";
      case LogLevel::kInfo:  return "INFO ";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kTrace: return "TRACE";
    }
    return "?";
}

} // namespace

Logger::Logger(std::string name, const EventQueue *eq)
    : name_(std::move(name)), eq_(eq)
{
}

void
Logger::setGlobalLevel(LogLevel lvl)
{
    g_level.store(lvl, std::memory_order_relaxed);
}

LogLevel
Logger::globalLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
Logger::setLevel(LogLevel lvl)
{
    hasOverride_ = true;
    override_ = lvl;
}

bool
Logger::enabled(LogLevel lvl) const
{
    LogLevel threshold =
        hasOverride_ ? override_ : g_level.load(std::memory_order_relaxed);
    return static_cast<int>(lvl) <= static_cast<int>(threshold);
}

void
Logger::emit(LogLevel lvl, const char *fmt, va_list ap) const
{
    Time t = eq_ ? eq_->now() : 0;
    std::fprintf(stderr, "[%14.3f us] %s %-14s ", toMicroseconds(t),
                 levelTag(lvl), name_.c_str());
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

#define CDNA_LOG_BODY(lvl)                        \
    do {                                          \
        if (!enabled(lvl))                        \
            return;                               \
        va_list ap;                               \
        va_start(ap, fmt);                        \
        emit(lvl, fmt, ap);                       \
        va_end(ap);                               \
    } while (0)

void Logger::error(const char *fmt, ...) const { CDNA_LOG_BODY(LogLevel::kError); }
void Logger::warn(const char *fmt, ...) const { CDNA_LOG_BODY(LogLevel::kWarn); }
void Logger::info(const char *fmt, ...) const { CDNA_LOG_BODY(LogLevel::kInfo); }
void Logger::debug(const char *fmt, ...) const { CDNA_LOG_BODY(LogLevel::kDebug); }
void Logger::trace(const char *fmt, ...) const { CDNA_LOG_BODY(LogLevel::kTrace); }

#undef CDNA_LOG_BODY

} // namespace cdna::sim
