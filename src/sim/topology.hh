/**
 * @file
 * Multi-host topology builder: full System instances, switches, and
 * external traffic peers composed inside ONE simulation context.
 *
 * A Topology owns the shared SimContext and wires hosts onto fabrics:
 *
 *   sim::Topology topo(seed);
 *   auto &sw = topo.addSwitch("sw", 5);
 *   auto &victim = topo.addHost(core::SystemConfig::cdna(1).receive(),
 *                               {&sw});
 *   auto &sender = topo.addPeer("sender", sw);
 *   sender.applyWorkload(net::workload::WorkloadSpec{}
 *       .toward({victim.guestMac(0, 0)})
 *       .withClass(net::workload::FlowClass::saturating()));
 *   topo.run(warmup, measure);
 *   core::Report r = topo.report(victim);
 *
 * Host 0 keeps an empty name prefix and hostId 0, so a 1-host topology
 * with no external fabrics is event-for-event identical to a
 * standalone System -- the single-host paper configurations are the
 * degenerate case of this builder, not a separate code path.  Every
 * subsequent host gets an "h<k>." prefix and a distinct hostId (a
 * disjoint guest-MAC block).
 *
 * addHost() pins every guest MAC (and the driver-domain MAC for Xen
 * modes) to the host's switch port with static routes, so cross-host
 * unicast never depends on flood-then-learn warmup.
 */

#ifndef CDNA_SIM_TOPOLOGY_HH
#define CDNA_SIM_TOPOLOGY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hh"
#include "net/eth_switch.hh"
#include "net/traffic_peer.hh"
#include "sim/sim_object.hh"

namespace cdna::sim {

class Topology
{
  public:
    explicit Topology(std::uint64_t seed = 1);
    ~Topology();

    Topology(const Topology &) = delete;
    Topology &operator=(const Topology &) = delete;

    SimContext &ctx() { return *ctx_; }

    /** Add an @p num_ports -port switch named @p name. */
    net::EthSwitch &addSwitch(const std::string &name,
                              std::uint32_t num_ports,
                              net::EthSwitchParams params = {});

    /** Uplink two switches; routes via the trunk must be pinned with
     *  setRoute(mac, trunk.portOnA()/portOnB()) on each switch. */
    net::SwitchTrunk &link(net::EthSwitch &a, net::EthSwitch &b);

    /**
     * Add a full System.  NIC i binds @p fabrics[i]; a nullptr entry
     * (or a short vector) leaves that NIC on a private EthLink +
     * TrafficPeer pair.  Guest and driver-domain MACs are statically
     * routed on every switch the host binds.
     */
    core::System &addHost(core::SystemConfig cfg,
                          std::vector<net::Fabric *> fabrics);

    /** Add an external traffic peer on @p fabric (MAC-filtered and
     *  statically routed when the fabric is one of ours). */
    net::TrafficPeer &addPeer(const std::string &name,
                              net::Fabric &fabric);

    std::size_t numHosts() const { return hosts_.size(); }
    core::System &host(std::size_t i) { return *hosts_[i]; }

    /**
     * Start every host, simulate @p warmup, begin measurement on every
     * host (and fire @p on_measure_begin, for per-flow baseline
     * snapshots), simulate @p measure, and end measurement.  Reports
     * are then available via report().
     */
    void run(Time warmup, Time measure,
             std::function<void()> on_measure_begin = {});

    /** Host @p h's measurement-window report (after run()). */
    core::Report report(std::size_t h) const;
    core::Report report(const core::System &h) const;

  private:
    std::unique_ptr<SimContext> ctx_;
    std::vector<std::unique_ptr<net::EthSwitch>> switches_;
    std::vector<std::unique_ptr<net::SwitchTrunk>> trunks_;
    std::vector<std::unique_ptr<core::System>> hosts_;
    std::vector<std::unique_ptr<net::TrafficPeer>> peers_;
    std::vector<core::Report> reports_;
    std::uint32_t nextHostId_ = 0;

    /** Pin @p mac to @p port_index on @p fabric if it is one of our
     *  switches (links need no routes). */
    void routeOnSwitch(net::Fabric &fabric, net::MacAddr mac,
                       std::uint32_t port_index);
};

} // namespace cdna::sim

#endif // CDNA_SIM_TOPOLOGY_HH
