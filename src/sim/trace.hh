/**
 * @file
 * Low-overhead event tracing for the simulator.
 *
 * Components record (lane, event, t_start, duration, optional arg)
 * tuples into a fixed-capacity ring buffer; a run can then be exported
 * as Chrome trace-event JSON and inspected in chrome://tracing or
 * Perfetto.  A "lane" is one horizontal row in the viewer -- one per
 * simulated vCPU, hypervisor, NIC processor, or other serially-used
 * resource -- so the Xen and CDNA datapaths are visually comparable.
 *
 * Design constraints:
 *  - Zero cost when disabled: hot paths guard every record call with
 *    the inline wants() check (see the CDNA_TRACE_* macros), so a
 *    disabled tracer costs one predictable branch.
 *  - No perturbation: recording only reads the simulated clock; it
 *    never schedules events or consumes random numbers, so a run with
 *    tracing enabled is bit-identical to one without.
 *  - Bounded memory: the ring buffer overwrites the oldest events once
 *    full; droppedCount() reports how many were lost.
 *
 * Event names must be string literals (or otherwise outlive the
 * tracer): only the pointer is stored.
 */

#ifndef CDNA_SIM_TRACE_HH
#define CDNA_SIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace cdna::sim {

class Tracer
{
  public:
    /** Index of one lane ("thread" row in the trace viewer). */
    using LaneId = std::uint32_t;

    static constexpr std::size_t kDefaultCapacity = 1u << 20;

    /**
     * Intern a lane name, returning a stable id.  Idempotent: the same
     * name always maps to the same id.  Callable while disabled (lanes
     * are typically interned at component construction).
     */
    LaneId lane(const std::string &name);

    /** Start recording (allocates the ring buffer). */
    void enable(std::size_t capacity = kDefaultCapacity);

    /** Stop recording; buffered events remain exportable. */
    void disable() { enabled_ = false; }

    bool enabled() const { return enabled_; }

    /**
     * Restrict recording to lanes whose name contains any of the
     * comma-separated substrings in @p filter.  Empty matches all.
     * Applies to already-interned and future lanes.
     */
    void setFilter(const std::string &filter);

    /** Hot-path guard: should events on @p lane be recorded now? */
    bool
    wants(LaneId lane) const
    {
        return enabled_ && lane < laneWanted_.size() && laneWanted_[lane];
    }

    // --- recording (call only when wants() is true) ----------------------

    /** A span of simulated time [start, start+dur) on a lane. */
    void span(LaneId lane, const char *name, Time start, Time dur,
              const char *arg_name = nullptr, std::uint64_t arg = 0);

    /** A point event at @p at. */
    void instant(LaneId lane, const char *name, Time at,
                 const char *arg_name = nullptr, std::uint64_t arg = 0);

    /** A sampled counter value (rendered as a filled graph). */
    void counter(LaneId lane, const char *name, Time at, double value);

    // --- inspection / export ---------------------------------------------

    /** Events currently held in the ring buffer. */
    std::size_t eventCount() const;

    /** Events lost to ring-buffer wrap-around. */
    std::uint64_t droppedCount() const;

    std::size_t laneCount() const { return laneNames_.size(); }
    const std::string &laneName(LaneId id) const { return laneNames_[id]; }

    /** Serialize as Chrome trace-event JSON (chrome://tracing). */
    std::string toChromeJson() const;

    /** Write toChromeJson() to @p path.  @return success */
    bool writeChromeJson(const std::string &path) const;

    /** Discard buffered events (lanes and filter are kept). */
    void clear();

  private:
    enum class Kind : std::uint8_t { kSpan, kInstant, kCounter };

    struct Event
    {
        Time start;
        Time dur;          //!< spans only
        const char *name;
        const char *argName; //!< null when no argument
        double arg;          //!< counter value or integer argument
        LaneId lane;
        Kind kind;
    };

    void push(const Event &e);
    bool laneMatchesFilter(const std::string &name) const;
    void appendEventJson(std::string &out, const Event &e) const;

    bool enabled_ = false;
    std::vector<Event> buf_;
    std::size_t capacity_ = 0;
    std::uint64_t total_ = 0; //!< events ever pushed

    std::vector<std::string> laneNames_;
    std::vector<char> laneWanted_; //!< filter verdict per lane
    std::vector<std::string> filter_;
};

} // namespace cdna::sim

/**
 * Hot-path tracing macros: arguments after the lane are not evaluated
 * unless the tracer wants the lane, keeping disabled tracing free.
 */
#define CDNA_TRACE_SPAN(tracer, lane, name, start, dur)                   \
    do {                                                                  \
        if ((tracer).wants(lane))                                         \
            (tracer).span((lane), (name), (start), (dur));                \
    } while (0)

#define CDNA_TRACE_SPAN_ARG(tracer, lane, name, start, dur, akey, aval)   \
    do {                                                                  \
        if ((tracer).wants(lane))                                         \
            (tracer).span((lane), (name), (start), (dur), (akey),         \
                          (aval));                                        \
    } while (0)

#define CDNA_TRACE_INSTANT(tracer, lane, name, at)                        \
    do {                                                                  \
        if ((tracer).wants(lane))                                         \
            (tracer).instant((lane), (name), (at));                       \
    } while (0)

#define CDNA_TRACE_INSTANT_ARG(tracer, lane, name, at, akey, aval)        \
    do {                                                                  \
        if ((tracer).wants(lane))                                         \
            (tracer).instant((lane), (name), (at), (akey), (aval));       \
    } while (0)

#define CDNA_TRACE_COUNTER(tracer, lane, name, at, value)                 \
    do {                                                                  \
        if ((tracer).wants(lane))                                         \
            (tracer).counter((lane), (name), (at), (value));              \
    } while (0)

#endif // CDNA_SIM_TRACE_HH
