/**
 * @file
 * Leveled, component-tagged trace logging.
 *
 * Logging is off by default (kWarn) so experiment binaries stay quiet;
 * tests and examples raise the level per component.  Every line carries
 * the simulated timestamp, making traces directly comparable across runs.
 */

#ifndef CDNA_SIM_LOGGER_HH
#define CDNA_SIM_LOGGER_HH

#include <cstdarg>
#include <string>

#include "sim/time.hh"

namespace cdna::sim {

class EventQueue;

/** Severity / verbosity levels, most severe first. */
enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

/**
 * A named logging channel bound to the simulation clock.
 *
 * Cheap to copy; all channels share a single global threshold plus an
 * optional per-channel override.
 */
class Logger
{
  public:
    /**
     * @param name component tag printed on each line (e.g. "cdna-nic0")
     * @param eq   event queue supplying timestamps (may be null: wall "0")
     */
    explicit Logger(std::string name = "sim", const EventQueue *eq = nullptr);

    /** Set the process-wide default threshold. */
    static void setGlobalLevel(LogLevel lvl);
    static LogLevel globalLevel();

    /** Override the threshold for this channel only. */
    void setLevel(LogLevel lvl);

    bool enabled(LogLevel lvl) const;

    void error(const char *fmt, ...) const;
    void warn(const char *fmt, ...) const;
    void info(const char *fmt, ...) const;
    void debug(const char *fmt, ...) const;
    void trace(const char *fmt, ...) const;

    const std::string &name() const { return name_; }

  private:
    void emit(LogLevel lvl, const char *fmt, va_list ap) const;

    std::string name_;
    const EventQueue *eq_;
    bool hasOverride_ = false;
    LogLevel override_ = LogLevel::kWarn;
};

} // namespace cdna::sim

#endif // CDNA_SIM_LOGGER_HH
