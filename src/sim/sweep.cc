#include "sim/sweep.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>

#include "sim/assert.hh"
#include "sim/thread_pool.hh"

namespace cdna::sim {

MetricStats
MetricStats::of(const std::vector<double> &xs)
{
    MetricStats s;
    if (xs.empty())
        return s;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    s.mean = sum / static_cast<double>(xs.size());
    if (xs.size() > 1) {
        double sq = 0.0;
        for (double x : xs)
            sq += (x - s.mean) * (x - s.mean);
        s.stddev = std::sqrt(sq / static_cast<double>(xs.size() - 1));
        s.ci95 = 1.96 * s.stddev /
                 std::sqrt(static_cast<double>(xs.size()));
    }
    return s;
}

std::vector<RunPoint>
ExperimentSpec::expand() const
{
    SIM_ASSERT(!configs_.empty(), "experiment spec has no configurations");
    SIM_ASSERT(!guests_.empty(), "experiment spec has no guest counts");
    SIM_ASSERT(!seeds_.empty(), "experiment spec has no seeds");

    std::vector<RunPoint> points;

    // Odometer over the generic axes (empty product = one iteration).
    std::vector<std::size_t> pos(axes_.size(), 0);
    auto advance = [&]() {
        for (std::size_t a = axes_.size(); a-- > 0;) {
            if (++pos[a] < axes_[a].values.size())
                return true;
            pos[a] = 0;
        }
        return false;
    };

    for (const ConfigSeries &series : configs_) {
        for (std::uint32_t g : guests_) {
            std::fill(pos.begin(), pos.end(), 0);
            do {
                core::SystemConfig base = series.make(g);
                std::string cell = series.label;
                if (guests_.size() > 1)
                    cell += "/g" + std::to_string(g);
                for (std::size_t a = 0; a < axes_.size(); ++a) {
                    const AxisValue &v = axes_[a].values[pos[a]];
                    v.apply(base);
                    if (!v.label.empty())
                        cell += "/" + v.label;
                }
                for (std::uint64_t seed : seeds_) {
                    RunPoint p;
                    p.cell = cell;
                    p.seed = seed;
                    p.config = base;
                    p.config.withSeed(seed);
                    p.warmup = warmup_;
                    p.measure = measure_;
                    points.push_back(std::move(p));
                }
            } while (advance());
        }
    }
    return points;
}

namespace {

/** Execute one run point in complete isolation. */
RunResult
executeRun(const RunPoint &point, const ExperimentSpec::Setup &setup,
           const ExperimentSpec::Probe &probe,
           const ExperimentSpec::Runner &runner, const core::CliOptions *obs)
{
    RunResult result;
    result.point = point;
    if (runner) {
        result.report = runner(point, result.extra);
        result.json = core::reportToJson(result.report);
        return result;
    }
    core::System sys(point.config);
    if (setup)
        setup(sys, point);
    std::unique_ptr<core::ObservabilitySession> session;
    if (obs)
        session = std::make_unique<core::ObservabilitySession>(sys, *obs);
    result.report = sys.run(point.warmup, point.measure);
    if (session) {
        std::string error;
        if (!session->close(&error))
            std::fprintf(stderr, "sweep: warning: %s\n", error.c_str());
    }
    if (probe)
        probe(sys, point, result.extra);
    result.json = core::reportToJson(result.report);
    return result;
}

/** The per-run metrics every cell aggregates, in report key order. */
const std::vector<std::pair<const char *, double (*)(const core::Report &)>> &
cellMetricTable()
{
    using R = core::Report;
    static const std::vector<std::pair<const char *, double (*)(const R &)>>
        table = {
            {"mbps", [](const R &r) { return r.mbps; }},
            {"hyp_pct", [](const R &r) { return r.hypPct; }},
            {"drv_os_pct", [](const R &r) { return r.drvOsPct; }},
            {"drv_user_pct", [](const R &r) { return r.drvUserPct; }},
            {"guest_os_pct", [](const R &r) { return r.guestOsPct; }},
            {"guest_user_pct", [](const R &r) { return r.guestUserPct; }},
            {"idle_pct", [](const R &r) { return r.idlePct; }},
            {"drv_intr_per_sec",
             [](const R &r) { return r.drvIntrPerSec; }},
            {"guest_intr_per_sec",
             [](const R &r) { return r.guestIntrPerSec; }},
            {"phys_irq_per_sec", [](const R &r) { return r.physIrqPerSec; }},
            {"hypercall_per_sec",
             [](const R &r) { return r.hypercallPerSec; }},
            {"domain_switch_per_sec",
             [](const R &r) { return r.domainSwitchPerSec; }},
            {"latency_mean_us", [](const R &r) { return r.latencyMeanUs; }},
            {"latency_p50_us", [](const R &r) { return r.latencyP50Us; }},
            {"latency_p99_us", [](const R &r) { return r.latencyP99Us; }},
            {"fairness", [](const R &r) { return r.fairness(); }},
        };
    return table;
}

std::vector<CellStats>
aggregate(const std::vector<RunResult> &runs)
{
    // Group run indices by cell, preserving first-appearance order.
    std::vector<std::string> order;
    std::map<std::string, std::vector<std::size_t>> byCell;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        auto [it, fresh] = byCell.try_emplace(runs[i].point.cell);
        if (fresh)
            order.push_back(runs[i].point.cell);
        it->second.push_back(i);
    }

    std::vector<CellStats> cells;
    cells.reserve(order.size());
    for (const std::string &cell : order) {
        const std::vector<std::size_t> &idx = byCell[cell];
        CellStats cs;
        cs.cell = cell;
        cs.runs = idx.size();
        cs.firstRun = idx.front();
        std::vector<double> xs(idx.size());
        for (const auto &[name, get] : cellMetricTable()) {
            for (std::size_t k = 0; k < idx.size(); ++k)
                xs[k] = get(runs[idx[k]].report);
            cs.metrics.emplace_back(name, MetricStats::of(xs));
        }
        // Probe metrics: keyed off the first run (every run of a cell
        // shares the spec's probe, hence the same keys).
        for (const auto &[name, unused] : runs[idx.front()].extra) {
            (void)unused;
            for (std::size_t k = 0; k < idx.size(); ++k) {
                auto it = runs[idx[k]].extra.find(name);
                xs[k] = it == runs[idx[k]].extra.end() ? 0.0 : it->second;
            }
            cs.metrics.emplace_back(name, MetricStats::of(xs));
        }
        cells.push_back(std::move(cs));
    }
    return cells;
}

} // namespace

SweepResult
runSweep(const ExperimentSpec &spec, const SweepOptions &opt)
{
    std::vector<RunPoint> points = spec.expand();

    // Resolve which run (if any) carries the observability session:
    // the first expanded point whose cell matches, at the first seed.
    std::size_t obsIndex = points.size();
    if (!opt.observeCell.empty()) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (points[i].seed == spec.seedEnsemble().front() &&
                points[i].cell.find(opt.observeCell) !=
                    std::string::npos) {
                obsIndex = i;
                break;
            }
        }
    }

    SweepResult result;
    result.name = spec.name();
    result.runs.resize(points.size());

    std::mutex progressMu;
    std::size_t done = 0;
    unsigned jobs = opt.jobs ? opt.jobs : defaultThreadCount();

    parallelFor(jobs, points.size(), [&](std::size_t i) {
        const core::CliOptions *obs = i == obsIndex ? &opt.obs : nullptr;
        RunResult r = executeRun(points[i], spec.setupFn(), spec.probeFn(),
                                 spec.runnerFn(), obs);
        {
            std::lock_guard<std::mutex> lock(progressMu);
            result.runs[i] = std::move(r);
            ++done;
            if (opt.onResult)
                opt.onResult(result.runs[i], done, points.size());
        }
    });

    result.cells = aggregate(result.runs);
    return result;
}

namespace {

/** Append @p text with every line prefixed by @p indent. */
void
appendIndented(std::string *out, const std::string &text,
               const char *indent)
{
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos)
            nl = text.size();
        if (nl > start) {
            *out += indent;
            out->append(text, start, nl - start);
        }
        if (nl < text.size())
            *out += '\n';
        start = nl + 1;
    }
}

} // namespace

std::string
sweepToJson(const SweepResult &result)
{
    char buf[256];
    std::string out = "{\n";
    std::snprintf(buf, sizeof(buf), "  \"schema_version\": %d,\n",
                  core::kReportSchemaVersion);
    out += buf;
    out += "  \"kind\": \"cdna-sweep\",\n";
    out += "  \"name\": \"" + result.name + "\",\n";

    out += "  \"runs\": [\n";
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
        const RunResult &r = result.runs[i];
        out += "    {\n";
        out += "      \"cell\": \"" + r.point.cell + "\",\n";
        std::snprintf(buf, sizeof(buf), "      \"seed\": %llu,\n",
                      static_cast<unsigned long long>(r.point.seed));
        out += buf;
        if (!r.extra.empty()) {
            out += "      \"extra\": {";
            bool first = true;
            for (const auto &[name, value] : r.extra) {
                std::snprintf(buf, sizeof(buf), "%s\"%s\": %.4f",
                              first ? "" : ", ", name.c_str(), value);
                out += buf;
                first = false;
            }
            out += "},\n";
        }
        out += "      \"report\": ";
        // reportToJson output starts with '{': splice it in, indented.
        std::string rj = r.json;
        if (!rj.empty() && rj.back() == '\n')
            rj.pop_back();
        std::string indented;
        appendIndented(&indented, rj, "      ");
        out += indented.substr(6); // first line follows "report": directly
        out += i + 1 < result.runs.size() ? "\n    },\n" : "\n    }\n";
    }
    out += "  ],\n";

    out += "  \"cells\": [\n";
    for (std::size_t c = 0; c < result.cells.size(); ++c) {
        const CellStats &cs = result.cells[c];
        out += "    {\n";
        out += "      \"cell\": \"" + cs.cell + "\",\n";
        std::snprintf(buf, sizeof(buf), "      \"runs\": %llu,\n",
                      static_cast<unsigned long long>(cs.runs));
        out += buf;
        out += "      \"metrics\": {\n";
        for (std::size_t m = 0; m < cs.metrics.size(); ++m) {
            const auto &[name, st] = cs.metrics[m];
            std::snprintf(buf, sizeof(buf),
                          "        \"%s\": {\"mean\": %.4f, "
                          "\"stddev\": %.4f, \"ci95\": %.4f}%s\n",
                          name.c_str(), st.mean, st.stddev, st.ci95,
                          m + 1 < cs.metrics.size() ? "," : "");
            out += buf;
        }
        out += "      }\n";
        out += c + 1 < result.cells.size() ? "    },\n" : "    }\n";
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace cdna::sim
