#include "sim/topology.hh"

#include <utility>

#include "sim/assert.hh"

namespace cdna::sim {

Topology::Topology(std::uint64_t seed)
    : ctx_(std::make_unique<SimContext>(seed))
{
}

Topology::~Topology() = default;

net::EthSwitch &
Topology::addSwitch(const std::string &name, std::uint32_t num_ports,
                    net::EthSwitchParams params)
{
    switches_.push_back(
        std::make_unique<net::EthSwitch>(*ctx_, name, num_ports, params));
    return *switches_.back();
}

net::SwitchTrunk &
Topology::link(net::EthSwitch &a, net::EthSwitch &b)
{
    trunks_.push_back(std::make_unique<net::SwitchTrunk>(
        *ctx_, "trunk" + std::to_string(trunks_.size()), a, b));
    return *trunks_.back();
}

void
Topology::routeOnSwitch(net::Fabric &fabric, net::MacAddr mac,
                        std::uint32_t port_index)
{
    for (auto &sw : switches_)
        if (sw.get() == &fabric)
            sw->setRoute(mac, port_index);
}

core::System &
Topology::addHost(core::SystemConfig cfg, std::vector<net::Fabric *> fabrics)
{
    SIM_ASSERT(reports_.empty(), "cannot add hosts after run()");
    std::uint32_t id = nextHostId_++;
    // Host 0 keeps the standalone naming and MAC block so single-host
    // topologies stay bit-identical to a standalone System.
    cfg.onHost(id, id == 0 ? "" : "h" + std::to_string(id) + ".");
    hosts_.push_back(
        std::make_unique<core::System>(cfg, *ctx_, std::move(fabrics)));
    core::System &sys = *hosts_.back();

    // Pin this host's MACs to its switch ports: every guest terminates
    // one connection per NIC, and Xen/native modes source from the
    // driver-domain MAC as well.
    for (std::uint32_t i = 0; i < cfg.numNics; ++i) {
        if (!sys.nicExternal(i))
            continue;
        net::Fabric &fab = sys.nicFabric(i);
        std::uint32_t port = sys.nicPort(i).index();
        for (std::uint32_t g = 0; g < cfg.numGuests; ++g)
            routeOnSwitch(fab, sys.guestMac(g, i), port);
        routeOnSwitch(fab,
                      net::MacAddr::fromId(cfg.hostId * 0x00100000u +
                                           0x020000u + i),
                      port);
    }
    return sys;
}

net::TrafficPeer &
Topology::addPeer(const std::string &name, net::Fabric &fabric)
{
    peers_.push_back(
        std::make_unique<net::TrafficPeer>(*ctx_, name, fabric));
    net::TrafficPeer &peer = *peers_.back();
    // On a switch, flooding can deliver other hosts' frames here;
    // filter like a real NIC would, and pin the return route.
    peer.applyWorkload(net::workload::WorkloadSpec{}.filteringMac(true));
    routeOnSwitch(fabric, peer.mac(), peer.port().index());
    return peer;
}

void
Topology::run(Time warmup, Time measure,
              std::function<void()> on_measure_begin)
{
    SIM_ASSERT(reports_.empty(), "Topology::run is one-shot");
    SIM_ASSERT(!hosts_.empty(), "topology has no hosts");
    for (auto &h : hosts_)
        h->start();
    ctx_->events().runUntil(warmup);
    for (auto &h : hosts_)
        h->beginMeasurement();
    if (on_measure_begin)
        on_measure_begin();
    ctx_->events().runUntil(warmup + measure);
    for (auto &h : hosts_)
        reports_.push_back(h->endMeasurement(measure));
}

core::Report
Topology::report(std::size_t h) const
{
    SIM_ASSERT(h < reports_.size(), "no report: index bad or run() not called");
    return reports_[h];
}

core::Report
Topology::report(const core::System &h) const
{
    for (std::size_t i = 0; i < hosts_.size(); ++i)
        if (hosts_[i].get() == &h)
            return report(i);
    SIM_ASSERT(false, "host not in this topology");
    return {};
}

} // namespace cdna::sim
