/**
 * @file
 * Named experiment presets: every paper artifact (Tables 1-4, Figures
 * 3-4) plus the repository's extension/ablation sweeps, expressed as
 * ExperimentSpecs.
 *
 * These are the single source of truth for what each artifact runs:
 * the `cdna_sweep` CLI, the bench_* binaries, and the determinism
 * tests all expand the same specs, so "the Table 2 configuration"
 * cannot drift between entry points.
 */

#ifndef CDNA_SIM_SWEEP_PRESETS_HH
#define CDNA_SIM_SWEEP_PRESETS_HH

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/sweep.hh"

namespace cdna::sim::presets {

/** Table 1: native Linux vs a Xen guest over six Intel NICs, tx+rx. */
ExperimentSpec table1();
/** Table 2: single-guest transmit -- Xen/Intel, Xen/RiceNIC, CDNA. */
ExperimentSpec table2();
/** Table 3: single-guest receive -- Xen/Intel, Xen/RiceNIC, CDNA. */
ExperimentSpec table3();
/** Table 4: CDNA with/without DMA protection, tx+rx. */
ExperimentSpec table4();
/** Figure 3: transmit throughput vs guest count (1..24), Xen vs CDNA. */
ExperimentSpec fig3();
/** Figure 4: receive throughput vs guest count (1..24), Xen vs CDNA. */
ExperimentSpec fig4();
/**
 * Extension: RPC tail latency (p50/p99/p999).  A Poisson
 * request/response workload (512 B requests, 8 KB responses) runs
 * against {xen-rice, cdna, cdna-oversub, swpt}, each at two load
 * levels and under {healthy, domkill, fwreboot}; the report's
 * rpc_lat_* keys carry the quantiles per cell.
 */
ExperimentSpec latency();
/** Ablation A: CDNA interrupt-coalescing window sweep. */
ExperimentSpec coalesce();
/** Ablation B: decomposition of the DMA-protection cost. */
ExperimentSpec protectionAblation();
/** Ablation C: hardware-context scaling on a single CDNA NIC. */
ExperimentSpec contexts();
/** Ablation D: IOMMU modes (section 5.3). */
ExperimentSpec iommu();
/** Ablation E: Xen RX page-flip vs copy-mode netback. */
ExperimentSpec flipcopy();
/**
 * Extension: closed-loop TCP goodput under wire loss.  Sweeps frame
 * drop rate (plus one corruption point) x {xen, cdna, swpt}, all with
 * the Reno transport, showing retransmission cost and loss recovery.
 */
ExperimentSpec tcpLoss();
/**
 * Extension: failure-domain availability.  Xen vs CDNA vs swpt, two
 * guests on TCP transport, crossed with {fault-free, driver-domain
 * crash at 150 ms, NIC-0 firmware reboot at 150 ms}.  The per-guest
 * downtime and time-to-first-packet columns show the paper's
 * failure-isolation argument: a dom0 crash stalls every Xen guest (and
 * stalls the swpt validator), while CDNA guests ride out both faults
 * with zero downtime.
 */
ExperimentSpec availability();
/**
 * Extension: virtual-context oversubscription.  Sweeps guest count 8 to
 * 256 on one NIC across {xen, cdna, cdna-oversub}: plain CDNA falls
 * back to the virtual-context layer past 32 guests (it cannot boot
 * otherwise), cdna-oversub always runs through the hypervisor's context
 * pager.  Shows where direct access beats Xen's software path while the
 * hot-tenant working set fits the 32 physical slots, and how paging
 * degrades as it no longer does.
 */
ExperimentSpec oversub();
/**
 * Extension: switch incast.  N TCP senders on one output-queued switch
 * converge on a single receiving guest -- Xen vs CDNA vs swpt
 * receivers, crossed with fanout {2,4,8,16} and per-port switch buffer
 * {32 KiB, 256 KiB}.  Reports switch tail drops, per-flow goodput
 * spread, and sender retransmissions; the shallow-buffer high-fanout
 * cells are loss-limited rather than receiver-limited.
 */
ExperimentSpec incast();
/**
 * Extension: noisy neighbor.  The victim and noisy hosts share one
 * access switch fed by a single trunk from a core switch; cells cross
 * {xen, cdna} victims with {alone, noisy}.  With the neighbor active,
 * an open-loop line-rate stream to the other host saturates the
 * shared trunk and the victim's closed-loop TCP flow degrades through
 * trunk-queue drops.
 */
ExperimentSpec noisyNeighbor();
/**
 * Extension: software-only passthrough three-way.  Sweeps guest count
 * {1, 2, 4, 8, 16} on one NIC across {xen, cdna, swpt} in both
 * directions: guests program real descriptor rings and every doorbell
 * traps into the hypervisor validator.  The swpt_* report keys show
 * where per-descriptor software validation crosses CDNA's per-guest
 * hardware contexts as guest count (and therefore trap rate) grows.
 */
ExperimentSpec swpt();

/** Every preset, keyed by CLI name, in documentation order. */
const std::vector<std::pair<std::string, ExperimentSpec (*)()>> &all();

/** Look up a preset by name. */
std::optional<ExperimentSpec> byName(const std::string &name);

} // namespace cdna::sim::presets

#endif // CDNA_SIM_SWEEP_PRESETS_HH
