/**
 * @file
 * Simulated time for the CDNA full-system simulator.
 *
 * Time is carried as a count of picoseconds in a signed 64-bit integer,
 * which covers roughly 106 days of simulated time -- far beyond any
 * experiment in this repository.  Picosecond resolution lets link
 * serialization (8000 ps per byte at 1 Gb/s) and PCI transfer times be
 * represented exactly, so long runs accumulate no rounding drift.
 */

#ifndef CDNA_SIM_TIME_HH
#define CDNA_SIM_TIME_HH

#include <cstdint>
#include <string>

namespace cdna::sim {

/** A point in (or span of) simulated time, in picoseconds. */
using Time = std::int64_t;

/** One picosecond. */
inline constexpr Time kPicosecond = 1;
/** One nanosecond. */
inline constexpr Time kNanosecond = 1000;
/** One microsecond. */
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
/** One millisecond. */
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
/** One second. */
inline constexpr Time kSecond = 1000 * kMillisecond;

/** Construct a Time from a (possibly fractional) nanosecond count. */
constexpr Time
nanoseconds(double ns)
{
    return static_cast<Time>(ns * static_cast<double>(kNanosecond));
}

/** Construct a Time from a (possibly fractional) microsecond count. */
constexpr Time
microseconds(double us)
{
    return static_cast<Time>(us * static_cast<double>(kMicrosecond));
}

/** Construct a Time from a (possibly fractional) millisecond count. */
constexpr Time
milliseconds(double ms)
{
    return static_cast<Time>(ms * static_cast<double>(kMillisecond));
}

/** Construct a Time from a (possibly fractional) second count. */
constexpr Time
seconds(double s)
{
    return static_cast<Time>(s * static_cast<double>(kSecond));
}

/** Convert a Time to fractional seconds (for reporting). */
constexpr double
toSeconds(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Convert a Time to fractional microseconds (for reporting). */
constexpr double
toMicroseconds(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/** Convert a Time to fractional nanoseconds (for reporting). */
constexpr double
toNanoseconds(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kNanosecond);
}

/** Render a time span as a human-readable string ("1.5 ms", "12 us", ...). */
std::string formatTime(Time t);

} // namespace cdna::sim

#endif // CDNA_SIM_TIME_HH
