#include "sim/stats.hh"

#include <bit>
#include <cmath>
#include <cstdio>
#include <memory>

namespace cdna::sim {

void
SampleStats::record(double x)
{
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_)
        min_ = x;
    if (x > max_)
        max_ = x;
}

void
SampleStats::reset()
{
    *this = SampleStats();
}

double
SampleStats::stddev() const
{
    return std::sqrt(variance());
}

void
Histogram::record(std::uint64_t x)
{
    int b = x == 0 ? 0 : std::bit_width(x);
    if (b >= static_cast<int>(buckets_.size()))
        b = static_cast<int>(buckets_.size()) - 1;
    ++buckets_[b];
    ++total_;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.buckets_.size() > buckets_.size())
        buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    total_ += other.total_;
}

std::uint64_t
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return 0;
    auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        seen += buckets_[b];
        if (seen > target)
            return b == 0 ? 0 : (1ULL << b) - 1;
    }
    return UINT64_MAX;
}

Counter &
StatGroup::addCounter(const std::string &name)
{
    counterStore_.push_back(std::make_unique<Counter>());
    counterView_.emplace_back(name, counterStore_.back().get());
    return *counterStore_.back();
}

SampleStats &
StatGroup::addSamples(const std::string &name)
{
    sampleStore_.push_back(std::make_unique<SampleStats>());
    sampleView_.emplace_back(name, sampleStore_.back().get());
    return *sampleStore_.back();
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::string out;
    char line[160];
    for (const auto &[name, c] : counterView_) {
        std::snprintf(line, sizeof(line), "%s%s %llu\n", prefix.c_str(),
                      name.c_str(),
                      static_cast<unsigned long long>(c->value()));
        out += line;
    }
    for (const auto &[name, s] : sampleView_) {
        std::snprintf(line, sizeof(line),
                      "%s%s count=%llu mean=%.3f min=%.3f max=%.3f\n",
                      prefix.c_str(), name.c_str(),
                      static_cast<unsigned long long>(s->count()), s->mean(),
                      s->min(), s->max());
        out += line;
    }
    return out;
}

} // namespace cdna::sim
