#include "sim/stats.hh"

#include <bit>
#include <cmath>
#include <cstdio>
#include <memory>

#include "sim/assert.hh"

namespace cdna::sim {

void
SampleStats::record(double x)
{
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_)
        min_ = x;
    if (x > max_)
        max_ = x;
}

void
SampleStats::reset()
{
    *this = SampleStats();
}

double
SampleStats::stddev() const
{
    return std::sqrt(variance());
}

void
Histogram::record(std::uint64_t x)
{
    int b = x == 0 ? 0 : std::bit_width(x);
    if (b >= static_cast<int>(buckets_.size()))
        b = static_cast<int>(buckets_.size()) - 1;
    ++buckets_[b];
    ++total_;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.buckets_.size() > buckets_.size())
        buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    total_ += other.total_;
}

std::uint64_t
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return 0;
    // Clamp malformed input (NaN compares false, so test the valid range).
    if (!(q > 0.0))
        q = 0.0;
    else if (q > 1.0)
        q = 1.0;
    // Rank of the target sample: the smallest value v with CDF(v) >= q.
    // ceil() keeps q = 1.0 reachable (the old floor()-and-strictly-greater
    // form could never satisfy `seen > total` and fell off the loop).
    auto target =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_)));
    if (target == 0)
        target = 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        seen += buckets_[b];
        if (seen >= target)
            return b == 0 ? 0 : (1ULL << b) - 1;
    }
    SIM_PANIC("histogram bucket sum diverged from total");
}

Counter &
StatGroup::addCounter(const std::string &name)
{
    SIM_ASSERT(!findCounter(name) && !findSamples(name),
               "duplicate stat name registered");
    counterStore_.push_back(std::make_unique<Counter>());
    counterView_.emplace_back(name, counterStore_.back().get());
    return *counterStore_.back();
}

SampleStats &
StatGroup::addSamples(const std::string &name)
{
    SIM_ASSERT(!findCounter(name) && !findSamples(name),
               "duplicate stat name registered");
    sampleStore_.push_back(std::make_unique<SampleStats>());
    sampleView_.emplace_back(name, sampleStore_.back().get());
    return *sampleStore_.back();
}

const Counter *
StatGroup::findCounter(const std::string &name) const
{
    for (const auto &[n, c] : counterView_)
        if (n == name)
            return c;
    return nullptr;
}

const SampleStats *
StatGroup::findSamples(const std::string &name) const
{
    for (const auto &[n, s] : sampleView_)
        if (n == name)
            return s;
    return nullptr;
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::string out;
    char line[160];
    for (const auto &[name, c] : counterView_) {
        std::snprintf(line, sizeof(line), "%s%s %llu\n", prefix.c_str(),
                      name.c_str(),
                      static_cast<unsigned long long>(c->value()));
        out += line;
    }
    for (const auto &[name, s] : sampleView_) {
        std::snprintf(line, sizeof(line),
                      "%s%s count=%llu sum=%.3f mean=%.3f min=%.3f "
                      "max=%.3f stddev=%.3f\n",
                      prefix.c_str(), name.c_str(),
                      static_cast<unsigned long long>(s->count()), s->sum(),
                      s->mean(), s->min(), s->max(), s->stddev());
        out += line;
    }
    return out;
}

} // namespace cdna::sim
