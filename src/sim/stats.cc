#include "sim/stats.hh"

#include <bit>
#include <cmath>
#include <cstdio>
#include <memory>

#include "sim/assert.hh"

namespace cdna::sim {

void
SampleStats::record(double x)
{
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_)
        min_ = x;
    if (x > max_)
        max_ = x;
}

void
SampleStats::reset()
{
    *this = SampleStats();
}

double
SampleStats::stddev() const
{
    return std::sqrt(variance());
}

void
Histogram::record(std::uint64_t x)
{
    // With S = 2^subBits_ sub-buckets per octave: values below 2S get
    // an exact bucket each; above, the top subBits_ bits below the
    // leading one select a linear sub-bucket inside the octave.  At
    // subBits_ == 0 this reduces exactly to the original
    // one-bucket-per-octave layout (index = bit_width(x)).
    const std::uint64_t s = 1ULL << subBits_;
    int b;
    if (x < 2 * s) {
        b = static_cast<int>(x);
    } else {
        int m = std::bit_width(x) - 1;
        auto sub = static_cast<int>((x >> (m - subBits_)) & (s - 1));
        b = (m - subBits_) * static_cast<int>(s) + sub +
            static_cast<int>(s);
    }
    if (b >= static_cast<int>(buckets_.size()))
        b = static_cast<int>(buckets_.size()) - 1;
    ++buckets_[b];
    ++total_;
}

void
Histogram::merge(const Histogram &other)
{
    SIM_ASSERT(subBits_ == other.subBits_,
               "merging histograms of different sub-bucket geometry");
    if (other.buckets_.size() > buckets_.size())
        buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    total_ += other.total_;
}

std::uint64_t
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return 0;
    // Clamp malformed input (NaN compares false, so test the valid range).
    if (!(q > 0.0))
        q = 0.0;
    else if (q > 1.0)
        q = 1.0;
    // Rank of the target sample: the smallest value v with CDF(v) >= q.
    // ceil() keeps q = 1.0 reachable (the old floor()-and-strictly-greater
    // form could never satisfy `seen > total` and fell off the loop).
    auto target =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_)));
    if (target == 0)
        target = 1;
    const std::uint64_t s = 1ULL << subBits_;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        seen += buckets_[b];
        if (seen < target)
            continue;
        // Inclusive upper bound of bucket b (inverse of record()).
        if (b < 2 * s)
            return b;
        std::uint64_t t = b - s;
        std::uint64_t m = t / s + subBits_;
        std::uint64_t r = t % s;
        return (1ULL << m) + (r + 1) * (1ULL << (m - subBits_)) - 1;
    }
    SIM_PANIC("histogram bucket sum diverged from total");
}

Counter &
StatGroup::addCounter(const std::string &name)
{
    SIM_ASSERT(!findCounter(name) && !findSamples(name),
               "duplicate stat name registered");
    counterStore_.push_back(std::make_unique<Counter>());
    counterView_.emplace_back(name, counterStore_.back().get());
    return *counterStore_.back();
}

SampleStats &
StatGroup::addSamples(const std::string &name)
{
    SIM_ASSERT(!findCounter(name) && !findSamples(name),
               "duplicate stat name registered");
    sampleStore_.push_back(std::make_unique<SampleStats>());
    sampleView_.emplace_back(name, sampleStore_.back().get());
    return *sampleStore_.back();
}

const Counter *
StatGroup::findCounter(const std::string &name) const
{
    for (const auto &[n, c] : counterView_)
        if (n == name)
            return c;
    return nullptr;
}

const SampleStats *
StatGroup::findSamples(const std::string &name) const
{
    for (const auto &[n, s] : sampleView_)
        if (n == name)
            return s;
    return nullptr;
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::string out;
    char line[160];
    for (const auto &[name, c] : counterView_) {
        std::snprintf(line, sizeof(line), "%s%s %llu\n", prefix.c_str(),
                      name.c_str(),
                      static_cast<unsigned long long>(c->value()));
        out += line;
    }
    for (const auto &[name, s] : sampleView_) {
        std::snprintf(line, sizeof(line),
                      "%s%s count=%llu sum=%.3f mean=%.3f min=%.3f "
                      "max=%.3f stddev=%.3f\n",
                      prefix.c_str(), name.c_str(),
                      static_cast<unsigned long long>(s->count()), s->sum(),
                      s->mean(), s->min(), s->max(), s->stddev());
        out += line;
    }
    return out;
}

} // namespace cdna::sim
