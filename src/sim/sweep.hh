/**
 * @file
 * Parallel experiment sweeps: declarative specs, isolated runs,
 * aggregated reports.
 *
 * The paper's evaluation is a grid of {configuration x guest count x
 * direction x seed} runs.  An ExperimentSpec describes such a grid
 * declaratively on top of SystemConfig: a set of base configurations
 * (one per paper row/series) crossed with named parameter axes and a
 * seed ensemble.  expand() turns the spec into a flat, deterministic
 * list of RunPoints; SweepRunner executes them on a work-stealing
 * thread pool, each run a fully isolated System + EventQueue + Rng
 * instance, and aggregates per-cell statistics (mean / stddev / 95% CI
 * across the seed ensemble).
 *
 * Determinism is the contract: a run's result depends only on its
 * SystemConfig (including the seed), never on the thread that executed
 * it or on how many workers ran, so per-run JSON is byte-identical
 * between -j1, -jN, and a standalone sequential run of the same
 * configuration.  Results are addressed by run index, and the sweep
 * JSON document contains no wall-clock or thread-count fields.
 */

#ifndef CDNA_SIM_SWEEP_HH
#define CDNA_SIM_SWEEP_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/cli.hh"
#include "core/report.hh"
#include "core/system.hh"
#include "sim/time.hh"

namespace cdna::sim {

/** One fully resolved run of the grid. */
struct RunPoint
{
    /** Cell identity: config + axis labels, excluding the seed. */
    std::string cell;
    std::uint64_t seed = 1;
    core::SystemConfig config;
    sim::Time warmup = 0;
    sim::Time measure = 0;
};

/** The outcome of one run. */
struct RunResult
{
    RunPoint point;
    core::Report report;
    /** Canonical per-run JSON: exactly core::reportToJson(report). */
    std::string json;
    /** Probe-extracted metrics (deterministic order); usually empty. */
    std::map<std::string, double> extra;
};

/** mean / sample stddev / 95% CI half-width of one metric in a cell. */
struct MetricStats
{
    double mean = 0.0;
    double stddev = 0.0;
    double ci95 = 0.0;
    static MetricStats of(const std::vector<double> &xs);
};

/** Aggregate over the seed ensemble of one cell. */
struct CellStats
{
    std::string cell;
    std::size_t runs = 0;
    /** Keyed by the per-run JSON metric name ("mbps", "idle_pct"...). */
    std::vector<std::pair<std::string, MetricStats>> metrics;
    /** Index of the cell's first run (lowest seed) in the result list. */
    std::size_t firstRun = 0;
};

/**
 * Declarative description of an experiment grid.
 *
 * Build fluently:
 *
 *   auto spec = ExperimentSpec("fig3")
 *                   .config("xen", [](std::uint32_t g) {
 *                       return core::SystemConfig::xenIntel(g);
 *                   })
 *                   .config("cdna", [](std::uint32_t g) {
 *                       return core::SystemConfig::cdna(g);
 *                   })
 *                   .guests({1, 2, 4, 8, 12, 16, 20, 24})
 *                   .seeds(3);
 *
 * Expansion order is the declaration order: configs outermost, then
 * each axis in the order added, then seeds innermost.  Cell labels are
 * "config/axis1/axis2" (axis labels with empty strings are skipped).
 */
class ExperimentSpec
{
  public:
    /** Builds a base configuration for a given guest count. */
    using ConfigFactory =
        std::function<core::SystemConfig(std::uint32_t guests)>;
    /** In-place tweak applied by a generic axis value. */
    using Mutator = std::function<void(core::SystemConfig &)>;
    /** Post-run probe: extract extra metrics from the live System. */
    using Probe = std::function<void(core::System &, const RunPoint &,
                                     std::map<std::string, double> &)>;
    /** Pre-run hook: adjust the freshly built System before run(). */
    using Setup = std::function<void(core::System &, const RunPoint &)>;
    /**
     * Custom executor: build whatever topology the run point asks for
     * (multi-host switches, external peers) and return the report to
     * record.  When set, the default single-System execution -- and
     * with it setup/probe/observability -- is bypassed; the runner
     * reads knobs from point.config.scenario and fills @p extra
     * itself.  Determinism contract is unchanged: the result may
     * depend only on the run point.
     */
    using Runner = std::function<core::Report(
        const RunPoint &, std::map<std::string, double> &extra)>;

    explicit ExperimentSpec(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Add a base configuration series (one curve / table row group). */
    ExperimentSpec &
    config(std::string label, ConfigFactory make)
    {
        configs_.push_back({std::move(label), std::move(make)});
        return *this;
    }

    /** Convenience: a series from a fixed config (guest count preset). */
    ExperimentSpec &
    config(std::string label, core::SystemConfig cfg)
    {
        return config(std::move(label),
                      [cfg = std::move(cfg)](std::uint32_t) { return cfg; });
    }

    /** Guest-count axis (passed to every ConfigFactory). */
    ExperimentSpec &
    guests(std::vector<std::uint32_t> counts)
    {
        guests_ = std::move(counts);
        return *this;
    }

    /** Direction axis: which of tx / rx to run. */
    ExperimentSpec &
    directions(bool tx, bool rx)
    {
        Axis axis{"direction", {}};
        if (tx)
            axis.values.push_back(
                {"tx", [](core::SystemConfig &c) { c.transmit(true); }});
        if (rx)
            axis.values.push_back(
                {"rx", [](core::SystemConfig &c) { c.receive(); }});
        axes_.push_back(std::move(axis));
        return *this;
    }

    /** Generic named axis of (label, config mutation) values. */
    ExperimentSpec &
    vary(std::string axis_name,
         std::vector<std::pair<std::string, Mutator>> values)
    {
        Axis axis{std::move(axis_name), {}};
        for (auto &[label, apply] : values)
            axis.values.push_back({std::move(label), std::move(apply)});
        axes_.push_back(std::move(axis));
        return *this;
    }

    /** Seed ensemble 1..n. */
    ExperimentSpec &
    seeds(std::uint32_t n)
    {
        seeds_.clear();
        for (std::uint64_t s = 1; s <= n; ++s)
            seeds_.push_back(s);
        return *this;
    }

    /** Explicit seed ensemble. */
    ExperimentSpec &
    seedList(std::vector<std::uint64_t> s)
    {
        seeds_ = std::move(s);
        return *this;
    }

    ExperimentSpec &
    warmup(sim::Time t)
    {
        warmup_ = t;
        return *this;
    }

    ExperimentSpec &
    measure(sim::Time t)
    {
        measure_ = t;
        return *this;
    }

    /** Install a post-run probe (see Probe). */
    ExperimentSpec &
    probe(Probe p)
    {
        probe_ = std::move(p);
        return *this;
    }

    /** Install a pre-run hook (see Setup). */
    ExperimentSpec &
    setup(Setup s)
    {
        setup_ = std::move(s);
        return *this;
    }

    /** Install a custom executor (see Runner). */
    ExperimentSpec &
    runner(Runner r)
    {
        runner_ = std::move(r);
        return *this;
    }

    const Probe &probeFn() const { return probe_; }
    const Setup &setupFn() const { return setup_; }
    const Runner &runnerFn() const { return runner_; }
    const std::vector<std::uint64_t> &seedEnsemble() const { return seeds_; }

    /**
     * Expand the grid into its flat, deterministically ordered run
     * list: configs x guests x axes x seeds, declaration order.
     */
    std::vector<RunPoint> expand() const;

  private:
    struct ConfigSeries
    {
        std::string label;
        ConfigFactory make;
    };
    struct AxisValue
    {
        std::string label;
        Mutator apply;
    };
    struct Axis
    {
        std::string name;
        std::vector<AxisValue> values;
    };

    std::string name_;
    std::vector<ConfigSeries> configs_;
    std::vector<std::uint32_t> guests_{1};
    std::vector<Axis> axes_;
    std::vector<std::uint64_t> seeds_{1};
    sim::Time warmup_ = sim::milliseconds(100);
    sim::Time measure_ = sim::milliseconds(400);
    Probe probe_;
    Setup setup_;
    Runner runner_;
};

/** Execution knobs for a sweep (none of these affect results). */
struct SweepOptions
{
    /** Worker threads; 0 picks defaultThreadCount(). */
    unsigned jobs = 1;
    /**
     * Observability: apply these CLI trace/stats options to the first
     * run whose cell contains observeCell (first seed only).  Tracing
     * is read-only with respect to simulated state, so an observed run
     * still produces byte-identical JSON.
     */
    std::string observeCell;
    core::CliOptions obs;
    /**
     * Progress hook, called after each run completes (from worker
     * threads, serialized by the runner).  Completion order is
     * nondeterministic; use the result list for ordered output.
     */
    std::function<void(const RunResult &, std::size_t done,
                       std::size_t total)>
        onResult;
};

/** The results of a full sweep, in expansion (not completion) order. */
struct SweepResult
{
    std::string name;
    std::vector<RunResult> runs;
    /** Per-cell aggregates, in first-appearance order. */
    std::vector<CellStats> cells;
};

/** Expand @p spec and execute every run; see file header for contract. */
SweepResult runSweep(const ExperimentSpec &spec, const SweepOptions &opt);

/**
 * Render a sweep as a versioned JSON document.
 *
 * Layout (stable key order, byte-identical for any -j):
 *   { "schema_version": core::kReportSchemaVersion,
 *     "kind": "cdna-sweep", "name": ...,
 *     "runs":  [ {"cell", "seed", ["extra",] "report": {...}} ... ],
 *     "cells": [ {"cell", "runs", "metrics": {name: {mean,stddev,ci95}}} ] }
 *
 * The nested "report" objects are exactly reportToJson() output, so a
 * sweep cell can be diffed byte-for-byte against a single run.
 */
std::string sweepToJson(const SweepResult &result);

} // namespace cdna::sim

#endif // CDNA_SIM_SWEEP_HH
