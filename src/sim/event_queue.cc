#include "sim/event_queue.hh"

#include <limits>
#include <utility>

#include "sim/assert.hh"

namespace cdna::sim {

namespace {

constexpr std::uint32_t kSlotMask = 0xFFFFFFFFu;

constexpr EventId
makeId(std::uint32_t gen, std::uint32_t slot)
{
    return (static_cast<EventId>(gen) << 32) | slot;
}

} // namespace

EventId
EventQueue::schedule(Time delay, Callback fn)
{
    SIM_ASSERT(delay >= 0, "negative event delay");
    return scheduleAt(now_ + delay, std::move(fn));
}

EventId
EventQueue::scheduleAt(Time when, Callback fn)
{
    SIM_ASSERT(when >= now_, "scheduling into the past");
    std::uint32_t slot;
    if (!free_.empty()) {
        slot = free_.back();
        free_.pop_back();
    } else {
        SIM_ASSERT(pool_.size() < kSlotMask, "event pool exhausted");
        slot = static_cast<std::uint32_t>(pool_.size());
        pool_.emplace_back();
    }
    Node &n = pool_[slot];
    n.fn = std::move(fn);
    n.heapIndex = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(HeapEntry{when, nextSeq_++, slot});
    siftUp(n.heapIndex);
    return makeId(n.gen, slot);
}

bool
EventQueue::cancel(EventId id)
{
    std::uint32_t slot = static_cast<std::uint32_t>(id & kSlotMask);
    std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
    if (gen == 0 || slot >= pool_.size())
        return false;
    Node &n = pool_[slot];
    if (n.gen != gen || n.heapIndex == kNotInHeap)
        return false;
    heapRemove(n.heapIndex);
    freeNode(slot);
    return true;
}

Time
EventQueue::nextEventTime() const
{
    if (heap_.empty())
        return std::numeric_limits<Time>::max();
    return heap_.front().when;
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    const HeapEntry top = heap_.front();
    SIM_ASSERT(top.when >= now_, "event queue time went backwards");
    now_ = top.when;
    ++dispatched_;
    // Move the callback out and recycle the node *before* invoking, so
    // the callback is free to schedule new events into the slot.
    Callback fn = std::move(pool_[top.slot].fn);
    heapRemove(0);
    freeNode(top.slot);
    fn();
    return true;
}

std::uint64_t
EventQueue::runUntil(Time horizon)
{
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.front().when <= horizon) {
        runOne();
        ++n;
    }
    if (now_ < horizon)
        now_ = horizon;
    return n;
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && runOne())
        ++n;
    return n;
}

void
EventQueue::siftUp(std::uint32_t pos)
{
    const HeapEntry e = heap_[pos];
    while (pos > 0) {
        std::uint32_t parent = (pos - 1) / 4;
        if (!e.before(heap_[parent]))
            break;
        heap_[pos] = heap_[parent];
        pool_[heap_[pos].slot].heapIndex = pos;
        pos = parent;
    }
    heap_[pos] = e;
    pool_[e.slot].heapIndex = pos;
}

void
EventQueue::siftDown(std::uint32_t pos)
{
    const HeapEntry e = heap_[pos];
    const std::uint32_t size = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
        std::uint32_t first = pos * 4 + 1;
        if (first >= size)
            break;
        std::uint32_t last = first + 4 < size ? first + 4 : size;
        std::uint32_t best = first;
        for (std::uint32_t c = first + 1; c < last; ++c)
            if (heap_[c].before(heap_[best]))
                best = c;
        if (!heap_[best].before(e))
            break;
        heap_[pos] = heap_[best];
        pool_[heap_[pos].slot].heapIndex = pos;
        pos = best;
    }
    heap_[pos] = e;
    pool_[e.slot].heapIndex = pos;
}

void
EventQueue::heapRemove(std::uint32_t pos)
{
    pool_[heap_[pos].slot].heapIndex = kNotInHeap;
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (pos == heap_.size())
        return;
    heap_[pos] = last;
    pool_[last.slot].heapIndex = pos;
    // The replacement may need to move either way relative to pos.
    siftDown(pos);
    siftUp(pool_[last.slot].heapIndex);
}

void
EventQueue::freeNode(std::uint32_t slot)
{
    Node &n = pool_[slot];
    n.fn.reset();
    if (++n.gen == 0)
        n.gen = 1;
    free_.push_back(slot);
}

} // namespace cdna::sim
