#include "sim/event_queue.hh"

#include <limits>
#include <utility>

#include "sim/assert.hh"

namespace cdna::sim {

EventId
EventQueue::schedule(Time delay, Callback fn)
{
    SIM_ASSERT(delay >= 0, "negative event delay");
    return scheduleAt(now_ + delay, std::move(fn));
}

EventId
EventQueue::scheduleAt(Time when, Callback fn)
{
    SIM_ASSERT(when >= now_, "scheduling into the past");
    EventId id = nextId_++;
    heap_.push(HeapEntry{when, id});
    live_.emplace(id, std::move(fn));
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    return live_.erase(id) != 0;
}

Time
EventQueue::nextEventTime() const
{
    // Cancelled entries may sit at the top of the heap; they are rare and
    // skipping them here would require mutation, so report conservatively:
    // the first *live* entry is found by scanning a copy only when the top
    // is stale.  In practice stale tops are popped by runOne().
    auto heap = heap_;
    while (!heap.empty()) {
        if (live_.count(heap.top().id))
            return heap.top().when;
        heap.pop();
    }
    return std::numeric_limits<Time>::max();
}

bool
EventQueue::runOne()
{
    while (!heap_.empty()) {
        HeapEntry top = heap_.top();
        heap_.pop();
        auto it = live_.find(top.id);
        if (it == live_.end())
            continue; // cancelled
        Callback fn = std::move(it->second);
        live_.erase(it);
        SIM_ASSERT(top.when >= now_, "event queue time went backwards");
        now_ = top.when;
        ++dispatched_;
        fn();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::runUntil(Time horizon)
{
    std::uint64_t n = 0;
    while (!heap_.empty()) {
        HeapEntry top = heap_.top();
        if (!live_.count(top.id)) {
            heap_.pop();
            continue;
        }
        if (top.when > horizon)
            break;
        runOne();
        ++n;
    }
    if (now_ < horizon)
        now_ = horizon;
    return n;
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && runOne())
        ++n;
    return n;
}

} // namespace cdna::sim
