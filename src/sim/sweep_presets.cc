#include "sim/sweep_presets.hh"

#include <algorithm>
#include <cstdio>

#include "net/eth_switch.hh"
#include "sim/topology.hh"

namespace cdna::sim::presets {

namespace {

core::SystemConfig
xenIntelG(std::uint32_t g)
{
    return core::SystemConfig::xenIntel(g);
}

core::SystemConfig
cdnaG(std::uint32_t g)
{
    return core::SystemConfig::cdna(g);
}

} // namespace

ExperimentSpec
table1()
{
    auto xen = core::SystemConfig::xenIntel(1);
    xen.numNics = 6;
    return ExperimentSpec("table1")
        .config("native", core::SystemConfig::native(6))
        .config("xen", xen)
        .directions(true, true);
}

ExperimentSpec
table2()
{
    return ExperimentSpec("table2")
        .config("xen-intel", core::SystemConfig::xenIntel(1))
        .config("xen-ricenic", core::SystemConfig::xenRice(1))
        .config("cdna", core::SystemConfig::cdna(1));
}

ExperimentSpec
table3()
{
    return ExperimentSpec("table3")
        .config("xen-intel", core::SystemConfig::xenIntel(1))
        .config("xen-ricenic", core::SystemConfig::xenRice(1))
        .config("cdna", core::SystemConfig::cdna(1))
        .directions(false, true);
}

ExperimentSpec
table4()
{
    return ExperimentSpec("table4")
        .config("cdna", core::SystemConfig::cdna(1))
        .directions(true, true)
        .vary("protection",
              {{"prot",
                [](core::SystemConfig &c) { c.withProtection(true); }},
               {"noprot",
                [](core::SystemConfig &c) { c.withProtection(false); }}});
}

ExperimentSpec
fig3()
{
    return ExperimentSpec("fig3")
        .config("xen", xenIntelG)
        .config("cdna", cdnaG)
        .guests({1, 2, 4, 8, 12, 16, 20, 24});
}

ExperimentSpec
fig4()
{
    return ExperimentSpec("fig4")
        .config("xen", xenIntelG)
        .config("cdna", cdnaG)
        .guests({1, 2, 4, 8, 12, 16, 20, 24})
        .directions(false, true);
}

ExperimentSpec
latency()
{
    using Cfg = core::SystemConfig;
    namespace wl = net::workload;
    // Tail latency of a Poisson request/response RPC workload: peers
    // fire 512 B requests at the guests, which answer with 8 KB
    // responses; the engines histogram request-to-last-response-byte
    // and the report carries p50/p99/p999.  The xen column rides the
    // RiceNIC so the fwreboot fault has firmware to reboot (and dom0
    // funnels every guest, so both outage classes stall all four).
    auto rpcLoad = [](double rate) {
        return [rate](Cfg &c) {
            c.withWorkload(wl::WorkloadSpec{}.withClass(
                wl::FlowClass::rpc(512, 8192)
                    .poissonAt(rate)
                    .timingOutAfter(sim::milliseconds(50))));
        };
    };
    auto oversub = core::SystemConfig::cdna(4).withNics(1).receive();
    oversub.cdnaParams.numContexts = 2; // 4 guests over 2 slots
    oversub.oversubscribed();
    return ExperimentSpec("latency")
        .config("xen", core::SystemConfig::xenRice(4).withNics(1).receive())
        .config("cdna", core::SystemConfig::cdna(4).withNics(1).receive())
        .config("cdna-oversub", oversub)
        .config("swpt",
                core::SystemConfig::swPassthrough(4).withNics(1).receive())
        .vary("load",
              {{"load2k", rpcLoad(2000.0)}, {"load10k", rpcLoad(10000.0)}})
        .vary("fault",
              {{"healthy", [](Cfg &) {}},
               {"domkill",
                [](Cfg &c) {
                    c.withFaults(core::FaultPlan{}.killingDriverDomain(150));
                }},
               {"fwreboot", [](Cfg &c) {
                    c.withFaults(core::FaultPlan{}.rebootingFirmware(0, 150));
                }}});
}

ExperimentSpec
coalesce()
{
    std::vector<std::pair<std::string, ExperimentSpec::Mutator>> windows;
    for (double us : {18.0, 36.0, 72.0, 145.0, 290.0, 580.0}) {
        char label[32];
        std::snprintf(label, sizeof(label), "w%.0fus", us);
        windows.emplace_back(label, [us](core::SystemConfig &c) {
            c.costs.cdnaCoalesce.delay = sim::microseconds(us);
        });
    }
    return ExperimentSpec("coalesce")
        .config("cdna", core::SystemConfig::cdna(1))
        .vary("window", std::move(windows));
}

ExperimentSpec
protectionAblation()
{
    using Cfg = core::SystemConfig;
    return ExperimentSpec("protection")
        .config("cdna", core::SystemConfig::cdna(1))
        .vary("variant",
              {{"full", [](Cfg &) {}},
               {"free-validate",
                [](Cfg &c) { c.costs.protValidatePerPage = 0; }},
               {"free-pin",
                [](Cfg &c) {
                    c.costs.protPinPerPage = 0;
                    c.costs.protUnpinPerPage = 0;
                }},
               {"free-enqueue",
                [](Cfg &c) { c.costs.protEnqueuePerDesc = 0; }},
               {"free-hypercall",
                [](Cfg &c) { c.costs.hv.hypercallOverhead = 0; }},
               {"disabled", [](Cfg &c) { c.withProtection(false); }}});
}

ExperimentSpec
contexts()
{
    return ExperimentSpec("contexts")
        .config("cdna1nic",
                [](std::uint32_t g) {
                    return core::SystemConfig::cdna(g).withNics(1);
                })
        .guests({1, 2, 4, 8, 16, 24, 30})
        .probe([](core::System &sys, const RunPoint &,
                  std::map<std::string, double> &extra) {
            extra["fw_util"] =
                sys.cdnaNic(0)->firmwareUtilization(sys.cpu().elapsed());
        });
}

ExperimentSpec
iommu()
{
    using Mode = mem::Iommu::Mode;
    return ExperimentSpec("iommu")
        .config("swprot", core::SystemConfig::cdna(2))
        .config("noprot-noiommu",
                core::SystemConfig::cdna(2).withProtection(false))
        .config("percontext", core::SystemConfig::cdna(2)
                                  .withProtection(false)
                                  .withIommu(Mode::kPerContext))
        .config("perdevice", core::SystemConfig::cdna(2)
                                 .withProtection(false)
                                 .withIommu(Mode::kPerDevice))
        // The per-device IOMMU can hold only one binding per NIC; bind
        // every NIC to guest 0, which blocks guest 1's DMA -- the
        // section 5.3 argument that per-device granularity cannot
        // express per-guest contexts.
        .setup([](core::System &sys, const RunPoint &) {
            if (sys.config().iommuMode != Mode::kPerDevice)
                return;
            for (std::uint32_t i = 0; i < sys.nicCount(); ++i)
                sys.iommu()->bindDevice(i, sys.guestDomain(0)->id());
        })
        .probe([](core::System &sys, const RunPoint &,
                  std::map<std::string, double> &extra) {
            extra["iommu_blocked"] =
                sys.iommu()
                    ? static_cast<double>(sys.iommu()->blockedCount())
                    : 0.0;
        });
}

ExperimentSpec
flipcopy()
{
    return ExperimentSpec("flipcopy")
        .config("xen-flip",
                [](std::uint32_t g) {
                    return core::SystemConfig::xenIntel(g).receive();
                })
        .config("xen-copy",
                [](std::uint32_t g) {
                    return core::SystemConfig::xenIntel(g).receive().withRxCopy(
                        true);
                })
        .config("cdna",
                [](std::uint32_t g) {
                    return core::SystemConfig::cdna(g).receive();
                })
        .guests({1, 8});
}

ExperimentSpec
tcpLoss()
{
    using Cfg = core::SystemConfig;
    std::vector<std::pair<std::string, ExperimentSpec::Mutator>> loss;
    loss.emplace_back("drop0", [](Cfg &) {});
    for (double rate : {0.0001, 0.001, 0.01}) {
        char label[32];
        std::snprintf(label, sizeof(label), "drop%g", rate);
        loss.emplace_back(label, [rate](Cfg &c) {
            c.withFaults(core::FaultPlan{}.dropping(rate));
        });
    }
    loss.emplace_back("corrupt0.001", [](Cfg &c) {
        c.withFaults(core::FaultPlan{}.corrupting(0.001));
    });
    return ExperimentSpec("tcp-loss")
        .config("xen", core::SystemConfig::xenIntel(1).transport(core::kTcp))
        .config("cdna", core::SystemConfig::cdna(1).transport(core::kTcp))
        .config("swpt",
                core::SystemConfig::swPassthrough(1).transport(core::kTcp))
        .vary("loss", std::move(loss));
}

ExperimentSpec
availability()
{
    using Cfg = core::SystemConfig;
    return ExperimentSpec("availability")
        .config("xen", core::SystemConfig::xenIntel(2).transport(core::kTcp))
        // The firmware-reboot column needs a firmware NIC behind dom0:
        // Xen/RiceNIC funnels every guest through the driver domain's
        // single context, so one firmware reboot stalls them all.
        .config("xen-rice",
                core::SystemConfig::xenRice(2).transport(core::kTcp))
        .config("cdna", core::SystemConfig::cdna(2).transport(core::kTcp))
        // The swpt column stresses both outage classes: a driver-domain
        // kill stalls the hypervisor validator (all guests down), and a
        // firmware reboot resets the one shared Intel NIC.
        .config("swpt",
                core::SystemConfig::swPassthrough(2).transport(core::kTcp))
        .vary("fault",
              {{"healthy", [](Cfg &) {}},
               {"domkill",
                [](Cfg &c) {
                    c.withFaults(core::FaultPlan{}.killingDriverDomain(150));
                }},
               {"fwreboot", [](Cfg &c) {
                    c.withFaults(core::FaultPlan{}.rebootingFirmware(0, 150));
                }}});
}

ExperimentSpec
oversub()
{
    // Scaling past the paper's 32 hardware contexts: plain CDNA refuses
    // to boot more than 32 guests per NIC, so the "cdna" series enables
    // the virtual-context fallback only where it must, while
    // "cdna-oversub" always runs through the pager.  Guest counts reach
    // 8x the slot count; the measurement window is short because the
    // 256-guest cells are large.
    return ExperimentSpec("oversub")
        .config("xen",
                [](std::uint32_t g) {
                    return core::SystemConfig::xenIntel(g).withNics(1);
                })
        .config("cdna",
                [](std::uint32_t g) {
                    auto c = core::SystemConfig::cdna(g).withNics(1);
                    if (g > nic::kMaxContexts)
                        c.oversubscribed(); // exhaustion fallback
                    return c;
                })
        .config("cdna-oversub",
                [](std::uint32_t g) {
                    return core::SystemConfig::cdna(g)
                        .withNics(1)
                        .oversubscribed();
                })
        .guests({8, 16, 32, 64, 128, 256})
        .warmup(sim::milliseconds(5))
        .measure(sim::milliseconds(20))
        .probe([](core::System &sys, const RunPoint &,
                  std::map<std::string, double> &extra) {
            const core::CdnaNic *nic = sys.cdnaNic(0);
            extra["cxt_traps"] =
                nic ? static_cast<double>(nic->pageTraps()) : 0.0;
            extra["cxt_evictions"] =
                nic ? static_cast<double>(nic->pageEvictions()) : 0.0;
            extra["cxt_resident_peak"] =
                nic ? static_cast<double>(nic->residentPeak()) : 0.0;
        });
}

namespace {

/** Snapshot of one sender-side TCP flow for windowed deltas. */
struct FlowBase
{
    std::uint64_t acked = 0;
    std::uint64_t retrans = 0;
};

FlowBase
flowNow(net::TrafficPeer &peer)
{
    net::FlowStats fs = peer.flowStats();
    return {fs.ackedBytes, fs.retransSegs};
}

} // namespace

ExperimentSpec
incast()
{
    using Cfg = core::SystemConfig;
    std::vector<std::pair<std::string, ExperimentSpec::Mutator>> fanouts;
    for (std::uint32_t n : {2u, 4u, 8u, 16u}) {
        char label[16];
        std::snprintf(label, sizeof(label), "f%u", n);
        fanouts.emplace_back(label, [n](Cfg &c) {
            c.withScenario("fanout", static_cast<double>(n));
        });
    }
    return ExperimentSpec("incast")
        .config("xen", core::SystemConfig::xenIntel(1)
                           .receive()
                           .withNics(1)
                           .transport(core::kTcp))
        .config("cdna", core::SystemConfig::cdna(1)
                            .receive()
                            .withNics(1)
                            .transport(core::kTcp))
        .config("swpt", core::SystemConfig::swPassthrough(1)
                            .receive()
                            .withNics(1)
                            .transport(core::kTcp))
        .vary("fanout", std::move(fanouts))
        .vary("buffer",
              {{"buf32k",
                [](Cfg &c) {
                    c.withScenario("switch_buf_bytes", 32.0 * 1024.0);
                }},
               {"buf256k",
                [](Cfg &c) {
                    c.withScenario("switch_buf_bytes", 256.0 * 1024.0);
                }}})
        .warmup(sim::milliseconds(10))
        .measure(sim::milliseconds(40))
        .runner([](const RunPoint &point,
                   std::map<std::string, double> &extra) {
            const Cfg &cfg = point.config;
            auto fanout =
                static_cast<std::uint32_t>(cfg.scenarioOr("fanout", 4.0));
            net::EthSwitchParams sw_params;
            sw_params.bufBytesPerPort = static_cast<std::uint64_t>(
                cfg.scenarioOr("switch_buf_bytes",
                               static_cast<double>(
                                   cfg.costs.switchBufBytesPerPort)));
            sw_params.forwardLatency = cfg.costs.switchForwardLatency;

            Topology topo(cfg.seed);
            auto &sw = topo.addSwitch("sw", fanout + 1, sw_params);
            auto &host = topo.addHost(cfg, {&sw});
            std::vector<net::TrafficPeer *> senders;
            for (std::uint32_t i = 0; i < fanout; ++i) {
                auto &p = topo.addPeer("snd" + std::to_string(i), sw);
                senders.push_back(&p);
            }
            topo.ctx().events().schedule(
                sim::milliseconds(1), [&host, &senders, &cfg] {
                    for (auto *p : senders)
                        p->applyWorkload(
                            net::workload::WorkloadSpec{}
                                .overTcp(cfg.tcpParams)
                                .toward({host.guestMac(0, 0)})
                                .withClass(
                                    net::workload::FlowClass::saturating()));
                });

            std::vector<FlowBase> base(senders.size());
            topo.run(point.warmup, point.measure, [&] {
                for (std::size_t i = 0; i < senders.size(); ++i)
                    base[i] = flowNow(*senders[i]);
            });

            double secs = sim::toSeconds(point.measure);
            double lo = 0.0, hi = 0.0, sum = 0.0;
            std::uint64_t retrans = 0;
            for (std::size_t i = 0; i < senders.size(); ++i) {
                FlowBase end = flowNow(*senders[i]);
                double mbps = static_cast<double>(end.acked -
                                                  base[i].acked) *
                              8.0 / secs / 1.0e6;
                lo = i == 0 ? mbps : std::min(lo, mbps);
                hi = std::max(hi, mbps);
                sum += mbps;
                retrans += end.retrans - base[i].retrans;
            }
            extra["flow_mbps_min"] = lo;
            extra["flow_mbps_mean"] =
                sum / static_cast<double>(senders.size());
            extra["flow_mbps_max"] = hi;
            extra["sender_retrans"] = static_cast<double>(retrans);
            return topo.report(host);
        });
}

ExperimentSpec
noisyNeighbor()
{
    using Cfg = core::SystemConfig;
    return ExperimentSpec("noisy-neighbor")
        .config("xen", core::SystemConfig::xenIntel(1)
                           .receive()
                           .withNics(1)
                           .transport(core::kTcp))
        .config("cdna", core::SystemConfig::cdna(1)
                            .receive()
                            .withNics(1)
                            .transport(core::kTcp))
        .vary("neighbor",
              {{"alone", [](Cfg &) {}},
               {"noisy",
                [](Cfg &c) { c.withScenario("noisy", 1.0); }}})
        .warmup(sim::milliseconds(10))
        .measure(sim::milliseconds(40))
        .runner([](const RunPoint &point,
                   std::map<std::string, double> &extra) {
            const Cfg &cfg = point.config;
            bool noisy = cfg.scenarioOr("noisy", 0.0) != 0.0;
            net::EthSwitchParams sw_params;
            sw_params.bufBytesPerPort = cfg.costs.switchBufBytesPerPort;
            sw_params.forwardLatency = cfg.costs.switchForwardLatency;

            Topology topo(cfg.seed);
            auto &core_sw = topo.addSwitch("core", 4, sw_params);
            auto &access = topo.addSwitch("access", 4, sw_params);
            auto &trunk = topo.link(core_sw, access);
            auto &victim = topo.addHost(cfg, {&access});
            auto &other = topo.addHost(
                core::SystemConfig::cdna(1).receive().withNics(1),
                {&access});
            auto &vsrc = topo.addPeer("vsrc", core_sw);
            auto &nsrc = topo.addPeer("nsrc", core_sw);
            core_sw.setRoute(victim.guestMac(0, 0), trunk.portOnA());
            core_sw.setRoute(other.guestMac(0, 0), trunk.portOnA());
            access.setRoute(vsrc.mac(), trunk.portOnB());
            access.setRoute(nsrc.mac(), trunk.portOnB());

            topo.ctx().events().schedule(
                sim::milliseconds(1),
                [&victim, &other, &vsrc, &nsrc, &cfg, noisy] {
                    vsrc.applyWorkload(
                        net::workload::WorkloadSpec{}
                            .overTcp(cfg.tcpParams)
                            .toward({victim.guestMac(0, 0)})
                            .withClass(
                                net::workload::FlowClass::saturating()));
                    if (noisy)
                        nsrc.applyWorkload(
                            net::workload::WorkloadSpec{}
                                .toward({other.guestMac(0, 0)})
                                .withClass(
                                    net::workload::FlowClass::saturating()));
                });

            FlowBase base;
            std::uint64_t drops0 = 0;
            topo.run(point.warmup, point.measure, [&] {
                base = flowNow(vsrc);
                drops0 = core_sw.totalDrops();
            });
            FlowBase end = flowNow(vsrc);
            extra["victim_flow_mbps"] =
                static_cast<double>(end.acked - base.acked) * 8.0 /
                sim::toSeconds(point.measure) / 1.0e6;
            extra["victim_retrans"] =
                static_cast<double>(end.retrans - base.retrans);
            extra["trunk_drops"] =
                static_cast<double>(core_sw.totalDrops() - drops0);
            return topo.report(victim);
        });
}

ExperimentSpec
swpt()
{
    // The three-way headline: as guest count grows, every architecture
    // multiplexes the same single NIC, but they pay differently --
    // Xen in driver-domain copies, CDNA in per-guest hardware contexts,
    // swpt in doorbell traps + per-descriptor validation.  The swpt_*
    // report keys localize the software cost so the crossover against
    // CDNA is readable directly from the sweep.
    return ExperimentSpec("swpt")
        .config("xen",
                [](std::uint32_t g) {
                    return core::SystemConfig::xenIntel(g).withNics(1);
                })
        .config("cdna",
                [](std::uint32_t g) {
                    return core::SystemConfig::cdna(g).withNics(1);
                })
        .config("swpt",
                [](std::uint32_t g) {
                    return core::SystemConfig::swPassthrough(g).withNics(1);
                })
        .guests({1, 2, 4, 8, 16})
        .directions(true, true)
        .probe([](core::System &sys, const RunPoint &,
                  std::map<std::string, double> &extra) {
            const vmm::SwptValidator *v = sys.swptValidator(0);
            extra["swpt_traps"] =
                v ? static_cast<double>(v->doorbellTraps()) : 0.0;
            extra["swpt_validated"] =
                v ? static_cast<double>(v->descValidated()) : 0.0;
        });
}

const std::vector<std::pair<std::string, ExperimentSpec (*)()>> &
all()
{
    static const std::vector<std::pair<std::string, ExperimentSpec (*)()>>
        presets = {
            {"table1", table1},
            {"table2", table2},
            {"table3", table3},
            {"table4", table4},
            {"fig3", fig3},
            {"fig4", fig4},
            {"latency", latency},
            {"coalesce", coalesce},
            {"protection", protectionAblation},
            {"contexts", contexts},
            {"iommu", iommu},
            {"flipcopy", flipcopy},
            {"tcp-loss", tcpLoss},
            {"availability", availability},
            {"oversub", oversub},
            {"incast", incast},
            {"noisy-neighbor", noisyNeighbor},
            {"swpt", swpt},
        };
    return presets;
}

std::optional<ExperimentSpec>
byName(const std::string &name)
{
    for (const auto &[key, make] : all())
        if (key == name)
            return make();
    return std::nullopt;
}

} // namespace cdna::sim::presets
