/**
 * @file
 * Hierarchical metrics: a machine-readable view of every component's
 * statistics, plus periodic time-series sampling of gauges.
 *
 * Every SimObject already owns a StatGroup; the registry federates them
 * under dotted names ("<component>.<stat>") and serializes the whole
 * simulation's state as one JSON document, so experiment harnesses and
 * scripts no longer scrape text dumps.
 *
 * Gauges are named callbacks returning a double (per-domain CPU
 * utilization, ring occupancy, pinned-page counts, ...).  When sampling
 * is started, a self-rescheduling event reads every gauge each period
 * and appends (time, value) points; the series are included in the JSON
 * dump and mirrored into the Tracer as counter events when tracing is
 * on.  Sampling callbacks must be read-only with respect to simulated
 * state so enabling them cannot perturb results.
 */

#ifndef CDNA_SIM_METRICS_REGISTRY_HH
#define CDNA_SIM_METRICS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace cdna::sim {

class SimContext;

class MetricsRegistry
{
  public:
    explicit MetricsRegistry(SimContext &ctx);

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Register a sampled gauge under a dotted @p name. */
    void addGauge(std::string name, std::function<double()> fn);

    std::size_t gaugeCount() const { return gauges_.size(); }

    /**
     * Sample every gauge each @p period of simulated time, starting one
     * period from now.  Restarting with a new period is allowed.
     */
    void startSampling(Time period);

    void stopSampling();

    bool sampling() const { return pending_ != kInvalidEvent; }
    Time samplePeriod() const { return period_; }

    /** Take one sample of every gauge immediately. */
    void sampleOnce();

    /** Recorded points of gauge @p name (empty if unknown). */
    const std::vector<std::pair<Time, double>> &
    series(const std::string &name) const;

    /**
     * The full metrics document:
     * {
     *   "time_ps": <now>,
     *   "components": { "<name>": {
     *       "counters": { "<stat>": N, ... },
     *       "samples":  { "<stat>": {"count":..,"sum":..,"mean":..,
     *                                "min":..,"max":..,"stddev":..}, ...}
     *   }, ... },
     *   "sample_period_ps": <period>,
     *   "timeseries": { "<gauge>": [[t_ps, value], ...], ... }
     * }
     */
    std::string toJson() const;

    /** Write toJson() to @p path.  @return success */
    bool writeJson(const std::string &path) const;

  private:
    struct Gauge
    {
        std::string name;
        std::function<double()> fn;
        std::vector<std::pair<Time, double>> points;
        std::uint32_t traceLane = 0;
        bool laneInterned = false;
    };

    void scheduleNext();

    SimContext &ctx_;
    std::vector<Gauge> gauges_;
    Time period_ = 0;
    EventId pending_ = kInvalidEvent;
};

} // namespace cdna::sim

#endif // CDNA_SIM_METRICS_REGISTRY_HH
