#include "sim/metrics_registry.hh"

#include <cstdio>
#include <utility>

#include "sim/assert.hh"
#include "sim/sim_object.hh"
#include "sim/trace.hh"

namespace cdna::sim {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

MetricsRegistry::MetricsRegistry(SimContext &ctx) : ctx_(ctx)
{
}

void
MetricsRegistry::addGauge(std::string name, std::function<double()> fn)
{
    gauges_.push_back(Gauge{std::move(name), std::move(fn), {}, 0, false});
}

void
MetricsRegistry::startSampling(Time period)
{
    SIM_ASSERT(period > 0, "non-positive sample period");
    stopSampling();
    period_ = period;
    scheduleNext();
}

void
MetricsRegistry::stopSampling()
{
    if (pending_ != kInvalidEvent) {
        ctx_.events().cancel(pending_);
        pending_ = kInvalidEvent;
    }
}

void
MetricsRegistry::scheduleNext()
{
    pending_ = ctx_.events().schedule(period_, [this] {
        sampleOnce();
        scheduleNext();
    });
}

void
MetricsRegistry::sampleOnce()
{
    Time t = ctx_.now();
    Tracer &tracer = ctx_.tracer();
    for (auto &g : gauges_) {
        double v = g.fn();
        g.points.emplace_back(t, v);
        if (tracer.enabled()) {
            if (!g.laneInterned) {
                g.traceLane = tracer.lane(g.name);
                g.laneInterned = true;
            }
            CDNA_TRACE_COUNTER(tracer, g.traceLane, "value", t, v);
        }
    }
}

const std::vector<std::pair<Time, double>> &
MetricsRegistry::series(const std::string &name) const
{
    static const std::vector<std::pair<Time, double>> kEmpty;
    for (const auto &g : gauges_)
        if (g.name == name)
            return g.points;
    return kEmpty;
}

std::string
MetricsRegistry::toJson() const
{
    std::string out;
    char buf[256];
    std::snprintf(buf, sizeof(buf), "{\n\"time_ps\": %lld,\n",
                  static_cast<long long>(ctx_.now()));
    out += buf;

    out += "\"components\": {";
    bool first_obj = true;
    for (const SimObject *obj : ctx_.objects()) {
        const StatGroup &g = obj->stats();
        out += first_obj ? "\n" : ",\n";
        first_obj = false;
        out += "  \"" + jsonEscape(obj->name()) + "\": {";
        out += "\n    \"counters\": {";
        bool first = true;
        for (const auto &[name, c] : g.counters()) {
            std::snprintf(buf, sizeof(buf), "%s\n      \"%s\": %llu",
                          first ? "" : ",", jsonEscape(name).c_str(),
                          static_cast<unsigned long long>(c->value()));
            out += buf;
            first = false;
        }
        out += first ? "}," : "\n    },";
        out += "\n    \"samples\": {";
        first = true;
        for (const auto &[name, s] : g.samples()) {
            std::snprintf(
                buf, sizeof(buf),
                "%s\n      \"%s\": {\"count\": %llu, \"sum\": %.9g, "
                "\"mean\": %.9g, \"min\": %.9g, \"max\": %.9g, "
                "\"stddev\": %.9g}",
                first ? "" : ",", jsonEscape(name).c_str(),
                static_cast<unsigned long long>(s->count()), s->sum(),
                s->mean(), s->min(), s->max(), s->stddev());
            out += buf;
            first = false;
        }
        out += first ? "}" : "\n    }";
        out += "\n  }";
    }
    out += first_obj ? "},\n" : "\n},\n";

    std::snprintf(buf, sizeof(buf), "\"sample_period_ps\": %lld,\n",
                  static_cast<long long>(period_));
    out += buf;

    out += "\"timeseries\": {";
    bool first_g = true;
    for (const auto &g : gauges_) {
        out += first_g ? "\n" : ",\n";
        first_g = false;
        out += "  \"" + jsonEscape(g.name) + "\": [";
        for (std::size_t i = 0; i < g.points.size(); ++i) {
            std::snprintf(buf, sizeof(buf), "%s[%lld, %.9g]",
                          i ? ", " : "",
                          static_cast<long long>(g.points[i].first),
                          g.points[i].second);
            out += buf;
        }
        out += "]";
    }
    out += first_g ? "}\n" : "\n}\n";
    out += "}\n";
    return out;
}

bool
MetricsRegistry::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string json = toJson();
    bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

} // namespace cdna::sim
