/**
 * @file
 * Deterministic fault injection for the simulator.
 *
 * A FaultInjector owns its own random stream, seeded from the system
 * seed through a fixed mixing constant, so fault decisions never draw
 * from (and therefore never perturb) the workload RNG: a run with a
 * zero-probability plan is bit-identical to a run with no injector at
 * all, and two runs with the same seed and plan make identical fault
 * decisions.
 *
 * The injector only knows *rates* and *counters*; the declarative plan
 * (which guest dies when, which firmware stalls, ...) lives in
 * core::FaultPlan and is turned into scheduled events by core::System.
 * Components reach the injector through SimContext::faultInjector(),
 * which is null unless a non-empty plan was installed -- fault hooks
 * must stay entirely inert in that case.
 */

#ifndef CDNA_SIM_FAULT_INJECTOR_HH
#define CDNA_SIM_FAULT_INJECTOR_HH

#include <cstdint>

#include "sim/sim_object.hh"
#include "sim/time.hh"

namespace cdna::sim {

/** Probabilities (and the one magnitude) the injector draws against. */
struct FaultRates
{
    double frameDrop = 0.0;      //!< P(frame vanishes on the wire)
    double frameCorrupt = 0.0;   //!< P(frame arrives with a bad FCS)
    double frameDuplicate = 0.0; //!< P(frame is delivered twice)
    double dmaDelayChance = 0.0; //!< P(a DMA completion is delayed)
    Time dmaDelay = 0;           //!< extra latency of a delayed DMA

    bool
    framesArmed() const
    {
        return frameDrop > 0.0 || frameCorrupt > 0.0 ||
               frameDuplicate > 0.0;
    }

    bool dmaArmed() const { return dmaDelayChance > 0.0 && dmaDelay > 0; }
};

/** Mix the system seed into the independent fault-stream seed. */
constexpr std::uint64_t
faultStreamSeed(std::uint64_t system_seed)
{
    return system_seed ^ 0xFA177C0DEC0FFEEDull;
}

class FaultInjector : public SimObject
{
  public:
    /** What (if anything) happens to one frame on the wire. */
    enum class FrameFault { kNone, kDrop, kCorrupt, kDuplicate };

    FaultInjector(SimContext &ctx, std::string name,
                  std::uint64_t system_seed, FaultRates rates);

    const FaultRates &rates() const { return rates_; }
    bool framesArmed() const { return rates_.framesArmed(); }
    bool dmaArmed() const { return rates_.dmaArmed(); }

    /** Draw the fate of one frame about to occupy the wire. */
    FrameFault frameFault();

    /** Extra completion latency for one DMA transfer (usually 0). */
    Time dmaDelay();

    // --- recovery-path accounting (called by the recovering parties) ----
    void noteFirmwareStall();
    void noteFirmwareReset();
    void noteGuestKill();
    void noteMailboxTimeout();
    void noteRingResync();
    void noteDriverDomainKill();
    void noteDriverDomainRestart();
    void noteFirmwareReboot();
    void noteFrontendReconnect();

    std::uint64_t framesDropped() const { return nDrop_.value(); }
    std::uint64_t framesCorrupted() const { return nCorrupt_.value(); }
    std::uint64_t framesDuplicated() const { return nDup_.value(); }
    std::uint64_t dmaDelays() const { return nDmaDelay_.value(); }
    std::uint64_t firmwareStalls() const { return nFwStall_.value(); }
    std::uint64_t firmwareResets() const { return nFwReset_.value(); }
    std::uint64_t guestKills() const { return nGuestKill_.value(); }
    std::uint64_t mailboxTimeouts() const { return nMboxTimeout_.value(); }
    std::uint64_t ringResyncs() const { return nRingResync_.value(); }
    std::uint64_t driverDomainKills() const { return nDomKill_.value(); }
    std::uint64_t
    driverDomainRestarts() const
    {
        return nDomRestart_.value();
    }
    std::uint64_t firmwareReboots() const { return nFwReboot_.value(); }
    std::uint64_t
    frontendReconnects() const
    {
        return nFeReconnect_.value();
    }

  private:
    FaultRates rates_;
    Rng rng_;

    sim::Counter &nDrop_;
    sim::Counter &nCorrupt_;
    sim::Counter &nDup_;
    sim::Counter &nDmaDelay_;
    sim::Counter &nFwStall_;
    sim::Counter &nFwReset_;
    sim::Counter &nGuestKill_;
    sim::Counter &nMboxTimeout_;
    sim::Counter &nRingResync_;
    sim::Counter &nDomKill_;
    sim::Counter &nDomRestart_;
    sim::Counter &nFwReboot_;
    sim::Counter &nFeReconnect_;
};

} // namespace cdna::sim

#endif // CDNA_SIM_FAULT_INJECTOR_HH
