/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * A small, fast, seedable generator so simulations are reproducible and
 * independent of the C++ standard library's unspecified distributions.
 */

#ifndef CDNA_SIM_RNG_HH
#define CDNA_SIM_RNG_HH

#include <cstdint>

namespace cdna::sim {

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    /** Seed deterministically; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

    /** Exponentially distributed double with the given mean. */
    double exponential(double mean);

    /** Derive an independent child generator (for per-component streams). */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace cdna::sim

#endif // CDNA_SIM_RNG_HH
