#include "sim/sim_object.hh"

namespace cdna::sim {

SimContext::SimContext(std::uint64_t seed) : rng_(seed)
{
}

std::string
SimContext::dumpStats() const
{
    std::string out;
    for (const SimObject *obj : objects_)
        out += obj->stats().dump(obj->name() + ".");
    return out;
}

SimObject::SimObject(SimContext &ctx, std::string name)
    : log_(name, &ctx.events()),
      ctx_(ctx),
      name_(std::move(name)),
      traceLane_(ctx.tracer().lane(name_))
{
    ctx_.registerObject(this);
}

} // namespace cdna::sim
