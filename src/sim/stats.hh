/**
 * @file
 * Lightweight statistics primitives used throughout the simulator.
 *
 * Components expose Counters and SampleStats; experiment harnesses read
 * them at the end of (or during) a run.  A StatGroup gives a component a
 * flat, named view of its statistics for uniform report printing.
 */

#ifndef CDNA_SIM_STATS_HH
#define CDNA_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hh"

namespace cdna::sim {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    /** Events per simulated second over @p elapsed. */
    double
    rate(Time elapsed) const
    {
        return elapsed > 0 ? static_cast<double>(value_) / toSeconds(elapsed)
                           : 0.0;
    }

  private:
    std::uint64_t value_ = 0;
};

/** Running min/max/mean/variance over double-valued samples (Welford). */
class SampleStats
{
  public:
    void record(double x);
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    /** Population variance. */
    double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
    double stddev() const;
    double sum() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Power-of-two bucketed histogram for latency-like quantities, with
 * optional HdrHistogram-style sub-bucketing: each power-of-two range
 * is split into 2^sub_bucket_bits linear sub-buckets, bounding the
 * relative quantile error at 2^-sub_bucket_bits (12.5% at 3 bits)
 * instead of a full octave.  The default (0 bits) keeps the original
 * one-bucket-per-octave geometry and bucket layout bit-for-bit.
 */
class Histogram
{
  public:
    explicit Histogram(int num_buckets = 48, int sub_bucket_bits = 0)
        : buckets_(num_buckets, 0), subBits_(sub_bucket_bits)
    {}

    void record(std::uint64_t x);

    /** Accumulate another histogram's buckets into this one.  Both
     *  histograms must share the same sub-bucket geometry. */
    void merge(const Histogram &other);

    std::uint64_t count() const { return total_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    int subBucketBits() const { return subBits_; }

    /**
     * Approximate quantile (bucket upper bound).  @p q is clamped to
     * [0,1] (NaN counts as 0); q = 1.0 returns the upper bound of the
     * highest occupied bucket.
     */
    std::uint64_t quantile(double q) const;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
    int subBits_ = 0;
};

/** A named, flat set of statistics owned by one component. */
class StatGroup
{
  public:
    /** Register a counter.  Duplicate names are a simulator bug (panic). */
    Counter &addCounter(const std::string &name);
    /** Register a sample stat.  Duplicate names panic. */
    SampleStats &addSamples(const std::string &name);

    /** Look up a registered stat by name; null when absent. */
    const Counter *findCounter(const std::string &name) const;
    const SampleStats *findSamples(const std::string &name) const;

    const std::vector<std::pair<std::string, const Counter *>> &
    counters() const { return counterView_; }
    const std::vector<std::pair<std::string, const SampleStats *>> &
    samples() const { return sampleView_; }

    /** Render all stats as "name value" lines (for debugging dumps). */
    std::string dump(const std::string &prefix = "") const;

  private:
    // Deque-like stable storage: pointers handed out must not move.
    std::vector<std::unique_ptr<Counter>> counterStore_;
    std::vector<std::unique_ptr<SampleStats>> sampleStore_;
    std::vector<std::pair<std::string, const Counter *>> counterView_;
    std::vector<std::pair<std::string, const SampleStats *>> sampleView_;
};

} // namespace cdna::sim

#endif // CDNA_SIM_STATS_HH
