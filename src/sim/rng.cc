#include "sim/rng.hh"

#include <cmath>

namespace cdna::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::uniform()
{
    // 53 random bits into the mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xD1B54A32D192ED03ULL);
}

} // namespace cdna::sim
