#include "core/fault_plan.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cdna::core {

bool
FaultPlan::empty() const
{
    return !rates().framesArmed() && !rates().dmaArmed() &&
           firmwareStalls.empty() && guestKills.empty() &&
           driverDomainKills.empty() && firmwareReboots.empty();
}

sim::FaultRates
FaultPlan::rates() const
{
    sim::FaultRates r;
    r.frameDrop = dropRate;
    r.frameCorrupt = corruptRate;
    r.frameDuplicate = dupRate;
    r.dmaDelayChance = dmaDelayRate;
    r.dmaDelay = sim::microseconds(dmaDelayUs);
    return r;
}

namespace {

bool
parseDouble(const std::string &s, double *out)
{
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
parseU32(const std::string &s, std::uint32_t *out)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        return false;
    *out = static_cast<std::uint32_t>(v);
    return true;
}

bool
parseRate(const std::string &s, double *out)
{
    return parseDouble(s, out) && *out >= 0.0 && *out <= 1.0;
}

} // namespace

std::optional<FaultPlan::FirmwareStall>
parseStallSpec(const std::string &spec)
{
    std::size_t at = spec.find('@');
    std::size_t colon = spec.find(':', at == std::string::npos ? 0 : at);
    if (at == std::string::npos || colon == std::string::npos ||
        colon < at)
        return std::nullopt;
    FaultPlan::FirmwareStall fs;
    if (!parseU32(spec.substr(0, at), &fs.nic) ||
        !parseDouble(spec.substr(at + 1, colon - at - 1), &fs.atMs) ||
        !parseDouble(spec.substr(colon + 1), &fs.durMs) || fs.atMs < 0 ||
        fs.durMs <= 0)
        return std::nullopt;
    return fs;
}

std::optional<FaultPlan::GuestKill>
parseKillSpec(const std::string &spec)
{
    std::size_t at = spec.find('@');
    if (at == std::string::npos)
        return std::nullopt;
    FaultPlan::GuestKill gk;
    if (!parseU32(spec.substr(0, at), &gk.guest) ||
        !parseDouble(spec.substr(at + 1), &gk.atMs) || gk.atMs < 0)
        return std::nullopt;
    return gk;
}

std::optional<FaultPlan::DriverDomainKill>
parseDriverKillSpec(const std::string &spec)
{
    FaultPlan::DriverDomainKill dk;
    if (!parseDouble(spec, &dk.atMs) || dk.atMs < 0)
        return std::nullopt;
    return dk;
}

std::optional<FaultPlan::FirmwareReboot>
parseRebootSpec(const std::string &spec)
{
    std::size_t at = spec.find('@');
    if (at == std::string::npos)
        return std::nullopt;
    FaultPlan::FirmwareReboot fr;
    if (!parseU32(spec.substr(0, at), &fr.nic) ||
        !parseDouble(spec.substr(at + 1), &fr.atMs) || fr.atMs < 0)
        return std::nullopt;
    return fr;
}

std::optional<FaultPlan>
FaultPlan::parse(const std::string &text, std::string *error)
{
    auto fail = [&](std::size_t line_no,
                    const std::string &line) -> std::optional<FaultPlan> {
        if (error)
            *error = "fault plan line " + std::to_string(line_no) +
                     ": cannot parse \"" + line + "\"";
        return std::nullopt;
    };

    FaultPlan plan;
    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key))
            continue; // blank or comment-only line
        std::vector<std::string> args;
        std::string a;
        while (ls >> a)
            args.push_back(a);

        if (key == "drop-rate" && args.size() == 1) {
            if (!parseRate(args[0], &plan.dropRate))
                return fail(line_no, line);
        } else if (key == "corrupt-rate" && args.size() == 1) {
            if (!parseRate(args[0], &plan.corruptRate))
                return fail(line_no, line);
        } else if (key == "dup-rate" && args.size() == 1) {
            if (!parseRate(args[0], &plan.dupRate))
                return fail(line_no, line);
        } else if (key == "dma-delay" && args.size() == 2) {
            if (!parseRate(args[0], &plan.dmaDelayRate) ||
                !parseDouble(args[1], &plan.dmaDelayUs) ||
                plan.dmaDelayUs < 0)
                return fail(line_no, line);
        } else if (key == "firmware-stall" &&
                   (args.size() == 1 ||
                    (args.size() == 2 && args[1] == "no-reset"))) {
            auto fs = parseStallSpec(args[0]);
            if (!fs)
                return fail(line_no, line);
            fs->watchdogReset = args.size() == 1;
            plan.firmwareStalls.push_back(*fs);
        } else if (key == "kill-guest" && args.size() == 1) {
            auto gk = parseKillSpec(args[0]);
            if (!gk)
                return fail(line_no, line);
            plan.guestKills.push_back(*gk);
        } else if (key == "kill-driver-domain" && args.size() == 1) {
            auto dk = parseDriverKillSpec(args[0]);
            if (!dk)
                return fail(line_no, line);
            plan.driverDomainKills.push_back(*dk);
        } else if (key == "reboot-firmware" && args.size() == 1) {
            auto fr = parseRebootSpec(args[0]);
            if (!fr)
                return fail(line_no, line);
            plan.firmwareReboots.push_back(*fr);
        } else {
            return fail(line_no, line);
        }
    }
    return plan;
}

std::optional<FaultPlan>
FaultPlan::fromFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open fault plan: " + path;
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str(), error);
}

} // namespace cdna::core
