/**
 * @file
 * The CDNA network interface (paper sections 3 and 4).
 *
 * A RiceNIC-style programmable Gigabit NIC extended with:
 *  - up to 32 hardware contexts, each an independent virtual NIC with a
 *    page-sized PIO-accessible SRAM partition holding 24 mailboxes;
 *  - a two-level mailbox event bit-vector hierarchy decoded by firmware;
 *  - on-NIC traffic multiplexing: fair round-robin interleave of
 *    transmit traffic across contexts, and receive demultiplexing by
 *    each context's unique Ethernet MAC address;
 *  - per-descriptor sequence-number validation that catches stale or
 *    forged descriptors (the producer-index overrun attack of §3.3);
 *  - interrupt bit vectors DMA'd into a hypervisor circular buffer
 *    before each physical interrupt (§3.2).
 *
 * With a single context assigned to the driver domain this device also
 * serves as the paper's "Xen / RiceNIC" software-virtualization
 * baseline.
 */

#ifndef CDNA_CORE_CDNA_NIC_HH
#define CDNA_CORE_CDNA_NIC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/interrupt_ring.hh"
#include "nic/desc_ring.hh"
#include "nic/firmware.hh"
#include "nic/mailbox.hh"
#include "nic/nic_base.hh"
#include "nic/packet_buffer.hh"
#include "vmm/hypervisor.hh"

namespace cdna::core {

/** Configuration of a CdnaNic. */
struct CdnaNicParams
{
    std::uint32_t numContexts = nic::kMaxContexts;
    std::uint64_t txBufferBytes = 4 * 1024 * 1024;
    std::uint64_t rxBufferBytes = 4 * 1024 * 1024;
    std::uint32_t fetchBatch = 64;
    /** Firmware cost of decoding one mailbox event. */
    sim::Time fwMailboxEvent = sim::nanoseconds(400);
    /** Firmware cost per descriptor validated/queued. */
    sim::Time fwPerDescriptor = sim::nanoseconds(150);
    /** Firmware cost per packet moved (TX or RX). */
    sim::Time fwPerPacket = sim::nanoseconds(400);
    /** Extra wire dead-time per transmitted frame (firmware dispatch). */
    sim::Time txInterFrameGap = sim::nanoseconds(200);
    /** Coalescing window for interrupt bit vectors. */
    nic::CoalesceParams coalesce{sim::microseconds(70), 1u << 30};
    /** Validate descriptor sequence numbers (protection on). */
    bool seqnoCheck = true;
    /**
     * Sequence-number modulus (0 = full 64-bit).  The paper requires at
     * least twice the ring size to prevent a stale descriptor's number
     * from aliasing the expected one.
     */
    std::uint64_t seqnoModulus = 0;
    /** TSO support (the RiceNIC firmware of the paper had none). */
    bool tso = false;
    /** Interrupt-ring slots in hypervisor memory. */
    std::uint32_t intrRingSlots = 64;
    /**
     * Virtual contexts the hypervisor may allocate on top of the
     * numContexts physical SRAM slots (0 disables oversubscription and
     * keeps the NIC bit-identical to the fixed-slot device).  When more
     * virtual contexts are allocated than physical slots exist, the
     * surplus are held paged out in hypervisor memory; a doorbell to a
     * paged-out context traps to the hypervisor's context pager.
     */
    std::uint32_t virtualContexts = 0;
    /**
     * Doorbell storm guard: mailbox PIO writes beyond this many per
     * context per doorbellWindow are coalesced into one deferred event
     * at the window edge instead of each costing firmware decode time
     * (0 disables the guard).  The limit is far above any legitimate
     * driver's rate -- batching drivers ring once per burst -- so only
     * a storming context is throttled, and only its own doorbells.
     */
    std::uint32_t doorbellBurst = 64;
    sim::Time doorbellWindow = sim::microseconds(100);
};

class CdnaNic : public nic::NicBase
{
  public:
    using ContextId = mem::ContextId;

    /** A received frame pending pickup by the guest driver. */
    struct RxDelivery
    {
        std::uint32_t pos;
        net::Packet pkt;
    };

    /** Fault callback: (context, owning domain, fault kind). */
    using FaultHandler =
        std::function<void(ContextId, mem::DomainId, vmm::Fault)>;

    /** Page-fault callback: doorbell rang on a paged-out context. */
    using PageFaultHandler = std::function<void(ContextId)>;

    CdnaNic(sim::SimContext &ctx, std::string name, mem::PciBus &bus,
            mem::PhysMemory &mem, mem::DeviceId dev, net::Fabric &fabric,
            CdnaNicParams params = {});

    // ---- hypervisor-facing management (the privileged context) ----------
    /**
     * Allocate a hardware context to @p dom with MAC @p mac.
     * @return the context id, or no value if all contexts are in use
     */
    std::optional<ContextId> allocContext(mem::DomainId dom,
                                          net::MacAddr mac);

    /** Shut down all pending operations of @p cxt and free it (§3.1). */
    void revokeContext(ContextId cxt);

    /** Install the descriptor rings for a context (driver init). */
    void configureContextRings(ContextId cxt, std::uint32_t tx_entries,
                               mem::PhysAddr tx_base,
                               std::uint32_t rx_entries,
                               mem::PhysAddr rx_base);

    /** Guest page the NIC DMA-writes this context's consumer counts to. */
    void setStatusPage(ContextId cxt, mem::PhysAddr addr);

    /** Hypervisor memory for the interrupt bit-vector ring (§3.2). */
    void setInterruptRing(mem::PhysAddr base);

    /**
     * Fault injection: wedge the firmware processor for @p duration.
     * With @p watchdog_reset the on-NIC watchdog reboots the firmware
     * at the end of the stall, losing every queued mailbox event --
     * the recovery then depends on the drivers' mailbox timeouts.
     */
    void stallFirmware(sim::Time duration, bool watchdog_reset);

    /** Watchdog firmware reboots performed (fault injection). */
    std::uint64_t firmwareResets() const { return nFwResets_.value(); }

    /**
     * Fault injection: full firmware reboot (--reboot-firmware).  The
     * running image dies *now*: the event hierarchy, staged and
     * arbitrated descriptors, and the on-NIC packet buffers are all
     * volatile and are lost.  After @p down_time the new image boots
     * and reconciles every allocated context against the
     * hypervisor-validated ring state -- the fetch horizon rolls back
     * to the consumed boundary and the expected sequence numbers are
     * realigned (descriptor i carries seqno i+1) -- charging
     * @p reconcile_per_cxt of firmware time per context.  Producer
     * doorbells are volatile too, so guests' watchdogs must re-ring
     * before traffic resumes; no other domain is involved.
     */
    void rebootFirmware(sim::Time down_time, sim::Time reconcile_per_cxt);

    /** Full firmware reboots performed (fault injection). */
    std::uint64_t firmwareReboots() const { return fw_.rebootCount(); }

    /** Doorbells deferred by the per-context storm guard. */
    std::uint64_t
    mailboxThrottled() const
    {
        return nMailboxThrottled_.value();
    }

    void setFaultHandler(FaultHandler fn) { faultHandler_ = std::move(fn); }

    // ---- virtual-context residency (oversubscription) --------------------
    /** Doorbells to paged-out contexts invoke @p fn (the context pager). */
    void
    setPageFaultHandler(PageFaultHandler fn)
    {
        pageFaultHandler_ = std::move(fn);
    }

    /**
     * Quiesce @p cxt and evict it from its physical slot.  New work
     * from the context stops immediately (its event hierarchy slot,
     * arbiter entry and staged descriptors are dropped); in-flight
     * datapath operations drain to their completion records first.
     * @p done fires once the slot is free -- the caller (the pager)
     * then charges the save-DMA cost before reusing the slot.
     */
    void pageOutContext(ContextId cxt, std::function<void()> done);

    /**
     * Restore @p cxt into a free physical slot and reconcile its ring
     * state against the hypervisor-validated view, exactly as
     * firmware-reboot reconciliation does: the fetch horizon rolls back
     * to the consumed boundary and the expected sequence numbers are
     * realigned from the 64-bit completion counts.
     */
    void pageInContext(ContextId cxt);

    /**
     * Re-ring the producer doorbells of a freshly restored context from
     * its saved mailbox words, so the firmware re-fetches work posted
     * while the context was paged out.
     */
    void replayDoorbells(ContextId cxt);

    /** Context currently occupying physical @p slot (if any). */
    std::optional<ContextId> contextAtSlot(std::uint32_t slot) const;

    bool contextResident(ContextId cxt) const;
    std::uint32_t freeSlots() const;
    sim::Time contextLastActive(ContextId cxt) const;
    std::uint64_t contextTrafficScore(ContextId cxt) const;

    /** Doorbell traps taken on paged-out contexts. */
    std::uint64_t pageTraps() const { return nCxtTraps_.value(); }
    /** Contexts evicted from their physical slot. */
    std::uint64_t pageEvictions() const { return nCxtEvictions_.value(); }
    /** Contexts restored into a physical slot. */
    std::uint64_t pageIns() const { return nCxtPageIns_.value(); }
    /** High-water mark of simultaneously resident contexts. */
    std::uint32_t residentPeak() const { return residentPeak_; }

    /**
     * Test hook: start a context's free-running ring indices at an
     * arbitrary base (uint32 wraparound regression tests).  @p tx_done64
     * / @p rx_done64 are the 64-bit completion counts; their low 32 bits
     * must equal the corresponding base.
     */
    void seedContextCounters(ContextId cxt, std::uint32_t tx_base,
                             std::uint64_t tx_done64, std::uint32_t rx_base,
                             std::uint64_t rx_done64);

    /**
     * Deliver frames that match no context's MAC to @p cxt (the driver
     * domain's context in the software-virtualization configuration,
     * where the bridge needs frames for every guest MAC).
     */
    void setPromiscuousContext(ContextId cxt) { promiscuousCxt_ = cxt; }

    InterruptRing *interruptRing() { return intrRing_ ? &*intrRing_ : nullptr; }

    bool contextAllocated(ContextId cxt) const;
    mem::DomainId contextDomain(ContextId cxt) const;
    bool contextFaulted(ContextId cxt) const;
    std::uint32_t allocatedContexts() const;

    // ---- guest-facing (through the mapped SRAM partition) ----------------
    /**
     * PIO write to a mailbox of @p cxt.  The CPU cost of the PIO is
     * charged by the calling driver; the hardware event and firmware
     * decode are modeled here.
     */
    void pioWriteMailbox(ContextId cxt, std::uint32_t mbox,
                         std::uint32_t value);

    /** Host-visible TX consumer count (as last DMA'd to the guest). */
    std::uint32_t txConsumer(ContextId cxt) const;
    /** Host-visible RX consumer count. */
    std::uint32_t rxConsumer(ContextId cxt) const;

    /** Guest driver pulls delivered frames for @p cxt. */
    std::vector<RxDelivery> drainRx(ContextId cxt);

    nic::DescRing &txRing(ContextId cxt);
    nic::DescRing &rxRing(ContextId cxt);

    const CdnaNicParams &params() const { return params_; }

    /** Frames transmitted from stale/ghost descriptors (protection off
     *  demonstrations). */
    std::uint64_t ghostTxCount() const { return nGhostTx_.value(); }
    std::uint64_t txPackets() const { return nTxPackets_.value(); }
    std::uint64_t rxPackets() const { return nRxPackets_.value(); }
    std::uint64_t seqnoFaults() const { return nSeqnoFaults_.value(); }
    /** Packets lost because the IOMMU refused their DMA. */
    std::uint64_t iommuDrops() const { return nIommuDrops_.value(); }

    /** Firmware utilization over @p elapsed (bottleneck analysis). */
    double firmwareUtilization(sim::Time elapsed) const
    {
        return fw_.utilization(elapsed);
    }

    /** Cumulative firmware busy time (observability gauges take deltas). */
    sim::Time firmwareBusyTime() const { return fw_.busyTime(); }

    // ---- LinkEndpoint -----------------------------------------------------
    void receiveFrame(net::Packet pkt) override;

  private:
    struct Context
    {
        bool allocated = false;
        bool faulted = false;
        mem::DomainId dom = mem::kDomInvalid;
        net::MacAddr mac;
        nic::MailboxPage mailboxes;
        std::optional<nic::DescRing> txRing;
        std::optional<nic::DescRing> rxRing;
        mem::PhysAddr statusAddr = 0;

        // Virtual-context residency.  With oversubscription disabled
        // every context is permanently resident with slot == id, and
        // none of this state ever changes.
        bool resident = true;
        bool pagingOut = false;
        std::uint32_t slot = 0;
        std::uint64_t cxtEpoch = 0;  //!< bumped at page-out: cancels
                                     //!< the old slot's fetch chains
        std::uint32_t inflight = 0;  //!< datapath ops claimed, not done
        std::uint64_t txDone64 = 0;  //!< 64-bit shadow of txConsumer
        std::uint64_t rxDone64 = 0;  //!< 64-bit shadow of rxConsumer
        sim::Time lastActive = 0;
        std::uint64_t trafficScore = 0; //!< packets since last page-in
        std::function<void()> pageOutDone;

        // TX (free-running indices)
        std::uint32_t txProducer = 0;
        std::uint32_t txFetched = 0;
        std::uint32_t txConsumer = 0;     //!< transmitted
        std::uint32_t txConsumerHost = 0; //!< value visible to the host
        std::uint64_t txNextSeqno = 1;
        std::deque<std::uint32_t> txReady;
        bool txFetchBusy = false;
        bool inTxArb = false;

        // RX
        std::uint32_t rxProducer = 0;
        std::uint32_t rxFetched = 0;
        std::uint32_t rxUsed = 0;
        std::uint32_t rxConsumer = 0;
        std::uint32_t rxConsumerHost = 0;
        std::uint64_t rxNextSeqno = 1;
        std::deque<std::uint32_t> rxReady;
        bool rxFetchBusy = false;

        std::vector<RxDelivery> rxDeliveries;
        bool wbBusy = false;
        bool wbAgain = false;

        // Doorbell storm guard (token window per context).
        sim::Time dbWindowEnd = 0;
        std::uint32_t dbUsed = 0;
        std::uint32_t dbDeferred = 0; //!< bitmask of throttled mboxes
        bool dbTimerArmed = false;
    };

    Context &cxt(ContextId id);
    const Context &cxt(ContextId id) const;

    int findFreeSlot() const;
    void claimSlot(ContextId id, std::uint32_t slot);
    void releaseSlot(ContextId id);
    void noteInflightDone(ContextId id);
    void settlePageOut(ContextId id);
    void touchActivity(Context &c) { c.lastActive = now(); }

    void handleMailbox(ContextId id, std::uint32_t mbox);
    void postDoorbell(ContextId id, std::uint32_t mbox);
    void flushDeferredDoorbells(ContextId id);
    void startTxFetch(ContextId id);
    void startRxFetch(ContextId id);
    void validateFetched(ContextId id, bool is_tx, std::uint32_t first,
                         std::uint32_t count);
    bool checkSeqno(Context &c, std::uint64_t seqno, std::uint64_t *next);
    void enterFault(ContextId id, vmm::Fault f);
    void enqueueTxArb(ContextId id);
    void pumpTx();
    void scheduleWriteback(ContextId id);
    void noteContextUpdate(ContextId id);
    void fireBitVector();

    CdnaNicParams params_;
    nic::FirmwareProc fw_;
    nic::MailboxEventHier hier_;
    nic::PacketBufferPool txBuf_;
    nic::PacketBufferPool rxBuf_;
    std::vector<Context> contexts_;
    std::unordered_map<std::uint64_t, ContextId> macMap_;
    FaultHandler faultHandler_;
    PageFaultHandler pageFaultHandler_;
    std::optional<ContextId> promiscuousCxt_;

    /** Owning context per physical slot (kNoSlotOwner = free). */
    static constexpr std::uint32_t kNoSlotOwner = 0xFFFFFFFFu;
    std::vector<std::uint32_t> slotOwner_;
    std::uint32_t residentNow_ = 0;
    std::uint32_t residentPeak_ = 0;

    std::deque<ContextId> txArb_;
    bool txDataBusy_ = false;
    bool txWaitingBuffer_ = false;

    std::optional<InterruptRing> intrRing_;
    std::uint32_t pendingVector_ = 0;
    std::uint32_t pendingUpdates_ = 0;
    sim::EventId vecTimer_ = sim::kInvalidEvent;
    bool vecDmaBusy_ = false;

    sim::Counter &nTxPackets_;
    sim::Counter &nRxPackets_;
    sim::Counter &nGhostTx_;
    sim::Counter &nSeqnoFaults_;
    sim::Counter &nMailboxEvents_;
    sim::Counter &nBitVectors_;
    sim::Counter &nIommuDrops_;
    sim::Counter &nFwResets_;
    sim::Counter &nMailboxThrottled_;
    sim::Counter &nCxtTraps_;
    sim::Counter &nCxtEvictions_;
    sim::Counter &nCxtPageIns_;
};

} // namespace cdna::core

#endif // CDNA_CORE_CDNA_NIC_HH
