#include "core/report.hh"

#include <algorithm>
#include <cstdio>

namespace cdna::core {

std::string
Report::header()
{
    return "config                    Mb/s    Hyp  DrvOS DrvUsr  GstOS "
           "GstUsr   Idle   drvIrq/s gstIrq/s";
}

std::string
Report::row() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-22s %7.0f  %5.1f  %5.1f  %5.1f  %5.1f  %5.1f  %5.1f "
                  "  %8.0f %8.0f",
                  label.c_str(), mbps, hypPct, drvOsPct, drvUserPct,
                  guestOsPct, guestUserPct, idlePct, drvIntrPerSec,
                  guestIntrPerSec);
    return buf;
}

double
Report::fairness() const
{
    if (perGuestMbps.empty())
        return 1.0;
    double lo = *std::min_element(perGuestMbps.begin(), perGuestMbps.end());
    double hi = *std::max_element(perGuestMbps.begin(), perGuestMbps.end());
    return hi > 0 ? lo / hi : 1.0;
}

} // namespace cdna::core
