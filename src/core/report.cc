#include "core/report.hh"

#include <algorithm>
#include <cstdio>

namespace cdna::core {

std::string
Report::header()
{
    return "config                    Mb/s    Hyp  DrvOS DrvUsr  GstOS "
           "GstUsr   Idle   drvIrq/s gstIrq/s";
}

std::string
Report::row() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-22s %7.0f  %5.1f  %5.1f  %5.1f  %5.1f  %5.1f  %5.1f "
                  "  %8.0f %8.0f",
                  label.c_str(), mbps, hypPct, drvOsPct, drvUserPct,
                  guestOsPct, guestUserPct, idlePct, drvIntrPerSec,
                  guestIntrPerSec);
    return buf;
}

bool
Report::anyFaultActivity() const
{
    return faultFramesDropped || faultFramesCorrupted ||
           faultFramesDuplicated || faultDmaDelays || firmwareStalls ||
           guestKills || mailboxTimeouts || ringResyncs;
}

std::string
Report::faultSummary() const
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "  drops: nodesc=%llu nobuf=%llu filter=%llu | faults: "
        "drop=%llu corrupt=%llu dup=%llu dmadelay=%llu fwstall=%llu "
        "kill=%llu | recovery: timeout=%llu resync=%llu",
        static_cast<unsigned long long>(rxDropsNoDesc),
        static_cast<unsigned long long>(rxDropsNoBuf),
        static_cast<unsigned long long>(rxDropsFilter),
        static_cast<unsigned long long>(faultFramesDropped),
        static_cast<unsigned long long>(faultFramesCorrupted),
        static_cast<unsigned long long>(faultFramesDuplicated),
        static_cast<unsigned long long>(faultDmaDelays),
        static_cast<unsigned long long>(firmwareStalls),
        static_cast<unsigned long long>(guestKills),
        static_cast<unsigned long long>(mailboxTimeouts),
        static_cast<unsigned long long>(ringResyncs));
    return buf;
}

double
Report::fairness() const
{
    if (perGuestMbps.empty())
        return 1.0;
    double lo = *std::min_element(perGuestMbps.begin(), perGuestMbps.end());
    double hi = *std::max_element(perGuestMbps.begin(), perGuestMbps.end());
    return hi > 0 ? lo / hi : 1.0;
}

} // namespace cdna::core
