#include "core/report.hh"

#include <algorithm>
#include <cstdio>

namespace cdna::core {

std::string
Report::header()
{
    return "config                    Mb/s    Hyp  DrvOS DrvUsr  GstOS "
           "GstUsr   Idle   drvIrq/s gstIrq/s";
}

std::string
Report::row() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-22s %7.0f  %5.1f  %5.1f  %5.1f  %5.1f  %5.1f  %5.1f "
                  "  %8.0f %8.0f",
                  label.c_str(), mbps, hypPct, drvOsPct, drvUserPct,
                  guestOsPct, guestUserPct, idlePct, drvIntrPerSec,
                  guestIntrPerSec);
    return buf;
}

bool
Report::anyFaultActivity() const
{
    return faultFramesDropped || faultFramesCorrupted ||
           faultFramesDuplicated || faultDmaDelays || firmwareStalls ||
           guestKills || mailboxTimeouts || ringResyncs ||
           driverDomainKills || firmwareReboots || feReconnects ||
           grantsRevoked || pagesQuarantined || mailboxThrottled ||
           outagePacketsLost || switchDrops;
}

std::string
Report::faultSummary() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  drops: nodesc=%llu nobuf=%llu filter=%llu | faults: "
        "drop=%llu corrupt=%llu dup=%llu dmadelay=%llu fwstall=%llu "
        "kill=%llu | recovery: timeout=%llu resync=%llu",
        static_cast<unsigned long long>(rxDropsNoDesc),
        static_cast<unsigned long long>(rxDropsNoBuf),
        static_cast<unsigned long long>(rxDropsFilter),
        static_cast<unsigned long long>(faultFramesDropped),
        static_cast<unsigned long long>(faultFramesCorrupted),
        static_cast<unsigned long long>(faultFramesDuplicated),
        static_cast<unsigned long long>(faultDmaDelays),
        static_cast<unsigned long long>(firmwareStalls),
        static_cast<unsigned long long>(guestKills),
        static_cast<unsigned long long>(mailboxTimeouts),
        static_cast<unsigned long long>(ringResyncs));
    std::string out = buf;
    if (driverDomainKills || firmwareReboots || feReconnects ||
        grantsRevoked || outagePacketsLost) {
        std::snprintf(
            buf, sizeof(buf),
            " | outage: domkill=%llu fwreboot=%llu reconnect=%llu "
            "revoked=%llu quarantined=%llu lost=%llu",
            static_cast<unsigned long long>(driverDomainKills),
            static_cast<unsigned long long>(firmwareReboots),
            static_cast<unsigned long long>(feReconnects),
            static_cast<unsigned long long>(grantsRevoked),
            static_cast<unsigned long long>(pagesQuarantined),
            static_cast<unsigned long long>(outagePacketsLost));
        out += buf;
    }
    if (switchDrops) {
        std::snprintf(
            buf, sizeof(buf),
            " | fabric: swdrops=%llu (%llu bytes, qpeak=%llu)",
            static_cast<unsigned long long>(switchDrops),
            static_cast<unsigned long long>(switchDropBytes),
            static_cast<unsigned long long>(switchQueuePeakBytes));
        out += buf;
    }
    return out;
}

double
Report::fairness() const
{
    if (perGuestMbps.empty())
        return 1.0;
    double lo = *std::min_element(perGuestMbps.begin(), perGuestMbps.end());
    double hi = *std::max_element(perGuestMbps.begin(), perGuestMbps.end());
    return hi > 0 ? lo / hi : 1.0;
}

std::string
reportToJson(const Report &r)
{
    char buf[512];
    std::string out = "{\n";
    auto add = [&](const char *key, double value, bool last = false) {
        std::snprintf(buf, sizeof(buf), "  \"%s\": %.4f%s\n", key, value,
                      last ? "" : ",");
        out += buf;
    };
    auto addU = [&](const char *key, std::uint64_t value) {
        std::snprintf(buf, sizeof(buf), "  \"%s\": %llu,\n", key,
                      static_cast<unsigned long long>(value));
        out += buf;
    };
    std::snprintf(buf, sizeof(buf), "  \"schema_version\": %d,\n",
                  kReportSchemaVersion);
    out += buf;
    std::snprintf(buf, sizeof(buf), "  \"label\": \"%s\",\n",
                  r.label.c_str());
    out += buf;
    add("mbps", r.mbps);
    add("hyp_pct", r.hypPct);
    add("drv_os_pct", r.drvOsPct);
    add("drv_user_pct", r.drvUserPct);
    add("guest_os_pct", r.guestOsPct);
    add("guest_user_pct", r.guestUserPct);
    add("idle_pct", r.idlePct);
    add("drv_intr_per_sec", r.drvIntrPerSec);
    add("guest_intr_per_sec", r.guestIntrPerSec);
    add("phys_irq_per_sec", r.physIrqPerSec);
    add("hypercall_per_sec", r.hypercallPerSec);
    add("domain_switch_per_sec", r.domainSwitchPerSec);
    add("latency_mean_us", r.latencyMeanUs);
    add("latency_p50_us", r.latencyP50Us);
    add("latency_p99_us", r.latencyP99Us);
    add("fairness", r.fairness());
    add("wire_mbps", r.wireMbps);
    add("rpc_lat_mean_us", r.rpcLatMeanUs);
    add("rpc_lat_p50_us", r.rpcLatP50Us);
    add("rpc_lat_p99_us", r.rpcLatP99Us);
    add("rpc_lat_p999_us", r.rpcLatP999Us);
    add("rpc_offered_rps", r.rpcOfferedRps);
    add("rpc_achieved_rps", r.rpcAchievedRps);
    add("swpt_validation_us", r.swptValidationUs);
    addU("protection_faults", r.protectionFaults);
    addU("dma_violations", r.dmaViolations);
    addU("rx_drops_no_desc", r.rxDropsNoDesc);
    addU("rx_drops_no_buf", r.rxDropsNoBuf);
    addU("rx_drops_filter", r.rxDropsFilter);
    addU("frames_dropped", r.faultFramesDropped);
    addU("frames_corrupted", r.faultFramesCorrupted);
    addU("frames_duplicated", r.faultFramesDuplicated);
    addU("dma_delays", r.faultDmaDelays);
    addU("firmware_stalls", r.firmwareStalls);
    addU("guest_kills", r.guestKills);
    addU("mailbox_timeouts", r.mailboxTimeouts);
    addU("ring_resyncs", r.ringResyncs);
    addU("rx_drops_bad_csum", r.rxDropsBadCsum);
    addU("tx_backlog_peak", r.txBacklogPeak);
    addU("tx_backlog_now", r.txBacklogNow);
    addU("tcp_retrans_segs", r.tcpRetransSegs);
    addU("tcp_fast_retransmits", r.tcpFastRetransmits);
    addU("tcp_rto_events", r.tcpRtoEvents);
    addU("tcp_dup_acks", r.tcpDupAcks);
    addU("driver_domain_kills", r.driverDomainKills);
    addU("firmware_reboots", r.firmwareReboots);
    addU("fe_reconnects", r.feReconnects);
    addU("grants_revoked", r.grantsRevoked);
    addU("pages_quarantined", r.pagesQuarantined);
    addU("quarantine_released", r.quarantineReleased);
    addU("mailbox_throttled", r.mailboxThrottled);
    addU("outage_packets_lost", r.outagePacketsLost);
    addU("cxt_page_traps", r.cxtPageTraps);
    addU("cxt_evictions", r.cxtEvictions);
    addU("cxt_page_ins", r.cxtPageIns);
    addU("cxt_resident_peak", r.cxtResidentPeak);
    addU("switch_drops", r.switchDrops);
    addU("switch_drop_bytes", r.switchDropBytes);
    addU("switch_queue_peak_bytes", r.switchQueuePeakBytes);
    addU("rpc_requests", r.rpcRequests);
    addU("rpc_responses", r.rpcResponses);
    addU("rpc_timeouts", r.rpcTimeouts);
    addU("flows_started", r.flowsStarted);
    addU("flows_completed", r.flowsCompleted);
    addU("swpt_doorbell_traps", r.swptDoorbellTraps);
    addU("swpt_desc_validated", r.swptDescValidated);
    addU("swpt_desc_rejected", r.swptDescRejected);
    auto addArr = [&](const char *key, const std::vector<double> &v,
                      const char *fmt, bool last = false) {
        out += "  \"";
        out += key;
        out += "\": [";
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (i)
                out += ", ";
            std::snprintf(buf, sizeof(buf), fmt, v[i]);
            out += buf;
        }
        out += last ? "]\n" : "],\n";
    };
    addArr("per_guest_mbps", r.perGuestMbps, "%.2f");
    addArr("per_guest_downtime_us", r.perGuestDowntimeUs, "%.1f");
    addArr("per_guest_ttfp_us", r.perGuestTtfpUs, "%.1f", /*last=*/true);
    out += "}\n";
    return out;
}

} // namespace cdna::core
