/**
 * @file
 * Command-line front end for the simulator.
 *
 * Turns argv into a SystemConfig + run parameters and renders reports
 * as text or JSON, so scripts can sweep configurations without writing
 * C++.  Used by the `cdna_sim` tool; exposed as a library so the
 * parsing is unit-testable.
 */

#ifndef CDNA_CORE_CLI_HH
#define CDNA_CORE_CLI_HH

#include <optional>
#include <string>
#include <vector>

#include "core/system.hh"

namespace cdna::core {

/** Parsed command line. */
struct CliOptions
{
    SystemConfig config;
    sim::Time warmup = sim::milliseconds(100);
    sim::Time measure = sim::milliseconds(500);
    bool json = false;
    bool help = false;
};

/** Usage text for the CLI. */
std::string cliUsage();

/**
 * Parse arguments (excluding argv[0]).
 * @param args   the argument vector
 * @param error  receives a message when parsing fails
 * @return options, or no value on error
 */
std::optional<CliOptions> parseCli(const std::vector<std::string> &args,
                                   std::string *error);

/** Render a report as a JSON object (stable key order). */
std::string reportToJson(const Report &r);

} // namespace cdna::core

#endif // CDNA_CORE_CLI_HH
