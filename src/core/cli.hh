/**
 * @file
 * Command-line front end for the simulator.
 *
 * Turns argv into a SystemConfig + run parameters and renders reports
 * as text or JSON, so scripts can sweep configurations without writing
 * C++.  Used by the `cdna_sim` tool; exposed as a library so the
 * parsing is unit-testable.
 */

#ifndef CDNA_CORE_CLI_HH
#define CDNA_CORE_CLI_HH

#include <optional>
#include <string>
#include <vector>

#include "core/system.hh"

namespace cdna::core {

/** Parsed command line. */
struct CliOptions
{
    SystemConfig config;
    sim::Time warmup = sim::milliseconds(100);
    sim::Time measure = sim::milliseconds(500);
    bool json = false;
    bool help = false;

    // Observability (see docs: "Observability" in README.md).
    std::string traceFile;     //!< --trace FILE: Chrome trace JSON output
    std::string traceFilter;   //!< --trace-filter SUBSTR[,SUBSTR...]
    std::string statsJsonFile; //!< --stats-json FILE: metrics dump
    sim::Time samplePeriod = 0; //!< --sample-period US (0 = no sampling)
};

/** Usage text for the CLI. */
std::string cliUsage();

/**
 * Parse arguments (excluding argv[0]).
 * @param args   the argument vector
 * @param error  receives a message when parsing fails
 * @return options, or no value on error
 */
std::optional<CliOptions> parseCli(const std::vector<std::string> &args,
                                   std::string *error);

/** Render a report as a JSON object (stable key order). */
std::string reportToJson(const Report &r);

/**
 * Enable tracing / gauge sampling on @p sys per the parsed options.
 * Call once after constructing the System, before run().
 */
void applyObservability(System &sys, const CliOptions &opt);

/**
 * Write the trace and stats JSON files requested by @p opt.
 * Call after run().  @return false (with *error set) on I/O failure.
 */
bool flushObservability(System &sys, const CliOptions &opt,
                        std::string *error);

} // namespace cdna::core

#endif // CDNA_CORE_CLI_HH
