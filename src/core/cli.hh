/**
 * @file
 * Command-line front end for the simulator.
 *
 * Turns argv into a SystemConfig + run parameters and renders reports
 * as text or JSON, so scripts can sweep configurations without writing
 * C++.  Used by the `cdna_sim` and `chaos` tools; exposed as a library
 * so the parsing is unit-testable.
 *
 * Parsing is table-driven: every option lives in one spec table (see
 * cliOptionTable()) from which the usage text is generated, so a new
 * flag cannot be parsed but undocumented or vice versa.
 */

#ifndef CDNA_CORE_CLI_HH
#define CDNA_CORE_CLI_HH

#include <optional>
#include <string>
#include <vector>

#include "core/system.hh"

namespace cdna::core {

/** Parsed command line. */
struct CliOptions
{
    SystemConfig config;
    sim::Time warmup = sim::milliseconds(100);
    sim::Time measure = sim::milliseconds(500);
    bool json = false;
    bool help = false;

    // Observability (see docs: "Observability" in README.md).
    std::string traceFile;     //!< --trace FILE: Chrome trace JSON output
    std::string traceFilter;   //!< --trace-filter SUBSTR[,SUBSTR...]
    std::string statsJsonFile; //!< --stats-json FILE: metrics dump
    sim::Time samplePeriod = 0; //!< --sample-period US (0 = no sampling)
};

/**
 * One CLI option as rendered in the usage text.  The same table drives
 * the parser, so tests can iterate it to check that every documented
 * option is accepted.
 */
struct CliOptionSpec
{
    std::string name;    //!< e.g. "--mode"
    std::string argName; //!< metavariable, empty for boolean flags
    std::string help;    //!< one-line description ('\n' allowed)
    std::string group;   //!< usage section heading

    bool takesValue() const { return !argName.empty(); }
};

/** Every option the parser understands, in usage order. */
const std::vector<CliOptionSpec> &cliOptionTable();

/** Usage text for the CLI (generated from cliOptionTable()). */
std::string cliUsage();

/**
 * Parse arguments (excluding argv[0]).
 * @param args   the argument vector
 * @param error  receives a message when parsing fails
 * @return options, or no value on error
 */
std::optional<CliOptions> parseCli(const std::vector<std::string> &args,
                                   std::string *error);

/**
 * RAII wrapper around a run's observability outputs.
 *
 * Construction enables tracing and gauge sampling on @p sys per the
 * parsed options; destruction writes the requested trace / stats files.
 * Call close() before destruction to learn about I/O failures — the
 * destructor flushes too, but has nowhere to report errors.
 *
 *   core::System sys(opt->config);
 *   core::ObservabilitySession obs(sys, *opt);
 *   core::Report r = sys.run(opt->warmup, opt->measure);
 *   if (!obs.close(&error)) { ... }
 */
class ObservabilitySession
{
  public:
    ObservabilitySession(System &sys, const CliOptions &opt);
    ~ObservabilitySession();

    ObservabilitySession(const ObservabilitySession &) = delete;
    ObservabilitySession &operator=(const ObservabilitySession &) = delete;

    /**
     * Write the trace and stats files now (idempotent; the destructor
     * becomes a no-op).  @return false (with *error set) on failure.
     */
    bool close(std::string *error = nullptr);

  private:
    System &sys_;
    std::string traceFile_;
    std::string statsJsonFile_;
    bool closed_ = false;
};

} // namespace cdna::core

#endif // CDNA_CORE_CLI_HH
