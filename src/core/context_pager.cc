#include "core/context_pager.hh"

#include <algorithm>
#include <utility>

#include "sim/assert.hh"

namespace cdna::core {

const char *
evictPolicyName(EvictPolicy p)
{
    switch (p) {
      case EvictPolicy::kLru: return "lru";
      case EvictPolicy::kTrafficWeighted: return "traffic";
    }
    return "?";
}

ContextPager::ContextPager(sim::SimContext &ctx, std::string name,
                           vmm::Hypervisor &hv, CdnaNic &nic,
                           const CostModel &costs, EvictPolicy policy)
    : sim::SimObject(ctx, std::move(name)),
      hv_(hv),
      nic_(nic),
      costs_(costs),
      policy_(policy)
{
}

void
ContextPager::onTrap(CdnaNic::ContextId target)
{
    // Coalesce: a context already queued or mid-switch needs no second
    // switch -- the doorbell value is in its saved mailbox image and the
    // replay at page-in covers it.  The trap itself was already counted
    // and its hypervisor entry is charged below.
    if (current_ == target ||
        std::find(pending_.begin(), pending_.end(), target) !=
            pending_.end())
        return;
    pending_.push_back(target);
    queuePeak_ = std::max<std::uint64_t>(queuePeak_, pending_.size());
    hv_.contextTrap(costs_.cxtPageTrap, [this] { pump(); });
}

void
ContextPager::pump()
{
    if (current_.has_value())
        return; // a switch is in flight; its completion re-pumps
    while (!pending_.empty()) {
        CdnaNic::ContextId target = pending_.front();
        pending_.pop_front();
        // Revoked or already restored meanwhile: nothing to do.
        if (!nic_.contextAllocated(target) ||
            nic_.contextResident(target))
            continue;
        current_ = target;
        beginSwitch(target);
        return;
    }
}

std::optional<CdnaNic::ContextId>
ContextPager::pickVictim() const
{
    std::optional<CdnaNic::ContextId> best;
    std::uint64_t bestScore = 0;
    sim::Time bestActive = 0;
    std::uint32_t n = std::max(nic_.params().numContexts,
                               nic_.params().virtualContexts);
    for (CdnaNic::ContextId id = 0; id < n; ++id) {
        if (!nic_.contextAllocated(id) || !nic_.contextResident(id))
            continue;
        std::uint64_t score = policy_ == EvictPolicy::kTrafficWeighted
                                  ? nic_.contextTrafficScore(id)
                                  : 0;
        sim::Time active = nic_.contextLastActive(id);
        // Primary key: traffic score (traffic-weighted only); secondary
        // key: recency; final tie-break: lowest id (determinism).
        bool better = !best.has_value() || score < bestScore ||
                      (score == bestScore && active < bestActive);
        if (better) {
            best = id;
            bestScore = score;
            bestActive = active;
        }
    }
    return best;
}

void
ContextPager::beginSwitch(CdnaNic::ContextId target)
{
    if (nic_.freeSlots() > 0) {
        restore(target);
        return;
    }
    auto victim = pickVictim();
    SIM_ASSERT(victim.has_value(),
               "no evictable context despite full slots");
    nic_.pageOutContext(*victim, [this, victim = *victim, target] {
        // Quiesce drained; charge the quiesce epoch plus the save DMA
        // that copies the victim's SRAM image out to host memory.
        events().schedule(costs_.cxtQuiesce + costs_.cxtSaveDma,
                          [this, victim, target] {
            if (evictedHook_)
                evictedHook_(victim);
            restore(target);
        });
    });
}

void
ContextPager::restore(CdnaNic::ContextId target)
{
    events().schedule(costs_.cxtRestoreDma, [this, target] {
        // The target can have been revoked while the DMA was in
        // flight; the slot simply stays free for the next fault.
        if (nic_.contextAllocated(target) &&
            !nic_.contextResident(target)) {
            nic_.pageInContext(target);
            nic_.replayDoorbells(target);
        }
        current_.reset();
        pump();
    });
}

} // namespace cdna::core
