/**
 * @file
 * The CDNA guest device driver (paper sections 3.1, 3.3, 3.4).
 *
 * Each guest's driver interacts with its private hardware context
 * exactly as if the context were an independent physical NIC: it builds
 * DMA descriptors, asks the hypervisor to enqueue them (the protected
 * path), and rings the context's mailbox doorbell by PIO.  A small
 * library translates driver virtual addresses to physical addresses
 * before the hypercall (section 3.4).  Completions arrive as virtual
 * interrupts raised from the NIC's interrupt bit vectors.
 *
 * The driver also runs in the driver domain against a single context to
 * reproduce the paper's "Xen / RiceNIC" software-virtualization rows,
 * so it implements the backend-facing refill interface too.
 */

#ifndef CDNA_CORE_CDNA_DRIVER_HH
#define CDNA_CORE_CDNA_DRIVER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "core/cdna_nic.hh"
#include "core/cost_model.hh"
#include "core/dma_protection.hh"
#include "os/net_device.hh"
#include "vmm/hypervisor.hh"

namespace cdna::core {

class CdnaGuestDriver : public sim::SimObject, public os::NetDevice
{
  public:
    /**
     * @param dom  owning domain (a guest, or the driver domain)
     * @param nic  the CDNA NIC
     * @param cxt  hardware context assigned to @p dom by the hypervisor
     * @param prot the hypervisor's protection service
     */
    CdnaGuestDriver(sim::SimContext &ctx, std::string name,
                    vmm::Domain &dom, CdnaNic &nic,
                    CdnaNic::ContextId cxt, DmaProtection &prot,
                    const CostModel &costs, net::MacAddr mac);

    /**
     * Bring the interface up: register rings with the protection
     * service and post the initial receive buffers.
     */
    void attach();

    /**
     * Tear the interface down (context revocation, section 3.1): stop
     * issuing doorbells/enqueues and drop every DMA pin held for this
     * context so its pages become reclaimable.  In-flight callbacks
     * become no-ops.
     */
    void detach();

    bool detached() const { return detached_; }

    /**
     * Point a detached driver at a fresh hardware context (driver
     * recovery after its domain restarts: the old context was revoked
     * with the crash, the restarted domain allocates a new one and
     * attach()es again from scratch).
     */
    void rebind(CdnaNic::ContextId cxt);

    /** Handle the context's virtual interrupt (wired by the system). */
    void handleIrq();

    // --- NetDevice ------------------------------------------------------
    bool canTransmit() const override;
    void transmit(net::Packet pkt) override;
    void flush() override;
    net::MacAddr mac() const override { return mac_; }
    bool tsoCapable() const override { return nic_.params().tso; }
    void setAutoRefill(bool on) override { autoRefill_ = on; }
    void refillRx(mem::PageNum page) override;

    CdnaNic::ContextId context() const { return cxt_; }
    vmm::Domain &domain() { return dom_; }

    /** Ring-doorbell writes issued (PIO mailbox updates). */
    std::uint64_t doorbells() const { return nDoorbells_.value(); }

    /** Mailbox timeouts detected by the watchdog (fault injection). */
    std::uint64_t mailboxTimeouts() const { return nMboxTimeouts_.value(); }
    /** Descriptor-ring resynchronizations performed after a timeout. */
    std::uint64_t ringResyncs() const { return nRingResyncs_.value(); }

  private:
    void flushRxRefills();
    void armWatchdog();
    void fireWatchdog();
    std::uint64_t sgPages(const mem::SgList &sg) const;

    vmm::Domain &dom_;
    CdnaNic &nic_;
    CdnaNic::ContextId cxt_;
    DmaProtection &prot_;
    const CostModel &costs_;
    net::MacAddr mac_;

    DmaProtection::Handle txHandle_ = 0;
    DmaProtection::Handle rxHandle_ = 0;

    // TX
    std::deque<net::Packet> txBacklog_;
    std::deque<std::uint64_t> txInflightBytes_;
    std::uint32_t txEnqueued_ = 0;
    std::uint32_t txDrained_ = 0;
    bool txFlushPending_ = false;
    bool txHypercallBusy_ = false;
    bool txWasFull_ = false;

    // RX
    std::vector<mem::PageNum> rxSlotPage_;
    std::deque<mem::PageNum> rxRefillStage_;
    std::uint32_t rxEnqueued_ = 0;
    bool rxFlushPending_ = false;
    bool autoRefill_ = true;
    bool detached_ = false;

    // Mailbox-timeout watchdog (armed only under fault injection; see
    // armWatchdog()).  The NIC can lose rung doorbells across a
    // firmware watchdog reboot; the driver detects the resulting lack
    // of consumer progress and re-rings both producer mailboxes, which
    // is idempotent when nothing was actually lost.
    static constexpr sim::Time kWatchdogBase = sim::kMillisecond;
    static constexpr sim::Time kWatchdogMax = 16 * sim::kMillisecond;
    bool watchdogArmed_ = false;
    sim::Time watchdogDelay_ = kWatchdogBase;
    std::uint32_t wdTxConsumer_ = 0;
    std::uint32_t wdRxConsumer_ = 0;

    sim::Counter &nDoorbells_;
    sim::Counter &nTxPkts_;
    sim::Counter &nRxPkts_;
    sim::Counter &nFaultsSeen_;
    sim::Counter &nMboxTimeouts_;
    sim::Counter &nRingResyncs_;
};

} // namespace cdna::core

#endif // CDNA_CORE_CDNA_DRIVER_HH
