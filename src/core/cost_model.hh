/**
 * @file
 * The calibrated CPU/firmware cost model.
 *
 * Every software action in the simulated system charges time from this
 * table.  Defaults are calibrated so the six headline configurations
 * land near the paper's measurements (Tables 1-4) and the guest sweeps
 * reproduce Figures 3-4; EXPERIMENTS.md records measured-vs-paper.
 *
 * Calibration sources and caveats:
 *  - TCP acknowledgments ARE simulated as real reverse-path frames
 *    (the peer ACKs every ackPerFrames data frames; guests generate
 *    delayed ACKs for received data), so the driver-domain and guest
 *    cost of the ACK path on transmit tests emerges from the same
 *    constants as the receive path.
 *  - Costs are per *operation* (per segment, per page, per interrupt),
 *    so batching effects -- the mechanism behind the paper's
 *    scalability shapes -- emerge from the simulation rather than being
 *    baked into the constants.
 */

#ifndef CDNA_CORE_COST_MODEL_HH
#define CDNA_CORE_COST_MODEL_HH

#include "cpu/sim_cpu.hh"
#include "nic/nic_base.hh"
#include "sim/time.hh"
#include "vmm/hypervisor.hh"

namespace cdna::core {

using sim::Time;

/** All calibrated software-path costs. */
struct CostModel
{
    // ---- application (user mode) --------------------------------------
    /** Per 64 KB socket write (syscall + buffer handling). */
    Time appPerWrite = sim::microseconds(2.0);
    /** Per 64 KB of received data consumed by the application. */
    Time appPerRead = sim::microseconds(1.8);
    /** Per payload byte touched in user mode (single reused buffer). */
    double appPerByteNs = 0.004;

    // ---- kernel network stack (OS mode) --------------------------------
    /** Per TSO segment or frame pushed through the TX stack. */
    Time stackTxPerPacket = sim::nanoseconds(550);
    /** Per TX payload byte (user copy; checksum offloaded). */
    double stackTxPerByteNs = 0.22;
    /** Per frame delivered up the RX stack. */
    Time stackRxPerPacket = sim::microseconds(1.15);
    /** Per RX payload byte (copy to user). */
    double stackRxPerByteNs = 0.40;
    /** Processing an incoming TCP ACK (window update, skb free). */
    Time stackAckRxCost = sim::nanoseconds(300);
    /** Generating an outgoing TCP ACK. */
    Time stackAckTxCost = sim::nanoseconds(450);
    /** Send one ACK per this many received data frames (0 disables). */
    std::uint32_t ackPerFrames = 2;

    // ---- native NIC driver (driver domain or native Linux) -------------
    Time drvTxPerPacket = sim::nanoseconds(800);
    Time drvTxCompletion = sim::nanoseconds(400);
    Time drvRxPerPacket = sim::nanoseconds(1200);
    Time drvPioWrite = sim::nanoseconds(400);
    /** Fixed handler cost per interrupt taken (beyond upcall entry). */
    Time drvIrqHandler = sim::nanoseconds(1000);
    /** Upcall/IRQ entry cost charged to the interrupted OS. */
    Time irqEntry = sim::nanoseconds(900);

    // ---- Xen paravirtual path (frontend / backend / bridge) ------------
    // Xen's paravirtual costs are dominantly per-byte/per-page (grant
    // machinery scales with the data spanned), which is why the paper's
    // TSO (Intel) and non-TSO (RiceNIC) rows land so close together.
    /** Frontend per TX packet: build request, issue grant (guest side). */
    Time feTxPerPacket = sim::nanoseconds(200);
    /** Frontend per TX payload byte (grant/page handling). */
    double feTxPerByteNs = 1.35;
    /** Frontend per TX response processed. */
    Time feTxCompletion = sim::nanoseconds(150);
    /** Frontend per RX packet: consume response, re-post buffer. */
    Time feRxPerPacket = sim::nanoseconds(1000);
    /** Backend per TX packet (map, build skb, hand to bridge). */
    Time beTxPerPacket = sim::nanoseconds(200);
    /** Backend per TX payload byte (map/copy machinery). */
    double beTxPerByteNs = 0.60;
    /** Backend per RX packet (flip bookkeeping, push response). */
    Time beRxPerPacket = sim::nanoseconds(1700);
    /** Backend per RX payload byte. */
    double beRxPerByteNs = 0.80;
    /**
     * Copy-mode netback (the mechanism that later replaced page
     * flipping in Xen): per-byte memcpy cost of moving a received
     * frame into the guest's posted page.
     */
    double beRxCopyPerByteNs = 0.45;
    /** Backend per TX completion (push response, free state). */
    Time beTxCompletion = sim::nanoseconds(100);
    /** Bridge forwarding decision per packet. */
    Time bridgePerPacket = sim::nanoseconds(400);
    /** Fixed cost per backend/driver-domain wakeup (scan vifs etc.). */
    Time backendPerWake = sim::microseconds(1.6);

    // ---- CDNA guest driver ----------------------------------------------
    /** Virtual-to-physical translation library, per page (section 3.4). */
    Time cdnaTranslatePerPage = sim::nanoseconds(150);
    Time cdnaDrvTxPerPacket = sim::nanoseconds(450);
    Time cdnaDrvRxPerPacket = sim::nanoseconds(400);
    Time cdnaDrvCompletion = sim::nanoseconds(150);

    // ---- hypervisor DMA memory protection (section 3.3) ----------------
    /** Validate that the caller owns one referenced page. */
    Time protValidatePerPage = sim::nanoseconds(100);
    /** Increment the page reference count (pin). */
    Time protPinPerPage = sim::nanoseconds(40);
    /** Lazy unpin of a completed descriptor's page. */
    Time protUnpinPerPage = sim::nanoseconds(40);
    /** Stamp the sequence number and copy the descriptor into the ring. */
    Time protEnqueuePerDesc = sim::nanoseconds(90);

    // ---- failure-domain recovery (driver-domain crash, fw reboot) -------
    /**
     * Wall time from a driver-domain crash until the restarted domain
     * is ready to accept frontend reconnections (kernel boot + netback
     * init, compressed to simulation scale).
     */
    Time driverDomainReboot = sim::milliseconds(10.0);
    /**
     * Bound on how long the NIC DMA engine may keep referencing pages
     * that were granted to the crashed domain; revoked grant pages stay
     * quarantined (pinned, DMA window open) this long before they may
     * be reused.  The TX engine is quiesced at kill time, so this only
     * has to cover DMA transactions already in flight at that instant;
     * it stays well below the driver-domain reboot cost so pages are
     * reusable before the restarted backend allocates.
     */
    Time dmaQuarantineDrain = sim::microseconds(500.0);
    /** Frontend watchdog period for detecting a dead backend. */
    Time feWatchdogPeriod = sim::milliseconds(1.0);
    /** First reconnect retry delay; doubles per failed attempt. */
    Time feReconnectBackoffBase = sim::milliseconds(1.0);
    /** Reconnect backoff ceiling. */
    Time feReconnectBackoffMax = sim::milliseconds(8.0);
    /** Guest CPU cost of renegotiating rings/grants on reconnect. */
    Time feReconnectCost = sim::microseconds(15);
    /** NIC firmware reboot downtime (--reboot-firmware). */
    Time firmwareReboot = sim::milliseconds(2.0);
    /** Firmware cost to reconcile one context after a reboot. */
    Time fwRebootReconcilePerContext = sim::microseconds(2.0);

    // ---- virtual-context oversubscription -------------------------------
    /** Hypervisor entry/decode for a doorbell to a paged-out context. */
    Time cxtPageTrap = sim::microseconds(1.2);
    /** Quiesce epoch for the eviction victim (drain in-flight ops). */
    Time cxtQuiesce = sim::microseconds(3.0);
    /** DMA the victim's 4 KB SRAM context image out to host memory. */
    Time cxtSaveDma = sim::microseconds(4.0);
    /** DMA the saved image back into the freed physical slot. */
    Time cxtRestoreDma = sim::microseconds(4.0);

    // ---- software-only passthrough (Kedia & Bansal) ---------------------
    // Guests program real Intel-style descriptor rings; every doorbell
    // traps into the hypervisor, which validates and shadow-copies the
    // descriptors onto the shared single-context NIC.  Costs are per
    // trap / per descriptor so batching (many descriptors per doorbell)
    // amortizes the trap exactly as in the paper this models.
    /** VM exit + decode + re-entry for one trapped doorbell PIO. */
    Time swptDoorbellTrap = sim::microseconds(1.0);
    /** Audit one descriptor against the grant table / page owners. */
    Time swptValidatePerDesc = sim::nanoseconds(250);
    /** Copy one validated descriptor into the hypervisor shadow ring. */
    Time swptShadowCopyPerDesc = sim::nanoseconds(120);
    /** Per-byte software demux copy of a received frame into the
     *  destination guest's posted buffer (same mechanism class as
     *  copy-mode netback, minus the bridge/vif machinery). */
    double swptRxCopyPerByteNs = 0.45;

    // ---- background OS load ---------------------------------------------
    /** Periodic timer tick cost per domain. */
    Time timerTickCost = sim::microseconds(4.0);
    /** Timer tick frequency per domain (Hz). */
    int timerHz = 100;

    // ---- hypervisor + scheduler ------------------------------------------
    vmm::HvParams hv{};
    cpu::CpuParams cpuParams{};

    // ---- NIC coalescing ----------------------------------------------------
    nic::CoalesceParams intelCoalesce{sim::microseconds(120), 48};
    /** CDNA bit-vector windows (tuned per direction, as the paper tuned
     *  "NIC coalescing options" per experiment). */
    nic::CoalesceParams cdnaCoalesce{sim::microseconds(145), 1u << 30};
    nic::CoalesceParams cdnaCoalesceRx{sim::microseconds(268), 1u << 30};

    // ---- switch fabric (multi-host topologies) --------------------------
    /**
     * Store-and-forward lookup/enqueue latency per frame between full
     * ingress reception and egress eligibility; a cut-through-era GigE
     * top-of-rack switch forwards a learned unicast in a few
     * microseconds.
     */
    Time switchForwardLatency = sim::microseconds(4.0);
    /** Per-egress-port packet buffer (wire bytes); ~85 full frames,
     *  modeled after the shallow shared-memory switches of the era. */
    std::uint64_t switchBufBytesPerPort = 128 * 1024;
};

} // namespace cdna::core

#endif // CDNA_CORE_COST_MODEL_HH
