/**
 * @file
 * Whole-system assembly: the public entry point of the library.
 *
 * A System instantiates the paper's testbed in one of four I/O
 * architectures:
 *
 *  - kNative: one OS owning the NICs directly (Table 1 baseline);
 *  - kXen:    driver domain + software multiplexing through the bridge
 *             and paravirtual split drivers (sections 2.1-2.2), over
 *             either the Intel NIC (TSO) or a CDNA NIC with a single
 *             context assigned to the driver domain (the Xen/RiceNIC
 *             rows of Tables 2-3);
 *  - kCdna:   each guest owns a private hardware context on every NIC
 *             (section 3), with DMA protection on or off (Table 4) and
 *             optional IOMMU modes (section 5.3);
 *  - kSwPassthrough: software-only passthrough (Kedia & Bansal's
 *             competing design point): guests program real Intel-style
 *             descriptor rings, every doorbell traps into a hypervisor
 *             validator (vmm/swpt_validator.hh) that audits and
 *             shadow-copies descriptors onto ONE shared single-context
 *             IntelNic, with software RX demux by destination MAC.
 *
 * Usage:
 *   core::SystemConfig cfg;
 *   cfg.mode = core::IoMode::kCdna;
 *   cfg.numGuests = 4;
 *   core::System sys(cfg);
 *   core::Report r = sys.run(sim::milliseconds(50), sim::seconds(1));
 */

#ifndef CDNA_CORE_SYSTEM_HH
#define CDNA_CORE_SYSTEM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/availability.hh"
#include "core/cdna_driver.hh"
#include "core/cdna_nic.hh"
#include "core/context_pager.hh"
#include "core/cost_model.hh"
#include "core/dma_protection.hh"
#include "core/fault_plan.hh"
#include "core/report.hh"
#include "mem/grant_table.hh"
#include "mem/iommu.hh"
#include "sim/metrics_registry.hh"
#include "net/eth_link.hh"
#include "net/traffic_peer.hh"
#include "nic/intel_nic.hh"
#include "os/native_driver.hh"
#include "os/net_stack.hh"
#include "os/swpt_driver.hh"
#include "os/xen_net.hh"
#include "vmm/hypervisor.hh"
#include "vmm/swpt_validator.hh"
#include "workload/traffic_app.hh"

namespace cdna::core {

/** I/O virtualization architecture under test. */
enum class IoMode { kNative, kXen, kCdna, kSwPassthrough };

/** Transport model aliases, so configs read as `.transport(kTcp)`. */
using net::transport::TransportKind;
inline constexpr TransportKind kOpenLoop = TransportKind::kOpenLoop;
inline constexpr TransportKind kTcp = TransportKind::kTcp;

/** Physical NIC model. */
enum class NicKind { kIntel, kRice };

/**
 * System configuration.
 *
 * Build one fluently from a named constructor matching the paper's
 * rows, e.g.:
 *
 *   auto cfg = SystemConfig::cdna(4).transmit(false)
 *                  .withProtection(false)
 *                  .withFaults(FaultPlan{}.dropping(0.01));
 *
 * All fields remain public for ablations; the fluent setters only make
 * the common paths read well.
 */
struct SystemConfig
{
    IoMode mode = IoMode::kCdna;
    NicKind nicKind = NicKind::kRice;
    std::uint32_t numGuests = 1;
    std::uint32_t numNics = 2;
    /** Hypervisor DMA protection + NIC seqno checks (CDNA). */
    bool dmaProtection = true;
    /** Xen receive path: copy-mode netback instead of page flipping. */
    bool xenRxCopyMode = false;
    mem::Iommu::Mode iommuMode = mem::Iommu::Mode::kNone;
    /** Workload direction: transmit from guests, or receive into them. */
    bool transmitDir = true;
    std::uint32_t connectionsPerVif = 2;
    std::uint64_t seed = 1;
    std::uint64_t memoryPages = 256 * 1024; // 1 GB
    CostModel costs{};
    CdnaNicParams cdnaParams{};
    nic::IntelNicParams intelParams{};
    /** Explicit report label; empty derives one (see effectiveLabel()). */
    std::string label;
    /** Fault plan; an empty plan injects nothing (see fault_plan.hh). */
    FaultPlan faults{};
    /**
     * Transport model: the default open loop keeps every pre-existing
     * configuration bit-identical at the same seed; kTcp runs closed-
     * loop Reno endpoints on the guests and the peers (see
     * net/transport/tcp.hh).
     */
    TransportKind transportKind = TransportKind::kOpenLoop;
    /** TCP tunables (used only when transportKind == kTcp). */
    net::transport::TcpParams tcpParams{};
    /**
     * Declarative peer workload (see net/workload/workload_spec.hh).
     * Empty (the default) keeps the classic behavior: receive runs
     * flood the guests at line rate, transmit runs generate nothing at
     * the peer.  Non-empty specs are applied to every local peer at
     * start(); targets default to the guests' MACs and the spec's seed
     * is replaced by the system seed, so sweeps stay deterministic.
     */
    net::workload::WorkloadSpec workload{};
    /**
     * Virtual-context oversubscription (CDNA only): allocate one
     * virtual context per guest even past the NIC's physical slot
     * count, with the hypervisor's pager switching contexts on demand.
     * Off by default -- disabled systems are bit-identical to PR 5.
     */
    bool ctxOversub = false;
    /** Eviction policy used by the context pager. */
    EvictPolicy ctxEvictPolicy = EvictPolicy::kLru;
    /**
     * Multi-host topologies: this host's index in the shared MAC space.
     * Host h's guest and driver-domain MACs live in a disjoint 1 Mi-id
     * block, so hosts on one switch never collide; 0 is bit-identical
     * to the classic single-host layout.
     */
    std::uint32_t hostId = 0;
    /**
     * Prefix applied to every component name this System creates, so N
     * systems sharing one SimContext keep distinct stat/trace names
     * ("h1.eth0", ...).  Empty (the default) matches the single-host
     * names exactly.
     */
    std::string namePrefix;
    /**
     * Free-form scenario parameters (fanout, switch buffer bytes, ...)
     * so sweep axes can carry topology knobs that System itself never
     * reads; see sim/sweep_presets.cc's incast runner.
     */
    std::map<std::string, double> scenario;

    // --- named constructors (the paper's configurations) -----------------
    /** Native Linux owning @p nics NICs directly (Table 1 baseline). */
    static SystemConfig native(std::uint32_t nics = 2);
    /** Xen split drivers over the Intel NIC (Tables 2-3 "Xen"). */
    static SystemConfig xenIntel(std::uint32_t guests = 1);
    /** Xen split drivers over the RiceNIC ("Xen/RiceNIC" rows). */
    static SystemConfig xenRice(std::uint32_t guests = 1);
    /** CDNA: per-guest hardware contexts (section 3). */
    static SystemConfig cdna(std::uint32_t guests = 1);
    /** Software-only passthrough: guest-programmed real rings, doorbell
     *  validation in the hypervisor, one shared IntelNic. */
    static SystemConfig swPassthrough(std::uint32_t guests = 1);

    // --- fluent setters ---------------------------------------------------
    /** Workload direction: guests transmit (default) or receive. */
    SystemConfig &
    transmit(bool tx = true)
    {
        transmitDir = tx;
        return *this;
    }

    SystemConfig &
    receive()
    {
        transmitDir = false;
        return *this;
    }

    SystemConfig &
    withGuests(std::uint32_t n)
    {
        numGuests = n;
        return *this;
    }

    SystemConfig &
    withNics(std::uint32_t n)
    {
        numNics = n;
        return *this;
    }

    SystemConfig &
    withProtection(bool on)
    {
        dmaProtection = on;
        return *this;
    }

    SystemConfig &
    withIommu(mem::Iommu::Mode m)
    {
        iommuMode = m;
        return *this;
    }

    SystemConfig &
    withRxCopy(bool on)
    {
        xenRxCopyMode = on;
        return *this;
    }

    SystemConfig &
    withConnections(std::uint32_t n)
    {
        connectionsPerVif = n;
        return *this;
    }

    SystemConfig &
    withSeed(std::uint64_t s)
    {
        seed = s;
        return *this;
    }

    SystemConfig &
    withLabel(std::string l)
    {
        label = std::move(l);
        return *this;
    }

    SystemConfig &
    withFaults(FaultPlan plan)
    {
        faults = std::move(plan);
        return *this;
    }

    /** Enable virtual-context oversubscription (CDNA only). */
    SystemConfig &
    oversubscribed(bool on = true)
    {
        ctxOversub = on;
        return *this;
    }

    /** Eviction policy for the context pager (with oversubscribed()). */
    SystemConfig &
    withEvictionPolicy(EvictPolicy p)
    {
        ctxEvictPolicy = p;
        return *this;
    }

    /** Place this host in a multi-host topology (MAC block + names). */
    SystemConfig &
    onHost(std::uint32_t id, std::string prefix)
    {
        hostId = id;
        namePrefix = std::move(prefix);
        return *this;
    }

    /** Attach a free-form scenario parameter (topology knobs). */
    SystemConfig &
    withScenario(const std::string &key, double value)
    {
        scenario[key] = value;
        return *this;
    }

    /** Read a scenario parameter, defaulting when unset. */
    double
    scenarioOr(const std::string &key, double def) const
    {
        auto it = scenario.find(key);
        return it == scenario.end() ? def : it->second;
    }

    /** Select the transport model, e.g. `.transport(kTcp)`. */
    SystemConfig &
    transport(TransportKind k)
    {
        transportKind = k;
        return *this;
    }

    SystemConfig &
    withTcpParams(const net::transport::TcpParams &p)
    {
        tcpParams = p;
        return *this;
    }

    /** Attach a declarative peer workload (replaces the default flood). */
    SystemConfig &
    withWorkload(net::workload::WorkloadSpec spec)
    {
        workload = std::move(spec);
        return *this;
    }

    /**
     * The report label: the explicit label if set, otherwise derived
     * from mode/direction/protection ("cdna/tx", "xen-intel/rx",
     * "cdna/tx/noprot", ...) so it always matches the configuration.
     */
    std::string effectiveLabel() const;
};

class System
{
  public:
    explicit System(SystemConfig cfg);

    /**
     * Construct inside a shared context (multi-host topologies).  NIC i
     * binds a port on @p nic_fabrics[i]; a nullptr entry (or a vector
     * shorter than numNics) gives that NIC the classic private
     * EthLink + TrafficPeer pair.  The caller drives the event queue
     * and brackets measurement with beginMeasurement() /
     * endMeasurement(); see sim/topology.hh for the builder that
     * assembles switches, hosts, and peers.
     */
    System(SystemConfig cfg, sim::SimContext &shared,
           std::vector<net::Fabric *> nic_fabrics);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Start workloads (idempotent; run() calls it). */
    void start();

    /**
     * Simulate @p warmup, reset accounting, simulate @p measure, and
     * report the measurement window.
     */
    Report run(sim::Time warmup, sim::Time measure);

    /**
     * Externally driven measurement (shared-context topologies): call
     * once the warmup has been simulated, run the shared queue for the
     * window, then collect endMeasurement().  run() is exactly
     * start + warmup + beginMeasurement + measure + endMeasurement.
     */
    void beginMeasurement();
    Report endMeasurement(sim::Time window);

    // --- component access (tests, examples, ablations) -------------------
    sim::SimContext &ctx() { return ctx_; }
    /** Federated stats + gauge sampling (see sim/metrics_registry.hh). */
    sim::MetricsRegistry &metrics() { return metrics_; }
    cpu::SimCpu &cpu() { return *cpu_; }
    vmm::Hypervisor &hv() { return *hv_; }
    mem::PhysMemory &mem() { return *mem_; }
    mem::Iommu *iommu() { return iommu_.get(); }
    DmaProtection *protection() { return prot_.get(); }
    const SystemConfig &config() const { return cfg_; }

    std::uint32_t nicCount() const
    {
        return static_cast<std::uint32_t>(
            std::max(cdnaNics_.size(), intelNics_.size()));
    }
    CdnaNic *cdnaNic(std::uint32_t i);

    /** Context pager of NIC @p i (nullptr unless oversubscribed). */
    ContextPager *
    contextPager(std::uint32_t i)
    {
        return i < pagers_.size() ? pagers_[i].get() : nullptr;
    }

    vmm::Hypervisor &hypervisor() { return *hv_; }
    nic::IntelNic *intelNic(std::uint32_t i);
    /** Local traffic peer of NIC @p i (only for locally-linked NICs). */
    net::TrafficPeer &peer(std::uint32_t i) { return *peers_[i]; }
    /** The fabric port NIC @p i is bound to. */
    net::Port &nicPort(std::uint32_t i);
    /** True when NIC @p i is bound to a caller-provided fabric. */
    bool nicExternal(std::uint32_t i) const
    {
        return i < extFabrics_.size() && extFabrics_[i] != nullptr;
    }
    /** The caller-provided fabric of an external NIC. */
    net::Fabric &nicFabric(std::uint32_t i) { return *extFabrics_[i]; }
    /** MAC address of (guest, nic), offset into this host's MAC block. */
    net::MacAddr guestMac(std::uint32_t guest, std::uint32_t nic) const;

    vmm::Domain *driverDomain() { return driverDom_; }
    vmm::Domain *guestDomain(std::uint32_t g);
    CdnaGuestDriver *cdnaDriver(std::uint32_t guest, std::uint32_t nic);

    /** Software-passthrough validator of NIC @p i (swPassthrough only). */
    vmm::SwptValidator *swptValidator(std::uint32_t i);
    /** Software-passthrough guest driver (swPassthrough mode only). */
    os::SwptDriver *swptDriver(std::uint32_t guest, std::uint32_t nic);

    /**
     * Revoke a guest's hardware context on one NIC at runtime (section
     * 3.1): the driver is detached (its DMA pins dropped, making the
     * guest's pages reclaimable), pending NIC operations for the
     * context are shut down, and the context slot becomes reusable.
     * CDNA mode only.
     * @retval true the context existed and was revoked
     */
    bool revokeGuestContext(std::uint32_t guest, std::uint32_t nic);

    /**
     * Simulate a guest crash: revoke its context on every NIC (fault
     * plans schedule this via FaultPlan::killingGuest), then silence
     * the dead guest's software -- its apps stop, its stacks cancel
     * every pending transport timer (RTO, delayed ACK), and its timer
     * tick stops -- so no scheduled event can fire into the dead
     * domain.  In swPassthrough mode the validator port is detached
     * instead: queued descriptors are flushed and RX demux to the dead
     * guest stops, while pages referenced by descriptors already on
     * the NIC stay pinned until the device consumes them.  CDNA and
     * swPassthrough modes.
     * @retval true at least one context/port was revoked
     */
    bool killGuest(std::uint32_t guest);

    /**
     * Crash the driver domain (FaultPlan::killingDriverDomain).  Under
     * Xen the backends die -- every guest loses connectivity until the
     * domain reboots (costs.driverDomainReboot) and the frontends
     * reconnect; grant mappings held by the dead domain are revoked,
     * with in-flight DMA targets quarantined until the drain delay
     * passes.  Under CDNA the kill is control-plane only: guest
     * datapaths never touch dom0, so traffic continues unaffected.
     * Under swPassthrough the dom0-equivalent is the validator itself:
     * it stalls (doorbells latch unprocessed, the shared NIC's RX ring
     * runs dry) until the reboot delay passes and it restarts.
     * @retval true the fault applied (false in native mode / already down)
     */
    bool killDriverDomain();
    bool driverDomainDown() const { return driverDomainDown_; }

    /**
     * Reboot NIC @p nic's firmware (FaultPlan::rebootingFirmware): all
     * volatile firmware state is lost and per-context descriptor
     * positions are reconciled against hypervisor-validated ring
     * state; guest watchdogs re-ring lost doorbells without any other
     * domain's involvement.  In swPassthrough mode this is a full
     * device reset of the shared IntelNic: in-flight TX is dropped and
     * the validator re-rings its shadow queue once the reboot delay
     * passes.  CDNA NICs and swPassthrough Intel NICs.
     */
    bool rebootNicFirmware(std::uint32_t nic);

    /** Availability tracker, or null without an outage fault plan. */
    AvailabilityTracker *availability() { return avail_.get(); }

    /** Fault injector, or null when the fault plan is empty. */
    sim::FaultInjector *faultInjector() { return faults_.get(); }

    os::NetStack &stack(std::uint32_t guest, std::uint32_t nic);
    workload::TrafficApp &app(std::uint32_t guest, std::uint32_t nic);

  private:
    struct Snapshot
    {
        std::uint64_t peerRxPayload = 0;
        std::uint64_t stackRxBytes = 0;
        std::uint64_t wirePayload = 0; //!< raw link payload, goodput dir
        std::uint64_t rxDropsBadCsum = 0;
        std::uint64_t txBacklogPeak = 0;
        std::uint64_t txBacklogNow = 0;
        std::uint64_t tcpRetrans = 0;
        std::uint64_t tcpFastRtx = 0;
        std::uint64_t tcpRtos = 0;
        std::uint64_t tcpDupAcks = 0;
        std::vector<std::uint64_t> perGuestBytes;
        std::uint64_t drvVirtIrqs = 0;
        std::uint64_t guestVirtIrqs = 0;
        std::uint64_t physIrqs = 0;
        std::uint64_t hypercalls = 0;
        std::uint64_t switches = 0;
        std::uint64_t faults = 0;
        std::uint64_t violations = 0;
        std::uint64_t rxDropsNoDesc = 0;
        std::uint64_t rxDropsNoBuf = 0;
        std::uint64_t rxDropsFilter = 0;
        std::uint64_t faultFramesDropped = 0;
        std::uint64_t faultFramesCorrupted = 0;
        std::uint64_t faultFramesDuplicated = 0;
        std::uint64_t faultDmaDelays = 0;
        std::uint64_t firmwareStalls = 0;
        std::uint64_t guestKills = 0;
        std::uint64_t mailboxTimeouts = 0;
        std::uint64_t ringResyncs = 0;
        std::uint64_t domKills = 0;
        std::uint64_t fwReboots = 0;
        std::uint64_t feReconnects = 0;
        std::uint64_t grantsRevoked = 0;
        std::uint64_t pagesQuarantined = 0;
        std::uint64_t quarantineReleases = 0;
        std::uint64_t mailboxThrottled = 0;
        std::uint64_t outagePacketsLost = 0;
        std::uint64_t cxtPageTraps = 0;
        std::uint64_t cxtEvictions = 0;
        std::uint64_t cxtPageIns = 0;
        std::uint64_t cxtResidentPeak = 0;
        std::uint64_t switchDrops = 0;
        std::uint64_t switchDropBytes = 0;
        std::uint64_t switchQueuePeak = 0;
        std::uint64_t rpcRequests = 0;
        std::uint64_t rpcResponses = 0;
        std::uint64_t rpcTimeouts = 0;
        std::uint64_t flowsStarted = 0;
        std::uint64_t flowsCompleted = 0;
        std::uint64_t swptDoorbellTraps = 0;
        std::uint64_t swptDescValidated = 0;
        std::uint64_t swptDescRejected = 0;
        std::uint64_t swptValidationPs = 0;
    };

    System(SystemConfig cfg, sim::SimContext *shared,
           std::vector<net::Fabric *> nic_fabrics);

    void buildCommon();
    void scheduleFaultEvents();
    void setupAvailability();
    void restartDriverDomain();
    void registerGauges();
    void buildNative();
    void buildXen();
    void buildCdna();
    void buildSwpt();
    void wireCdnaIsr(std::uint32_t nic_index);
    void startTimers();
    /** @p base prefixed with cfg_.namePrefix (shared-context naming). */
    std::string nm(const std::string &base) const
    {
        return cfg_.namePrefix + base;
    }
    Snapshot snapshot() const;
    Report buildReport(const Snapshot &a, const Snapshot &b,
                       sim::Time window);

    SystemConfig cfg_;
    /** Owned in single-host mode; null when sharing a topology context. */
    std::unique_ptr<sim::SimContext> ownedCtx_;
    sim::SimContext &ctx_;
    /** Caller-provided fabrics, indexed by NIC (nullptr = local link). */
    std::vector<net::Fabric *> extFabrics_;
    sim::MetricsRegistry metrics_{ctx_};
    std::unique_ptr<sim::FaultInjector> faults_;
    std::unique_ptr<mem::PhysMemory> mem_;
    std::unique_ptr<cpu::SimCpu> cpu_;
    std::unique_ptr<vmm::Hypervisor> hv_;
    std::unique_ptr<mem::Iommu> iommu_;
    std::unique_ptr<DmaProtection> prot_;

    std::vector<std::unique_ptr<mem::PciBus>> buses_;
    // Local-link plumbing; entry i is null when NIC i rides an external
    // fabric (the topology builder owns the switch and remote peers).
    std::vector<std::unique_ptr<net::EthLink>> links_;
    std::vector<std::unique_ptr<net::TrafficPeer>> peers_;
    std::vector<net::Port *> nicPorts_;
    std::vector<std::unique_ptr<nic::IntelNic>> intelNics_;
    std::vector<std::unique_ptr<CdnaNic>> cdnaNics_;

    vmm::Domain *driverDom_ = nullptr;
    std::vector<vmm::Domain *> guests_;

    // Xen path
    std::vector<std::unique_ptr<os::NativeDriver>> nativeDrivers_;
    std::vector<std::unique_ptr<CdnaGuestDriver>> drvDomCdnaDrivers_;
    std::vector<std::unique_ptr<os::DriverDomainNet>> ddns_;

    // CDNA path: per-NIC channel table indexed by (virtual) context id
    std::vector<std::vector<vmm::EventChannel *>> cxtChannels_;
    // Per-NIC context pagers (oversubscription only; else empty).
    std::vector<std::unique_ptr<ContextPager>> pagers_;
    std::vector<std::unique_ptr<CdnaGuestDriver>> guestCdnaDrivers_;

    // swPassthrough path: one validator per NIC, one driver per
    // (guest, nic) in the same NIC-major order as guestDevs_.
    std::vector<std::unique_ptr<vmm::SwptValidator>> swptValidators_;
    std::vector<std::unique_ptr<os::SwptDriver>> swptDrivers_;

    // Per (guest, nic) plumbing; NIC-major: index = nic * guests + guest.
    std::vector<os::NetDevice *> guestDevs_;
    std::vector<std::unique_ptr<os::NetStack>> stacks_;
    std::vector<std::unique_ptr<workload::TrafficApp>> apps_;

    // Self-rescheduling per-domain timer callbacks (see startTimers()).
    std::vector<std::unique_ptr<std::function<void()>>> timerTicks_;
    // Indexed by domain id; a stopped (killed) domain's tick no longer
    // posts CPU work or reschedules itself.
    std::vector<char> domainTimerStopped_;

    std::unique_ptr<AvailabilityTracker> avail_;
    bool driverDomainDown_ = false;

    bool started_ = false;
    Snapshot measureBegin_;
};

} // namespace cdna::core

#endif // CDNA_CORE_SYSTEM_HH
