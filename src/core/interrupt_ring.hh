/**
 * @file
 * Circular buffer of interrupt bit vectors (paper section 3.2).
 *
 * The CDNA NIC tracks which contexts were updated since the last
 * physical interrupt in a bit vector, DMA-writes the vector into this
 * hypervisor-memory ring, then raises the interrupt line.  The
 * producer/consumer protocol guarantees vectors are consumed by the
 * hypervisor before the NIC overwrites them.
 */

#ifndef CDNA_CORE_INTERRUPT_RING_HH
#define CDNA_CORE_INTERRUPT_RING_HH

#include <cstdint>
#include <vector>

#include "mem/phys_memory.hh"
#include "sim/assert.hh"

namespace cdna::core {

class InterruptRing
{
  public:
    /**
     * @param slots ring capacity (bit vectors)
     * @param base  hypervisor-memory address of slot 0
     */
    InterruptRing(std::uint32_t slots, mem::PhysAddr base)
        : base_(base), slots_(slots, 0)
    {
        SIM_ASSERT(slots > 0, "empty interrupt ring");
    }

    bool full() const { return producer_ - consumer_ >= slots_.size(); }
    bool empty() const { return producer_ == consumer_; }

    std::uint32_t producer() const { return producer_; }
    std::uint32_t consumer() const { return consumer_; }

    /** Address the NIC DMA-writes the next vector to. */
    mem::PhysAddr
    producerAddr() const
    {
        return base_ + (producer_ % slots_.size()) * sizeof(std::uint32_t);
    }

    /** NIC side: publish a bit vector (call after the DMA completes). */
    void
    push(std::uint32_t vector)
    {
        SIM_ASSERT(!full(), "interrupt ring overflow");
        slots_[producer_ % slots_.size()] = vector;
        ++producer_;
    }

    /** Hypervisor side: consume the next vector. */
    std::uint32_t
    pop()
    {
        SIM_ASSERT(!empty(), "interrupt ring underflow");
        std::uint32_t v = slots_[consumer_ % slots_.size()];
        ++consumer_;
        return v;
    }

  private:
    mem::PhysAddr base_;
    std::vector<std::uint32_t> slots_;
    std::uint32_t producer_ = 0;
    std::uint32_t consumer_ = 0;
};

} // namespace cdna::core

#endif // CDNA_CORE_INTERRUPT_RING_HH
