/**
 * @file
 * Hypervisor-managed virtual-context pager for the CDNA NIC.
 *
 * The NIC has a fixed number of physical SRAM context slots (32 on the
 * paper's RiceNIC); the pager multiplexes an arbitrary number of
 * virtual contexts over them.  A doorbell to a paged-out context traps
 * to the hypervisor (CdnaNic::setPageFaultHandler); the pager then
 *
 *   1. charges the trap cost in hypervisor context,
 *   2. picks an eviction victim via a pluggable policy when no slot is
 *      free (LRU or traffic-weighted),
 *   3. quiesces the victim with the NIC's epoch-guarded quiesce (new
 *      work stops, in-flight datapath ops drain to their completions),
 *   4. charges the quiesce epoch + save-DMA cost, notifies the evicted
 *      guest so its driver collects the final completions,
 *   5. charges the restore-DMA cost, restores the faulting context
 *      (firmware-reboot-style reconciliation inside pageInContext) and
 *      replays its producer doorbells from the saved mailbox words.
 *
 * Switches are serialized -- one context switch at a time per NIC --
 * and trap requests for a context already queued or in flight are
 * coalesced, so a storming paged-out guest cannot queue unbounded
 * work.
 */

#ifndef CDNA_CORE_CONTEXT_PAGER_HH
#define CDNA_CORE_CONTEXT_PAGER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "core/cdna_nic.hh"
#include "core/cost_model.hh"
#include "vmm/hypervisor.hh"

namespace cdna::core {

/** Victim-selection policy for context eviction. */
enum class EvictPolicy
{
    kLru,             //!< least recently active context
    kTrafficWeighted, //!< fewest packets moved since its page-in
};

const char *evictPolicyName(EvictPolicy p);

class ContextPager : public sim::SimObject
{
  public:
    ContextPager(sim::SimContext &ctx, std::string name,
                 vmm::Hypervisor &hv, CdnaNic &nic, const CostModel &costs,
                 EvictPolicy policy);

    /** Doorbell trap on paged-out @p cxt (wire to the NIC's handler). */
    void onTrap(CdnaNic::ContextId cxt);

    /**
     * Invoked after a victim's eviction completes (its in-flight ops
     * drained and its image saved); System uses it to deliver a virtual
     * interrupt so the evicted guest's driver collects the final
     * completion records.
     */
    void
    setEvictedHook(std::function<void(CdnaNic::ContextId)> fn)
    {
        evictedHook_ = std::move(fn);
    }

    /**
     * Victim the policy would evict now (exposed for tests): the
     * lowest-scoring resident, allocated, non-quiescing context; ties
     * break towards the lowest context id for determinism.
     */
    std::optional<CdnaNic::ContextId> pickVictim() const;

    EvictPolicy policy() const { return policy_; }
    std::uint64_t switchesQueuedPeak() const { return queuePeak_; }

  private:
    void pump();
    void beginSwitch(CdnaNic::ContextId target);
    void restore(CdnaNic::ContextId target);

    vmm::Hypervisor &hv_;
    CdnaNic &nic_;
    const CostModel &costs_;
    EvictPolicy policy_;
    std::function<void(CdnaNic::ContextId)> evictedHook_;

    std::deque<CdnaNic::ContextId> pending_;
    std::optional<CdnaNic::ContextId> current_;
    std::uint64_t queuePeak_ = 0;
};

} // namespace cdna::core

#endif // CDNA_CORE_CONTEXT_PAGER_HH
