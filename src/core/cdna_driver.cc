#include "core/cdna_driver.hh"

#include <algorithm>
#include <utility>

#include "sim/assert.hh"
#include "sim/fault_injector.hh"

namespace cdna::core {

CdnaGuestDriver::CdnaGuestDriver(sim::SimContext &ctx, std::string name,
                                 vmm::Domain &dom, CdnaNic &nic,
                                 CdnaNic::ContextId cxt, DmaProtection &prot,
                                 const CostModel &costs, net::MacAddr mac)
    : sim::SimObject(ctx, std::move(name)),
      dom_(dom),
      nic_(nic),
      cxt_(cxt),
      prot_(prot),
      costs_(costs),
      mac_(mac),
      nDoorbells_(stats().addCounter("doorbells")),
      nTxPkts_(stats().addCounter("tx_packets")),
      nRxPkts_(stats().addCounter("rx_packets")),
      nFaultsSeen_(stats().addCounter("faults_seen")),
      nMboxTimeouts_(stats().addCounter("mailbox_timeouts")),
      nRingResyncs_(stats().addCounter("ring_resyncs"))
{
}

std::uint64_t
CdnaGuestDriver::sgPages(const mem::SgList &sg) const
{
    std::uint64_t n = 0;
    for (const auto &e : sg)
        n += mem::pageOf(e.addr + (e.len ? e.len - 1 : 0)) -
             mem::pageOf(e.addr) + 1;
    return n;
}

void
CdnaGuestDriver::rebind(CdnaNic::ContextId cxt)
{
    SIM_ASSERT(detached_, "rebinding an attached driver");
    cxt_ = cxt;
}

void
CdnaGuestDriver::attach()
{
    // Re-attachable: a driver detached by a domain crash starts over
    // with empty rings and counters (against a rebind()ed context).
    detached_ = false;
    txEnqueued_ = txDrained_ = 0;
    rxEnqueued_ = 0;
    txInflightBytes_.clear();
    txFlushPending_ = false;
    rxFlushPending_ = false;
    txWasFull_ = false;
    watchdogDelay_ = kWatchdogBase;

    txHandle_ = prot_.registerRing(nic_, cxt_, dom_.id(), /*is_tx=*/true);
    rxHandle_ = prot_.registerRing(nic_, cxt_, dom_.id(), /*is_tx=*/false);

    std::uint32_t entries = nic_.rxRing(cxt_).size();
    // The rxSlotPage_ map is indexed pos % entries with free-running
    // uint32 positions; like DescRing, that is only wrap-consistent
    // for power-of-two sizes.
    SIM_ASSERT((entries & (entries - 1)) == 0,
               "CDNA RX ring size must be a power of two");
    rxSlotPage_.assign(entries, 0);
    auto pages = dom_.hypervisor().mem().alloc(dom_.id(), entries);
    SIM_ASSERT(!pages.empty(), "out of memory for CDNA RX buffers");
    for (auto p : pages)
        rxRefillStage_.push_back(p);
    flushRxRefills();
    armWatchdog();
}

void
CdnaGuestDriver::armWatchdog()
{
    // The watchdog exists to recover doorbells lost to injected
    // firmware faults.  It is armed only when a fault injector is
    // installed so fault-free runs execute exactly the pre-fault
    // event sequence (see sim/fault_injector.hh).
    if (watchdogArmed_ || detached_ || !ctx().faultInjector())
        return;
    watchdogArmed_ = true;
    wdTxConsumer_ = nic_.txConsumer(cxt_);
    wdRxConsumer_ = nic_.rxConsumer(cxt_);
    events().schedule(watchdogDelay_, [this] { fireWatchdog(); });
}

void
CdnaGuestDriver::fireWatchdog()
{
    watchdogArmed_ = false;
    if (detached_)
        return;
    std::uint32_t txc = nic_.txConsumer(cxt_);
    std::uint32_t rxc = nic_.rxConsumer(cxt_);
    bool pending = txEnqueued_ != txDrained_ || rxEnqueued_ != rxc;
    bool progress = txc != wdTxConsumer_ || rxc != wdRxConsumer_;
    if (progress) {
        watchdogDelay_ = kWatchdogBase;
    } else if (pending) {
        // Work is posted but the NIC made no progress for a whole
        // watchdog period: assume the doorbells were lost and re-ring
        // both producer mailboxes with their current values.  The NIC
        // treats an unchanged producer as a no-op, so a spurious
        // timeout costs only the PIO writes.  Exponential backoff
        // keeps a genuinely wedged NIC from being hammered.
        nMboxTimeouts_.inc();
        if (sim::FaultInjector *fi = ctx().faultInjector())
            fi->noteMailboxTimeout();
        watchdogDelay_ = std::min(watchdogDelay_ * 2, kWatchdogMax);
        sim::Time cost = 2 * costs_.drvPioWrite + costs_.drvIrqHandler;
        dom_.vcpu().post(cpu::Bucket::kOs, cost, [this] {
            if (detached_)
                return;
            nRingResyncs_.inc();
            if (sim::FaultInjector *fi = ctx().faultInjector())
                fi->noteRingResync();
            nic_.pioWriteMailbox(cxt_, nic::kMboxTxProducer, txEnqueued_);
            nic_.pioWriteMailbox(cxt_, nic::kMboxRxProducer, rxEnqueued_);
            nDoorbells_.inc(2);
        });
    }
    armWatchdog();
}

void
CdnaGuestDriver::detach()
{
    if (detached_)
        return;
    detached_ = true;
    txBacklog_.clear();
    rxRefillStage_.clear();
    prot_.unpinAll(txHandle_);
    prot_.unpinAll(rxHandle_);
}

bool
CdnaGuestDriver::canTransmit() const
{
    if (detached_)
        return false;
    std::uint32_t inflight = txEnqueued_ - txDrained_;
    return inflight + txBacklog_.size() + 1 < nic_.txRing(cxt_).size();
}

void
CdnaGuestDriver::transmit(net::Packet pkt)
{
    SIM_ASSERT(canTransmit(), "CDNA transmit past ring capacity");
    txBacklog_.push_back(std::move(pkt));
    if (!canTransmit())
        txWasFull_ = true;
}

void
CdnaGuestDriver::flush()
{
    if (txFlushPending_ || txBacklog_.empty() || detached_)
        return;
    txFlushPending_ = true;

    std::uint64_t pages = 0;
    for (const auto &p : txBacklog_)
        pages += sgPages(p.hostSg);
    sim::Time cost =
        static_cast<sim::Time>(txBacklog_.size()) * costs_.cdnaDrvTxPerPacket +
        static_cast<sim::Time>(pages) * costs_.cdnaTranslatePerPage +
        costs_.drvPioWrite;
    if (!prot_.enabled()) {
        // Direct ring writes replace the enqueue hypercall.
        cost += static_cast<sim::Time>(txBacklog_.size()) *
                (costs_.protEnqueuePerDesc / 3);
    }

    dom_.vcpu().post(cpu::Bucket::kOs, cost, [this] {
        txFlushPending_ = false;
        if (detached_)
            return; // revoked while this task was queued; rings are gone
        std::vector<DmaProtection::Request> reqs;
        reqs.reserve(txBacklog_.size());
        while (!txBacklog_.empty()) {
            net::Packet pkt = std::move(txBacklog_.front());
            txBacklog_.pop_front();
            txInflightBytes_.push_back(pkt.payloadBytes);
            nTxPkts_.inc();
            DmaProtection::Request req;
            req.sg = pkt.hostSg;
            req.pkt = std::move(pkt);
            reqs.push_back(std::move(req));
        }
        auto n = static_cast<std::uint32_t>(reqs.size());
        auto finish = [this, n](DmaProtection::Result res) {
            if (detached_)
                return; // revoked while the hypercall was in flight
            if (res.fault != vmm::Fault::kNone) {
                nFaultsSeen_.inc();
                for (std::uint32_t i = res.accepted; i < n; ++i)
                    txInflightBytes_.pop_back();
            }
            txEnqueued_ = res.producer;
            nic_.pioWriteMailbox(cxt_, nic::kMboxTxProducer, res.producer);
            nDoorbells_.inc();
        };
        if (prot_.enabled())
            prot_.enqueue(txHandle_, std::move(reqs), finish);
        else
            finish(prot_.enqueueDirect(txHandle_, std::move(reqs)));
    });
}

void
CdnaGuestDriver::handleIrq()
{
    if (detached_)
        return;
    std::uint32_t completed = nic_.txConsumer(cxt_) - txDrained_;
    // Claim the completions now so an overlapping IRQ cannot
    // double-count them; the task below surfaces them in order.
    txDrained_ += completed;
    auto deliveries = nic_.drainRx(cxt_);
    if (completed == 0 && deliveries.empty())
        return;

    sim::Time cost = costs_.drvIrqHandler +
        completed * costs_.cdnaDrvCompletion +
        static_cast<sim::Time>(deliveries.size()) * costs_.cdnaDrvRxPerPacket;

    dom_.vcpu().post(cpu::Bucket::kOs, cost,
                     [this, completed,
                      deliveries = std::move(deliveries)]() mutable {
        for (std::uint32_t i = 0; i < completed; ++i) {
            SIM_ASSERT(!txInflightBytes_.empty(), "completion underflow");
            std::uint64_t bytes = txInflightBytes_.front();
            txInflightBytes_.pop_front();
            deliverTxComplete(bytes);
        }

        // Backend mode: delivered pages are about to be page-flipped to
        // guests, which requires their DMA pins dropped now rather than
        // at the next enqueue.
        if (!autoRefill_ && prot_.enabled() && !deliveries.empty())
            prot_.syncUnpin(rxHandle_);

        for (auto &d : deliveries) {
            nRxPkts_.inc();
            std::uint32_t slot = d.pos % rxSlotPage_.size();
            mem::PageNum page = rxSlotPage_[slot];
            d.pkt.hostSg = {{mem::addrOf(page),
                             d.pkt.payloadBytes + net::kTcpIpHeader}};
            if (autoRefill_)
                rxRefillStage_.push_back(page);
            deliverRx(std::move(d.pkt));
        }
        flushRxRefills();

        if (txWasFull_ && canTransmit()) {
            txWasFull_ = false;
            deliverTxSpace();
        }
    });
}

void
CdnaGuestDriver::refillRx(mem::PageNum page)
{
    rxRefillStage_.push_back(page);
    flushRxRefills();
}

void
CdnaGuestDriver::flushRxRefills()
{
    if (rxFlushPending_ || rxRefillStage_.empty() || detached_)
        return;
    rxFlushPending_ = true;
    auto n = static_cast<std::uint32_t>(rxRefillStage_.size());
    sim::Time cost = n * costs_.cdnaTranslatePerPage + costs_.drvPioWrite;
    if (!prot_.enabled())
        cost += n * (costs_.protEnqueuePerDesc / 3);

    dom_.vcpu().post(cpu::Bucket::kOs, cost, [this] {
        rxFlushPending_ = false;
        if (detached_)
            return; // revoked while this task was queued; rings are gone
        std::vector<mem::PageNum> pages(rxRefillStage_.begin(),
                                        rxRefillStage_.end());
        rxRefillStage_.clear();
        std::vector<DmaProtection::Request> reqs;
        reqs.reserve(pages.size());
        for (auto p : pages) {
            DmaProtection::Request req;
            req.sg = {{mem::addrOf(p), net::kMtu}};
            reqs.push_back(std::move(req));
        }
        auto finish = [this, pages = std::move(pages)]
                      (DmaProtection::Result res) {
            if (detached_)
                return; // revoked while the hypercall was in flight
            // Record which ring slot each accepted page landed in.
            std::uint32_t first = res.producer -
                                  static_cast<std::uint32_t>(res.accepted);
            for (std::uint32_t i = 0; i < res.accepted; ++i) {
                std::uint32_t slot = (first + i) % rxSlotPage_.size();
                rxSlotPage_[slot] = pages[i];
            }
            if (res.fault != vmm::Fault::kNone)
                nFaultsSeen_.inc();
            rxEnqueued_ = res.producer;
            nic_.pioWriteMailbox(cxt_, nic::kMboxRxProducer, res.producer);
            nDoorbells_.inc();
        };
        if (prot_.enabled())
            prot_.enqueue(rxHandle_, std::move(reqs), finish);
        else
            finish(prot_.enqueueDirect(rxHandle_, std::move(reqs)));
    });
}

} // namespace cdna::core
