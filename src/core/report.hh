/**
 * @file
 * Experiment report: the columns of the paper's Tables 1-4.
 *
 * Throughput, the Xenoprof-style execution profile (hypervisor /
 * driver-domain OS+user / guest OS+user / idle), and interrupt rates,
 * plus protection-related counters used by the security experiments.
 */

#ifndef CDNA_CORE_REPORT_HH
#define CDNA_CORE_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace cdna::core {

/**
 * Version of the JSON report schema (single-run reports and the sweep
 * aggregate share it).  Bump when a key is added, removed, renamed, or
 * reordered; consumers should reject versions they do not know.
 *
 * History:
 *   1  initial versioned schema: the PR-2 report keys plus
 *      "schema_version" itself (sweep aggregates wrap these per-run
 *      objects under "runs[].report").
 *   2  transport subsystem: "wire_mbps" appended after "fairness";
 *      "rx_drops_bad_csum", "tx_backlog_peak", "tx_backlog_now",
 *      "tcp_retrans_segs", "tcp_fast_retransmits", "tcp_rto_events",
 *      and "tcp_dup_acks" appended after "ring_resyncs".  All version-1
 *      keys keep their order and formatting.
 *   3  failure-domain recovery: "driver_domain_kills",
 *      "firmware_reboots", "fe_reconnects", "grants_revoked",
 *      "pages_quarantined", "quarantine_released", "mailbox_throttled",
 *      and "outage_packets_lost" appended after "tcp_dup_acks";
 *      "per_guest_downtime_us" and "per_guest_ttfp_us" arrays appended
 *      after "per_guest_mbps".  All version-2 keys keep their order and
 *      formatting.
 *   4  virtual-context oversubscription: "cxt_page_traps",
 *      "cxt_evictions", "cxt_page_ins", and "cxt_resident_peak"
 *      appended after "outage_packets_lost" (all zero -- except the
 *      resident peak, which counts allocated contexts -- unless
 *      oversubscription is enabled and contexts exceed slots).  All
 *      version-3 keys keep their order and formatting.
 *   5  network fabric: "switch_drops", "switch_drop_bytes", and
 *      "switch_queue_peak_bytes" appended after "cxt_resident_peak"
 *      (all zero on a point-to-point link; nonzero only when a NIC
 *      rides an output-queued switch that tail-dropped or queued
 *      frames toward it).  All version-4 keys keep their order and
 *      formatting.
 *   6  workload/RPC layer: "rpc_lat_mean_us", "rpc_lat_p50_us",
 *      "rpc_lat_p99_us", "rpc_lat_p999_us", "rpc_offered_rps", and
 *      "rpc_achieved_rps" appended after "wire_mbps"; "rpc_requests",
 *      "rpc_responses", "rpc_timeouts", "flows_started", and
 *      "flows_completed" appended after "switch_queue_peak_bytes"
 *      (all zero unless the run carries an engine-backed
 *      WorkloadSpec).  All version-5 keys keep their order and
 *      formatting.
 *   7  software-only passthrough: "swpt_validation_us" appended after
 *      "rpc_achieved_rps"; "swpt_doorbell_traps", "swpt_desc_validated",
 *      and "swpt_desc_rejected" appended after "flows_completed" (all
 *      zero outside swPassthrough mode).  All version-6 keys keep
 *      their order and formatting.
 */
inline constexpr int kReportSchemaVersion = 7;

struct Report
{
    std::string label;

    /** Aggregate goodput in Mb/s over the measurement window. */
    double mbps = 0.0;

    /**
     * Raw wire payload throughput in Mb/s (includes retransmissions and
     * frames later discarded by the checksum check).  Equals goodput in
     * open-loop runs; under TCP, goodput <= wire throughput, with the
     * gap being retransmitted or corrupted bytes.
     */
    double wireMbps = 0.0;

    // Execution profile (percent of elapsed time).
    double hypPct = 0.0;
    double drvOsPct = 0.0;
    double drvUserPct = 0.0;
    double guestOsPct = 0.0;
    double guestUserPct = 0.0;
    double idlePct = 0.0;

    // Interrupt rates (per second of simulated time).
    double drvIntrPerSec = 0.0;   //!< virtual interrupts to the driver dom
    double guestIntrPerSec = 0.0; //!< virtual interrupts to all guests
    double physIrqPerSec = 0.0;
    double hypercallPerSec = 0.0;
    double domainSwitchPerSec = 0.0;

    // Protection / integrity counters (totals over the window).
    std::uint64_t protectionFaults = 0;
    std::uint64_t dmaViolations = 0;
    std::uint64_t rxDropsNoDesc = 0;
    std::uint64_t rxDropsNoBuf = 0;  //!< NIC packet buffer exhausted
    std::uint64_t rxDropsFilter = 0; //!< frame matched no context MAC

    // Fault injection & recovery (totals over the window; all zero
    // unless the run carries a fault plan).
    std::uint64_t faultFramesDropped = 0;
    std::uint64_t faultFramesCorrupted = 0;
    std::uint64_t faultFramesDuplicated = 0;
    std::uint64_t faultDmaDelays = 0;
    std::uint64_t firmwareStalls = 0;
    std::uint64_t guestKills = 0;
    std::uint64_t mailboxTimeouts = 0; //!< driver watchdog expiries
    std::uint64_t ringResyncs = 0;     //!< producer mailboxes re-rung

    /** Frames discarded by receivers' checksum check (both transports). */
    std::uint64_t rxDropsBadCsum = 0;

    // Guest-stack TX backlog (packets queued behind a full device).
    std::uint64_t txBacklogPeak = 0; //!< high-watermark across stacks
    std::uint64_t txBacklogNow = 0;  //!< depth at the end of the window

    // TCP transport recovery activity (zero in open-loop runs).
    std::uint64_t tcpRetransSegs = 0;
    std::uint64_t tcpFastRetransmits = 0;
    std::uint64_t tcpRtoEvents = 0;
    std::uint64_t tcpDupAcks = 0;

    // Failure-domain recovery (schema 3; all zero without an
    // outage-class fault plan).
    std::uint64_t driverDomainKills = 0;
    std::uint64_t firmwareReboots = 0;
    std::uint64_t feReconnects = 0;     //!< Xen frontend reconnections
    std::uint64_t grantsRevoked = 0;    //!< mappings revoked at crash
    std::uint64_t pagesQuarantined = 0; //!< in-flight-DMA pages held
    std::uint64_t quarantineReleased = 0;
    std::uint64_t mailboxThrottled = 0; //!< doorbells rate-limited
    std::uint64_t outagePacketsLost = 0;

    // Virtual-context oversubscription (schema 4).
    std::uint64_t cxtPageTraps = 0;    //!< doorbells to paged-out contexts
    std::uint64_t cxtEvictions = 0;    //!< contexts evicted from a slot
    std::uint64_t cxtPageIns = 0;      //!< contexts restored into a slot
    std::uint64_t cxtResidentPeak = 0; //!< max simultaneously resident

    // Network fabric (schema 5; all zero on point-to-point links).
    std::uint64_t switchDrops = 0;     //!< frames tail-dropped toward us
    std::uint64_t switchDropBytes = 0; //!< wire bytes of those frames
    std::uint64_t switchQueuePeakBytes = 0; //!< egress-queue high water

    /** Per-guest goodput (fairness analysis), Mb/s. */
    std::vector<double> perGuestMbps;

    // Per-guest availability (schema 3): accumulated downtime, and the
    // recovery-to-first-packet lag, both in microseconds.
    std::vector<double> perGuestDowntimeUs;
    std::vector<double> perGuestTtfpUs;

    /**
     * End-to-end data-frame latency in microseconds (stack entry to
     * peer on transmit tests; wire to user space on receive tests).
     * Accumulated from simulation start (includes warmup).  P50/p99 are
     * power-of-two bucket upper bounds.
     */
    double latencyMeanUs = 0.0;
    double latencyP50Us = 0.0;
    double latencyP99Us = 0.0;

    /**
     * RPC request/response tail latency in microseconds (schema 6; all
     * zero without an RPC workload class).  Request enqueue at the
     * client engine to last response byte back at the client.
     * Quantiles come from the fine-grained sub-bucketed histogram, so
     * p999 is meaningful at microsecond scales.
     */
    double rpcLatMeanUs = 0.0;
    double rpcLatP50Us = 0.0;
    double rpcLatP99Us = 0.0;
    double rpcLatP999Us = 0.0;

    // Offered vs. achieved RPC load over the measurement window,
    // requests per second (schema 6).
    double rpcOfferedRps = 0.0;
    double rpcAchievedRps = 0.0;

    // Workload-engine activity (schema 6; totals over the window).
    std::uint64_t rpcRequests = 0;
    std::uint64_t rpcResponses = 0;
    std::uint64_t rpcTimeouts = 0;
    std::uint64_t flowsStarted = 0;
    std::uint64_t flowsCompleted = 0;

    /**
     * Software-only passthrough activity (schema 7; all zero outside
     * swPassthrough mode).  Validation time is the hypervisor time
     * spent on the doorbell path -- trap plus per-descriptor audit and
     * shadow copy -- in microseconds over the window.
     */
    double swptValidationUs = 0.0;
    std::uint64_t swptDoorbellTraps = 0;
    std::uint64_t swptDescValidated = 0;
    std::uint64_t swptDescRejected = 0;

    sim::Time window = 0;

    /** Paper-style table row. */
    std::string row() const;

    /** Header matching row(). */
    static std::string header();

    /** True when any fault was injected or recovered from. */
    bool anyFaultActivity() const;

    /**
     * One-line summary of RX drops and fault/recovery counters, for
     * the text report ("drops: nodesc=3 ... resync=2").
     */
    std::string faultSummary() const;

    /** Min/max per-guest throughput ratio (1.0 = perfectly fair). */
    double fairness() const;
};

/**
 * Render a report as a JSON object.
 *
 * Key-order contract (stable across runs, platforms, and thread
 * counts; relied on by the sweep determinism tests, which compare
 * whole documents byte-for-byte):
 *
 *   schema_version, label, then the double-valued metrics (mbps, the
 *   six profile percentages, the five rate counters, the three latency
 *   quantiles, fairness, wire_mbps, then the schema-6 RPC latency
 *   quantiles and offered/achieved rates, then schema 7's
 *   swpt_validation_us), then the integer counters (protection/drop
 *   counters, the fault/recovery counters, then the
 *   checksum/backlog/TCP counters added in schema 2, then the outage
 *   counters added in schema 3, the context-paging counters added in
 *   schema 4, the switch counters added in schema 5, the RPC/flow
 *   counters added in schema 6, and the swpt counters added in schema
 *   7), then per_guest_mbps followed by the schema-3
 *   per_guest_downtime_us and per_guest_ttfp_us arrays.  New keys are
 *   only ever appended at the end of their block so older goldens
 *   remain a line-subset of newer reports.
 *
 * Doubles are printed with "%.4f", integers as decimal, arrays in
 * index order; no locale-dependent formatting is used anywhere.
 */
std::string reportToJson(const Report &r);

} // namespace cdna::core

#endif // CDNA_CORE_REPORT_HH
