/**
 * @file
 * Declarative fault plan: what goes wrong, and when.
 *
 * A FaultPlan is plain data attached to a SystemConfig (see
 * SystemConfig::withFaults).  Continuous faults are probabilities drawn
 * per event by sim::FaultInjector; scheduled faults (firmware stalls,
 * guest kills) are turned into timed events by core::System at
 * construction.  An empty() plan installs no injector at all, so runs
 * without faults are bit-identical to a build without this subsystem.
 *
 * Plans can be built fluently in code, or parsed from a small text
 * format (one directive per line, '#' comments):
 *
 *   drop-rate 0.01            # P(frame lost on the wire)
 *   corrupt-rate 0.002        # P(frame arrives with a bad FCS)
 *   dup-rate 0.001            # P(frame delivered twice)
 *   dma-delay 0.05 25         # P(DMA completion delayed), delay in us
 *   firmware-stall 0@20:5     # NIC 0 stalls at t=20 ms for 5 ms
 *   firmware-stall 1@30:2 no-reset   # ... without the watchdog reboot
 *   kill-guest 1@40           # guest 1 dies at t=40 ms
 *   kill-driver-domain 60     # dom0 crashes at t=60 ms (reboot cost
 *                             # from CostModel::driverDomainReboot)
 *   reboot-firmware 0@60      # NIC 0 firmware reboots at t=60 ms,
 *                             # losing volatile context state
 */

#ifndef CDNA_CORE_FAULT_PLAN_HH
#define CDNA_CORE_FAULT_PLAN_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/fault_injector.hh"

namespace cdna::core {

struct FaultPlan
{
    /** A scheduled firmware outage on one NIC. */
    struct FirmwareStall
    {
        std::uint32_t nic = 0;
        double atMs = 0.0;  //!< simulated time the stall begins
        double durMs = 1.0; //!< how long the firmware is wedged
        /**
         * After the stall the on-NIC watchdog reboots the firmware,
         * losing every queued mailbox event; drivers must time out and
         * resynchronize their rings.  Without the reset the firmware
         * merely falls behind and catches up on its own.
         */
        bool watchdogReset = true;
    };

    /** A guest crash: revoke its context on every NIC at @p atMs. */
    struct GuestKill
    {
        std::uint32_t guest = 0;
        double atMs = 0.0;
    };

    /**
     * A driver-domain (dom0) crash at @p atMs.  Under Xen this tears
     * down every netback, force-revokes dom0's grant mappings (pages
     * quarantined until the DMA engine drains) and restarts the domain
     * after CostModel::driverDomainReboot; frontends reconnect with
     * exponential backoff.  Under CDNA the data path does not involve
     * the driver domain, so guests keep running.
     */
    struct DriverDomainKill
    {
        double atMs = 0.0;
    };

    /**
     * A full firmware reboot on one NIC at @p atMs: unlike a stall,
     * the firmware loses all volatile per-context state (staged
     * descriptors, producer doorbells, the event hierarchy) and must
     * reconcile mailboxes/sequence numbers against the
     * hypervisor-validated consumer state before serving guests again.
     * Downtime is CostModel::firmwareReboot.
     */
    struct FirmwareReboot
    {
        std::uint32_t nic = 0;
        double atMs = 0.0;
    };

    double dropRate = 0.0;
    double corruptRate = 0.0;
    double dupRate = 0.0;
    double dmaDelayRate = 0.0;
    double dmaDelayUs = 0.0;
    std::vector<FirmwareStall> firmwareStalls;
    std::vector<GuestKill> guestKills;
    std::vector<DriverDomainKill> driverDomainKills;
    std::vector<FirmwareReboot> firmwareReboots;

    /** True when the plan can never inject anything. */
    bool empty() const;

    /** The continuous-fault rates the injector draws against. */
    sim::FaultRates rates() const;

    // --- fluent builders -------------------------------------------------
    FaultPlan &
    dropping(double p)
    {
        dropRate = p;
        return *this;
    }

    FaultPlan &
    corrupting(double p)
    {
        corruptRate = p;
        return *this;
    }

    FaultPlan &
    duplicating(double p)
    {
        dupRate = p;
        return *this;
    }

    FaultPlan &
    delayingDma(double p, double us)
    {
        dmaDelayRate = p;
        dmaDelayUs = us;
        return *this;
    }

    FaultPlan &
    stallingFirmware(std::uint32_t nic, double at_ms, double dur_ms,
                     bool watchdog_reset = true)
    {
        firmwareStalls.push_back({nic, at_ms, dur_ms, watchdog_reset});
        return *this;
    }

    FaultPlan &
    killingGuest(std::uint32_t guest, double at_ms)
    {
        guestKills.push_back({guest, at_ms});
        return *this;
    }

    FaultPlan &
    killingDriverDomain(double at_ms)
    {
        driverDomainKills.push_back({at_ms});
        return *this;
    }

    FaultPlan &
    rebootingFirmware(std::uint32_t nic, double at_ms)
    {
        firmwareReboots.push_back({nic, at_ms});
        return *this;
    }

    /**
     * Parse the text plan format described in the file comment.
     * @param error receives a message naming the offending line on failure
     */
    static std::optional<FaultPlan> parse(const std::string &text,
                                          std::string *error);

    /** Load and parse a plan file. */
    static std::optional<FaultPlan> fromFile(const std::string &path,
                                             std::string *error);
};

/** Parse "NIC@MS:DURMS" (e.g. "0@20:5") as used by --firmware-stall. */
std::optional<FaultPlan::FirmwareStall>
parseStallSpec(const std::string &spec);

/** Parse "G@MS" (e.g. "1@40") as used by --kill-guest. */
std::optional<FaultPlan::GuestKill> parseKillSpec(const std::string &spec);

/** Parse "MS" (e.g. "60") as used by --kill-driver-domain. */
std::optional<FaultPlan::DriverDomainKill>
parseDriverKillSpec(const std::string &spec);

/** Parse "NIC@MS" (e.g. "0@60") as used by --reboot-firmware. */
std::optional<FaultPlan::FirmwareReboot>
parseRebootSpec(const std::string &spec);

} // namespace cdna::core

#endif // CDNA_CORE_FAULT_PLAN_HH
