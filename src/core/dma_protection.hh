/**
 * @file
 * Hypervisor-side DMA memory protection (paper section 3.3).
 *
 * Guests never write CDNA descriptor rings directly; the hypervisor
 * holds exclusive write access (enforced here by construction: only
 * DmaProtection touches the rings when protection is enabled).  The
 * enqueue hypercall:
 *
 *  1. validates that every page a descriptor references is owned by
 *     the calling guest (rejects with Fault::kNotOwner otherwise);
 *  2. pins those pages by incrementing their reference counts, so a
 *     guest freeing memory mid-DMA cannot get it reallocated under an
 *     outstanding transfer -- the release is deferred;
 *  3. stamps a strictly increasing sequence number into the descriptor
 *     (the NIC refuses descriptors whose numbers are not continuous,
 *     catching producer-index overruns onto stale ring slots);
 *  4. lazily unpins pages of descriptors the NIC has since consumed
 *     (the paper decrements "only when additional DMA descriptors are
 *     enqueued", and so do we, plus at teardown).
 *
 * With protection disabled (the Table 4 ablation / IOMMU upper bound),
 * enqueueDirect() writes descriptors with no validation, no pinning and
 * no sequence numbers -- and the attack tests show exactly why that is
 * unsafe.
 */

#ifndef CDNA_CORE_DMA_PROTECTION_HH
#define CDNA_CORE_DMA_PROTECTION_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/cdna_nic.hh"
#include "core/cost_model.hh"
#include "vmm/hypervisor.hh"

namespace cdna::core {

class DmaProtection : public sim::SimObject
{
  public:
    /** Opaque handle naming one registered (context, direction) ring. */
    using Handle = std::uint32_t;

    /** One descriptor the guest asks to enqueue. */
    struct Request
    {
        mem::SgList sg;
        std::optional<net::Packet> pkt; //!< simulated payload (TX only)
    };

    /** Outcome of an enqueue hypercall. */
    struct Result
    {
        vmm::Fault fault = vmm::Fault::kNone;
        std::uint32_t accepted = 0; //!< descriptors enqueued before fault
        std::uint32_t producer = 0; //!< new free-running producer index
    };

    DmaProtection(sim::SimContext &ctx, vmm::Hypervisor &hv,
                  const CostModel &costs, bool enabled);

    bool enabled() const { return enabled_; }

    /**
     * Register a ring for protected enqueue.  Models the hypervisor
     * taking exclusive write access to the ring pages at driver init.
     */
    Handle registerRing(CdnaNic &nic, CdnaNic::ContextId cxt,
                        mem::DomainId dom, bool is_tx);

    /**
     * The enqueue hypercall.  Charges hypervisor time for validation,
     * pinning, stamping and lazy unpinning, then reports the Result.
     */
    void enqueue(Handle h, std::vector<Request> reqs,
                 std::function<void(Result)> done);

    /**
     * Unprotected direct enqueue (protection disabled): the *guest*
     * writes the ring.  Purely functional; the caller charges its own
     * (guest) cost.  Never validates, pins, or stamps.
     */
    Result enqueueDirect(Handle h, std::vector<Request> reqs);

    /** Drop all pins held for a ring (context revocation / teardown). */
    void unpinAll(Handle h);

    /**
     * Synchronously unpin completed descriptors (the paper notes the
     * counts "could be decremented more aggressively, if necessary" --
     * the driver domain needs this before page-flipping received
     * packets to guests).
     */
    void syncUnpin(Handle h);

    /** Current free-running producer index of a ring. */
    std::uint32_t producer(Handle h) const;

    std::uint64_t validationFailures() const { return nRejects_.value(); }
    std::uint64_t pagesPinned() const { return nPins_.value(); }
    std::uint64_t pagesUnpinned() const { return nUnpins_.value(); }
    std::uint64_t enqueueCalls() const { return nEnqueues_.value(); }

  private:
    struct RingState
    {
        CdnaNic *nic;
        CdnaNic::ContextId cxt;
        mem::DomainId dom;
        bool isTx;
        std::uint32_t producer = 0;
        std::uint64_t nextSeqno = 1;
        std::uint32_t unpinnedUpTo = 0; //!< descriptors already unpinned
        std::deque<mem::SgList> pinned; //!< per-descriptor pinned pages
    };

    RingState &state(Handle h);
    const RingState &state(Handle h) const;

    /** Apply the modulus the NIC validates against. */
    std::uint64_t stamp(RingState &rs);

    /** Lazily unpin completed descriptors; returns pages unpinned. */
    std::uint64_t lazyUnpin(RingState &rs);

    Result doEnqueue(RingState &rs, std::vector<Request> &reqs,
                     bool validate);

    vmm::Hypervisor &hv_;
    const CostModel &costs_;
    bool enabled_;
    std::vector<std::unique_ptr<RingState>> rings_;

    sim::Counter &nEnqueues_;
    sim::Counter &nDescs_;
    sim::Counter &nPins_;
    sim::Counter &nUnpins_;
    sim::Counter &nRejects_;
};

} // namespace cdna::core

#endif // CDNA_CORE_DMA_PROTECTION_HH
