/**
 * @file
 * Per-guest availability accounting for failure-domain experiments.
 *
 * The paper's central reliability claim (section 3) is that CDNA
 * shrinks the failure domain of the network path: a driver-domain
 * crash under Xen takes every guest's connectivity down until the
 * domain reboots and the frontends reconnect, while under CDNA each
 * guest owns its context and keeps running.  This tracker turns that
 * claim into numbers: for each guest it records
 *
 *  - downtime: total time, across outages, from the fault to the
 *    guest's first end-to-end progress afterwards -- but only when
 *    that gap exceeds a short grace window, so a guest whose traffic
 *    simply keeps flowing through the fault (a CDNA guest during a
 *    dom0 crash) scores exactly zero;
 *  - time-to-first-packet: the lag between the recovery completing
 *    (backend restarted, firmware reconciled) and the guest actually
 *    moving data again -- the reconnect/resync tail the outage hides;
 *  - packets lost while the outage was in progress.
 *
 * The tracker is only instantiated under a fault plan that schedules
 * an outage, so fault-free runs carry no availability state at all.
 */

#ifndef CDNA_CORE_AVAILABILITY_HH
#define CDNA_CORE_AVAILABILITY_HH

#include <cstdint>
#include <vector>

#include "sim/sim_object.hh"

namespace cdna::core {

class AvailabilityTracker : public sim::SimObject
{
  public:
    /**
     * Progress gaps at or below this threshold do not count as
     * downtime: normal scheduling jitter around the fault instant must
     * not read as an outage.  Real outages here are >= a driver-domain
     * or firmware reboot (milliseconds), far above the threshold.
     */
    static constexpr sim::Time kGrace = sim::kMillisecond;

    AvailabilityTracker(sim::SimContext &ctx, std::uint32_t guests)
        : sim::SimObject(ctx, "availability"), per_(guests)
    {
    }

    std::uint32_t guests() const
    {
        return static_cast<std::uint32_t>(per_.size());
    }

    /** A fault that may interrupt @p guest's connectivity fired. */
    void
    noteOutageStart(std::uint32_t guest)
    {
        PerGuest &g = per_.at(guest);
        if (g.inOutage)
            return; // overlapping faults merge into one outage window
        g.inOutage = true;
        g.outageStart = now();
        g.recovered = false;
    }

    /**
     * The recovery mechanism finished for @p guest (backend restarted
     * and frontend reconnected, or firmware reconciled its context).
     * Time-to-first-packet is measured from here.
     */
    void
    noteRecovery(std::uint32_t guest)
    {
        PerGuest &g = per_.at(guest);
        if (!g.inOutage || g.recovered)
            return;
        g.recovered = true;
        g.recoveryAt = now();
    }

    /** End-to-end progress (tx completion or rx delivery) for @p guest. */
    void
    noteProgress(std::uint32_t guest)
    {
        if (guest >= per_.size())
            return;
        PerGuest &g = per_[guest];
        if (!g.inOutage)
            return;
        sim::Time gap = now() - g.outageStart;
        if (gap > kGrace) {
            g.downtime += gap;
            g.ttfp = g.recovered ? now() - g.recoveryAt : gap;
            CDNA_TRACE_INSTANT_ARG(ctx().tracer(), traceLane(),
                                   "guest_recovered", now(), "guest", guest);
        }
        g.inOutage = false;
    }

    /** A packet addressed to/from @p guest was dropped by the outage. */
    void
    noteLost(std::uint32_t guest, std::uint64_t n = 1)
    {
        if (guest < per_.size())
            per_[guest].lost += n;
    }

    /**
     * Accumulated downtime as of now; an outage still open (no
     * progress yet) counts its elapsed span once past the grace window.
     */
    double
    downtimeUs(std::uint32_t guest) const
    {
        const PerGuest &g = per_.at(guest);
        sim::Time t = g.downtime;
        if (g.inOutage && now() - g.outageStart > kGrace)
            t += now() - g.outageStart;
        return sim::toMicroseconds(t);
    }

    /** Last measured recovery-to-first-packet lag (0 = no downtime). */
    double
    ttfpUs(std::uint32_t guest) const
    {
        return sim::toMicroseconds(per_.at(guest).ttfp);
    }

    std::uint64_t lost(std::uint32_t guest) const
    {
        return per_.at(guest).lost;
    }

    bool
    anyDowntime() const
    {
        for (std::uint32_t g = 0; g < guests(); ++g)
            if (downtimeUs(g) > 0.0)
                return true;
        return false;
    }

  private:
    struct PerGuest
    {
        bool inOutage = false;
        bool recovered = false;
        sim::Time outageStart = 0;
        sim::Time recoveryAt = 0;
        sim::Time downtime = 0;
        sim::Time ttfp = 0;
        std::uint64_t lost = 0;
    };

    std::vector<PerGuest> per_;
};

} // namespace cdna::core

#endif // CDNA_CORE_AVAILABILITY_HH
