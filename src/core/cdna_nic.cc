#include "core/cdna_nic.hh"

#include <algorithm>
#include <utility>

#include "sim/assert.hh"
#include "sim/fault_injector.hh"

namespace cdna::core {

namespace {

/** Prefix of a scatter/gather list covering @p bytes. */
mem::SgList
sgPrefix(const mem::SgList &sg, std::uint64_t bytes)
{
    mem::SgList out;
    for (const auto &e : sg) {
        if (bytes == 0)
            break;
        auto take = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(e.len, bytes));
        out.push_back({e.addr, take});
        bytes -= take;
    }
    return out;
}

} // namespace

CdnaNic::CdnaNic(sim::SimContext &ctx, std::string name, mem::PciBus &bus,
                 mem::PhysMemory &mem, mem::DeviceId dev, net::Fabric &fabric,
                 CdnaNicParams params)
    : nic::NicBase(ctx, std::move(name), bus, mem, dev, fabric),
      params_(params),
      fw_(ctx, this->name() + ".fw"),
      txBuf_(params.txBufferBytes),
      rxBuf_(params.rxBufferBytes),
      contexts_(std::max(params.numContexts, params.virtualContexts)),
      nTxPackets_(stats().addCounter("tx_packets")),
      nRxPackets_(stats().addCounter("rx_packets")),
      nGhostTx_(stats().addCounter("ghost_tx")),
      nSeqnoFaults_(stats().addCounter("seqno_faults")),
      nMailboxEvents_(stats().addCounter("mailbox_events")),
      nBitVectors_(stats().addCounter("bit_vectors")),
      nIommuDrops_(stats().addCounter("iommu_drops")),
      nFwResets_(stats().addCounter("fw_resets")),
      nMailboxThrottled_(stats().addCounter("mailbox_throttled")),
      nCxtTraps_(stats().addCounter("cxt_page_traps")),
      nCxtEvictions_(stats().addCounter("cxt_evictions")),
      nCxtPageIns_(stats().addCounter("cxt_page_ins"))
{
    SIM_ASSERT(params.numContexts >= 1 &&
                   params.numContexts <= nic::kMaxContexts,
               "context count out of range");
    slotOwner_.assign(params_.numContexts, kNoSlotOwner);
    setCoalesce(params.coalesce);
}

int
CdnaNic::findFreeSlot() const
{
    for (std::uint32_t s = 0; s < slotOwner_.size(); ++s)
        if (slotOwner_[s] == kNoSlotOwner)
            return static_cast<int>(s);
    return -1;
}

void
CdnaNic::claimSlot(ContextId id, std::uint32_t slot)
{
    Context &c = cxt(id);
    SIM_ASSERT(slot < slotOwner_.size() &&
                   slotOwner_[slot] == kNoSlotOwner,
               "claiming an occupied slot");
    slotOwner_[slot] = id;
    c.slot = slot;
    c.resident = true;
    ++residentNow_;
    residentPeak_ = std::max(residentPeak_, residentNow_);
}

void
CdnaNic::releaseSlot(ContextId id)
{
    Context &c = cxt(id);
    if (!c.resident)
        return;
    SIM_ASSERT(c.slot < slotOwner_.size() && slotOwner_[c.slot] == id,
               "slot/owner mismatch");
    slotOwner_[c.slot] = kNoSlotOwner;
    c.resident = false;
    SIM_ASSERT(residentNow_ > 0, "resident count underflow");
    --residentNow_;
}

CdnaNic::Context &
CdnaNic::cxt(ContextId id)
{
    SIM_ASSERT(id < contexts_.size(), "context id out of range");
    return contexts_[id];
}

const CdnaNic::Context &
CdnaNic::cxt(ContextId id) const
{
    SIM_ASSERT(id < contexts_.size(), "context id out of range");
    return contexts_[id];
}

std::optional<CdnaNic::ContextId>
CdnaNic::allocContext(mem::DomainId dom, net::MacAddr mac)
{
    for (ContextId i = 0; i < contexts_.size(); ++i) {
        if (!contexts_[i].allocated) {
            contexts_[i] = Context{};
            Context &c = contexts_[i];
            c.allocated = true;
            c.dom = dom;
            c.mac = mac;
            macMap_[mac.hash()] = i;
            // Claim a physical slot if one is free; otherwise the
            // context starts paged out (oversubscription) and the pager
            // restores it on its first doorbell.
            int slot = findFreeSlot();
            if (slot >= 0)
                claimSlot(i, static_cast<std::uint32_t>(slot));
            else
                c.resident = false;
            touchActivity(c);
            return i;
        }
    }
    return std::nullopt;
}

void
CdnaNic::revokeContext(ContextId id)
{
    Context &c = cxt(id);
    SIM_ASSERT(c.allocated, "revoking unallocated context");
    macMap_.erase(c.mac.hash());
    if (c.resident) {
        hier_.clearContext(c.slot);
        pendingVector_ &= ~(1u << c.slot);
        releaseSlot(id);
    }
    auto it = std::find(txArb_.begin(), txArb_.end(), id);
    if (it != txArb_.end())
        txArb_.erase(it);
    // A page-out waiting on this context's in-flight ops can never
    // complete now; unblock the pager after the state is gone.
    auto done = std::move(c.pageOutDone);
    c = Context{};
    c.resident = false; // no slot until reallocated
    if (done)
        done();
}

void
CdnaNic::stallFirmware(sim::Time duration, bool watchdog_reset)
{
    fw_.stall(duration);
    if (!watchdog_reset)
        return;
    // The on-NIC watchdog expires during the stall and reboots the
    // firmware.  The event scratchpad is volatile: every doorbell rung
    // between now and the reboot -- including ones already queued -- is
    // lost, and drivers must detect the silence and re-ring.
    events().schedule(duration, [this] {
        hier_.clearAll();
        nFwResets_.inc();
        if (sim::FaultInjector *fi = ctx().faultInjector())
            fi->noteFirmwareReset();
    });
}

void
CdnaNic::rebootFirmware(sim::Time down_time, sim::Time reconcile_per_cxt)
{
    // The running image dies now: the epoch bump makes every in-flight
    // continuation of the old image (descriptor fetches, packet moves,
    // completion bumps) a no-op, and the processor is busy booting the
    // new image for down_time.
    fw_.reboot(down_time);

    // Volatile SRAM state is gone.
    hier_.clearAll();
    txArb_.clear();
    txDataBusy_ = false;
    txWaitingBuffer_ = false;
    txBuf_.reset();
    rxBuf_.reset();
    if (vecTimer_ != sim::kInvalidEvent) {
        events().cancel(vecTimer_);
        vecTimer_ = sim::kInvalidEvent;
    }
    pendingVector_ = 0;
    pendingUpdates_ = 0;

    std::uint32_t live = 0;
    for (ContextId id = 0; id < contexts_.size(); ++id) {
        Context &c = contexts_[id];
        if (!c.allocated)
            continue;
        c.inflight = 0; // in-flight ops of the dead image never complete
        if (c.pagingOut) {
            // The quiesce target died with the image; the saved state is
            // consistent (completions were reconciled as they landed),
            // so the eviction completes now and the pager proceeds.
            settlePageOut(id);
            continue;
        }
        if (!c.resident)
            continue; // paged out: state lives in host memory, untouched
        ++live;
        c.txReady.clear();
        c.rxReady.clear();
        c.inTxArb = false;
        c.txFetchBusy = false;
        c.rxFetchBusy = false;
        // Reconcile against the hypervisor-validated descriptor state.
        // Descriptors the dead image had detached for transmission but
        // whose completions were lost form a contiguous prefix above
        // the consumed boundary (the arbiter drains in order); the new
        // image reads back the DMA engine's completion records and
        // retires them rather than re-transmitting payload it no
        // longer has.
        if (c.txRing) {
            while (c.txConsumer != c.txFetched &&
                   !c.txRing->hasPacket(c.txConsumer)) {
                ++c.txConsumer;
                ++c.txDone64;
            }
        }
        // Roll the fetch horizon back to the consumed boundary and
        // realign the expected sequence numbers with the hypervisor's
        // stamping (descriptor i carries seqno i+1).  The counts are
        // free-running 32-bit indices while the hypervisor stamps from
        // a 64-bit stream, so realignment must use the 64-bit
        // completion shadows -- truncating through the 32-bit consumer
        // desynchronizes the seqno check after 2^32 descriptors.  The
        // producer doorbells were volatile: guests' watchdogs re-ring.
        c.txProducer = c.txFetched = c.txConsumer;
        c.txNextSeqno = c.txDone64 + 1;
        c.rxProducer = c.rxFetched = c.rxConsumer;
        c.rxNextSeqno = c.rxDone64 + 1;
        scheduleWriteback(id);
    }

    // The new image's first job walks the context table.
    fw_.exec(reconcile_per_cxt * static_cast<sim::Time>(live), [this] {
        if (sim::FaultInjector *fi = ctx().faultInjector())
            fi->noteFirmwareReboot();
    });
}

void
CdnaNic::configureContextRings(ContextId id, std::uint32_t tx_entries,
                               mem::PhysAddr tx_base,
                               std::uint32_t rx_entries,
                               mem::PhysAddr rx_base)
{
    Context &c = cxt(id);
    SIM_ASSERT(c.allocated, "configuring unallocated context");
    c.txRing.emplace(tx_entries, tx_base);
    c.rxRing.emplace(rx_entries, rx_base);
}

void
CdnaNic::setStatusPage(ContextId id, mem::PhysAddr addr)
{
    cxt(id).statusAddr = addr;
}

void
CdnaNic::setInterruptRing(mem::PhysAddr base)
{
    intrRing_.emplace(params_.intrRingSlots, base);
}

bool
CdnaNic::contextAllocated(ContextId id) const
{
    return id < contexts_.size() && contexts_[id].allocated;
}

mem::DomainId
CdnaNic::contextDomain(ContextId id) const
{
    return cxt(id).dom;
}

bool
CdnaNic::contextFaulted(ContextId id) const
{
    return cxt(id).faulted;
}

std::uint32_t
CdnaNic::allocatedContexts() const
{
    std::uint32_t n = 0;
    for (const auto &c : contexts_)
        if (c.allocated)
            ++n;
    return n;
}

std::optional<CdnaNic::ContextId>
CdnaNic::contextAtSlot(std::uint32_t slot) const
{
    if (slot >= slotOwner_.size() || slotOwner_[slot] == kNoSlotOwner)
        return std::nullopt;
    return slotOwner_[slot];
}

bool
CdnaNic::contextResident(ContextId id) const
{
    const Context &c = cxt(id);
    return c.allocated && c.resident;
}

std::uint32_t
CdnaNic::freeSlots() const
{
    std::uint32_t n = 0;
    for (std::uint32_t owner : slotOwner_)
        if (owner == kNoSlotOwner)
            ++n;
    return n;
}

sim::Time
CdnaNic::contextLastActive(ContextId id) const
{
    return cxt(id).lastActive;
}

std::uint64_t
CdnaNic::contextTrafficScore(ContextId id) const
{
    return cxt(id).trafficScore;
}

void
CdnaNic::noteInflightDone(ContextId id)
{
    Context &c = cxt(id);
    if (c.inflight > 0)
        --c.inflight;
    if (c.pagingOut && c.inflight == 0)
        settlePageOut(id);
}

void
CdnaNic::settlePageOut(ContextId id)
{
    Context &c = cxt(id);
    if (!c.pagingOut)
        return;
    c.pagingOut = false;
    c.inflight = 0;
    // Completions that landed during the drain may have set this slot's
    // bit; the pager delivers the guest's notification instead.
    pendingVector_ &= ~(1u << c.slot);
    hier_.clearContext(c.slot);
    releaseSlot(id);
    auto done = std::move(c.pageOutDone);
    c.pageOutDone = nullptr;
    if (done)
        done();
}

void
CdnaNic::pageOutContext(ContextId id, std::function<void()> done)
{
    Context &c = cxt(id);
    SIM_ASSERT(c.allocated, "paging out unallocated context");
    SIM_ASSERT(c.resident && !c.pagingOut,
               "paging out non-resident context");
    nCxtEvictions_.inc();
    c.pagingOut = true;
    ++c.cxtEpoch; // cancels the slot's in-flight fetch chains
    // Quiesce: stop feeding new work from this context.  Staged and
    // arbitrated descriptors are dropped -- the fetch horizon rolls
    // back to the consumed boundary at page-in, so nothing is lost --
    // while in-flight datapath operations drain to their completion
    // records before the slot is surrendered.
    c.txReady.clear();
    c.rxReady.clear();
    c.txFetchBusy = false;
    c.rxFetchBusy = false;
    auto it = std::find(txArb_.begin(), txArb_.end(), id);
    if (it != txArb_.end())
        txArb_.erase(it);
    c.inTxArb = false;
    hier_.clearContext(c.slot);
    c.pageOutDone = std::move(done);
    if (c.inflight == 0)
        settlePageOut(id);
}

void
CdnaNic::pageInContext(ContextId id)
{
    Context &c = cxt(id);
    SIM_ASSERT(c.allocated, "paging in unallocated context");
    SIM_ASSERT(!c.resident && !c.pagingOut, "context already resident");
    int slot = findFreeSlot();
    SIM_ASSERT(slot >= 0, "page-in with no free slot");
    claimSlot(id, static_cast<std::uint32_t>(slot));
    nCxtPageIns_.inc();
    // Reconcile the restored slot against the hypervisor-validated ring
    // state, exactly as firmware-reboot reconciliation does: retire
    // completion records, roll the fetch horizon back to the consumed
    // boundary, and realign the expected sequence numbers from the
    // 64-bit completion counts (descriptor i carries seqno i+1).
    if (c.txRing) {
        while (c.txConsumer != c.txFetched &&
               !c.txRing->hasPacket(c.txConsumer)) {
            ++c.txConsumer;
            ++c.txDone64;
        }
    }
    c.txProducer = c.txFetched = c.txConsumer;
    c.txNextSeqno = c.txDone64 + 1;
    c.rxProducer = c.rxFetched = c.rxConsumer;
    c.rxNextSeqno = c.rxDone64 + 1;
    c.txFetchBusy = false;
    c.rxFetchBusy = false;
    c.inTxArb = false;
    c.trafficScore = 0;
    touchActivity(c);
    scheduleWriteback(id);
}

void
CdnaNic::replayDoorbells(ContextId id)
{
    Context &c = cxt(id);
    SIM_ASSERT(c.allocated && c.resident,
               "doorbell replay on non-resident context");
    // The producer mailbox words were saved and restored with the
    // context image; re-post them so the firmware picks up work rung
    // while the context was paged out.  Mailbox values are producer
    // counts, so replaying an already-serviced doorbell is harmless.
    postDoorbell(id, nic::kMboxTxProducer);
    postDoorbell(id, nic::kMboxRxProducer);
}

void
CdnaNic::seedContextCounters(ContextId id, std::uint32_t tx_base,
                             std::uint64_t tx_done64,
                             std::uint32_t rx_base,
                             std::uint64_t rx_done64)
{
    Context &c = cxt(id);
    SIM_ASSERT(c.allocated, "seeding unallocated context");
    SIM_ASSERT(static_cast<std::uint32_t>(tx_done64) == tx_base &&
                   static_cast<std::uint32_t>(rx_done64) == rx_base,
               "done64 low bits must match the 32-bit base");
    c.txProducer = c.txFetched = c.txConsumer = c.txConsumerHost =
        tx_base;
    c.txDone64 = tx_done64;
    c.txNextSeqno = tx_done64 + 1;
    c.rxProducer = c.rxFetched = c.rxUsed = c.rxConsumer =
        c.rxConsumerHost = rx_base;
    c.rxDone64 = rx_done64;
    c.rxNextSeqno = rx_done64 + 1;
}

void
CdnaNic::pioWriteMailbox(ContextId id, std::uint32_t mbox,
                         std::uint32_t value)
{
    Context &c = cxt(id);
    SIM_ASSERT(c.allocated, "PIO to unallocated context");
    c.mailboxes.write(mbox, value);
    touchActivity(c);

    if (!c.resident || c.pagingOut) {
        // Doorbell to a paged-out context: the value is already in the
        // saved mailbox image, so nothing is lost.  The access traps to
        // the hypervisor's context pager, which restores the context
        // into a physical slot and replays the producer doorbells.
        nCxtTraps_.inc();
        if (pageFaultHandler_)
            pageFaultHandler_(id);
        return;
    }

    // Storm guard: a context ringing faster than any legitimate driver
    // ever would gets its doorbells coalesced into one deferred event
    // at the window edge.  The mailbox value is in SRAM already, so
    // nothing is lost -- the flood just stops costing firmware decode
    // time per ring, and other contexts keep their fair share.
    if (params_.doorbellBurst > 0) {
        if (now() >= c.dbWindowEnd) {
            c.dbWindowEnd = now() + params_.doorbellWindow;
            c.dbUsed = 0;
        }
        if (c.dbUsed >= params_.doorbellBurst) {
            nMailboxThrottled_.inc();
            c.dbDeferred |= 1u << mbox;
            if (!c.dbTimerArmed) {
                c.dbTimerArmed = true;
                events().scheduleAt(c.dbWindowEnd, [this, id] {
                    flushDeferredDoorbells(id);
                });
            }
            return;
        }
        ++c.dbUsed;
    }
    postDoorbell(id, mbox);
}

void
CdnaNic::postDoorbell(ContextId id, std::uint32_t mbox)
{
    // The event hierarchy is indexed by physical slot (it is the
    // snooping core's scratchpad); firmware resolves the slot back to
    // the owning virtual context when it decodes the event.
    hier_.post(cxt(id).slot, mbox);
    nMailboxEvents_.inc();
    fw_.exec(params_.fwMailboxEvent, [this] {
        std::uint32_t slot, mb;
        if (!hier_.popLowest(&slot, &mb))
            return;
        if (auto owner = contextAtSlot(slot))
            handleMailbox(*owner, mb);
    });
}

void
CdnaNic::flushDeferredDoorbells(ContextId id)
{
    Context &c = cxt(id);
    c.dbTimerArmed = false;
    if (!c.allocated)
        return;
    if (!c.resident || c.pagingOut)
        return; // paged out meanwhile: doorbells replayed at page-in
    std::uint32_t pending = std::exchange(c.dbDeferred, 0);
    c.dbWindowEnd = now() + params_.doorbellWindow;
    c.dbUsed = 0;
    for (std::uint32_t mbox = 0; pending != 0; ++mbox, pending >>= 1) {
        if (pending & 1u) {
            ++c.dbUsed;
            postDoorbell(id, mbox);
        }
    }
}

void
CdnaNic::handleMailbox(ContextId id, std::uint32_t mbox)
{
    Context &c = cxt(id);
    if (!c.allocated || c.faulted || !c.resident || c.pagingOut)
        return;
    switch (mbox) {
      case nic::kMboxTxProducer:
        c.txProducer = c.mailboxes.read(mbox);
        startTxFetch(id);
        break;
      case nic::kMboxRxProducer:
        c.rxProducer = c.mailboxes.read(mbox);
        startRxFetch(id);
        break;
      default:
        break; // control mailboxes: nothing to do in this model
    }
}

void
CdnaNic::startTxFetch(ContextId id)
{
    Context &c = cxt(id);
    if (c.txFetchBusy || c.faulted || !c.txRing || !c.resident ||
        c.pagingOut)
        return;
    std::uint32_t avail = c.txProducer - c.txFetched;
    if (avail == 0)
        return;
    std::uint32_t n = std::min({avail, params_.fetchBatch,
                                c.txRing->size()});
    c.txFetchBusy = true;

    mem::SgList sg;
    std::uint32_t first_slot = c.txRing->slotOf(c.txFetched);
    std::uint32_t till_wrap = std::min(n, c.txRing->size() - first_slot);
    sg.push_back({c.txRing->slotAddr(c.txFetched),
                  till_wrap * nic::kDescBytes});
    if (till_wrap < n)
        sg.push_back({c.txRing->slotAddr(c.txFetched + till_wrap),
                      (n - till_wrap) * nic::kDescBytes});

    std::uint32_t first = c.txFetched;
    std::uint64_t ep = fw_.epoch();
    std::uint64_t cep = c.cxtEpoch;
    dma_.read(sg, c.dom, id, [this, id, first, n, ep,
                              cep](mem::DmaResult) {
        if (ep != fw_.epoch())
            return; // firmware rebooted mid-fetch; the new image refetches
        Context &cc = cxt(id);
        if (!cc.allocated || cc.cxtEpoch != cep)
            return; // revoked or paged out mid-fetch
        cc.txFetchBusy = false;
        cc.txFetched = first + n;
        fw_.exec(n * params_.fwPerDescriptor, [this, id, first, n, ep,
                                               cep] {
            if (ep != fw_.epoch() || cxt(id).cxtEpoch != cep)
                return;
            validateFetched(id, true, first, n);
        });
        startTxFetch(id);
    });
}

void
CdnaNic::startRxFetch(ContextId id)
{
    Context &c = cxt(id);
    if (c.rxFetchBusy || c.faulted || !c.rxRing || !c.resident ||
        c.pagingOut)
        return;
    std::uint32_t avail = c.rxProducer - c.rxFetched;
    if (avail == 0)
        return;
    std::uint32_t n = std::min({avail, params_.fetchBatch,
                                c.rxRing->size()});
    c.rxFetchBusy = true;

    mem::SgList sg;
    std::uint32_t first_slot = c.rxRing->slotOf(c.rxFetched);
    std::uint32_t till_wrap = std::min(n, c.rxRing->size() - first_slot);
    sg.push_back({c.rxRing->slotAddr(c.rxFetched),
                  till_wrap * nic::kDescBytes});
    if (till_wrap < n)
        sg.push_back({c.rxRing->slotAddr(c.rxFetched + till_wrap),
                      (n - till_wrap) * nic::kDescBytes});

    std::uint32_t first = c.rxFetched;
    std::uint64_t ep = fw_.epoch();
    std::uint64_t cep = c.cxtEpoch;
    dma_.read(sg, c.dom, id, [this, id, first, n, ep,
                              cep](mem::DmaResult) {
        if (ep != fw_.epoch())
            return;
        Context &cc = cxt(id);
        if (!cc.allocated || cc.cxtEpoch != cep)
            return;
        cc.rxFetchBusy = false;
        cc.rxFetched = first + n;
        fw_.exec(n * params_.fwPerDescriptor, [this, id, first, n, ep,
                                               cep] {
            if (ep != fw_.epoch() || cxt(id).cxtEpoch != cep)
                return;
            validateFetched(id, false, first, n);
        });
        startRxFetch(id);
    });
}

bool
CdnaNic::checkSeqno(Context &c, std::uint64_t seqno, std::uint64_t *next)
{
    (void)c;
    std::uint64_t expected = *next;
    if (params_.seqnoModulus != 0)
        expected %= params_.seqnoModulus;
    if (seqno != expected)
        return false;
    ++*next;
    return true;
}

void
CdnaNic::validateFetched(ContextId id, bool is_tx, std::uint32_t first,
                         std::uint32_t count)
{
    Context &c = cxt(id);
    if (!c.allocated || c.faulted || !c.resident || c.pagingOut)
        return;
    nic::DescRing &ring = is_tx ? *c.txRing : *c.rxRing;
    std::uint64_t *next = is_tx ? &c.txNextSeqno : &c.rxNextSeqno;
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t pos = first + i;
        const nic::DmaDescriptor &desc = ring.at(pos);
        if (params_.seqnoCheck &&
            (!desc.valid() || !checkSeqno(c, desc.seqno, next))) {
            enterFault(id, vmm::Fault::kBadSeqno);
            return;
        }
        (is_tx ? c.txReady : c.rxReady).push_back(pos);
    }
    if (is_tx)
        enqueueTxArb(id);
}

void
CdnaNic::enterFault(ContextId id, vmm::Fault f)
{
    Context &c = cxt(id);
    c.faulted = true;
    c.txReady.clear();
    c.rxReady.clear();
    if (f == vmm::Fault::kBadSeqno)
        nSeqnoFaults_.inc();
    log_.warn("context %u fault: %s", id, vmm::faultName(f));
    if (faultHandler_)
        faultHandler_(id, c.dom, f);
}

void
CdnaNic::enqueueTxArb(ContextId id)
{
    Context &c = cxt(id);
    if (c.inTxArb || c.txReady.empty() || c.faulted || !c.resident ||
        c.pagingOut)
        return;
    c.inTxArb = true;
    txArb_.push_back(id);
    pumpTx();
}

void
CdnaNic::pumpTx()
{
    if (txDataBusy_ || txArb_.empty())
        return;
    ContextId id = txArb_.front();
    Context &c = cxt(id);
    if (!c.allocated || c.faulted || c.txReady.empty()) {
        txArb_.pop_front();
        c.inTxArb = false;
        pumpTx();
        return;
    }
    std::uint32_t pos = c.txReady.front();
    const nic::DmaDescriptor desc = c.txRing->at(pos);
    auto pkt_opt = c.txRing->detachPacket(pos);
    std::uint64_t bytes = pkt_opt ? pkt_opt->payloadBytes : desc.len();
    if (bytes == 0)
        bytes = 64; // minimum frame from a degenerate descriptor
    if (!txBuf_.tryReserve(bytes)) {
        if (pkt_opt)
            c.txRing->attachPacket(pos, std::move(*pkt_opt));
        txWaitingBuffer_ = true;
        return;
    }
    c.txReady.pop_front();
    txArb_.pop_front();
    txDataBusy_ = true;
    ++c.inflight; // page-out quiesce waits for this op to settle
    ++c.trafficScore;
    touchActivity(c);

    // Fair interleave: rotate the context to the arbiter tail while this
    // packet streams in, so other contexts transmit between its packets.
    if (!c.txReady.empty())
        txArb_.push_back(id);
    else
        c.inTxArb = false;
    if (c.txFetched - c.txConsumer < params_.fetchBatch)
        startTxFetch(id);

    net::Packet pkt;
    if (pkt_opt) {
        pkt = std::move(*pkt_opt);
        nTxPackets_.inc();
    } else {
        // Stale/forged descriptor with protection off: the hardware
        // happily transmits whatever the (possibly reallocated) buffer
        // holds.
        pkt.src = c.mac;
        pkt.dst = net::MacAddr::fromId(0xFFFFFFu);
        pkt.payloadBytes = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(bytes, net::kMaxTsoBytes));
        pkt.srcDomain = c.dom;
        nGhostTx_.inc();
    }

    std::uint64_t ep = fw_.epoch();
    dma_.read(desc.sg, c.dom, id,
              [this, id, bytes, ep,
               pkt = std::move(pkt)](mem::DmaResult dr) mutable {
        if (ep != fw_.epoch())
            return; // firmware rebooted: the staged frame died with it
        fw_.exec(params_.fwPerPacket,
                 [this, id, bytes, ep, dr, pkt = std::move(pkt)]() mutable {
            if (ep != fw_.epoch())
                return;
            txDataBusy_ = false;
            if (dr.blockedPages > 0) {
                // The IOMMU refused the payload fetch: nothing valid to
                // transmit.  Complete the descriptor without a frame.
                nIommuDrops_.inc();
                txBuf_.release(bytes);
                Context &cc = cxt(id);
                if (cc.allocated) {
                    ++cc.txConsumer;
                    ++cc.txDone64;
                    scheduleWriteback(id);
                    noteContextUpdate(id);
                }
                noteInflightDone(id);
                if (std::exchange(txWaitingBuffer_, false))
                    pumpTx();
                pumpTx();
                return;
            }
            sim::Time gap = params_.txInterFrameGap *
                            static_cast<sim::Time>(pkt.wireFrames());
            port_.send(std::move(pkt), gap, [this, id, bytes, ep] {
                if (ep != fw_.epoch())
                    return; // completion record reconciled at reboot
                txBuf_.release(bytes);
                Context &cc = cxt(id);
                if (cc.allocated) {
                    ++cc.txConsumer;
                    ++cc.txDone64;
                    scheduleWriteback(id);
                    noteContextUpdate(id);
                }
                noteInflightDone(id);
                if (std::exchange(txWaitingBuffer_, false))
                    pumpTx();
            });
            pumpTx();
        });
    });
}

void
CdnaNic::receiveFrame(net::Packet pkt)
{
    auto it = macMap_.find(pkt.dst.hash());
    ContextId id;
    if (it != macMap_.end()) {
        id = it->second;
    } else if (promiscuousCxt_.has_value()) {
        id = *promiscuousCxt_;
    } else {
        nRxDropFilter_.inc();
        return;
    }
    Context &c = cxt(id);
    if (c.faulted) {
        nRxDropFilter_.inc();
        return;
    }
    if (!c.resident || c.pagingOut) {
        // Paged-out context: its slot's MAC filter is not programmed,
        // so the frame is dropped at the wire like any unmatched MAC.
        nRxDropFilter_.inc();
        return;
    }
    if (c.rxReady.empty()) {
        nRxDropNoDesc_.inc();
        startRxFetch(id);
        return;
    }
    std::uint64_t bytes = pkt.payloadBytes;
    if (!rxBuf_.tryReserve(bytes)) {
        nRxDropNoBuf_.inc();
        return;
    }
    std::uint32_t pos = c.rxReady.front();
    c.rxReady.pop_front();
    ++c.inflight;
    ++c.trafficScore;
    touchActivity(c);
    if (c.rxReady.size() < params_.fetchBatch / 2)
        startRxFetch(id);
    const nic::DmaDescriptor desc = c.rxRing->at(pos);

    std::uint64_t ep = fw_.epoch();
    fw_.exec(params_.fwPerPacket,
             [this, id, pos, bytes, desc, ep,
              pkt = std::move(pkt)]() mutable {
        if (ep != fw_.epoch())
            return; // firmware rebooted: frame lost with the old image
        mem::SgList sg = sgPrefix(desc.sg, bytes + net::kTcpIpHeader);
        Context &cc = cxt(id);
        dma_.write(sg, cc.dom, id,
                   [this, id, pos, bytes, ep,
                    pkt = std::move(pkt)](mem::DmaResult dr) mutable {
            if (ep != fw_.epoch())
                return;
            rxBuf_.release(bytes);
            Context &ccc = cxt(id);
            if (!ccc.allocated) {
                noteInflightDone(id);
                return;
            }
            if (dr.blockedPages > 0) {
                // IOMMU refused the buffer write: the frame is lost,
                // but the descriptor is consumed.
                nIommuDrops_.inc();
                ++ccc.rxConsumer;
                ++ccc.rxDone64;
                scheduleWriteback(id);
                noteContextUpdate(id);
                noteInflightDone(id);
                return;
            }
            nRxPackets_.inc();
            ccc.rxDeliveries.push_back(RxDelivery{pos, std::move(pkt)});
            ++ccc.rxConsumer;
            ++ccc.rxDone64;
            scheduleWriteback(id);
            noteContextUpdate(id);
            noteInflightDone(id);
        });
    });
}

std::uint32_t
CdnaNic::txConsumer(ContextId id) const
{
    return cxt(id).txConsumerHost;
}

std::uint32_t
CdnaNic::rxConsumer(ContextId id) const
{
    return cxt(id).rxConsumerHost;
}

std::vector<CdnaNic::RxDelivery>
CdnaNic::drainRx(ContextId id)
{
    return std::exchange(cxt(id).rxDeliveries, {});
}

nic::DescRing &
CdnaNic::txRing(ContextId id)
{
    Context &c = cxt(id);
    SIM_ASSERT(c.txRing.has_value(), "TX ring not configured");
    return *c.txRing;
}

nic::DescRing &
CdnaNic::rxRing(ContextId id)
{
    Context &c = cxt(id);
    SIM_ASSERT(c.rxRing.has_value(), "RX ring not configured");
    return *c.rxRing;
}

void
CdnaNic::scheduleWriteback(ContextId id)
{
    Context &c = cxt(id);
    if (c.statusAddr == 0) {
        // No status page configured (unit tests): publish immediately.
        c.txConsumerHost = c.txConsumer;
        c.rxConsumerHost = c.rxConsumer;
        return;
    }
    if (c.wbBusy) {
        c.wbAgain = true;
        return;
    }
    c.wbBusy = true;
    mem::SgList sg{{c.statusAddr, 16}};
    dma_.write(sg, c.dom, id, [this, id](mem::DmaResult) {
        Context &cc = cxt(id);
        cc.wbBusy = false;
        if (!cc.allocated)
            return;
        cc.txConsumerHost = cc.txConsumer;
        cc.rxConsumerHost = cc.rxConsumer;
        if (std::exchange(cc.wbAgain, false))
            scheduleWriteback(id);
    });
}

void
CdnaNic::noteContextUpdate(ContextId id)
{
    Context &c = cxt(id);
    if (!c.resident || c.pagingOut)
        return; // the pager notifies the guest once eviction completes
    pendingVector_ |= (1u << c.slot);
    ++pendingUpdates_;
    if (pendingUpdates_ >= coalesce().eventThreshold) {
        if (vecTimer_ != sim::kInvalidEvent) {
            events().cancel(vecTimer_);
            vecTimer_ = sim::kInvalidEvent;
        }
        fireBitVector();
        return;
    }
    if (vecTimer_ == sim::kInvalidEvent) {
        vecTimer_ = events().schedule(coalesce().delay, [this] {
            vecTimer_ = sim::kInvalidEvent;
            fireBitVector();
        });
    }
}

void
CdnaNic::fireBitVector()
{
    if (pendingVector_ == 0)
        return;
    if (!intrRing_) {
        // No hypervisor ring configured (unit tests): raise directly.
        pendingVector_ = 0;
        pendingUpdates_ = 0;
        raiseIrq();
        return;
    }
    if (intrRing_->full() || vecDmaBusy_) {
        // Host is behind; retry shortly (producer/consumer protocol).
        if (vecTimer_ == sim::kInvalidEvent) {
            vecTimer_ = events().schedule(sim::microseconds(5), [this] {
                vecTimer_ = sim::kInvalidEvent;
                fireBitVector();
            });
        }
        return;
    }
    std::uint32_t vec = std::exchange(pendingVector_, 0);
    pendingUpdates_ = 0;
    vecDmaBusy_ = true;
    mem::SgList sg{{intrRing_->producerAddr(), 4}};
    dma_.write(sg, mem::kDomHypervisor, mem::kWholeDevice,
               [this, vec](mem::DmaResult) {
        vecDmaBusy_ = false;
        intrRing_->push(vec);
        nBitVectors_.inc();
        raiseIrq();
    });
}

} // namespace cdna::core
