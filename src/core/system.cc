#include "core/system.hh"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "net/workload/workload_engine.hh"
#include "sim/assert.hh"

namespace cdna::core {

System::System(SystemConfig cfg) : System(std::move(cfg), nullptr, {})
{
}

System::System(SystemConfig cfg, sim::SimContext &shared,
               std::vector<net::Fabric *> nic_fabrics)
    : System(std::move(cfg), &shared, std::move(nic_fabrics))
{
}

System::System(SystemConfig cfg, sim::SimContext *shared,
               std::vector<net::Fabric *> nic_fabrics)
    : cfg_(std::move(cfg)),
      ownedCtx_(shared ? nullptr
                       : std::make_unique<sim::SimContext>(cfg_.seed)),
      ctx_(shared ? *shared : *ownedCtx_),
      extFabrics_(std::move(nic_fabrics))
{
    // Guest/driver MAC blocks are 1 Mi ids apart; cap hostId well clear
    // of the 0xFE0000 range traffic peers hash their names into.
    SIM_ASSERT(cfg_.hostId <= 12, "hostId out of range for the MAC plan");
    // Install the injector before any component is built so fault
    // hooks (driver watchdogs, link faults) see it from the start.  An
    // empty plan installs nothing, keeping the run bit-identical to a
    // fault-free build.  The injector is context-global, so in a shared
    // topology at most one host may carry a fault plan.
    if (!cfg_.faults.empty()) {
        SIM_ASSERT(ctx_.faultInjector() == nullptr,
                   "shared context already has a fault plan installed");
        faults_ = std::make_unique<sim::FaultInjector>(
            ctx_, nm("faults"), cfg_.seed, cfg_.faults.rates());
        ctx_.setFaultInjector(faults_.get());
    }
    buildCommon();
    switch (cfg_.mode) {
      case IoMode::kNative:
        buildNative();
        break;
      case IoMode::kXen:
        buildXen();
        break;
      case IoMode::kCdna:
        buildCdna();
        break;
      case IoMode::kSwPassthrough:
        buildSwpt();
        break;
    }
    startTimers();
    registerGauges();
    if (faults_) {
        setupAvailability();
        scheduleFaultEvents();
    }
}

System::~System()
{
    if (faults_ && ctx_.faultInjector() == faults_.get())
        ctx_.setFaultInjector(nullptr);
}

net::MacAddr
System::guestMac(std::uint32_t guest, std::uint32_t nic) const
{
    // Host 0 is bit-identical to the classic single-host layout; other
    // hosts shift into disjoint 1 Mi-id blocks of the 24-bit MAC space.
    return net::MacAddr::fromId(cfg_.hostId * 0x00100000u + 0x010000u +
                                guest * 256u + nic);
}

net::Port &
System::nicPort(std::uint32_t i)
{
    return *nicPorts_[i];
}

void
System::buildCommon()
{
    mem_ = std::make_unique<mem::PhysMemory>(ctx_, cfg_.memoryPages);
    cpu_ = std::make_unique<cpu::SimCpu>(ctx_, nm("cpu0"),
                                         cfg_.costs.cpuParams);
    hv_ = std::make_unique<vmm::Hypervisor>(ctx_, *cpu_, *mem_,
                                            cfg_.costs.hv);
    if (cfg_.iommuMode != mem::Iommu::Mode::kNone)
        iommu_ = std::make_unique<mem::Iommu>(ctx_, *mem_, cfg_.iommuMode);

    NicKind kind = (cfg_.mode == IoMode::kNative ||
                    cfg_.mode == IoMode::kSwPassthrough)
                       ? NicKind::kIntel
                       : cfg_.nicKind;
    for (std::uint32_t i = 0; i < cfg_.numNics; ++i) {
        std::string suffix = std::to_string(i);
        buses_.push_back(
            std::make_unique<mem::PciBus>(ctx_, nm("pci" + suffix)));
        net::Fabric *fab = nullptr;
        if (nicExternal(i)) {
            // The topology builder owns the fabric (and whatever peers
            // sit on its far ports); this NIC only binds a port.
            links_.push_back(nullptr);
            peers_.push_back(nullptr);
            fab = extFabrics_[i];
        } else {
            links_.push_back(
                std::make_unique<net::EthLink>(ctx_, nm("eth" + suffix)));
            peers_.push_back(std::make_unique<net::TrafficPeer>(
                ctx_, nm("peer" + suffix), *links_.back()));
            net::workload::WorkloadSpec knobs;
            knobs.ackingEvery(cfg_.costs.ackPerFrames);
            if (cfg_.transportKind == TransportKind::kTcp)
                knobs.overTcp(cfg_.tcpParams);
            peers_.back()->applyWorkload(knobs);
            fab = links_.back().get();
        }
        if (kind == NicKind::kIntel) {
            auto params = cfg_.intelParams;
            params.coalesce = cfg_.costs.intelCoalesce;
            intelNics_.push_back(std::make_unique<nic::IntelNic>(
                ctx_, nm("intel" + suffix), *buses_.back(), *mem_, i,
                *fab, params));
            nicPorts_.push_back(&intelNics_.back()->port());
            if (iommu_)
                intelNics_.back()->dma().setIommu(iommu_.get());
        } else {
            auto params = cfg_.cdnaParams;
            params.coalesce = cfg_.transmitDir ? cfg_.costs.cdnaCoalesce
                                               : cfg_.costs.cdnaCoalesceRx;
            params.seqnoCheck = cfg_.dmaProtection;
            if (cfg_.mode == IoMode::kCdna && cfg_.ctxOversub) {
                // One virtual context per guest, paged over the
                // physical slots on demand.
                params.virtualContexts =
                    std::max(params.numContexts, cfg_.numGuests);
            }
            cdnaNics_.push_back(std::make_unique<CdnaNic>(
                ctx_, nm("cdna" + suffix), *buses_.back(), *mem_, i,
                *fab, params));
            nicPorts_.push_back(&cdnaNics_.back()->port());
            if (iommu_)
                cdnaNics_.back()->dma().setIommu(iommu_.get());
            cxtChannels_.emplace_back(
                std::max<std::size_t>(nic::kMaxContexts,
                                      params.virtualContexts),
                nullptr);
        }
    }
}

void
System::registerGauges()
{
    // Utilization gauges report the busy fraction since the previous
    // sample as a percentage; each lambda keeps the prior cumulative
    // value.  All callbacks are read-only with respect to simulated
    // state, so sampling cannot perturb results.
    auto util_pct = [](sim::Time busy_delta, sim::Time dt) {
        if (dt <= 0)
            return 0.0;
        double pct = 100.0 * static_cast<double>(busy_delta) /
                     static_cast<double>(dt);
        return pct < 0.0 ? 0.0 : pct;
    };

    for (const auto &dom : hv_->domains()) {
        const vmm::Domain *d = dom.get();
        metrics_.addGauge(
            "cpu." + d->name() + ".util_pct",
            [this, d, util_pct, prev = sim::Time{0},
             prevAt = sim::Time{0}]() mutable {
                const auto &prof = cpu_->profile();
                sim::Time busy =
                    prof.domainTime(d->id(), cpu::Bucket::kOs) +
                    prof.domainTime(d->id(), cpu::Bucket::kUser);
                sim::Time at = ctx_.events().now();
                double pct = util_pct(busy - prev, at - prevAt);
                // resetAccounting() can move cumulative time backwards;
                // restart the delta from the post-reset value.
                if (busy < prev)
                    pct = 0.0;
                prev = busy;
                prevAt = at;
                return pct;
            });
    }
    metrics_.addGauge(
        "cpu.hypervisor_pct",
        [this, util_pct, prev = sim::Time{0},
         prevAt = sim::Time{0}]() mutable {
            sim::Time busy = cpu_->profile().hypervisor();
            sim::Time at = ctx_.events().now();
            double pct = busy < prev ? 0.0
                                     : util_pct(busy - prev, at - prevAt);
            prev = busy;
            prevAt = at;
            return pct;
        });
    metrics_.addGauge(
        "cpu.idle_pct",
        [this, util_pct, prev = sim::Time{0},
         prevAt = sim::Time{0}]() mutable {
            cpu_->syncIdle(); // flush the in-progress idle span
            sim::Time busy = cpu_->profile().idle();
            sim::Time at = ctx_.events().now();
            double pct = busy < prev ? 0.0
                                     : util_pct(busy - prev, at - prevAt);
            prev = busy;
            prevAt = at;
            return pct;
        });

    for (const auto &nicp : cdnaNics_) {
        CdnaNic *nic = nicp.get();
        metrics_.addGauge(
            "nic." + nic->name() + ".fw_util_pct",
            [nic, this, util_pct, prev = sim::Time{0},
             prevAt = sim::Time{0}]() mutable {
                sim::Time busy = nic->firmwareBusyTime();
                sim::Time at = ctx_.events().now();
                double pct = util_pct(busy - prev, at - prevAt);
                prev = busy;
                prevAt = at;
                return pct;
            });
        metrics_.addGauge(
            "nic." + nic->name() + ".intr_ring_occupancy", [nic] {
                const InterruptRing *ring = nic->interruptRing();
                if (!ring)
                    return 0.0;
                return static_cast<double>(ring->producer() -
                                           ring->consumer());
            });
    }
    if (prot_) {
        DmaProtection *prot = prot_.get();
        metrics_.addGauge("protection.pinned_pages", [prot] {
            return static_cast<double>(prot->pagesPinned() -
                                       prot->pagesUnpinned());
        });
    }
    metrics_.addGauge("sim.pending_events", [this] {
        return static_cast<double>(ctx_.events().pendingCount());
    });
    // cwnd trajectories, one gauge per transport endpoint.
    for (const auto &st : stacks_)
        if (net::transport::TcpEndpoint *t = st->tcp())
            metrics_.addGauge(t->name() + ".cwnd_bytes",
                              [t] { return t->cwndBytes(); });
    for (const auto &p : peers_)
        if (p)
            if (net::transport::TcpEndpoint *t = p->tcp())
                metrics_.addGauge(t->name() + ".cwnd_bytes",
                                  [t] { return t->cwndBytes(); });
}

void
System::wireCdnaIsr(std::uint32_t i)
{
    CdnaNic &nic = *cdnaNics_[i];
    mem::PageNum ring_page = mem_->allocOne(mem::kDomHypervisor);
    nic.setInterruptRing(mem::addrOf(ring_page));
    nic.setFaultHandler([this](CdnaNic::ContextId, mem::DomainId dom,
                               vmm::Fault f) { hv_->recordFault(dom, f); });
    nic.setIrqLine([this, i] {
        hv_->physicalInterrupt(0, [this, i] {
            InterruptRing *ring = cdnaNics_[i]->interruptRing();
            while (!ring->empty()) {
                std::uint32_t vec = ring->pop();
                while (vec != 0) {
                    auto b = static_cast<std::uint32_t>(
                        __builtin_ctz(vec));
                    vec &= vec - 1;
                    // Interrupt vectors carry physical-slot bits;
                    // resolve to the owning (virtual) context.  A slot
                    // whose owner was evicted after the DMA is stale:
                    // its guest is notified by the pager instead.
                    auto owner = cdnaNics_[i]->contextAtSlot(b);
                    if (!owner)
                        continue;
                    vmm::EventChannel *ch = cxtChannels_[i][*owner];
                    if (ch)
                        hv_->deliverVirtIrq(*ch);
                }
            }
        });
    });
    if (iommu_) {
        // Whole-device accesses (interrupt bit vectors) act on behalf of
        // the hypervisor.
        iommu_->bindDevice(i, mem::kDomHypervisor);
    }
}

void
System::buildNative()
{
    vmm::Domain &native = hv_->createDomain(vmm::Domain::Kind::kGuest,
                                            nm("native"));
    guests_.push_back(&native);

    for (std::uint32_t i = 0; i < cfg_.numNics; ++i) {
        auto mac = guestMac(0, i);
        nativeDrivers_.push_back(std::make_unique<os::NativeDriver>(
            ctx_, nm("natdrv" + std::to_string(i)), native, *intelNics_[i],
            cfg_.costs, os::NativeDriver::IrqRoute::kDirect, mac));
        nativeDrivers_.back()->attach();
        guestDevs_.push_back(nativeDrivers_.back().get());
        stacks_.push_back(std::make_unique<os::NetStack>(
            ctx_, nm("stack0." + std::to_string(i)), native,
            *nativeDrivers_.back(), cfg_.costs));
        if (peers_[i])
            stacks_.back()->setDefaultDst(peers_[i]->mac());
        if (cfg_.transportKind == TransportKind::kTcp)
            stacks_.back()->enableTcp(cfg_.tcpParams);
        workload::TrafficApp::Params ap;
        ap.connections = cfg_.connectionsPerVif;
        ap.transmit = cfg_.transmitDir;
        ap.rpcServer = cfg_.workload.hasRpc();
        apps_.push_back(std::make_unique<workload::TrafficApp>(
            ctx_, nm("app0." + std::to_string(i)), *stacks_.back(),
            cfg_.costs, ap));
    }
}

void
System::buildXen()
{
    driverDom_ = &hv_->createDomain(vmm::Domain::Kind::kDriver,
                                    nm("dom0"));
    for (std::uint32_t g = 0; g < cfg_.numGuests; ++g)
        guests_.push_back(&hv_->createDomain(
            vmm::Domain::Kind::kGuest, nm("guest" + std::to_string(g))));

    if (cfg_.nicKind == NicKind::kRice)
        prot_ = std::make_unique<DmaProtection>(ctx_, *hv_, cfg_.costs,
                                                /*enabled=*/true);

    for (std::uint32_t i = 0; i < cfg_.numNics; ++i) {
        os::NetDevice *phys = nullptr;
        auto drv_mac = net::MacAddr::fromId(cfg_.hostId * 0x00100000u +
                                            0x020000u + i);
        if (cfg_.nicKind == NicKind::kIntel) {
            nativeDrivers_.push_back(std::make_unique<os::NativeDriver>(
                ctx_, nm("dom0drv" + std::to_string(i)), *driverDom_,
                *intelNics_[i], cfg_.costs,
                os::NativeDriver::IrqRoute::kViaHypervisor, drv_mac));
            nativeDrivers_.back()->attach();
            // The bridge needs frames destined to guest MACs.
            intelNics_[i]->setPromiscuous(true);
            phys = nativeDrivers_.back().get();
        } else {
            CdnaNic &nic = *cdnaNics_[i];
            wireCdnaIsr(i);
            auto cxt = nic.allocContext(driverDom_->id(), drv_mac);
            SIM_ASSERT(cxt.has_value(), "no context for driver domain");
            mem::PageNum txp = mem_->allocOne(driverDom_->id());
            mem::PageNum rxp = mem_->allocOne(driverDom_->id());
            mem::PageNum stp = mem_->allocOne(driverDom_->id());
            nic.configureContextRings(*cxt, 256, mem::addrOf(txp), 256,
                                      mem::addrOf(rxp));
            nic.setStatusPage(*cxt, mem::addrOf(stp));
            drvDomCdnaDrivers_.push_back(std::make_unique<CdnaGuestDriver>(
                ctx_, nm("dom0cdna" + std::to_string(i)), *driverDom_, nic,
                *cxt, *prot_, cfg_.costs, drv_mac));
            CdnaGuestDriver *drv = drvDomCdnaDrivers_.back().get();
            cxtChannels_[i][*cxt] = &hv_->createChannel(
                *driverDom_, cfg_.costs.irqEntry,
                [drv] { drv->handleIrq(); });
            drv->attach();
            if (iommu_)
                iommu_->bindContext(i, *cxt, driverDom_->id());
            // Software virtualization: the driver domain's context must
            // accept frames for every guest MAC, since all traffic is
            // routed through the bridge.
            nic.setPromiscuousContext(*cxt);
            phys = drv;
        }
        ddns_.push_back(std::make_unique<os::DriverDomainNet>(
            ctx_, nm("ddn" + std::to_string(i)), *driverDom_, *phys,
            cfg_.costs));
        ddns_.back()->setRxCopyMode(cfg_.xenRxCopyMode);

        for (std::uint32_t g = 0; g < cfg_.numGuests; ++g) {
            os::XenVif &vif = ddns_.back()->createVif(*guests_[g],
                                                      guestMac(g, i));
            guestDevs_.push_back(&vif);
            stacks_.push_back(std::make_unique<os::NetStack>(
                ctx_,
                nm("stack" + std::to_string(g) + "." + std::to_string(i)),
                *guests_[g], vif, cfg_.costs));
            if (peers_[i])
                stacks_.back()->setDefaultDst(peers_[i]->mac());
            if (cfg_.transportKind == TransportKind::kTcp)
                stacks_.back()->enableTcp(cfg_.tcpParams);
            workload::TrafficApp::Params ap;
            ap.connections = cfg_.connectionsPerVif;
            ap.transmit = cfg_.transmitDir;
            ap.rpcServer = cfg_.workload.hasRpc();
            apps_.push_back(std::make_unique<workload::TrafficApp>(
                ctx_,
                nm("app" + std::to_string(g) + "." + std::to_string(i)),
                *stacks_.back(), cfg_.costs, ap));
        }
    }
}

void
System::buildCdna()
{
    driverDom_ = &hv_->createDomain(vmm::Domain::Kind::kDriver,
                                    nm("dom0"));
    for (std::uint32_t g = 0; g < cfg_.numGuests; ++g)
        guests_.push_back(&hv_->createDomain(
            vmm::Domain::Kind::kGuest, nm("guest" + std::to_string(g))));

    prot_ = std::make_unique<DmaProtection>(ctx_, *hv_, cfg_.costs,
                                            cfg_.dmaProtection);

    for (std::uint32_t i = 0; i < cfg_.numNics; ++i) {
        wireCdnaIsr(i);
        CdnaNic &nic = *cdnaNics_[i];
        if (cfg_.ctxOversub) {
            pagers_.push_back(std::make_unique<ContextPager>(
                ctx_, nm("pager" + std::to_string(i)), *hv_, nic, cfg_.costs,
                cfg_.ctxEvictPolicy));
            ContextPager *pager = pagers_.back().get();
            nic.setPageFaultHandler(
                [pager](CdnaNic::ContextId c) { pager->onTrap(c); });
            pager->setEvictedHook([this, i](CdnaNic::ContextId c) {
                // Wake the evicted guest's driver so it collects the
                // completion records that landed during the quiesce.
                vmm::EventChannel *ch = cxtChannels_[i][c];
                if (ch)
                    hv_->deliverVirtIrq(*ch);
            });
        }
        for (std::uint32_t g = 0; g < cfg_.numGuests; ++g) {
            vmm::Domain &guest = *guests_[g];
            auto mac = guestMac(g, i);
            auto cxt = nic.allocContext(guest.id(), mac);
            if (!cxt.has_value()) {
                // Clear diagnostic instead of an assert: the 33rd CDNA
                // guest is a configuration error unless the virtual
                // context layer is enabled.
                throw std::runtime_error(
                    "CDNA NIC '" + nic.name() + "': out of hardware "
                    "contexts (" +
                    std::to_string(nic.params().numContexts) +
                    ") allocating guest '" + guest.name() +
                    "'; enable virtual-context oversubscription "
                    "(SystemConfig::oversubscribed) to run more guests "
                    "than physical contexts");
            }
            mem::PageNum txp = mem_->allocOne(guest.id());
            mem::PageNum rxp = mem_->allocOne(guest.id());
            mem::PageNum stp = mem_->allocOne(guest.id());
            nic.configureContextRings(*cxt, 256, mem::addrOf(txp), 256,
                                      mem::addrOf(rxp));
            nic.setStatusPage(*cxt, mem::addrOf(stp));

            guestCdnaDrivers_.push_back(std::make_unique<CdnaGuestDriver>(
                ctx_,
                nm("cdnadrv" + std::to_string(g) + "." +
                   std::to_string(i)),
                guest, nic, *cxt, *prot_, cfg_.costs, mac));
            CdnaGuestDriver *drv = guestCdnaDrivers_.back().get();
            cxtChannels_[i][*cxt] = &hv_->createChannel(
                guest, cfg_.costs.irqEntry, [drv] { drv->handleIrq(); });
            drv->attach();
            if (iommu_ &&
                cfg_.iommuMode == mem::Iommu::Mode::kPerContext)
                iommu_->bindContext(i, *cxt, guest.id());

            guestDevs_.push_back(drv);
            stacks_.push_back(std::make_unique<os::NetStack>(
                ctx_,
                nm("stack" + std::to_string(g) + "." + std::to_string(i)),
                guest, *drv, cfg_.costs));
            if (peers_[i])
                stacks_.back()->setDefaultDst(peers_[i]->mac());
            if (cfg_.transportKind == TransportKind::kTcp)
                stacks_.back()->enableTcp(cfg_.tcpParams);
            workload::TrafficApp::Params ap;
            ap.connections = cfg_.connectionsPerVif;
            ap.transmit = cfg_.transmitDir;
            ap.rpcServer = cfg_.workload.hasRpc();
            apps_.push_back(std::make_unique<workload::TrafficApp>(
                ctx_,
                nm("app" + std::to_string(g) + "." + std::to_string(i)),
                *stacks_.back(), cfg_.costs, ap));
        }
    }
}

void
System::buildSwpt()
{
    // dom0 exists as the control domain only (so driver-domain fault
    // plans compose); the datapath never touches it -- descriptor
    // validation runs in the hypervisor itself.
    driverDom_ = &hv_->createDomain(vmm::Domain::Kind::kDriver,
                                    nm("dom0"));
    for (std::uint32_t g = 0; g < cfg_.numGuests; ++g)
        guests_.push_back(&hv_->createDomain(
            vmm::Domain::Kind::kGuest, nm("guest" + std::to_string(g))));

    for (std::uint32_t i = 0; i < cfg_.numNics; ++i) {
        swptValidators_.push_back(std::make_unique<vmm::SwptValidator>(
            ctx_, nm("swptval" + std::to_string(i)), *hv_,
            *intelNics_[i], cfg_.costs));
        vmm::SwptValidator &val = *swptValidators_.back();
        val.attach();
        if (iommu_) {
            // The shared NIC DMAs on the hypervisor's behalf: only
            // validated (hypervisor grant-mapped) pages are reachable.
            iommu_->bindDevice(i, mem::kDomHypervisor);
        }

        for (std::uint32_t g = 0; g < cfg_.numGuests; ++g) {
            vmm::Domain &guest = *guests_[g];
            auto mac = guestMac(g, i);
            swptDrivers_.push_back(std::make_unique<os::SwptDriver>(
                ctx_,
                nm("swptdrv" + std::to_string(g) + "." +
                   std::to_string(i)),
                guest, val, cfg_.costs, mac));
            os::SwptDriver *drv = swptDrivers_.back().get();
            drv->attach();

            guestDevs_.push_back(drv);
            stacks_.push_back(std::make_unique<os::NetStack>(
                ctx_,
                nm("stack" + std::to_string(g) + "." + std::to_string(i)),
                guest, *drv, cfg_.costs));
            if (peers_[i])
                stacks_.back()->setDefaultDst(peers_[i]->mac());
            if (cfg_.transportKind == TransportKind::kTcp)
                stacks_.back()->enableTcp(cfg_.tcpParams);
            workload::TrafficApp::Params ap;
            ap.connections = cfg_.connectionsPerVif;
            ap.transmit = cfg_.transmitDir;
            ap.rpcServer = cfg_.workload.hasRpc();
            apps_.push_back(std::make_unique<workload::TrafficApp>(
                ctx_,
                nm("app" + std::to_string(g) + "." + std::to_string(i)),
                *stacks_.back(), cfg_.costs, ap));
        }
    }
}

void
System::startTimers()
{
    sim::Time period = sim::kSecond / cfg_.costs.timerHz;
    sim::Time cost = cfg_.costs.timerTickCost;
    for (const auto &dom : hv_->domains())
        domainTimerStopped_.resize(
            std::max<std::size_t>(domainTimerStopped_.size(),
                                  dom->id() + 1),
            0);
    for (const auto &dom : hv_->domains()) {
        vmm::Domain *d = dom.get();
        // The System owns the tick callback; the lambda captures a raw
        // pointer to reschedule itself without a shared_ptr cycle.  A
        // killed domain's tick stops rescheduling (killGuest).
        timerTicks_.push_back(std::make_unique<std::function<void()>>());
        std::function<void()> *tick = timerTicks_.back().get();
        *tick = [this, d, period, cost, tick] {
            if (domainTimerStopped_[d->id()])
                return;
            d->vcpu().post(cpu::Bucket::kOs, cost);
            ctx_.events().schedule(period, *tick);
        };
        sim::Time phase = sim::microseconds(137.0) * d->id();
        ctx_.events().schedule(phase + period, *tick);
    }
}

void
System::start()
{
    if (started_)
        return;
    started_ = true;
    for (auto &app : apps_)
        app->start();
    if (!cfg_.workload.empty()) {
        // Declarative workload: each local peer runs the spec against
        // the guests' MACs (or the spec's explicit targets), started
        // once the guests have had a moment to post RX buffers.  The
        // system seed replaces the spec seed so sweeps that vary only
        // the seed stay deterministic without touching the spec.
        for (std::uint32_t i = 0; i < cfg_.numNics; ++i) {
            net::TrafficPeer *p = peers_[i].get();
            if (!p)
                continue; // external fabric: the topology drives sources
            net::workload::WorkloadSpec spec = cfg_.workload;
            spec.seed = cfg_.seed;
            if (spec.targets.empty()) {
                if (cfg_.mode == IoMode::kNative) {
                    spec.targets.push_back(guestMac(0, i));
                } else {
                    for (std::uint32_t g = 0; g < cfg_.numGuests; ++g)
                        spec.targets.push_back(guestMac(g, i));
                }
            }
            ctx_.events().schedule(sim::milliseconds(1.0),
                                   [p, spec = std::move(spec)] {
                                       p->applyWorkload(spec);
                                   });
        }
    } else if (!cfg_.transmitDir) {
        // Receive experiments: the peer floods the guests' MACs at line
        // rate once the guests have had a moment to post RX buffers.
        for (std::uint32_t i = 0; i < cfg_.numNics; ++i) {
            std::vector<net::MacAddr> dsts;
            if (cfg_.mode == IoMode::kNative) {
                dsts.push_back(guestMac(0, i));
            } else {
                for (std::uint32_t g = 0; g < cfg_.numGuests; ++g)
                    dsts.push_back(guestMac(g, i));
            }
            net::TrafficPeer *p = peers_[i].get();
            if (!p)
                continue; // external fabric: the topology drives sources
            net::workload::WorkloadSpec flood;
            flood.toward(std::move(dsts))
                .withClass(net::workload::FlowClass::saturating());
            ctx_.events().schedule(sim::milliseconds(1.0),
                                   [p, flood = std::move(flood)] {
                                       p->applyWorkload(flood);
                                   });
        }
    }
}

System::Snapshot
System::snapshot() const
{
    Snapshot s;
    for (const auto &p : peers_) {
        if (!p)
            continue;
        s.peerRxPayload += p->payloadDelivered();
        s.rxDropsBadCsum += p->rxDropsBadCsum();
        if (const auto *e = p->engine()) {
            s.rpcRequests += e->rpcRequests();
            s.rpcResponses += e->rpcResponses();
            s.rpcTimeouts += e->rpcTimeouts();
            s.flowsStarted += e->flowsStarted();
            s.flowsCompleted += e->flowsCompleted();
        }
        if (auto *t = p->tcp()) {
            s.tcpRetrans += t->retransSegs();
            s.tcpFastRtx += t->fastRetransmits();
            s.tcpRtos += t->rtoEvents();
            s.tcpDupAcks += t->dupAcksRx();
        }
    }
    for (const auto &st : stacks_) {
        s.stackRxBytes += st->rxBytes();
        s.rxDropsBadCsum += st->rxDropsBadCsum();
        s.txBacklogPeak = std::max(s.txBacklogPeak, st->txBacklogPeak());
        s.txBacklogNow += st->txBacklogDepth();
        if (auto *t = st->tcp()) {
            s.tcpRetrans += t->retransSegs();
            s.tcpFastRtx += t->fastRetransmits();
            s.tcpRtos += t->rtoEvents();
            s.tcpDupAcks += t->dupAcksRx();
        }
    }
    // Raw payload carried on the wire in the goodput direction: what
    // the NIC ports injected (tx), or what the far peers injected /
    // the NIC ports were delivered (rx).
    for (std::size_t i = 0; i < nicPorts_.size(); ++i) {
        if (cfg_.transmitDir)
            s.wirePayload += nicPorts_[i]->payloadCarried();
        else
            s.wirePayload += peers_[i]
                                 ? peers_[i]->port().payloadCarried()
                                 : nicPorts_[i]->payloadDelivered();
    }

    s.perGuestBytes.assign(guests_.size(), 0);
    for (std::size_t g = 0; g < guests_.size(); ++g) {
        for (std::uint32_t i = 0; i < cfg_.numNics; ++i) {
            // Plumbing is laid out NIC-major: index = nic*guests + guest.
            std::size_t idx = static_cast<std::size_t>(i) * guests_.size() + g;
            if (idx >= stacks_.size())
                continue;
            if (cfg_.transmitDir) {
                if (!peers_[i])
                    continue; // cross-host tx is measured at the receiver
                auto mac = cfg_.mode == IoMode::kNative
                               ? guestMac(0, i)
                               : guestMac(static_cast<std::uint32_t>(g), i);
                auto it = peers_[i]->receivedBySrc().find(mac);
                if (it != peers_[i]->receivedBySrc().end())
                    s.perGuestBytes[g] += it->second;
            } else {
                s.perGuestBytes[g] += stacks_[idx]->rxBytes();
            }
        }
    }

    if (driverDom_)
        s.drvVirtIrqs = driverDom_->virtIrqCount();
    for (const auto *g : guests_)
        s.guestVirtIrqs += g->virtIrqCount();

    std::uint64_t phys = 0;
    for (const auto &n : intelNics_)
        phys += n->irqCount();
    for (const auto &n : cdnaNics_)
        phys += n->irqCount();
    s.physIrqs = phys;
    s.hypercalls = hv_->hypercallCount();
    s.switches = cpu_->domainSwitches();
    s.faults = hv_->faultCount();
    s.violations = mem_->violationCount();
    for (const auto &n : intelNics_) {
        s.rxDropsNoDesc += n->rxDropNoDesc();
        s.rxDropsNoBuf += n->rxDropNoBuf();
        s.rxDropsFilter += n->rxDropFilter();
    }
    for (const auto &n : cdnaNics_) {
        s.rxDropsNoDesc += n->rxDropNoDesc();
        s.rxDropsNoBuf += n->rxDropNoBuf();
        s.rxDropsFilter += n->rxDropFilter();
    }
    if (faults_) {
        s.faultFramesDropped = faults_->framesDropped();
        s.faultFramesCorrupted = faults_->framesCorrupted();
        s.faultFramesDuplicated = faults_->framesDuplicated();
        s.faultDmaDelays = faults_->dmaDelays();
        s.firmwareStalls = faults_->firmwareStalls();
        s.guestKills = faults_->guestKills();
        s.mailboxTimeouts = faults_->mailboxTimeouts();
        s.ringResyncs = faults_->ringResyncs();
        s.domKills = faults_->driverDomainKills();
        s.fwReboots = faults_->firmwareReboots();
        s.feReconnects = faults_->frontendReconnects();
    }
    const auto &grants = hv_->grants();
    s.grantsRevoked = grants.revokedGrants();
    s.pagesQuarantined = grants.quarantineAdmissions();
    s.quarantineReleases = grants.quarantineReleases();
    for (const auto &n : cdnaNics_) {
        s.mailboxThrottled += n->mailboxThrottled();
        s.cxtPageTraps += n->pageTraps();
        s.cxtEvictions += n->pageEvictions();
        s.cxtPageIns += n->pageIns();
        s.cxtResidentPeak += n->residentPeak();
    }
    for (const auto &v : swptValidators_) {
        s.swptDoorbellTraps += v->doorbellTraps();
        s.swptDescValidated += v->descValidated();
        s.swptDescRejected += v->descRejected();
        s.swptValidationPs +=
            static_cast<std::uint64_t>(v->validationTime());
    }
    for (const auto &d : ddns_) {
        s.outagePacketsLost += d->outageRxDrops();
        for (const auto &vif : d->vifs())
            s.outagePacketsLost += vif->txLostCrash();
    }
    for (net::Port *np : nicPorts_) {
        s.switchDrops += np->egressDrops();
        s.switchDropBytes += np->egressDropBytes();
        s.switchQueuePeak = std::max(s.switchQueuePeak,
                                     np->queuePeakBytes());
    }
    return s;
}

Report
System::run(sim::Time warmup, sim::Time measure)
{
    start();
    auto &eq = ctx_.events();
    eq.runUntil(eq.now() + warmup);
    beginMeasurement();
    eq.runUntil(eq.now() + measure);
    return endMeasurement(measure);
}

void
System::beginMeasurement()
{
    cpu_->resetAccounting();
    measureBegin_ = snapshot();
}

Report
System::endMeasurement(sim::Time window)
{
    cpu_->syncIdle();
    return buildReport(measureBegin_, snapshot(), window);
}

Report
System::buildReport(const Snapshot &a, const Snapshot &b, sim::Time window)
{
    Report r;
    r.label = cfg_.effectiveLabel();
    r.window = window;
    double secs = sim::toSeconds(window);

    std::uint64_t goodput_bytes = cfg_.transmitDir
        ? b.peerRxPayload - a.peerRxPayload
        : b.stackRxBytes - a.stackRxBytes;
    r.mbps = static_cast<double>(goodput_bytes) * 8.0 / secs / 1.0e6;
    r.wireMbps = static_cast<double>(b.wirePayload - a.wirePayload) * 8.0 /
                 secs / 1.0e6;

    const auto &prof = cpu_->profile();
    auto pct = [&](sim::Time t) {
        return 100.0 * static_cast<double>(t) /
               static_cast<double>(window);
    };
    r.hypPct = pct(prof.hypervisor());
    r.idlePct = pct(prof.idle());
    if (driverDom_) {
        r.drvOsPct = pct(prof.domainTime(driverDom_->id(),
                                         cpu::Bucket::kOs));
        r.drvUserPct = pct(prof.domainTime(driverDom_->id(),
                                           cpu::Bucket::kUser));
    }
    for (const auto *g : guests_) {
        r.guestOsPct += pct(prof.domainTime(g->id(), cpu::Bucket::kOs));
        r.guestUserPct += pct(prof.domainTime(g->id(),
                                              cpu::Bucket::kUser));
    }

    r.drvIntrPerSec =
        static_cast<double>(b.drvVirtIrqs - a.drvVirtIrqs) / secs;
    r.guestIntrPerSec =
        static_cast<double>(b.guestVirtIrqs - a.guestVirtIrqs) / secs;
    r.physIrqPerSec = static_cast<double>(b.physIrqs - a.physIrqs) / secs;
    r.hypercallPerSec =
        static_cast<double>(b.hypercalls - a.hypercalls) / secs;
    r.domainSwitchPerSec =
        static_cast<double>(b.switches - a.switches) / secs;
    r.protectionFaults = b.faults - a.faults;
    r.dmaViolations = b.violations - a.violations;
    r.rxDropsNoDesc = b.rxDropsNoDesc - a.rxDropsNoDesc;
    r.rxDropsNoBuf = b.rxDropsNoBuf - a.rxDropsNoBuf;
    r.rxDropsFilter = b.rxDropsFilter - a.rxDropsFilter;
    r.faultFramesDropped = b.faultFramesDropped - a.faultFramesDropped;
    r.faultFramesCorrupted =
        b.faultFramesCorrupted - a.faultFramesCorrupted;
    r.faultFramesDuplicated =
        b.faultFramesDuplicated - a.faultFramesDuplicated;
    r.faultDmaDelays = b.faultDmaDelays - a.faultDmaDelays;
    r.firmwareStalls = b.firmwareStalls - a.firmwareStalls;
    r.guestKills = b.guestKills - a.guestKills;
    r.mailboxTimeouts = b.mailboxTimeouts - a.mailboxTimeouts;
    r.ringResyncs = b.ringResyncs - a.ringResyncs;
    r.rxDropsBadCsum = b.rxDropsBadCsum - a.rxDropsBadCsum;
    // The peak is a lifetime high-watermark, not a windowed delta.
    r.txBacklogPeak = b.txBacklogPeak;
    r.txBacklogNow = b.txBacklogNow;
    r.tcpRetransSegs = b.tcpRetrans - a.tcpRetrans;
    r.tcpFastRetransmits = b.tcpFastRtx - a.tcpFastRtx;
    r.tcpRtoEvents = b.tcpRtos - a.tcpRtos;
    r.tcpDupAcks = b.tcpDupAcks - a.tcpDupAcks;
    r.driverDomainKills = b.domKills - a.domKills;
    r.firmwareReboots = b.fwReboots - a.fwReboots;
    r.feReconnects = b.feReconnects - a.feReconnects;
    r.grantsRevoked = b.grantsRevoked - a.grantsRevoked;
    r.pagesQuarantined = b.pagesQuarantined - a.pagesQuarantined;
    r.quarantineReleased = b.quarantineReleases - a.quarantineReleases;
    r.mailboxThrottled = b.mailboxThrottled - a.mailboxThrottled;
    r.outagePacketsLost = b.outagePacketsLost - a.outagePacketsLost;
    r.cxtPageTraps = b.cxtPageTraps - a.cxtPageTraps;
    r.cxtEvictions = b.cxtEvictions - a.cxtEvictions;
    r.cxtPageIns = b.cxtPageIns - a.cxtPageIns;
    // Residency peak is a high-water mark over the whole run, not a
    // windowed delta (like tx_backlog_peak).
    r.cxtResidentPeak = b.cxtResidentPeak;
    r.switchDrops = b.switchDrops - a.switchDrops;
    r.switchDropBytes = b.switchDropBytes - a.switchDropBytes;
    // Like the other peaks, a lifetime high-watermark.
    r.switchQueuePeakBytes = b.switchQueuePeak;
    r.swptDoorbellTraps = b.swptDoorbellTraps - a.swptDoorbellTraps;
    r.swptDescValidated = b.swptDescValidated - a.swptDescValidated;
    r.swptDescRejected = b.swptDescRejected - a.swptDescRejected;
    r.swptValidationUs =
        static_cast<double>(b.swptValidationPs - a.swptValidationPs) /
        1.0e6;

    r.perGuestMbps.resize(guests_.size());
    for (std::size_t g = 0; g < guests_.size(); ++g) {
        r.perGuestMbps[g] =
            static_cast<double>(b.perGuestBytes[g] - a.perGuestBytes[g]) *
            8.0 / secs / 1.0e6;
    }

    // Availability (absolute, not windowed: an outage is a property of
    // the whole run).  Zero-filled without an outage fault plan.
    r.perGuestDowntimeUs.assign(guests_.size(), 0.0);
    r.perGuestTtfpUs.assign(guests_.size(), 0.0);
    if (avail_) {
        for (std::uint32_t g = 0; g < avail_->guests(); ++g) {
            r.perGuestDowntimeUs[g] = avail_->downtimeUs(g);
            r.perGuestTtfpUs[g] = avail_->ttfpUs(g);
        }
    }

    // End-to-end latency: peers measure transmitted data, guest stacks
    // measure received data.
    sim::Histogram merged;
    double lat_sum = 0.0;
    std::uint64_t lat_n = 0;
    if (cfg_.transmitDir) {
        for (const auto &p : peers_) {
            if (!p)
                continue;
            merged.merge(p->latencyHist());
            lat_sum += p->latency().sum();
            lat_n += p->latency().count();
        }
    } else {
        for (const auto &st : stacks_) {
            merged.merge(st->rxLatencyHist());
            lat_sum += st->rxLatency().sum();
            lat_n += st->rxLatency().count();
        }
    }
    if (lat_n > 0) {
        r.latencyMeanUs = lat_sum / static_cast<double>(lat_n);
        r.latencyP50Us = static_cast<double>(merged.quantile(0.5));
        r.latencyP99Us = static_cast<double>(merged.quantile(0.99));
    }

    // RPC activity: rates are windowed deltas; tail quantiles come
    // from the engines' fine-grained cumulative histograms (like the
    // data-frame latency above, they include warmup).
    r.rpcRequests = b.rpcRequests - a.rpcRequests;
    r.rpcResponses = b.rpcResponses - a.rpcResponses;
    r.rpcTimeouts = b.rpcTimeouts - a.rpcTimeouts;
    r.flowsStarted = b.flowsStarted - a.flowsStarted;
    r.flowsCompleted = b.flowsCompleted - a.flowsCompleted;
    r.rpcOfferedRps = static_cast<double>(r.rpcRequests) / secs;
    r.rpcAchievedRps = static_cast<double>(r.rpcResponses) / secs;
    sim::Histogram rpc_hist(net::workload::kRpcHistBuckets,
                            net::workload::kRpcHistSubBits);
    double rpc_sum = 0.0;
    std::uint64_t rpc_n = 0;
    for (const auto &p : peers_) {
        if (!p)
            continue;
        if (const auto *e = p->engine()) {
            rpc_hist.merge(e->rpcLatencyHist());
            rpc_sum += e->rpcLatency().sum();
            rpc_n += e->rpcLatency().count();
        }
    }
    if (rpc_n > 0) {
        r.rpcLatMeanUs = rpc_sum / static_cast<double>(rpc_n);
        r.rpcLatP50Us = static_cast<double>(rpc_hist.quantile(0.5));
        r.rpcLatP99Us = static_cast<double>(rpc_hist.quantile(0.99));
        r.rpcLatP999Us = static_cast<double>(rpc_hist.quantile(0.999));
    }
    return r;
}

CdnaNic *
System::cdnaNic(std::uint32_t i)
{
    return i < cdnaNics_.size() ? cdnaNics_[i].get() : nullptr;
}

nic::IntelNic *
System::intelNic(std::uint32_t i)
{
    return i < intelNics_.size() ? intelNics_[i].get() : nullptr;
}

vmm::Domain *
System::guestDomain(std::uint32_t g)
{
    return g < guests_.size() ? guests_[g] : nullptr;
}

void
System::scheduleFaultEvents()
{
    for (const auto &fs : cfg_.faults.firmwareStalls) {
        if (fs.nic >= cdnaNics_.size())
            continue; // no CDNA NIC with that index in this mode
        CdnaNic *nic = cdnaNics_[fs.nic].get();
        ctx_.events().schedule(
            sim::milliseconds(fs.atMs), [this, nic, fs] {
                faults_->noteFirmwareStall();
                nic->stallFirmware(sim::milliseconds(fs.durMs),
                                   fs.watchdogReset);
            });
    }
    for (const auto &gk : cfg_.faults.guestKills)
        ctx_.events().schedule(sim::milliseconds(gk.atMs),
                               [this, g = gk.guest] { killGuest(g); });
    for (const auto &dk : cfg_.faults.driverDomainKills)
        ctx_.events().schedule(sim::milliseconds(dk.atMs),
                               [this] { killDriverDomain(); });
    for (const auto &fr : cfg_.faults.firmwareReboots)
        ctx_.events().schedule(sim::milliseconds(fr.atMs),
                               [this, nic = fr.nic]
                               { rebootNicFirmware(nic); });
}

void
System::setupAvailability()
{
    // The tracker (and the Xen frontend reconnection watchdogs) exist
    // only when the plan schedules an outage-class fault, so every
    // other configuration keeps its exact event sequence.
    if (cfg_.faults.driverDomainKills.empty() &&
        cfg_.faults.firmwareReboots.empty())
        return;
    auto guests = static_cast<std::uint32_t>(guests_.size());
    avail_ = std::make_unique<AvailabilityTracker>(ctx_, guests);

    // Per-guest progress: any stack of guest g (on any NIC) moving
    // data end-to-end counts, which is what makes a CDNA guest with a
    // surviving path score zero downtime.
    std::size_t per_nic = cfg_.mode == IoMode::kNative ? 1 : guests;
    for (std::size_t idx = 0; idx < stacks_.size(); ++idx) {
        auto g = static_cast<std::uint32_t>(idx % per_nic);
        stacks_[idx]->setProgressHook(
            [this, g] { avail_->noteProgress(g); });
    }

    if (cfg_.mode == IoMode::kXen &&
        !cfg_.faults.driverDomainKills.empty()) {
        for (auto &ddn : ddns_) {
            const auto &vifs = ddn->vifs();
            for (std::size_t g = 0; g < vifs.size(); ++g) {
                os::XenVif *vif = vifs[g].get();
                vif->enableReconnect();
                vif->setReconnectedHook(
                    [this, g = static_cast<std::uint32_t>(g)]
                    { avail_->noteRecovery(g); });
            }
        }
    }
}

bool
System::killDriverDomain()
{
    if (!driverDom_ || driverDomainDown_ || cfg_.mode == IoMode::kNative)
        return false;
    driverDomainDown_ = true;
    if (faults_)
        faults_->noteDriverDomainKill();
    if (avail_)
        for (std::uint32_t g = 0; g < avail_->guests(); ++g)
            avail_->noteOutageStart(g);

    if (cfg_.mode == IoMode::kXen) {
        // The backends die with the domain; frontends detect it via
        // their watchdogs and reconnect after the restart below.
        for (auto &ddn : ddns_)
            ddn->crash();
        // dom0's qdisc (packets bridged but not yet posted) lived in
        // the dead domain's memory, and the hypervisor quiesces the
        // Intel TX engine -- a crashed domain's device must stop
        // referencing pages it had grant-mapped.  RX keeps landing in
        // device-owned buffers; the dead bridge discards it.
        for (auto &nd : nativeDrivers_)
            nd->dropQdisc();
        for (auto &inic : intelNics_)
            inic->quiesceTx();
        // dom0's physical CDNA driver (the Xen/RiceNIC rows) dies too:
        // its context is revoked and a fresh one is negotiated at
        // restart.  The Intel native driver itself is modeled as
        // surviving (its ring state lives in the NIC, not in dom0
        // memory), so no ring renegotiation happens at restart.
        for (std::size_t i = 0; i < drvDomCdnaDrivers_.size(); ++i) {
            CdnaGuestDriver *drv = drvDomCdnaDrivers_[i].get();
            CdnaNic::ContextId cxt = drv->context();
            drv->detach();
            cxtChannels_[i][cxt] = nullptr;
            cdnaNics_[i]->revokeContext(cxt);
            if (iommu_)
                iommu_->unbindContext(static_cast<std::uint32_t>(i), cxt);
        }
    }
    if (cfg_.mode == IoMode::kSwPassthrough) {
        // The validator is the dom0-equivalent: descriptor auditing
        // stops, so doorbells latch unprocessed, completions sit in the
        // NIC, and the shared RX ring runs dry.  Everything drains at
        // restart.
        for (auto &v : swptValidators_)
            v->stall();
    }
    // CDNA mode: guests drive their own contexts, so the kill has no
    // datapath effect at all -- exactly the paper's failure-domain
    // argument.

    // Revoke every grant mapping the dead domain held.  Pages with DMA
    // possibly in flight sit in quarantine until the drain delay
    // passes; only then do they return to the allocator.
    hv_->grants().revokeMappingsOf(driverDom_->id());
    ctx_.events().schedule(cfg_.costs.dmaQuarantineDrain,
                           [this] { hv_->grants().drainQuarantine(); });

    ctx_.events().schedule(cfg_.costs.driverDomainReboot,
                           [this] { restartDriverDomain(); });
    return true;
}

void
System::restartDriverDomain()
{
    driverDomainDown_ = false;
    if (cfg_.mode == IoMode::kXen) {
        for (std::size_t i = 0; i < drvDomCdnaDrivers_.size(); ++i) {
            // Fresh context for the rebooted domain, then the driver
            // re-attaches from scratch (mirrors buildXen).
            CdnaNic &nic = *cdnaNics_[i];
            CdnaGuestDriver *drv = drvDomCdnaDrivers_[i].get();
            auto cxt = nic.allocContext(driverDom_->id(), drv->mac());
            SIM_ASSERT(cxt.has_value(),
                       "no context for restarted driver domain");
            mem::PageNum txp = mem_->allocOne(driverDom_->id());
            mem::PageNum rxp = mem_->allocOne(driverDom_->id());
            mem::PageNum stp = mem_->allocOne(driverDom_->id());
            nic.configureContextRings(*cxt, 256, mem::addrOf(txp), 256,
                                      mem::addrOf(rxp));
            nic.setStatusPage(*cxt, mem::addrOf(stp));
            cxtChannels_[i][*cxt] = &hv_->createChannel(
                *driverDom_, cfg_.costs.irqEntry,
                [drv] { drv->handleIrq(); });
            drv->rebind(*cxt);
            drv->attach();
            if (iommu_)
                iommu_->bindContext(static_cast<std::uint32_t>(i), *cxt,
                                    driverDom_->id());
            nic.setPromiscuousContext(*cxt);
        }
        for (auto &ddn : ddns_)
            ddn->restart();
    }
    if (cfg_.mode == IoMode::kSwPassthrough)
        for (auto &v : swptValidators_)
            v->restart();
    if (avail_ && (cfg_.mode == IoMode::kCdna ||
                   cfg_.mode == IoMode::kSwPassthrough)) {
        // No reconnection protocol to wait for: the control plane is
        // simply back.  (Xen guests note recovery at vif reconnect.)
        for (std::uint32_t g = 0; g < avail_->guests(); ++g)
            avail_->noteRecovery(g);
    }
    if (faults_)
        faults_->noteDriverDomainRestart();
}

bool
System::rebootNicFirmware(std::uint32_t nic)
{
    if (cfg_.mode == IoMode::kSwPassthrough) {
        if (nic >= swptValidators_.size())
            return false;
        // Full device reset of the shared IntelNic: in-flight TX is
        // dropped (attributed as zero-byte completions so guest TX
        // windows recover) and the validator re-rings its shadow queue
        // once the firmware is back.
        if (faults_)
            faults_->noteFirmwareReboot();
        if (avail_)
            for (std::uint32_t g = 0; g < avail_->guests(); ++g)
                avail_->noteOutageStart(g);
        swptValidators_[nic]->resetNic();
        ctx_.events().schedule(cfg_.costs.firmwareReboot, [this, nic] {
            swptValidators_[nic]->reconcileAfterReset();
            if (avail_)
                for (std::uint32_t g = 0; g < avail_->guests(); ++g)
                    avail_->noteRecovery(g);
        });
        return true;
    }
    if (nic >= cdnaNics_.size())
        return false; // no CDNA NIC with that index in this mode
    if (avail_)
        for (std::uint32_t g = 0; g < avail_->guests(); ++g)
            avail_->noteOutageStart(g);
    cdnaNics_[nic]->rebootFirmware(cfg_.costs.firmwareReboot,
                                   cfg_.costs.fwRebootReconcilePerContext);
    if (avail_) {
        // Recovery point: the firmware is back up (context
        // reconciliation adds microseconds on top).
        ctx_.events().schedule(cfg_.costs.firmwareReboot, [this] {
            for (std::uint32_t g = 0; g < avail_->guests(); ++g)
                avail_->noteRecovery(g);
        });
    }
    return true;
}

bool
System::killGuest(std::uint32_t guest)
{
    bool any = false;
    if (cfg_.mode == IoMode::kSwPassthrough) {
        for (std::uint32_t i = 0; i < cfg_.numNics; ++i) {
            os::SwptDriver *drv = swptDriver(guest, i);
            if (drv && !drv->detached()) {
                drv->detach();
                any = true;
            }
        }
    } else {
        for (std::uint32_t i = 0; i < cfg_.numNics; ++i)
            any = revokeGuestContext(guest, i) || any;
    }
    if (!any)
        return false;
    // Silence the dead guest's software: stop its workload, cancel
    // every pending transport timer (an armed TCP RTO or delayed ACK
    // would otherwise fire into the dead domain), and stop its timer
    // tick from rescheduling.
    for (std::uint32_t i = 0; i < cfg_.numNics; ++i) {
        app(guest, i).stop();
        stack(guest, i).shutdown();
    }
    if (guest < guests_.size()) {
        auto id = static_cast<std::size_t>(guests_[guest]->id());
        if (id < domainTimerStopped_.size())
            domainTimerStopped_[id] = 1;
    }
    if (faults_)
        faults_->noteGuestKill();
    return true;
}

bool
System::revokeGuestContext(std::uint32_t guest, std::uint32_t nic)
{
    CdnaGuestDriver *drv = cdnaDriver(guest, nic);
    if (!drv || drv->detached() || nic >= cdnaNics_.size())
        return false;
    CdnaNic::ContextId cxt = drv->context();
    drv->detach();
    cxtChannels_[nic][cxt] = nullptr;
    cdnaNics_[nic]->revokeContext(cxt);
    if (iommu_ && cfg_.iommuMode == mem::Iommu::Mode::kPerContext)
        iommu_->unbindContext(nic, cxt);
    return true;
}

vmm::SwptValidator *
System::swptValidator(std::uint32_t i)
{
    return i < swptValidators_.size() ? swptValidators_[i].get()
                                      : nullptr;
}

os::SwptDriver *
System::swptDriver(std::uint32_t guest, std::uint32_t nic)
{
    // NIC-major layout: index = nic * numGuests + guest.
    std::size_t idx =
        static_cast<std::size_t>(nic) * cfg_.numGuests + guest;
    return idx < swptDrivers_.size() ? swptDrivers_[idx].get() : nullptr;
}

CdnaGuestDriver *
System::cdnaDriver(std::uint32_t guest, std::uint32_t nic)
{
    // NIC-major layout: index = nic * numGuests + guest.
    std::size_t idx =
        static_cast<std::size_t>(nic) * cfg_.numGuests + guest;
    return idx < guestCdnaDrivers_.size() ? guestCdnaDrivers_[idx].get()
                                          : nullptr;
}

os::NetStack &
System::stack(std::uint32_t guest, std::uint32_t nic)
{
    std::size_t per_nic = cfg_.mode == IoMode::kNative ? 1 : cfg_.numGuests;
    return *stacks_.at(static_cast<std::size_t>(nic) * per_nic + guest);
}

workload::TrafficApp &
System::app(std::uint32_t guest, std::uint32_t nic)
{
    std::size_t per_nic = cfg_.mode == IoMode::kNative ? 1 : cfg_.numGuests;
    return *apps_.at(static_cast<std::size_t>(nic) * per_nic + guest);
}

SystemConfig
SystemConfig::native(std::uint32_t nics)
{
    SystemConfig cfg;
    cfg.mode = IoMode::kNative;
    cfg.nicKind = NicKind::kIntel;
    cfg.numGuests = 1;
    cfg.numNics = nics;
    return cfg;
}

SystemConfig
SystemConfig::xenIntel(std::uint32_t guests)
{
    SystemConfig cfg;
    cfg.mode = IoMode::kXen;
    cfg.nicKind = NicKind::kIntel;
    cfg.numGuests = guests;
    return cfg;
}

SystemConfig
SystemConfig::xenRice(std::uint32_t guests)
{
    SystemConfig cfg;
    cfg.mode = IoMode::kXen;
    cfg.nicKind = NicKind::kRice;
    cfg.numGuests = guests;
    return cfg;
}

SystemConfig
SystemConfig::cdna(std::uint32_t guests)
{
    SystemConfig cfg;
    cfg.mode = IoMode::kCdna;
    cfg.nicKind = NicKind::kRice;
    cfg.numGuests = guests;
    return cfg;
}

SystemConfig
SystemConfig::swPassthrough(std::uint32_t guests)
{
    SystemConfig cfg;
    cfg.mode = IoMode::kSwPassthrough;
    cfg.nicKind = NicKind::kIntel;
    cfg.numGuests = guests;
    return cfg;
}

std::string
SystemConfig::effectiveLabel() const
{
    if (!label.empty())
        return label;
    std::string base;
    switch (mode) {
      case IoMode::kNative:
        base = "native";
        break;
      case IoMode::kXen:
        base = nicKind == NicKind::kIntel ? "xen-intel" : "xen-ricenic";
        break;
      case IoMode::kCdna:
        base = "cdna";
        break;
      case IoMode::kSwPassthrough:
        base = "swpt";
        break;
    }
    base += transmitDir ? "/tx" : "/rx";
    if (transportKind == TransportKind::kTcp)
        base += "/tcp";
    if (mode == IoMode::kCdna && !dmaProtection)
        base += "/noprot";
    if (mode == IoMode::kCdna && ctxOversub)
        base += "/oversub";
    return base;
}

} // namespace cdna::core
