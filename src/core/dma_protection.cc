#include "core/dma_protection.hh"

#include <utility>

#include "sim/assert.hh"

namespace cdna::core {

DmaProtection::DmaProtection(sim::SimContext &ctx, vmm::Hypervisor &hv,
                             const CostModel &costs, bool enabled)
    : sim::SimObject(ctx, "dma-protection"),
      hv_(hv),
      costs_(costs),
      enabled_(enabled),
      nEnqueues_(stats().addCounter("enqueue_calls")),
      nDescs_(stats().addCounter("descriptors")),
      nPins_(stats().addCounter("pages_pinned")),
      nUnpins_(stats().addCounter("pages_unpinned")),
      nRejects_(stats().addCounter("rejects"))
{
}

DmaProtection::Handle
DmaProtection::registerRing(CdnaNic &nic, CdnaNic::ContextId cxt,
                            mem::DomainId dom, bool is_tx)
{
    auto rs = std::make_unique<RingState>();
    rs->nic = &nic;
    rs->cxt = cxt;
    rs->dom = dom;
    rs->isTx = is_tx;
    rings_.push_back(std::move(rs));
    return static_cast<Handle>(rings_.size() - 1);
}

DmaProtection::RingState &
DmaProtection::state(Handle h)
{
    SIM_ASSERT(h < rings_.size(), "bad protection handle");
    return *rings_[h];
}

const DmaProtection::RingState &
DmaProtection::state(Handle h) const
{
    SIM_ASSERT(h < rings_.size(), "bad protection handle");
    return *rings_[h];
}

std::uint64_t
DmaProtection::stamp(RingState &rs)
{
    std::uint64_t s = rs.nextSeqno++;
    std::uint64_t m = rs.nic->params().seqnoModulus;
    return m ? s % m : s;
}

std::uint64_t
DmaProtection::lazyUnpin(RingState &rs)
{
    std::uint32_t consumer = rs.isTx ? rs.nic->txConsumer(rs.cxt)
                                     : rs.nic->rxConsumer(rs.cxt);
    std::uint64_t pages = 0;
    while (rs.unpinnedUpTo != consumer && !rs.pinned.empty()) {
        for (const auto &e : rs.pinned.front()) {
            mem::PageNum first = mem::pageOf(e.addr);
            mem::PageNum last = mem::pageOf(e.addr + e.len - 1);
            for (mem::PageNum p = first; p <= last; ++p) {
                hv_.mem().putRef(p);
                ++pages;
            }
        }
        rs.pinned.pop_front();
        ++rs.unpinnedUpTo;
    }
    nUnpins_.inc(pages);
    return pages;
}

DmaProtection::Result
DmaProtection::doEnqueue(RingState &rs, std::vector<Request> &reqs,
                         bool validate)
{
    Result res;
    if (!rs.nic->contextAllocated(rs.cxt)) {
        // The context was revoked while this enqueue was queued behind
        // the hypercall (or vcpu) delay: its rings no longer exist, so
        // the whole batch faults without touching NIC state.
        res.fault = vmm::Fault::kBadContext;
        res.producer = rs.producer;
        return res;
    }
    nic::DescRing &ring = rs.isTx ? rs.nic->txRing(rs.cxt)
                                  : rs.nic->rxRing(rs.cxt);
    auto &memory = hv_.mem();

    for (auto &req : reqs) {
        // Ring-full check against descriptors not yet consumed.
        std::uint32_t consumer = rs.isTx ? rs.nic->txConsumer(rs.cxt)
                                         : rs.nic->rxConsumer(rs.cxt);
        if (rs.producer - consumer >= ring.size()) {
            res.fault = vmm::Fault::kRingFull;
            break;
        }

        if (validate) {
            bool owned = true;
            for (const auto &e : req.sg) {
                mem::PageNum first = mem::pageOf(e.addr);
                mem::PageNum last = mem::pageOf(e.addr + e.len - 1);
                for (mem::PageNum p = first; p <= last; ++p) {
                    // Owned or grant-mapped (driver domain enqueueing
                    // guests' granted packet pages).
                    if (!memory.dmaAccessibleBy(p, rs.dom)) {
                        owned = false;
                        break;
                    }
                }
                if (!owned)
                    break;
            }
            if (!owned) {
                nRejects_.inc();
                hv_.recordFault(rs.dom, vmm::Fault::kNotOwner);
                res.fault = vmm::Fault::kNotOwner;
                break;
            }
            // Pin every page for the lifetime of the DMA.
            for (const auto &e : req.sg) {
                mem::PageNum first = mem::pageOf(e.addr);
                mem::PageNum last = mem::pageOf(e.addr + e.len - 1);
                for (mem::PageNum p = first; p <= last; ++p) {
                    memory.getRef(p);
                    nPins_.inc();
                }
            }
            rs.pinned.push_back(req.sg);
        } else {
            // Track positions so unpin accounting stays aligned even
            // though nothing was pinned.
            rs.pinned.push_back({});
        }

        nic::DmaDescriptor desc;
        desc.sg = req.sg;
        desc.flags = nic::kDescValid | (rs.isTx ? nic::kDescEop : 0u);
        if (validate)
            desc.seqno = stamp(rs);
        ring.write(rs.producer, desc);
        if (req.pkt.has_value())
            ring.attachPacket(rs.producer, std::move(*req.pkt));
        ++rs.producer;
        ++res.accepted;
        nDescs_.inc();
    }
    res.producer = rs.producer;
    return res;
}

void
DmaProtection::enqueue(Handle h, std::vector<Request> reqs,
                       std::function<void(Result)> done)
{
    SIM_ASSERT(enabled_, "protected enqueue with protection disabled");
    nEnqueues_.inc();
    RingState &rs = state(h);

    // Cost: validate + pin each referenced page, stamp/copy each
    // descriptor, and the lazy unpin of completed descriptors.
    std::uint64_t pages = 0;
    for (const auto &r : reqs)
        for (const auto &e : r.sg)
            pages += mem::pageOf(e.addr + (e.len ? e.len - 1 : 0)) -
                     mem::pageOf(e.addr) + 1;

    // Estimate unpin volume for costing (actual unpin happens in body).
    std::uint32_t consumer = rs.isTx ? rs.nic->txConsumer(rs.cxt)
                                     : rs.nic->rxConsumer(rs.cxt);
    std::uint64_t to_unpin = consumer - rs.unpinnedUpTo;

    sim::Time cost =
        static_cast<sim::Time>(pages) *
            (costs_.protValidatePerPage + costs_.protPinPerPage) +
        static_cast<sim::Time>(reqs.size()) * costs_.protEnqueuePerDesc +
        static_cast<sim::Time>(to_unpin) * costs_.protUnpinPerPage;

    CDNA_TRACE_SPAN_ARG(ctx().tracer(), traceLane(), "enqueue", now(),
                        cost, "descriptors", reqs.size());
    hv_.hypercall(cost,
                  [this, h, reqs = std::move(reqs),
                   done = std::move(done)]() mutable {
        RingState &ring_state = state(h);
        lazyUnpin(ring_state);
        Result res = doEnqueue(ring_state, reqs, /*validate=*/true);
        if (done)
            done(res);
    });
}

DmaProtection::Result
DmaProtection::enqueueDirect(Handle h, std::vector<Request> reqs)
{
    nEnqueues_.inc();
    RingState &rs = state(h);
    // No validation, no pinning, no sequence numbers: the guest writes
    // the ring itself.  Positions are still tracked for completion
    // bookkeeping.
    Result res = doEnqueue(rs, reqs, /*validate=*/false);
    lazyUnpin(rs); // no-op pins, but advances unpin bookkeeping
    return res;
}

void
DmaProtection::syncUnpin(Handle h)
{
    lazyUnpin(state(h));
}

void
DmaProtection::unpinAll(Handle h)
{
    RingState &rs = state(h);
    std::uint64_t pages = 0;
    while (!rs.pinned.empty()) {
        for (const auto &e : rs.pinned.front()) {
            mem::PageNum first = mem::pageOf(e.addr);
            mem::PageNum last = mem::pageOf(e.addr + e.len - 1);
            for (mem::PageNum p = first; p <= last; ++p) {
                hv_.mem().putRef(p);
                ++pages;
            }
        }
        rs.pinned.pop_front();
        ++rs.unpinnedUpTo;
    }
    nUnpins_.inc(pages);
}

std::uint32_t
DmaProtection::producer(Handle h) const
{
    return state(h).producer;
}

} // namespace cdna::core
