#include "core/cli.hh"

#include <cstdio>
#include <cstdlib>

#include "core/fault_plan.hh"

namespace cdna::core {

namespace {

bool
parseU32(const std::string &s, std::uint32_t *out)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        return false;
    *out = static_cast<std::uint32_t>(v);
    return true;
}

bool
parseF(const std::string &s, double *out)
{
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

/** Everything the option handlers accumulate before the config exists. */
struct ParseState
{
    CliOptions opt;
    std::string mode = "cdna";
    std::string nic = "intel";
    std::string iommu = "none";
    std::string direction = "tx";
    bool protection = true;
    bool oversub = false;
    std::string evictPolicy = "lru";
    std::uint32_t guests = 1;
    std::uint32_t nics = 2;
    std::uint32_t connections = 2;
    std::string transport = "open";
    std::uint32_t warmupMs = 100;
    double seconds = 0.5;
    std::uint32_t seed = 1;
    double sampleUs = 0.0;
    FaultPlan faults;
    bool haveFaults = false;
};

using Handler = bool (*)(ParseState &, const std::string &, std::string *);

/** One table row: the public spec plus its parse action. */
struct Spec
{
    const char *name;    // "--mode"
    const char *argName; // metavariable, nullptr for flags
    const char *help;    // '\n' continues on an indented line
    const char *group;   // usage section
    Handler handle;      // value is empty for flags
};

bool
failWith(std::string *error, std::string msg)
{
    if (error)
        *error = std::move(msg);
    return false;
}

bool
rateArg(const char *flag, const std::string &v, double *out,
        std::string *error)
{
    if (!parseF(v, out) || *out < 0.0 || *out > 1.0)
        return failWith(error,
                        std::string(flag) + " needs a probability in [0,1]");
    return true;
}

// The single source of truth for the CLI surface.  cliUsage(), the
// parser, and cliOptionTable() all derive from this array, so adding a
// flag here is the whole job.
const Spec kSpecs[] = {
    // --- I/O architecture ------------------------------------------------
    {"--mode", "MODE", "native | xen | cdna | swpt (default cdna)",
     "I/O architecture",
     [](ParseState &st, const std::string &v, std::string *) {
         st.mode = v;
         return true;
     }},
    {"--nic", "KIND", "intel | rice (xen mode only; default intel)",
     "I/O architecture",
     [](ParseState &st, const std::string &v, std::string *) {
         st.nic = v;
         return true;
     }},
    {"--no-protection", nullptr, "disable CDNA DMA memory protection",
     "I/O architecture",
     [](ParseState &st, const std::string &, std::string *) {
         st.protection = false;
         return true;
     }},
    {"--iommu", "MODE", "none | device | context (default none)",
     "I/O architecture",
     [](ParseState &st, const std::string &v, std::string *) {
         st.iommu = v;
         return true;
     }},
    {"--oversub", nullptr,
     "page guest contexts in/out of the NIC's hardware slots, lifting "
     "the per-NIC context limit (cdna mode only)",
     "I/O architecture",
     [](ParseState &st, const std::string &, std::string *) {
         st.oversub = true;
         return true;
     }},
    {"--evict-policy", "P",
     "lru | traffic — context eviction policy with --oversub "
     "(default lru)",
     "I/O architecture",
     [](ParseState &st, const std::string &v, std::string *) {
         st.evictPolicy = v;
         return true;
     }},

    // --- topology & workload ---------------------------------------------
    {"--guests", "N", "number of guest VMs (default 1)",
     "topology & workload",
     [](ParseState &st, const std::string &v, std::string *error) {
         if (!parseU32(v, &st.guests) || st.guests == 0)
             return failWith(error, "--guests needs a positive integer");
         return true;
     }},
    {"--nics", "N", "number of physical NICs (default 2)",
     "topology & workload",
     [](ParseState &st, const std::string &v, std::string *error) {
         if (!parseU32(v, &st.nics) || st.nics == 0)
             return failWith(error, "--nics needs a positive integer");
         return true;
     }},
    {"--direction", "DIR", "tx | rx (default tx)", "topology & workload",
     [](ParseState &st, const std::string &v, std::string *) {
         st.direction = v;
         return true;
     }},
    {"--connections", "N", "connections per interface (default 2)",
     "topology & workload",
     [](ParseState &st, const std::string &v, std::string *error) {
         if (!parseU32(v, &st.connections) || st.connections == 0)
             return failWith(error,
                             "--connections needs a positive integer");
         return true;
     }},
    {"--transport", "MODE",
     "open | tcp: open-loop traffic (default) or\n"
     "closed-loop Reno endpoints with a real ACK path",
     "topology & workload",
     [](ParseState &st, const std::string &v, std::string *) {
         st.transport = v;
         return true;
     }},

    // --- run control -----------------------------------------------------
    {"--warmup", "MS", "warmup before measuring (default 100)",
     "run control",
     [](ParseState &st, const std::string &v, std::string *error) {
         if (!parseU32(v, &st.warmupMs))
             return failWith(error, "--warmup needs milliseconds");
         return true;
     }},
    {"--seconds", "S", "measurement window (default 0.5)", "run control",
     [](ParseState &st, const std::string &v, std::string *error) {
         if (!parseF(v, &st.seconds) || st.seconds <= 0)
             return failWith(error, "--seconds needs a positive number");
         return true;
     }},
    {"--seed", "N", "simulation seed (default 1)", "run control",
     [](ParseState &st, const std::string &v, std::string *error) {
         if (!parseU32(v, &st.seed))
             return failWith(error, "--seed needs an integer");
         return true;
     }},
    {"--json", nullptr, "emit the report as JSON", "run control",
     [](ParseState &st, const std::string &, std::string *) {
         st.opt.json = true;
         return true;
     }},
    {"--help", nullptr, "this text", "run control",
     [](ParseState &st, const std::string &, std::string *) {
         st.opt.help = true;
         return true;
     }},

    // --- observability ---------------------------------------------------
    {"--trace", "FILE", "write a Chrome trace-event JSON file",
     "observability",
     [](ParseState &st, const std::string &v, std::string *error) {
         if (v.empty())
             return failWith(error, "--trace needs a file name");
         st.opt.traceFile = v;
         return true;
     }},
    {"--trace-filter", "S",
     "only trace lanes whose name contains one\n"
     "of the comma-separated substrings",
     "observability",
     [](ParseState &st, const std::string &v, std::string *) {
         st.opt.traceFilter = v;
         return true;
     }},
    {"--stats-json", "FILE", "dump every component's stats as JSON",
     "observability",
     [](ParseState &st, const std::string &v, std::string *error) {
         if (v.empty())
             return failWith(error, "--stats-json needs a file name");
         st.opt.statsJsonFile = v;
         return true;
     }},
    {"--sample-period", "US",
     "sample gauges every US microseconds of\n"
     "simulated time (0 = off; default 0)",
     "observability",
     [](ParseState &st, const std::string &v, std::string *error) {
         if (!parseF(v, &st.sampleUs) || st.sampleUs < 0)
             return failWith(error,
                             "--sample-period needs microseconds >= 0");
         return true;
     }},

    // --- fault injection -------------------------------------------------
    {"--fault-plan", "FILE",
     "load a fault plan file (see core/fault_plan.hh);\n"
     "later fault flags override its rates",
     "fault injection",
     [](ParseState &st, const std::string &v, std::string *error) {
         std::string err;
         auto plan = FaultPlan::fromFile(v, &err);
         if (!plan)
             return failWith(error, err);
         // Keep any stalls/kills already given on the command line.
         for (const auto &fs : st.faults.firmwareStalls)
             plan->firmwareStalls.push_back(fs);
         for (const auto &gk : st.faults.guestKills)
             plan->guestKills.push_back(gk);
         for (const auto &dk : st.faults.driverDomainKills)
             plan->driverDomainKills.push_back(dk);
         for (const auto &fr : st.faults.firmwareReboots)
             plan->firmwareReboots.push_back(fr);
         st.faults = std::move(*plan);
         st.haveFaults = true;
         return true;
     }},
    {"--drop-rate", "P", "P(frame lost on the wire)", "fault injection",
     [](ParseState &st, const std::string &v, std::string *error) {
         if (!rateArg("--drop-rate", v, &st.faults.dropRate, error))
             return false;
         st.haveFaults = true;
         return true;
     }},
    {"--corrupt-rate", "P", "P(frame corrupted; dropped at the receiver)",
     "fault injection",
     [](ParseState &st, const std::string &v, std::string *error) {
         if (!rateArg("--corrupt-rate", v, &st.faults.corruptRate, error))
             return false;
         st.haveFaults = true;
         return true;
     }},
    {"--dup-rate", "P", "P(frame delivered twice)", "fault injection",
     [](ParseState &st, const std::string &v, std::string *error) {
         if (!rateArg("--dup-rate", v, &st.faults.dupRate, error))
             return false;
         st.haveFaults = true;
         return true;
     }},
    {"--dma-delay-rate", "P", "P(DMA completion delayed)",
     "fault injection",
     [](ParseState &st, const std::string &v, std::string *error) {
         if (!rateArg("--dma-delay-rate", v, &st.faults.dmaDelayRate,
                      error))
             return false;
         if (st.faults.dmaDelayUs <= 0.0)
             st.faults.dmaDelayUs = 25.0;
         st.haveFaults = true;
         return true;
     }},
    {"--dma-delay-us", "US", "delayed-completion latency (default 25)",
     "fault injection",
     [](ParseState &st, const std::string &v, std::string *error) {
         if (!parseF(v, &st.faults.dmaDelayUs) || st.faults.dmaDelayUs <= 0)
             return failWith(error,
                             "--dma-delay-us needs microseconds > 0");
         st.haveFaults = true;
         return true;
     }},
    {"--firmware-stall", "NIC@MS:DURMS",
     "stall NIC's firmware at MS ms for DURMS ms,\n"
     "then watchdog-reset it (repeatable)",
     "fault injection",
     [](ParseState &st, const std::string &v, std::string *error) {
         auto fs = parseStallSpec(v);
         if (!fs)
             return failWith(error, "--firmware-stall needs NIC@MS:DURMS, "
                                    "got \"" + v + "\"");
         st.faults.firmwareStalls.push_back(*fs);
         st.haveFaults = true;
         return true;
     }},
    {"--kill-guest", "G@MS",
     "kill guest G at MS ms, revoking its NIC\n"
     "contexts mid-transfer (repeatable)",
     "fault injection",
     [](ParseState &st, const std::string &v, std::string *error) {
         auto gk = parseKillSpec(v);
         if (!gk)
             return failWith(error, "--kill-guest needs G@MS, got \"" + v +
                                    "\"");
         st.faults.guestKills.push_back(*gk);
         st.haveFaults = true;
         return true;
     }},
    {"--kill-driver-domain", "MS",
     "crash the driver domain at MS ms, revoking its\n"
     "grant mappings; it reboots after the configured\n"
     "cost and frontends reconnect (repeatable)",
     "fault injection",
     [](ParseState &st, const std::string &v, std::string *error) {
         auto dk = parseDriverKillSpec(v);
         if (!dk)
             return failWith(error, "--kill-driver-domain needs MS, got \"" +
                                    v + "\"");
         st.faults.driverDomainKills.push_back(*dk);
         st.haveFaults = true;
         return true;
     }},
    {"--reboot-firmware", "NIC@MS",
     "reboot NIC's firmware at MS ms; volatile context\n"
     "state is lost and reconciled against the\n"
     "hypervisor-validated view (repeatable)",
     "fault injection",
     [](ParseState &st, const std::string &v, std::string *error) {
         auto fr = parseRebootSpec(v);
         if (!fr)
             return failWith(error, "--reboot-firmware needs NIC@MS, got \"" +
                                    v + "\"");
         st.faults.firmwareReboots.push_back(*fr);
         st.haveFaults = true;
         return true;
     }},
};

const Spec *
findSpec(const std::string &name)
{
    std::string key = name == "-h" ? "--help" : name;
    for (const Spec &s : kSpecs)
        if (key == s.name)
            return &s;
    return nullptr;
}

/** Turn the accumulated state into a SystemConfig, or fail. */
std::optional<CliOptions>
finalize(ParseState st, std::string *error)
{
    auto fail = [&](const std::string &msg) -> std::optional<CliOptions> {
        if (error)
            *error = msg;
        return std::nullopt;
    };

    bool transmit;
    if (st.direction == "tx")
        transmit = true;
    else if (st.direction == "rx")
        transmit = false;
    else
        return fail("--direction must be tx or rx");

    SystemConfig cfg;
    if (st.mode == "native") {
        cfg = SystemConfig::native(st.nics);
    } else if (st.mode == "xen") {
        if (st.nic == "intel")
            cfg = SystemConfig::xenIntel(st.guests);
        else if (st.nic == "rice")
            cfg = SystemConfig::xenRice(st.guests);
        else
            return fail("--nic must be intel or rice");
        cfg.withNics(st.nics);
    } else if (st.mode == "cdna") {
        cfg = SystemConfig::cdna(st.guests)
                  .withNics(st.nics)
                  .withProtection(st.protection);
        if (st.oversub)
            cfg.oversubscribed();
        if (st.evictPolicy == "lru")
            cfg.withEvictionPolicy(EvictPolicy::kLru);
        else if (st.evictPolicy == "traffic")
            cfg.withEvictionPolicy(EvictPolicy::kTrafficWeighted);
        else
            return fail("--evict-policy must be lru or traffic");
    } else if (st.mode == "swpt") {
        cfg = SystemConfig::swPassthrough(st.guests).withNics(st.nics);
    } else {
        return fail("--mode must be native, xen, cdna, or swpt");
    }
    if (st.oversub && st.mode != "cdna")
        return fail("--oversub requires --mode cdna");
    cfg.transmit(transmit);

    if (st.iommu == "none")
        cfg.withIommu(mem::Iommu::Mode::kNone);
    else if (st.iommu == "device")
        cfg.withIommu(mem::Iommu::Mode::kPerDevice);
    else if (st.iommu == "context")
        cfg.withIommu(mem::Iommu::Mode::kPerContext);
    else
        return fail("--iommu must be none, device, or context");

    if (st.transport == "tcp")
        cfg.transport(kTcp);
    else if (st.transport != "open")
        return fail("--transport must be open or tcp");

    cfg.withConnections(st.connections).withSeed(st.seed);
    if (st.haveFaults)
        cfg.withFaults(std::move(st.faults));

    st.opt.config = std::move(cfg);
    st.opt.warmup = sim::milliseconds(static_cast<double>(st.warmupMs));
    st.opt.measure = sim::seconds(st.seconds);
    st.opt.samplePeriod = sim::microseconds(st.sampleUs);
    return std::move(st.opt);
}

} // namespace

const std::vector<CliOptionSpec> &
cliOptionTable()
{
    static const std::vector<CliOptionSpec> table = [] {
        std::vector<CliOptionSpec> t;
        for (const Spec &s : kSpecs)
            t.push_back({s.name, s.argName ? s.argName : "", s.help,
                         s.group});
        return t;
    }();
    return table;
}

std::string
cliUsage()
{
    constexpr std::size_t kHelpCol = 22;
    std::string out = "usage: cdna_sim [options]\n"
                      "\n"
                      "options accept both \"--opt value\" and "
                      "\"--opt=value\".\n";
    std::string group;
    for (const CliOptionSpec &s : cliOptionTable()) {
        if (s.group != group) {
            group = s.group;
            out += "\n" + group + ":\n";
        }
        std::string lead = "  " + s.name;
        if (s.takesValue())
            lead += " " + s.argName;
        if (lead.size() + 2 > kHelpCol)
            lead += "  ";
        else
            lead.resize(kHelpCol, ' ');
        out += lead;
        // Indent continuation lines under the help column.
        for (char c : s.help) {
            out += c;
            if (c == '\n')
                out.append(kHelpCol, ' ');
        }
        out += '\n';
    }
    return out;
}

std::optional<CliOptions>
parseCli(const std::vector<std::string> &args, std::string *error)
{
    ParseState st;
    auto fail = [&](const std::string &msg) -> std::optional<CliOptions> {
        if (error)
            *error = msg;
        return std::nullopt;
    };

    // Accept both "--opt value" and "--opt=value".
    std::vector<std::string> argv;
    argv.reserve(args.size());
    for (const std::string &a : args) {
        std::size_t eq;
        if (a.size() > 2 && a.compare(0, 2, "--") == 0 &&
            (eq = a.find('=')) != std::string::npos) {
            argv.push_back(a.substr(0, eq));
            argv.push_back(a.substr(eq + 1));
        } else {
            argv.push_back(a);
        }
    }

    for (std::size_t i = 0; i < argv.size(); ++i) {
        const Spec *spec = findSpec(argv[i]);
        if (!spec)
            return fail("unknown option: " + argv[i]);
        std::string value;
        if (spec->argName) {
            if (i + 1 >= argv.size())
                return fail(std::string(spec->name) + " needs a value");
            value = argv[++i];
        }
        std::string err;
        if (!spec->handle(st, value, &err))
            return fail(err);
        if (st.opt.help)
            return std::move(st.opt);
    }

    return finalize(std::move(st), error);
}

ObservabilitySession::ObservabilitySession(System &sys, const CliOptions &opt)
    : sys_(sys),
      traceFile_(opt.traceFile),
      statsJsonFile_(opt.statsJsonFile)
{
    if (!traceFile_.empty()) {
        sys_.ctx().tracer().enable();
        if (!opt.traceFilter.empty())
            sys_.ctx().tracer().setFilter(opt.traceFilter);
    }
    // Sampling is useful on its own (the series land in --stats-json),
    // so it is keyed off the period, not the trace flag.
    if (opt.samplePeriod > 0)
        sys_.metrics().startSampling(opt.samplePeriod);
    else if (!statsJsonFile_.empty())
        // A stats dump with no explicit period still gets a coarse
        // time-series: one sample per simulated millisecond.
        sys_.metrics().startSampling(sim::milliseconds(1.0));
}

ObservabilitySession::~ObservabilitySession()
{
    close(nullptr);
}

bool
ObservabilitySession::close(std::string *error)
{
    if (closed_)
        return true;
    closed_ = true;
    if (!traceFile_.empty() &&
        !sys_.ctx().tracer().writeChromeJson(traceFile_)) {
        if (error)
            *error = "cannot write trace file: " + traceFile_;
        return false;
    }
    if (!statsJsonFile_.empty() &&
        !sys_.metrics().writeJson(statsJsonFile_)) {
        if (error)
            *error = "cannot write stats file: " + statsJsonFile_;
        return false;
    }
    return true;
}

} // namespace cdna::core
