#include "core/cli.hh"

#include <cstdio>
#include <cstdlib>

namespace cdna::core {

std::string
cliUsage()
{
    return
        "usage: cdna_sim [options]\n"
        "\n"
        "I/O architecture:\n"
        "  --mode MODE         native | xen | cdna (default cdna)\n"
        "  --nic KIND          intel | rice (xen mode only; default intel)\n"
        "  --no-protection     disable CDNA DMA memory protection\n"
        "  --iommu MODE        none | device | context (default none)\n"
        "\n"
        "topology & workload:\n"
        "  --guests N          number of guest VMs (default 1)\n"
        "  --nics N            number of physical NICs (default 2)\n"
        "  --direction DIR     tx | rx (default tx)\n"
        "  --connections N     connections per interface (default 2)\n"
        "\n"
        "run control:\n"
        "  --warmup MS         warmup before measuring (default 100)\n"
        "  --seconds S         measurement window (default 0.5)\n"
        "  --seed N            simulation seed (default 1)\n"
        "  --json              emit the report as JSON\n"
        "  --help              this text\n"
        "\n"
        "observability (flags also accept --opt=value):\n"
        "  --trace FILE        write a Chrome trace-event JSON file\n"
        "  --trace-filter S    only trace lanes whose name contains one\n"
        "                      of the comma-separated substrings\n"
        "  --stats-json FILE   dump every component's stats as JSON\n"
        "  --sample-period US  sample gauges every US microseconds of\n"
        "                      simulated time (0 = off; default 0)\n";
}

namespace {

bool
parseU32(const std::string &s, std::uint32_t *out)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        return false;
    *out = static_cast<std::uint32_t>(v);
    return true;
}

bool
parseF(const std::string &s, double *out)
{
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

} // namespace

std::optional<CliOptions>
parseCli(const std::vector<std::string> &args, std::string *error)
{
    CliOptions opt;
    auto fail = [&](const std::string &msg) -> std::optional<CliOptions> {
        if (error)
            *error = msg;
        return std::nullopt;
    };

    std::string mode = "cdna";
    std::string nic = "intel";
    std::string iommu = "none";
    std::string direction = "tx";
    bool protection = true;
    std::uint32_t guests = 1;
    std::uint32_t nics = 2;
    std::uint32_t connections = 2;
    std::uint32_t warmup_ms = 100;
    double seconds = 0.5;
    std::uint32_t seed = 1;
    double sample_us = 0.0;

    // Accept both "--opt value" and "--opt=value".
    std::vector<std::string> argv;
    argv.reserve(args.size());
    for (const std::string &a : args) {
        std::size_t eq;
        if (a.size() > 2 && a.compare(0, 2, "--") == 0 &&
            (eq = a.find('=')) != std::string::npos) {
            argv.push_back(a.substr(0, eq));
            argv.push_back(a.substr(eq + 1));
        } else {
            argv.push_back(a);
        }
    }

    for (std::size_t i = 0; i < argv.size(); ++i) {
        const std::string &a = argv[i];
        auto next = [&](std::string *out) {
            if (i + 1 >= argv.size())
                return false;
            *out = argv[++i];
            return true;
        };
        std::string v;
        if (a == "--help" || a == "-h") {
            opt.help = true;
            return opt;
        } else if (a == "--json") {
            opt.json = true;
        } else if (a == "--no-protection") {
            protection = false;
        } else if (a == "--mode") {
            if (!next(&mode))
                return fail("--mode needs a value");
        } else if (a == "--nic") {
            if (!next(&nic))
                return fail("--nic needs a value");
        } else if (a == "--iommu") {
            if (!next(&iommu))
                return fail("--iommu needs a value");
        } else if (a == "--direction") {
            if (!next(&direction))
                return fail("--direction needs a value");
        } else if (a == "--guests") {
            if (!next(&v) || !parseU32(v, &guests) || guests == 0)
                return fail("--guests needs a positive integer");
        } else if (a == "--nics") {
            if (!next(&v) || !parseU32(v, &nics) || nics == 0)
                return fail("--nics needs a positive integer");
        } else if (a == "--connections") {
            if (!next(&v) || !parseU32(v, &connections) ||
                connections == 0)
                return fail("--connections needs a positive integer");
        } else if (a == "--warmup") {
            if (!next(&v) || !parseU32(v, &warmup_ms))
                return fail("--warmup needs milliseconds");
        } else if (a == "--seconds") {
            if (!next(&v) || !parseF(v, &seconds) || seconds <= 0)
                return fail("--seconds needs a positive number");
        } else if (a == "--seed") {
            if (!next(&v) || !parseU32(v, &seed))
                return fail("--seed needs an integer");
        } else if (a == "--trace") {
            if (!next(&opt.traceFile) || opt.traceFile.empty())
                return fail("--trace needs a file name");
        } else if (a == "--trace-filter") {
            if (!next(&opt.traceFilter))
                return fail("--trace-filter needs a value");
        } else if (a == "--stats-json") {
            if (!next(&opt.statsJsonFile) || opt.statsJsonFile.empty())
                return fail("--stats-json needs a file name");
        } else if (a == "--sample-period") {
            if (!next(&v) || !parseF(v, &sample_us) || sample_us < 0)
                return fail("--sample-period needs microseconds >= 0");
        } else {
            return fail("unknown option: " + a);
        }
    }

    bool transmit;
    if (direction == "tx")
        transmit = true;
    else if (direction == "rx")
        transmit = false;
    else
        return fail("--direction must be tx or rx");

    SystemConfig cfg;
    if (mode == "native") {
        cfg = makeNativeConfig(nics, transmit);
    } else if (mode == "xen") {
        if (nic == "intel")
            cfg = makeXenIntelConfig(guests, transmit);
        else if (nic == "rice")
            cfg = makeXenRiceConfig(guests, transmit);
        else
            return fail("--nic must be intel or rice");
        cfg.numNics = nics;
    } else if (mode == "cdna") {
        cfg = makeCdnaConfig(guests, transmit, protection);
        cfg.numNics = nics;
    } else {
        return fail("--mode must be native, xen, or cdna");
    }

    if (iommu == "none")
        cfg.iommuMode = mem::Iommu::Mode::kNone;
    else if (iommu == "device")
        cfg.iommuMode = mem::Iommu::Mode::kPerDevice;
    else if (iommu == "context")
        cfg.iommuMode = mem::Iommu::Mode::kPerContext;
    else
        return fail("--iommu must be none, device, or context");

    cfg.connectionsPerVif = connections;
    cfg.seed = seed;
    opt.config = std::move(cfg);
    opt.warmup = sim::milliseconds(static_cast<double>(warmup_ms));
    opt.measure = sim::seconds(seconds);
    opt.samplePeriod = sim::microseconds(sample_us);
    return opt;
}

void
applyObservability(System &sys, const CliOptions &opt)
{
    if (!opt.traceFile.empty()) {
        sys.ctx().tracer().enable();
        if (!opt.traceFilter.empty())
            sys.ctx().tracer().setFilter(opt.traceFilter);
    }
    // Sampling is useful on its own (the series land in --stats-json),
    // so it is keyed off the period, not the trace flag.
    if (opt.samplePeriod > 0)
        sys.metrics().startSampling(opt.samplePeriod);
    else if (!opt.statsJsonFile.empty())
        // A stats dump with no explicit period still gets a coarse
        // time-series: one sample per simulated millisecond.
        sys.metrics().startSampling(sim::milliseconds(1.0));
}

bool
flushObservability(System &sys, const CliOptions &opt, std::string *error)
{
    if (!opt.traceFile.empty() &&
        !sys.ctx().tracer().writeChromeJson(opt.traceFile)) {
        if (error)
            *error = "cannot write trace file: " + opt.traceFile;
        return false;
    }
    if (!opt.statsJsonFile.empty() &&
        !sys.metrics().writeJson(opt.statsJsonFile)) {
        if (error)
            *error = "cannot write stats file: " + opt.statsJsonFile;
        return false;
    }
    return true;
}

std::string
reportToJson(const Report &r)
{
    char buf[512];
    std::string out = "{\n";
    auto add = [&](const char *key, double value, bool last = false) {
        std::snprintf(buf, sizeof(buf), "  \"%s\": %.4f%s\n", key, value,
                      last ? "" : ",");
        out += buf;
    };
    std::snprintf(buf, sizeof(buf), "  \"label\": \"%s\",\n",
                  r.label.c_str());
    out += buf;
    add("mbps", r.mbps);
    add("hyp_pct", r.hypPct);
    add("drv_os_pct", r.drvOsPct);
    add("drv_user_pct", r.drvUserPct);
    add("guest_os_pct", r.guestOsPct);
    add("guest_user_pct", r.guestUserPct);
    add("idle_pct", r.idlePct);
    add("drv_intr_per_sec", r.drvIntrPerSec);
    add("guest_intr_per_sec", r.guestIntrPerSec);
    add("phys_irq_per_sec", r.physIrqPerSec);
    add("hypercall_per_sec", r.hypercallPerSec);
    add("domain_switch_per_sec", r.domainSwitchPerSec);
    add("latency_mean_us", r.latencyMeanUs);
    add("latency_p50_us", r.latencyP50Us);
    add("latency_p99_us", r.latencyP99Us);
    add("fairness", r.fairness());
    std::snprintf(buf, sizeof(buf),
                  "  \"protection_faults\": %llu,\n"
                  "  \"dma_violations\": %llu,\n",
                  static_cast<unsigned long long>(r.protectionFaults),
                  static_cast<unsigned long long>(r.dmaViolations));
    out += buf;
    out += "  \"per_guest_mbps\": [";
    for (std::size_t i = 0; i < r.perGuestMbps.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%s%.2f", i ? ", " : "",
                      r.perGuestMbps[i]);
        out += buf;
    }
    out += "]\n}\n";
    return out;
}

} // namespace cdna::core
