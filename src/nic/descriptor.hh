/**
 * @file
 * DMA descriptors (paper section 2.2).
 *
 * A descriptor tells the NIC where packet data lives in host memory.
 * Following the paper's observation that "there are only three fields
 * of interest in any DMA descriptor: an address, a length, and
 * additional flags", plus -- for CDNA -- the strictly increasing
 * sequence number the hypervisor stamps and the NIC validates
 * (section 3.3), we carry exactly those fields.  Scatter/gather
 * payloads (TSO segments spanning many pages) use a list of
 * address/length pairs; protection validates every page.
 */

#ifndef CDNA_NIC_DESCRIPTOR_HH
#define CDNA_NIC_DESCRIPTOR_HH

#include <cstdint>

#include "mem/dma_engine.hh"

namespace cdna::nic {

/** Descriptor flag bits. */
enum DescFlags : std::uint32_t
{
    kDescEmpty = 0,        //!< slot has never held a valid descriptor
    kDescValid = 1u << 0,  //!< written by the producing side
    kDescEop = 1u << 1,    //!< end of packet (always set: 1 desc/packet)
    kDescTso = 1u << 2,    //!< payload is a TSO segment to cut at kMss
};

/** One DMA descriptor as it sits in a host-memory ring slot. */
struct DmaDescriptor
{
    mem::SgList sg;          //!< address/length pairs of the buffer
    std::uint32_t flags = kDescEmpty;
    std::uint64_t seqno = 0; //!< CDNA sequence number (0 when unused)

    /** Total buffer length. */
    std::uint64_t len() const { return mem::sgBytes(sg); }

    bool valid() const { return flags & kDescValid; }
};

/** Bytes a descriptor occupies in host memory (for DMA fetch costs). */
inline constexpr std::uint32_t kDescBytes = 16;

} // namespace cdna::nic

#endif // CDNA_NIC_DESCRIPTOR_HH
