/**
 * @file
 * Producer/consumer descriptor rings in host memory (paper section 2.2).
 *
 * The ring models the *contents* of the host-memory descriptor array:
 * slots persist until overwritten, so a stale descriptor from a
 * previous lap is still there when a malicious driver bumps the
 * producer index past the last valid entry -- the attack CDNA's
 * sequence numbers catch.
 *
 * Indices are free-running 32-bit counters; the slot for index i is
 * i % size().  The NIC fetches slot contents via DMA before using them;
 * timing is charged by the caller, this class only holds state.
 *
 * Each slot can carry an attached Packet: the simulation's stand-in for
 * the payload bytes a real buffer would hold.
 */

#ifndef CDNA_NIC_DESC_RING_HH
#define CDNA_NIC_DESC_RING_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/phys_memory.hh"
#include "net/packet.hh"
#include "nic/descriptor.hh"

namespace cdna::nic {

class DescRing
{
  public:
    /**
     * @param entries ring size; must be a power of two so that the
     *                free-running uint32 indices map to consistent
     *                slots across wraparound (i % size == (i + 2^32) %
     *                size only when size divides 2^32)
     * @param base    host physical address of slot 0
     */
    DescRing(std::uint32_t entries, mem::PhysAddr base);

    std::uint32_t size() const { return static_cast<std::uint32_t>(slots_.size()); }

    /** Slot index for a free-running position. */
    std::uint32_t slotOf(std::uint32_t pos) const { return pos % size(); }

    /** Host physical address of a slot (descriptor-fetch DMA). */
    mem::PhysAddr
    slotAddr(std::uint32_t pos) const
    {
        return base_ + static_cast<mem::PhysAddr>(slotOf(pos)) * kDescBytes;
    }

    /** Write a descriptor into the slot for @p pos (host side). */
    void write(std::uint32_t pos, DmaDescriptor d);

    /** Read the slot contents for @p pos (NIC side, post-DMA). */
    const DmaDescriptor &at(std::uint32_t pos) const;

    /** Attach the simulated payload for the packet described at @p pos. */
    void attachPacket(std::uint32_t pos, net::Packet pkt);

    /** Detach (consume) the payload attached at @p pos, if any. */
    std::optional<net::Packet> detachPacket(std::uint32_t pos);

    /** True if a payload is attached at @p pos. */
    bool hasPacket(std::uint32_t pos) const;

  private:
    mem::PhysAddr base_;
    std::vector<DmaDescriptor> slots_;
    std::vector<std::optional<net::Packet>> packets_;
};

} // namespace cdna::nic

#endif // CDNA_NIC_DESC_RING_HH
