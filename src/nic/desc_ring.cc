#include "nic/desc_ring.hh"

#include <utility>

#include "sim/assert.hh"

namespace cdna::nic {

DescRing::DescRing(std::uint32_t entries, mem::PhysAddr base)
    : base_(base), slots_(entries), packets_(entries)
{
    SIM_ASSERT(entries > 0, "empty descriptor ring");
    // Indices are free-running uint32 counters that eventually wrap.
    // pos % size() only maps wrapped positions consistently when size
    // divides 2^32, so ring sizes must be powers of two -- otherwise
    // the slot for position 0 and position 2^32 would differ.
    SIM_ASSERT((entries & (entries - 1)) == 0,
               "descriptor ring size must be a power of two");
}

void
DescRing::write(std::uint32_t pos, DmaDescriptor d)
{
    slots_[slotOf(pos)] = std::move(d);
}

const DmaDescriptor &
DescRing::at(std::uint32_t pos) const
{
    return slots_[pos % size()];
}

void
DescRing::attachPacket(std::uint32_t pos, net::Packet pkt)
{
    packets_[slotOf(pos)] = std::move(pkt);
}

std::optional<net::Packet>
DescRing::detachPacket(std::uint32_t pos)
{
    auto &slot = packets_[slotOf(pos)];
    std::optional<net::Packet> out = std::move(slot);
    slot.reset();
    return out;
}

bool
DescRing::hasPacket(std::uint32_t pos) const
{
    return packets_[pos % size()].has_value();
}

} // namespace cdna::nic
