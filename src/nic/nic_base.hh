/**
 * @file
 * Common machinery for simulated network interfaces.
 *
 * A NIC terminates one Ethernet link, owns a DMA engine on the PCI
 * bus, and raises a physical interrupt line that the hypervisor (or
 * native OS) fields.  Interrupt coalescing -- "NIC coalescing options
 * were tuned" in the paper's setup -- is modeled with a delay window
 * plus a frame-count threshold, which is what drives the interrupt-rate
 * columns of Tables 2 and 3.
 */

#ifndef CDNA_NIC_NIC_BASE_HH
#define CDNA_NIC_NIC_BASE_HH

#include <cstdint>
#include <functional>

#include "mem/dma_engine.hh"
#include "net/fabric.hh"
#include "sim/sim_object.hh"

namespace cdna::nic {

/** Interrupt-coalescing configuration. */
struct CoalesceParams
{
    /** Max time a completion may wait before an interrupt fires. */
    sim::Time delay = sim::microseconds(70);
    /** Fire immediately once this many events are pending. */
    std::uint32_t eventThreshold = 64;
};

class NicBase : public sim::SimObject, public net::LinkEndpoint
{
  public:
    NicBase(sim::SimContext &ctx, std::string name, mem::PciBus &bus,
            mem::PhysMemory &mem, mem::DeviceId dev, net::Fabric &fabric);

    /** The fabric port this NIC is bound to. */
    net::Port &port() { return port_; }
    const net::Port &port() const { return port_; }

    /** Install the physical interrupt line (wired by the hypervisor). */
    void setIrqLine(std::function<void()> fn) { irq_ = std::move(fn); }

    mem::DeviceId deviceId() const { return dma_.deviceId(); }
    mem::DmaEngine &dma() { return dma_; }

    void setCoalesce(CoalesceParams p) { coalesce_ = p; }
    const CoalesceParams &coalesce() const { return coalesce_; }

    /** Physical interrupts raised. */
    std::uint64_t irqCount() const { return nIrqs_.value(); }

    /** Frames dropped for lack of a posted receive descriptor. */
    std::uint64_t rxDropNoDesc() const { return nRxDropNoDesc_.value(); }
    /** Frames dropped for lack of NIC buffer space. */
    std::uint64_t rxDropNoBuf() const { return nRxDropNoBuf_.value(); }
    /** Frames dropped by MAC filtering. */
    std::uint64_t rxDropFilter() const { return nRxDropFilter_.value(); }

  protected:
    /**
     * Note a host-visible completion event; a physical interrupt fires
     * when the coalescing window closes (or the threshold is hit).
     */
    void notePendingEvent();

    /** Immediately raise the physical interrupt line. */
    void raiseIrq();

    net::Port &port_;
    mem::DmaEngine dma_;

    sim::Counter &nIrqs_;
    sim::Counter &nRxDropNoDesc_;
    sim::Counter &nRxDropNoBuf_;
    sim::Counter &nRxDropFilter_;

  private:
    std::function<void()> irq_;
    CoalesceParams coalesce_;
    std::uint32_t pendingEvents_ = 0;
    sim::EventId coalesceTimer_ = sim::kInvalidEvent;
};

} // namespace cdna::nic

#endif // CDNA_NIC_NIC_BASE_HH
