#include "nic/nic_base.hh"

#include <utility>

namespace cdna::nic {

NicBase::NicBase(sim::SimContext &ctx, std::string name, mem::PciBus &bus,
                 mem::PhysMemory &mem, mem::DeviceId dev, net::Fabric &fabric)
    : sim::SimObject(ctx, std::move(name)),
      port_(fabric.bind(*this)),
      dma_(ctx, this->name() + ".dma", bus, mem, dev),
      nIrqs_(stats().addCounter("irqs")),
      nRxDropNoDesc_(stats().addCounter("rx_drop_no_desc")),
      nRxDropNoBuf_(stats().addCounter("rx_drop_no_buf")),
      nRxDropFilter_(stats().addCounter("rx_drop_filter"))
{
}

void
NicBase::notePendingEvent()
{
    ++pendingEvents_;
    if (pendingEvents_ >= coalesce_.eventThreshold) {
        raiseIrq();
        return;
    }
    if (coalesceTimer_ == sim::kInvalidEvent) {
        coalesceTimer_ = events().schedule(coalesce_.delay, [this] {
            coalesceTimer_ = sim::kInvalidEvent;
            if (pendingEvents_ > 0)
                raiseIrq();
        });
    }
}

void
NicBase::raiseIrq()
{
    pendingEvents_ = 0;
    if (coalesceTimer_ != sim::kInvalidEvent) {
        events().cancel(coalesceTimer_);
        coalesceTimer_ = sim::kInvalidEvent;
    }
    nIrqs_.inc();
    if (irq_)
        irq_();
}

} // namespace cdna::nic
