#include "nic/intel_nic.hh"

#include <algorithm>
#include <utility>

#include "sim/assert.hh"

namespace cdna::nic {

IntelNic::IntelNic(sim::SimContext &ctx, std::string name, mem::PciBus &bus,
                   mem::PhysMemory &mem, mem::DeviceId dev,
                   net::Fabric &fabric, IntelNicParams params)
    : NicBase(ctx, std::move(name), bus, mem, dev, fabric),
      params_(params),
      txBuf_(params.txBufferBytes),
      rxBuf_(params.rxBufferBytes),
      nTxPackets_(stats().addCounter("tx_packets")),
      nTxPayload_(stats().addCounter("tx_payload_bytes")),
      nRxPackets_(stats().addCounter("rx_packets")),
      nRxPayload_(stats().addCounter("rx_payload_bytes")),
      nTxGhost_(stats().addCounter("tx_ghost_descriptors")),
      nTxResetDrops_(stats().addCounter("tx_reset_drops"))
{
    setCoalesce(params.coalesce);
}

void
IntelNic::configureTxRing(std::uint32_t entries, mem::PhysAddr base)
{
    txRing_.emplace(entries, base);
}

void
IntelNic::configureRxRing(std::uint32_t entries, mem::PhysAddr base)
{
    rxRing_.emplace(entries, base);
}

DescRing &
IntelNic::txRing()
{
    SIM_ASSERT(txRing_.has_value(), "TX ring not configured");
    return *txRing_;
}

DescRing &
IntelNic::rxRing()
{
    SIM_ASSERT(rxRing_.has_value(), "RX ring not configured");
    return *rxRing_;
}

void
IntelNic::pioWriteTxProducer(std::uint32_t producer)
{
    txProducer_ = producer;
    startTxFetch();
}

void
IntelNic::pioWriteRxProducer(std::uint32_t producer)
{
    rxProducer_ = producer;
    startRxFetch();
}

void
IntelNic::startTxFetch()
{
    if (txFetchBusy_ || !txRing_)
        return;
    std::uint32_t avail = txProducer_ - txFetched_;
    if (avail == 0)
        return;
    std::uint32_t n = std::min(avail, params_.fetchBatch);
    // Never fetch beyond one ring lap in a single batch.
    n = std::min(n, txRing_->size());
    txFetchBusy_ = true;

    // Descriptor-fetch DMA; split at the ring wrap point.
    mem::SgList sg;
    std::uint32_t first_slot = txRing_->slotOf(txFetched_);
    std::uint32_t till_wrap = std::min(n, txRing_->size() - first_slot);
    sg.push_back({txRing_->slotAddr(txFetched_), till_wrap * kDescBytes});
    if (till_wrap < n)
        sg.push_back({txRing_->slotAddr(txFetched_ + till_wrap),
                      (n - till_wrap) * kDescBytes});

    dma_.read(sg, dmaDomain_, mem::kWholeDevice,
              [this, n, ep = txEpoch_](mem::DmaResult) {
        if (ep != txEpoch_)
            return; // TX engine was quiesced while the fetch was in flight
        for (std::uint32_t i = 0; i < n; ++i)
            txPending_.push_back(txFetched_ + i);
        txFetched_ += n;
        txFetchBusy_ = false;
        startTxFetch();
        pumpTx();
    });
}

void
IntelNic::pumpTx()
{
    if (txDataBusy_ || txPending_.empty())
        return;
    std::uint32_t pos = txPending_.front();
    const DmaDescriptor &desc = txRing_->at(pos);
    auto pkt_opt = txRing_->detachPacket(pos);
    if (!desc.valid() || !pkt_opt.has_value()) {
        // A descriptor with no packet behind it: the device would
        // transmit garbage from whatever the buffer holds.  Count it and
        // move on; the conventional NIC has no way to detect this.
        nTxGhost_.inc();
        txPending_.pop_front();
        ++txConsumer_;
        scheduleConsumerWriteback();
        notePendingEvent();
        pumpTx();
        return;
    }
    net::Packet pkt = std::move(*pkt_opt);
    if (!params_.tso && pkt.payloadBytes > net::kMss) {
        SIM_PANIC("TSO segment submitted to non-TSO NIC");
    }
    std::uint64_t bytes = pkt.payloadBytes;
    if (!txBuf_.tryReserve(bytes)) {
        // Out of NIC buffering; re-attach and retry when space frees.
        txRing_->attachPacket(pos, std::move(pkt));
        return;
    }
    txDataBusy_ = true;
    txPending_.pop_front();

    dma_.read(desc.sg, dmaDomain_, mem::kWholeDevice,
              [this, pkt = std::move(pkt), bytes,
               ep = txEpoch_](mem::DmaResult) mutable {
        if (ep != txEpoch_)
            return; // quiesced mid-read: the frame never reaches the wire
        txDataBusy_ = false;
        nTxPackets_.inc();
        nTxPayload_.inc(pkt.payloadBytes);
        sim::Time gap = params_.txInterFrameGap *
                        static_cast<sim::Time>(pkt.wireFrames());
        port_.send(std::move(pkt), gap, [this, bytes, ep] {
            if (ep != txEpoch_)
                return; // quiesced while on the wire; state already reset
            txBuf_.release(bytes);
            ++txConsumer_;
            scheduleConsumerWriteback();
            notePendingEvent();
            pumpTx();
        });
        pumpTx();
    });
}

void
IntelNic::startRxFetch()
{
    if (rxFetchBusy_ || !rxRing_)
        return;
    std::uint32_t avail = rxProducer_ - rxFetched_;
    if (avail == 0)
        return;
    std::uint32_t n = std::min({avail, params_.fetchBatch,
                                rxRing_->size()});
    rxFetchBusy_ = true;

    mem::SgList sg;
    std::uint32_t first_slot = rxRing_->slotOf(rxFetched_);
    std::uint32_t till_wrap = std::min(n, rxRing_->size() - first_slot);
    sg.push_back({rxRing_->slotAddr(rxFetched_), till_wrap * kDescBytes});
    if (till_wrap < n)
        sg.push_back({rxRing_->slotAddr(rxFetched_ + till_wrap),
                      (n - till_wrap) * kDescBytes});

    dma_.read(sg, dmaDomain_, mem::kWholeDevice, [this, n](mem::DmaResult) {
        rxFetched_ += n;
        rxFetchBusy_ = false;
        startRxFetch();
    });
}

void
IntelNic::receiveFrame(net::Packet pkt)
{
    if (!promiscuous_ && !(pkt.dst == mac_)) {
        nRxDropFilter_.inc();
        return;
    }
    if (rxFetched_ == rxUsed_) {
        nRxDropNoDesc_.inc();
        startRxFetch();
        return;
    }
    std::uint64_t bytes = pkt.payloadBytes;
    if (!rxBuf_.tryReserve(bytes)) {
        nRxDropNoBuf_.inc();
        return;
    }
    std::uint32_t pos = rxUsed_++;
    const DmaDescriptor &desc = rxRing_->at(pos);
    // Prefetch more descriptors as the supply drains.
    if (rxFetched_ - rxUsed_ < params_.fetchBatch / 2)
        startRxFetch();

    // Only the frame's bytes cross the bus, not the whole buffer.
    std::uint64_t wire = pkt.payloadBytes + net::kTcpIpHeader;
    mem::SgList wsg;
    std::uint64_t left = wire;
    for (const auto &e : desc.sg) {
        if (left == 0)
            break;
        auto take = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(e.len, left));
        wsg.push_back({e.addr, take});
        left -= take;
    }

    dma_.write(wsg, dmaDomain_, mem::kWholeDevice,
               [this, pos, bytes, pkt = std::move(pkt)]
               (mem::DmaResult) mutable {
        rxBuf_.release(bytes);
        nRxPackets_.inc();
        nRxPayload_.inc(pkt.payloadBytes);
        rxReady_.push_back(RxDelivery{pos, std::move(pkt)});
        ++rxConsumer_;
        scheduleConsumerWriteback();
        notePendingEvent();
    });
}

std::vector<IntelNic::RxDelivery>
IntelNic::drainRx()
{
    return std::exchange(rxReady_, {});
}

std::uint64_t
IntelNic::quiesceTx()
{
    ++txEpoch_;
    std::uint64_t dropped = 0;
    if (txRing_) {
        for (std::uint32_t pos : txPending_)
            if (txRing_->detachPacket(pos).has_value())
                ++dropped;
    }
    // Descriptors advertised but never fetched die with the engine too.
    dropped += txProducer_ - txFetched_;
    txPending_.clear();
    txBuf_.reset();
    txFetchBusy_ = false;
    txDataBusy_ = false;
    txFetched_ = txProducer_;
    if (txConsumer_ != txProducer_) {
        // Publish the skip so the driver's completion accounting
        // (in-flight byte queue) drains instead of wedging.
        txConsumer_ = txProducer_;
        scheduleConsumerWriteback();
        notePendingEvent();
    }
    nTxResetDrops_.inc(dropped);
    return dropped;
}

void
IntelNic::scheduleConsumerWriteback()
{
    // Consumer-index writebacks to host memory merge: one small DMA can
    // publish many completions.
    if (writebackBusy_) {
        writebackAgain_ = true;
        return;
    }
    writebackBusy_ = true;
    mem::SgList sg{{statusAddr_, 8}};
    dma_.write(sg, dmaDomain_, mem::kWholeDevice, [this](mem::DmaResult) {
        writebackBusy_ = false;
        if (std::exchange(writebackAgain_, false))
            scheduleConsumerWriteback();
    });
}

} // namespace cdna::nic
