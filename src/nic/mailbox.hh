/**
 * @file
 * Per-context mailboxes and the two-level event bit-vector hierarchy
 * (paper section 4).
 *
 * The CDNA NIC exposes 32 page-sized (4 KB) SRAM partitions, one per
 * hardware context; the lowest 24 words of each partition are mailboxes
 * the guest driver writes via PIO.  A hardware core snoops the SRAM bus
 * and maintains a two-level hierarchy of bit vectors in a scratchpad:
 * level 0 says which contexts have pending mailbox events, level 1 (one
 * per context) says which mailboxes within the context were written.
 * Firmware decodes the hierarchy to find work without scanning all
 * 32 x 24 mailboxes.
 */

#ifndef CDNA_NIC_MAILBOX_HH
#define CDNA_NIC_MAILBOX_HH

#include <array>
#include <cstdint>
#include <functional>

#include "sim/assert.hh"

namespace cdna::nic {

/** Number of hardware contexts the CDNA NIC supports. */
inline constexpr std::uint32_t kMaxContexts = 32;
/** Mailboxes per context (the lowest 24 words of the partition). */
inline constexpr std::uint32_t kMailboxesPerContext = 24;
/** Bytes of SRAM partition exposed per context (one host page). */
inline constexpr std::uint32_t kContextSramBytes = 4096;

/** Well-known mailbox indices used by the drivers in this repo. */
enum Mailbox : std::uint32_t
{
    kMboxTxProducer = 0, //!< new TX descriptors available up to value
    kMboxRxProducer = 1, //!< new RX buffers posted up to value
    kMboxControl = 2,    //!< context control (reset, MAC set, ...)
};

/** The mailbox words of one context's SRAM partition. */
class MailboxPage
{
  public:
    std::uint32_t
    read(std::uint32_t idx) const
    {
        SIM_ASSERT(idx < kMailboxesPerContext, "mailbox index");
        return words_[idx];
    }

    void
    write(std::uint32_t idx, std::uint32_t value)
    {
        SIM_ASSERT(idx < kMailboxesPerContext, "mailbox index");
        words_[idx] = value;
    }

  private:
    std::array<std::uint32_t, kMailboxesPerContext> words_{};
};

/**
 * The snooping hardware core's scratchpad: which contexts / mailboxes
 * have unprocessed writes.
 */
class MailboxEventHier
{
  public:
    /** Record a PIO write to (context, mailbox). */
    void
    post(std::uint32_t cxt, std::uint32_t mbox)
    {
        SIM_ASSERT(cxt < kMaxContexts, "context index");
        SIM_ASSERT(mbox < kMailboxesPerContext, "mailbox index");
        level0_ |= (1u << cxt);
        level1_[cxt] |= (1u << mbox);
    }

    /** Any context with pending events? */
    bool pending() const { return level0_ != 0; }

    /** Level-0 vector: bit per context. */
    std::uint32_t contextVector() const { return level0_; }

    /** Level-1 vector for one context: bit per mailbox. */
    std::uint32_t
    mailboxVector(std::uint32_t cxt) const
    {
        SIM_ASSERT(cxt < kMaxContexts, "context index");
        return level1_[cxt];
    }

    /**
     * Pop the lowest pending (context, mailbox) pair, as firmware does
     * when decoding the hierarchy.
     * @retval false nothing pending
     */
    bool
    popLowest(std::uint32_t *cxt_out, std::uint32_t *mbox_out)
    {
        if (level0_ == 0)
            return false;
        std::uint32_t cxt =
            static_cast<std::uint32_t>(__builtin_ctz(level0_));
        std::uint32_t mbox =
            static_cast<std::uint32_t>(__builtin_ctz(level1_[cxt]));
        clear(cxt, mbox);
        if (cxt_out)
            *cxt_out = cxt;
        if (mbox_out)
            *mbox_out = mbox;
        return true;
    }

    /** Event-clear message: drop one (context, mailbox) event. */
    void
    clear(std::uint32_t cxt, std::uint32_t mbox)
    {
        level1_[cxt] &= ~(1u << mbox);
        if (level1_[cxt] == 0)
            level0_ &= ~(1u << cxt);
    }

    /** Clear every pending event of one context (context revocation). */
    void
    clearContext(std::uint32_t cxt)
    {
        level1_[cxt] = 0;
        level0_ &= ~(1u << cxt);
    }

    /**
     * Drop every pending event (firmware watchdog reboot): the
     * scratchpad is volatile, so undecoded doorbells are simply lost
     * and drivers must re-ring them.
     */
    void
    clearAll()
    {
        level0_ = 0;
        level1_.fill(0);
    }

  private:
    std::uint32_t level0_ = 0;
    std::array<std::uint32_t, kMaxContexts> level1_{};
};

} // namespace cdna::nic

#endif // CDNA_NIC_MAILBOX_HH
