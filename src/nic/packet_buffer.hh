/**
 * @file
 * On-NIC packet buffering (paper section 4).
 *
 * The CDNA RiceNIC gives each context 128 KB of transmit and 128 KB of
 * receive buffering, but "the NIC's transmit and receive packet buffers
 * are each managed globally, and hence packet buffering is shared
 * across all contexts".  We model each direction as one byte-counted
 * pool; contexts reserve space before DMA and release it when the
 * packet leaves the NIC.
 */

#ifndef CDNA_NIC_PACKET_BUFFER_HH
#define CDNA_NIC_PACKET_BUFFER_HH

#include <cstdint>

#include "sim/assert.hh"

namespace cdna::nic {

class PacketBufferPool
{
  public:
    explicit PacketBufferPool(std::uint64_t capacity_bytes)
        : capacity_(capacity_bytes)
    {
    }

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t used() const { return used_; }
    std::uint64_t available() const { return capacity_ - used_; }

    /** Reserve @p bytes; fails (returns false) when the pool is full. */
    bool
    tryReserve(std::uint64_t bytes)
    {
        if (used_ + bytes > capacity_)
            return false;
        used_ += bytes;
        if (used_ > highWater_)
            highWater_ = used_;
        return true;
    }

    void
    release(std::uint64_t bytes)
    {
        SIM_ASSERT(bytes <= used_, "buffer pool underflow");
        used_ -= bytes;
    }

    /**
     * Firmware reboot: the buffer SRAM content (and with it every
     * outstanding reservation of the dead image) is gone.
     */
    void reset() { used_ = 0; }

    std::uint64_t highWater() const { return highWater_; }

  private:
    std::uint64_t capacity_;
    std::uint64_t used_ = 0;
    std::uint64_t highWater_ = 0;
};

} // namespace cdna::nic

#endif // CDNA_NIC_PACKET_BUFFER_HH
