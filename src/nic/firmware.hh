/**
 * @file
 * Embedded NIC processor service model.
 *
 * The RiceNIC runs its datapath on one 300 MHz PowerPC (paper section
 * 4: one of the two embedded processors suffices to saturate the
 * link).  Firmware work -- decoding mailbox events, fetching and
 * validating descriptors, programming DMA, multiplexing contexts -- is
 * modeled as serially-executed jobs with per-operation costs, so a
 * saturated firmware processor becomes a visible bottleneck instead of
 * an invisible assumption.
 */

#ifndef CDNA_NIC_FIRMWARE_HH
#define CDNA_NIC_FIRMWARE_HH

#include <cstdint>
#include <functional>

#include "sim/sim_object.hh"

namespace cdna::nic {

/** One embedded processor executing firmware jobs FIFO. */
class FirmwareProc : public sim::SimObject
{
  public:
    FirmwareProc(sim::SimContext &ctx, std::string name);

    /**
     * Execute a firmware job costing @p cost processor time; @p fn runs
     * at completion.  Jobs queue when the processor is busy.
     */
    void exec(sim::Time cost, std::function<void()> fn);

    /** Completion time a job of @p cost would get if submitted now. */
    sim::Time estimate(sim::Time cost) const;

    /**
     * Wedge the processor for @p duration (fault injection): queued and
     * newly submitted jobs execute only after the stall ends.
     */
    void stall(sim::Time duration);

    /**
     * Power-cycle the processor: unlike stall(), the running firmware
     * image dies.  The epoch advances so continuations of jobs that
     * were in flight can detect they belong to the dead image and must
     * not touch post-reboot state; the processor is then busy for
     * @p down_time while the new image boots.
     */
    void reboot(sim::Time down_time);

    /** Firmware image generation; bumped by reboot(). */
    std::uint64_t epoch() const { return epoch_; }

    std::uint64_t stallCount() const { return nStalls_.value(); }
    std::uint64_t rebootCount() const { return nReboots_.value(); }

    /** Fraction of elapsed time the processor has been busy. */
    double utilization(sim::Time elapsed) const;

    /** Cumulative busy time (observability gauges take deltas of this). */
    sim::Time busyTime() const { return busyAccum_; }

    std::uint64_t jobsRun() const { return nJobs_.value(); }

  private:
    sim::Time busyUntil_ = 0;
    sim::Time busyAccum_ = 0;
    std::uint64_t epoch_ = 0;
    sim::Counter &nJobs_;
    sim::Counter &nStalls_;
    sim::Counter &nReboots_;
};

} // namespace cdna::nic

#endif // CDNA_NIC_FIRMWARE_HH
