/**
 * @file
 * Conventional single-context Gigabit NIC (the paper's Intel Pro/1000
 * MT baseline).
 *
 * One TX and one RX descriptor ring, owned by whichever OS the device
 * is assigned to (native Linux, or Xen's driver domain).  Supports TCP
 * segmentation offload: a TX descriptor may describe up to 64 KB of
 * payload which the NIC cuts into MTU frames on the wire.  The device
 * trusts its driver completely -- the trust relationship CDNA exists to
 * remove (paper section 2.2).
 */

#ifndef CDNA_NIC_INTEL_NIC_HH
#define CDNA_NIC_INTEL_NIC_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "nic/desc_ring.hh"
#include "nic/nic_base.hh"
#include "nic/packet_buffer.hh"

namespace cdna::nic {

/** Configuration of an IntelNic. */
struct IntelNicParams
{
    std::uint32_t txRingEntries = 256;
    std::uint32_t rxRingEntries = 256;
    std::uint64_t txBufferBytes = 256 * 1024;
    std::uint64_t rxBufferBytes = 256 * 1024;
    CoalesceParams coalesce{};
    /** Extra wire dead-time per transmitted packet (MAC pipeline). */
    sim::Time txInterFrameGap = sim::nanoseconds(80);
    /** Largest descriptor batch fetched per DMA. */
    std::uint32_t fetchBatch = 64;
    bool tso = true;
};

class IntelNic : public NicBase
{
  public:
    /** A received frame handed to the host driver. */
    struct RxDelivery
    {
        std::uint32_t pos;  //!< RX ring position the frame consumed
        net::Packet pkt;
    };

    IntelNic(sim::SimContext &ctx, std::string name, mem::PciBus &bus,
             mem::PhysMemory &mem, mem::DeviceId dev, net::Fabric &fabric,
             IntelNicParams params = {});

    // --- host/driver configuration -------------------------------------
    void setMac(net::MacAddr mac) { mac_ = mac; }
    net::MacAddr mac() const { return mac_; }
    void setPromiscuous(bool on) { promiscuous_ = on; }

    /** Domain whose memory the device DMAs on behalf of. */
    void setDmaDomain(mem::DomainId dom) { dmaDomain_ = dom; }

    /** Initialize the rings (driver attach time). */
    void configureTxRing(std::uint32_t entries, mem::PhysAddr base);
    void configureRxRing(std::uint32_t entries, mem::PhysAddr base);

    /** Host address the NIC DMA-writes consumer indices to. */
    void setStatusBlockAddr(mem::PhysAddr addr) { statusAddr_ = addr; }

    DescRing &txRing();
    DescRing &rxRing();

    // --- PIO interface ---------------------------------------------------
    /** Driver advertises TX descriptors valid up to @p producer. */
    void pioWriteTxProducer(std::uint32_t producer);
    /** Driver advertises posted RX buffers up to @p producer. */
    void pioWriteRxProducer(std::uint32_t producer);

    // --- host-visible completion state (DMA'd back to host memory) ------
    /** Free-running count of fully transmitted TX descriptors. */
    std::uint32_t txConsumer() const { return txConsumer_; }
    /** Free-running count of received frames delivered to host memory. */
    std::uint32_t rxConsumer() const { return rxConsumer_; }

    /** Driver pulls delivered frames (called from its IRQ handler). */
    std::vector<RxDelivery> drainRx();

    /**
     * Quiesce the TX DMA engine (hypervisor killing the owning
     * domain).  Every outstanding TX descriptor is consumed without
     * touching host memory -- the engine must stop referencing pages
     * the dead domain had mapped -- and in-flight TX continuations are
     * abandoned.  The consumer index skips to the producer so the
     * (surviving or restarted) driver's accounting stays consistent.
     * RX is left running: it lands in device-owned buffer pages and the
     * dead bridge discards it.  Returns the number of packets dropped.
     */
    std::uint64_t quiesceTx();

    // --- stats -----------------------------------------------------------
    std::uint64_t txPackets() const { return nTxPackets_.value(); }
    std::uint64_t txPayloadBytes() const { return nTxPayload_.value(); }
    std::uint64_t rxPackets() const { return nRxPackets_.value(); }
    std::uint64_t rxPayloadBytes() const { return nRxPayload_.value(); }

    const IntelNicParams &params() const { return params_; }

    // --- LinkEndpoint ------------------------------------------------------
    void receiveFrame(net::Packet pkt) override;

  private:
    void startTxFetch();
    void pumpTx();
    void startRxFetch();
    void scheduleConsumerWriteback();

    IntelNicParams params_;
    net::MacAddr mac_;
    bool promiscuous_ = false;
    mem::DomainId dmaDomain_ = mem::kDomInvalid;
    mem::PhysAddr statusAddr_ = 0;

    std::optional<DescRing> txRing_;
    std::optional<DescRing> rxRing_;
    PacketBufferPool txBuf_;
    PacketBufferPool rxBuf_;

    // TX state (free-running indices)
    std::uint32_t txProducer_ = 0;  //!< driver-advertised
    std::uint32_t txFetched_ = 0;   //!< descriptors fetched from host
    std::uint32_t txConsumer_ = 0;  //!< transmitted
    bool txFetchBusy_ = false;
    bool txDataBusy_ = false;
    std::deque<std::uint32_t> txPending_;
    /** Bumped by quiesceTx(); stale TX continuations early-return. */
    std::uint64_t txEpoch_ = 0;

    // RX state
    std::uint32_t rxProducer_ = 0;
    std::uint32_t rxFetched_ = 0;
    std::uint32_t rxUsed_ = 0;      //!< descriptors consumed by frames
    std::uint32_t rxConsumer_ = 0;  //!< deliveries completed to host
    bool rxFetchBusy_ = false;
    std::vector<RxDelivery> rxReady_;

    bool writebackBusy_ = false;
    bool writebackAgain_ = false;

    sim::Counter &nTxPackets_;
    sim::Counter &nTxPayload_;
    sim::Counter &nRxPackets_;
    sim::Counter &nRxPayload_;
    sim::Counter &nTxGhost_;
    sim::Counter &nTxResetDrops_;
};

} // namespace cdna::nic

#endif // CDNA_NIC_INTEL_NIC_HH
