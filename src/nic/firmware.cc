#include "nic/firmware.hh"

#include <algorithm>
#include <utility>

#include "sim/assert.hh"

namespace cdna::nic {

FirmwareProc::FirmwareProc(sim::SimContext &ctx, std::string name)
    : sim::SimObject(ctx, std::move(name)),
      nJobs_(stats().addCounter("jobs")),
      nStalls_(stats().addCounter("stalls")),
      nReboots_(stats().addCounter("reboots"))
{
}

void
FirmwareProc::exec(sim::Time cost, std::function<void()> fn)
{
    SIM_ASSERT(cost >= 0, "negative firmware cost");
    nJobs_.inc();
    sim::Time start = std::max(now(), busyUntil_);
    busyUntil_ = start + cost;
    busyAccum_ += cost;
    CDNA_TRACE_SPAN(ctx().tracer(), traceLane(), "fw_job", start, cost);
    events().scheduleAt(busyUntil_, std::move(fn));
}

sim::Time
FirmwareProc::estimate(sim::Time cost) const
{
    return std::max(now(), busyUntil_) + cost;
}

void
FirmwareProc::stall(sim::Time duration)
{
    SIM_ASSERT(duration >= 0, "negative firmware stall");
    nStalls_.inc();
    sim::Time start = std::max(now(), busyUntil_);
    busyUntil_ = start + duration;
    busyAccum_ += duration;
    CDNA_TRACE_SPAN(ctx().tracer(), traceLane(), "fw_stall", start,
                    duration);
}

void
FirmwareProc::reboot(sim::Time down_time)
{
    SIM_ASSERT(down_time >= 0, "negative firmware reboot time");
    ++epoch_;
    nReboots_.inc();
    // The queued backlog dies with the old image; the new image owns
    // the processor from now until boot completes.
    busyUntil_ = now() + down_time;
    busyAccum_ += down_time;
    CDNA_TRACE_SPAN(ctx().tracer(), traceLane(), "fw_reboot", now(),
                    down_time);
}

double
FirmwareProc::utilization(sim::Time elapsed) const
{
    if (elapsed <= 0)
        return 0.0;
    return static_cast<double>(busyAccum_) / static_cast<double>(elapsed);
}

} // namespace cdna::nic
