#include "nic/firmware.hh"

#include <algorithm>
#include <utility>

#include "sim/assert.hh"

namespace cdna::nic {

FirmwareProc::FirmwareProc(sim::SimContext &ctx, std::string name)
    : sim::SimObject(ctx, std::move(name)),
      nJobs_(stats().addCounter("jobs")),
      nStalls_(stats().addCounter("stalls"))
{
}

void
FirmwareProc::exec(sim::Time cost, std::function<void()> fn)
{
    SIM_ASSERT(cost >= 0, "negative firmware cost");
    nJobs_.inc();
    sim::Time start = std::max(now(), busyUntil_);
    busyUntil_ = start + cost;
    busyAccum_ += cost;
    CDNA_TRACE_SPAN(ctx().tracer(), traceLane(), "fw_job", start, cost);
    events().scheduleAt(busyUntil_, std::move(fn));
}

sim::Time
FirmwareProc::estimate(sim::Time cost) const
{
    return std::max(now(), busyUntil_) + cost;
}

void
FirmwareProc::stall(sim::Time duration)
{
    SIM_ASSERT(duration >= 0, "negative firmware stall");
    nStalls_.inc();
    sim::Time start = std::max(now(), busyUntil_);
    busyUntil_ = start + duration;
    busyAccum_ += duration;
    CDNA_TRACE_SPAN(ctx().tracer(), traceLane(), "fw_stall", start,
                    duration);
}

double
FirmwareProc::utilization(sim::Time elapsed) const
{
    if (elapsed <= 0)
        return 0.0;
    return static_cast<double>(busyAccum_) / static_cast<double>(elapsed);
}

} // namespace cdna::nic
