#include "workload/traffic_app.hh"

#include <utility>

#include "sim/assert.hh"

namespace cdna::workload {

TrafficApp::TrafficApp(sim::SimContext &ctx, std::string name,
                       os::NetStack &stack, const core::CostModel &costs,
                       Params params)
    : sim::SimObject(ctx, std::move(name)),
      stack_(stack),
      costs_(costs),
      params_(params),
      nSent_(stats().addCounter("bytes_sent")),
      nReceived_(stats().addCounter("bytes_received")),
      nRxPkts_(stats().addCounter("packets_received")),
      nRpcServed_(stats().addCounter("rpc_served"))
{
    stack_.setRxDeliverHandler([this](std::uint64_t bytes,
                                      std::uint32_t pkts) {
        nReceived_.inc(bytes);
        nRxPkts_.inc(pkts);
    });
    stack_.setTxCompleteHandler([this](std::uint64_t bytes) {
        SIM_ASSERT(inFlight_ >= bytes, "window underflow");
        inFlight_ -= bytes;
        pump();
    });
    if (params_.rpcServer)
        stack_.setRpcHandler(
            [this](const net::Packet &req) { onRpc(req); });
}

void
TrafficApp::onRpc(const net::Packet &req)
{
    if (stopped_)
        return;
    // The server's work per request: one application write of the
    // response, paid in user time before the stack transmits it.
    sim::Time user_cost = costs_.appPerWrite +
        static_cast<sim::Time>(costs_.appPerByteNs *
                               static_cast<double>(req.rpcRespBytes) *
                               sim::kNanosecond);
    stack_.domain().vcpu().post(cpu::Bucket::kUser, user_cost,
                                [this, req] {
        if (stopped_)
            return;
        nRpcServed_.inc();
        stack_.sendRpcResponse(req);
    });
}

void
TrafficApp::start()
{
    if (started_)
        return;
    started_ = true;
    if (!params_.transmit)
        return;

    // One reused buffer per connection, sized for a chunk.
    auto &memory = stack_.domain().hypervisor().mem();
    std::uint64_t pages_per_buf =
        (params_.chunkBytes + mem::kPageSize - 1) / mem::kPageSize;
    for (std::uint32_t i = 0; i < params_.connections; ++i) {
        Conn c;
        c.id = i + 1;
        c.buffer = memory.alloc(stack_.domain().id(), pages_per_buf);
        SIM_ASSERT(!c.buffer.empty(), "out of memory for app buffer");
        conns_.push_back(std::move(c));
    }
    pump();
}

void
TrafficApp::pump()
{
    if (!started_ || stopped_ || !params_.transmit || pumpActive_)
        return;
    if (inFlight_ + params_.chunkBytes > params_.windowBytes)
        return;
    if (!stack_.device().canTransmit())
        return; // the stack's tx-space callback will re-pump via sendBurst
    pumpActive_ = true;

    Conn &c = conns_[rr_];
    rr_ = (rr_ + 1) % conns_.size();
    inFlight_ += params_.chunkBytes;

    sim::Time user_cost = costs_.appPerWrite +
        static_cast<sim::Time>(costs_.appPerByteNs *
                               static_cast<double>(params_.chunkBytes) *
                               sim::kNanosecond);

    stack_.domain().vcpu().post(cpu::Bucket::kUser, user_cost,
                                [this, &c] {
        nSent_.inc(params_.chunkBytes);
        stack_.sendBurst(params_.chunkBytes, c.id, c.buffer);
        pumpActive_ = false;
        pump();
    });
}

} // namespace cdna::workload
