/**
 * @file
 * The benchmark application (paper section 5.1).
 *
 * Models the paper's "multithreaded, event-driven, lightweight network
 * benchmark program": a configurable number of connections per
 * interface, bandwidth balanced across them round-robin, and a single
 * reused buffer per connection to minimize memory footprint (which is
 * why user-mode CPU cost is tiny in the paper's profiles).
 *
 * Transmit mode: keeps up to window bytes in flight per interface,
 * writing 64 KB chunks; completions (the guest-visible TX done signal)
 * open the window again.  Receive mode: sinks whatever the stack
 * delivers.
 */

#ifndef CDNA_WORKLOAD_TRAFFIC_APP_HH
#define CDNA_WORKLOAD_TRAFFIC_APP_HH

#include <cstdint>
#include <vector>

#include "os/net_stack.hh"

namespace cdna::workload {

class TrafficApp : public sim::SimObject
{
  public:
    struct Params
    {
        std::uint32_t connections = 2;
        /** Aggregate in-flight limit across the connections. */
        std::uint64_t windowBytes = 512 * 1024;
        /** Bytes per socket write. */
        std::uint32_t chunkBytes = 65536;
        /** Generate traffic (transmit test) or only sink (receive). */
        bool transmit = true;
        /** Answer RPC request frames (net/workload/) with responses of
         *  the requested size, paying user time per request. */
        bool rpcServer = false;
    };

    TrafficApp(sim::SimContext &ctx, std::string name, os::NetStack &stack,
               const core::CostModel &costs, Params params);

    /** Begin generating (transmit mode) -- receive mode needs no start. */
    void start();

    /** Stop with the owning domain: no further writes are issued. */
    void stop() { stopped_ = true; }

    std::uint64_t bytesSent() const { return nSent_.value(); }
    std::uint64_t bytesReceived() const { return nReceived_.value(); }
    std::uint64_t packetsReceived() const { return nRxPkts_.value(); }
    /** RPC requests answered (rpcServer mode). */
    std::uint64_t rpcServed() const { return nRpcServed_.value(); }

  private:
    void pump();
    void onRpc(const net::Packet &req);

    os::NetStack &stack_;
    const core::CostModel &costs_;
    Params params_;

    struct Conn
    {
        std::uint64_t id;
        std::vector<mem::PageNum> buffer;
    };

    std::vector<Conn> conns_;
    std::size_t rr_ = 0;
    std::uint64_t inFlight_ = 0;
    bool pumpActive_ = false;
    bool started_ = false;
    bool stopped_ = false;

    sim::Counter &nSent_;
    sim::Counter &nReceived_;
    sim::Counter &nRxPkts_;
    sim::Counter &nRpcServed_;
};

} // namespace cdna::workload

#endif // CDNA_WORKLOAD_TRAFFIC_APP_HH
