/**
 * @file
 * Xen's software I/O virtualization path (paper sections 2.1-2.2).
 *
 * DriverDomainNet composes, per physical NIC: the native driver bound
 * to the NIC, the software Ethernet bridge, and one XenVif (front-end /
 * back-end pair) per guest.  The data paths follow the paper exactly:
 *
 *  TX: guest stack -> frontend (grant pages, put request, event-channel
 *      notify) -> backend (map grants, bridge lookup) -> native driver
 *      -> NIC; completions unwind through the driver domain, ending in
 *      a TX response and a virtual interrupt to the guest.
 *
 *  RX: NIC -> native driver (driver-domain buffer) -> bridge demux by
 *      MAC -> backend page-flips the packet page to the guest in
 *      exchange for a posted guest page -> RX response + virtual
 *      interrupt -> frontend -> guest stack.
 *
 * Every hypervisor-mediated step (grant map/unmap, page flip,
 * event-channel send) charges hypervisor time; every driver-domain step
 * charges driver-domain OS time.  That split is what the paper's
 * execution profiles measure.
 */

#ifndef CDNA_OS_XEN_NET_HH
#define CDNA_OS_XEN_NET_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/cost_model.hh"
#include "os/net_device.hh"
#include "vmm/hypervisor.hh"

namespace cdna::os {

class DriverDomainNet;

/**
 * One paravirtual network interface: the guest-side front-end (a
 * NetDevice the guest's stack drives) plus the driver-domain-side
 * back-end state.
 */
class XenVif : public sim::SimObject, public NetDevice
{
  public:
    XenVif(sim::SimContext &ctx, std::string name, DriverDomainNet &ddn,
           vmm::Domain &guest, net::MacAddr mac);

    // --- NetDevice (front-end, guest side) -------------------------------
    bool canTransmit() const override;
    void transmit(net::Packet pkt) override;
    void flush() override;
    net::MacAddr mac() const override { return mac_; }
    bool tsoCapable() const override;

    vmm::Domain &guest() { return guest_; }

    /** Shared-ring capacity (slots) in each direction. */
    static constexpr std::uint32_t kRingSlots = 256;

    std::uint64_t rxDropNoBuffer() const { return nRxDropNoBuf_.value(); }

    /**
     * Arm the dead-backend watchdog (frontend reconnection protocol).
     * Only called when a fault plan schedules a driver-domain crash,
     * so fault-free runs execute the exact pre-fault event sequence.
     *
     * The watchdog polls the backend every feWatchdogPeriod (modeling
     * the event-channel/Xenstore timeout a real netfront uses).  On a
     * dead backend the frontend enters kWaitingReconnect and retries
     * with exponential backoff until the restarted backend answers,
     * then renegotiates: reclaims grants orphaned by the crash,
     * resets the TX ring accounting, reposts its RX buffers, and
     * resumes transmission (TCP retransmits the lost window; the
     * open-loop app window is reopened by a counted-loss completion).
     */
    void enableReconnect();

    /** Fires when a reconnection completes (availability tracking). */
    void setReconnectedHook(std::function<void()> fn)
    {
        onReconnected_ = std::move(fn);
    }

    std::uint64_t reconnects() const { return nReconnects_.value(); }
    /** RX packets dropped because the backend was down. */
    std::uint64_t outageRxDrops() const { return nOutageDrops_.value(); }
    /** TX packets orphaned inside the crashed driver domain. */
    std::uint64_t txLostCrash() const { return nLostTx_.value(); }

  private:
    friend class DriverDomainNet;

    struct TxRequest
    {
        net::Packet pkt;
        std::vector<mem::GrantRef> grants;
    };

    /** Completion record flowing back to the guest. */
    struct TxResponse
    {
        std::uint64_t bytes;
        std::vector<mem::GrantRef> grants;
    };

    /** Driver-domain-side record of an in-flight transmit. */
    struct TxMeta
    {
        std::vector<mem::GrantRef> grants;
        std::uint64_t bytes;
    };

    /** Front-end: consume TX responses + RX packets (one channel). */
    void frontendIrq();
    /** Back-end: consume TX requests from the shared ring. */
    void backendIrq();
    /** Post guest pages for reception. */
    void postRxBuffers();
    void armFeWatchdog();
    void feWatchdogFire();
    void scheduleReconnectAttempt();
    void attemptReconnect();
    void completeReconnect();
    DriverDomainNet &ddn_;
    vmm::Domain &guest_;
    net::MacAddr mac_;

    // Shared rings (request/response queues between the domains).
    std::deque<TxRequest> txReq_;
    std::deque<TxResponse> txResp_;
    std::deque<mem::PageNum> rxReq_; //!< guest pages posted for RX
    std::deque<net::Packet> rxResp_; //!< flipped-in packets

    std::uint32_t txOutstanding_ = 0; //!< requests not yet responded
    bool txWasFull_ = false;

    std::deque<net::Packet> feBacklog_; //!< awaiting a flush task
    bool feFlushPending_ = false;

    std::deque<mem::PageNum> guestFreePages_;

    // Per-vif staging of bridge-demuxed packets (driver-domain side).
    std::vector<net::Packet> rxStage_;

    vmm::EventChannel *feChannel_ = nullptr; //!< notifies the guest
    vmm::EventChannel *beChannel_ = nullptr; //!< notifies the driver dom

    // Frontend reconnection state machine (see enableReconnect()).
    enum class FeState
    {
        kConnected,
        kWaitingReconnect,
    };
    FeState feState_ = FeState::kConnected;
    bool feWatchdogArmed_ = false;
    sim::Time reconnectBackoff_ = 0;
    std::vector<mem::GrantRef> orphanGrants_; //!< left by a backend crash
    std::uint64_t orphanTxBytes_ = 0;
    std::function<void()> onReconnected_;

    sim::Counter &nTxPkts_;
    sim::Counter &nRxPkts_;
    sim::Counter &nRxDropNoBuf_;
    sim::Counter &nReconnects_;
    sim::Counter &nOutageDrops_;
    sim::Counter &nLostTx_;
};

/**
 * The driver domain's networking for one physical NIC: native driver +
 * bridge + all backends.
 */
class DriverDomainNet : public sim::SimObject
{
  public:
    /**
     * @param phys the physical NetDevice (a NativeDriver on an IntelNic,
     *             or a CdnaGuestDriver on a CDNA NIC context assigned to
     *             the driver domain -- the paper's Xen/RiceNIC rows)
     */
    DriverDomainNet(sim::SimContext &ctx, std::string name,
                    vmm::Domain &driver_dom, NetDevice &phys,
                    const core::CostModel &costs);

    /** Create the vif for @p guest with MAC @p mac on this bridge. */
    XenVif &createVif(vmm::Domain &guest, net::MacAddr mac);

    vmm::Domain &driverDomain() { return drvDom_; }
    NetDevice &phys() { return phys_; }
    const core::CostModel &costs() const { return costs_; }
    vmm::Hypervisor &hv() { return drvDom_.hypervisor(); }

    /**
     * Receive-path mechanism: page flipping (the paper's Xen 3, the
     * default) or copying into the guest's posted page (the mechanism
     * that later replaced flipping).  Copy mode trades a per-byte
     * driver-domain memcpy for the flip hypercall and its TLB costs.
     */
    void setRxCopyMode(bool on) { rxCopyMode_ = on; }
    bool rxCopyMode() const { return rxCopyMode_; }

    std::uint64_t bridgeRxDropNoVif() const { return nNoVif_.value(); }

    /**
     * The driver domain crashed (fault injection): the backend stops
     * answering, every in-flight TX is orphaned (grants recorded for
     * the frontends to reclaim at reconnect), staged RX is dropped
     * with its NIC buffer pages recycled, and until restart() every
     * packet the physical driver delivers is dropped and counted.
     * Grant mappings held by the dead domain are revoked separately by
     * the hypervisor (System::killDriverDomain).
     */
    void crash();
    /** The rebooted driver domain is back; frontends reconnect. */
    void restart();
    bool backendUp() const { return backendUp_; }

    /** All vifs on this bridge (recovery wiring, availability). */
    const std::vector<std::unique_ptr<XenVif>> &vifs() const
    {
        return vifs_;
    }

    /** Total RX packets dropped while the backend was down. */
    std::uint64_t outageRxDrops() const { return nOutageDrops_.value(); }

  private:
    friend class XenVif;

    /** Backend hands a packet to the bridge toward the wire. */
    void bridgeTx(XenVif &vif, XenVif::TxRequest req);
    /** Physical driver delivered a packet; demux to a vif. */
    void onPhysRx(net::Packet pkt);
    void onPhysTxComplete(std::uint64_t bytes);
    void scheduleRxCollect();
    void collectRx();
    void scheduleTxCompleteCollect();
    void collectTxComplete();

    vmm::Domain &drvDom_;
    NetDevice &phys_;
    const core::CostModel &costs_;

    std::vector<std::unique_ptr<XenVif>> vifs_;
    std::unordered_map<std::uint64_t, XenVif *> macTable_;

    /** FIFO metadata matching the physical driver's TX completions. */
    std::deque<std::pair<XenVif *, XenVif::TxMeta>> txMeta_;

    std::vector<XenVif *> rxTouched_;
    bool rxCollectPending_ = false;
    bool rxCopyMode_ = false;

    /** Completions staged until the batch-collect task runs. */
    std::vector<std::pair<XenVif *, XenVif::TxMeta>> txCompStage_;
    bool txCompCollectPending_ = false;
    bool backendUp_ = true;

    sim::Counter &nNoVif_;
    sim::Counter &nBridgePkts_;
    sim::Counter &nOutageDrops_;
};

} // namespace cdna::os

#endif // CDNA_OS_XEN_NET_HH
