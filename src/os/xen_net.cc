#include "os/xen_net.hh"

#include <algorithm>
#include <utility>

#include "sim/assert.hh"

namespace cdna::os {

// ===================== XenVif =============================================

XenVif::XenVif(sim::SimContext &ctx, std::string name, DriverDomainNet &ddn,
               vmm::Domain &guest, net::MacAddr mac)
    : sim::SimObject(ctx, std::move(name)),
      ddn_(ddn),
      guest_(guest),
      mac_(mac),
      nTxPkts_(stats().addCounter("tx_packets")),
      nRxPkts_(stats().addCounter("rx_packets")),
      nRxDropNoBuf_(stats().addCounter("rx_drop_no_buffer"))
{
    auto &hv = ddn_.hv();
    feChannel_ = &hv.createChannel(guest_, ddn_.costs().irqEntry,
                                   [this] { frontendIrq(); });
    beChannel_ = &hv.createChannel(ddn_.driverDomain(),
                                   ddn_.costs().irqEntry,
                                   [this] { backendIrq(); });

    // Seed the guest's RX page pool and post buffers for reception.
    auto pages = hv.mem().alloc(guest_.id(), kRingSlots + 64);
    SIM_ASSERT(!pages.empty(), "out of memory for vif RX pool");
    for (auto p : pages)
        guestFreePages_.push_back(p);
    postRxBuffers();
}

bool
XenVif::canTransmit() const
{
    return txOutstanding_ + feBacklog_.size() < kRingSlots;
}

bool
XenVif::tsoCapable() const
{
    return ddn_.phys().tsoCapable();
}

void
XenVif::transmit(net::Packet pkt)
{
    SIM_ASSERT(canTransmit(), "vif transmit past ring capacity");
    feBacklog_.push_back(std::move(pkt));
    if (!canTransmit())
        txWasFull_ = true;
}

void
XenVif::flush()
{
    if (feFlushPending_ || feBacklog_.empty())
        return;
    feFlushPending_ = true;
    auto n = static_cast<std::uint32_t>(feBacklog_.size());
    std::uint64_t bytes = 0;
    for (const auto &p : feBacklog_)
        bytes += p.payloadBytes;
    const auto &c = ddn_.costs();
    sim::Time cost = n * c.feTxPerPacket +
        static_cast<sim::Time>(c.feTxPerByteNs *
                               static_cast<double>(bytes) *
                               sim::kNanosecond);
    guest_.vcpu().post(cpu::Bucket::kOs, cost, [this] {
        feFlushPending_ = false;
        auto &grants = ddn_.hv().grants();
        while (!feBacklog_.empty()) {
            TxRequest req;
            req.pkt = std::move(feBacklog_.front());
            feBacklog_.pop_front();
            for (const auto &e : req.pkt.hostSg) {
                mem::PageNum first = mem::pageOf(e.addr);
                mem::PageNum last = mem::pageOf(e.addr + e.len - 1);
                for (mem::PageNum p = first; p <= last; ++p) {
                    mem::GrantRef ref = grants.grantAccess(
                        guest_.id(), ddn_.driverDomain().id(), p);
                    if (ref != mem::kInvalidGrant)
                        req.grants.push_back(ref);
                }
            }
            ++txOutstanding_;
            nTxPkts_.inc();
            txReq_.push_back(std::move(req));
        }
        // One event-channel kick covers the whole burst.
        ddn_.hv().notifyChannel(*beChannel_);
    });
}

void
XenVif::backendIrq()
{
    auto n = static_cast<std::uint32_t>(txReq_.size());
    if (n == 0)
        return;
    std::uint64_t bytes = 0;
    for (const auto &r : txReq_)
        bytes += r.pkt.payloadBytes;
    const auto &c = ddn_.costs();
    sim::Time cost = c.backendPerWake +
        n * (c.beTxPerPacket + c.bridgePerPacket) +
        static_cast<sim::Time>(c.beTxPerByteNs *
                               static_cast<double>(bytes) *
                               sim::kNanosecond);

    ddn_.driverDomain().vcpu().post(cpu::Bucket::kOs, cost, [this] {
        // Count pages for the grant-map hypercall batch.
        std::uint64_t pages = 0;
        for (const auto &r : txReq_)
            pages += r.grants.size();
        auto &hv = ddn_.hv();
        hv.hypercall(static_cast<sim::Time>(pages) *
                         hv.params().grantMapPerPage,
                     [this] {
            auto &grants = ddn_.hv().grants();
            while (!txReq_.empty()) {
                TxRequest req = std::move(txReq_.front());
                txReq_.pop_front();
                for (auto ref : req.grants)
                    grants.mapGrant(ref, ddn_.driverDomain().id(), nullptr);
                ddn_.bridgeTx(*this, std::move(req));
            }
            ddn_.phys().flush();
        });
    });
}

void
XenVif::postRxBuffers()
{
    while (rxReq_.size() < kRingSlots && !guestFreePages_.empty()) {
        rxReq_.push_back(guestFreePages_.front());
        guestFreePages_.pop_front();
    }
}

void
XenVif::frontendIrq()
{
    auto tx = static_cast<std::uint32_t>(txResp_.size());
    auto rx = static_cast<std::uint32_t>(rxResp_.size());
    if (tx == 0 && rx == 0)
        return;
    const auto &c = ddn_.costs();
    sim::Time cost = tx * c.feTxCompletion + rx * c.feRxPerPacket;

    guest_.vcpu().post(cpu::Bucket::kOs, cost, [this] {
        auto &grants = ddn_.hv().grants();
        while (!txResp_.empty()) {
            TxResponse resp = std::move(txResp_.front());
            txResp_.pop_front();
            for (auto ref : resp.grants)
                grants.endGrant(ref, guest_.id());
            SIM_ASSERT(txOutstanding_ > 0, "tx response underflow");
            --txOutstanding_;
            deliverTxComplete(resp.bytes);
        }
        while (!rxResp_.empty()) {
            net::Packet pkt = std::move(rxResp_.front());
            rxResp_.pop_front();
            nRxPkts_.inc();
            if (!pkt.hostSg.empty())
                guestFreePages_.push_back(mem::pageOf(pkt.hostSg[0].addr));
            deliverRx(std::move(pkt));
        }
        postRxBuffers();
        if (txWasFull_ && canTransmit()) {
            txWasFull_ = false;
            deliverTxSpace();
        }
    });
}

// ===================== DriverDomainNet ====================================

DriverDomainNet::DriverDomainNet(sim::SimContext &ctx, std::string name,
                                 vmm::Domain &driver_dom, NetDevice &phys,
                                 const core::CostModel &costs)
    : sim::SimObject(ctx, std::move(name)),
      drvDom_(driver_dom),
      phys_(phys),
      costs_(costs),
      nNoVif_(stats().addCounter("bridge_no_vif")),
      nBridgePkts_(stats().addCounter("bridge_packets"))
{
    phys_.setAutoRefill(false);
    phys_.setRxHandler([this](net::Packet pkt) { onPhysRx(std::move(pkt)); });
    phys_.setTxCompleteHandler(
        [this](std::uint64_t bytes) { onPhysTxComplete(bytes); });
}

XenVif &
DriverDomainNet::createVif(vmm::Domain &guest, net::MacAddr mac)
{
    vifs_.push_back(std::make_unique<XenVif>(
        ctx(), name() + ".vif-" + guest.name(), *this, guest, mac));
    macTable_[mac.hash()] = vifs_.back().get();
    return *vifs_.back();
}

void
DriverDomainNet::bridgeTx(XenVif &vif, XenVif::TxRequest req)
{
    nBridgePkts_.inc();
    XenVif::TxMeta meta{std::move(req.grants), req.pkt.payloadBytes};
    if (!phys_.canTransmit()) {
        // Qdisc overflow: drop in the driver domain; the grants unwind
        // through the normal completion path.
        txCompStage_.emplace_back(&vif, std::move(meta));
        scheduleTxCompleteCollect();
        return;
    }
    txMeta_.emplace_back(&vif, std::move(meta));
    phys_.transmit(std::move(req.pkt));
}

void
DriverDomainNet::onPhysTxComplete(std::uint64_t bytes)
{
    (void)bytes;
    SIM_ASSERT(!txMeta_.empty(), "tx completion without metadata");
    txCompStage_.push_back(std::move(txMeta_.front()));
    txMeta_.pop_front();
    scheduleTxCompleteCollect();
}

void
DriverDomainNet::scheduleTxCompleteCollect()
{
    if (txCompCollectPending_)
        return;
    txCompCollectPending_ = true;
    drvDom_.vcpu().post(cpu::Bucket::kOs, 0, [this] { collectTxComplete(); });
}

void
DriverDomainNet::collectTxComplete()
{
    txCompCollectPending_ = false;
    if (txCompStage_.empty())
        return;
    auto batch = std::exchange(txCompStage_, {});
    auto n = static_cast<std::uint32_t>(batch.size());

    drvDom_.vcpu().post(cpu::Bucket::kOs, n * costs_.beTxCompletion,
                        [this, batch = std::move(batch)]() mutable {
        std::uint64_t pages = 0;
        for (const auto &[vif, meta] : batch)
            pages += meta.grants.size();
        auto &hvp = hv().params();
        hv().hypercall(static_cast<sim::Time>(pages) * hvp.grantUnmapPerPage,
                       [this, batch = std::move(batch)]() mutable {
            auto &grants = hv().grants();
            std::vector<XenVif *> touched;
            for (auto &[vif, meta] : batch) {
                for (auto ref : meta.grants)
                    grants.unmapGrant(ref, drvDom_.id());
                vif->txResp_.push_back(
                    XenVif::TxResponse{meta.bytes, std::move(meta.grants)});
                if (std::find(touched.begin(), touched.end(), vif) ==
                    touched.end())
                    touched.push_back(vif);
            }
            for (XenVif *vif : touched)
                hv().notifyChannel(*vif->feChannel_);
        });
    });
}

void
DriverDomainNet::onPhysRx(net::Packet pkt)
{
    auto it = macTable_.find(pkt.dst.hash());
    if (it == macTable_.end()) {
        nNoVif_.inc();
        // Recycle the NIC buffer page: nothing consumed it.
        if (!pkt.hostSg.empty())
            phys_.refillRx(mem::pageOf(pkt.hostSg[0].addr));
        return;
    }
    nBridgePkts_.inc();
    XenVif *vif = it->second;
    if (vif->rxStage_.empty())
        rxTouched_.push_back(vif);
    vif->rxStage_.push_back(std::move(pkt));
    scheduleRxCollect();
}

void
DriverDomainNet::scheduleRxCollect()
{
    if (rxCollectPending_)
        return;
    rxCollectPending_ = true;
    drvDom_.vcpu().post(cpu::Bucket::kOs, 0, [this] { collectRx(); });
}

void
DriverDomainNet::collectRx()
{
    rxCollectPending_ = false;
    if (rxTouched_.empty())
        return;
    auto touched = std::exchange(rxTouched_, {});
    std::uint32_t n = 0;
    std::uint64_t bytes = 0;
    for (XenVif *vif : touched) {
        n += static_cast<std::uint32_t>(vif->rxStage_.size());
        for (const auto &p : vif->rxStage_)
            bytes += p.payloadBytes;
    }

    sim::Time cost = costs_.backendPerWake +
        n * (costs_.bridgePerPacket + costs_.beRxPerPacket) +
        static_cast<sim::Time>(costs_.beRxPerByteNs *
                               static_cast<double>(bytes) *
                               sim::kNanosecond);
    if (rxCopyMode_) {
        // Copy mode: the memcpy runs in the driver domain.
        cost += static_cast<sim::Time>(costs_.beRxCopyPerByteNs *
                                       static_cast<double>(bytes) *
                                       sim::kNanosecond);
    }

    // Hypervisor share: one flip exchange per packet in flip mode; a
    // grant map+unmap of the guest's posted page in copy mode.
    auto &params = hv().params();
    sim::Time hv_cost = rxCopyMode_
        ? static_cast<sim::Time>(n) *
              (params.grantMapPerPage + params.grantUnmapPerPage)
        : static_cast<sim::Time>(n) * params.pageFlipPerPage;

    drvDom_.vcpu().post(cpu::Bucket::kOs, cost,
                        [this, touched = std::move(touched), hv_cost] {
        hv().hypercall(hv_cost,
                       [this, touched] {
            auto &memory = hv().mem();
            auto &grants = hv().grants();
            for (XenVif *vif : touched) {
                auto staged = std::exchange(vif->rxStage_, {});
                bool delivered = false;
                for (auto &pkt : staged) {
                    if (pkt.hostSg.empty()) {
                        // Packet without backing memory (synthetic);
                        // deliver without a flip.
                        vif->rxResp_.push_back(std::move(pkt));
                        delivered = true;
                        continue;
                    }
                    mem::PageNum pkt_page = mem::pageOf(pkt.hostSg[0].addr);
                    if (vif->rxReq_.empty()) {
                        vif->nRxDropNoBuf_.inc();
                        phys_.refillRx(pkt_page);
                        continue;
                    }
                    mem::PageNum posted = vif->rxReq_.front();
                    vif->rxReq_.pop_front();
                    if (rxCopyMode_) {
                        // Copy mode: data is copied into the guest's
                        // posted page; the NIC buffer page stays in the
                        // driver domain and is recycled immediately.
                        std::uint32_t len = pkt.hostSg.empty()
                            ? pkt.payloadBytes
                            : pkt.hostSg[0].len;
                        pkt.hostSg = {{mem::addrOf(posted), len}};
                        phys_.refillRx(pkt_page);
                    } else {
                        // Page-flip exchange: packet page to the guest,
                        // posted guest page to the driver domain.
                        bool ok1 = grants.transferPage(drvDom_.id(),
                                                       vif->guest_.id(),
                                                       pkt_page);
                        bool ok2 = grants.transferPage(vif->guest_.id(),
                                                       drvDom_.id(),
                                                       posted);
                        SIM_ASSERT(ok1 && ok2, "page flip failed");
                        phys_.refillRx(posted);
                    }
                    (void)memory;
                    vif->rxResp_.push_back(std::move(pkt));
                    delivered = true;
                }
                if (delivered)
                    hv().notifyChannel(*vif->feChannel_);
            }
        });
    });
}

} // namespace cdna::os
