#include "os/xen_net.hh"

#include <algorithm>
#include <utility>

#include "sim/assert.hh"
#include "sim/fault_injector.hh"

namespace cdna::os {

// ===================== XenVif =============================================

XenVif::XenVif(sim::SimContext &ctx, std::string name, DriverDomainNet &ddn,
               vmm::Domain &guest, net::MacAddr mac)
    : sim::SimObject(ctx, std::move(name)),
      ddn_(ddn),
      guest_(guest),
      mac_(mac),
      nTxPkts_(stats().addCounter("tx_packets")),
      nRxPkts_(stats().addCounter("rx_packets")),
      nRxDropNoBuf_(stats().addCounter("rx_drop_no_buffer")),
      nReconnects_(stats().addCounter("fe_reconnects")),
      nOutageDrops_(stats().addCounter("rx_outage_drops")),
      nLostTx_(stats().addCounter("tx_lost_crash"))
{
    auto &hv = ddn_.hv();
    feChannel_ = &hv.createChannel(guest_, ddn_.costs().irqEntry,
                                   [this] { frontendIrq(); });
    beChannel_ = &hv.createChannel(ddn_.driverDomain(),
                                   ddn_.costs().irqEntry,
                                   [this] { backendIrq(); });

    // Seed the guest's RX page pool and post buffers for reception.
    auto pages = hv.mem().alloc(guest_.id(), kRingSlots + 64);
    SIM_ASSERT(!pages.empty(), "out of memory for vif RX pool");
    for (auto p : pages)
        guestFreePages_.push_back(p);
    postRxBuffers();
}

bool
XenVif::canTransmit() const
{
    return txOutstanding_ + feBacklog_.size() < kRingSlots;
}

bool
XenVif::tsoCapable() const
{
    return ddn_.phys().tsoCapable();
}

void
XenVif::transmit(net::Packet pkt)
{
    SIM_ASSERT(canTransmit(), "vif transmit past ring capacity");
    feBacklog_.push_back(std::move(pkt));
    if (!canTransmit())
        txWasFull_ = true;
}

void
XenVif::flush()
{
    if (feFlushPending_ || feBacklog_.empty())
        return;
    feFlushPending_ = true;
    auto n = static_cast<std::uint32_t>(feBacklog_.size());
    std::uint64_t bytes = 0;
    for (const auto &p : feBacklog_)
        bytes += p.payloadBytes;
    const auto &c = ddn_.costs();
    sim::Time cost = n * c.feTxPerPacket +
        static_cast<sim::Time>(c.feTxPerByteNs *
                               static_cast<double>(bytes) *
                               sim::kNanosecond);
    guest_.vcpu().post(cpu::Bucket::kOs, cost, [this] {
        feFlushPending_ = false;
        auto &grants = ddn_.hv().grants();
        while (!feBacklog_.empty()) {
            TxRequest req;
            req.pkt = std::move(feBacklog_.front());
            feBacklog_.pop_front();
            for (const auto &e : req.pkt.hostSg) {
                mem::PageNum first = mem::pageOf(e.addr);
                mem::PageNum last = mem::pageOf(e.addr + e.len - 1);
                for (mem::PageNum p = first; p <= last; ++p) {
                    mem::GrantRef ref = grants.grantAccess(
                        guest_.id(), ddn_.driverDomain().id(), p);
                    if (ref != mem::kInvalidGrant)
                        req.grants.push_back(ref);
                }
            }
            ++txOutstanding_;
            nTxPkts_.inc();
            txReq_.push_back(std::move(req));
        }
        // One event-channel kick covers the whole burst.
        ddn_.hv().notifyChannel(*beChannel_);
    });
}

void
XenVif::enableReconnect()
{
    armFeWatchdog();
}

void
XenVif::armFeWatchdog()
{
    if (feWatchdogArmed_)
        return;
    feWatchdogArmed_ = true;
    events().schedule(ddn_.costs().feWatchdogPeriod,
                      [this] { feWatchdogFire(); });
}

void
XenVif::feWatchdogFire()
{
    feWatchdogArmed_ = false;
    if (feState_ == FeState::kConnected && !ddn_.backendUp()) {
        // The backend stopped answering its event channel: enter the
        // reconnect protocol.  The watchdog keeps running so a later
        // crash is detected too.
        feState_ = FeState::kWaitingReconnect;
        reconnectBackoff_ = ddn_.costs().feReconnectBackoffBase;
        CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "backend_dead",
                           now());
        scheduleReconnectAttempt();
    }
    armFeWatchdog();
}

void
XenVif::scheduleReconnectAttempt()
{
    events().schedule(reconnectBackoff_, [this] { attemptReconnect(); });
}

void
XenVif::attemptReconnect()
{
    if (!ddn_.backendUp()) {
        reconnectBackoff_ = std::min(reconnectBackoff_ * 2,
                                     ddn_.costs().feReconnectBackoffMax);
        scheduleReconnectAttempt();
        return;
    }
    // Backend answered: renegotiate rings/grants on the guest's vCPU.
    guest_.vcpu().post(cpu::Bucket::kOs, ddn_.costs().feReconnectCost,
                       [this] { completeReconnect(); });
}

void
XenVif::completeReconnect()
{
    auto &grants = ddn_.hv().grants();
    // Reclaim grants orphaned inside the crashed backend.  Their
    // mappings were revoked with the dead domain, so endGrant only
    // retires the (unmapped) entries.
    for (auto ref : orphanGrants_)
        grants.endGrant(ref, guest_.id());
    orphanGrants_.clear();

    // TX requests that were queued but never mapped survive in the
    // shared ring; everything the backend had in flight is lost.  The
    // loss is surfaced as a completion so the open-loop app window
    // reopens (the packets are already counted in tx_lost_crash); the
    // TCP transport ignores device completions and retransmits via RTO.
    if (orphanTxBytes_ > 0)
        deliverTxComplete(std::exchange(orphanTxBytes_, 0));
    txOutstanding_ = static_cast<std::uint32_t>(txReq_.size() +
                                                txResp_.size());

    // Renegotiate the RX ring: recycle the posted pages and repost.
    while (!rxReq_.empty()) {
        guestFreePages_.push_back(rxReq_.front());
        rxReq_.pop_front();
    }
    postRxBuffers();

    feState_ = FeState::kConnected;
    nReconnects_.inc();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "fe_reconnect", now());
    if (sim::FaultInjector *fi = ctx().faultInjector())
        fi->noteFrontendReconnect();
    if (onReconnected_)
        onReconnected_();

    // Resume: hand the retained ring backlog to the new backend and
    // wake the stack (ring space is fully available again).
    if (!txReq_.empty())
        ddn_.hv().notifyChannel(*beChannel_);
    txWasFull_ = false;
    deliverTxSpace();
}

void
XenVif::backendIrq()
{
    // The backend services the ring only while the domain is alive AND
    // this frontend is formally connected: after a crash, a restarted
    // backend must not touch a ring whose reconnection handshake (which
    // resets txOutstanding_ from the ring contents) has not completed,
    // or in-flight batches would escape the reset and underflow it.
    if (!ddn_.backendUp() || feState_ != FeState::kConnected)
        return; // requests wait in the ring
    auto n = static_cast<std::uint32_t>(txReq_.size());
    if (n == 0)
        return;
    std::uint64_t bytes = 0;
    for (const auto &r : txReq_)
        bytes += r.pkt.payloadBytes;
    const auto &c = ddn_.costs();
    sim::Time cost = c.backendPerWake +
        n * (c.beTxPerPacket + c.bridgePerPacket) +
        static_cast<sim::Time>(c.beTxPerByteNs *
                               static_cast<double>(bytes) *
                               sim::kNanosecond);

    ddn_.driverDomain().vcpu().post(cpu::Bucket::kOs, cost, [this] {
        if (!ddn_.backendUp() || feState_ != FeState::kConnected)
            return; // crashed (or not yet reconnected) between wake/service
        // Count pages for the grant-map hypercall batch.
        std::uint64_t pages = 0;
        for (const auto &r : txReq_)
            pages += r.grants.size();
        auto &hv = ddn_.hv();
        hv.hypercall(static_cast<sim::Time>(pages) *
                         hv.params().grantMapPerPage,
                     [this] {
            if (!ddn_.backendUp() || feState_ != FeState::kConnected)
                return;
            auto &grants = ddn_.hv().grants();
            bool dropped_any = false;
            while (!txReq_.empty()) {
                TxRequest req = std::move(txReq_.front());
                txReq_.pop_front();
                // A request whose grants will not map (e.g. a ref the
                // hypervisor revoked at a backend crash) must not reach
                // the wire: the backend has no legal window into the
                // page.  Unwind any partial mappings and drop it.
                bool mapped_all = true;
                std::size_t ok = 0;
                for (auto ref : req.grants) {
                    if (!grants.mapGrant(ref, ddn_.driverDomain().id(),
                                         nullptr)) {
                        mapped_all = false;
                        break;
                    }
                    ++ok;
                }
                if (!mapped_all) {
                    for (std::size_t i = 0; i < ok; ++i)
                        grants.unmapGrant(req.grants[i],
                                          ddn_.driverDomain().id());
                    txResp_.push_back(XenVif::TxResponse{
                        req.pkt.payloadBytes, std::move(req.grants)});
                    dropped_any = true;
                    continue;
                }
                ddn_.bridgeTx(*this, std::move(req));
            }
            if (dropped_any)
                ddn_.hv().notifyChannel(*feChannel_);
            ddn_.phys().flush();
        });
    });
}

void
XenVif::postRxBuffers()
{
    while (rxReq_.size() < kRingSlots && !guestFreePages_.empty()) {
        rxReq_.push_back(guestFreePages_.front());
        guestFreePages_.pop_front();
    }
}

void
XenVif::frontendIrq()
{
    auto tx = static_cast<std::uint32_t>(txResp_.size());
    auto rx = static_cast<std::uint32_t>(rxResp_.size());
    if (tx == 0 && rx == 0)
        return;
    const auto &c = ddn_.costs();
    sim::Time cost = tx * c.feTxCompletion + rx * c.feRxPerPacket;

    guest_.vcpu().post(cpu::Bucket::kOs, cost, [this] {
        auto &grants = ddn_.hv().grants();
        while (!txResp_.empty()) {
            TxResponse resp = std::move(txResp_.front());
            txResp_.pop_front();
            for (auto ref : resp.grants)
                grants.endGrant(ref, guest_.id());
            SIM_ASSERT(txOutstanding_ > 0, "tx response underflow");
            --txOutstanding_;
            deliverTxComplete(resp.bytes);
        }
        while (!rxResp_.empty()) {
            net::Packet pkt = std::move(rxResp_.front());
            rxResp_.pop_front();
            nRxPkts_.inc();
            if (!pkt.hostSg.empty())
                guestFreePages_.push_back(mem::pageOf(pkt.hostSg[0].addr));
            deliverRx(std::move(pkt));
        }
        postRxBuffers();
        if (txWasFull_ && canTransmit()) {
            txWasFull_ = false;
            deliverTxSpace();
        }
    });
}

// ===================== DriverDomainNet ====================================

DriverDomainNet::DriverDomainNet(sim::SimContext &ctx, std::string name,
                                 vmm::Domain &driver_dom, NetDevice &phys,
                                 const core::CostModel &costs)
    : sim::SimObject(ctx, std::move(name)),
      drvDom_(driver_dom),
      phys_(phys),
      costs_(costs),
      nNoVif_(stats().addCounter("bridge_no_vif")),
      nBridgePkts_(stats().addCounter("bridge_packets")),
      nOutageDrops_(stats().addCounter("outage_rx_drops"))
{
    phys_.setAutoRefill(false);
    phys_.setRxHandler([this](net::Packet pkt) { onPhysRx(std::move(pkt)); });
    phys_.setTxCompleteHandler(
        [this](std::uint64_t bytes) { onPhysTxComplete(bytes); });
}

XenVif &
DriverDomainNet::createVif(vmm::Domain &guest, net::MacAddr mac)
{
    vifs_.push_back(std::make_unique<XenVif>(
        ctx(), name() + ".vif-" + guest.name(), *this, guest, mac));
    macTable_[mac.hash()] = vifs_.back().get();
    return *vifs_.back();
}

void
DriverDomainNet::crash()
{
    if (!backendUp_)
        return;
    backendUp_ = false;

    // Everything the backend had in flight is orphaned: record the
    // grants (and the lost bytes) on each frontend so it can reclaim
    // them when it reconnects.  The hypervisor revokes the dead
    // domain's grant mappings separately.
    auto orphan = [](XenVif *vif, XenVif::TxMeta &meta) {
        vif->orphanTxBytes_ += meta.bytes;
        vif->nLostTx_.inc();
        for (auto ref : meta.grants)
            vif->orphanGrants_.push_back(ref);
    };
    for (auto &[vif, meta] : txMeta_)
        orphan(vif, meta);
    txMeta_.clear();
    for (auto &[vif, meta] : txCompStage_)
        orphan(vif, meta);
    txCompStage_.clear();

    // Staged RX died in driver-domain memory.  Recycle the NIC buffer
    // pages -- the adapter itself survived the crash -- so reception
    // can resume the moment the domain is back.
    for (XenVif *vif : rxTouched_) {
        for (auto &pkt : vif->rxStage_) {
            vif->nOutageDrops_.inc();
            nOutageDrops_.inc();
            if (!pkt.hostSg.empty())
                phys_.refillRx(mem::pageOf(pkt.hostSg[0].addr));
        }
        vif->rxStage_.clear();
    }
    rxTouched_.clear();
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "backend_crash", now());
}

void
DriverDomainNet::restart()
{
    if (backendUp_)
        return;
    backendUp_ = true;
    CDNA_TRACE_INSTANT(ctx().tracer(), traceLane(), "backend_restart",
                       now());
}

void
DriverDomainNet::bridgeTx(XenVif &vif, XenVif::TxRequest req)
{
    nBridgePkts_.inc();
    XenVif::TxMeta meta{std::move(req.grants), req.pkt.payloadBytes};
    if (!phys_.canTransmit()) {
        // Qdisc overflow: drop in the driver domain; the grants unwind
        // through the normal completion path.
        txCompStage_.emplace_back(&vif, std::move(meta));
        scheduleTxCompleteCollect();
        return;
    }
    txMeta_.emplace_back(&vif, std::move(meta));
    phys_.transmit(std::move(req.pkt));
}

void
DriverDomainNet::onPhysTxComplete(std::uint64_t bytes)
{
    (void)bytes;
    if (!backendUp_)
        return; // the metadata died with the domain; already orphaned
    SIM_ASSERT(!txMeta_.empty(), "tx completion without metadata");
    txCompStage_.push_back(std::move(txMeta_.front()));
    txMeta_.pop_front();
    scheduleTxCompleteCollect();
}

void
DriverDomainNet::scheduleTxCompleteCollect()
{
    if (txCompCollectPending_)
        return;
    txCompCollectPending_ = true;
    drvDom_.vcpu().post(cpu::Bucket::kOs, 0, [this] { collectTxComplete(); });
}

void
DriverDomainNet::collectTxComplete()
{
    txCompCollectPending_ = false;
    if (txCompStage_.empty())
        return;
    auto batch = std::exchange(txCompStage_, {});
    auto n = static_cast<std::uint32_t>(batch.size());

    // A crash between stage and service orphans the batch exactly as
    // if it were still staged (the lambdas own it by then).
    auto orphanBatch =
        [this](std::vector<std::pair<XenVif *, XenVif::TxMeta>> &batch) {
            for (auto &[vif, meta] : batch) {
                vif->orphanTxBytes_ += meta.bytes;
                vif->nLostTx_.inc();
                for (auto ref : meta.grants)
                    vif->orphanGrants_.push_back(ref);
            }
        };

    drvDom_.vcpu().post(cpu::Bucket::kOs, n * costs_.beTxCompletion,
                        [this, orphanBatch,
                         batch = std::move(batch)]() mutable {
        if (!backendUp_) {
            orphanBatch(batch);
            return;
        }
        std::uint64_t pages = 0;
        for (const auto &[vif, meta] : batch)
            pages += meta.grants.size();
        auto &hvp = hv().params();
        hv().hypercall(static_cast<sim::Time>(pages) * hvp.grantUnmapPerPage,
                       [this, orphanBatch,
                        batch = std::move(batch)]() mutable {
            if (!backendUp_) {
                orphanBatch(batch);
                return;
            }
            auto &grants = hv().grants();
            std::vector<XenVif *> touched;
            for (auto &[vif, meta] : batch) {
                for (auto ref : meta.grants)
                    grants.unmapGrant(ref, drvDom_.id());
                vif->txResp_.push_back(
                    XenVif::TxResponse{meta.bytes, std::move(meta.grants)});
                if (std::find(touched.begin(), touched.end(), vif) ==
                    touched.end())
                    touched.push_back(vif);
            }
            for (XenVif *vif : touched)
                hv().notifyChannel(*vif->feChannel_);
        });
    });
}

void
DriverDomainNet::onPhysRx(net::Packet pkt)
{
    if (!backendUp_) {
        // No bridge to demux: the packet is lost in the outage.
        nOutageDrops_.inc();
        auto victim = macTable_.find(pkt.dst.hash());
        if (victim != macTable_.end())
            victim->second->nOutageDrops_.inc();
        if (!pkt.hostSg.empty())
            phys_.refillRx(mem::pageOf(pkt.hostSg[0].addr));
        return;
    }
    auto it = macTable_.find(pkt.dst.hash());
    if (it == macTable_.end()) {
        nNoVif_.inc();
        // Recycle the NIC buffer page: nothing consumed it.
        if (!pkt.hostSg.empty())
            phys_.refillRx(mem::pageOf(pkt.hostSg[0].addr));
        return;
    }
    XenVif *vif = it->second;
    if (vif->feState_ != XenVif::FeState::kConnected) {
        // The frontend has not completed its reconnection handshake:
        // there is no negotiated RX ring to deliver into yet.
        nOutageDrops_.inc();
        vif->nOutageDrops_.inc();
        if (!pkt.hostSg.empty())
            phys_.refillRx(mem::pageOf(pkt.hostSg[0].addr));
        return;
    }
    nBridgePkts_.inc();
    if (vif->rxStage_.empty())
        rxTouched_.push_back(vif);
    vif->rxStage_.push_back(std::move(pkt));
    scheduleRxCollect();
}

void
DriverDomainNet::scheduleRxCollect()
{
    if (rxCollectPending_)
        return;
    rxCollectPending_ = true;
    drvDom_.vcpu().post(cpu::Bucket::kOs, 0, [this] { collectRx(); });
}

void
DriverDomainNet::collectRx()
{
    rxCollectPending_ = false;
    if (rxTouched_.empty())
        return;
    auto touched = std::exchange(rxTouched_, {});
    std::uint32_t n = 0;
    std::uint64_t bytes = 0;
    for (XenVif *vif : touched) {
        n += static_cast<std::uint32_t>(vif->rxStage_.size());
        for (const auto &p : vif->rxStage_)
            bytes += p.payloadBytes;
    }

    sim::Time cost = costs_.backendPerWake +
        n * (costs_.bridgePerPacket + costs_.beRxPerPacket) +
        static_cast<sim::Time>(costs_.beRxPerByteNs *
                               static_cast<double>(bytes) *
                               sim::kNanosecond);
    if (rxCopyMode_) {
        // Copy mode: the memcpy runs in the driver domain.
        cost += static_cast<sim::Time>(costs_.beRxCopyPerByteNs *
                                       static_cast<double>(bytes) *
                                       sim::kNanosecond);
    }

    // Hypervisor share: one flip exchange per packet in flip mode; a
    // grant map+unmap of the guest's posted page in copy mode.
    auto &params = hv().params();
    sim::Time hv_cost = rxCopyMode_
        ? static_cast<sim::Time>(n) *
              (params.grantMapPerPage + params.grantUnmapPerPage)
        : static_cast<sim::Time>(n) * params.pageFlipPerPage;

    // A crash while the batch waits drops it: the packets sat in
    // driver-domain memory the moment the domain died.
    auto dropStaged = [this](const std::vector<XenVif *> &touched) {
        for (XenVif *vif : touched) {
            for (auto &pkt : vif->rxStage_) {
                vif->nOutageDrops_.inc();
                nOutageDrops_.inc();
                if (!pkt.hostSg.empty())
                    phys_.refillRx(mem::pageOf(pkt.hostSg[0].addr));
            }
            vif->rxStage_.clear();
        }
    };

    drvDom_.vcpu().post(cpu::Bucket::kOs, cost,
                        [this, touched = std::move(touched), hv_cost,
                         dropStaged] {
        if (!backendUp_) {
            dropStaged(touched);
            return;
        }
        hv().hypercall(hv_cost,
                       [this, touched, dropStaged] {
            if (!backendUp_) {
                dropStaged(touched);
                return;
            }
            auto &memory = hv().mem();
            auto &grants = hv().grants();
            for (XenVif *vif : touched) {
                auto staged = std::exchange(vif->rxStage_, {});
                bool delivered = false;
                for (auto &pkt : staged) {
                    if (pkt.hostSg.empty()) {
                        // Packet without backing memory (synthetic);
                        // deliver without a flip.
                        vif->rxResp_.push_back(std::move(pkt));
                        delivered = true;
                        continue;
                    }
                    mem::PageNum pkt_page = mem::pageOf(pkt.hostSg[0].addr);
                    if (vif->rxReq_.empty()) {
                        vif->nRxDropNoBuf_.inc();
                        phys_.refillRx(pkt_page);
                        continue;
                    }
                    mem::PageNum posted = vif->rxReq_.front();
                    vif->rxReq_.pop_front();
                    if (rxCopyMode_) {
                        // Copy mode: data is copied into the guest's
                        // posted page; the NIC buffer page stays in the
                        // driver domain and is recycled immediately.
                        std::uint32_t len = pkt.hostSg.empty()
                            ? pkt.payloadBytes
                            : pkt.hostSg[0].len;
                        pkt.hostSg = {{mem::addrOf(posted), len}};
                        phys_.refillRx(pkt_page);
                    } else {
                        // Page-flip exchange: packet page to the guest,
                        // posted guest page to the driver domain.
                        bool ok1 = grants.transferPage(drvDom_.id(),
                                                       vif->guest_.id(),
                                                       pkt_page);
                        bool ok2 = grants.transferPage(vif->guest_.id(),
                                                       drvDom_.id(),
                                                       posted);
                        SIM_ASSERT(ok1 && ok2, "page flip failed");
                        phys_.refillRx(posted);
                    }
                    (void)memory;
                    vif->rxResp_.push_back(std::move(pkt));
                    delivered = true;
                }
                if (delivered)
                    hv().notifyChannel(*vif->feChannel_);
            }
        });
    });
}

} // namespace cdna::os
