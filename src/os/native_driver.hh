/**
 * @file
 * Native (unmodified-Linux-style) device driver for the IntelNic.
 *
 * Runs either directly in a native OS (Table 1's baseline) or inside
 * Xen's driver domain (sections 2.1-2.2): in the latter case physical
 * interrupts are fielded by the hypervisor and forwarded as virtual
 * interrupts.  The driver trusts and is trusted by the NIC -- it writes
 * raw physical addresses into DMA descriptors with no validation.
 */

#ifndef CDNA_OS_NATIVE_DRIVER_HH
#define CDNA_OS_NATIVE_DRIVER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/cost_model.hh"
#include "nic/intel_nic.hh"
#include "os/net_device.hh"
#include "vmm/hypervisor.hh"

namespace cdna::os {

class NativeDriver : public sim::SimObject, public NetDevice
{
  public:
    /** How the NIC's physical interrupt reaches this driver. */
    enum class IrqRoute
    {
        kDirect,        //!< native OS: IRQ lands on the vCPU directly
        kViaHypervisor, //!< Xen: hypervisor fields it, sends virtual IRQ
    };

    NativeDriver(sim::SimContext &ctx, std::string name, vmm::Domain &dom,
                 nic::IntelNic &nic, const core::CostModel &costs,
                 IrqRoute route, net::MacAddr mac);

    /** Allocate rings/buffers and bring the device up. */
    void attach();

    /**
     * Discard every packet queued but not yet posted to the NIC (the
     * owning domain just crashed; the queue lived in its memory).
     * Returns the number of packets dropped.
     */
    std::uint64_t dropQdisc();

    // --- NetDevice ------------------------------------------------------
    bool canTransmit() const override;
    void transmit(net::Packet pkt) override;
    net::MacAddr mac() const override { return mac_; }
    bool tsoCapable() const override { return nic_.params().tso; }

    /** Push queued transmits to the NIC (end of a stack burst). */
    void flush() override;

    void setAutoRefill(bool on) override { autoRefill_ = on; }
    void refillRx(mem::PageNum page) override;

    vmm::Domain &domain() { return dom_; }
    nic::IntelNic &nic() { return nic_; }

    std::uint64_t txQueueDrops() const { return nQdiscDrop_.value(); }

  private:
    void onIrq();
    void handleIrq();
    void doFlush(std::uint32_t n);
    void postRxBuffer(mem::PageNum page);
    void flushRxProducer();

    vmm::Domain &dom_;
    nic::IntelNic &nic_;
    const core::CostModel &costs_;
    IrqRoute route_;
    net::MacAddr mac_;
    vmm::EventChannel *irqChannel_ = nullptr;

    // TX
    std::deque<net::Packet> qdisc_;
    std::uint32_t qdiscLimit_ = 512;
    bool flushPending_ = false;
    std::uint32_t txProducer_ = 0;
    std::uint32_t txDrained_ = 0; //!< completions already surfaced
    std::deque<std::uint64_t> txInflightBytes_;
    bool txWasFull_ = false;

    // RX
    std::uint32_t rxProducer_ = 0;
    std::vector<mem::PageNum> rxSlotPage_;
    std::deque<mem::PageNum> rxFreePages_;
    bool autoRefill_ = true;
    bool rxPioPending_ = false;

    bool irqTaskPending_ = false;

    sim::Counter &nQdiscDrop_;
    sim::Counter &nTxPkts_;
    sim::Counter &nRxPkts_;
    sim::Counter &nIrqsHandled_;
};

} // namespace cdna::os

#endif // CDNA_OS_NATIVE_DRIVER_HH
