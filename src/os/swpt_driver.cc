#include "os/swpt_driver.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/assert.hh"

namespace cdna::os {

SwptDriver::SwptDriver(sim::SimContext &ctx, std::string name,
                       vmm::Domain &dom, vmm::SwptValidator &validator,
                       const core::CostModel &costs, net::MacAddr mac)
    : sim::SimObject(ctx, std::move(name)),
      dom_(dom),
      validator_(validator),
      costs_(costs),
      mac_(mac),
      nQdiscDrop_(stats().addCounter("qdisc_drops")),
      nTxPkts_(stats().addCounter("tx_packets")),
      nRxPkts_(stats().addCounter("rx_packets")),
      nIrqsHandled_(stats().addCounter("irqs_handled"))
{
}

void
SwptDriver::attach()
{
    auto &mem = dom_.hypervisor().mem();
    // The guest-resident descriptor rings (the pages the guest writes
    // real Intel descriptors into; the validator reads them on a trap).
    (void)mem.allocOne(dom_.id());
    (void)mem.allocOne(dom_.id());

    gid_ = validator_.addGuest(dom_, mac_, [this] { handleIrq(); });

    // Post guest-owned RX buffers through the validated doorbell path.
    std::vector<mem::PageNum> bufs;
    bufs.reserve(kRxBufs);
    for (std::uint32_t i = 0; i < kRxBufs; ++i)
        bufs.push_back(mem.allocOne(dom_.id()));
    validator_.rxDoorbell(gid_, std::move(bufs));
}

void
SwptDriver::detach()
{
    if (detached_)
        return;
    detached_ = true;
    dropQdisc();
    validator_.detachGuest(gid_);
}

std::uint64_t
SwptDriver::dropQdisc()
{
    std::uint64_t n = qdisc_.size();
    qdisc_.clear();
    txWasFull_ = false;
    return n;
}

bool
SwptDriver::canTransmit() const
{
    return !detached_ && qdisc_.size() < qdiscLimit_;
}

void
SwptDriver::transmit(net::Packet pkt)
{
    if (!canTransmit()) {
        nQdiscDrop_.inc();
        txWasFull_ = true;
        return;
    }
    qdisc_.push_back(std::move(pkt));
    if (!canTransmit())
        txWasFull_ = true;
}

void
SwptDriver::flush()
{
    if (flushPending_ || qdisc_.empty() || detached_)
        return;
    std::uint32_t outstanding = txPosted_ - txCompleted_;
    std::uint32_t window = kTxWindow - std::min(kTxWindow, outstanding);
    std::uint32_t n = std::min<std::uint32_t>(
        static_cast<std::uint32_t>(qdisc_.size()), window);
    if (n == 0)
        return; // retried when completions drain
    flushPending_ = true;
    // Write n descriptors into the guest ring, one doorbell PIO.
    sim::Time cost = n * costs_.drvTxPerPacket + costs_.drvPioWrite;
    dom_.vcpu().post(cpu::Bucket::kOs, cost, [this, n] {
        flushPending_ = false;
        doFlush(n);
    });
}

void
SwptDriver::doFlush(std::uint32_t n)
{
    if (detached_)
        return;
    std::uint32_t outstanding = txPosted_ - txCompleted_;
    std::uint32_t window = kTxWindow - std::min(kTxWindow, outstanding);
    n = std::min({n, window, static_cast<std::uint32_t>(qdisc_.size())});
    if (n == 0)
        return;
    std::vector<vmm::SwptValidator::TxReq> batch;
    batch.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        net::Packet pkt = std::move(qdisc_.front());
        qdisc_.pop_front();
        vmm::SwptValidator::TxReq req;
        req.sg = pkt.hostSg;
        req.pkt = std::move(pkt);
        batch.push_back(std::move(req));
        ++txPosted_;
        nTxPkts_.inc();
    }
    validator_.txDoorbell(gid_, std::move(batch));
    if (txWasFull_ && canTransmit()) {
        txWasFull_ = false;
        deliverTxSpace();
    }
}

void
SwptDriver::handleIrq()
{
    nIrqsHandled_.inc();
    auto comp = validator_.takeCompletions(gid_);
    auto pkts = validator_.takeRx(gid_);

    sim::Time cost = costs_.drvIrqHandler +
        comp.count * costs_.drvTxCompletion +
        static_cast<sim::Time>(pkts.size()) * costs_.drvRxPerPacket;
    if (!pkts.empty())
        cost += costs_.drvPioWrite; // RX buffer re-post doorbell

    dom_.vcpu().post(cpu::Bucket::kOs, cost,
                     [this, comp = std::move(comp),
                      pkts = std::move(pkts)]() mutable {
        txCompleted_ += comp.count;
        for (std::uint64_t bytes : comp.bytes)
            if (bytes > 0)
                deliverTxComplete(bytes);

        std::vector<mem::PageNum> recycle;
        recycle.reserve(pkts.size());
        for (auto &p : pkts) {
            nRxPkts_.inc();
            if (!p.hostSg.empty())
                recycle.push_back(mem::pageOf(p.hostSg[0].addr));
            deliverRx(std::move(p));
        }
        if (autoRefill_ && !recycle.empty() && !detached_)
            validator_.rxDoorbell(gid_, std::move(recycle));

        if (!qdisc_.empty())
            flush();
        if (txWasFull_ && canTransmit()) {
            txWasFull_ = false;
            deliverTxSpace();
        }
    });
}

void
SwptDriver::refillRx(mem::PageNum page)
{
    if (!detached_)
        validator_.rxDoorbell(gid_, {page});
}

} // namespace cdna::os
