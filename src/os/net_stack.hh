/**
 * @file
 * Kernel network stack model.
 *
 * Charges the OS-mode CPU costs of moving data between an application
 * and a NetDevice: segmentation (TSO segments when the device supports
 * them, MSS frames otherwise), per-byte copy costs, and receive
 * delivery.  Checksum offload and scatter/gather I/O are assumed
 * enabled, as in all the paper's experiments.
 */

#ifndef CDNA_OS_NET_STACK_HH
#define CDNA_OS_NET_STACK_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/cost_model.hh"
#include "net/flow_stats.hh"
#include "net/transport/tcp.hh"
#include "os/net_device.hh"
#include "vmm/domain.hh"

namespace cdna::os {

class NetStack : public sim::SimObject
{
  public:
    NetStack(sim::SimContext &ctx, std::string name, vmm::Domain &dom,
             NetDevice &dev, const core::CostModel &costs);

    /** Destination MAC for transmitted packets (the remote peer). */
    void setDefaultDst(net::MacAddr dst) { dst_ = dst; }

    /**
     * Switch the stack to the closed-loop TCP transport: sendBurst
     * data enters per-flow Reno sender flows (segments carry sequence
     * numbers, ACKs open the app window), and received segments are
     * sequenced, duplicate-ACKed, and delivered in order.  Must be
     * called before any traffic flows.
     */
    void enableTcp(const net::transport::TcpParams &params);

    /** The transport endpoint, or null in open-loop mode. */
    net::transport::TcpEndpoint *tcp() { return tcp_.get(); }

    /**
     * Transmit @p bytes of stream data drawn from the (reused)
     * buffer @p pages.  Charges OS segmentation/copy costs, then hands
     * packets to the device; packets that do not fit are queued in the
     * stack and flushed when the device reports space.
     * @param flow_id connection identifier (per-flow stats)
     */
    void sendBurst(std::uint64_t bytes, std::uint64_t flow_id,
                   const std::vector<mem::PageNum> &pages);

    /** Fires per guest-visible transmit completion, with byte count. */
    void setTxCompleteHandler(std::function<void(std::uint64_t)> fn)
    {
        txComplete_ = std::move(fn);
    }

    /** Fires when received data reaches user space. */
    void setRxDeliverHandler(
        std::function<void(std::uint64_t bytes, std::uint32_t pkts)> fn)
    {
        rxDeliver_ = std::move(fn);
    }

    /**
     * Fires on every end-to-end progress signal: transmit completion
     * (ACK-clocked under TCP) or receive delivery.  The availability
     * layer uses it to timestamp the first packet after an outage.
     */
    void setProgressHook(std::function<void()> fn)
    {
        progress_ = std::move(fn);
    }

    /**
     * Fires per RPC request frame (Packet::rpcReq) once the request
     * reaches user space through the normal batched RX-cost path; the
     * rpc-serving application answers with sendRpcResponse().  A
     * separate slot from setRxDeliverHandler, which stays the bulk
     * byte-count delivery signal.
     */
    void setRpcHandler(std::function<void(const net::Packet &)> fn)
    {
        rpcHandler_ = std::move(fn);
    }

    /**
     * Transmit the response @p req asked for (req.rpcRespBytes, capped
     * at one TSO segment) back to req.src.  Responses are datagrams:
     * they take the open-loop packet path even in TCP transport mode,
     * paying the usual OS segmentation/copy costs.
     */
    void sendRpcResponse(const net::Packet &req);

    /**
     * Kill the stack with its domain: cancel transport timers, drop
     * the TX backlog and blocked writes, and ignore all later send and
     * receive activity.  Closes the --kill-guest x --transport tcp
     * hazard where an armed RTO fires into a dead domain.
     */
    void shutdown();
    bool isShutdown() const { return dead_; }

    std::uint64_t txBytes() const { return nTxBytes_.value(); }
    std::uint64_t rxBytes() const { return nRxBytes_.value(); }
    std::uint64_t rxPackets() const { return nRxPkts_.value(); }
    /** Frames dropped by the software checksum check. */
    std::uint64_t rxDropsBadCsum() const { return nRxBadCsum_.value(); }

    /** Current TX backlog depth (packets queued behind a full device). */
    std::uint64_t txBacklogDepth() const { return txBacklog_.size(); }
    /** High-watermark of the TX backlog over the stack's lifetime. */
    std::uint64_t txBacklogPeak() const { return txBacklogPeak_; }

    /** Wire-to-app latency of received data frames, in microseconds. */
    const sim::SampleStats &rxLatency() const { return rxLatency_; }
    const sim::Histogram &rxLatencyHist() const { return rxLatencyHist_; }

    /** Snapshot every per-flow measurement in one value (the scattered
     *  accessors above remain as views over the same sources). */
    net::FlowStats flowStats() const;

    NetDevice &device() { return dev_; }
    vmm::Domain &domain() { return dom_; }

  private:
    void buildPackets(std::uint64_t bytes, std::uint64_t flow_id,
                      const std::vector<mem::PageNum> &pages,
                      std::vector<net::Packet> *out);
    void pushToDevice();
    void noteBacklogDepth();
    void onRxPacket(net::Packet pkt);
    void collectRxBatch();
    void scheduleRxCollect();
    void sendBurstTcp(std::uint64_t bytes, std::uint64_t flow_id,
                      const std::vector<mem::PageNum> &pages);
    net::Packet makeTcpSegment(
        const net::transport::TcpEndpoint::SegmentOut &so,
        const std::vector<mem::PageNum> &pages);

    vmm::Domain &dom_;
    NetDevice &dev_;
    const core::CostModel &costs_;
    net::MacAddr dst_;
    std::uint64_t nextPktId_ = 1;

    std::deque<net::Packet> txBacklog_;

    std::uint64_t rxBatchBytes_ = 0;
    std::uint32_t rxBatchPkts_ = 0;  //!< data frames in the batch
    std::uint32_t rxBatchAcks_ = 0;  //!< pure ACKs in the batch
    std::vector<sim::Time> rxBatchCreated_; //!< origin stamps for latency
    std::vector<net::Packet> rpcBatch_;     //!< RPC requests in the batch
    sim::SampleStats rxLatency_;
    sim::Histogram rxLatencyHist_;
    bool rxCollectorPending_ = false;
    std::uint64_t ackDebt_ = 0;
    net::MacAddr ackDst_;

    std::function<void(std::uint64_t)> txComplete_;
    std::function<void(std::uint64_t, std::uint32_t)> rxDeliver_;
    std::function<void(const net::Packet &)> rpcHandler_;
    std::function<void()> progress_;
    bool dead_ = false;

    /** Lazily allocated response buffer (one TSO segment's pages). */
    std::vector<mem::PageNum> rpcBuf_;
    /** RPC response bytes queued but not yet completed by the device
     *  (netted out of the application's tx-complete signal). */
    std::uint64_t rpcTxPending_ = 0;

    // TCP transport mode (null = open loop).
    std::unique_ptr<net::transport::TcpEndpoint> tcp_;
    std::map<std::uint64_t, std::vector<mem::PageNum>> flowBufs_;
    std::map<std::uint64_t, std::uint64_t> pendingOffer_;

    std::uint64_t txBacklogPeak_ = 0;

    sim::Counter &nTxBytes_;
    sim::Counter &nRxBytes_;
    sim::Counter &nRxPkts_;
    sim::Counter &nTxStalls_;
    sim::Counter &nRxDups_;
    sim::Counter &nRxBadCsum_;
    sim::SampleStats &txBacklogDepthStat_;
};

} // namespace cdna::os

#endif // CDNA_OS_NET_STACK_HH
