/**
 * @file
 * Guest-side driver for the software-only passthrough architecture.
 *
 * The guest sees (what it believes is) the real Intel device: it
 * writes Intel-style DMA descriptors into rings in its own memory and
 * rings the doorbell.  The doorbell PIO traps into the hypervisor's
 * SwptValidator, which audits and shadow-copies the descriptors onto
 * the shared physical NIC.  Unlike the Xen frontend there is no grant
 * negotiation and no driver-domain copy on TX -- payload pages go to
 * the device zero-copy once validated -- and unlike the CDNA driver
 * there is no per-guest hardware context: every doorbell is a trap.
 */

#ifndef CDNA_OS_SWPT_DRIVER_HH
#define CDNA_OS_SWPT_DRIVER_HH

#include <cstdint>
#include <deque>

#include "core/cost_model.hh"
#include "os/net_device.hh"
#include "vmm/swpt_validator.hh"

namespace cdna::os {

class SwptDriver : public sim::SimObject, public NetDevice
{
  public:
    SwptDriver(sim::SimContext &ctx, std::string name, vmm::Domain &dom,
               vmm::SwptValidator &validator, const core::CostModel &costs,
               net::MacAddr mac);

    /** Register with the validator, allocate rings and RX buffers. */
    void attach();

    /** Guest killed: drop queued TX and detach the validator port. */
    void detach();

    /** Discard every packet queued but not yet doorbell'd. */
    std::uint64_t dropQdisc();

    // --- NetDevice ------------------------------------------------------
    bool canTransmit() const override;
    void transmit(net::Packet pkt) override;
    net::MacAddr mac() const override { return mac_; }
    bool tsoCapable() const override
    {
        return validator_.nic().params().tso;
    }
    void flush() override;
    void setAutoRefill(bool on) override { autoRefill_ = on; }
    void refillRx(mem::PageNum page) override;

    vmm::Domain &domain() { return dom_; }
    vmm::SwptValidator &validator() { return validator_; }
    vmm::SwptValidator::GuestId gid() const { return gid_; }
    bool detached() const { return detached_; }

    std::uint64_t txQueueDrops() const { return nQdiscDrop_.value(); }

  private:
    void handleIrq();
    void doFlush(std::uint32_t n);

    /** Descriptors a guest keeps outstanding before it must wait for
     *  completions; bounds its share of the shared shadow queue. */
    static constexpr std::uint32_t kTxWindow = 64;
    static constexpr std::uint32_t kRxBufs = 256;

    vmm::Domain &dom_;
    vmm::SwptValidator &validator_;
    const core::CostModel &costs_;
    net::MacAddr mac_;
    vmm::SwptValidator::GuestId gid_ = 0;
    bool detached_ = false;

    // TX
    std::deque<net::Packet> qdisc_;
    std::uint32_t qdiscLimit_ = 512;
    bool flushPending_ = false;
    std::uint32_t txPosted_ = 0;
    std::uint32_t txCompleted_ = 0;
    bool txWasFull_ = false;

    // RX
    bool autoRefill_ = true;

    sim::Counter &nQdiscDrop_;
    sim::Counter &nTxPkts_;
    sim::Counter &nRxPkts_;
    sim::Counter &nIrqsHandled_;
};

} // namespace cdna::os

#endif // CDNA_OS_SWPT_DRIVER_HH
