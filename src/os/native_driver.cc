#include "os/native_driver.hh"

#include <algorithm>
#include <utility>

#include "sim/assert.hh"

namespace cdna::os {

NativeDriver::NativeDriver(sim::SimContext &ctx, std::string name,
                           vmm::Domain &dom, nic::IntelNic &nic,
                           const core::CostModel &costs, IrqRoute route,
                           net::MacAddr mac)
    : sim::SimObject(ctx, std::move(name)),
      dom_(dom),
      nic_(nic),
      costs_(costs),
      route_(route),
      mac_(mac),
      nQdiscDrop_(stats().addCounter("qdisc_drops")),
      nTxPkts_(stats().addCounter("tx_packets")),
      nRxPkts_(stats().addCounter("rx_packets")),
      nIrqsHandled_(stats().addCounter("irqs_handled"))
{
}

void
NativeDriver::attach()
{
    auto &mem = dom_.hypervisor().mem();
    mem::PageNum tx_ring_page = mem.allocOne(dom_.id());
    mem::PageNum rx_ring_page = mem.allocOne(dom_.id());
    mem::PageNum status_page = mem.allocOne(dom_.id());

    nic_.configureTxRing(256, mem::addrOf(tx_ring_page));
    nic_.configureRxRing(256, mem::addrOf(rx_ring_page));
    nic_.setStatusBlockAddr(mem::addrOf(status_page));
    nic_.setMac(mac_);
    nic_.setDmaDomain(dom_.id());

    // Post one page-sized buffer per RX descriptor.
    std::uint32_t entries = nic_.rxRing().size();
    rxSlotPage_.assign(entries, 0);
    for (std::uint32_t i = 0; i < entries; ++i)
        postRxBuffer(mem.allocOne(dom_.id()));
    nic_.pioWriteRxProducer(rxProducer_);
    rxPioPending_ = false;

    if (route_ == IrqRoute::kViaHypervisor) {
        irqChannel_ = &dom_.hypervisor().createChannel(
            dom_, costs_.irqEntry, [this] { handleIrq(); });
        nic_.setIrqLine([this] {
            auto &hv = dom_.hypervisor();
            hv.physicalInterrupt(hv.params().virtIrqDeliver,
                                 [this] { irqChannel_->notify(); });
        });
    } else {
        nic_.setIrqLine([this] { onIrq(); });
    }
}

void
NativeDriver::onIrq()
{
    // Direct routing (native OS): the IRQ lands on the vCPU.  Merge
    // while a handler invocation is still queued (NAPI-style).
    if (irqTaskPending_)
        return;
    irqTaskPending_ = true;
    dom_.virtIrqs().inc();
    dom_.vcpu().postIrq(cpu::Bucket::kOs, costs_.irqEntry, [this] {
        irqTaskPending_ = false;
        handleIrq();
    });
}

void
NativeDriver::handleIrq()
{
    nIrqsHandled_.inc();
    // Snapshot completion state (reads of the DMA'd status block) and
    // claim it immediately so an overlapping IRQ cannot double-count.
    std::uint32_t completed = nic_.txConsumer() - txDrained_;
    txDrained_ += completed;
    auto deliveries = nic_.drainRx();

    sim::Time cost = costs_.drvIrqHandler +
        completed * costs_.drvTxCompletion +
        static_cast<sim::Time>(deliveries.size()) * costs_.drvRxPerPacket;

    dom_.vcpu().post(cpu::Bucket::kOs, cost,
                     [this, completed,
                      deliveries = std::move(deliveries)]() mutable {
        for (std::uint32_t i = 0; i < completed; ++i) {
            SIM_ASSERT(!txInflightBytes_.empty(), "completion underflow");
            std::uint64_t bytes = txInflightBytes_.front();
            txInflightBytes_.pop_front();
            deliverTxComplete(bytes);
        }

        for (auto &d : deliveries) {
            nRxPkts_.inc();
            std::uint32_t slot = d.pos % rxSlotPage_.size();
            mem::PageNum page = rxSlotPage_[slot];
            d.pkt.hostSg = {{mem::addrOf(page),
                             d.pkt.payloadBytes + net::kTcpIpHeader}};
            if (autoRefill_) {
                // Recycle the same page once the stack copies out.
                postRxBuffer(page);
            } else {
                // Owner (backend) flips this page away and must refill.
            }
            deliverRx(std::move(d.pkt));
        }
        flushRxProducer();

        // Pump any transmits that were waiting for ring space.
        if (!qdisc_.empty())
            flush();
        if (txWasFull_ && canTransmit()) {
            txWasFull_ = false;
            deliverTxSpace();
        }
    });
}

std::uint64_t
NativeDriver::dropQdisc()
{
    std::uint64_t n = qdisc_.size();
    qdisc_.clear();
    txWasFull_ = false;
    return n;
}

bool
NativeDriver::canTransmit() const
{
    return qdisc_.size() < qdiscLimit_;
}

void
NativeDriver::transmit(net::Packet pkt)
{
    if (!canTransmit()) {
        nQdiscDrop_.inc();
        txWasFull_ = true;
        return;
    }
    qdisc_.push_back(std::move(pkt));
    if (!canTransmit())
        txWasFull_ = true;
}

void
NativeDriver::flush()
{
    if (flushPending_ || qdisc_.empty())
        return;
    std::uint32_t ring_space =
        nic_.txRing().size() - (txProducer_ - nic_.txConsumer());
    std::uint32_t n = std::min<std::uint32_t>(
        static_cast<std::uint32_t>(qdisc_.size()), ring_space);
    if (n == 0)
        return; // retried from the completion handler
    flushPending_ = true;
    sim::Time cost = n * costs_.drvTxPerPacket + costs_.drvPioWrite;
    dom_.vcpu().post(cpu::Bucket::kOs, cost, [this, n] {
        flushPending_ = false;
        doFlush(n);
    });
}

void
NativeDriver::doFlush(std::uint32_t n)
{
    std::uint32_t ring_space =
        nic_.txRing().size() - (txProducer_ - nic_.txConsumer());
    n = std::min({n, ring_space,
                  static_cast<std::uint32_t>(qdisc_.size())});
    for (std::uint32_t i = 0; i < n; ++i) {
        net::Packet pkt = std::move(qdisc_.front());
        qdisc_.pop_front();
        nic::DmaDescriptor desc;
        desc.sg = pkt.hostSg;
        desc.flags = nic::kDescValid | nic::kDescEop;
        if (pkt.payloadBytes > net::kMss)
            desc.flags |= nic::kDescTso;
        txInflightBytes_.push_back(pkt.payloadBytes);
        nic_.txRing().write(txProducer_, desc);
        nic_.txRing().attachPacket(txProducer_, std::move(pkt));
        ++txProducer_;
        nTxPkts_.inc();
    }
    nic_.pioWriteTxProducer(txProducer_);
    if (txWasFull_ && canTransmit()) {
        txWasFull_ = false;
        deliverTxSpace();
    }
}

void
NativeDriver::postRxBuffer(mem::PageNum page)
{
    std::uint32_t slot = rxProducer_ % nic_.rxRing().size();
    rxSlotPage_[slot] = page;
    nic::DmaDescriptor desc;
    desc.sg = {{mem::addrOf(page), net::kMtu}};
    desc.flags = nic::kDescValid;
    nic_.rxRing().write(rxProducer_, desc);
    ++rxProducer_;
    rxPioPending_ = true;
}

void
NativeDriver::refillRx(mem::PageNum page)
{
    postRxBuffer(page);
    flushRxProducer();
}

void
NativeDriver::flushRxProducer()
{
    if (rxPioPending_) {
        rxPioPending_ = false;
        nic_.pioWriteRxProducer(rxProducer_);
    }
}

} // namespace cdna::os
