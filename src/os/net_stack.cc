#include "os/net_stack.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/assert.hh"

namespace cdna::os {

NetStack::NetStack(sim::SimContext &ctx, std::string name, vmm::Domain &dom,
                   NetDevice &dev, const core::CostModel &costs)
    : sim::SimObject(ctx, std::move(name)),
      dom_(dom),
      dev_(dev),
      costs_(costs),
      nTxBytes_(stats().addCounter("tx_bytes")),
      nRxBytes_(stats().addCounter("rx_bytes")),
      nRxPkts_(stats().addCounter("rx_packets")),
      nTxStalls_(stats().addCounter("tx_stalls")),
      nRxDups_(stats().addCounter("rx_duplicates")),
      nRxBadCsum_(stats().addCounter("rx_drops_bad_csum")),
      txBacklogDepthStat_(stats().addSamples("tx_backlog_depth"))
{
    dev_.setRxHandler([this](net::Packet pkt) { onRxPacket(std::move(pkt)); });
    dev_.setTxCompleteHandler([this](std::uint64_t bytes) {
        if (progress_)
            progress_();
        // RPC response bytes complete through the same device signal
        // but were never part of the application's send window; net
        // them out so the window accounting only sees its own sends.
        std::uint64_t rpc = std::min(bytes, rpcTxPending_);
        rpcTxPending_ -= rpc;
        bytes -= rpc;
        if (bytes > 0 && txComplete_)
            txComplete_(bytes);
    });
    dev_.setTxSpaceHandler([this] { pushToDevice(); });
}

void
NetStack::shutdown()
{
    if (dead_)
        return;
    dead_ = true;
    if (tcp_)
        tcp_->shutdown();
    txBacklog_.clear();
    pendingOffer_.clear();
    rxBatchBytes_ = 0;
    rxBatchPkts_ = 0;
    rxBatchAcks_ = 0;
    rxBatchCreated_.clear();
    rpcBatch_.clear();
    ackDebt_ = 0;
}

void
NetStack::buildPackets(std::uint64_t bytes, std::uint64_t flow_id,
                       const std::vector<mem::PageNum> &pages,
                       std::vector<net::Packet> *out)
{
    SIM_ASSERT(!pages.empty(), "no buffer pages");
    const std::uint64_t buf_bytes = pages.size() * mem::kPageSize;
    SIM_ASSERT(bytes <= buf_bytes, "burst larger than buffer");

    std::uint32_t unit = dev_.tsoCapable()
        ? std::min<std::uint32_t>(net::kMaxTsoBytes, static_cast<std::uint32_t>(buf_bytes))
        : net::kMss;

    std::uint64_t off = 0;
    while (off < bytes) {
        auto len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(unit, bytes - off));
        net::Packet pkt;
        pkt.src = dev_.mac();
        pkt.dst = dst_;
        pkt.payloadBytes = len;
        pkt.srcDomain = dom_.id();
        pkt.id = nextPktId_++;
        pkt.flowId = flow_id;
        pkt.created = now();

        // Map [off, off+len) onto the buffer pages.
        std::uint64_t seg_off = off;
        std::uint32_t remaining = len;
        while (remaining > 0) {
            std::uint64_t page_idx = seg_off / mem::kPageSize;
            std::uint64_t in_page = seg_off % mem::kPageSize;
            auto chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(
                remaining, mem::kPageSize - in_page));
            pkt.hostSg.push_back(
                {mem::addrOf(pages[page_idx]) + in_page, chunk});
            seg_off += chunk;
            remaining -= chunk;
        }
        out->push_back(std::move(pkt));
        off += len;
    }
}

void
NetStack::sendBurst(std::uint64_t bytes, std::uint64_t flow_id,
                    const std::vector<mem::PageNum> &pages)
{
    if (dead_)
        return;
    if (tcp_) {
        sendBurstTcp(bytes, flow_id, pages);
        return;
    }
    auto pkts = std::make_shared<std::vector<net::Packet>>();
    buildPackets(bytes, flow_id, pages, pkts.get());

    sim::Time cost =
        static_cast<sim::Time>(pkts->size()) * costs_.stackTxPerPacket +
        static_cast<sim::Time>(costs_.stackTxPerByteNs *
                               static_cast<double>(bytes) * sim::kNanosecond);

    CDNA_TRACE_INSTANT_ARG(ctx().tracer(), traceLane(), "tx_burst", now(),
                           "bytes", bytes);
    dom_.vcpu().post(cpu::Bucket::kOs, cost, [this, pkts, bytes] {
        nTxBytes_.inc(bytes);
        for (auto &p : *pkts)
            txBacklog_.push_back(std::move(p));
        pushToDevice();
    });
}

void
NetStack::pushToDevice()
{
    bool any = false;
    while (!txBacklog_.empty() && dev_.canTransmit()) {
        dev_.transmit(std::move(txBacklog_.front()));
        txBacklog_.pop_front();
        any = true;
    }
    if (!txBacklog_.empty())
        nTxStalls_.inc();
    if (any)
        dev_.flush();
    noteBacklogDepth();
}

void
NetStack::noteBacklogDepth()
{
    // Residual queue after a flush attempt: what the device's ring
    // could not absorb.  The high-watermark is the satellite metric
    // exported into the report.
    std::uint64_t depth = txBacklog_.size();
    txBacklogDepthStat_.record(static_cast<double>(depth));
    txBacklogPeak_ = std::max(txBacklogPeak_, depth);
}

void
NetStack::onRxPacket(net::Packet pkt)
{
    if (dead_)
        return;
    if (!pkt.intact) {
        // Software checksum check fails: the frame consumed NIC and
        // driver resources but never reaches the transport layer, so
        // under TCP the sender must retransmit it.
        nRxBadCsum_.inc();
        return;
    }
    if (pkt.rpcReq) {
        // RPC requests are datagrams regardless of transport mode and
        // join the normal batched RX-cost path.  No ACK debt: the
        // response itself acknowledges the request.
        if (pkt.duplicated) {
            nRxDups_.inc();
            return;
        }
        rxBatchBytes_ += pkt.payloadBytes;
        rxBatchPkts_ += 1;
        if (pkt.created > 0)
            rxBatchCreated_.push_back(pkt.created);
        rpcBatch_.push_back(std::move(pkt));
        scheduleRxCollect();
        return;
    }
    if (tcp_) {
        if (pkt.duplicated)
            // Counted, but still handed to the transport: the sequence
            // check there discards it (and may emit a duplicate ACK),
            // exactly like a real stack.
            nRxDups_.inc();
        if (pkt.tcpAck)
            rxBatchAcks_ += 1;
        else if (pkt.tcpData)
            rxBatchPkts_ += 1;
        scheduleRxCollect();
        tcp_->onPacket(pkt);
        return;
    }
    if (pkt.duplicated) {
        // TCP sequence check discards injected duplicates before they
        // count toward goodput, latency, or the delayed-ACK clock.
        nRxDups_.inc();
        return;
    }
    if (pkt.payloadBytes == 0) {
        // Pure TCP ACK: cheap to process, never re-acknowledged.
        rxBatchAcks_ += 1;
    } else {
        rxBatchBytes_ += pkt.payloadBytes;
        rxBatchPkts_ += 1;
        ackDebt_ += 1;
        ackDst_ = pkt.src;
        if (pkt.created > 0)
            rxBatchCreated_.push_back(pkt.created);
    }
    scheduleRxCollect();
}

void
NetStack::scheduleRxCollect()
{
    if (rxCollectorPending_)
        return;
    rxCollectorPending_ = true;
    // Zero-cost collector: runs after the driver's delivery task on the
    // same vCPU, so the whole batch is visible when it executes.
    dom_.vcpu().post(cpu::Bucket::kOs, 0, [this] { collectRxBatch(); });
}

void
NetStack::enableTcp(const net::transport::TcpParams &params)
{
    SIM_ASSERT(!tcp_, "enableTcp called twice");
    tcp_ = std::make_unique<net::transport::TcpEndpoint>(
        ctx(), name() + ".tcp", params);

    tcp_->setSegmentTx(
        [this](const net::transport::TcpEndpoint::SegmentOut &so) {
            if (!dev_.canTransmit())
                return false;
            auto it = flowBufs_.find(so.flowId);
            SIM_ASSERT(it != flowBufs_.end(), "segment for unknown flow");
            dev_.transmit(makeTcpSegment(so, it->second));
            dev_.flush();
            if (so.rtx)
                // The original transmission was charged at offer time;
                // a retransmission costs another pass down the stack.
                dom_.vcpu().post(cpu::Bucket::kOs, costs_.stackTxPerPacket,
                                 [] {});
            return true;
        });

    tcp_->setAckTx([this](const net::transport::TcpEndpoint::AckOut &ao) {
        if (!dev_.canTransmit())
            return false;
        net::Packet ack;
        ack.src = dev_.mac();
        ack.dst = ao.dst;
        ack.payloadBytes = 0;
        ack.srcDomain = dom_.id();
        ack.id = nextPktId_++;
        ack.flowId = ao.flowId;
        ack.created = now();
        ack.tcpAck = true;
        ack.ackNo = ao.ackNo;
        dev_.transmit(std::move(ack));
        dev_.flush();
        dom_.vcpu().post(cpu::Bucket::kOs, costs_.stackAckTxCost, [] {});
        return true;
    });

    tcp_->setDeliver([this](const net::Packet &pkt, std::uint64_t bytes) {
        // In-order bytes join the RX batch; per-packet costs were
        // already counted when the segment arrived.
        rxBatchBytes_ += bytes;
        if (pkt.created > 0)
            rxBatchCreated_.push_back(pkt.created);
        scheduleRxCollect();
    });

    tcp_->setBufFreed([this](std::uint64_t flow_id, std::uint64_t bytes) {
        // Freed buffer space first completes any blocked socket write,
        // then credits the application's window: under TCP, ACKs (not
        // device completions) signal transmit progress.
        auto it = pendingOffer_.find(flow_id);
        if (it != pendingOffer_.end() && it->second > 0)
            it->second -= tcp_->offer(flow_id, it->second);
        if (progress_)
            progress_();
        if (txComplete_)
            txComplete_(bytes);
    });

    dev_.setTxCompleteHandler([](std::uint64_t) {});
    dev_.setTxSpaceHandler([this] { tcp_->pump(); });
}

void
NetStack::sendBurstTcp(std::uint64_t bytes, std::uint64_t flow_id,
                       const std::vector<mem::PageNum> &pages)
{
    SIM_ASSERT(!pages.empty(), "no buffer pages");
    flowBufs_.try_emplace(flow_id, pages);
    tcp_->openSender(flow_id, dst_);

    // Segmentation cost up front for the whole burst (TSO is bypassed
    // under TCP: every segment is an MSS so loss granularity is real).
    std::uint32_t seg = tcp_->params().segmentBytes;
    std::uint64_t nsegs = (bytes + seg - 1) / seg;
    sim::Time cost =
        static_cast<sim::Time>(nsegs) * costs_.stackTxPerPacket +
        static_cast<sim::Time>(costs_.stackTxPerByteNs *
                               static_cast<double>(bytes) * sim::kNanosecond);

    CDNA_TRACE_INSTANT_ARG(ctx().tracer(), traceLane(), "tx_burst", now(),
                           "bytes", bytes);
    dom_.vcpu().post(cpu::Bucket::kOs, cost, [this, bytes, flow_id] {
        nTxBytes_.inc(bytes);
        std::uint64_t accepted = tcp_->offer(flow_id, bytes);
        if (accepted < bytes)
            // Socket buffer full: the write blocks until ACKs free
            // space (resumed from the BufFreed callback).
            pendingOffer_[flow_id] += bytes - accepted;
    });
}

net::Packet
NetStack::makeTcpSegment(const net::transport::TcpEndpoint::SegmentOut &so,
                         const std::vector<mem::PageNum> &pages)
{
    const std::uint64_t buf_bytes = pages.size() * mem::kPageSize;
    net::Packet pkt;
    pkt.src = dev_.mac();
    pkt.dst = so.dst;
    pkt.payloadBytes = so.len;
    pkt.srcDomain = dom_.id();
    pkt.id = nextPktId_++;
    pkt.flowId = so.flowId;
    pkt.created = now();
    pkt.seq = so.seq;
    pkt.tcpData = true;

    // The stream is a ring over the flow's (reused) buffer pages.
    std::uint64_t off = so.seq % buf_bytes;
    std::uint32_t remaining = so.len;
    while (remaining > 0) {
        std::uint64_t page_idx = off / mem::kPageSize;
        std::uint64_t in_page = off % mem::kPageSize;
        auto chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            remaining, mem::kPageSize - in_page));
        pkt.hostSg.push_back({mem::addrOf(pages[page_idx]) + in_page, chunk});
        off = (off + chunk) % buf_bytes;
        remaining -= chunk;
    }
    return pkt;
}

void
NetStack::collectRxBatch()
{
    rxCollectorPending_ = false;
    if (dead_)
        return;
    std::uint64_t bytes = std::exchange(rxBatchBytes_, 0);
    std::uint32_t pkts = std::exchange(rxBatchPkts_, 0);
    std::uint32_t acks = std::exchange(rxBatchAcks_, 0);
    auto stamps = std::exchange(rxBatchCreated_, {});
    auto rpcs = std::exchange(rpcBatch_, {});
    if (pkts == 0 && acks == 0)
        return;

    // Outgoing ACKs owed for this batch (delayed-ACK style).
    std::uint32_t acks_out = 0;
    if (costs_.ackPerFrames != 0) {
        acks_out = static_cast<std::uint32_t>(ackDebt_ /
                                              costs_.ackPerFrames);
        ackDebt_ %= costs_.ackPerFrames;
    } else {
        ackDebt_ = 0;
    }

    sim::Time os_cost =
        static_cast<sim::Time>(pkts) * costs_.stackRxPerPacket +
        static_cast<sim::Time>(acks) * costs_.stackAckRxCost +
        static_cast<sim::Time>(acks_out) * costs_.stackAckTxCost +
        static_cast<sim::Time>(costs_.stackRxPerByteNs *
                               static_cast<double>(bytes) * sim::kNanosecond);
    sim::Time user_cost =
        static_cast<sim::Time>(costs_.appPerByteNs *
                               static_cast<double>(bytes) * sim::kNanosecond) +
        static_cast<sim::Time>(static_cast<double>(costs_.appPerRead) *
                               static_cast<double>(bytes) / 65536.0);

    dom_.vcpu().post(cpu::Bucket::kOs, os_cost,
                     [this, bytes, pkts, acks_out, user_cost,
                      stamps = std::move(stamps),
                      rpcs = std::move(rpcs)]() mutable {
        // Emit the owed ACKs toward the data source.
        bool sent = false;
        for (std::uint32_t i = 0; i < acks_out && dev_.canTransmit(); ++i) {
            net::Packet ack;
            ack.src = dev_.mac();
            ack.dst = ackDst_;
            ack.payloadBytes = 0;
            ack.srcDomain = dom_.id();
            ack.id = nextPktId_++;
            ack.created = now();
            dev_.transmit(std::move(ack));
            sent = true;
        }
        if (sent)
            dev_.flush();
        if (pkts == 0 && bytes == 0)
            return;
        dom_.vcpu().post(cpu::Bucket::kUser, user_cost,
                         [this, bytes, pkts, stamps = std::move(stamps),
                          rpcs = std::move(rpcs)] {
            nRxBytes_.inc(bytes);
            nRxPkts_.inc(pkts);
            CDNA_TRACE_INSTANT_ARG(ctx().tracer(), traceLane(),
                                   "rx_deliver", now(), "bytes", bytes);
            // Data reaches user space now: record wire-to-app latency.
            for (sim::Time created : stamps) {
                double us = sim::toMicroseconds(now() - created);
                rxLatency_.record(us);
                rxLatencyHist_.record(static_cast<std::uint64_t>(us));
            }
            if (progress_)
                progress_();
            if (rxDeliver_)
                rxDeliver_(bytes, pkts);
            if (rpcHandler_)
                for (const auto &req : rpcs)
                    rpcHandler_(req);
        });
    });
}

void
NetStack::sendRpcResponse(const net::Packet &req)
{
    if (dead_)
        return;
    std::uint64_t bytes = std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(req.rpcRespBytes, net::kMaxTsoBytes));
    if (rpcBuf_.empty()) {
        std::size_t pages =
            (net::kMaxTsoBytes + mem::kPageSize - 1) / mem::kPageSize;
        rpcBuf_ = dom_.hypervisor().mem().alloc(dom_.id(), pages);
    }
    auto pkts = std::make_shared<std::vector<net::Packet>>();
    buildPackets(bytes, req.rpcId, rpcBuf_, pkts.get());
    for (auto &p : *pkts) {
        p.dst = req.src;
        p.rpcResp = true;
        p.rpcId = req.rpcId;
        p.rpcRespBytes = req.rpcRespBytes;
    }

    sim::Time cost =
        static_cast<sim::Time>(pkts->size()) * costs_.stackTxPerPacket +
        static_cast<sim::Time>(costs_.stackTxPerByteNs *
                               static_cast<double>(bytes) * sim::kNanosecond);
    CDNA_TRACE_INSTANT_ARG(ctx().tracer(), traceLane(), "rpc_response",
                           now(), "bytes", bytes);
    dom_.vcpu().post(cpu::Bucket::kOs, cost, [this, pkts, bytes] {
        if (dead_)
            return;
        nTxBytes_.inc(bytes);
        rpcTxPending_ += bytes;
        for (auto &p : *pkts)
            txBacklog_.push_back(std::move(p));
        pushToDevice();
    });
}

net::FlowStats
NetStack::flowStats() const
{
    net::FlowStats fs;
    fs.payloadDelivered = nRxBytes_.value();
    fs.framesReceived = nRxPkts_.value();
    fs.rxDuplicates = nRxDups_.value();
    fs.rxDropsBadCsum = nRxBadCsum_.value();
    if (tcp_) {
        fs.ackedBytes = tcp_->sndUnaTotal();
        fs.retransSegs = tcp_->retransSegs();
        fs.fastRetransmits = tcp_->fastRetransmits();
        fs.rtoEvents = tcp_->rtoEvents();
    }
    fs.latency = rxLatency_;
    fs.latencyHist = rxLatencyHist_;
    return fs;
}

} // namespace cdna::os
