#include "os/net_stack.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/assert.hh"

namespace cdna::os {

NetStack::NetStack(sim::SimContext &ctx, std::string name, vmm::Domain &dom,
                   NetDevice &dev, const core::CostModel &costs)
    : sim::SimObject(ctx, std::move(name)),
      dom_(dom),
      dev_(dev),
      costs_(costs),
      nTxBytes_(stats().addCounter("tx_bytes")),
      nRxBytes_(stats().addCounter("rx_bytes")),
      nRxPkts_(stats().addCounter("rx_packets")),
      nTxStalls_(stats().addCounter("tx_stalls")),
      nRxDups_(stats().addCounter("rx_duplicates"))
{
    dev_.setRxHandler([this](net::Packet pkt) { onRxPacket(std::move(pkt)); });
    dev_.setTxCompleteHandler([this](std::uint64_t bytes) {
        if (txComplete_)
            txComplete_(bytes);
    });
    dev_.setTxSpaceHandler([this] { pushToDevice(); });
}

void
NetStack::buildPackets(std::uint64_t bytes, std::uint64_t flow_id,
                       const std::vector<mem::PageNum> &pages,
                       std::vector<net::Packet> *out)
{
    SIM_ASSERT(!pages.empty(), "no buffer pages");
    const std::uint64_t buf_bytes = pages.size() * mem::kPageSize;
    SIM_ASSERT(bytes <= buf_bytes, "burst larger than buffer");

    std::uint32_t unit = dev_.tsoCapable()
        ? std::min<std::uint32_t>(net::kMaxTsoBytes, static_cast<std::uint32_t>(buf_bytes))
        : net::kMss;

    std::uint64_t off = 0;
    while (off < bytes) {
        auto len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(unit, bytes - off));
        net::Packet pkt;
        pkt.src = dev_.mac();
        pkt.dst = dst_;
        pkt.payloadBytes = len;
        pkt.srcDomain = dom_.id();
        pkt.id = nextPktId_++;
        pkt.flowId = flow_id;
        pkt.created = now();

        // Map [off, off+len) onto the buffer pages.
        std::uint64_t seg_off = off;
        std::uint32_t remaining = len;
        while (remaining > 0) {
            std::uint64_t page_idx = seg_off / mem::kPageSize;
            std::uint64_t in_page = seg_off % mem::kPageSize;
            auto chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(
                remaining, mem::kPageSize - in_page));
            pkt.hostSg.push_back(
                {mem::addrOf(pages[page_idx]) + in_page, chunk});
            seg_off += chunk;
            remaining -= chunk;
        }
        out->push_back(std::move(pkt));
        off += len;
    }
}

void
NetStack::sendBurst(std::uint64_t bytes, std::uint64_t flow_id,
                    const std::vector<mem::PageNum> &pages)
{
    auto pkts = std::make_shared<std::vector<net::Packet>>();
    buildPackets(bytes, flow_id, pages, pkts.get());

    sim::Time cost =
        static_cast<sim::Time>(pkts->size()) * costs_.stackTxPerPacket +
        static_cast<sim::Time>(costs_.stackTxPerByteNs *
                               static_cast<double>(bytes) * sim::kNanosecond);

    CDNA_TRACE_INSTANT_ARG(ctx().tracer(), traceLane(), "tx_burst", now(),
                           "bytes", bytes);
    dom_.vcpu().post(cpu::Bucket::kOs, cost, [this, pkts, bytes] {
        nTxBytes_.inc(bytes);
        for (auto &p : *pkts)
            txBacklog_.push_back(std::move(p));
        pushToDevice();
    });
}

void
NetStack::pushToDevice()
{
    bool any = false;
    while (!txBacklog_.empty() && dev_.canTransmit()) {
        dev_.transmit(std::move(txBacklog_.front()));
        txBacklog_.pop_front();
        any = true;
    }
    if (!txBacklog_.empty())
        nTxStalls_.inc();
    if (any)
        dev_.flush();
}

void
NetStack::onRxPacket(net::Packet pkt)
{
    if (pkt.duplicated) {
        // TCP sequence check discards injected duplicates before they
        // count toward goodput, latency, or the delayed-ACK clock.
        nRxDups_.inc();
        return;
    }
    if (pkt.payloadBytes == 0) {
        // Pure TCP ACK: cheap to process, never re-acknowledged.
        rxBatchAcks_ += 1;
    } else {
        rxBatchBytes_ += pkt.payloadBytes;
        rxBatchPkts_ += 1;
        ackDebt_ += 1;
        ackDst_ = pkt.src;
        if (pkt.created > 0)
            rxBatchCreated_.push_back(pkt.created);
    }
    if (rxCollectorPending_)
        return;
    rxCollectorPending_ = true;
    // Zero-cost collector: runs after the driver's delivery task on the
    // same vCPU, so the whole batch is visible when it executes.
    dom_.vcpu().post(cpu::Bucket::kOs, 0, [this] { collectRxBatch(); });
}

void
NetStack::collectRxBatch()
{
    rxCollectorPending_ = false;
    std::uint64_t bytes = std::exchange(rxBatchBytes_, 0);
    std::uint32_t pkts = std::exchange(rxBatchPkts_, 0);
    std::uint32_t acks = std::exchange(rxBatchAcks_, 0);
    auto stamps = std::exchange(rxBatchCreated_, {});
    if (pkts == 0 && acks == 0)
        return;

    // Outgoing ACKs owed for this batch (delayed-ACK style).
    std::uint32_t acks_out = 0;
    if (costs_.ackPerFrames != 0) {
        acks_out = static_cast<std::uint32_t>(ackDebt_ /
                                              costs_.ackPerFrames);
        ackDebt_ %= costs_.ackPerFrames;
    } else {
        ackDebt_ = 0;
    }

    sim::Time os_cost =
        static_cast<sim::Time>(pkts) * costs_.stackRxPerPacket +
        static_cast<sim::Time>(acks) * costs_.stackAckRxCost +
        static_cast<sim::Time>(acks_out) * costs_.stackAckTxCost +
        static_cast<sim::Time>(costs_.stackRxPerByteNs *
                               static_cast<double>(bytes) * sim::kNanosecond);
    sim::Time user_cost =
        static_cast<sim::Time>(costs_.appPerByteNs *
                               static_cast<double>(bytes) * sim::kNanosecond) +
        static_cast<sim::Time>(static_cast<double>(costs_.appPerRead) *
                               static_cast<double>(bytes) / 65536.0);

    dom_.vcpu().post(cpu::Bucket::kOs, os_cost,
                     [this, bytes, pkts, acks_out, user_cost,
                      stamps = std::move(stamps)]() mutable {
        // Emit the owed ACKs toward the data source.
        bool sent = false;
        for (std::uint32_t i = 0; i < acks_out && dev_.canTransmit(); ++i) {
            net::Packet ack;
            ack.src = dev_.mac();
            ack.dst = ackDst_;
            ack.payloadBytes = 0;
            ack.srcDomain = dom_.id();
            ack.id = nextPktId_++;
            ack.created = now();
            dev_.transmit(std::move(ack));
            sent = true;
        }
        if (sent)
            dev_.flush();
        if (pkts == 0 && bytes == 0)
            return;
        dom_.vcpu().post(cpu::Bucket::kUser, user_cost,
                         [this, bytes, pkts,
                          stamps = std::move(stamps)] {
            nRxBytes_.inc(bytes);
            nRxPkts_.inc(pkts);
            CDNA_TRACE_INSTANT_ARG(ctx().tracer(), traceLane(),
                                   "rx_deliver", now(), "bytes", bytes);
            // Data reaches user space now: record wire-to-app latency.
            for (sim::Time created : stamps) {
                double us = sim::toMicroseconds(now() - created);
                rxLatency_.record(us);
                rxLatencyHist_.record(static_cast<std::uint64_t>(us));
            }
            if (rxDeliver_)
                rxDeliver_(bytes, pkts);
        });
    });
}

} // namespace cdna::os
