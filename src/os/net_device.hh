/**
 * @file
 * The OS-internal network-device interface.
 *
 * A NetDevice is what the simulated kernel's stack sees: the native
 * Intel driver, the Xen paravirtual frontend, and the CDNA guest driver
 * all implement it, so the stack and workloads are oblivious to which
 * I/O virtualization architecture is underneath -- exactly the
 * transparency the paper's designs preserve.
 */

#ifndef CDNA_OS_NET_DEVICE_HH
#define CDNA_OS_NET_DEVICE_HH

#include <functional>

#include "mem/phys_memory.hh"
#include "net/packet.hh"

namespace cdna::os {

class NetDevice
{
  public:
    virtual ~NetDevice() = default;

    /** True when the device can accept another transmit. */
    virtual bool canTransmit() const = 0;

    /**
     * Queue a packet for transmission.  Callers must check
     * canTransmit() first; drivers drop (and count) otherwise.
     */
    virtual void transmit(net::Packet pkt) = 0;

    /** Push any queued transmits to the hardware (end of a burst). */
    virtual void flush() {}

    /** Device MAC address. */
    virtual net::MacAddr mac() const = 0;

    /** True if the device accepts TSO segments larger than one MSS. */
    virtual bool tsoCapable() const = 0;

    /**
     * When true (default) the driver recycles delivered RX pages
     * itself; when false (Xen backend use, where delivered pages are
     * page-flipped to a guest) the owner must supply replacements via
     * refillRx().
     */
    virtual void setAutoRefill(bool) {}

    /** Post a fresh RX buffer page (only used with auto-refill off). */
    virtual void refillRx(mem::PageNum) {}

    /** Install the receive path (stack delivery). */
    void setRxHandler(std::function<void(net::Packet)> fn)
    {
        rxHandler_ = std::move(fn);
    }

    /** Fires when a transmitted packet is guest-visibly complete. */
    void setTxCompleteHandler(std::function<void(std::uint64_t bytes)> fn)
    {
        txCompleteHandler_ = std::move(fn);
    }

    /** Fires when canTransmit() transitions false -> true. */
    void setTxSpaceHandler(std::function<void()> fn)
    {
        txSpaceHandler_ = std::move(fn);
    }

  protected:
    void
    deliverRx(net::Packet pkt)
    {
        if (rxHandler_)
            rxHandler_(std::move(pkt));
    }

    void
    deliverTxComplete(std::uint64_t bytes)
    {
        if (txCompleteHandler_)
            txCompleteHandler_(bytes);
    }

    void
    deliverTxSpace()
    {
        if (txSpaceHandler_)
            txSpaceHandler_();
    }

  private:
    std::function<void(net::Packet)> rxHandler_;
    std::function<void(std::uint64_t)> txCompleteHandler_;
    std::function<void()> txSpaceHandler_;
};

} // namespace cdna::os

#endif // CDNA_OS_NET_DEVICE_HH
