#include "net/eth_switch.hh"

#include <algorithm>
#include <string>
#include <utility>

#include "sim/assert.hh"
#include "sim/fault_injector.hh"

namespace cdna::net {

EthSwitch::EthSwitch(sim::SimContext &ctx, std::string name,
                     std::uint32_t num_ports, EthSwitchParams params)
    : sim::SimObject(ctx, std::move(name)),
      params_(params),
      psPerByte_(static_cast<double>(sim::kSecond) * 8.0 /
                 params.bitsPerSec),
      ports_(num_ports)
{
    SIM_ASSERT(num_ports >= 2, "a switch needs at least two ports");
    for (std::uint32_t i = 0; i < num_ports; ++i) {
        std::string p = "p" + std::to_string(i);
        ports_[i].sw = this;
        ports_[i].setIndex(i);
        ports_[i].txFrames = &stats().addCounter(p + "_tx_frames");
        ports_[i].txPayload = &stats().addCounter(p + "_tx_payload_bytes");
        ports_[i].rxPayload = &stats().addCounter(p + "_rx_payload_bytes");
        ports_[i].drops = &stats().addCounter(p + "_egress_drops");
        ports_[i].dropBytes = &stats().addCounter(p + "_egress_drop_bytes");
    }
    faultDrops_ = &stats().addCounter("fault_drops");
    faultCorrupts_ = &stats().addCounter("fault_corrupts");
    faultDups_ = &stats().addCounter("fault_dups");
    nUnrouted_ = &stats().addCounter("unrouted_drops");
    nFlooded_ = &stats().addCounter("flooded_frames");
}

Port &
EthSwitch::bind(LinkEndpoint &ep)
{
    SIM_ASSERT(bound_ < ports_.size(), "switch ports exhausted");
    SwitchPort &p = ports_[bound_++];
    p.ep = &ep;
    return p;
}

Port &
EthSwitch::port(std::uint32_t i)
{
    SIM_ASSERT(i < ports_.size(), "switch port index out of range");
    return ports_[i];
}

const Port &
EthSwitch::port(std::uint32_t i) const
{
    SIM_ASSERT(i < ports_.size(), "switch port index out of range");
    return ports_[i];
}

void
EthSwitch::setRoute(MacAddr mac, std::uint32_t port)
{
    SIM_ASSERT(port < ports_.size(), "route to nonexistent port");
    routes_[mac] = port;
}

std::uint64_t
EthSwitch::totalDrops() const
{
    std::uint64_t n = 0;
    for (const auto &p : ports_)
        n += p.drops->value();
    return n;
}

std::uint64_t
EthSwitch::totalDropBytes() const
{
    std::uint64_t n = 0;
    for (const auto &p : ports_)
        n += p.dropBytes->value();
    return n;
}

std::uint64_t
EthSwitch::maxQueuePeakBytes() const
{
    std::uint64_t n = 0;
    for (const auto &p : ports_)
        n = std::max(n, p.qPeakBytes);
    return n;
}

sim::Time
EthSwitch::SwitchPort::estimate(const Packet &pkt) const
{
    sim::Time start = std::max(sw->now(), inBusyUntil);
    return start + static_cast<sim::Time>(
        sw->psPerByte_ * static_cast<double>(pkt.wireBytes()));
}

bool
EthSwitch::SwitchPort::busy() const
{
    return inBusyUntil > sw->now();
}

sim::Time
EthSwitch::doSend(SwitchPort &from, Packet pkt, sim::Time extra_gap,
                  std::function<void()> serialized)
{
    from.txFrames->inc(pkt.wireFrames());
    from.txPayload->inc(pkt.payloadBytes);

    sim::Time start = std::max(now(), from.inBusyUntil);
    auto wire = static_cast<sim::Time>(
        psPerByte_ * static_cast<double>(pkt.wireBytes()));
    sim::Time end = start + wire;
    from.inBusyUntil = end + extra_gap;

    if (serialized)
        events().scheduleAt(end, std::move(serialized));
    if (from.hook())
        events().scheduleAt(from.inBusyUntil, [this, &from] {
            // A later send pushed inBusyUntil forward: that send's own
            // hook event covers the eventual drain.
            if (from.hook() && from.inBusyUntil <= now())
                from.hook()();
        });

    // Same per-wire fault model as EthLink: the endpoint-to-switch
    // cable can drop, corrupt, or duplicate.  A corrupted frame is
    // still switched -- it consumes egress buffer and wire time all the
    // way to the receiver, whose checksum check finally discards it.
    auto fate = sim::FaultInjector::FrameFault::kNone;
    if (sim::FaultInjector *fi = ctx().faultInjector();
        fi && fi->framesArmed())
        fate = fi->frameFault();
    if (fate == sim::FaultInjector::FrameFault::kDrop) {
        faultDrops_->inc();
        return end;
    }
    if (fate == sim::FaultInjector::FrameFault::kCorrupt) {
        faultCorrupts_->inc();
        pkt.intact = false;
    }

    pkt.hostSg.clear();
    Packet dup;
    if (fate == sim::FaultInjector::FrameFault::kDuplicate) {
        faultDups_->inc();
        dup = pkt;
        dup.duplicated = true;
    }
    events().scheduleAt(end + params_.propagation,
                        [this, &from, p = std::move(pkt)]() mutable {
                            forward(from, std::move(p));
                        });
    if (fate == sim::FaultInjector::FrameFault::kDuplicate)
        events().scheduleAt(end + params_.propagation,
                            [this, &from, p = std::move(dup)]() mutable {
                                forward(from, std::move(p));
                            });
    return end;
}

void
EthSwitch::forward(SwitchPort &ingress, Packet pkt)
{
    if (params_.learning && !(pkt.src == MacAddr{}))
        fdb_[pkt.src] = ingress.index();

    auto route = routes_.find(pkt.dst);
    if (route != routes_.end()) {
        enqueue(ports_[route->second], std::move(pkt));
        return;
    }
    if (params_.learning) {
        auto learned = fdb_.find(pkt.dst);
        if (learned != fdb_.end()) {
            // Destination on the ingress segment: filter, don't hairpin.
            if (learned->second != ingress.index())
                enqueue(ports_[learned->second], std::move(pkt));
            return;
        }
        // Unknown unicast: flood to every other bound port.
        nFlooded_->inc();
        for (auto &out : ports_) {
            if (out.index() == ingress.index() || !out.ep)
                continue;
            enqueue(out, pkt);
        }
        return;
    }
    nUnrouted_->inc();
}

void
EthSwitch::enqueue(SwitchPort &out, Packet pkt)
{
    std::uint64_t wb = pkt.wireBytes();
    bool over_bytes =
        params_.bufBytesPerPort && out.qBytes + wb > params_.bufBytesPerPort;
    bool over_frames =
        params_.bufFramesPerPort && out.qFrames >= params_.bufFramesPerPort;
    if (over_bytes || over_frames) {
        out.drops->inc();
        out.dropBytes->inc(wb);
        return;
    }
    out.qBytes += wb;
    out.qFrames += 1;
    out.qPeakBytes = std::max(out.qPeakBytes, out.qBytes);
    out.q.push_back({std::move(pkt), wb, now() + params_.forwardLatency});
    pumpEgress(out);
}

void
EthSwitch::pumpEgress(SwitchPort &out)
{
    if (out.egressBusy || out.q.empty())
        return;
    QEntry &head = out.q.front();
    out.egressBusy = true;

    sim::Time start = std::max(now(), head.readyAt);
    sim::Time end = start + static_cast<sim::Time>(
        psPerByte_ * static_cast<double>(head.wireBytes));
    Packet pkt = std::move(head.pkt);
    std::uint64_t wb = head.wireBytes;
    out.q.pop_front();

    // Store-and-forward buffer accounting: the frame's bytes stay
    // resident until its last byte has left on the egress wire.
    events().scheduleAt(end, [this, &out, wb, p = std::move(pkt)]() mutable {
        out.qBytes -= wb;
        out.qFrames -= 1;
        out.egressBusy = false;
        events().scheduleAt(now() + params_.propagation,
                            [&out, q = std::move(p)]() mutable {
                                out.rxPayload->inc(q.payloadBytes);
                                if (out.ep)
                                    out.ep->receiveFrame(std::move(q));
                            });
        pumpEgress(out);
    });
}

// ------------------------------------------------------------- trunk ----

SwitchTrunk::SwitchTrunk(sim::SimContext &ctx, std::string name, Fabric &a,
                         Fabric &b)
    : sim::SimObject(ctx, std::move(name))
{
    nAToB_ = &stats().addCounter("relayed_a_to_b");
    nBToA_ = &stats().addCounter("relayed_b_to_a");
    endA_.trunk = this;
    endB_.trunk = this;
    endA_.other = &endB_;
    endB_.other = &endA_;
    endA_.relayed = nAToB_;
    endB_.relayed = nBToA_;
    endA_.port = &a.bind(endA_);
    endB_.port = &b.bind(endB_);
}

void
SwitchTrunk::End::receiveFrame(Packet pkt)
{
    // Relay onto the far fabric; the far port's ingress serializer
    // models the uplink wire in that direction.
    relayed->inc();
    other->port->send(std::move(pkt));
}

} // namespace cdna::net
