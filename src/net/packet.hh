/**
 * @file
 * Packet metadata and Ethernet framing constants.
 *
 * Payload contents are not simulated; a Packet carries the metadata the
 * system actually routes on (MAC addresses), the byte counts timing and
 * throughput are computed from, and the host-memory scatter/gather list
 * protection is enforced on.
 */

#ifndef CDNA_NET_PACKET_HH
#define CDNA_NET_PACKET_HH

#include <array>
#include <cstdint>
#include <string>

#include "mem/dma_engine.hh"
#include "sim/time.hh"

namespace cdna::net {

/** Ethernet MAC address. */
class MacAddr
{
  public:
    constexpr MacAddr() : bytes_{} {}

    /** Locally-administered address derived from a small integer id. */
    static constexpr MacAddr
    fromId(std::uint32_t id)
    {
        MacAddr m;
        m.bytes_[0] = 0x02; // locally administered, unicast
        m.bytes_[1] = 0xCD;
        m.bytes_[2] = 0x4A; // "CDNA"
        m.bytes_[3] = static_cast<std::uint8_t>(id >> 16);
        m.bytes_[4] = static_cast<std::uint8_t>(id >> 8);
        m.bytes_[5] = static_cast<std::uint8_t>(id);
        return m;
    }

    bool operator==(const MacAddr &o) const = default;
    auto operator<=>(const MacAddr &o) const = default;

    std::string str() const;

    /** Raw byte view (printing, hashing in tests). */
    const std::array<std::uint8_t, 6> &raw() const { return bytes_; }

    /** Hash for unordered containers. */
    std::uint64_t
    hash() const
    {
        std::uint64_t h = 0;
        for (auto b : bytes_)
            h = h * 131 + b;
        return h;
    }

  private:
    std::array<std::uint8_t, 6> bytes_;
};

/** Standard Ethernet MTU (bytes of IP datagram per frame). */
inline constexpr std::uint32_t kMtu = 1500;
/** TCP/IP header bytes inside the MTU. */
inline constexpr std::uint32_t kTcpIpHeader = 40;
/** Max TCP payload per wire frame. */
inline constexpr std::uint32_t kMss = kMtu - kTcpIpHeader;
/** Ethernet MAC header + frame check sequence. */
inline constexpr std::uint32_t kEthHeader = 18;
/** Preamble + SFD + inter-frame gap (occupies the wire, carries nothing). */
inline constexpr std::uint32_t kEthIdle = 20;
/** Total non-payload wire bytes per frame. */
inline constexpr std::uint32_t kWireOverhead =
    kTcpIpHeader + kEthHeader + kEthIdle; // 78 bytes per full frame

/** Largest TSO segment the stack will form (64 KB). */
inline constexpr std::uint32_t kMaxTsoBytes = 65536;

/**
 * A packet (or, when payloadBytes > kMss, a TSO segment that the NIC
 * will cut into MTU-sized frames on the wire).
 */
struct Packet
{
    MacAddr src;
    MacAddr dst;
    std::uint32_t payloadBytes = 0;   //!< TCP payload (goodput) bytes
    mem::SgList hostSg;               //!< host buffer(s), empty once on wire
    mem::DomainId srcDomain = mem::kDomInvalid; //!< origin (accounting)
    std::uint64_t id = 0;             //!< unique id for tracing
    std::uint64_t flowId = 0;         //!< connection the packet belongs to
    sim::Time created = 0;            //!< creation time (latency stats)
    /**
     * Injected duplicate of an already-delivered frame (fault
     * injection).  Duplicates consume wire, NIC, and stack resources
     * but are excluded from goodput, latency, and ACK accounting so
     * faults can only ever lower measured throughput.
     */
    bool duplicated = false;
    /**
     * Frame integrity: cleared by wire corruption (EthLink fault
     * injection).  NICs DMA the frame regardless (checksum offload
     * verifies, software checks on delivery); receivers -- NetStack
     * and TrafficPeer -- drop it and count rxDropBadCsum, which under
     * the TCP transport forces a retransmission.
     */
    bool intact = true;

    // --- transport (net/transport/tcp.hh); untouched in open-loop mode ---
    std::uint64_t seq = 0;   //!< first payload byte's stream offset
    std::uint64_t ackNo = 0; //!< cumulative ACK (valid when tcpAck)
    bool tcpData = false;    //!< seq is valid (data segment)
    bool tcpAck = false;     //!< ackNo is valid (pure ACK)

    // --- request/response RPC (net/workload/); all-zero otherwise ---
    std::uint64_t rpcId = 0;        //!< request id (valid when rpcReq/rpcResp)
    std::uint32_t rpcRespBytes = 0; //!< response size the request asks for
    bool rpcReq = false;            //!< request frame, answered by the stack
    bool rpcResp = false;           //!< response frame, routed to the engine

    /** Number of wire frames this packet occupies. */
    std::uint32_t
    wireFrames() const
    {
        return payloadBytes == 0 ? 1 : (payloadBytes + kMss - 1) / kMss;
    }

    /** Total bytes of wire occupancy including all framing overhead. */
    std::uint64_t
    wireBytes() const
    {
        return static_cast<std::uint64_t>(payloadBytes) +
               static_cast<std::uint64_t>(wireFrames()) * kWireOverhead;
    }
};

} // namespace cdna::net

#endif // CDNA_NET_PACKET_HH
