/**
 * @file
 * Output-queued Ethernet switch: the N-port Fabric.
 *
 * Each bound endpoint gets a Port whose ingress serializer behaves
 * exactly like one EthLink direction (line-rate serialization, fault
 * injection, propagation).  Fully-received frames are looked up --
 * static route first, then the learned MAC table, else flooded -- and
 * enqueued on the destination port's finite egress queue.  The queue is
 * tail-drop with per-port drop counters, models store-and-forward (a
 * frame occupies buffer from enqueue until its last byte has been
 * retransmitted), and charges a fixed forwarding latency before a frame
 * becomes eligible for egress.
 *
 * There is no spanning tree; multi-switch topologies must be acyclic.
 * A two-switch trunk cannot loop because flooding never exits the
 * ingress port.
 */

#ifndef CDNA_NET_ETH_SWITCH_HH
#define CDNA_NET_ETH_SWITCH_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "net/fabric.hh"
#include "net/packet.hh"
#include "sim/sim_object.hh"

namespace cdna::net {

struct EthSwitchParams
{
    /** Line rate of every port. */
    double bitsPerSec = 1.0e9;
    /** One-way propagation delay of each attached cable. */
    sim::Time propagation = sim::nanoseconds(500);
    /** Lookup/enqueue latency before a frame may begin egress. */
    sim::Time forwardLatency = sim::microseconds(4);
    /** Per-port egress buffer in wire bytes (0 = unlimited). */
    std::uint64_t bufBytesPerPort = 128 * 1024;
    /** Per-port egress buffer in frames (0 = byte-limited only). */
    std::uint32_t bufFramesPerPort = 0;
    /** Learn source MACs; unknown unicast floods.  When false, only
     *  setRoute() entries forward and unrouted frames are dropped. */
    bool learning = true;
};

class EthSwitch : public sim::SimObject, public Fabric
{
  public:
    EthSwitch(sim::SimContext &ctx, std::string name,
              std::uint32_t num_ports, EthSwitchParams params = {});

    /** Claim the next free port (asserts when the switch is full). */
    Port &bind(LinkEndpoint &ep) override;

    double bitsPerSec() const override { return params_.bitsPerSec; }

    /** Port @p i's handle (bound or not; tests peek at counters). */
    Port &port(std::uint32_t i);
    const Port &port(std::uint32_t i) const;

    std::uint32_t numPorts() const
    {
        return static_cast<std::uint32_t>(ports_.size());
    }

    /** Pin @p mac to egress port @p port; beats the learned table. */
    void setRoute(MacAddr mac, std::uint32_t port);

    /** Frames dropped because no route existed (learning off). */
    std::uint64_t unrouted() const { return nUnrouted_->value(); }

    /** Sum of egress tail-drops over all ports. */
    std::uint64_t totalDrops() const;
    std::uint64_t totalDropBytes() const;
    /** Largest egress-queue high-watermark over all ports. */
    std::uint64_t maxQueuePeakBytes() const;

  private:
    struct QEntry
    {
        Packet pkt;
        std::uint64_t wireBytes = 0;
        sim::Time readyAt = 0;
    };

    struct SwitchPort final : Port
    {
        EthSwitch *sw = nullptr;
        LinkEndpoint *ep = nullptr;

        // Ingress: the endpoint's wire into the switch.
        sim::Time inBusyUntil = 0;
        sim::Counter *txFrames = nullptr;
        sim::Counter *txPayload = nullptr;

        // Egress: the finite output queue and its wire out.
        std::deque<QEntry> q;
        std::uint64_t qBytes = 0;
        std::uint32_t qFrames = 0;
        std::uint64_t qPeakBytes = 0;
        bool egressBusy = false;
        sim::Counter *rxPayload = nullptr;
        sim::Counter *drops = nullptr;
        sim::Counter *dropBytes = nullptr;

        void setIndex(std::uint32_t i) { index_ = i; }
        const std::function<void()> &hook() const { return drainHook_; }

        sim::Time send(Packet pkt, sim::Time extra_gap,
                       std::function<void()> serialized) override
        {
            return sw->doSend(*this, std::move(pkt), extra_gap,
                              std::move(serialized));
        }
        sim::Time estimate(const Packet &pkt) const override;
        bool busy() const override;
        std::uint64_t payloadCarried() const override
        {
            return txPayload->value();
        }
        std::uint64_t payloadDelivered() const override
        {
            return rxPayload->value();
        }
        std::uint64_t egressDrops() const override
        {
            return drops->value();
        }
        std::uint64_t egressDropBytes() const override
        {
            return dropBytes->value();
        }
        std::uint64_t queuePeakBytes() const override { return qPeakBytes; }
    };

    sim::Time doSend(SwitchPort &from, Packet pkt, sim::Time extra_gap,
                     std::function<void()> serialized);
    /** A frame has fully arrived on @p ingress: look up and enqueue. */
    void forward(SwitchPort &ingress, Packet pkt);
    /** Enqueue one copy on @p out (tail-drop on overflow). */
    void enqueue(SwitchPort &out, Packet pkt);
    /** Start the next eligible egress transmission on @p out. */
    void pumpEgress(SwitchPort &out);

    EthSwitchParams params_;
    double psPerByte_;
    std::vector<SwitchPort> ports_;
    std::uint32_t bound_ = 0;
    std::map<MacAddr, std::uint32_t> routes_;
    std::map<MacAddr, std::uint32_t> fdb_;
    sim::Counter *faultDrops_ = nullptr;
    sim::Counter *faultCorrupts_ = nullptr;
    sim::Counter *faultDups_ = nullptr;
    sim::Counter *nUnrouted_ = nullptr;
    sim::Counter *nFlooded_ = nullptr;
};

/**
 * Inter-switch uplink: binds one port on each of two fabrics and
 * re-transmits every frame received on one side into the other.
 * The finite buffering of a congested uplink lives in the upstream
 * switch's egress queue toward the trunk port.
 */
class SwitchTrunk : public sim::SimObject
{
  public:
    SwitchTrunk(sim::SimContext &ctx, std::string name, Fabric &a,
                Fabric &b);

    /** The trunk's port index on fabric A / B (for setRoute). */
    std::uint32_t portOnA() const { return endA_.port->index(); }
    std::uint32_t portOnB() const { return endB_.port->index(); }

    /** Frames relayed in each direction. */
    std::uint64_t relayedAToB() const { return nAToB_->value(); }
    std::uint64_t relayedBToA() const { return nBToA_->value(); }

  private:
    struct End final : LinkEndpoint
    {
        SwitchTrunk *trunk = nullptr;
        Port *port = nullptr;        // this end's port
        End *other = nullptr;        // the far end
        sim::Counter *relayed = nullptr;

        void receiveFrame(Packet pkt) override;
    };

    End endA_;
    End endB_;
    sim::Counter *nAToB_ = nullptr;
    sim::Counter *nBToA_ = nullptr;
};

} // namespace cdna::net

#endif // CDNA_NET_ETH_SWITCH_HH
