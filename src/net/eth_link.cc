#include "net/eth_link.hh"

#include <algorithm>
#include <utility>

#include "sim/assert.hh"

namespace cdna::net {

EthLink::EthLink(sim::SimContext &ctx, std::string name, double bits_per_sec,
                 sim::Time propagation)
    : sim::SimObject(ctx, std::move(name)),
      bps_(bits_per_sec),
      psPerByte_(static_cast<double>(sim::kSecond) * 8.0 / bits_per_sec),
      propagation_(propagation)
{
    aToB_.frames = &stats().addCounter("a2b_frames");
    aToB_.payloadBytes = &stats().addCounter("a2b_payload_bytes");
    bToA_.frames = &stats().addCounter("b2a_frames");
    bToA_.payloadBytes = &stats().addCounter("b2a_payload_bytes");
}

void
EthLink::attach(Side side, LinkEndpoint *ep)
{
    // Endpoint on side X receives traffic flowing *toward* X.
    if (side == Side::kA)
        bToA_.dest = ep;
    else
        aToB_.dest = ep;
}

sim::Time
EthLink::estimate(Side from, const Packet &pkt) const
{
    const Dir &d = dir(from);
    sim::Time start = std::max(now(), d.busyUntil);
    return start + static_cast<sim::Time>(
        psPerByte_ * static_cast<double>(pkt.wireBytes()));
}

bool
EthLink::busy(Side from) const
{
    return dir(from).busyUntil > now();
}

std::uint64_t
EthLink::payloadCarried(Side from) const
{
    return dir(from).payloadBytes->value();
}

sim::Time
EthLink::send(Side from, Packet pkt, sim::Time extra_gap,
              std::function<void()> serialized)
{
    Dir &d = dir(from);
    SIM_ASSERT(d.dest != nullptr, "link endpoint not attached");
    d.frames->inc(pkt.wireFrames());
    d.payloadBytes->inc(pkt.payloadBytes);

    sim::Time start = std::max(now(), d.busyUntil);
    auto wire = static_cast<sim::Time>(
        psPerByte_ * static_cast<double>(pkt.wireBytes()));
    sim::Time end = start + wire;
    d.busyUntil = end + extra_gap;

    if (serialized)
        events().scheduleAt(end, std::move(serialized));

    // Packets leave host memory when they hit the wire.
    pkt.hostSg.clear();
    events().scheduleAt(end + propagation_,
                        [dest = d.dest, p = std::move(pkt)]() mutable {
                            dest->receiveFrame(std::move(p));
                        });
    return end;
}

} // namespace cdna::net
