#include "net/eth_link.hh"

#include <algorithm>
#include <utility>

#include "sim/assert.hh"
#include "sim/fault_injector.hh"

namespace cdna::net {

EthLink::EthLink(sim::SimContext &ctx, std::string name, double bits_per_sec,
                 sim::Time propagation)
    : sim::SimObject(ctx, std::move(name)),
      bps_(bits_per_sec),
      psPerByte_(static_cast<double>(sim::kSecond) * 8.0 / bits_per_sec),
      propagation_(propagation)
{
    for (std::uint32_t i = 0; i < 2; ++i) {
        std::string p = "p" + std::to_string(i);
        ports_[i].link = this;
        ports_[i].setIndex(i);
        ports_[i].txFrames = &stats().addCounter(p + "_tx_frames");
        ports_[i].txPayload = &stats().addCounter(p + "_tx_payload_bytes");
        ports_[i].rxPayload = &stats().addCounter(p + "_rx_payload_bytes");
    }
    faultDrops_ = &stats().addCounter("fault_drops");
    faultCorrupts_ = &stats().addCounter("fault_corrupts");
    faultDups_ = &stats().addCounter("fault_dups");
}

Port &
EthLink::bind(LinkEndpoint &ep)
{
    SIM_ASSERT(bound_ < 2, "EthLink has only two ports");
    LinkPort &p = ports_[bound_++];
    p.ep = &ep;
    return p;
}

Port &
EthLink::port(std::uint32_t i)
{
    SIM_ASSERT(i < 2, "EthLink port index out of range");
    return ports_[i];
}

sim::Time
EthLink::LinkPort::estimate(const Packet &pkt) const
{
    sim::Time start = std::max(link->now(), busyUntil);
    return start + static_cast<sim::Time>(
        link->psPerByte_ * static_cast<double>(pkt.wireBytes()));
}

bool
EthLink::LinkPort::busy() const
{
    return busyUntil > link->now();
}

sim::Time
EthLink::doSend(LinkPort &from, Packet pkt, sim::Time extra_gap,
                std::function<void()> serialized)
{
    LinkPort *to = &ports_[1 - from.index()];
    SIM_ASSERT(to->ep != nullptr, "link far endpoint not bound");
    from.txFrames->inc(pkt.wireFrames());
    from.txPayload->inc(pkt.payloadBytes);

    sim::Time start = std::max(now(), from.busyUntil);
    auto wire = static_cast<sim::Time>(
        psPerByte_ * static_cast<double>(pkt.wireBytes()));
    sim::Time end = start + wire;
    from.busyUntil = end + extra_gap;

    if (serialized)
        events().scheduleAt(end, std::move(serialized));
    if (from.hook())
        events().scheduleAt(from.busyUntil, [this, &from] {
            // A later send pushed busyUntil forward: that send's own
            // hook event covers the eventual drain.
            if (from.hook() && from.busyUntil <= now())
                from.hook()();
        });

    // Fault injection: the frame still occupied the wire, but it may
    // never reach the far side (drop), arrive with its payload mangled
    // (corrupt: the receiver's checksum check discards it, so it still
    // consumes NIC and stack resources), or arrive twice (duplicate).
    auto fate = sim::FaultInjector::FrameFault::kNone;
    if (sim::FaultInjector *fi = ctx().faultInjector();
        fi && fi->framesArmed())
        fate = fi->frameFault();
    if (fate == sim::FaultInjector::FrameFault::kDrop) {
        faultDrops_->inc();
        return end;
    }
    if (fate == sim::FaultInjector::FrameFault::kCorrupt) {
        faultCorrupts_->inc();
        pkt.intact = false;
    }

    // Packets leave host memory when they hit the wire.
    pkt.hostSg.clear();
    Packet dup;
    if (fate == sim::FaultInjector::FrameFault::kDuplicate) {
        faultDups_->inc();
        dup = pkt;
        dup.duplicated = true;
    }
    events().scheduleAt(end + propagation_,
                        [to, p = std::move(pkt)]() mutable {
                            to->rxPayload->inc(p.payloadBytes);
                            to->ep->receiveFrame(std::move(p));
                        });
    if (fate == sim::FaultInjector::FrameFault::kDuplicate)
        // FIFO ties: arrives right behind the original.
        events().scheduleAt(end + propagation_,
                            [to, p = std::move(dup)]() mutable {
                                to->rxPayload->inc(p.payloadBytes);
                                to->ep->receiveFrame(std::move(p));
                            });
    return end;
}

} // namespace cdna::net
