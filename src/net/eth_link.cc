#include "net/eth_link.hh"

#include <algorithm>
#include <utility>

#include "sim/assert.hh"
#include "sim/fault_injector.hh"

namespace cdna::net {

EthLink::EthLink(sim::SimContext &ctx, std::string name, double bits_per_sec,
                 sim::Time propagation)
    : sim::SimObject(ctx, std::move(name)),
      bps_(bits_per_sec),
      psPerByte_(static_cast<double>(sim::kSecond) * 8.0 / bits_per_sec),
      propagation_(propagation)
{
    aToB_.frames = &stats().addCounter("a2b_frames");
    aToB_.payloadBytes = &stats().addCounter("a2b_payload_bytes");
    bToA_.frames = &stats().addCounter("b2a_frames");
    bToA_.payloadBytes = &stats().addCounter("b2a_payload_bytes");
    faultDrops_ = &stats().addCounter("fault_drops");
    faultCorrupts_ = &stats().addCounter("fault_corrupts");
    faultDups_ = &stats().addCounter("fault_dups");
}

void
EthLink::attach(Side side, LinkEndpoint *ep)
{
    // Endpoint on side X receives traffic flowing *toward* X.
    if (side == Side::kA)
        bToA_.dest = ep;
    else
        aToB_.dest = ep;
}

sim::Time
EthLink::estimate(Side from, const Packet &pkt) const
{
    const Dir &d = dir(from);
    sim::Time start = std::max(now(), d.busyUntil);
    return start + static_cast<sim::Time>(
        psPerByte_ * static_cast<double>(pkt.wireBytes()));
}

bool
EthLink::busy(Side from) const
{
    return dir(from).busyUntil > now();
}

std::uint64_t
EthLink::payloadCarried(Side from) const
{
    return dir(from).payloadBytes->value();
}

sim::Time
EthLink::send(Side from, Packet pkt, sim::Time extra_gap,
              std::function<void()> serialized)
{
    Dir &d = dir(from);
    SIM_ASSERT(d.dest != nullptr, "link endpoint not attached");
    d.frames->inc(pkt.wireFrames());
    d.payloadBytes->inc(pkt.payloadBytes);

    sim::Time start = std::max(now(), d.busyUntil);
    auto wire = static_cast<sim::Time>(
        psPerByte_ * static_cast<double>(pkt.wireBytes()));
    sim::Time end = start + wire;
    d.busyUntil = end + extra_gap;

    if (serialized)
        events().scheduleAt(end, std::move(serialized));

    // Fault injection: the frame still occupied the wire, but it may
    // never reach the far side (drop), arrive with its payload mangled
    // (corrupt: the receiver's checksum check discards it, so it still
    // consumes NIC and stack resources), or arrive twice (duplicate).
    auto fate = sim::FaultInjector::FrameFault::kNone;
    if (sim::FaultInjector *fi = ctx().faultInjector();
        fi && fi->framesArmed())
        fate = fi->frameFault();
    if (fate == sim::FaultInjector::FrameFault::kDrop) {
        faultDrops_->inc();
        return end;
    }
    if (fate == sim::FaultInjector::FrameFault::kCorrupt) {
        faultCorrupts_->inc();
        pkt.intact = false;
    }

    // Packets leave host memory when they hit the wire.
    pkt.hostSg.clear();
    Packet dup;
    if (fate == sim::FaultInjector::FrameFault::kDuplicate) {
        faultDups_->inc();
        dup = pkt;
        dup.duplicated = true;
    }
    events().scheduleAt(end + propagation_,
                        [dest = d.dest, p = std::move(pkt)]() mutable {
                            dest->receiveFrame(std::move(p));
                        });
    if (fate == sim::FaultInjector::FrameFault::kDuplicate)
        // FIFO ties: arrives right behind the original.
        events().scheduleAt(end + propagation_,
                            [dest = d.dest, p = std::move(dup)]() mutable {
                                dest->receiveFrame(std::move(p));
                            });
    return end;
}

} // namespace cdna::net
