#include "net/traffic_peer.hh"

#include <algorithm>
#include <utility>

namespace cdna::net {

TrafficPeer::TrafficPeer(sim::SimContext &ctx, std::string name,
                         EthLink &link, EthLink::Side side)
    : sim::SimObject(ctx, std::move(name)),
      link_(link),
      side_(side),
      nRxFrames_(stats().addCounter("rx_frames")),
      nRxPayload_(stats().addCounter("rx_payload_bytes")),
      nTxFrames_(stats().addCounter("tx_frames")),
      nRxDups_(stats().addCounter("rx_duplicates"))
{
    // Derive the peer's MAC from its name so it is stable per component
    // regardless of construction order; peers live in a reserved id range
    // that never collides with guest MACs.
    std::uint32_t h = 2166136261u;
    for (char c : this->name())
        h = (h ^ static_cast<unsigned char>(c)) * 16777619u;
    mac_ = MacAddr::fromId(0x00FE0000u + (h & 0xFFFFu));
    link_.attach(side_, this);
}

void
TrafficPeer::startSource(std::vector<MacAddr> dsts, std::uint32_t payload)
{
    dsts_ = std::move(dsts);
    payload_ = payload;
    rrIndex_ = 0;
    if (!sourcing_ && !dsts_.empty()) {
        sourcing_ = true;
        sendNext();
    }
}

void
TrafficPeer::stopSource()
{
    sourcing_ = false;
}

void
TrafficPeer::sendNext()
{
    if (!sourcing_ || sendInProgress_)
        return;

    // Pick the next destination with window room (round-robin).
    bool flow_control = ackEvery_ != 0 && windowFrames_ != 0;
    std::size_t tried = 0;
    MacAddr dst;
    bool found = false;
    while (tried < dsts_.size()) {
        MacAddr cand = dsts_[rrIndex_];
        rrIndex_ = (rrIndex_ + 1) % dsts_.size();
        ++tried;
        if (!flow_control ||
            srcSent_[cand] - srcAcked_[cand] < windowFrames_) {
            dst = cand;
            found = true;
            break;
        }
    }
    if (!found) {
        // Every destination's window is full: wait for ACKs, with an
        // RTO-style retry that re-opens the windows (retransmission).
        // The RTO backs off exponentially while no progress is made, so
        // a persistently slow receiver throttles the source instead of
        // being buried in retransmissions.
        if (retryTimer_ == sim::kInvalidEvent) {
            retryTimer_ = events().schedule(retryDelay_, [this] {
                retryTimer_ = sim::kInvalidEvent;
                retryDelay_ = std::min<sim::Time>(retryDelay_ * 2,
                                                  sim::milliseconds(16));
                for (auto &[mac, sent] : srcSent_)
                    sent = srcAcked_[mac];
                sendNext();
            });
        }
        return;
    }

    Packet pkt;
    pkt.src = mac_;
    pkt.dst = dst;
    pkt.payloadBytes = payload_;
    pkt.id = nextPktId_++;
    pkt.created = now();
    srcSent_[dst] += pkt.wireFrames();
    nTxFrames_.inc();
    sendInProgress_ = true;
    link_.send(side_, std::move(pkt), 0, [this] {
        sendInProgress_ = false;
        sendNext();
    });
}

void
TrafficPeer::receiveFrame(Packet pkt)
{
    nRxFrames_.inc(pkt.wireFrames());
    if (pkt.duplicated) {
        // Injected duplicate: TCP discards it, so it contributes
        // nothing to goodput, latency, windows, or the ACK clock.
        nRxDups_.inc();
        return;
    }
    nRxPayload_.inc(pkt.payloadBytes);
    rxBySrc_[pkt.src] += pkt.payloadBytes;

    if (pkt.payloadBytes > 0 && pkt.created > 0) {
        double us = sim::toMicroseconds(now() - pkt.created);
        latency_.record(us);
        latencyHist_.record(static_cast<std::uint64_t>(us));
    }

    // An incoming ACK opens the sender-side window toward its source.
    if (pkt.payloadBytes == 0 && sourcing_) {
        retryDelay_ = sim::microseconds(500); // progress: reset the RTO
        srcAcked_[pkt.src] += ackEvery_ ? ackEvery_ : 0;
        auto sent_it = srcSent_.find(pkt.src);
        if (sent_it != srcSent_.end() &&
            srcAcked_[pkt.src] > sent_it->second)
            srcAcked_[pkt.src] = sent_it->second;
        sendNext();
    }

    // TCP reverse path: ACK data frames (never ACK an ACK).
    if (ackEvery_ != 0 && pkt.payloadBytes > 0) {
        std::uint64_t &debt = ackDebt_[pkt.src];
        debt += pkt.wireFrames();
        while (debt >= ackEvery_) {
            debt -= ackEvery_;
            Packet ack;
            ack.src = mac_;
            ack.dst = pkt.src;
            ack.payloadBytes = 0;
            ack.id = nextPktId_++;
            ack.created = now();
            link_.send(side_, std::move(ack));
        }
    }
}

} // namespace cdna::net
