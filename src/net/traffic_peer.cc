#include "net/traffic_peer.hh"

#include <algorithm>
#include <utility>

#include "net/workload/workload_engine.hh"
#include "sim/assert.hh"

namespace cdna::net {

TrafficPeer::TrafficPeer(sim::SimContext &ctx, std::string name,
                         Fabric &fabric)
    : sim::SimObject(ctx, std::move(name)),
      nRxFrames_(stats().addCounter("rx_frames")),
      nRxPayload_(stats().addCounter("rx_payload_bytes")),
      nTxFrames_(stats().addCounter("tx_frames")),
      nRxDups_(stats().addCounter("rx_duplicates")),
      nRxBadCsum_(stats().addCounter("rx_drops_bad_csum")),
      nRxFiltered_(stats().addCounter("rx_filtered"))
{
    // Derive the peer's MAC from its name so it is stable per component
    // regardless of construction order; peers live in a reserved id range
    // that never collides with guest MACs.
    std::uint32_t h = 2166136261u;
    for (char c : this->name())
        h = (h ^ static_cast<unsigned char>(c)) * 16777619u;
    mac_ = MacAddr::fromId(0x00FE0000u + (h & 0xFFFFu));
    port_ = &fabric.bind(*this);
}

// Out of line: WorkloadEngine is incomplete in the header.
TrafficPeer::~TrafficPeer() = default;

void
TrafficPeer::applyWorkload(const workload::WorkloadSpec &spec)
{
    if (spec.macFilter)
        macFilter_ = *spec.macFilter;
    if (spec.ackEvery)
        ackEvery_ = *spec.ackEvery;
    if (spec.sourceWindow)
        windowFrames_ = *spec.sourceWindow;
    if (spec.tcp)
        enableTcpImpl(*spec.tcp);

    // A saturating open-loop class is the legacy line-rate source and
    // runs on the peer's own machinery, byte-identically; everything
    // else (rate-driven streams, bulk TCP, RPC) needs the engine.
    workload::WorkloadSpec engine_spec;
    engine_spec.targets = spec.targets;
    engine_spec.seed = spec.seed;
    for (const auto &fc : spec.classes) {
        if (fc.kind == workload::FlowKind::kOpenLoopStream &&
            fc.arrival == workload::Arrival::kSaturate)
            startSourceImpl(spec.targets,
                            static_cast<std::uint32_t>(fc.sizeBytes));
        else
            engine_spec.classes.push_back(fc);
    }
    if (!engine_spec.classes.empty()) {
        SIM_ASSERT(!engine_,
                   "engine-backed workload classes applied twice");
        engine_ = std::make_unique<workload::WorkloadEngine>(
            ctx(), name() + ".wl", *port_, mac_, tcp_.get(),
            std::move(engine_spec));
        engine_->start();
    }
}

FlowStats
TrafficPeer::flowStats() const
{
    FlowStats fs;
    fs.payloadDelivered = payloadDelivered();
    fs.framesReceived = nRxFrames_.value();
    fs.framesSent = nTxFrames_.value();
    fs.rxDuplicates = nRxDups_.value();
    fs.rxDropsBadCsum = nRxBadCsum_.value();
    fs.rxFiltered = nRxFiltered_.value();
    if (tcp_) {
        fs.ackedBytes = tcp_->sndUnaTotal();
        fs.retransSegs = tcp_->retransSegs();
        fs.fastRetransmits = tcp_->fastRetransmits();
        fs.rtoEvents = tcp_->rtoEvents();
    }
    fs.receivedBySrc = rxBySrc_;
    fs.latency = latency_;
    fs.latencyHist = latencyHist_;
    return fs;
}

void
TrafficPeer::enableTcpImpl(const transport::TcpParams &params)
{
    SIM_ASSERT(!tcp_, "enableTcp called twice");
    tcp_ = std::make_unique<transport::TcpEndpoint>(
        ctx(), name() + ".tcp", params);

    // Data segments self-clock off the wire: refuse while the link is
    // busy, and the wire-end serialized callback pumps the next one.
    tcp_->setSegmentTx([this](const transport::TcpEndpoint::SegmentOut &so) {
        if (port_->busy())
            return false;
        Packet pkt;
        pkt.src = mac_;
        pkt.dst = so.dst;
        pkt.payloadBytes = so.len;
        pkt.id = nextPktId_++;
        pkt.flowId = so.flowId;
        pkt.created = now();
        pkt.seq = so.seq;
        pkt.tcpData = true;
        nTxFrames_.inc();
        port_->send(std::move(pkt), 0, [this] { tcp_->pump(); });
        return true;
    });

    // Pure ACKs are tiny; let them queue on the link like open-loop
    // ACKs do rather than stalling the delayed-ACK clock.
    tcp_->setAckTx([this](const transport::TcpEndpoint::AckOut &ao) {
        Packet ack;
        ack.src = mac_;
        ack.dst = ao.dst;
        ack.payloadBytes = 0;
        ack.id = nextPktId_++;
        ack.flowId = ao.flowId;
        ack.created = now();
        ack.tcpAck = true;
        ack.ackNo = ao.ackNo;
        port_->send(std::move(ack));
        return true;
    });

    tcp_->setDeliver([this](const Packet &pkt, std::uint64_t bytes) {
        rxBySrc_[pkt.src] += bytes;
        if (pkt.created > 0) {
            double us = sim::toMicroseconds(now() - pkt.created);
            latency_.record(us);
            latencyHist_.record(static_cast<std::uint64_t>(us));
        }
    });
}

void
TrafficPeer::startSourceImpl(std::vector<MacAddr> dsts,
                             std::uint32_t payload)
{
    dsts_ = std::move(dsts);
    payload_ = payload;
    rrIndex_ = 0;
    if (dsts_.empty())
        return;
    if (tcp_) {
        // Closed-loop source: one unlimited Reno flow per destination;
        // guests' ACKs clock the data out.
        sourcing_ = true;
        for (std::size_t i = 0; i < dsts_.size(); ++i)
            tcp_->openSender(0x1000 + i, dsts_[i], /*unlimited=*/true);
        tcp_->pump();
        return;
    }
    if (!sourcing_) {
        sourcing_ = true;
        sendNext();
    }
}

void
TrafficPeer::stopSource()
{
    sourcing_ = false;
}

void
TrafficPeer::sendNext()
{
    if (!sourcing_ || sendInProgress_)
        return;

    // Pick the next destination with window room (round-robin).
    bool flow_control = ackEvery_ != 0 && windowFrames_ != 0;
    std::size_t tried = 0;
    MacAddr dst;
    bool found = false;
    while (tried < dsts_.size()) {
        MacAddr cand = dsts_[rrIndex_];
        rrIndex_ = (rrIndex_ + 1) % dsts_.size();
        ++tried;
        if (!flow_control ||
            srcSent_[cand] - srcAcked_[cand] < windowFrames_) {
            dst = cand;
            found = true;
            break;
        }
    }
    if (!found) {
        // Every destination's window is full: wait for ACKs, with an
        // RTO-style retry that re-opens the windows (retransmission).
        // The RTO backs off exponentially while no progress is made, so
        // a persistently slow receiver throttles the source instead of
        // being buried in retransmissions.
        if (retryTimer_ == sim::kInvalidEvent) {
            retryTimer_ = events().schedule(retryDelay_, [this] {
                retryTimer_ = sim::kInvalidEvent;
                retryDelay_ = std::min<sim::Time>(retryDelay_ * 2,
                                                  sim::milliseconds(16));
                for (auto &[mac, sent] : srcSent_)
                    sent = srcAcked_[mac];
                sendNext();
            });
        }
        return;
    }

    Packet pkt;
    pkt.src = mac_;
    pkt.dst = dst;
    pkt.payloadBytes = payload_;
    pkt.id = nextPktId_++;
    pkt.created = now();
    srcSent_[dst] += pkt.wireFrames();
    nTxFrames_.inc();
    sendInProgress_ = true;
    port_->send(std::move(pkt), 0, [this] {
        sendInProgress_ = false;
        sendNext();
    });
}

void
TrafficPeer::receiveFrame(Packet pkt)
{
    if (macFilter_ && pkt.dst != mac_ && pkt.dst != MacAddr{}) {
        // Flooded or misrouted frame for someone else: a real NIC's MAC
        // filter discards it before it costs anything.
        nRxFiltered_.inc();
        return;
    }
    nRxFrames_.inc(pkt.wireFrames());
    if (!pkt.intact) {
        // Checksum check fails: the frame occupied the wire but never
        // reaches the transport, so the sender must retransmit it.
        nRxBadCsum_.inc();
        return;
    }
    if (pkt.rpcResp && engine_) {
        // A guest's answer to one of our requests: route to the engine
        // for request-latency accounting (RPC frames bypass the TCP
        // demux -- they are datagrams regardless of transport mode).
        if (pkt.duplicated) {
            nRxDups_.inc();
            return;
        }
        nRxPayload_.inc(pkt.payloadBytes);
        rxBySrc_[pkt.src] += pkt.payloadBytes;
        engine_->onRpcResponse(pkt);
        return;
    }
    if (tcp_) {
        if (pkt.duplicated)
            // Counted, but still handed to the transport: the sequence
            // check there discards it (emitting a duplicate ACK).
            nRxDups_.inc();
        if (pkt.tcpData) {
            nRxPayload_.inc(pkt.payloadBytes); // raw wire throughput
            tcp_->onPacket(pkt);
        } else if (pkt.tcpAck) {
            tcp_->onPacket(pkt);
        }
        return;
    }
    if (pkt.duplicated) {
        // Injected duplicate: TCP discards it, so it contributes
        // nothing to goodput, latency, windows, or the ACK clock.
        nRxDups_.inc();
        return;
    }
    nRxPayload_.inc(pkt.payloadBytes);
    rxBySrc_[pkt.src] += pkt.payloadBytes;

    if (pkt.payloadBytes > 0 && pkt.created > 0) {
        double us = sim::toMicroseconds(now() - pkt.created);
        latency_.record(us);
        latencyHist_.record(static_cast<std::uint64_t>(us));
    }

    // An incoming ACK opens the sender-side window toward its source.
    if (pkt.payloadBytes == 0 && sourcing_) {
        retryDelay_ = sim::microseconds(500); // progress: reset the RTO
        srcAcked_[pkt.src] += ackEvery_ ? ackEvery_ : 0;
        auto sent_it = srcSent_.find(pkt.src);
        if (sent_it != srcSent_.end() &&
            srcAcked_[pkt.src] > sent_it->second)
            srcAcked_[pkt.src] = sent_it->second;
        sendNext();
    }

    // TCP reverse path: ACK data frames (never ACK an ACK).
    if (ackEvery_ != 0 && pkt.payloadBytes > 0) {
        std::uint64_t &debt = ackDebt_[pkt.src];
        debt += pkt.wireFrames();
        while (debt >= ackEvery_) {
            debt -= ackEvery_;
            Packet ack;
            ack.src = mac_;
            ack.dst = pkt.src;
            ack.payloadBytes = 0;
            ack.id = nextPktId_++;
            ack.created = now();
            port_->send(std::move(ack));
        }
    }
}

} // namespace cdna::net
