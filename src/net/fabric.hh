/**
 * @file
 * The composable network-fabric API.
 *
 * A Fabric is anything that moves Ethernet frames between endpoints: a
 * point-to-point EthLink (the trivial two-port fabric) or an
 * output-queued EthSwitch.  Endpoints (NICs, traffic peers, trunks)
 * never see the fabric topology -- they bind() themselves and get back
 * a Port handle carrying the full datapath surface: send with a
 * serialization-complete callback, busy/estimate for backpressure, an
 * optional drain hook that fires when the port's serializer goes idle,
 * and the port-local byte/drop accounting the reports read.
 *
 * This is what lets a System stay fabric-agnostic: the same NIC model
 * drives a dedicated link in the paper's single-host experiments and a
 * shared switch port in the multi-host incast/noisy-neighbor
 * topologies (see sim/topology.hh).
 */

#ifndef CDNA_NET_FABRIC_HH
#define CDNA_NET_FABRIC_HH

#include <cstdint>
#include <functional>
#include <utility>

#include "net/packet.hh"
#include "sim/time.hh"

namespace cdna::net {

/** Something that can terminate a fabric port (a NIC or a peer). */
class LinkEndpoint
{
  public:
    virtual ~LinkEndpoint() = default;

    /** A frame has fully arrived from the wire. */
    virtual void receiveFrame(Packet pkt) = 0;
};

/**
 * One endpoint's handle onto a fabric.
 *
 * The handle is per-endpoint: busy(), the serialized callback, and the
 * drain hook all describe *this port's* ingress serializer, never the
 * whole fabric, so two endpoints sharing a switch cannot observe (or
 * stall on) each other's transmit state.
 */
class Port
{
  public:
    virtual ~Port() = default;

    /**
     * Transmit @p pkt into the fabric.
     * @param extra_gap   additional wire dead time charged after the
     *                    frame (models MAC/firmware inter-frame stalls)
     * @param serialized  fires when the last byte has left this port
     * @return time at which serialization completes
     */
    virtual sim::Time send(Packet pkt, sim::Time extra_gap = 0,
                           std::function<void()> serialized = {}) = 0;

    /** Serialization-complete time for a hypothetical send issued now. */
    virtual sim::Time estimate(const Packet &pkt) const = 0;

    /** True while this port's ingress serializer is occupied. */
    virtual bool busy() const = 0;

    /** Payload bytes this endpoint has injected (counted at send). */
    virtual std::uint64_t payloadCarried() const = 0;

    /** Payload bytes delivered to this port's endpoint. */
    virtual std::uint64_t payloadDelivered() const = 0;

    /** Frames tail-dropped from this port's egress queue. */
    virtual std::uint64_t egressDrops() const { return 0; }
    /** Wire bytes tail-dropped from this port's egress queue. */
    virtual std::uint64_t egressDropBytes() const { return 0; }
    /** High-watermark of this port's egress queue, in wire bytes. */
    virtual std::uint64_t queuePeakBytes() const { return 0; }

    /** Position of this port on its fabric (bind order). */
    std::uint32_t index() const { return index_; }

    /**
     * Backpressure resume: @p hook fires whenever a send completes
     * serialization and the port is idle again.  Per-port by
     * construction -- an endpoint only ever hears about its own
     * serializer.  Unset by default, in which case the fabric
     * schedules nothing.
     */
    void setDrainHook(std::function<void()> hook)
    {
        drainHook_ = std::move(hook);
    }

  protected:
    std::uint32_t index_ = 0;
    std::function<void()> drainHook_;
};

/** A frame-moving device with bind-order port allocation. */
class Fabric
{
  public:
    virtual ~Fabric() = default;

    /** Claim the next free port for @p ep and return its handle. */
    virtual Port &bind(LinkEndpoint &ep) = 0;

    /** Line rate of each port. */
    virtual double bitsPerSec() const = 0;
};

} // namespace cdna::net

#endif // CDNA_NET_FABRIC_HH
