/**
 * @file
 * Full-duplex point-to-point Ethernet link: the trivial 2-port Fabric.
 *
 * Each direction is an independent serially-reused channel: a frame (or
 * TSO burst) occupies the wire for wireBytes() at the link rate, then is
 * delivered to the far endpoint after the propagation delay.  The
 * paper's testbed used dedicated Gigabit links between the Xen host and
 * a tuned peer; this model reproduces the 949 Mb/s per-link TCP-goodput
 * ceiling that bounds the CDNA saturation plateau.
 *
 * Endpoints bind() in any order; the first binder gets port 0, the
 * second port 1, and each port transmits toward the other's endpoint.
 */

#ifndef CDNA_NET_ETH_LINK_HH
#define CDNA_NET_ETH_LINK_HH

#include <cstdint>
#include <functional>

#include "net/fabric.hh"
#include "net/packet.hh"
#include "sim/sim_object.hh"

namespace cdna::net {

class EthLink : public sim::SimObject, public Fabric
{
  public:
    /**
     * @param ctx          simulation context
     * @param name         component name
     * @param bits_per_sec line rate (default Gigabit Ethernet)
     * @param propagation  one-way propagation delay
     */
    EthLink(sim::SimContext &ctx, std::string name,
            double bits_per_sec = 1.0e9,
            sim::Time propagation = sim::nanoseconds(500));

    /** Claim the next of the two ports (asserts on a third binder). */
    Port &bind(LinkEndpoint &ep) override;

    double bitsPerSec() const override { return bps_; }

    /** Port @p i's handle (bound or not; tests peek at counters). */
    Port &port(std::uint32_t i);

  private:
    struct LinkPort final : Port
    {
        EthLink *link = nullptr;
        LinkEndpoint *ep = nullptr;
        sim::Time busyUntil = 0;
        sim::Counter *txFrames = nullptr;
        sim::Counter *txPayload = nullptr;
        sim::Counter *rxPayload = nullptr;

        void setIndex(std::uint32_t i) { index_ = i; }
        const std::function<void()> &hook() const { return drainHook_; }

        sim::Time send(Packet pkt, sim::Time extra_gap,
                       std::function<void()> serialized) override
        {
            return link->doSend(*this, std::move(pkt), extra_gap,
                                std::move(serialized));
        }
        sim::Time estimate(const Packet &pkt) const override;
        bool busy() const override;
        std::uint64_t payloadCarried() const override
        {
            return txPayload->value();
        }
        std::uint64_t payloadDelivered() const override
        {
            return rxPayload->value();
        }
    };

    sim::Time doSend(LinkPort &from, Packet pkt, sim::Time extra_gap,
                     std::function<void()> serialized);

    double bps_;
    double psPerByte_;
    sim::Time propagation_;
    LinkPort ports_[2];
    std::uint32_t bound_ = 0;
    sim::Counter *faultDrops_ = nullptr;
    sim::Counter *faultCorrupts_ = nullptr;
    sim::Counter *faultDups_ = nullptr;
};

} // namespace cdna::net

#endif // CDNA_NET_ETH_LINK_HH
