/**
 * @file
 * Full-duplex point-to-point Ethernet link.
 *
 * Each direction is an independent serially-reused channel: a frame (or
 * TSO burst) occupies the wire for wireBytes() at the link rate, then is
 * delivered to the far endpoint after the propagation delay.  The
 * paper's testbed used dedicated Gigabit links between the Xen host and
 * a tuned peer; this model reproduces the 949 Mb/s per-link TCP-goodput
 * ceiling that bounds the CDNA saturation plateau.
 */

#ifndef CDNA_NET_ETH_LINK_HH
#define CDNA_NET_ETH_LINK_HH

#include <cstdint>
#include <functional>

#include "net/packet.hh"
#include "sim/sim_object.hh"

namespace cdna::net {

/** Something that can terminate a link (a NIC or a traffic peer). */
class LinkEndpoint
{
  public:
    virtual ~LinkEndpoint() = default;

    /** A frame has fully arrived from the wire. */
    virtual void receiveFrame(Packet pkt) = 0;
};

class EthLink : public sim::SimObject
{
  public:
    enum class Side { kA, kB };

    /**
     * @param ctx          simulation context
     * @param name         component name
     * @param bits_per_sec line rate (default Gigabit Ethernet)
     * @param propagation  one-way propagation delay
     */
    EthLink(sim::SimContext &ctx, std::string name,
            double bits_per_sec = 1.0e9,
            sim::Time propagation = sim::nanoseconds(500));

    /** Attach the endpoint on @p side. */
    void attach(Side side, LinkEndpoint *ep);

    /**
     * Transmit @p pkt from @p from toward the other side.
     * @param extra_gap   additional wire dead time charged after the
     *                    frame (models MAC/firmware inter-frame stalls)
     * @param serialized  fires when the last byte has left the sender
     * @return time at which serialization completes
     */
    sim::Time send(Side from, Packet pkt, sim::Time extra_gap = 0,
                   std::function<void()> serialized = {});

    /** Serialization-complete time for a hypothetical send issued now. */
    sim::Time estimate(Side from, const Packet &pkt) const;

    /** True if the given direction is currently serializing. */
    bool busy(Side from) const;

    /** Payload bytes carried in the given direction. */
    std::uint64_t payloadCarried(Side from) const;

    double bitsPerSec() const { return bps_; }

  private:
    struct Dir
    {
        LinkEndpoint *dest = nullptr;
        sim::Time busyUntil = 0;
        sim::Counter *frames = nullptr;
        sim::Counter *payloadBytes = nullptr;
    };

    Dir &dir(Side from) { return from == Side::kA ? aToB_ : bToA_; }
    const Dir &dir(Side from) const
    {
        return from == Side::kA ? aToB_ : bToA_;
    }

    double bps_;
    double psPerByte_;
    sim::Time propagation_;
    Dir aToB_;
    Dir bToA_;
    sim::Counter *faultDrops_ = nullptr;
    sim::Counter *faultCorrupts_ = nullptr;
    sim::Counter *faultDups_ = nullptr;
};

} // namespace cdna::net

#endif // CDNA_NET_ETH_LINK_HH
