#include "net/packet.hh"

#include <cstdio>

namespace cdna::net {

std::string
MacAddr::str() const
{
    char buf[24];
    const auto &b = raw();
    std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                  b[0], b[1], b[2], b[3], b[4], b[5]);
    return buf;
}

} // namespace cdna::net
