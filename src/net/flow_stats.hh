/**
 * @file
 * One value struct carrying every per-endpoint flow measurement.
 *
 * Sweep runners and tests used to reach into three objects per
 * measurement (peer counters, the TCP endpoint, the latency
 * histograms).  FlowStats snapshots all of it in one call --
 * TrafficPeer::flowStats() / os::NetStack::flowStats() -- and the old
 * accessors remain as documented views delegating to the same sources.
 */

#ifndef CDNA_NET_FLOW_STATS_HH
#define CDNA_NET_FLOW_STATS_HH

#include <cstdint>
#include <map>

#include "net/packet.hh"
#include "sim/stats.hh"

namespace cdna::net {

/** Point-in-time snapshot of an endpoint's flow results. */
struct FlowStats
{
    // ------------------------------------------------------ datapath ----
    /** Goodput basis: in-order payload bytes delivered past the
     *  transport (open-loop: all payload received). */
    std::uint64_t payloadDelivered = 0;
    std::uint64_t framesReceived = 0;
    std::uint64_t framesSent = 0;
    std::uint64_t rxDuplicates = 0;
    std::uint64_t rxDropsBadCsum = 0;
    std::uint64_t rxFiltered = 0;

    // ----------------------------------------------------- transport ----
    /** Sum of cumulatively ACKed bytes across TCP sender flows. */
    std::uint64_t ackedBytes = 0;
    std::uint64_t retransSegs = 0;
    std::uint64_t fastRetransmits = 0;
    std::uint64_t rtoEvents = 0;

    // ------------------------------------------------------ fairness ----
    std::map<MacAddr, std::uint64_t> receivedBySrc;

    // ------------------------------------------------------- latency ----
    /** End-to-end data-frame latency in microseconds. */
    sim::SampleStats latency;
    sim::Histogram latencyHist;
};

} // namespace cdna::net

#endif // CDNA_NET_FLOW_STATS_HH
