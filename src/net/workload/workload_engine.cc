#include "net/workload/workload_engine.hh"

#include <algorithm>
#include <cmath>

#include "sim/assert.hh"

namespace cdna::net::workload {

namespace {

/** Packet ids from a high base so engine frames never collide with the
 *  peer's open-loop source ids (which count up from 1). */
constexpr std::uint64_t kEnginePktIdBase = 0x4000'0000'0000'0000ull;
/** Bulk TCP flow ids, clear of the peer's legacy 0x1000+i flows. */
constexpr std::uint64_t kBulkFlowBase = 0x100000ull;

} // namespace

WorkloadEngine::WorkloadEngine(sim::SimContext &ctx, std::string name,
                               Port &port, MacAddr src,
                               transport::TcpEndpoint *tcp,
                               WorkloadSpec spec)
    : SimObject(ctx, std::move(name)),
      port_(port),
      src_(src),
      tcp_(tcp),
      spec_(std::move(spec)),
      rng_(workloadStreamSeed(spec_.seed) ^ src.hash()),
      rr_(spec_.classes.size(), 0),
      nextBulkFlow_(kBulkFlowBase),
      nextPktId_(kEnginePktIdBase),
      rpcLatencyHist_(kRpcHistBuckets, kRpcHistSubBits),
      nFlowsStarted_(stats().addCounter("flows_started")),
      nFlowsCompleted_(stats().addCounter("flows_completed")),
      nRpcRequests_(stats().addCounter("rpc_requests")),
      nRpcResponses_(stats().addCounter("rpc_responses")),
      nRpcTimeouts_(stats().addCounter("rpc_timeouts"))
{
    for (const auto &fc : spec_.classes) {
        SIM_ASSERT(fc.arrival != Arrival::kSaturate,
                   "saturating classes run on the peer's legacy source, "
                   "not the engine");
        SIM_ASSERT(fc.arrival != Arrival::kClosedLoop ||
                       fc.kind != FlowKind::kOpenLoopStream,
                   "closed-loop needs a completion signal (RPC or TCP)");
        SIM_ASSERT(fc.kind != FlowKind::kBulkTcp || tcp_,
                   "kBulkTcp classes require the peer's TCP endpoint");
    }
    if (tcp_)
        tcp_->setBufFreed([this](std::uint64_t flow, std::uint64_t bytes) {
            onBufFreed(flow, bytes);
        });
}

void
WorkloadEngine::start()
{
    if (started_ || spec_.targets.empty())
        return;
    started_ = true;
    for (std::size_t c = 0; c < spec_.classes.size(); ++c) {
        const FlowClass &fc = spec_.classes[c];
        if (fc.arrival == Arrival::kClosedLoop) {
            for (std::uint32_t i = 0; i < fc.concurrency; ++i)
                launch(c);
        } else if (fc.ratePerSec > 0.0) {
            scheduleNextArrival(c);
        }
    }
}

double
WorkloadEngine::offeredRatePerSec() const
{
    double sum = 0.0;
    for (const auto &fc : spec_.classes)
        if (fc.arrival != Arrival::kClosedLoop && fc.ratePerSec > 0.0)
            sum += fc.ratePerSec;
    return sum;
}

sim::Time
WorkloadEngine::drawInterarrival(const FlowClass &fc)
{
    // Mean interarrival in simulated-time units; ON/OFF compresses the
    // same mean rate into the ON fraction of each burst period.
    double rate = fc.ratePerSec;
    if (fc.arrival == Arrival::kOnOff && fc.onFraction > 0.0)
        rate /= fc.onFraction;
    double mean = static_cast<double>(sim::kSecond) / rate;
    double draw = fc.arrival == Arrival::kFixedRate
                      ? mean
                      : rng_.exponential(mean);
    return std::max<sim::Time>(1, static_cast<sim::Time>(draw));
}

void
WorkloadEngine::scheduleNextArrival(std::size_t c)
{
    events().schedule(drawInterarrival(spec_.classes[c]),
                      [this, c] { onArrival(c); });
}

void
WorkloadEngine::onArrival(std::size_t c)
{
    const FlowClass &fc = spec_.classes[c];
    bool off_phase = false;
    if (fc.arrival == Arrival::kOnOff && fc.burstPeriod > 0) {
        // Phase is a pure function of time: arrivals landing in the
        // OFF window are suppressed, which thins the boosted ON rate
        // back to the configured mean.
        sim::Time phase = now() % fc.burstPeriod;
        auto on_len = static_cast<sim::Time>(
            fc.onFraction * static_cast<double>(fc.burstPeriod));
        off_phase = phase >= on_len;
    }
    if (!off_phase)
        launch(c);
    scheduleNextArrival(c);
}

void
WorkloadEngine::launch(std::size_t c)
{
    switch (spec_.classes[c].kind) {
      case FlowKind::kRpc:
        issueRpc(c);
        break;
      case FlowKind::kBulkTcp:
        startBulkFlow(c);
        break;
      case FlowKind::kOpenLoopStream:
        sendStreamBurst(c);
        break;
    }
}

std::uint64_t
WorkloadEngine::drawSize(const FlowClass &fc)
{
    std::uint64_t lo = std::max<std::uint64_t>(1, fc.sizeBytes);
    std::uint64_t hi = std::max(lo, fc.sizeMaxBytes);
    switch (fc.sizeDist) {
      case SizeDist::kFixed:
        return lo;
      case SizeDist::kUniform:
        return lo + rng_.below(hi - lo + 1);
      case SizeDist::kBoundedPareto: {
        // Inverse-CDF of the bounded Pareto on [lo, hi].
        double a = fc.paretoAlpha;
        double u = rng_.uniform();
        double lr = std::pow(static_cast<double>(lo) /
                                 static_cast<double>(hi),
                             a);
        double x = static_cast<double>(lo) /
                   std::pow(1.0 - u * (1.0 - lr), 1.0 / a);
        return std::clamp(static_cast<std::uint64_t>(x), lo, hi);
      }
    }
    return lo;
}

MacAddr
WorkloadEngine::nextTarget(std::size_t c)
{
    const auto &t = spec_.targets;
    MacAddr dst = t[rr_[c] % t.size()];
    rr_[c] = (rr_[c] + 1) % t.size();
    return dst;
}

void
WorkloadEngine::issueRpc(std::size_t c)
{
    const FlowClass &fc = spec_.classes[c];
    // Requests ride in one wire frame; the response does the heavy
    // lifting (and is TSO-chunked by the guest's normal TX path).
    std::uint64_t req_bytes = std::min<std::uint64_t>(drawSize(fc), kMss);
    std::uint64_t id = nextRpcId_++;

    Outstanding o;
    o.classIdx = c;
    o.sentAt = now();
    o.expectedBytes =
        std::max<std::uint64_t>(1, std::min<std::uint64_t>(fc.rpcRespBytes,
                                                           kMaxTsoBytes));
    o.timeout =
        events().schedule(fc.rpcTimeout, [this, id] { onRpcTimeout(id); });
    outstanding_.emplace(id, o);

    Packet pkt;
    pkt.src = src_;
    pkt.dst = nextTarget(c);
    pkt.payloadBytes = static_cast<std::uint32_t>(req_bytes);
    pkt.id = nextPktId_++;
    pkt.flowId = id;
    pkt.created = now();
    pkt.rpcReq = true;
    pkt.rpcId = id;
    pkt.rpcRespBytes = fc.rpcRespBytes;
    nFlowsStarted_.inc();
    nRpcRequests_.inc();
    port_.send(std::move(pkt));
}

void
WorkloadEngine::onRpcResponse(const Packet &pkt)
{
    auto it = outstanding_.find(pkt.rpcId);
    if (it == outstanding_.end())
        return; // already timed out (late response) or not ours
    Outstanding &o = it->second;
    o.gotBytes += pkt.payloadBytes;
    if (o.gotBytes < o.expectedBytes)
        return;
    double us = sim::toMicroseconds(now() - o.sentAt);
    rpcLatency_.record(us);
    rpcLatencyHist_.record(static_cast<std::uint64_t>(us));
    events().cancel(o.timeout);
    std::size_t c = o.classIdx;
    outstanding_.erase(it);
    nRpcResponses_.inc();
    nFlowsCompleted_.inc();
    if (spec_.classes[c].arrival == Arrival::kClosedLoop)
        issueRpc(c);
}

void
WorkloadEngine::onRpcTimeout(std::uint64_t id)
{
    auto it = outstanding_.find(id);
    if (it == outstanding_.end())
        return;
    std::size_t c = it->second.classIdx;
    outstanding_.erase(it);
    nRpcTimeouts_.inc();
    if (spec_.classes[c].arrival == Arrival::kClosedLoop)
        issueRpc(c);
}

void
WorkloadEngine::startBulkFlow(std::size_t c)
{
    const FlowClass &fc = spec_.classes[c];
    std::uint64_t bytes = drawSize(fc);
    std::uint64_t flow = nextBulkFlow_++;
    tcp_->openSender(flow, nextTarget(c));
    bulkUnacked_[flow] = bytes;
    bulkClass_[flow] = c;
    std::uint64_t accepted = tcp_->offer(flow, bytes);
    if (accepted < bytes)
        bulkPending_[flow] = bytes - accepted;
    nFlowsStarted_.inc();
    tcp_->pump();
}

void
WorkloadEngine::onBufFreed(std::uint64_t flow, std::uint64_t bytes)
{
    auto un = bulkUnacked_.find(flow);
    if (un == bulkUnacked_.end())
        return; // not an engine flow (e.g. the peer's legacy sources)
    auto pend = bulkPending_.find(flow);
    if (pend != bulkPending_.end()) {
        std::uint64_t accepted = tcp_->offer(flow, pend->second);
        pend->second -= accepted;
        if (pend->second == 0)
            bulkPending_.erase(pend);
        tcp_->pump();
    }
    un->second -= std::min(un->second, bytes);
    if (un->second > 0 || bulkPending_.count(flow))
        return;
    std::size_t c = bulkClass_[flow];
    bulkUnacked_.erase(flow);
    bulkClass_.erase(flow);
    nFlowsCompleted_.inc();
    if (spec_.classes[c].arrival == Arrival::kClosedLoop)
        startBulkFlow(c);
}

void
WorkloadEngine::sendStreamBurst(std::size_t c)
{
    const FlowClass &fc = spec_.classes[c];
    std::uint64_t bytes = drawSize(fc);
    MacAddr dst = nextTarget(c);
    nFlowsStarted_.inc();
    while (bytes > 0) {
        auto chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(bytes, kMss));
        Packet pkt;
        pkt.src = src_;
        pkt.dst = dst;
        pkt.payloadBytes = chunk;
        pkt.id = nextPktId_++;
        pkt.created = now();
        port_.send(std::move(pkt));
        bytes -= chunk;
    }
    nFlowsCompleted_.inc();
}

} // namespace cdna::net::workload
