/**
 * @file
 * Declarative workload description: composable flow classes with
 * stochastic arrival processes and (heavy-tailed) size distributions.
 *
 * A WorkloadSpec is a value type in the fluent house style of
 * SystemConfig / ExperimentSpec.  One idempotent `applyWorkload(spec)`
 * call is TrafficPeer's single configuration entry point (the old
 * order-sensitive imperative setters are gone), and a spec describes
 * traffic those setters never could: Poisson / ON-OFF arrivals,
 * bounded-Pareto flow sizes, and closed-loop request/response RPC with
 * per-request latency tracking.
 *
 * Determinism contract (mirrors sim/fault_injector.hh): all workload
 * randomness is drawn from a dedicated RNG stream derived from
 * `workloadStreamSeed(spec.seed)` and the generating endpoint's MAC --
 * never from the shared context RNG -- so enabling, disabling, or
 * re-ordering workload classes cannot perturb any other subsystem's
 * random sequence, and a run's report is byte-identical across
 * `-j1` / `-jN` sweep execution.
 */

#ifndef CDNA_NET_WORKLOAD_WORKLOAD_SPEC_HH
#define CDNA_NET_WORKLOAD_WORKLOAD_SPEC_HH

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/packet.hh"
#include "net/transport/tcp.hh"
#include "sim/event_queue.hh"

namespace cdna::net::workload {

/**
 * Derive the dedicated workload RNG stream from the system seed.
 * Distinct from the context stream and from faultStreamSeed so that
 * workload draws never alias another subsystem's sequence.
 */
constexpr std::uint64_t
workloadStreamSeed(std::uint64_t system_seed)
{
    return system_seed ^ 0xF10CA5CADE5EED01ull;
}

/** Geometry of the fine-grained RPC latency histograms (microsecond
 *  samples; 2^-3 = 12.5% bucket resolution, range beyond 4M us). */
constexpr int kRpcHistBuckets = 160;
constexpr int kRpcHistSubBits = 3;

/** What a flow of this class does once started. */
enum class FlowKind : std::uint8_t {
    kOpenLoopStream, ///< raw frames, no feedback (legacy source)
    kBulkTcp,        ///< closed-loop bulk transfer over the transport
    kRpc,            ///< request out, response back, latency measured
};

/** When new flows (or requests) of this class start. */
enum class Arrival : std::uint8_t {
    kSaturate,   ///< back-to-back at line rate (legacy startSource)
    kFixedRate,  ///< deterministic 1/rate interarrival
    kPoisson,    ///< exponential interarrival at `ratePerSec`
    kOnOff,      ///< Poisson bursts: ON for onFraction of burstPeriod
    kClosedLoop, ///< `concurrency` always outstanding; next on completion
};

/** How a flow's size (or an RPC request's size) is drawn. */
enum class SizeDist : std::uint8_t {
    kFixed,         ///< always `sizeBytes`
    kUniform,       ///< uniform in [sizeBytes, sizeMaxBytes]
    kBoundedPareto, ///< heavy tail in [sizeBytes, sizeMaxBytes], `paretoAlpha`
};

/**
 * One class of traffic inside a WorkloadSpec.  Fluent setters return
 * *this so classes compose inline; static factories name the common
 * shapes.
 */
struct FlowClass
{
    FlowKind kind = FlowKind::kOpenLoopStream;
    Arrival arrival = Arrival::kSaturate;

    /** Mean arrival rate (flows or requests per second); <= 0 is inert
     *  for every arrival process except kSaturate / kClosedLoop. */
    double ratePerSec = 0.0;
    /** kOnOff: fraction of each burstPeriod spent ON. */
    double onFraction = 0.5;
    /** kOnOff: length of one ON+OFF cycle. */
    sim::Time burstPeriod = sim::milliseconds(10);

    SizeDist sizeDist = SizeDist::kFixed;
    /** Fixed size, or the lower bound of the distribution. */
    std::uint64_t sizeBytes = kMss;
    /** Upper bound for kUniform / kBoundedPareto. */
    std::uint64_t sizeMaxBytes = kMss;
    /** Bounded-Pareto shape (heavier tail as alpha -> 1). */
    double paretoAlpha = 1.3;

    /** kClosedLoop: requests/flows kept outstanding at all times. */
    std::uint32_t concurrency = 1;

    /** kRpc: response payload the server returns per request. */
    std::uint32_t rpcRespBytes = 8192;
    /** kRpc: a request unanswered for this long counts as timed out. */
    sim::Time rpcTimeout = sim::milliseconds(20);

    // ------------------------------------------------- fluent setters ----
    FlowClass &at(double rate)
    {
        arrival = Arrival::kFixedRate;
        ratePerSec = rate;
        return *this;
    }
    FlowClass &poissonAt(double rate)
    {
        arrival = Arrival::kPoisson;
        ratePerSec = rate;
        return *this;
    }
    FlowClass &burstyAt(double rate, double on_fraction,
                        sim::Time period)
    {
        arrival = Arrival::kOnOff;
        ratePerSec = rate;
        onFraction = on_fraction;
        burstPeriod = period;
        return *this;
    }
    FlowClass &closedLoop(std::uint32_t outstanding)
    {
        arrival = Arrival::kClosedLoop;
        concurrency = outstanding;
        return *this;
    }
    FlowClass &sized(std::uint64_t bytes)
    {
        sizeDist = SizeDist::kFixed;
        sizeBytes = bytes;
        sizeMaxBytes = bytes;
        return *this;
    }
    FlowClass &sizedUniform(std::uint64_t lo, std::uint64_t hi)
    {
        sizeDist = SizeDist::kUniform;
        sizeBytes = lo;
        sizeMaxBytes = hi;
        return *this;
    }
    FlowClass &sizedPareto(std::uint64_t lo, std::uint64_t hi,
                           double alpha)
    {
        sizeDist = SizeDist::kBoundedPareto;
        sizeBytes = lo;
        sizeMaxBytes = hi;
        paretoAlpha = alpha;
        return *this;
    }
    FlowClass &respondingWith(std::uint32_t bytes)
    {
        rpcRespBytes = bytes;
        return *this;
    }
    FlowClass &timingOutAfter(sim::Time t)
    {
        rpcTimeout = t;
        return *this;
    }

    // ----------------------------------------------- named factories ----
    /** The legacy line-rate open-loop source (receive experiments). */
    static FlowClass
    saturating(std::uint32_t payload = kMss)
    {
        FlowClass fc;
        fc.kind = FlowKind::kOpenLoopStream;
        fc.arrival = Arrival::kSaturate;
        fc.sized(payload);
        return fc;
    }
    /** Rate-driven open-loop stream (defaults to fixed-rate). */
    static FlowClass
    stream(std::uint64_t bytes, double rate)
    {
        FlowClass fc;
        fc.kind = FlowKind::kOpenLoopStream;
        fc.at(rate).sized(bytes);
        return fc;
    }
    /** Request/response RPC (defaults to Poisson arrivals). */
    static FlowClass
    rpc(std::uint64_t req_bytes, std::uint32_t resp_bytes)
    {
        FlowClass fc;
        fc.kind = FlowKind::kRpc;
        fc.arrival = Arrival::kPoisson;
        fc.sized(req_bytes);
        fc.rpcRespBytes = resp_bytes;
        return fc;
    }
    /** Bulk transfer over the TCP transport (requires overTcp()). */
    static FlowClass
    bulk(std::uint64_t bytes)
    {
        FlowClass fc;
        fc.kind = FlowKind::kBulkTcp;
        fc.arrival = Arrival::kPoisson;
        fc.sized(bytes);
        return fc;
    }
};

/**
 * The complete declarative description a TrafficPeer (or a System's
 * peers) accepts through applyWorkload().  Endpoint knobs are
 * std::optional: unset means "leave the endpoint's current setting
 * alone", so a spec carrying only flow classes composes with knobs
 * applied earlier (exactly how the legacy shims are built on top).
 */
struct WorkloadSpec
{
    std::vector<FlowClass> classes;

    std::optional<bool> macFilter;
    std::optional<std::uint32_t> ackEvery;
    std::optional<std::uint32_t> sourceWindow;
    std::optional<transport::TcpParams> tcp;

    /** Destinations, cycled round-robin per class.  When the spec is
     *  attached to a SystemConfig and left empty, System fills in the
     *  guest MACs of each NIC (matching the legacy receive flood). */
    std::vector<MacAddr> targets;

    /** Workload stream seed (System overrides with SystemConfig::seed). */
    std::uint64_t seed = 1;

    // ------------------------------------------------- fluent setters ----
    WorkloadSpec &
    withClass(FlowClass fc)
    {
        classes.push_back(fc);
        return *this;
    }
    WorkloadSpec &
    filteringMac(bool on = true)
    {
        macFilter = on;
        return *this;
    }
    WorkloadSpec &
    ackingEvery(std::uint32_t every)
    {
        ackEvery = every;
        return *this;
    }
    WorkloadSpec &
    windowed(std::uint32_t frames)
    {
        sourceWindow = frames;
        return *this;
    }
    WorkloadSpec &
    overTcp(const transport::TcpParams &params)
    {
        tcp = params;
        return *this;
    }
    WorkloadSpec &
    toward(std::vector<MacAddr> dsts)
    {
        targets = std::move(dsts);
        return *this;
    }
    WorkloadSpec &
    seeded(std::uint64_t s)
    {
        seed = s;
        return *this;
    }

    /** No flow classes: System falls back to the legacy source path. */
    bool empty() const { return classes.empty(); }

    bool
    hasRpc() const
    {
        for (const auto &fc : classes)
            if (fc.kind == FlowKind::kRpc)
                return true;
        return false;
    }

    /** True when any class needs the WorkloadEngine (anything beyond
     *  the legacy saturating open-loop source). */
    bool
    needsEngine() const
    {
        for (const auto &fc : classes)
            if (fc.kind != FlowKind::kOpenLoopStream ||
                fc.arrival != Arrival::kSaturate)
                return true;
        return false;
    }
};

} // namespace cdna::net::workload

#endif // CDNA_NET_WORKLOAD_WORKLOAD_SPEC_HH
