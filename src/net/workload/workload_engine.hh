/**
 * @file
 * Deterministic workload generator driving a fabric port.
 *
 * The engine owns the stochastic side of a WorkloadSpec: it draws flow
 * arrivals and sizes from the dedicated workload RNG stream
 * (workloadStreamSeed(seed) ^ srcMac.hash(), so co-located engines on
 * one SimContext have independent sequences), starts flows of each
 * class on its TrafficPeer's port or TCP endpoint, and measures
 * request/response RPC latency from request enqueue to the last
 * response byte delivered back at the peer.
 *
 * RPC datapath: the engine emits a request frame (Packet::rpcReq) to a
 * guest MAC; the guest's os::NetStack batches it through the normal
 * RX-cost path and hands it to the rpc-serving TrafficApp, which pays
 * user-time and transmits Packet::rpcResp frames of the requested size
 * back through the guest TX path; TrafficPeer routes responses here.
 * Timeouts are armed per request on the event queue and cancelled on
 * completion.
 */

#ifndef CDNA_NET_WORKLOAD_WORKLOAD_ENGINE_HH
#define CDNA_NET_WORKLOAD_WORKLOAD_ENGINE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/fabric.hh"
#include "net/packet.hh"
#include "net/transport/tcp.hh"
#include "net/workload/workload_spec.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"

namespace cdna::net::workload {

class WorkloadEngine : public sim::SimObject
{
  public:
    /**
     * @param ctx   simulation context
     * @param name  component name (peer name + ".wl")
     * @param port  fabric port frames are sourced on
     * @param src   MAC the engine sources from (the peer's)
     * @param tcp   the peer's transport endpoint, or null (required
     *              only by kBulkTcp classes)
     * @param spec  the workload to run (engine classes only)
     */
    WorkloadEngine(sim::SimContext &ctx, std::string name, Port &port,
                   MacAddr src, transport::TcpEndpoint *tcp,
                   WorkloadSpec spec);

    /** Arm every class's arrival process (idempotent). */
    void start();

    /** A response frame for one of our requests arrived at the peer. */
    void onRpcResponse(const Packet &pkt);

    const WorkloadSpec &spec() const { return spec_; }

    // ------------------------------------------------------ counters ----
    std::uint64_t flowsStarted() const { return nFlowsStarted_.value(); }
    std::uint64_t flowsCompleted() const { return nFlowsCompleted_.value(); }
    std::uint64_t rpcRequests() const { return nRpcRequests_.value(); }
    std::uint64_t rpcResponses() const { return nRpcResponses_.value(); }
    std::uint64_t rpcTimeouts() const { return nRpcTimeouts_.value(); }

    /** Per-request latency (microseconds, request enqueue to last
     *  response byte back at the peer). */
    const sim::SampleStats &rpcLatency() const { return rpcLatency_; }
    const sim::Histogram &rpcLatencyHist() const { return rpcLatencyHist_; }

    /** Mean offered arrival rate summed over rate-driven classes
     *  (requests+flows per second; closed-loop classes excluded). */
    double offeredRatePerSec() const;

  private:
    /** One request in flight, keyed by rpcId. */
    struct Outstanding
    {
        std::size_t classIdx = 0;
        sim::Time sentAt = 0;
        std::uint64_t expectedBytes = 0;
        std::uint64_t gotBytes = 0;
        sim::EventId timeout = sim::kInvalidEvent;
    };

    void scheduleNextArrival(std::size_t c);
    void onArrival(std::size_t c);
    void launch(std::size_t c);
    void issueRpc(std::size_t c);
    void startBulkFlow(std::size_t c);
    void sendStreamBurst(std::size_t c);
    void onRpcTimeout(std::uint64_t id);
    void onBufFreed(std::uint64_t flow_id, std::uint64_t bytes);

    std::uint64_t drawSize(const FlowClass &fc);
    sim::Time drawInterarrival(const FlowClass &fc);
    MacAddr nextTarget(std::size_t c);

    Port &port_;
    MacAddr src_;
    transport::TcpEndpoint *tcp_;
    WorkloadSpec spec_;
    sim::Rng rng_;
    bool started_ = false;

    /** Per-class round-robin cursor over spec_.targets. */
    std::vector<std::size_t> rr_;

    std::map<std::uint64_t, Outstanding> outstanding_;
    /** Bulk TCP flows: bytes not yet cumulatively ACKed / not yet
     *  accepted by the send buffer, plus the owning class. */
    std::map<std::uint64_t, std::uint64_t> bulkUnacked_;
    std::map<std::uint64_t, std::uint64_t> bulkPending_;
    std::map<std::uint64_t, std::size_t> bulkClass_;

    std::uint64_t nextRpcId_ = 1;
    std::uint64_t nextBulkFlow_;
    std::uint64_t nextPktId_;

    sim::SampleStats rpcLatency_;
    sim::Histogram rpcLatencyHist_;

    sim::Counter &nFlowsStarted_;
    sim::Counter &nFlowsCompleted_;
    sim::Counter &nRpcRequests_;
    sim::Counter &nRpcResponses_;
    sim::Counter &nRpcTimeouts_;
};

} // namespace cdna::net::workload

#endif // CDNA_NET_WORKLOAD_WORKLOAD_ENGINE_HH
