/**
 * @file
 * Ideal remote host terminating one Ethernet link.
 *
 * The paper's experiments used a tuned Opteron running native Linux that
 * "could easily saturate two NICs both transmitting and receiving so
 * that it would never be the bottleneck".  TrafficPeer is the faithful
 * model of that role: an infinitely fast sink for transmit experiments
 * and a line-rate source (round-robin across the guests' MAC addresses)
 * for receive experiments.
 */

#ifndef CDNA_NET_TRAFFIC_PEER_HH
#define CDNA_NET_TRAFFIC_PEER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/fabric.hh"
#include "net/flow_stats.hh"
#include "net/packet.hh"
#include "net/transport/tcp.hh"
#include "net/workload/workload_spec.hh"
#include "sim/sim_object.hh"

namespace cdna::net {

namespace workload {
class WorkloadEngine;
} // namespace workload

class TrafficPeer : public sim::SimObject, public LinkEndpoint
{
  public:
    /**
     * @param ctx     simulation context
     * @param name    component name
     * @param fabric  the fabric this peer binds a port on
     */
    TrafficPeer(sim::SimContext &ctx, std::string name, Fabric &fabric);
    ~TrafficPeer() override;

    /**
     * Configure this endpoint from one declarative WorkloadSpec: knob
     * optionals that are set are applied (unset ones leave the current
     * setting alone), a saturating open-loop class starts the classic
     * line-rate source, and every other class is handed to a
     * WorkloadEngine bound to this peer's port and transport.  This is
     * the single configuration entry point; it has no call-order
     * constraints.
     */
    void applyWorkload(const workload::WorkloadSpec &spec);

    /** The workload engine, or null when no engine class was applied. */
    workload::WorkloadEngine *engine() { return engine_.get(); }
    const workload::WorkloadEngine *engine() const { return engine_.get(); }

    /** Snapshot every per-flow measurement in one value (the scattered
     *  accessors below remain as views over the same sources). */
    FlowStats flowStats() const;

    /** MAC address the peer sources traffic from. */
    MacAddr mac() const { return mac_; }

    /** The fabric port this peer is bound to. */
    Port &port() { return *port_; }
    const Port &port() const { return *port_; }

    /**
     * Accept only frames addressed to this peer's MAC (plus unaddressed
     * test frames).  Off by default -- on a point-to-point link every
     * frame is for the peer -- but required on a switch, where learning
     * floods unknown-unicast frames to every port.
     *
     * Legacy shim over applyWorkload(spec.filteringMac(on)).
     */
    void
    setMacFilter(bool on)
    {
        applyWorkload(workload::WorkloadSpec{}.filteringMac(on));
    }

    /** Frames discarded by the MAC filter. */
    std::uint64_t rxFiltered() const { return nRxFiltered_.value(); }

    /** Stop sourcing (pending frame still completes). */
    void stopSource();

    /** The transport endpoint, or null in open-loop mode. */
    transport::TcpEndpoint *tcp() { return tcp_.get(); }

    /** Frames dropped by the modeled checksum check. */
    std::uint64_t rxDropsBadCsum() const { return nRxBadCsum_.value(); }

    /** Frames and payload bytes absorbed by the sink side. */
    std::uint64_t framesReceived() const { return nRxFrames_.value(); }
    std::uint64_t payloadReceived() const { return nRxPayload_.value(); }

    /**
     * Goodput basis: in-order bytes delivered past the transport under
     * TCP (retransmitted duplicates excluded); identical to
     * payloadReceived() in open-loop mode.
     */
    std::uint64_t
    payloadDelivered() const
    {
        return tcp_ ? tcp_->deliveredBytes() : nRxPayload_.value();
    }

    /** End-to-end latency of received data frames (stack entry to peer
     *  delivery), in microseconds. */
    const sim::SampleStats &latency() const { return latency_; }
    /** Latency histogram (microsecond buckets) for quantiles. */
    const sim::Histogram &latencyHist() const { return latencyHist_; }

    /** Per-source-MAC payload received (fairness checks in tests). */
    const std::map<MacAddr, std::uint64_t> &receivedBySrc() const
    {
        return rxBySrc_;
    }

    /** Frames sourced onto the wire. */
    std::uint64_t framesSent() const { return nTxFrames_.value(); }

    void receiveFrame(Packet pkt) override;

  private:
    void sendNext();
    void enableTcpImpl(const transport::TcpParams &params);
    void startSourceImpl(std::vector<MacAddr> dsts, std::uint32_t payload);

    Port *port_ = nullptr;
    MacAddr mac_;
    bool macFilter_ = false;
    std::vector<MacAddr> dsts_;
    std::uint32_t payload_ = kMss;
    std::size_t rrIndex_ = 0;
    bool sourcing_ = false;
    bool sendInProgress_ = false;
    std::uint64_t nextPktId_ = 1;
    std::uint32_t ackEvery_ = 0;
    std::uint32_t windowFrames_ = 128;
    sim::EventId retryTimer_ = sim::kInvalidEvent;
    sim::Time retryDelay_ = sim::microseconds(500);
    std::map<MacAddr, std::uint64_t> rxBySrc_;
    std::map<MacAddr, std::uint64_t> ackDebt_;
    std::map<MacAddr, std::uint64_t> srcSent_;
    std::map<MacAddr, std::uint64_t> srcAcked_;
    sim::SampleStats latency_;
    sim::Histogram latencyHist_;

    std::unique_ptr<transport::TcpEndpoint> tcp_;
    std::unique_ptr<workload::WorkloadEngine> engine_;

    sim::Counter &nRxFrames_;
    sim::Counter &nRxPayload_;
    sim::Counter &nTxFrames_;
    sim::Counter &nRxDups_;
    sim::Counter &nRxBadCsum_;
    sim::Counter &nRxFiltered_;
};

} // namespace cdna::net

#endif // CDNA_NET_TRAFFIC_PEER_HH
