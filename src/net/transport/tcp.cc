#include "net/transport/tcp.hh"

#include <algorithm>

#include "sim/assert.hh"

namespace cdna::net::transport {

// ---------------------------------------------------------------------------
// TcpSenderFlow
// ---------------------------------------------------------------------------

TcpSenderFlow::TcpSenderFlow(sim::SimContext &ctx, const TcpParams &params,
                             std::function<void()> on_ready)
    : ctx_(ctx),
      p_(params),
      onReady_(std::move(on_ready)),
      cwnd_(static_cast<std::uint64_t>(p_.initialCwndSegs) *
            p_.segmentBytes),
      ssthresh_(UINT64_C(1) << 62),
      rto_(p_.minRto)
{
    SIM_ASSERT(p_.segmentBytes > 0, "zero segment size");
}

TcpSenderFlow::~TcpSenderFlow()
{
    cancelRto();
}

std::uint64_t
TcpSenderFlow::offer(std::uint64_t bytes)
{
    if (unlimited_)
        return bytes;
    std::uint64_t used = availEnd_ - sndUna_;
    std::uint64_t room = p_.windowBytes > used ? p_.windowBytes - used : 0;
    std::uint64_t accepted = std::min(bytes, room);
    availEnd_ += accepted;
    return accepted;
}

void
TcpSenderFlow::setUnlimited()
{
    unlimited_ = true;
    availEnd_ = UINT64_C(1) << 62;
}

std::optional<TcpSenderFlow::Segment>
TcpSenderFlow::peekSegment() const
{
    if (fastRtxPending_ && sndNxt_ > sndUna_) {
        auto len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            p_.segmentBytes, sndNxt_ - sndUna_));
        return Segment{sndUna_, len, true};
    }
    // The receive window is fixed at windowBytes (the peer's buffer);
    // the effective window is its minimum with cwnd.
    std::uint64_t wnd = std::min(cwnd_, p_.windowBytes);
    std::uint64_t limit = std::min(sndUna_ + wnd, availEnd_);
    if (sndNxt_ >= limit)
        return std::nullopt;
    auto len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(p_.segmentBytes, limit - sndNxt_));
    return Segment{sndNxt_, len, sndNxt_ < sndMax_};
}

void
TcpSenderFlow::commitSegment(const Segment &s)
{
    ++segsSent;
    if (s.rtx) {
        ++retransSegs;
        timingActive_ = false; // Karn: never sample a retransmission
    } else if (!timingActive_) {
        timingActive_ = true;
        rttSeq_ = s.seq + s.len;
        rttStart_ = ctx_.now();
    }
    if (fastRtxPending_ && s.rtx && s.seq == sndUna_)
        fastRtxPending_ = false;
    if (s.seq == sndNxt_) {
        sndNxt_ += s.len;
        sndMax_ = std::max(sndMax_, sndNxt_);
    }
    armRto();
}

void
TcpSenderFlow::onAck(std::uint64_t ack_no)
{
    std::uint64_t ack = std::min(ack_no, sndMax_);
    if (ack > sndUna_) {
        std::uint64_t newly = ack - sndUna_;
        sndUna_ = ack;
        if (sndNxt_ < sndUna_)
            sndNxt_ = sndUna_;
        if (!unlimited_)
            freedBytes_ += newly;
        if (timingActive_ && ack >= rttSeq_) {
            sampleRtt(ctx_.now() - rttStart_);
            timingActive_ = false;
        }
        if (inFlight() > 0)
            restartRto();
        else
            cancelRto();
        if (inRecovery_) {
            if (ack >= recover_) {
                // Full recovery: deflate to ssthresh and resume CA.
                inRecovery_ = false;
                fastRtxPending_ = false;
                cwnd_ = ssthresh_;
                dupAcks_ = 0;
            } else {
                // NewReno partial ACK: the next hole is lost too --
                // retransmit it and deflate by the data acknowledged.
                cwnd_ = (cwnd_ > newly ? cwnd_ - newly : p_.segmentBytes) +
                        p_.segmentBytes;
                fastRtxPending_ = true;
            }
        } else {
            dupAcks_ = 0;
            if (cwnd_ < ssthresh_)
                cwnd_ += std::min<std::uint64_t>(newly, p_.segmentBytes);
            else
                cwnd_ += std::max<std::uint64_t>(
                    1, static_cast<std::uint64_t>(p_.segmentBytes) *
                           p_.segmentBytes / cwnd_);
        }
    } else if (sndNxt_ > sndUna_) {
        ++dupAcksRx;
        if (inRecovery_) {
            cwnd_ += p_.segmentBytes; // window inflation
        } else if (++dupAcks_ == p_.dupAckThreshold) {
            inRecovery_ = true;
            recover_ = sndMax_;
            ssthresh_ = std::max<std::uint64_t>(
                inFlight() / 2, 2 * std::uint64_t{p_.segmentBytes});
            cwnd_ = ssthresh_ + 3 * std::uint64_t{p_.segmentBytes};
            fastRtxPending_ = true;
            ++fastRetransmits;
            timingActive_ = false;
            if (onEvent_)
                onEvent_("fast_rtx");
        }
    }
    if (onReady_)
        onReady_();
}

std::uint64_t
TcpSenderFlow::takeFreed()
{
    return std::exchange(freedBytes_, 0);
}

void
TcpSenderFlow::sampleRtt(sim::Time r)
{
    if (srtt_ == 0) {
        srtt_ = r;
        rttvar_ = r / 2;
    } else {
        sim::Time diff = srtt_ > r ? srtt_ - r : r - srtt_;
        rttvar_ = (3 * rttvar_ + diff) / 4;
        srtt_ = (7 * srtt_ + r) / 8;
    }
    rto_ = std::clamp(srtt_ + 4 * rttvar_, p_.minRto, p_.maxRto);
}

void
TcpSenderFlow::armRto()
{
    if (rtoTimer_ != sim::kInvalidEvent)
        return;
    rtoTimer_ = ctx_.events().schedule(rto_, [this] { onRtoFire(); });
}

void
TcpSenderFlow::restartRto()
{
    cancelRto();
    armRto();
}

void
TcpSenderFlow::cancelRto()
{
    if (rtoTimer_ != sim::kInvalidEvent) {
        ctx_.events().cancel(rtoTimer_);
        rtoTimer_ = sim::kInvalidEvent;
    }
}

void
TcpSenderFlow::onRtoFire()
{
    rtoTimer_ = sim::kInvalidEvent;
    if (inFlight() == 0)
        return;
    ++rtoEvents;
    ssthresh_ = std::max<std::uint64_t>(
        inFlight() / 2, 2 * std::uint64_t{p_.segmentBytes});
    cwnd_ = p_.segmentBytes;
    sndNxt_ = sndUna_; // go-back-N
    inRecovery_ = false;
    dupAcks_ = 0;
    fastRtxPending_ = false;
    timingActive_ = false;
    // Exponential backoff, held until the next valid RTT sample.
    rto_ = std::min(rto_ * 2, p_.maxRto);
    armRto();
    if (onEvent_)
        onEvent_("rto");
    if (onReady_)
        onReady_();
}

// ---------------------------------------------------------------------------
// TcpReceiverFlow
// ---------------------------------------------------------------------------

TcpReceiverFlow::TcpReceiverFlow(
    sim::SimContext &ctx, const TcpParams &params,
    std::function<void(std::uint64_t)> send_ack)
    : ctx_(ctx), p_(params), sendAck_(std::move(send_ack))
{
}

TcpReceiverFlow::~TcpReceiverFlow()
{
    if (delAckTimer_ != sim::kInvalidEvent)
        ctx_.events().cancel(delAckTimer_);
}

std::uint64_t
TcpReceiverFlow::onSegment(std::uint64_t seq, std::uint32_t len)
{
    if (seq + len <= rcvNxt_) {
        // Entirely old data (network duplicate or spurious retransmit):
        // re-ACK immediately so the sender sees progress.
        ++oldSegs;
        ackNow();
        return 0;
    }
    if (seq > rcvNxt_) {
        // Hole: buffer the segment and send an immediate duplicate ACK.
        ++oooSegs;
        auto it = ooo_.emplace(seq, seq + len).first;
        if (it->second < seq + len)
            it->second = seq + len;
        // Merge with neighbours.
        while (true) {
            auto next = std::next(it);
            if (next == ooo_.end() || next->first > it->second)
                break;
            it->second = std::max(it->second, next->second);
            ooo_.erase(next);
        }
        if (it != ooo_.begin()) {
            auto prev = std::prev(it);
            if (prev->second >= it->first) {
                prev->second = std::max(prev->second, it->second);
                ooo_.erase(it);
            }
        }
        ackNow();
        return 0;
    }

    // In-order (possibly overlapping already-received data).
    std::uint64_t before = rcvNxt_;
    rcvNxt_ = seq + len;
    while (!ooo_.empty()) {
        auto it = ooo_.begin();
        if (it->first > rcvNxt_)
            break;
        rcvNxt_ = std::max(rcvNxt_, it->second);
        ooo_.erase(it);
    }
    std::uint64_t delivered = rcvNxt_ - before;

    if (++pendingSegs_ >= p_.ackEverySegs)
        ackNow();
    else
        scheduleDelayedAck();
    return delivered;
}

void
TcpReceiverFlow::ackNow()
{
    if (delAckTimer_ != sim::kInvalidEvent) {
        ctx_.events().cancel(delAckTimer_);
        delAckTimer_ = sim::kInvalidEvent;
    }
    pendingSegs_ = 0;
    ++acksSent;
    sendAck_(rcvNxt_);
}

void
TcpReceiverFlow::scheduleDelayedAck()
{
    if (delAckTimer_ != sim::kInvalidEvent)
        return;
    delAckTimer_ = ctx_.events().schedule(p_.delayedAckTimeout, [this] {
        delAckTimer_ = sim::kInvalidEvent;
        if (pendingSegs_ > 0) {
            pendingSegs_ = 0;
            ++acksSent;
            sendAck_(rcvNxt_);
        }
    });
}

void
TcpReceiverFlow::cancelTimers()
{
    if (delAckTimer_ != sim::kInvalidEvent) {
        ctx_.events().cancel(delAckTimer_);
        delAckTimer_ = sim::kInvalidEvent;
    }
    pendingSegs_ = 0;
}

// ---------------------------------------------------------------------------
// TcpEndpoint
// ---------------------------------------------------------------------------

TcpEndpoint::TcpEndpoint(sim::SimContext &ctx, std::string name,
                         TcpParams params)
    : sim::SimObject(ctx, std::move(name)),
      p_(params),
      nDelivered_(stats().addCounter("delivered_bytes")),
      nAcksRx_(stats().addCounter("acks_received")),
      nSegs_(stats().addCounter("segs_sent")),
      nRetrans_(stats().addCounter("segs_retransmitted")),
      nFastRtx_(stats().addCounter("fast_retransmits")),
      nRto_(stats().addCounter("rto_events")),
      nDupAcks_(stats().addCounter("dup_acks_received")),
      nAcksTx_(stats().addCounter("acks_sent"))
{
}

void
TcpEndpoint::openSender(std::uint64_t flow_id, MacAddr dst, bool unlimited)
{
    auto [it, fresh] = senders_.try_emplace(flow_id);
    if (!fresh)
        return;
    it->second.dst = dst;
    it->second.flow = std::make_unique<TcpSenderFlow>(
        ctx(), p_, [this] { pump(); });
    if (unlimited)
        it->second.flow->setUnlimited();
    it->second.flow->setEventHook([this, flow_id](const char *what) {
        CDNA_TRACE_INSTANT_ARG(ctx().tracer(), traceLane(), what, now(),
                               "flow", flow_id);
    });
}

std::uint64_t
TcpEndpoint::offer(std::uint64_t flow_id, std::uint64_t bytes)
{
    auto it = senders_.find(flow_id);
    SIM_ASSERT(it != senders_.end(), "offer to unopened tcp flow");
    std::uint64_t accepted = it->second.flow->offer(bytes);
    pump();
    return accepted;
}

void
TcpEndpoint::shutdown()
{
    if (shutdown_)
        return;
    shutdown_ = true;
    for (auto &[id, s] : senders_)
        s.flow->cancelTimers();
    for (auto &[key, rf] : receivers_)
        rf->cancelTimers();
    pendingAcks_.clear();
}

std::uint64_t
TcpEndpoint::sndUnaTotal() const
{
    std::uint64_t n = 0;
    for (const auto &[id, s] : senders_)
        n += s.flow->sndUna();
    return n;
}

std::uint64_t
TcpEndpoint::armedTimers() const
{
    std::uint64_t n = 0;
    for (const auto &[id, s] : senders_)
        n += s.flow->rtoArmed() ? 1 : 0;
    for (const auto &[key, rf] : receivers_)
        n += rf->delAckArmed() ? 1 : 0;
    return n;
}

void
TcpEndpoint::onPacket(const Packet &pkt)
{
    if (shutdown_)
        return;
    if (pkt.tcpAck) {
        nAcksRx_.inc();
        auto it = senders_.find(pkt.flowId);
        if (it != senders_.end())
            it->second.flow->onAck(pkt.ackNo); // on-ready pumps
        return;
    }
    if (!pkt.tcpData)
        return;
    auto key = std::make_pair(pkt.src, pkt.flowId);
    auto &rf = receivers_[key];
    if (!rf) {
        rf = std::make_unique<TcpReceiverFlow>(
            ctx(), p_,
            [this, src = pkt.src, fid = pkt.flowId](std::uint64_t ack_no) {
                AckOut ao{src, fid, ack_no};
                if (!ackTx_ || !ackTx_(ao))
                    pendingAcks_.push_back(ao);
            });
    }
    std::uint64_t delivered = rf->onSegment(pkt.seq, pkt.payloadBytes);
    if (delivered > 0) {
        nDelivered_.inc(delivered);
        CDNA_TRACE_INSTANT_ARG(ctx().tracer(), traceLane(), "deliver",
                               now(), "bytes", delivered);
        if (deliver_)
            deliver_(pkt, delivered);
    }
    syncStatCounters();
}

void
TcpEndpoint::pump()
{
    if (pumping_ || shutdown_)
        return;
    pumping_ = true;
    while (!pendingAcks_.empty() && ackTx_ && ackTx_(pendingAcks_.front()))
        pendingAcks_.pop_front();
    bool progress = segmentTx_ != nullptr;
    bool blocked = false;
    while (progress && !blocked) {
        progress = false;
        for (auto &[id, s] : senders_) {
            auto seg = s.flow->peekSegment();
            if (!seg)
                continue;
            SegmentOut so{s.dst, id, seg->seq, seg->len, seg->rtx};
            if (!segmentTx_(so)) {
                blocked = true; // owner backpressure: retry on next pump
                break;
            }
            s.flow->commitSegment(*seg);
            progress = true;
        }
    }
    syncStatCounters();
    CDNA_TRACE_COUNTER(ctx().tracer(), traceLane(), "cwnd_bytes", now(),
                       cwndBytes());
    pumping_ = false;

    if (bufFreed_ && !notifying_) {
        notifying_ = true;
        for (auto &[id, s] : senders_)
            if (std::uint64_t freed = s.flow->takeFreed())
                bufFreed_(id, freed);
        notifying_ = false;
    }
}

TcpSenderFlow *
TcpEndpoint::senderFlow(std::uint64_t flow_id)
{
    auto it = senders_.find(flow_id);
    return it == senders_.end() ? nullptr : it->second.flow.get();
}

std::uint64_t
TcpEndpoint::segsSent() const
{
    std::uint64_t n = 0;
    for (const auto &[id, s] : senders_)
        n += s.flow->segsSent;
    return n;
}

std::uint64_t
TcpEndpoint::retransSegs() const
{
    std::uint64_t n = 0;
    for (const auto &[id, s] : senders_)
        n += s.flow->retransSegs;
    return n;
}

std::uint64_t
TcpEndpoint::fastRetransmits() const
{
    std::uint64_t n = 0;
    for (const auto &[id, s] : senders_)
        n += s.flow->fastRetransmits;
    return n;
}

std::uint64_t
TcpEndpoint::rtoEvents() const
{
    std::uint64_t n = 0;
    for (const auto &[id, s] : senders_)
        n += s.flow->rtoEvents;
    return n;
}

std::uint64_t
TcpEndpoint::dupAcksRx() const
{
    std::uint64_t n = 0;
    for (const auto &[id, s] : senders_)
        n += s.flow->dupAcksRx;
    return n;
}

std::uint64_t
TcpEndpoint::acksSent() const
{
    std::uint64_t n = 0;
    for (const auto &[key, r] : receivers_)
        n += r->acksSent;
    return n;
}

double
TcpEndpoint::cwndBytes() const
{
    double sum = 0.0;
    for (const auto &[id, s] : senders_)
        sum += static_cast<double>(s.flow->cwnd());
    return sum;
}

void
TcpEndpoint::syncStatCounters()
{
    // Per-flow event counts are plain members (flows are unit-testable
    // without a StatGroup); top the endpoint's monotonic counters up to
    // the aggregate sums so stat dumps stay truthful.
    auto top_up = [](sim::Counter &c, std::uint64_t total) {
        if (total > c.value())
            c.inc(total - c.value());
    };
    top_up(nSegs_, segsSent());
    top_up(nRetrans_, retransSegs());
    top_up(nFastRtx_, fastRetransmits());
    top_up(nRto_, rtoEvents());
    top_up(nDupAcks_, dupAcksRx());
    top_up(nAcksTx_, acksSent());
}

} // namespace cdna::net::transport
