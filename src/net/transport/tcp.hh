/**
 * @file
 * Deterministic per-flow TCP-like (Reno) transport.
 *
 * The paper's evaluation (section 5.1) runs TCP streams; the open-loop
 * traffic model cannot show loss recovery, so this subsystem closes the
 * loop: sequence/ACK numbers ride in net::Packet, the send window is
 * bounded by cwnd x rwnd, slow start and congestion avoidance grow
 * cwnd, three duplicate ACKs trigger fast retransmit, and an RTO timer
 * derived from SRTT/RTTVAR (RFC 6298 style, with exponential backoff
 * and Karn's rule) recovers tail loss with go-back-N.  Receivers run
 * a delayed-ACK policy and a modeled checksum check, so corrupted
 * frames are dropped at the receiver and force retransmission.
 *
 * Everything is integer/sim::Time arithmetic driven by the event
 * queue -- no wall clock, no RNG -- so runs are bit-reproducible.
 *
 * Deliberate deviations from a real stack (see DESIGN.md): no SACK, no
 * CUBIC, no window scaling or handshake/teardown, and the minimum RTO
 * is milliseconds rather than the real-world 200 ms floor, because
 * simulated RTTs are tens of microseconds inside sub-second windows.
 */

#ifndef CDNA_NET_TRANSPORT_TCP_HH
#define CDNA_NET_TRANSPORT_TCP_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "net/packet.hh"
#include "sim/sim_object.hh"

namespace cdna::net::transport {

/** Transport model selection (SystemConfig::transport()). */
enum class TransportKind
{
    kOpenLoop, //!< line-rate peers, frame-counting ACKs (the default)
    kTcp,      //!< closed-loop Reno endpoints on both sides
};

/** Tunables shared by every flow of an endpoint. */
struct TcpParams
{
    /** Data bytes per segment (one net::Packet per segment). */
    std::uint32_t segmentBytes = kMss;
    /** Per-flow send buffer; doubles as the advertised receive window. */
    std::uint64_t windowBytes = 256 * 1024;
    /** Initial congestion window, in segments (RFC 6928 IW10). */
    std::uint32_t initialCwndSegs = 10;
    /** Duplicate ACKs that trigger fast retransmit. */
    std::uint32_t dupAckThreshold = 3;
    /** Delayed-ACK frequency: one ACK per this many segments. */
    std::uint32_t ackEverySegs = 2;
    /** Delayed-ACK flush timeout. */
    sim::Time delayedAckTimeout = sim::microseconds(500);
    /**
     * RTO clamp.  Simulated LAN RTTs are ~100 us, so the floor is a few
     * milliseconds instead of the host-stack 200 ms; the ceiling keeps a
     * dead receiver probed a few times per measurement window.
     */
    sim::Time minRto = sim::milliseconds(3);
    sim::Time maxRto = sim::milliseconds(64);
};

/**
 * Sender half of one flow: Reno congestion control over an abstract
 * byte stream.  The owner pulls segments (peek/commit) so it can apply
 * its own backpressure (device ring full, link busy) without the flow
 * ever needing to "unsend"; ACK arrival, window opening, and RTO expiry
 * poke the owner through the on-ready callback.
 */
class TcpSenderFlow
{
  public:
    struct Segment
    {
        std::uint64_t seq;
        std::uint32_t len;
        bool rtx; //!< retransmission (never RTT-sampled; Karn's rule)
    };

    TcpSenderFlow(sim::SimContext &ctx, const TcpParams &params,
                  std::function<void()> on_ready);
    ~TcpSenderFlow();

    TcpSenderFlow(const TcpSenderFlow &) = delete;
    TcpSenderFlow &operator=(const TcpSenderFlow &) = delete;

    /**
     * Enqueue application data; returns the bytes accepted (bounded by
     * the free send-buffer space).
     */
    std::uint64_t offer(std::uint64_t bytes);

    /** Infinite data source (the peer side of receive experiments). */
    void setUnlimited();

    /** Next transmittable segment, if the windows allow one. */
    std::optional<Segment> peekSegment() const;
    /** The owner transmitted @p s: advance state, arm timers. */
    void commitSegment(const Segment &s);

    /** Cumulative ACK arrived. */
    void onAck(std::uint64_t ack_no);

    /** Send-buffer bytes freed by ACKs since the last call. */
    std::uint64_t takeFreed();

    std::uint64_t cwnd() const { return cwnd_; }
    std::uint64_t ssthresh() const { return ssthresh_; }
    std::uint64_t sndUna() const { return sndUna_; }
    std::uint64_t sndNxt() const { return sndNxt_; }
    std::uint64_t inFlight() const { return sndNxt_ - sndUna_; }
    bool inRecovery() const { return inRecovery_; }
    sim::Time rto() const { return rto_; }
    sim::Time srtt() const { return srtt_; }

    // Event counts, aggregated by the owning endpoint.
    std::uint64_t segsSent = 0;
    std::uint64_t retransSegs = 0;
    std::uint64_t fastRetransmits = 0;
    std::uint64_t rtoEvents = 0;
    std::uint64_t dupAcksRx = 0;

    /** Optional notification of recovery events ("fast_rtx", "rto"). */
    void setEventHook(std::function<void(const char *)> fn)
    {
        onEvent_ = std::move(fn);
    }

    /**
     * Domain teardown: cancel the RTO timer so no event fires into a
     * dead owner.  The flow object stays around (counters remain
     * readable) but must not be pumped afterwards.
     */
    void cancelTimers() { cancelRto(); }
    bool rtoArmed() const { return rtoTimer_ != sim::kInvalidEvent; }

  private:
    void armRto();
    void restartRto();
    void cancelRto();
    void onRtoFire();
    void sampleRtt(sim::Time r);

    sim::SimContext &ctx_;
    TcpParams p_;
    std::function<void()> onReady_;
    std::function<void(const char *)> onEvent_;

    std::uint64_t sndUna_ = 0;  //!< oldest unacknowledged byte
    std::uint64_t sndNxt_ = 0;  //!< next byte to send
    std::uint64_t sndMax_ = 0;  //!< highest byte ever sent
    std::uint64_t availEnd_ = 0; //!< end of application-supplied data
    bool unlimited_ = false;

    std::uint64_t cwnd_;
    std::uint64_t ssthresh_;
    std::uint32_t dupAcks_ = 0;
    bool inRecovery_ = false;
    std::uint64_t recover_ = 0; //!< sndMax_ when recovery was entered
    bool fastRtxPending_ = false;

    sim::Time srtt_ = 0;
    sim::Time rttvar_ = 0;
    sim::Time rto_;
    bool timingActive_ = false;
    std::uint64_t rttSeq_ = 0;
    sim::Time rttStart_ = 0;

    sim::EventId rtoTimer_ = sim::kInvalidEvent;
    std::uint64_t freedBytes_ = 0;
};

/**
 * Receiver half of one flow: cumulative ACKs, an out-of-order interval
 * buffer, immediate duplicate ACKs on gaps or old data, and a delayed
 * ACK every ackEverySegs in-order segments (or on timeout).
 */
class TcpReceiverFlow
{
  public:
    TcpReceiverFlow(sim::SimContext &ctx, const TcpParams &params,
                    std::function<void(std::uint64_t ack_no)> send_ack);
    ~TcpReceiverFlow();

    TcpReceiverFlow(const TcpReceiverFlow &) = delete;
    TcpReceiverFlow &operator=(const TcpReceiverFlow &) = delete;

    /**
     * A data segment arrived; returns the in-order bytes newly
     * deliverable to the application (0 for duplicates and holes).
     */
    std::uint64_t onSegment(std::uint64_t seq, std::uint32_t len);

    std::uint64_t rcvNxt() const { return rcvNxt_; }

    std::uint64_t acksSent = 0;
    std::uint64_t oooSegs = 0; //!< segments buffered past a hole
    std::uint64_t oldSegs = 0; //!< fully duplicate segments discarded

    /** Domain teardown: cancel the pending delayed-ACK timer, if any. */
    void cancelTimers();
    bool delAckArmed() const { return delAckTimer_ != sim::kInvalidEvent; }

  private:
    void ackNow();
    void scheduleDelayedAck();

    sim::SimContext &ctx_;
    TcpParams p_;
    std::function<void(std::uint64_t)> sendAck_;

    std::uint64_t rcvNxt_ = 0;
    std::map<std::uint64_t, std::uint64_t> ooo_; //!< [start, end) intervals
    std::uint32_t pendingSegs_ = 0;
    sim::EventId delAckTimer_ = sim::kInvalidEvent;
};

/**
 * A host's transport endpoint: demultiplexes incoming packets onto
 * flows, pumps sender flows round-robin against the owner's
 * backpressure, and aggregates per-flow statistics.
 *
 * The owner supplies the packet I/O:
 *  - SegmentTx builds and transmits a data segment (returns false on
 *    backpressure; the owner must call pump() when it clears);
 *  - AckTx transmits a pure ACK (false re-queues it for the next pump);
 *  - Deliver receives in-order payload (goodput);
 *  - BufFreed reports send-buffer space opened by ACKs.
 */
class TcpEndpoint : public sim::SimObject
{
  public:
    struct SegmentOut
    {
        MacAddr dst;
        std::uint64_t flowId;
        std::uint64_t seq;
        std::uint32_t len;
        bool rtx;
    };
    struct AckOut
    {
        MacAddr dst;
        std::uint64_t flowId;
        std::uint64_t ackNo;
    };

    using SegmentTx = std::function<bool(const SegmentOut &)>;
    using AckTx = std::function<bool(const AckOut &)>;
    using Deliver =
        std::function<void(const Packet &pkt, std::uint64_t bytes)>;
    using BufFreed =
        std::function<void(std::uint64_t flow_id, std::uint64_t bytes)>;

    TcpEndpoint(sim::SimContext &ctx, std::string name, TcpParams params);

    void setSegmentTx(SegmentTx fn) { segmentTx_ = std::move(fn); }
    void setAckTx(AckTx fn) { ackTx_ = std::move(fn); }
    void setDeliver(Deliver fn) { deliver_ = std::move(fn); }
    void setBufFreed(BufFreed fn) { bufFreed_ = std::move(fn); }

    /** Create the sender flow @p flow_id toward @p dst (idempotent). */
    void openSender(std::uint64_t flow_id, MacAddr dst,
                    bool unlimited = false);

    /** Application data for a sender flow; returns bytes accepted. */
    std::uint64_t offer(std::uint64_t flow_id, std::uint64_t bytes);

    /** A transport packet (data segment or pure ACK) arrived. */
    void onPacket(const Packet &pkt);

    /** Emit whatever the windows and the owner's backpressure allow. */
    void pump();

    /**
     * Kill the endpoint with its domain: cancel every flow's pending
     * timer (RTO, delayed ACK) and drop queued ACKs, then ignore all
     * further packets and pump attempts.  Without this, a timer armed
     * before the domain died would fire its callback into freed driver
     * state (the --kill-guest x --transport tcp hazard).
     */
    void shutdown();
    bool isShutdown() const { return shutdown_; }
    /** Pending per-flow timers (RTO + delayed ACK); 0 after shutdown. */
    std::uint64_t armedTimers() const;

    const TcpParams &params() const { return p_; }

    // --- aggregates (sums over flows; monotonic) --------------------------
    std::uint64_t segsSent() const;
    std::uint64_t retransSegs() const;
    std::uint64_t fastRetransmits() const;
    std::uint64_t rtoEvents() const;
    std::uint64_t dupAcksRx() const;
    std::uint64_t acksSent() const;
    std::uint64_t deliveredBytes() const { return nDelivered_.value(); }
    std::uint64_t acksReceived() const { return nAcksRx_.value(); }

    /** Sum of cumulatively ACKed bytes across sender flows (the
     *  closed-loop progress basis FlowStats::ackedBytes reports). */
    std::uint64_t sndUnaTotal() const;

    /** Sum of sender-flow congestion windows (cwnd-trajectory gauge). */
    double cwndBytes() const;
    std::uint64_t senderFlows() const { return senders_.size(); }

    /** Direct flow access (tests, probes). */
    TcpSenderFlow *senderFlow(std::uint64_t flow_id);

  private:
    struct Sender
    {
        MacAddr dst;
        std::unique_ptr<TcpSenderFlow> flow;
    };

    void syncStatCounters();

    TcpParams p_;
    SegmentTx segmentTx_;
    AckTx ackTx_;
    Deliver deliver_;
    BufFreed bufFreed_;

    std::map<std::uint64_t, Sender> senders_;
    std::map<std::pair<MacAddr, std::uint64_t>,
             std::unique_ptr<TcpReceiverFlow>>
        receivers_;
    std::deque<AckOut> pendingAcks_;
    bool pumping_ = false;
    bool notifying_ = false;
    bool shutdown_ = false;

    sim::Counter &nDelivered_;
    sim::Counter &nAcksRx_;
    sim::Counter &nSegs_;
    sim::Counter &nRetrans_;
    sim::Counter &nFastRtx_;
    sim::Counter &nRto_;
    sim::Counter &nDupAcks_;
    sim::Counter &nAcksTx_;
};

} // namespace cdna::net::transport

#endif // CDNA_NET_TRANSPORT_TCP_HH
