/**
 * @file
 * Ablation B: decomposition of CDNA's DMA-protection cost.
 *
 * Table 4 gives the end points (protection on vs off); this ablation
 * zeroes one protection cost component at a time to show where the
 * ~8% of hypervisor CPU goes: ownership validation, page pinning,
 * lazy unpinning, and descriptor stamping/copying.
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

namespace {

core::Report
runVariant(const char *label,
           void (*tweak)(core::CostModel &))
{
    auto cfg = core::SystemConfig::cdna(1);
    if (tweak)
        tweak(cfg.costs);
    cfg.label = label;
    return runConfig(std::move(cfg));
}

} // namespace

int
main()
{
    std::printf("=== Ablation: protection cost decomposition (TX, "
                "1 guest) ===\n");
    std::printf("%-24s %8s %8s %8s\n", "variant", "Mb/s", "hyp %",
                "idle %");

    struct Row
    {
        const char *name;
        void (*tweak)(core::CostModel &);
    } rows[] = {
        {"full protection", nullptr},
        {"free validation",
         [](core::CostModel &c) { c.protValidatePerPage = 0; }},
        {"free pin/unpin",
         [](core::CostModel &c) {
             c.protPinPerPage = 0;
             c.protUnpinPerPage = 0;
         }},
        {"free stamp/enqueue",
         [](core::CostModel &c) { c.protEnqueuePerDesc = 0; }},
        {"free hypercall entry",
         [](core::CostModel &c) { c.hv.hypercallOverhead = 0; }},
    };

    for (auto &row : rows) {
        auto r = runVariant(row.name, row.tweak);
        std::printf("%-24s %8.0f %8.1f %8.1f\n", row.name, r.mbps,
                    r.hypPct, r.idlePct);
        std::fflush(stdout);
    }

    auto off = runConfig(core::SystemConfig::cdna(1).withProtection(false));
    std::printf("%-24s %8.0f %8.1f %8.1f   (Table 4 'disabled': hyp 1.9, "
                "idle 60.4)\n",
                "protection disabled", off.mbps, off.hypPct, off.idlePct);
    return 0;
}
