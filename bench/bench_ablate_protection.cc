/**
 * @file
 * Ablation B: decomposition of CDNA's DMA-protection cost.
 *
 * Table 4 gives the end points (protection on vs off); this ablation
 * zeroes one protection cost component at a time to show where the
 * ~8% of hypervisor CPU goes: ownership validation, page pinning,
 * lazy unpinning, and descriptor stamping/copying.
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    auto result = runBenchSweep(sim::presets::protectionAblation(), opt);
    std::printf("=== Ablation: protection cost decomposition (TX, "
                "1 guest) ===\n");
    std::printf("%-24s %8s %8s %8s\n", "variant", "Mb/s", "hyp %",
                "idle %");

    struct Row
    {
        const char *name;
        const char *cell;
        const char *note;
    } rows[] = {
        {"full protection", "cdna/full", ""},
        {"free validation", "cdna/free-validate", ""},
        {"free pin/unpin", "cdna/free-pin", ""},
        {"free stamp/enqueue", "cdna/free-enqueue", ""},
        {"free hypercall entry", "cdna/free-hypercall", ""},
        {"protection disabled", "cdna/disabled",
         "   (Table 4 'disabled': hyp 1.9, idle 60.4)"},
    };
    for (const Row &row : rows) {
        const auto &r = cellReport(result, row.cell);
        std::printf("%-24s %8.0f %8.1f %8.1f%s\n", row.name, r.mbps,
                    r.hypPct, r.idlePct, row.note);
    }
    return 0;
}
