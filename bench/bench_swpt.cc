/**
 * @file
 * Extension: software-only passthrough (swpt) three-way scaling.
 *
 * swPassthrough is the third design point between Xen's paravirtual
 * split driver and CDNA's per-guest hardware contexts: guests program
 * real Intel-style descriptor rings, but every doorbell traps into a
 * hypervisor validator that audits each scatter-gather page against
 * the grant table before shadow-copying the descriptor onto one shared
 * single-context NIC.  Protection is equivalent to CDNA's; the cost is
 * a trap per doorbell plus per-descriptor validation, all burned on
 * the hypervisor CPU lane.
 *
 * This bench sweeps guest count {1, 2, 4, 8, 16} on one NIC in both
 * directions and prints the three-way table plus the swpt-specific
 * counters (doorbell traps, validated descriptors, validation CPU
 * time).  The question it answers: at what point does per-descriptor
 * software validation cost cross CDNA's hardware contexts?
 *
 * Expected shape: swpt tracks CDNA while the validator has hypervisor
 * CPU to spare (descriptor-rate, not byte-rate, work) and beats Xen's
 * copy path everywhere on RX; as guest count grows the trap rate
 * scales with aggregate descriptor rate and the hypervisor lane
 * saturates before the wire does, so the swpt/cdna ratio decays where
 * CDNA stays flat.
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    opt.observeCell = "swpt/g4/tx";
    auto result = runBenchSweep(sim::presets::swpt(), opt);

    std::printf("=== swPassthrough: three-way scaling on one NIC ===\n");
    std::printf("%-14s %9s %10s %10s %9s %9s %10s %8s %9s\n", "cell",
                "xen Mb/s", "cdna Mb/s", "swpt Mb/s", "swpt/xen",
                "swpt/cdna", "traps", "hyp%", "valid us");
    for (const char *dir : {"tx", "rx"}) {
        for (std::uint32_t g : {1u, 2u, 4u, 8u, 16u}) {
            std::string suffix = "/g" + std::to_string(g) + "/" + dir;
            const auto &xen = cellReport(result, "xen" + suffix);
            const auto &cdna = cellReport(result, "cdna" + suffix);
            const auto &swpt = cellReport(result, "swpt" + suffix);
            std::printf("%-14s %9.0f %10.0f %10.0f %9.2f %9.2f %10llu "
                        "%8.1f %9.0f\n",
                        ("g" + std::to_string(g) + "/" + dir).c_str(),
                        xen.mbps, cdna.mbps, swpt.mbps,
                        swpt.mbps / xen.mbps, swpt.mbps / cdna.mbps,
                        static_cast<unsigned long long>(
                            swpt.swptDoorbellTraps),
                        swpt.hypPct, swpt.swptValidationUs);
        }
    }

    // Crossover headline: the largest guest count where software
    // validation still holds >= 95% of CDNA's throughput, per
    // direction.
    for (const char *dir : {"tx", "rx"}) {
        std::uint32_t lastClose = 0;
        double worstRatio = 1.0;
        for (std::uint32_t g : {1u, 2u, 4u, 8u, 16u}) {
            std::string suffix = "/g" + std::to_string(g) + "/" + dir;
            double ratio = cellReport(result, "swpt" + suffix).mbps /
                           cellReport(result, "cdna" + suffix).mbps;
            if (ratio >= 0.95)
                lastClose = g;
            worstRatio = std::min(worstRatio, ratio);
        }
        std::printf("\n%s: swpt holds >=95%% of cdna up to %u guests; "
                    "worst swpt/cdna ratio %.2f",
                    dir, lastClose, worstRatio);
    }
    const auto &xen16 = cellReport(result, "xen/g16/rx");
    const auto &swpt16 = cellReport(result, "swpt/g16/rx");
    std::printf("\nswpt vs xen copy path at 16 guests (rx): %.2fx "
                "(validation is per-descriptor, netback copy is "
                "per-byte)\n",
                swpt16.mbps / xen16.mbps);
    return 0;
}
