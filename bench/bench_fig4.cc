/**
 * @file
 * Figure 4 of the paper: aggregate receive throughput of Xen (Intel
 * NIC) and CDNA over two NICs versus guest count.
 *
 * Paper series: Xen declines from 1112 Mb/s to 558 Mb/s at 24 guests;
 * CDNA holds ~1874 Mb/s while idle falls 40.9% -> 29.1% -> 12.6% -> 0%
 * by 8 guests.  At 24 guests CDNA receives 3.3x more than Xen.
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    // Observe the smallest CDNA run (see bench_fig3).
    opt.observeCell = "cdna/g1";
    auto result = runBenchSweep(sim::presets::fig4(), opt);

    std::printf("=== Figure 4: receive throughput vs guest count ===\n");
    std::printf("%6s %10s %10s %10s %10s\n", "guests", "xen Mb/s",
                "cdna Mb/s", "cdna idle%", "cdna/xen");
    double xen24 = 0, cdna24 = 0;
    for (std::uint32_t g : {1u, 2u, 4u, 8u, 12u, 16u, 20u, 24u}) {
        std::string suffix = "/g" + std::to_string(g) + "/rx";
        const auto &xen = cellReport(result, "xen" + suffix);
        const auto &cdna = cellReport(result, "cdna" + suffix);
        std::printf("%6u %10.0f %10.0f %10.1f %10.2f\n", g, xen.mbps,
                    cdna.mbps, cdna.idlePct, cdna.mbps / xen.mbps);
        if (g == 24) {
            xen24 = xen.mbps;
            cdna24 = cdna.mbps;
        }
    }
    std::printf("\nCDNA advantage at 24 guests: %.2fx (paper: 3.3x)\n",
                cdna24 / xen24);
    return 0;
}
