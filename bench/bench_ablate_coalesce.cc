/**
 * @file
 * Ablation A: interrupt bit-vector coalescing.
 *
 * The paper tuned "NIC coalescing options" per experiment; this sweep
 * shows the tradeoff the tuning navigates: shorter windows raise the
 * guest virtual-interrupt rate (the Tables 2-3 interrupt columns) and
 * burn idle time in per-wake costs, while longer windows add latency
 * but cost almost nothing in throughput because the rings are deep.
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    auto result = runBenchSweep(sim::presets::coalesce(), opt);
    std::printf("=== Ablation: CDNA interrupt coalescing window (TX, "
                "1 guest, 2 NICs) ===\n");
    std::printf("%10s %10s %10s %10s %10s\n", "window us", "Mb/s",
                "gstIrq/s", "idle %", "hyp %");
    for (double us : {18.0, 36.0, 72.0, 145.0, 290.0, 580.0}) {
        char cell[32];
        std::snprintf(cell, sizeof(cell), "cdna/w%.0fus", us);
        const auto &r = cellReport(result, cell);
        std::printf("%10.0f %10.0f %10.0f %10.1f %10.1f\n", us, r.mbps,
                    r.guestIntrPerSec, r.idlePct, r.hypPct);
    }
    std::printf("\npaper operating point: ~13.7k irq/s TX, ~7.4k RX\n");
    return 0;
}
