/**
 * @file
 * Table 2 of the paper: transmit performance for a single guest with
 * two NICs -- Xen software virtualization over the Intel NIC, Xen over
 * the (CDNA-capable) RiceNIC with one context assigned to the driver
 * domain, and CDNA itself.
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    auto result = runBenchSweep(sim::presets::table2(), opt);
    std::printf("=== Table 2: single-guest transmit, 2 NICs ===\n");
    printProfileCells(
        result,
        {{"xen-intel", "1602 | 19.8 35.7 0.8 39.7 1.0  3.0 | 7438 7853"},
         {"xen-ricenic",
          "1674 | 13.7 41.5 0.5 39.5 1.0  3.8 | 8839 5661"},
         {"cdna", "1867 | 10.2  0.3 0.2 37.8 0.7 50.8 |    0 13659"}});
    return 0;
}
