/**
 * @file
 * Extension: switch incast against finite egress buffering.
 *
 * N external TCP senders on one output-queued switch converge on a
 * single receiving guest, so the receiver's switch port is N:1
 * oversubscribed and the egress queue -- not the host -- decides who
 * gets through.  The sweep crosses receiver virtualization ({xen,
 * cdna}) with fanout {2,4,8,16} and per-port buffering {32 KiB,
 * 256 KiB} and reports aggregate goodput, switch tail drops, sender
 * retransmissions, and the slowest flow's share.
 *
 * Two effects stack: shallow buffers tail-drop under high fanout and
 * the lost segments come back as retransmissions and timeout stalls
 * (classic incast collapse of the slowest flow), while the Xen
 * receiver additionally burns its driver-domain CPU budget and leaves
 * goodput on the floor even when the switch queue is deep.  CDNA
 * keeps the host off the critical path, so its deep-buffer cells sit
 * near line rate until the fabric itself saturates.
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    auto result = runBenchSweep(sim::presets::incast(), opt);

    std::printf("=== Incast: N TCP senders -> 1 receiving guest through "
                "an output-queued switch ===\n");
    std::printf("%-18s %9s %8s %8s | %9s %9s %9s\n", "cell", "agg Mb/s",
                "swdrops", "retrans", "min Mb/s", "mean Mb/s",
                "qpeak KiB");
    for (const char *mode : {"xen", "cdna"}) {
        for (std::uint32_t f : {2u, 4u, 8u, 16u}) {
            for (const char *buf : {"buf32k", "buf256k"}) {
                std::string cell = std::string(mode) + "/f" +
                                   std::to_string(f) + "/" + buf;
                const auto &run = cellRun(result, cell);
                const auto &r = run.report;
                std::printf("%-18s %9.0f %8llu %8.0f | %9.0f %9.0f %9.0f\n",
                            cell.c_str(), r.mbps,
                            static_cast<unsigned long long>(r.switchDrops),
                            run.extra.at("sender_retrans"),
                            run.extra.at("flow_mbps_min"),
                            run.extra.at("flow_mbps_mean"),
                            static_cast<double>(r.switchQueuePeakBytes) /
                                1024.0);
            }
        }
        std::printf("\n");
    }

    const auto &worst = cellRun(result, "cdna/f16/buf32k");
    const auto &deep = cellRun(result, "cdna/f16/buf256k");
    std::printf("At 16:1 fanout, 32 KiB egress buffering costs %.0f Mb/s "
                "of aggregate goodput vs 256 KiB (%llu tail drops, "
                "slowest flow %.0f vs %.0f Mb/s)\n",
                deep.report.mbps - worst.report.mbps,
                static_cast<unsigned long long>(worst.report.switchDrops),
                worst.extra.at("flow_mbps_min"),
                deep.extra.at("flow_mbps_min"));
    return 0;
}
