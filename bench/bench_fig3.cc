/**
 * @file
 * Figure 3 of the paper: aggregate transmit throughput of Xen (Intel
 * NIC) and CDNA over two NICs as the number of guest operating systems
 * grows from 1 to 24, with CDNA's CPU idle percentage annotated.
 *
 * Paper series: Xen declines from 1602 Mb/s toward 891 Mb/s at 24
 * guests (marginal reduction shrinking); CDNA stays ~1867 Mb/s while
 * its idle time falls 50.8% -> 25.4% -> 5.9% -> 0% by 8 guests.
 * At 24 guests CDNA transmits 2.1x more than Xen.
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    // Observe the smallest CDNA run: its trace stays readable and
    // exercises every lane (CPU, hypervisor, NIC, DMA protection).
    opt.observeCell = "cdna/g1";
    auto result = runBenchSweep(sim::presets::fig3(), opt);

    std::printf("=== Figure 3: transmit throughput vs guest count ===\n");
    std::printf("%6s %10s %10s %10s %10s\n", "guests", "xen Mb/s",
                "cdna Mb/s", "cdna idle%", "cdna/xen");
    double xen1 = 0, xen24 = 0, cdna24 = 0;
    for (std::uint32_t g : {1u, 2u, 4u, 8u, 12u, 16u, 20u, 24u}) {
        std::string suffix = "/g" + std::to_string(g);
        const auto &xen = cellReport(result, "xen" + suffix);
        const auto &cdna = cellReport(result, "cdna" + suffix);
        std::printf("%6u %10.0f %10.0f %10.1f %10.2f\n", g, xen.mbps,
                    cdna.mbps, cdna.idlePct, cdna.mbps / xen.mbps);
        if (g == 1)
            xen1 = xen.mbps;
        if (g == 24) {
            xen24 = xen.mbps;
            cdna24 = cdna.mbps;
        }
    }
    std::printf("\nXen decline factor (1 -> 24 guests): %.2fx "
                "(paper: 1602/891 = 1.80x)\n",
                xen1 / xen24);
    std::printf("CDNA advantage at 24 guests: %.2fx (paper: 2.1x)\n",
                cdna24 / xen24);
    return 0;
}
