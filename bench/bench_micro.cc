/**
 * @file
 * Microbenchmarks (google-benchmark) of the library's hot primitives:
 * event-queue scheduling, descriptor-ring operations, the mailbox
 * event bit-vector hierarchy, protection validation, and a full
 * end-to-end simulated second of the CDNA system (simulation speed).
 */

#include <benchmark/benchmark.h>

#include "core/system.hh"
#include "nic/desc_ring.hh"
#include "nic/mailbox.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace cdna;

static void
BM_EventQueueScheduleDispatch(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.schedule(i, [&] { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleDispatch);

static void
BM_EventQueueCancel(benchmark::State &state)
{
    sim::EventQueue eq;
    for (auto _ : state) {
        auto id = eq.schedule(1000, [] {});
        benchmark::DoNotOptimize(eq.cancel(id));
    }
}
BENCHMARK(BM_EventQueueCancel);

static void
BM_RngNext(benchmark::State &state)
{
    sim::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

static void
BM_DescRingWriteRead(benchmark::State &state)
{
    nic::DescRing ring(256, 0x100000);
    nic::DmaDescriptor d;
    d.sg = {{0x2000, 1460}};
    d.flags = nic::kDescValid;
    std::uint32_t pos = 0;
    for (auto _ : state) {
        ring.write(pos, d);
        benchmark::DoNotOptimize(ring.at(pos));
        ++pos;
    }
}
BENCHMARK(BM_DescRingWriteRead);

static void
BM_MailboxHierPostPop(benchmark::State &state)
{
    nic::MailboxEventHier hier;
    std::uint32_t c, m;
    std::uint32_t i = 0;
    for (auto _ : state) {
        hier.post(i % 32, i % 24);
        hier.popLowest(&c, &m);
        ++i;
    }
    benchmark::DoNotOptimize(c + m);
}
BENCHMARK(BM_MailboxHierPostPop);

static void
BM_MacHashLookup(benchmark::State &state)
{
    std::uint32_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(net::MacAddr::fromId(i++ & 0xFF).hash());
}
BENCHMARK(BM_MacHashLookup);

/** End-to-end: wall-clock cost of simulating 10 ms of the CDNA system
 *  (1 guest, 2 NICs, transmit at line rate). */
static void
BM_SimulateCdna10ms(benchmark::State &state)
{
    for (auto _ : state) {
        core::System sys(core::SystemConfig::cdna(1));
        auto r = sys.run(sim::milliseconds(2), sim::milliseconds(10));
        benchmark::DoNotOptimize(r.mbps);
    }
}
BENCHMARK(BM_SimulateCdna10ms)->Unit(benchmark::kMillisecond);

/** End-to-end: the Xen software path is busier per byte. */
static void
BM_SimulateXen10ms(benchmark::State &state)
{
    for (auto _ : state) {
        core::System sys(core::SystemConfig::xenIntel(1));
        auto r = sys.run(sim::milliseconds(2), sim::milliseconds(10));
        benchmark::DoNotOptimize(r.mbps);
    }
}
BENCHMARK(BM_SimulateXen10ms)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
