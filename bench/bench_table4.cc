/**
 * @file
 * Table 4 of the paper: CDNA with and without DMA memory protection,
 * transmit and receive.  Disabling protection establishes the upper
 * bound a context-aware hardware IOMMU could reach (section 5.3).
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    auto result = runBenchSweep(sim::presets::table4(), opt);
    std::printf("=== Table 4: CDNA with/without DMA protection ===\n");
    printProfileCells(
        result,
        {{"cdna/tx/prot", "1867 | 10.2 0.3 0.2 37.8 0.7 50.8 | 0 13659"},
         {"cdna/tx/noprot",
          "1867 |  1.9 0.2 0.2 37.0 0.3 60.4 | 0 13680"},
         {"cdna/rx/prot", "1874 |  9.9 0.3 0.2 48.0 0.7 40.9 | 0  7402"},
         {"cdna/rx/noprot",
          "1874 |  1.9 0.2 0.2 47.2 0.3 50.2 | 0  7243"}});
    return 0;
}
