/**
 * @file
 * Ablation C: hardware-context scaling on a single CDNA NIC.
 *
 * Section 4 sizes the NIC for 32 contexts (128 KB of mailbox SRAM,
 * 12 MB of memory).  This sweep packs 1..30 guests onto ONE NIC --
 * one context each -- and reports per-link saturation, firmware
 * utilization, and fairness, showing the on-NIC multiplexer is not
 * the bottleneck (the paper: one 300 MHz core saturates the link).
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    auto result = runBenchSweep(sim::presets::contexts(), opt);
    std::printf("=== Ablation: contexts per NIC (TX, single NIC) ===\n");
    std::printf("%8s %10s %10s %10s %10s\n", "guests", "Mb/s", "fw util",
                "fairness", "idle %");
    for (std::uint32_t g : {1u, 2u, 4u, 8u, 16u, 24u, 30u}) {
        const auto &run =
            cellRun(result, "cdna1nic/g" + std::to_string(g));
        const auto &r = run.report;
        std::printf("%8u %10.0f %10.2f %10.2f %10.1f\n", g, r.mbps,
                    run.extra.at("fw_util"), r.fairness(), r.idlePct);
    }
    std::printf("\npaper: 32 contexts supported; one embedded core "
                "saturates the link\n");
    return 0;
}
