/**
 * @file
 * Ablation E: page flipping vs copy-mode netback.
 *
 * The paper's Xen used page flipping on receive; Xen later replaced it
 * with copying because the flip's hypercall/TLB cost exceeded a memcpy
 * for MTU-sized frames.  This ablation reruns the receive experiments
 * in both modes, showing the crossover the community later acted on --
 * and that neither closes the gap to CDNA.
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main()
{
    std::printf("=== Ablation: Xen RX page-flip vs copy-mode netback "
                "===\n");
    printProfileHeader();
    for (std::uint32_t g : {1u, 8u}) {
        auto flip = core::SystemConfig::xenIntel(g).receive();
        flip.label = "xen flip, " + std::to_string(g) + "g";
        printProfileRow(runConfig(std::move(flip)), "paper's Xen 3 mode");

        auto copy = core::SystemConfig::xenIntel(g).receive();
        copy.xenRxCopyMode = true;
        copy.label = "xen copy, " + std::to_string(g) + "g";
        printProfileRow(runConfig(std::move(copy)),
                        "later Xen releases' mode");
    }
    auto cdna = core::SystemConfig::cdna(1).receive();
    printProfileRow(runConfig(std::move(cdna)),
                    "CDNA: beats both (1874 in the paper)");
    return 0;
}
