/**
 * @file
 * Ablation E: page flipping vs copy-mode netback.
 *
 * The paper's Xen used page flipping on receive; Xen later replaced it
 * with copying because the flip's hypercall/TLB cost exceeded a memcpy
 * for MTU-sized frames.  This ablation reruns the receive experiments
 * in both modes, showing the crossover the community later acted on --
 * and that neither closes the gap to CDNA.
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    auto result = runBenchSweep(sim::presets::flipcopy(), opt);
    std::printf("=== Ablation: Xen RX page-flip vs copy-mode netback "
                "===\n");
    printProfileCells(
        result,
        {{"xen-flip/g1", "paper's Xen 3 mode"},
         {"xen-copy/g1", "later Xen releases' mode"},
         {"xen-flip/g8", "paper's Xen 3 mode"},
         {"xen-copy/g8", "later Xen releases' mode"},
         {"cdna/g1", "CDNA: beats both (1874 in the paper)"}});
    return 0;
}
