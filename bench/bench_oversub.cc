/**
 * @file
 * Extension: virtual-context oversubscription crossover against Xen.
 *
 * The paper's NIC exposes 32 hardware contexts, so plain CDNA simply
 * cannot boot a 33rd guest.  The hypervisor's context pager lifts the
 * limit by paging per-guest context state in and out of the physical
 * slots on demand.  This bench sweeps guest count from 8 to 256 on one
 * NIC across {xen, cdna, cdna-oversub} and reports aggregate goodput
 * plus the paging counters, to show two things:
 *
 *   1. Crossover: while the hot set fits the 32 physical slots,
 *      oversubscribed CDNA keeps beating software virtualization (the
 *      pager is inert or cheap); past it, paging costs eat in, but the
 *      system degrades gracefully rather than refusing to boot.
 *   2. Safety: at 256 guests there are no protection faults and no
 *      availability downtime -- eviction is not an outage.
 *
 * Plain CDNA silently enables the pager above 32 guests (it could not
 * run otherwise), so the cdna and cdna-oversub series converge there;
 * below 32 they differ only in having the pager compiled in and idle.
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    opt.observeCell = "cdna-oversub/g256";
    auto result = runBenchSweep(sim::presets::oversub(), opt);

    std::printf("=== Oversubscription: guests vs 32 hardware contexts "
                "(1 NIC, open-loop) ===\n");
    std::printf("%-7s %10s %10s %12s | %9s %9s %9s %6s\n", "guests",
                "xen Mb/s", "cdna Mb/s", "oversub Mb/s", "traps",
                "evictions", "page-ins", "peak");
    double crossover = 0.0;
    for (std::uint32_t g : {8u, 16u, 32u, 64u, 128u, 256u}) {
        std::string suffix = "/g" + std::to_string(g);
        const auto &xen = cellReport(result, "xen" + suffix);
        const auto &cdna = cellReport(result, "cdna" + suffix);
        const auto &over = cellReport(result, "cdna-oversub" + suffix);
        std::printf("%-7u %10.0f %10.0f %12.0f | %9llu %9llu %9llu %6llu\n",
                    g, xen.mbps, cdna.mbps, over.mbps,
                    static_cast<unsigned long long>(over.cxtPageTraps),
                    static_cast<unsigned long long>(over.cxtEvictions),
                    static_cast<unsigned long long>(over.cxtPageIns),
                    static_cast<unsigned long long>(over.cxtResidentPeak));
        if (over.mbps > xen.mbps)
            crossover = static_cast<double>(g);
    }

    const auto &worst = cellReport(result, "cdna-oversub/g256");
    double worstDown = 0.0;
    for (double d : worst.perGuestDowntimeUs)
        worstDown = std::max(worstDown, d);
    std::printf("\nOversubscribed CDNA beats Xen up to %cg=%.0f guests; "
                "at 256 guests: %llu protection faults, worst-guest "
                "downtime %.1f ms (paging is not an outage)\n",
                crossover >= 256.0 ? '>' : ' ', crossover,
                static_cast<unsigned long long>(worst.protectionFaults),
                worstDown / 1000.0);
    return 0;
}
