/**
 * @file
 * Extension: closed-loop TCP goodput under wire loss.
 *
 * The paper's throughput experiments ran real TCP streams, so loss on
 * the wire cost goodput through retransmission and congestion backoff
 * rather than silently inflating the throughput counters.  This bench
 * reproduces that behaviour with the Reno transport subsystem: frame
 * drop rates from 0 to 1% (plus a corruption point, which consumes NIC
 * and stack resources before the checksum check discards the frame)
 * against Xen/Intel, CDNA, and software-only passthrough, single
 * guest, transmit direction.
 *
 * Expected shape: goodput <= wire throughput everywhere, retransmission
 * counters grow with the loss rate, and goodput recovers monotonically
 * as the loss rate falls to zero.
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    opt.observeCell = "cdna/drop0.001";
    auto result = runBenchSweep(sim::presets::tcpLoss(), opt);

    std::printf("=== TCP goodput vs wire loss (Reno transport) ===\n");
    std::printf("%-22s %10s %10s %8s %8s %6s %8s\n", "cell", "good Mb/s",
                "wire Mb/s", "retrans", "fastrtx", "rto", "badcsum");
    for (const char *series : {"xen", "cdna", "swpt"}) {
        for (const char *loss :
             {"drop0", "drop0.0001", "drop0.001", "drop0.01",
              "corrupt0.001"}) {
            std::string cell = std::string(series) + "/" + loss;
            const auto &r = cellReport(result, cell);
            std::printf("%-22s %10.0f %10.0f %8llu %8llu %6llu %8llu\n",
                        cell.c_str(), r.mbps, r.wireMbps,
                        static_cast<unsigned long long>(r.tcpRetransSegs),
                        static_cast<unsigned long long>(
                            r.tcpFastRetransmits),
                        static_cast<unsigned long long>(r.tcpRtoEvents),
                        static_cast<unsigned long long>(r.rxDropsBadCsum));
        }
    }

    const auto &clean = cellReport(result, "cdna/drop0");
    const auto &lossy = cellReport(result, "cdna/drop0.01");
    std::printf("\nCDNA goodput cost of 1%% loss: %.1f%%\n",
                100.0 * (clean.mbps - lossy.mbps) / clean.mbps);
    return 0;
}
