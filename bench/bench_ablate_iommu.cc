/**
 * @file
 * Ablation D: IOMMU modes (paper section 5.3).
 *
 * Compares software protection against the IOMMU-based alternatives
 * the paper discusses: none (raw 2007 x86), AMD's proposed per-device
 * IOMMU (insufficient for CDNA: one binding per device cannot cover
 * many guests), and the per-context extension the paper calls for
 * (wrappers create descriptors without hypervisor intervention).
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    auto result = runBenchSweep(sim::presets::iommu(), opt);
    std::printf("=== Ablation: IOMMU modes (TX, 2 guests, 2 NICs) ===\n");
    std::printf("%-34s %8s %8s %10s %10s\n", "variant", "Mb/s", "hyp %",
                "blocked", "violations");

    struct Row
    {
        const char *name;
        const char *cell;
        const char *note;
    } rows[] = {
        {"software protection (CDNA)", "swprot", ""},
        {"no protection, no IOMMU", "noprot-noiommu", ""},
        {"per-context IOMMU, direct enqueue", "percontext", ""},
        {"per-device IOMMU (sec. 5.3)", "perdevice",
         "   <- cannot express per-guest contexts"},
    };
    for (const Row &row : rows) {
        const auto &run = cellRun(result, row.cell);
        const auto &r = run.report;
        std::printf("%-34s %8.0f %8.1f %10.0f %10llu%s\n", row.name,
                    r.mbps, r.hypPct, run.extra.at("iommu_blocked"),
                    static_cast<unsigned long long>(r.dmaViolations),
                    row.note);
    }
    return 0;
}
