/**
 * @file
 * Ablation D: IOMMU modes (paper section 5.3).
 *
 * Compares software protection against the IOMMU-based alternatives
 * the paper discusses: none (raw 2007 x86), AMD's proposed per-device
 * IOMMU (insufficient for CDNA: one binding per device cannot cover
 * many guests), and the per-context extension the paper calls for
 * (wrappers create descriptors without hypervisor intervention).
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main()
{
    std::printf("=== Ablation: IOMMU modes (TX, 2 guests, 2 NICs) ===\n");
    std::printf("%-34s %8s %8s %10s %10s\n", "variant", "Mb/s", "hyp %",
                "blocked", "violations");

    struct Row
    {
        const char *name;
        bool software_protection;
        mem::Iommu::Mode mode;
    } rows[] = {
        {"software protection (CDNA)", true, mem::Iommu::Mode::kNone},
        {"no protection, no IOMMU", false, mem::Iommu::Mode::kNone},
        {"per-context IOMMU, direct enqueue", false,
         mem::Iommu::Mode::kPerContext},
    };

    for (auto &row : rows) {
        auto cfg = core::SystemConfig::cdna(2).withProtection(row.software_protection);
        cfg.iommuMode = row.mode;
        cfg.label = row.name;
        core::System sys(cfg);
        auto r = sys.run(kWarmup, kMeasure);
        std::uint64_t blocked =
            sys.iommu() ? sys.iommu()->blockedCount() : 0;
        std::printf("%-34s %8.0f %8.1f %10llu %10llu\n", row.name, r.mbps,
                    r.hypPct, static_cast<unsigned long long>(blocked),
                    static_cast<unsigned long long>(r.dmaViolations));
        std::fflush(stdout);
    }

    // Per-device mode with several guests blocks legitimate traffic.
    {
        auto cfg = core::SystemConfig::cdna(2).withProtection(false);
        cfg.iommuMode = mem::Iommu::Mode::kPerDevice;
        core::System sys(cfg);
        for (std::uint32_t i = 0; i < 2; ++i)
            sys.iommu()->bindDevice(i, sys.guestDomain(0)->id());
        auto r = sys.run(kWarmup, kMeasure);
        std::printf("%-34s %8.0f %8.1f %10llu %10llu   <- cannot express "
                    "per-guest contexts\n",
                    "per-device IOMMU (sec. 5.3)", r.mbps, r.hypPct,
                    static_cast<unsigned long long>(
                        sys.iommu()->blockedCount()),
                    static_cast<unsigned long long>(r.dmaViolations));
    }
    return 0;
}
