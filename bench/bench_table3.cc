/**
 * @file
 * Table 3 of the paper: receive performance for a single guest with
 * two NICs.
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    auto result = runBenchSweep(sim::presets::table3(), opt);
    std::printf("=== Table 3: single-guest receive, 2 NICs ===\n");
    printProfileCells(
        result,
        {{"xen-intel/rx",
          "1112 | 25.7 36.8 0.5 31.0 1.0  5.0 | 11138 5193"},
         {"xen-ricenic/rx",
          "1075 | 30.6 39.4 0.6 28.8 0.6  0.0 | 10946 5163"},
         {"cdna/rx", "1874 |  9.9  0.3 0.2 48.0 0.7 40.9 |     0 7402"}});
    return 0;
}
