/**
 * @file
 * Table 3 of the paper: receive performance for a single guest with
 * two NICs.
 *
 * Paper reference rows (Mb/s | Hyp DrvOS DrvU GstOS GstU Idle | irq/s):
 *   Xen/Intel    1112 | 25.7 36.8 0.5 31.0 1.0  5.0 | 11138 5193
 *   Xen/RiceNIC  1075 | 30.6 39.4 0.6 28.8 0.6  0.0 | 10946 5163
 *   CDNA/RiceNIC 1874 |  9.9  0.3 0.2 48.0 0.7 40.9 |     0 7402
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main()
{
    std::printf("=== Table 3: single-guest receive, 2 NICs ===\n");
    printProfileHeader();
    printProfileRow(runConfig(core::SystemConfig::xenIntel(1).receive()),
                    "1112 | 25.7 36.8 0.5 31.0 1.0  5.0 | 11138 5193");
    printProfileRow(runConfig(core::SystemConfig::xenRice(1).receive()),
                    "1075 | 30.6 39.4 0.6 28.8 0.6  0.0 | 10946 5163");
    printProfileRow(runConfig(core::SystemConfig::cdna(1).receive()),
                    "1874 |  9.9  0.3 0.2 48.0 0.7 40.9 |     0 7402");
    return 0;
}
