/**
 * @file
 * Table 1 of the paper: transmit and receive throughput of native
 * Linux versus a paravirtualized guest inside Xen, each driving six
 * Intel Gigabit NICs (TSO, checksum offload, scatter/gather enabled).
 *
 * Paper (Opteron 250, Linux 2.6.16.29, Xen 3 unstable):
 *     Native Linux:  TX 5126 Mb/s   RX 3629 Mb/s
 *     Xen guest:     TX 1602 Mb/s   RX 1112 Mb/s
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main()
{
    std::printf("=== Table 1: native Linux vs Xen guest (6 GbE NICs) ===\n");
    std::printf("%-16s %10s %10s\n", "system", "TX Mb/s", "RX Mb/s");

    struct Row
    {
        const char *name;
        core::SystemConfig tx;
        core::SystemConfig rx;
        const char *paper;
    };

    auto native_tx = core::SystemConfig::native(6);
    auto native_rx = core::SystemConfig::native(6).receive();
    auto xen_tx = core::SystemConfig::xenIntel(1);
    xen_tx.numNics = 6;
    auto xen_rx = core::SystemConfig::xenIntel(1).receive();
    xen_rx.numNics = 6;

    Row rows[] = {
        {"Native Linux", native_tx, native_rx, "paper: 5126 / 3629"},
        {"Xen Guest", xen_tx, xen_rx, "paper: 1602 / 1112"},
    };

    for (auto &row : rows) {
        auto tx = runConfig(row.tx);
        auto rx = runConfig(row.rx);
        std::printf("%-16s %10.0f %10.0f   (%s)\n", row.name, tx.mbps,
                    rx.mbps, row.paper);
    }
    return 0;
}
