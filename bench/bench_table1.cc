/**
 * @file
 * Table 1 of the paper: transmit and receive throughput of native
 * Linux versus a paravirtualized guest inside Xen, each driving six
 * Intel Gigabit NICs (TSO, checksum offload, scatter/gather enabled).
 *
 * Paper (Opteron 250, Linux 2.6.16.29, Xen 3 unstable):
 *     Native Linux:  TX 5126 Mb/s   RX 3629 Mb/s
 *     Xen guest:     TX 1602 Mb/s   RX 1112 Mb/s
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    auto result = runBenchSweep(sim::presets::table1(), opt);
    std::printf("=== Table 1: native Linux vs Xen guest (6 GbE NICs) ===\n");
    std::printf("%-16s %10s %10s\n", "system", "TX Mb/s", "RX Mb/s");

    struct Row
    {
        const char *name;
        const char *cell;
        const char *paper;
    } rows[] = {
        {"Native Linux", "native", "paper: 5126 / 3629"},
        {"Xen Guest", "xen", "paper: 1602 / 1112"},
    };
    for (const Row &row : rows)
        std::printf("%-16s %10.0f %10.0f   (%s)\n", row.name,
                    cellReport(result, std::string(row.cell) + "/tx").mbps,
                    cellReport(result, std::string(row.cell) + "/rx").mbps,
                    row.paper);
    return 0;
}
