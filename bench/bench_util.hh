/**
 * @file
 * Shared helpers for the experiment-reproduction benchmark binaries.
 *
 * Each bench binary regenerates one table or figure of the paper and
 * prints the simulated results next to the paper's published numbers
 * so the shape comparison is immediate.  A bench file is just its
 * ExperimentSpec (usually a shared preset from sim/sweep_presets.hh)
 * plus the paper reference strings: argv parsing, parallel execution,
 * seed ensembles, and JSON output are all handled here on top of the
 * sweep runner.
 *
 * Every bench accepts:
 *   -j/--jobs N     worker threads (default 1: sequential, the
 *                   bit-reproducibility baseline)
 *   --seeds N       run each cell with seeds 1..N and report the mean
 *   --json-out FILE write the full sweep JSON document
 * plus the observability flags (--trace, --trace-filter, --stats-json,
 * --sample-period), which are applied to the run selected by the
 * bench's observeCell.
 */

#ifndef CDNA_BENCH_BENCH_UTIL_HH
#define CDNA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/system.hh"
#include "sim/sweep.hh"
#include "sim/sweep_presets.hh"

namespace cdna::bench {

inline constexpr sim::Time kWarmup = sim::milliseconds(100);
inline constexpr sim::Time kMeasure = sim::milliseconds(400);

/** Parsed bench command line (see file header). */
struct BenchOptions
{
    unsigned jobs = 1;
    std::uint32_t seeds = 1;
    std::string jsonOut;
    /** Cell substring whose first run gets the observability session. */
    std::string observeCell;
    core::CliOptions obs;
};

/**
 * Parse a bench binary's argv.  Bench-specific flags are consumed
 * here; anything else is handed to the core CLI parser so the
 * observability flags keep working (configuration flags are accepted
 * and ignored, since each bench hard-codes its own sweep).  Exits on
 * error or --help.
 */
inline BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions opt;
    std::vector<std::string> rest;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto numeric = [&](const char *flag) -> unsigned long {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             flag);
                std::exit(1);
            }
            char *end = nullptr;
            unsigned long v = std::strtoul(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || v == 0) {
                std::fprintf(stderr,
                             "%s: %s needs a positive integer\n",
                             argv[0], flag);
                std::exit(1);
            }
            return v;
        };
        if (a == "-j" || a == "--jobs") {
            opt.jobs = static_cast<unsigned>(numeric("--jobs"));
        } else if (a == "--seeds") {
            opt.seeds = static_cast<std::uint32_t>(numeric("--seeds"));
        } else if (a == "--json-out") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --json-out needs a value\n",
                             argv[0]);
                std::exit(1);
            }
            opt.jsonOut = argv[++i];
        } else {
            rest.push_back(a);
        }
    }
    std::string error;
    auto parsed = core::parseCli(rest, &error);
    if (!parsed) {
        std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
        std::exit(1);
    }
    if (parsed->help) {
        std::printf("bench options: [-j N] [--seeds N] [--json-out "
                    "FILE] plus observability flags:\n%s",
                    core::cliUsage().c_str());
        std::exit(0);
    }
    opt.obs = *parsed;
    return opt;
}

/**
 * Run @p spec under the bench options: apply the seed ensemble and
 * observability, execute on the pool, optionally write the sweep JSON.
 */
inline sim::SweepResult
runBenchSweep(sim::ExperimentSpec spec, const BenchOptions &opt)
{
    spec.seeds(opt.seeds);
    sim::SweepOptions sweep;
    sweep.jobs = opt.jobs;
    sweep.observeCell = opt.observeCell;
    sweep.obs = opt.obs;
    sim::SweepResult result = sim::runSweep(spec, sweep);
    if (!opt.jsonOut.empty()) {
        std::ofstream f(opt.jsonOut, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.jsonOut.c_str());
            std::exit(1);
        }
        f << sim::sweepToJson(result);
    }
    return result;
}

/** The first (lowest-seed) run of @p cell; exits if the cell is absent. */
inline const sim::RunResult &
cellRun(const sim::SweepResult &result, const std::string &cell)
{
    for (const auto &cs : result.cells)
        if (cs.cell == cell)
            return result.runs[cs.firstRun];
    std::fprintf(stderr, "bench: no such sweep cell: %s\n", cell.c_str());
    std::exit(1);
}

/** The first-seed report of @p cell. */
inline const core::Report &
cellReport(const sim::SweepResult &result, const std::string &cell)
{
    return cellRun(result, cell).report;
}

/** Print one paper-style profile row with a paper-reference column. */
inline void
printProfileRow(const core::Report &r, const char *paper_ref)
{
    std::printf("%-22s %6.0f | %5.1f %5.1f %5.1f %5.1f %5.1f %5.1f | "
                "%7.0f %7.0f | paper: %s\n",
                r.label.c_str(), r.mbps, r.hypPct, r.drvOsPct, r.drvUserPct,
                r.guestOsPct, r.guestUserPct, r.idlePct, r.drvIntrPerSec,
                r.guestIntrPerSec, paper_ref);
}

inline void
printProfileHeader()
{
    std::printf("%-22s %6s | %5s %5s %5s %5s %5s %5s | %7s %7s |\n",
                "config", "Mb/s", "Hyp", "DrvOS", "DrvU", "GstOS", "GstU",
                "Idle", "drvIrq", "gstIrq");
}

/** A sweep cell paired with the paper's published numbers. */
struct PaperRef
{
    const char *cell;
    const char *paper;
};

/** Print profile rows for the listed cells, in order. */
inline void
printProfileCells(const sim::SweepResult &result,
                  std::initializer_list<PaperRef> refs)
{
    printProfileHeader();
    for (const PaperRef &ref : refs) {
        const core::Report &r = cellReport(result, ref.cell);
        std::printf("%-22s %6.0f | %5.1f %5.1f %5.1f %5.1f %5.1f %5.1f | "
                    "%7.0f %7.0f | paper: %s\n",
                    ref.cell, r.mbps, r.hypPct, r.drvOsPct, r.drvUserPct,
                    r.guestOsPct, r.guestUserPct, r.idlePct,
                    r.drvIntrPerSec, r.guestIntrPerSec, ref.paper);
    }
}

} // namespace cdna::bench

#endif // CDNA_BENCH_BENCH_UTIL_HH
