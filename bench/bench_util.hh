/**
 * @file
 * Shared helpers for the experiment-reproduction benchmark binaries.
 *
 * Each bench binary regenerates one table or figure of the paper and
 * prints the simulated results next to the paper's published numbers
 * so the shape comparison is immediate.
 */

#ifndef CDNA_BENCH_BENCH_UTIL_HH
#define CDNA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/system.hh"

namespace cdna::bench {

inline constexpr sim::Time kWarmup = sim::milliseconds(100);
inline constexpr sim::Time kMeasure = sim::milliseconds(400);

/** Run one configuration and return its report. */
inline core::Report
runConfig(core::SystemConfig cfg, sim::Time warmup = kWarmup,
          sim::Time measure = kMeasure)
{
    core::System sys(std::move(cfg));
    return sys.run(warmup, measure);
}

/**
 * Parse a bench binary's argv.  Benches accept the observability flags
 * (--trace, --trace-filter, --stats-json, --sample-period; both
 * "--opt value" and "--opt=value" forms) and ignore the configuration
 * flags, since each bench hard-codes its own sweep.  Exits on error.
 */
inline core::CliOptions
parseObsArgs(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::string error;
    auto opt = core::parseCli(args, &error);
    if (!opt) {
        std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
        std::exit(1);
    }
    if (opt->help) {
        std::printf("%s", core::cliUsage().c_str());
        std::exit(0);
    }
    return *opt;
}

/**
 * Run one configuration with observability applied, writing the trace /
 * stats files named in @p obs (a later observed run overwrites them).
 */
inline core::Report
runObserved(core::SystemConfig cfg, const core::CliOptions &obs,
            sim::Time warmup = kWarmup, sim::Time measure = kMeasure)
{
    core::System sys(std::move(cfg));
    core::ObservabilitySession session(sys, obs);
    core::Report r = sys.run(warmup, measure);
    std::string error;
    if (!session.close(&error))
        std::fprintf(stderr, "warning: %s\n", error.c_str());
    return r;
}

/** Print one paper-style profile row with a paper-reference column. */
inline void
printProfileRow(const core::Report &r, const char *paper_ref)
{
    std::printf("%-22s %6.0f | %5.1f %5.1f %5.1f %5.1f %5.1f %5.1f | "
                "%7.0f %7.0f | paper: %s\n",
                r.label.c_str(), r.mbps, r.hypPct, r.drvOsPct, r.drvUserPct,
                r.guestOsPct, r.guestUserPct, r.idlePct, r.drvIntrPerSec,
                r.guestIntrPerSec, paper_ref);
}

inline void
printProfileHeader()
{
    std::printf("%-22s %6s | %5s %5s %5s %5s %5s %5s | %7s %7s |\n",
                "config", "Mb/s", "Hyp", "DrvOS", "DrvU", "GstOS", "GstU",
                "Idle", "drvIrq", "gstIrq");
}

} // namespace cdna::bench

#endif // CDNA_BENCH_BENCH_UTIL_HH
