/**
 * @file
 * Shared helpers for the experiment-reproduction benchmark binaries.
 *
 * Each bench binary regenerates one table or figure of the paper and
 * prints the simulated results next to the paper's published numbers
 * so the shape comparison is immediate.
 */

#ifndef CDNA_BENCH_BENCH_UTIL_HH
#define CDNA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "core/system.hh"

namespace cdna::bench {

inline constexpr sim::Time kWarmup = sim::milliseconds(100);
inline constexpr sim::Time kMeasure = sim::milliseconds(400);

/** Run one configuration and return its report. */
inline core::Report
runConfig(core::SystemConfig cfg, sim::Time warmup = kWarmup,
          sim::Time measure = kMeasure)
{
    core::System sys(std::move(cfg));
    return sys.run(warmup, measure);
}

/** Print one paper-style profile row with a paper-reference column. */
inline void
printProfileRow(const core::Report &r, const char *paper_ref)
{
    std::printf("%-22s %6.0f | %5.1f %5.1f %5.1f %5.1f %5.1f %5.1f | "
                "%7.0f %7.0f | paper: %s\n",
                r.label.c_str(), r.mbps, r.hypPct, r.drvOsPct, r.drvUserPct,
                r.guestOsPct, r.guestUserPct, r.idlePct, r.drvIntrPerSec,
                r.guestIntrPerSec, paper_ref);
}

inline void
printProfileHeader()
{
    std::printf("%-22s %6s | %5s %5s %5s %5s %5s %5s | %7s %7s |\n",
                "config", "Mb/s", "Hyp", "DrvOS", "DrvU", "GstOS", "GstU",
                "Idle", "drvIrq", "gstIrq");
}

} // namespace cdna::bench

#endif // CDNA_BENCH_BENCH_UTIL_HH
