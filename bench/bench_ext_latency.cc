/**
 * @file
 * Extension experiment: end-to-end latency under load.
 *
 * The paper evaluates throughput and CPU efficiency; latency is the
 * natural companion metric for the architecture comparison (and the
 * reason user-level networking -- CDNA's ancestor, section 6 -- cares
 * about OS bypass).  This bench reports mean/p50/p99 data-frame latency
 * for the software-virtualized and CDNA paths at increasing guest
 * counts, both directions.
 *
 * Expectation: CDNA's latency stays near the wire+coalescing floor
 * because packets cross one driver and one (batched) hypercall, while
 * Xen's grows with driver-domain queueing as the CPU saturates.
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

namespace {

void
printDirection(const sim::SweepResult &result, bool transmit)
{
    std::printf("--- %s ---\n", transmit ? "transmit (stack -> peer)"
                                         : "receive (wire -> user)");
    std::printf("%6s | %26s | %26s\n", "guests",
                "xen mean/p50/p99 (us)", "cdna mean/p50/p99 (us)");
    const char *dir = transmit ? "/tx" : "/rx";
    for (std::uint32_t g : {1u, 4u, 8u}) {
        std::string suffix = "/g" + std::to_string(g) + dir;
        const auto &xen = cellReport(result, "xen" + suffix);
        const auto &cdna = cellReport(result, "cdna" + suffix);
        std::printf("%6u | %8.0f %8.0f %8.0f | %8.0f %8.0f %8.0f\n", g,
                    xen.latencyMeanUs, xen.latencyP50Us, xen.latencyP99Us,
                    cdna.latencyMeanUs, cdna.latencyP50Us,
                    cdna.latencyP99Us);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    auto result = runBenchSweep(sim::presets::latency(), opt);
    std::printf("=== Extension: end-to-end latency under load, "
                "2 NICs ===\n");
    printDirection(result, true);
    printDirection(result, false);
    return 0;
}
