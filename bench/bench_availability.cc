/**
 * @file
 * Extension: failure-domain availability under driver-domain crash and
 * NIC firmware reboot.
 *
 * The paper's core reliability argument (section 3.5) is that CDNA
 * shrinks the driver domain out of the data path: a dom0 crash that
 * stalls every Xen guest until netback restarts and the frontends
 * reconnect leaves CDNA guests untouched, and a NIC firmware reboot is
 * survived by reconciling per-context state against the
 * hypervisor-validated view rather than restarting guests.  This bench
 * runs two TCP guests per configuration and reports per-guest downtime,
 * time-to-first-packet after the fault, and packets lost to the outage.
 * The swpt column sits between the two: its validator is
 * hypervisor-resident (a dom0 kill stalls it -- every guest down, like
 * Xen) and its one shared NIC makes a firmware reboot a full device
 * reset rather than CDNA's per-context reconciliation.
 *
 * Expected shape: every Xen guest sees >10 ms downtime under a dom0
 * kill (reboot + backoff reconnect), while every CDNA guest reports
 * zero downtime under both faults; goodput for the fault cells stays
 * within the outage window of the healthy cells.
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    opt.observeCell = "xen/domkill";
    auto result = runBenchSweep(sim::presets::availability(), opt);

    std::printf("=== Availability: dom0 crash / firmware reboot at "
                "t=150 ms (2 TCP guests) ===\n");
    std::printf("%-16s %10s %9s %12s %12s %10s %8s\n", "cell", "good Mb/s",
                "reconn", "downtime ms", "ttfp ms", "quarantine", "lost");
    for (const char *series : {"xen", "xen-rice", "cdna", "swpt"}) {
        for (const char *fault : {"healthy", "domkill", "fwreboot"}) {
            std::string cell = std::string(series) + "/" + fault;
            const auto &r = cellReport(result, cell);
            char down[32] = "-", ttfp[32] = "-";
            if (!r.perGuestDowntimeUs.empty()) {
                std::snprintf(down, sizeof(down), "%.1f/%.1f",
                              r.perGuestDowntimeUs[0] / 1000.0,
                              r.perGuestDowntimeUs.back() / 1000.0);
                std::snprintf(ttfp, sizeof(ttfp), "%.1f/%.1f",
                              r.perGuestTtfpUs[0] / 1000.0,
                              r.perGuestTtfpUs.back() / 1000.0);
            }
            std::printf("%-16s %10.0f %9llu %12s %12s %7llu/%-3llu %8llu\n",
                        cell.c_str(), r.mbps,
                        static_cast<unsigned long long>(r.feReconnects),
                        down, ttfp,
                        static_cast<unsigned long long>(r.pagesQuarantined),
                        static_cast<unsigned long long>(
                            r.quarantineReleased),
                        static_cast<unsigned long long>(
                            r.outagePacketsLost));
        }
    }

    const auto &xenKill = cellReport(result, "xen/domkill");
    const auto &cdnaKill = cellReport(result, "cdna/domkill");
    double worst_xen = 0.0, worst_cdna = 0.0;
    for (double d : xenKill.perGuestDowntimeUs)
        worst_xen = std::max(worst_xen, d);
    for (double d : cdnaKill.perGuestDowntimeUs)
        worst_cdna = std::max(worst_cdna, d);
    std::printf("\nWorst-guest downtime under dom0 kill: xen %.1f ms, "
                "cdna %.1f ms (paper: CDNA removes the driver domain "
                "from the data path)\n",
                worst_xen / 1000.0, worst_cdna / 1000.0);
    return 0;
}
