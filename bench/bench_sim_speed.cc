/**
 * @file
 * Self-benchmark for the discrete-event kernel hot path.
 *
 * Compares the current EventQueue (pooled nodes, intrusive 4-ary heap,
 * inline-storage callbacks) against the implementation it replaced
 * (std::priority_queue of handles + std::unordered_map<EventId,
 * std::function>), which is embedded below verbatim as
 * LegacyEventQueue so the comparison stays honest as the current queue
 * evolves.
 *
 * Three workloads bracket what the simulator does between I/O events:
 *   - chains:      self-perpetuating event chains (the DMA/wire
 *                  pipelines), 24-byte captures
 *   - fat_capture: the same chains with a 48-byte capture -- past
 *                  libstdc++'s std::function inline storage (16 bytes)
 *                  but within InplaceCallback's 48
 *   - timer_cancel: the watchdog pattern -- schedule a timeout, cancel
 *                  it, reschedule -- where cancellation cost dominates
 *
 * Writes BENCH_sim_speed.json (schema_version 1): per-workload
 * events/sec for both queues plus the geometric-mean speedup.  The CI
 * artifact and the acceptance criterion read the "speedup" field.
 *
 * Usage: bench_sim_speed [--events N] [--out FILE]
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/report.hh"
#include "sim/assert.hh"
#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace {

using cdna::sim::Time;

/**
 * The event queue this PR replaced, kept as the benchmark baseline:
 * std::function callbacks in an unordered_map keyed by a monotonically
 * increasing EventId, ordered by a priority_queue of (when, id) handles;
 * cancellation erases the map entry and lets the stale handle surface
 * lazily at the heap top.
 */
class LegacyEventQueue
{
  public:
    using EventId = std::uint64_t;
    using Callback = std::function<void()>;

    Time now() const { return now_; }

    EventId
    schedule(Time delay, Callback fn)
    {
        SIM_ASSERT(delay >= 0, "negative event delay");
        return scheduleAt(now_ + delay, std::move(fn));
    }

    EventId
    scheduleAt(Time when, Callback fn)
    {
        SIM_ASSERT(when >= now_, "scheduling into the past");
        EventId id = nextId_++;
        heap_.push(HeapEntry{when, id});
        live_.emplace(id, std::move(fn));
        return id;
    }

    bool cancel(EventId id) { return live_.erase(id) != 0; }

    bool empty() const { return live_.empty(); }

    bool
    runOne()
    {
        while (!heap_.empty()) {
            HeapEntry top = heap_.top();
            heap_.pop();
            auto it = live_.find(top.id);
            if (it == live_.end())
                continue; // cancelled
            Callback fn = std::move(it->second);
            live_.erase(it);
            now_ = top.when;
            ++dispatched_;
            fn();
            return true;
        }
        return false;
    }

    std::uint64_t
    run(std::uint64_t max_events = UINT64_MAX)
    {
        std::uint64_t n = 0;
        while (n < max_events && runOne())
            ++n;
        return n;
    }

    std::uint64_t dispatchedCount() const { return dispatched_; }

  private:
    struct HeapEntry
    {
        Time when;
        EventId id;

        bool
        operator>(const HeapEntry &o) const
        {
            return when != o.when ? when > o.when : id > o.id;
        }
    };

    Time now_ = 0;
    EventId nextId_ = 1;
    std::uint64_t dispatched_ = 0;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>> heap_;
    std::unordered_map<EventId, Callback> live_;
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

constexpr int kChains = 16;

/** A self-perpetuating event: 24-byte capture (queue, budget, period). */
template <typename Queue>
struct ChainEvent
{
    Queue *q;
    std::uint64_t *remaining;
    Time period;

    void
    operator()() const
    {
        if (*remaining == 0)
            return;
        --*remaining;
        q->schedule(period, *this);
    }
};

/**
 * Workload 1: @c kChains interleaved chains, each with a distinct
 * period so heap order keeps changing instead of degenerating to FIFO.
 */
template <typename Queue>
double
benchChains(std::uint64_t events)
{
    Queue q;
    std::uint64_t remaining = events;
    auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < kChains; ++c)
        ChainEvent<Queue>{&q, &remaining, 700 + 13 * c}();
    q.run();
    double dt = secondsSince(t0);
    return static_cast<double>(q.dispatchedCount()) / dt;
}

/** As ChainEvent but padded to 48 bytes: heap-allocates as a
 * std::function, stays inline in an InplaceCallback. */
template <typename Queue>
struct FatChainEvent
{
    Queue *q;
    std::uint64_t *remaining;
    Time period;
    std::uint64_t payload[3];

    void
    operator()() const
    {
        if (*remaining == 0)
            return;
        --*remaining;
        FatChainEvent next = *this;
        next.payload[0] += payload[1] ^ payload[2];
        q->schedule(period, next);
    }
};

/** Workload 2: the same chains carrying per-event payload. */
template <typename Queue>
double
benchFatCapture(std::uint64_t events)
{
    Queue q;
    std::uint64_t remaining = events;
    auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < kChains; ++c)
        FatChainEvent<Queue>{&q,
                             &remaining,
                             700 + 13 * c,
                             {static_cast<std::uint64_t>(c), 3, 5}}();
    q.run();
    double dt = secondsSince(t0);
    return static_cast<double>(q.dispatchedCount()) / dt;
}

/**
 * Workload 3: the watchdog pattern.  A driving chain fires every tick;
 * each firing cancels the pending timeout (which never runs) and arms a
 * fresh one further out, so every dispatched event also costs one
 * schedule + one cancel -- the NIC DMA-engine and coalescing-timer
 * shape, and the worst case for the legacy lazy-cancellation design.
 */
template <typename Queue>
struct WatchdogState
{
    Queue *q;
    std::uint64_t remaining;
    std::uint64_t timeout = 0;
    bool armed = false;
};

template <typename Queue>
struct WatchdogTick
{
    WatchdogState<Queue> *s;

    void
    operator()() const
    {
        if (s->armed)
            s->q->cancel(s->timeout);
        s->armed = false;
        if (s->remaining == 0)
            return;
        --s->remaining;
        s->timeout = s->q->schedule(
            50'000, [] { SIM_ASSERT(false, "watchdog timeout fired"); });
        s->armed = true;
        s->q->schedule(1'000, *this);
    }
};

template <typename Queue>
double
benchTimerCancel(std::uint64_t events)
{
    Queue q;
    WatchdogState<Queue> s{&q, events};
    auto t0 = std::chrono::steady_clock::now();
    WatchdogTick<Queue>{&s}();
    q.run();
    double dt = secondsSince(t0);
    return static_cast<double>(q.dispatchedCount()) / dt;
}

struct WorkloadResult
{
    const char *name;
    double legacy;
    double current;

    double speedup() const { return current / legacy; }
};

/** Best-of-@p reps events/sec, hiding scheduler noise on a shared box. */
template <typename Fn>
double
bestOf(int reps, Fn fn, std::uint64_t events)
{
    double best = 0;
    for (int i = 0; i < reps; ++i)
        best = std::max(best, fn(events));
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t events = 2'000'000;
    std::string out = "BENCH_sim_speed.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
            events = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--events N] [--out FILE]\n", argv[0]);
            return 1;
        }
    }

    using Cur = cdna::sim::EventQueue;
    constexpr int kReps = 3;

    // Warm up allocators and caches on a small run of each shape.
    benchChains<Cur>(events / 20);
    benchChains<LegacyEventQueue>(events / 20);

    WorkloadResult results[] = {
        {"chains",
         bestOf(kReps, benchChains<LegacyEventQueue>, events),
         bestOf(kReps, benchChains<Cur>, events)},
        {"fat_capture",
         bestOf(kReps, benchFatCapture<LegacyEventQueue>, events),
         bestOf(kReps, benchFatCapture<Cur>, events)},
        {"timer_cancel",
         bestOf(kReps, benchTimerCancel<LegacyEventQueue>, events / 2),
         bestOf(kReps, benchTimerCancel<Cur>, events / 2)},
    };

    std::printf("=== Event-queue hot-path benchmark (%llu events/run, "
                "best of %d) ===\n",
                static_cast<unsigned long long>(events), kReps);
    std::printf("%-14s %16s %16s %10s\n", "workload", "legacy ev/s",
                "current ev/s", "speedup");
    double logSum = 0;
    for (const auto &r : results) {
        std::printf("%-14s %16.0f %16.0f %9.2fx\n", r.name, r.legacy,
                    r.current, r.speedup());
        logSum += std::log(r.speedup());
    }
    double geomean = std::exp(logSum / std::size(results));
    std::printf("%-14s %16s %16s %9.2fx\n", "geomean", "", "", geomean);

    std::ofstream f(out, std::ios::binary);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    f << "{\n";
    f << "  \"schema_version\": " << cdna::core::kReportSchemaVersion
      << ",\n";
    f << "  \"benchmark\": \"sim_speed\",\n";
    f << "  \"events_per_run\": " << events << ",\n";
    f << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < std::size(results); ++i) {
        const auto &r = results[i];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"legacy_events_per_sec\": "
                      "%.0f, \"current_events_per_sec\": %.0f, "
                      "\"speedup\": %.4f}%s\n",
                      r.name, r.legacy, r.current, r.speedup(),
                      i + 1 < std::size(results) ? "," : "");
        f << buf;
    }
    f << "  ],\n";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  \"speedup\": %.4f\n", geomean);
    f << buf;
    f << "}\n";
    std::printf("wrote %s\n", out.c_str());
    return geomean >= 1.0 ? 0 : 2;
}
