/**
 * @file
 * Extension experiment: RPC tail latency under open-loop load.
 *
 * The paper evaluates throughput and CPU efficiency; request/response
 * tail latency is the companion metric that motivates concurrent direct
 * access (and the user-level networking lineage of section 6).  Each
 * guest issues 512 B requests answered with 8 KB responses under
 * Poisson arrivals, and the report carries p50/p99/p999 round-trip
 * latency plus timeout counts.  The grid crosses {xen, cdna,
 * cdna-oversub, swpt} with offered load and the availability faults.
 *
 * Expected shape: CDNA's tail stays near the wire+coalescing floor at
 * every load while Xen's p99/p999 inflate with driver-domain queueing;
 * a dom0 kill times out in-flight Xen requests but leaves CDNA's
 * datapath (and its tail) untouched; oversubscribing contexts 2:1
 * halves achieved throughput as paged-out guests miss their deadlines.
 */

#include "bench_util.hh"

using namespace cdna;
using namespace cdna::bench;

int
main(int argc, char **argv)
{
    auto opt = parseBenchArgs(argc, argv);
    opt.observeCell = "xen/load10k/healthy";
    auto result = runBenchSweep(sim::presets::latency(), opt);

    std::printf("=== Extension: RPC tail latency (512 B -> 8 KB, "
                "Poisson open loop, 4 guests) ===\n");
    std::printf("%-28s %9s %9s %8s %8s %8s %8s\n", "cell", "off rps",
                "ach rps", "p50 us", "p99 us", "p999 us", "timeout");
    for (const char *series : {"xen", "cdna", "cdna-oversub", "swpt"}) {
        for (const char *load : {"load2k", "load10k"}) {
            for (const char *fault : {"healthy", "domkill", "fwreboot"}) {
                std::string cell = std::string(series) + "/" + load + "/" +
                                   fault;
                const auto &r = cellReport(result, cell);
                std::printf("%-28s %9.0f %9.0f %8.0f %8.0f %8.0f %8llu\n",
                            cell.c_str(), r.rpcOfferedRps, r.rpcAchievedRps,
                            r.rpcLatP50Us, r.rpcLatP99Us, r.rpcLatP999Us,
                            static_cast<unsigned long long>(r.rpcTimeouts));
            }
        }
    }

    const auto &xen = cellReport(result, "xen/load10k/healthy");
    const auto &cdna = cellReport(result, "cdna/load10k/healthy");
    const auto &xenKill = cellReport(result, "xen/load10k/domkill");
    const auto &cdnaKill = cellReport(result, "cdna/load10k/domkill");
    std::printf("\nAt 10k rps: xen p99/p999 %.0f/%.0f us vs cdna "
                "%.0f/%.0f us (%.1fx/%.1fx); dom0 kill: xen %llu "
                "timeouts, cdna %llu (datapath bypasses the driver "
                "domain)\n",
                xen.rpcLatP99Us, xen.rpcLatP999Us, cdna.rpcLatP99Us,
                cdna.rpcLatP999Us, xen.rpcLatP99Us / cdna.rpcLatP99Us,
                xen.rpcLatP999Us / cdna.rpcLatP999Us,
                static_cast<unsigned long long>(xenKill.rpcTimeouts),
                static_cast<unsigned long long>(cdnaKill.rpcTimeouts));
    return 0;
}
