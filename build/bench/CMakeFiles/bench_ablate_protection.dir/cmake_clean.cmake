file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_protection.dir/bench_ablate_protection.cc.o"
  "CMakeFiles/bench_ablate_protection.dir/bench_ablate_protection.cc.o.d"
  "bench_ablate_protection"
  "bench_ablate_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
