# Empty compiler generated dependencies file for bench_ablate_protection.
# This may be replaced when dependencies are built.
