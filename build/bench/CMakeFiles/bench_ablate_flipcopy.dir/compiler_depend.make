# Empty compiler generated dependencies file for bench_ablate_flipcopy.
# This may be replaced when dependencies are built.
