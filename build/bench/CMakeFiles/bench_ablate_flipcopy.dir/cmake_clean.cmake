file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_flipcopy.dir/bench_ablate_flipcopy.cc.o"
  "CMakeFiles/bench_ablate_flipcopy.dir/bench_ablate_flipcopy.cc.o.d"
  "bench_ablate_flipcopy"
  "bench_ablate_flipcopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_flipcopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
