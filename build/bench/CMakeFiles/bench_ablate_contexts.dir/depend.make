# Empty dependencies file for bench_ablate_contexts.
# This may be replaced when dependencies are built.
