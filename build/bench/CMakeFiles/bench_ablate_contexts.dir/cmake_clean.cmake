file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_contexts.dir/bench_ablate_contexts.cc.o"
  "CMakeFiles/bench_ablate_contexts.dir/bench_ablate_contexts.cc.o.d"
  "bench_ablate_contexts"
  "bench_ablate_contexts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_contexts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
