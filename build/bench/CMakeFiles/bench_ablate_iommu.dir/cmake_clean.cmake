file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_iommu.dir/bench_ablate_iommu.cc.o"
  "CMakeFiles/bench_ablate_iommu.dir/bench_ablate_iommu.cc.o.d"
  "bench_ablate_iommu"
  "bench_ablate_iommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
