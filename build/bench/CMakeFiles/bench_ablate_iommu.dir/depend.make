# Empty dependencies file for bench_ablate_iommu.
# This may be replaced when dependencies are built.
