# Empty compiler generated dependencies file for bench_ablate_coalesce.
# This may be replaced when dependencies are built.
