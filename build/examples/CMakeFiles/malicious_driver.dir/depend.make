# Empty dependencies file for malicious_driver.
# This may be replaced when dependencies are built.
