file(REMOVE_RECURSE
  "CMakeFiles/malicious_driver.dir/malicious_driver.cpp.o"
  "CMakeFiles/malicious_driver.dir/malicious_driver.cpp.o.d"
  "malicious_driver"
  "malicious_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malicious_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
