file(REMOVE_RECURSE
  "CMakeFiles/cdna_sim_cli.dir/cdna_sim.cpp.o"
  "CMakeFiles/cdna_sim_cli.dir/cdna_sim.cpp.o.d"
  "cdna_sim"
  "cdna_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdna_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
