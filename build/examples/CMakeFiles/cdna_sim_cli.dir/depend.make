# Empty dependencies file for cdna_sim_cli.
# This may be replaced when dependencies are built.
