
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/attack_test.cc" "tests/CMakeFiles/cdna_tests.dir/attack_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/attack_test.cc.o.d"
  "/root/repo/tests/cdna_driver_test.cc" "tests/CMakeFiles/cdna_tests.dir/cdna_driver_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/cdna_driver_test.cc.o.d"
  "/root/repo/tests/cdna_nic_test.cc" "tests/CMakeFiles/cdna_tests.dir/cdna_nic_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/cdna_nic_test.cc.o.d"
  "/root/repo/tests/cli_test.cc" "tests/CMakeFiles/cdna_tests.dir/cli_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/cli_test.cc.o.d"
  "/root/repo/tests/cpu_test.cc" "tests/CMakeFiles/cdna_tests.dir/cpu_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/cpu_test.cc.o.d"
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/cdna_tests.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/fuzz_test.cc.o.d"
  "/root/repo/tests/latency_test.cc" "tests/CMakeFiles/cdna_tests.dir/latency_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/latency_test.cc.o.d"
  "/root/repo/tests/mem_test.cc" "tests/CMakeFiles/cdna_tests.dir/mem_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/mem_test.cc.o.d"
  "/root/repo/tests/misc_test.cc" "tests/CMakeFiles/cdna_tests.dir/misc_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/misc_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/cdna_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/nic_test.cc" "tests/CMakeFiles/cdna_tests.dir/nic_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/nic_test.cc.o.d"
  "/root/repo/tests/protection_test.cc" "tests/CMakeFiles/cdna_tests.dir/protection_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/protection_test.cc.o.d"
  "/root/repo/tests/revocation_test.cc" "tests/CMakeFiles/cdna_tests.dir/revocation_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/revocation_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/cdna_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/stack_test.cc" "tests/CMakeFiles/cdna_tests.dir/stack_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/stack_test.cc.o.d"
  "/root/repo/tests/system_test.cc" "tests/CMakeFiles/cdna_tests.dir/system_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/system_test.cc.o.d"
  "/root/repo/tests/vmm_test.cc" "tests/CMakeFiles/cdna_tests.dir/vmm_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/vmm_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/cdna_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/cdna_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cdna_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cdna_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/cdna_os.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/cdna_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cdna_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/cdna_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/cdna_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cdna_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cdna_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
