# Empty compiler generated dependencies file for cdna_tests.
# This may be replaced when dependencies are built.
