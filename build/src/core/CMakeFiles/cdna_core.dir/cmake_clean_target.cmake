file(REMOVE_RECURSE
  "libcdna_core.a"
)
