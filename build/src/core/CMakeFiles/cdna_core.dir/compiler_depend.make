# Empty compiler generated dependencies file for cdna_core.
# This may be replaced when dependencies are built.
