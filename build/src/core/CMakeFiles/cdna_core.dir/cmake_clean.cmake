file(REMOVE_RECURSE
  "CMakeFiles/cdna_core.dir/cdna_driver.cc.o"
  "CMakeFiles/cdna_core.dir/cdna_driver.cc.o.d"
  "CMakeFiles/cdna_core.dir/cdna_nic.cc.o"
  "CMakeFiles/cdna_core.dir/cdna_nic.cc.o.d"
  "CMakeFiles/cdna_core.dir/cli.cc.o"
  "CMakeFiles/cdna_core.dir/cli.cc.o.d"
  "CMakeFiles/cdna_core.dir/dma_protection.cc.o"
  "CMakeFiles/cdna_core.dir/dma_protection.cc.o.d"
  "CMakeFiles/cdna_core.dir/report.cc.o"
  "CMakeFiles/cdna_core.dir/report.cc.o.d"
  "CMakeFiles/cdna_core.dir/system.cc.o"
  "CMakeFiles/cdna_core.dir/system.cc.o.d"
  "libcdna_core.a"
  "libcdna_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdna_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
