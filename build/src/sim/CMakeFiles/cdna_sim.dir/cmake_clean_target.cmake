file(REMOVE_RECURSE
  "libcdna_sim.a"
)
