file(REMOVE_RECURSE
  "CMakeFiles/cdna_sim.dir/assert.cc.o"
  "CMakeFiles/cdna_sim.dir/assert.cc.o.d"
  "CMakeFiles/cdna_sim.dir/event_queue.cc.o"
  "CMakeFiles/cdna_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/cdna_sim.dir/logger.cc.o"
  "CMakeFiles/cdna_sim.dir/logger.cc.o.d"
  "CMakeFiles/cdna_sim.dir/rng.cc.o"
  "CMakeFiles/cdna_sim.dir/rng.cc.o.d"
  "CMakeFiles/cdna_sim.dir/sim_object.cc.o"
  "CMakeFiles/cdna_sim.dir/sim_object.cc.o.d"
  "CMakeFiles/cdna_sim.dir/stats.cc.o"
  "CMakeFiles/cdna_sim.dir/stats.cc.o.d"
  "CMakeFiles/cdna_sim.dir/time.cc.o"
  "CMakeFiles/cdna_sim.dir/time.cc.o.d"
  "libcdna_sim.a"
  "libcdna_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdna_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
