# Empty compiler generated dependencies file for cdna_sim.
# This may be replaced when dependencies are built.
