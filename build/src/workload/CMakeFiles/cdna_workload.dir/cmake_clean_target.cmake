file(REMOVE_RECURSE
  "libcdna_workload.a"
)
