
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/traffic_app.cc" "src/workload/CMakeFiles/cdna_workload.dir/traffic_app.cc.o" "gcc" "src/workload/CMakeFiles/cdna_workload.dir/traffic_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cdna_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cdna_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/cdna_os.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/cdna_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cdna_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/cdna_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/cdna_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
