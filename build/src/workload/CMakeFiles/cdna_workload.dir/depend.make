# Empty dependencies file for cdna_workload.
# This may be replaced when dependencies are built.
