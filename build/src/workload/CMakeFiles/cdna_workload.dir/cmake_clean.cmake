file(REMOVE_RECURSE
  "CMakeFiles/cdna_workload.dir/traffic_app.cc.o"
  "CMakeFiles/cdna_workload.dir/traffic_app.cc.o.d"
  "libcdna_workload.a"
  "libcdna_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdna_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
