# Empty compiler generated dependencies file for cdna_workload.
# This may be replaced when dependencies are built.
