file(REMOVE_RECURSE
  "CMakeFiles/cdna_os.dir/native_driver.cc.o"
  "CMakeFiles/cdna_os.dir/native_driver.cc.o.d"
  "CMakeFiles/cdna_os.dir/net_stack.cc.o"
  "CMakeFiles/cdna_os.dir/net_stack.cc.o.d"
  "CMakeFiles/cdna_os.dir/xen_net.cc.o"
  "CMakeFiles/cdna_os.dir/xen_net.cc.o.d"
  "libcdna_os.a"
  "libcdna_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdna_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
