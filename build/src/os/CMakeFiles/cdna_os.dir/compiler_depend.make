# Empty compiler generated dependencies file for cdna_os.
# This may be replaced when dependencies are built.
