file(REMOVE_RECURSE
  "libcdna_os.a"
)
