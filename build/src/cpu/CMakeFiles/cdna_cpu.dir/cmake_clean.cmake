file(REMOVE_RECURSE
  "CMakeFiles/cdna_cpu.dir/sim_cpu.cc.o"
  "CMakeFiles/cdna_cpu.dir/sim_cpu.cc.o.d"
  "libcdna_cpu.a"
  "libcdna_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdna_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
