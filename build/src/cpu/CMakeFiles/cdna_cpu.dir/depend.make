# Empty dependencies file for cdna_cpu.
# This may be replaced when dependencies are built.
