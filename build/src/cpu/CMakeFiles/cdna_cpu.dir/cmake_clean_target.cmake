file(REMOVE_RECURSE
  "libcdna_cpu.a"
)
