file(REMOVE_RECURSE
  "CMakeFiles/cdna_net.dir/eth_link.cc.o"
  "CMakeFiles/cdna_net.dir/eth_link.cc.o.d"
  "CMakeFiles/cdna_net.dir/packet.cc.o"
  "CMakeFiles/cdna_net.dir/packet.cc.o.d"
  "CMakeFiles/cdna_net.dir/traffic_peer.cc.o"
  "CMakeFiles/cdna_net.dir/traffic_peer.cc.o.d"
  "libcdna_net.a"
  "libcdna_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdna_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
