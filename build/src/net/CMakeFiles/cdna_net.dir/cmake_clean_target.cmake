file(REMOVE_RECURSE
  "libcdna_net.a"
)
