# Empty compiler generated dependencies file for cdna_net.
# This may be replaced when dependencies are built.
