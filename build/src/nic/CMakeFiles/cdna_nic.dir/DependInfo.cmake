
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nic/desc_ring.cc" "src/nic/CMakeFiles/cdna_nic.dir/desc_ring.cc.o" "gcc" "src/nic/CMakeFiles/cdna_nic.dir/desc_ring.cc.o.d"
  "/root/repo/src/nic/firmware.cc" "src/nic/CMakeFiles/cdna_nic.dir/firmware.cc.o" "gcc" "src/nic/CMakeFiles/cdna_nic.dir/firmware.cc.o.d"
  "/root/repo/src/nic/intel_nic.cc" "src/nic/CMakeFiles/cdna_nic.dir/intel_nic.cc.o" "gcc" "src/nic/CMakeFiles/cdna_nic.dir/intel_nic.cc.o.d"
  "/root/repo/src/nic/nic_base.cc" "src/nic/CMakeFiles/cdna_nic.dir/nic_base.cc.o" "gcc" "src/nic/CMakeFiles/cdna_nic.dir/nic_base.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cdna_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cdna_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cdna_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
