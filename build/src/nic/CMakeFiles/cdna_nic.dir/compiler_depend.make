# Empty compiler generated dependencies file for cdna_nic.
# This may be replaced when dependencies are built.
