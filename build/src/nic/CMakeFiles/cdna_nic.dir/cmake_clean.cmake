file(REMOVE_RECURSE
  "CMakeFiles/cdna_nic.dir/desc_ring.cc.o"
  "CMakeFiles/cdna_nic.dir/desc_ring.cc.o.d"
  "CMakeFiles/cdna_nic.dir/firmware.cc.o"
  "CMakeFiles/cdna_nic.dir/firmware.cc.o.d"
  "CMakeFiles/cdna_nic.dir/intel_nic.cc.o"
  "CMakeFiles/cdna_nic.dir/intel_nic.cc.o.d"
  "CMakeFiles/cdna_nic.dir/nic_base.cc.o"
  "CMakeFiles/cdna_nic.dir/nic_base.cc.o.d"
  "libcdna_nic.a"
  "libcdna_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdna_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
