file(REMOVE_RECURSE
  "libcdna_nic.a"
)
