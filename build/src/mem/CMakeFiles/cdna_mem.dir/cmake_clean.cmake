file(REMOVE_RECURSE
  "CMakeFiles/cdna_mem.dir/dma_engine.cc.o"
  "CMakeFiles/cdna_mem.dir/dma_engine.cc.o.d"
  "CMakeFiles/cdna_mem.dir/grant_table.cc.o"
  "CMakeFiles/cdna_mem.dir/grant_table.cc.o.d"
  "CMakeFiles/cdna_mem.dir/iommu.cc.o"
  "CMakeFiles/cdna_mem.dir/iommu.cc.o.d"
  "CMakeFiles/cdna_mem.dir/pci_bus.cc.o"
  "CMakeFiles/cdna_mem.dir/pci_bus.cc.o.d"
  "CMakeFiles/cdna_mem.dir/phys_memory.cc.o"
  "CMakeFiles/cdna_mem.dir/phys_memory.cc.o.d"
  "libcdna_mem.a"
  "libcdna_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdna_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
