# Empty compiler generated dependencies file for cdna_mem.
# This may be replaced when dependencies are built.
