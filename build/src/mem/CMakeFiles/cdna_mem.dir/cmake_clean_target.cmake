file(REMOVE_RECURSE
  "libcdna_mem.a"
)
