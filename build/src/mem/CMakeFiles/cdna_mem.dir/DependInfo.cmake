
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/dma_engine.cc" "src/mem/CMakeFiles/cdna_mem.dir/dma_engine.cc.o" "gcc" "src/mem/CMakeFiles/cdna_mem.dir/dma_engine.cc.o.d"
  "/root/repo/src/mem/grant_table.cc" "src/mem/CMakeFiles/cdna_mem.dir/grant_table.cc.o" "gcc" "src/mem/CMakeFiles/cdna_mem.dir/grant_table.cc.o.d"
  "/root/repo/src/mem/iommu.cc" "src/mem/CMakeFiles/cdna_mem.dir/iommu.cc.o" "gcc" "src/mem/CMakeFiles/cdna_mem.dir/iommu.cc.o.d"
  "/root/repo/src/mem/pci_bus.cc" "src/mem/CMakeFiles/cdna_mem.dir/pci_bus.cc.o" "gcc" "src/mem/CMakeFiles/cdna_mem.dir/pci_bus.cc.o.d"
  "/root/repo/src/mem/phys_memory.cc" "src/mem/CMakeFiles/cdna_mem.dir/phys_memory.cc.o" "gcc" "src/mem/CMakeFiles/cdna_mem.dir/phys_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cdna_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
