file(REMOVE_RECURSE
  "libcdna_vmm.a"
)
