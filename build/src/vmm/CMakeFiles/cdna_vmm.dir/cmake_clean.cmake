file(REMOVE_RECURSE
  "CMakeFiles/cdna_vmm.dir/hypervisor.cc.o"
  "CMakeFiles/cdna_vmm.dir/hypervisor.cc.o.d"
  "libcdna_vmm.a"
  "libcdna_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdna_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
