# Empty dependencies file for cdna_vmm.
# This may be replaced when dependencies are built.
