/**
 * @file
 * `cdna_sim`: command-line front end for the simulator.
 *
 *   cdna_sim --mode cdna --guests 8 --direction rx --seconds 1
 *   cdna_sim --mode xen --nic intel --guests 24 --json
 *   cdna_sim --mode cdna --no-protection --iommu context
 *
 * Prints the paper-style report row (or JSON with --json) for any
 * configuration, making parameter sweeps scriptable.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/cli.hh"

using namespace cdna;

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::string error;
    auto opt = core::parseCli(args, &error);
    if (!opt) {
        std::fprintf(stderr, "cdna_sim: %s\n%s", error.c_str(),
                     core::cliUsage().c_str());
        return 1;
    }
    if (opt->help) {
        std::printf("%s", core::cliUsage().c_str());
        return 0;
    }

    core::System sys(opt->config);
    core::ObservabilitySession obs(sys, *opt);
    core::Report r = sys.run(opt->warmup, opt->measure);
    if (!obs.close(&error)) {
        std::fprintf(stderr, "cdna_sim: %s\n", error.c_str());
        return 1;
    }

    if (opt->json) {
        std::printf("%s", core::reportToJson(r).c_str());
    } else {
        std::printf("%s\n%s\n", core::Report::header().c_str(),
                    r.row().c_str());
        std::printf("latency us (mean/p50/p99): %.0f / %.0f / %.0f   "
                    "fairness: %.2f\n",
                    r.latencyMeanUs, r.latencyP50Us, r.latencyP99Us,
                    r.fairness());
        if (r.anyFaultActivity())
            std::printf("%s\n", r.faultSummary().c_str());
    }
    return 0;
}
