/**
 * @file
 * Chaos run: the CDNA configuration under an aggressive fault plan.
 *
 * Runs the same 4-guest CDNA transmit workload twice -- once clean,
 * once with frames dropped/corrupted/duplicated on the wire, DMA
 * completions delayed, one firmware stall with a watchdog reset, and
 * one guest killed mid-transfer -- and prints both report rows plus the
 * fault/recovery counters.  The interesting property is what does NOT
 * happen: no DMA protection violation, no hung simulation, and the
 * surviving guests keep their share of the wire.
 *
 * Exits nonzero if any DMA protection violation is recorded, so CI can
 * run this binary as a smoke test (see the `chaos` job in ci.yml).
 *
 *   ./build/examples/chaos [--seed N] [--json] [observability flags]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/fault_plan.hh"
#include "core/system.hh"

using namespace cdna;

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::string error;
    auto opt = core::parseCli(args, &error);
    if (!opt) {
        std::fprintf(stderr, "chaos: %s\n%s", error.c_str(),
                     core::cliUsage().c_str());
        return 1;
    }
    if (opt->help) {
        std::printf("%s", core::cliUsage().c_str());
        return 0;
    }

    core::FaultPlan plan;
    plan.dropping(0.01)
        .corrupting(0.002)
        .duplicating(0.005)
        .delayingDma(0.05, 25.0)
        .stallingFirmware(0, /*at_ms=*/120.0, /*dur_ms=*/5.0)
        .killingGuest(3, /*at_ms=*/250.0);

    auto base = core::SystemConfig::cdna(4).withSeed(opt->config.seed);
    sim::Time warmup = sim::milliseconds(100);
    sim::Time measure = sim::milliseconds(400);

    std::printf("%s\n", core::Report::header().c_str());

    core::System clean(core::SystemConfig(base).withLabel("cdna/clean"));
    core::Report rc = clean.run(warmup, measure);
    std::printf("%s\n", rc.row().c_str());

    core::System chaotic(core::SystemConfig(base)
                             .withLabel("cdna/chaos")
                             .withFaults(plan));
    core::ObservabilitySession obs(chaotic, *opt);
    core::Report rf = chaotic.run(warmup, measure);
    if (!obs.close(&error))
        std::fprintf(stderr, "warning: %s\n", error.c_str());
    std::printf("%s\n", rf.row().c_str());
    std::printf("%s\n", rf.faultSummary().c_str());

    if (opt->json)
        std::printf("%s", core::reportToJson(rf).c_str());

    std::printf("\nchaos goodput: %.0f Mb/s (clean %.0f); faults survived: "
                "%llu dropped, %llu corrupted, %llu duplicated, %llu DMA "
                "delays,\n%llu firmware stall(s), %llu guest kill(s); "
                "recovery: %llu watchdog timeout(s), %llu ring resync(s)\n",
                rf.mbps, rc.mbps,
                static_cast<unsigned long long>(rf.faultFramesDropped),
                static_cast<unsigned long long>(rf.faultFramesCorrupted),
                static_cast<unsigned long long>(rf.faultFramesDuplicated),
                static_cast<unsigned long long>(rf.faultDmaDelays),
                static_cast<unsigned long long>(rf.firmwareStalls),
                static_cast<unsigned long long>(rf.guestKills),
                static_cast<unsigned long long>(rf.mailboxTimeouts),
                static_cast<unsigned long long>(rf.ringResyncs));

    if (rf.dmaViolations != 0 || rc.dmaViolations != 0) {
        std::fprintf(stderr,
                     "chaos: FAIL: %llu DMA protection violation(s)\n",
                     static_cast<unsigned long long>(rf.dmaViolations +
                                                     rc.dmaViolations));
        return 1;
    }
    std::printf("chaos: OK: zero DMA protection violations\n");
    return 0;
}
