/**
 * @file
 * The malicious-driver demonstrations of paper section 3.3, narrated.
 *
 * A compromised guest device driver tries, in turn:
 *   1. enqueueing a DMA descriptor that names another guest's memory;
 *   2. freeing a page immediately after enqueueing it for DMA (hoping
 *      it gets reallocated to a victim while the NIC still writes it);
 *   3. bumping the context's producer index past the last valid
 *      descriptor so the NIC walks stale ring slots.
 *
 * Each attack is run twice: against the full CDNA protection
 * (hypervisor validation + pinning + sequence numbers) and against a
 * system with protection disabled, showing precisely what each
 * mechanism prevents.
 */

#include <cstdio>

#include "core/system.hh"

using namespace cdna;
using namespace cdna::core;

namespace {

void
banner(const char *text)
{
    std::printf("\n=== %s ===\n", text);
}

System
makeSystem(bool protection)
{
    SystemConfig cfg = SystemConfig::cdna(2).withProtection(protection);
    cfg.numNics = 1;
    return System(std::move(cfg));
}

void
attackForeignPage(bool protection)
{
    System sys = makeSystem(protection);
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(5));

    auto *attacker = sys.guestDomain(0);
    auto *victim = sys.guestDomain(1);
    CdnaNic &nic = *sys.cdnaNic(0);
    mem::PageNum victim_page = sys.mem().allocOne(victim->id());

    auto cxt = nic.allocContext(attacker->id(), net::MacAddr::fromId(666));
    nic.configureContextRings(
        *cxt, 8, mem::addrOf(sys.mem().allocOne(attacker->id())), 8,
        mem::addrOf(sys.mem().allocOne(attacker->id())));
    auto handle = sys.protection()->registerRing(nic, *cxt,
                                                 attacker->id(), true);

    DmaProtection::Request req;
    req.sg = {{mem::addrOf(victim_page), 1460}};
    std::vector<DmaProtection::Request> reqs;
    reqs.push_back(std::move(req));

    if (protection) {
        DmaProtection::Result res;
        sys.protection()->enqueue(handle, std::move(reqs),
                                  [&](DmaProtection::Result r) { res = r; });
        sys.ctx().events().runUntil(sys.ctx().now() + sim::milliseconds(5));
        std::printf("  protected:   hypercall rejected (%s), "
                    "%llu descriptors accepted, %llu violations\n",
                    vmm::faultName(res.fault),
                    static_cast<unsigned long long>(res.accepted),
                    static_cast<unsigned long long>(
                        sys.mem().violationCount()));
    } else {
        auto res = sys.protection()->enqueueDirect(handle, std::move(reqs));
        nic.pioWriteMailbox(*cxt, nic::kMboxTxProducer, res.producer);
        sys.ctx().events().runUntil(sys.ctx().now() + sim::milliseconds(5));
        std::printf("  unprotected: descriptor accepted; the NIC read "
                    "the victim's page -> %llu DMA violation(s), "
                    "%llu ghost frame(s) on the wire\n",
                    static_cast<unsigned long long>(
                        sys.mem().violationCount()),
                    static_cast<unsigned long long>(nic.ghostTxCount()));
    }
}

void
attackFreeAfterEnqueue()
{
    System sys = makeSystem(true);
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(5));

    auto *attacker = sys.guestDomain(0);
    CdnaNic &nic = *sys.cdnaNic(0);
    auto cxt = nic.allocContext(attacker->id(), net::MacAddr::fromId(667));
    nic.configureContextRings(
        *cxt, 8, mem::addrOf(sys.mem().allocOne(attacker->id())), 8,
        mem::addrOf(sys.mem().allocOne(attacker->id())));
    auto handle = sys.protection()->registerRing(nic, *cxt,
                                                 attacker->id(), true);

    mem::PageNum page = sys.mem().allocOne(attacker->id());
    DmaProtection::Request req;
    req.sg = {{mem::addrOf(page), 1460}};
    net::Packet pkt;
    pkt.dst = sys.peer(0).mac();
    pkt.payloadBytes = 1460;
    pkt.hostSg = req.sg;
    req.pkt = std::move(pkt);
    std::vector<DmaProtection::Request> reqs;
    reqs.push_back(std::move(req));

    sys.protection()->enqueue(handle, std::move(reqs),
                              [&](DmaProtection::Result r) {
        // The attack: release the page the instant it is enqueued.
        bool freed_now = sys.mem().release(page);
        std::printf("  release while DMA pending: %s (refcount %u)\n",
                    freed_now ? "FREED (bug!)" : "deferred by pin",
                    sys.mem().refCount(page));
        nic.pioWriteMailbox(*cxt, nic::kMboxTxProducer, r.producer);
    });
    sys.ctx().events().runUntil(sys.ctx().now() + sim::milliseconds(10));
    std::printf("  after DMA completed: violations=%llu (page could not "
                "be reallocated mid-transfer)\n",
                static_cast<unsigned long long>(sys.mem().violationCount()));
}

void
attackProducerOverrun(bool protection)
{
    System sys = makeSystem(protection);
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(30));

    auto *attacker = sys.guestDomain(0);
    CdnaNic &nic = *sys.cdnaNic(0);
    auto cxt = sys.cdnaDriver(0, 0)->context();

    nic.pioWriteMailbox(cxt, nic::kMboxTxProducer, 0xFFFFu);
    sys.ctx().events().runUntil(sys.ctx().now() + sim::milliseconds(5));

    if (protection) {
        std::printf("  protected:   context faulted=%s, seqno faults=%llu "
                    "-> context shut down, others unaffected\n",
                    nic.contextFaulted(cxt) ? "yes" : "no",
                    static_cast<unsigned long long>(nic.seqnoFaults()));
        std::printf("               victim guest context faulted=%s\n",
                    nic.contextFaulted(sys.cdnaDriver(1, 0)->context())
                        ? "yes" : "no");
    } else {
        std::printf("  unprotected: context faulted=%s -- the NIC keeps "
                    "walking stale descriptors\n",
                    nic.contextFaulted(cxt) ? "yes" : "no");
    }
    (void)attacker;
}

} // namespace

int
main()
{
    std::printf("CDNA DMA memory protection: attack demonstrations "
                "(paper section 3.3)\n");

    banner("Attack 1: DMA descriptor naming another guest's page");
    attackForeignPage(true);
    attackForeignPage(false);

    banner("Attack 2: free a page immediately after enqueueing it");
    attackFreeAfterEnqueue();

    banner("Attack 3: bump the producer index past the last valid "
           "descriptor");
    attackProducerOverrun(true);
    attackProducerOverrun(false);

    std::printf("\nSummary: validation blocks foreign pages, reference "
                "counts defer reallocation,\nand sequence numbers catch "
                "stale descriptors -- the three mechanisms of section "
                "3.3.\n");
    return 0;
}
