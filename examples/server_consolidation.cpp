/**
 * @file
 * Server-consolidation scenario (the paper's motivating workload).
 *
 * An organization consolidates many Internet-facing services onto one
 * physical machine.  This example sweeps the consolidation density
 * (number of guest VMs) for a transmit-heavy service mix and compares
 * what an operator cares about: aggregate throughput, per-VM
 * throughput, fairness between tenants, and how much CPU headroom is
 * left for the services themselves.
 *
 * It reproduces the paper's core operational claim: with software I/O
 * virtualization the network tax grows with density until bandwidth
 * collapses, while CDNA holds line rate and converts the saved cycles
 * into headroom.
 */

#include <cstdio>

#include "core/system.hh"

using namespace cdna;

namespace {

void
sweep(const char *name, core::SystemConfig (*make)(std::uint32_t))
{
    std::printf("--- %s ---\n", name);
    std::printf("%5s %10s %12s %10s %10s\n", "VMs", "agg Mb/s",
                "per-VM Mb/s", "fairness", "idle %");
    for (std::uint32_t vms : {1u, 4u, 8u, 16u, 24u}) {
        core::System sys(make(vms).transmit());
        core::Report r = sys.run(sim::milliseconds(100),
                                 sim::milliseconds(400));
        std::printf("%5u %10.0f %12.1f %10.2f %10.1f\n", vms, r.mbps,
                    r.mbps / vms, r.fairness(), r.idlePct);
        std::fflush(stdout);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Server consolidation: transmit-heavy services, "
                "2 Gigabit NICs, one Opteron-class core\n\n");
    sweep("Xen software I/O virtualization", core::SystemConfig::xenIntel);
    sweep("CDNA (concurrent direct network access)",
          core::SystemConfig::cdna);

    std::printf("Reading: with CDNA each tenant keeps its share of the "
                "wire as density grows;\nwith software virtualization the "
                "driver domain becomes the machine's bottleneck.\n");
    return 0;
}
