/**
 * @file
 * Quickstart: run the three I/O virtualization architectures the paper
 * compares -- Xen software virtualization over an Intel NIC, Xen over
 * the (CDNA-capable) RiceNIC, and CDNA itself -- with one guest and two
 * Gigabit NICs, for both transmit and receive, and print paper-style
 * report rows (compare with Tables 2 and 3 of the paper).
 *
 * The grid is declared once as an ExperimentSpec and executed by the
 * sweep runner; pass -j N to run the six cells on N worker threads
 * (the results are byte-identical regardless).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * Pass --trace=FILE / --stats-json=FILE to record a Chrome trace and a
 * metrics dump of the CDNA transmit run (open the trace in
 * chrome://tracing or https://ui.perfetto.dev).
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/system.hh"
#include "sim/sweep.hh"

using namespace cdna;

int
main(int argc, char **argv)
{
    sim::SweepOptions opt;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if ((a == "-j" || a == "--jobs") && i + 1 < argc)
            opt.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        else
            args.push_back(a);
    }
    std::string error;
    auto obs = core::parseCli(args, &error);
    if (!obs) {
        std::fprintf(stderr, "quickstart: %s\n", error.c_str());
        return 1;
    }
    opt.obs = *obs;
    opt.observeCell = "cdna/tx";

    auto spec = sim::ExperimentSpec("quickstart")
                    .config("xen-intel", core::SystemConfig::xenIntel(1))
                    .config("xen-ricenic", core::SystemConfig::xenRice(1))
                    .config("cdna", core::SystemConfig::cdna(1))
                    .directions(true, true)
                    .warmup(sim::milliseconds(50))
                    .measure(sim::milliseconds(400));
    auto result = sim::runSweep(spec, opt);

    std::printf("CDNA quickstart: 1 guest, 2 Gigabit NICs\n\n");
    std::printf("%s\n", core::Report::header().c_str());
    for (const char *dir : {"/tx", "/rx"}) {
        for (const auto &run : result.runs)
            if (run.point.cell.ends_with(dir))
                std::printf("%s\n", run.report.row().c_str());
        std::printf("\n");
    }
    return 0;
}
