/**
 * @file
 * Quickstart: run the three I/O virtualization architectures the paper
 * compares -- Xen software virtualization over an Intel NIC, Xen over
 * the (CDNA-capable) RiceNIC, and CDNA itself -- with one guest and two
 * Gigabit NICs, for both transmit and receive, and print paper-style
 * report rows (compare with Tables 2 and 3 of the paper).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * Pass --trace=FILE / --stats-json=FILE to record a Chrome trace and a
 * metrics dump of the CDNA transmit run (open the trace in
 * chrome://tracing or https://ui.perfetto.dev).
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/system.hh"

using namespace cdna;

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::string error;
    auto obs = core::parseCli(args, &error);
    if (!obs) {
        std::fprintf(stderr, "quickstart: %s\n", error.c_str());
        return 1;
    }

    std::printf("CDNA quickstart: 1 guest, 2 Gigabit NICs\n\n");
    std::printf("%s\n", core::Report::header().c_str());

    for (bool transmit : {true, false}) {
        core::SystemConfig configs[] = {
            core::SystemConfig::xenIntel(1).transmit(transmit),
            core::SystemConfig::xenRice(1).transmit(transmit),
            core::SystemConfig::cdna(1).transmit(transmit),
        };
        for (auto &cfg : configs) {
            bool observe = transmit && cfg.mode == core::IoMode::kCdna;
            core::System sys(cfg);
            std::unique_ptr<core::ObservabilitySession> session;
            if (observe)
                session = std::make_unique<core::ObservabilitySession>(
                    sys, *obs);
            core::Report r = sys.run(sim::milliseconds(50),
                                     sim::milliseconds(400));
            if (session && !session->close(&error))
                std::fprintf(stderr, "warning: %s\n", error.c_str());
            std::printf("%s\n", r.row().c_str());
        }
        std::printf("\n");
    }
    return 0;
}
