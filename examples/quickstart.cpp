/**
 * @file
 * Quickstart: run the three I/O virtualization architectures the paper
 * compares -- Xen software virtualization over an Intel NIC, Xen over
 * the (CDNA-capable) RiceNIC, and CDNA itself -- with one guest and two
 * Gigabit NICs, for both transmit and receive, and print paper-style
 * report rows (compare with Tables 2 and 3 of the paper).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/system.hh"

using namespace cdna;

int
main()
{
    std::printf("CDNA quickstart: 1 guest, 2 Gigabit NICs\n\n");
    std::printf("%s\n", core::Report::header().c_str());

    for (bool transmit : {true, false}) {
        core::SystemConfig configs[] = {
            core::makeXenIntelConfig(1, transmit),
            core::makeXenRiceConfig(1, transmit),
            core::makeCdnaConfig(1, transmit),
        };
        for (auto &cfg : configs) {
            core::System sys(cfg);
            core::Report r = sys.run(sim::milliseconds(50),
                                     sim::milliseconds(400));
            std::printf("%s\n", r.row().c_str());
        }
        std::printf("\n");
    }
    return 0;
}
