/**
 * @file
 * Unit tests for NIC building blocks: descriptor rings, the mailbox
 * event bit-vector hierarchy, packet buffer pools, firmware processor,
 * and the conventional IntelNic datapaths.
 */

#include <gtest/gtest.h>

#include "mem/phys_memory.hh"
#include "net/eth_link.hh"
#include "net/traffic_peer.hh"
#include "nic/desc_ring.hh"
#include "nic/firmware.hh"
#include "nic/intel_nic.hh"
#include "nic/mailbox.hh"
#include "nic/packet_buffer.hh"
#include "sim/sim_object.hh"

using namespace cdna;
using namespace cdna::nic;

// ------------------------------------------------------------ descring ----

TEST(DescRing, SlotWrapAndAddresses)
{
    DescRing ring(8, 0x10000);
    EXPECT_EQ(ring.size(), 8u);
    EXPECT_EQ(ring.slotOf(0), 0u);
    EXPECT_EQ(ring.slotOf(9), 1u);
    EXPECT_EQ(ring.slotAddr(0), 0x10000u);
    EXPECT_EQ(ring.slotAddr(8), 0x10000u); // wrapped
    EXPECT_EQ(ring.slotAddr(3), 0x10000u + 3 * kDescBytes);
}

TEST(DescRing, SlotsPersistAcrossLaps)
{
    // A stale descriptor from the previous lap remains readable --
    // the precondition of the producer-overrun attack of section 3.3.
    DescRing ring(4, 0);
    DmaDescriptor d;
    d.flags = kDescValid;
    d.seqno = 7;
    ring.write(1, d);
    EXPECT_TRUE(ring.at(5).valid());
    EXPECT_EQ(ring.at(5).seqno, 7u);
}

TEST(DescRing, PacketAttachDetach)
{
    DescRing ring(4, 0);
    net::Packet p;
    p.payloadBytes = 99;
    ring.attachPacket(2, std::move(p));
    EXPECT_TRUE(ring.hasPacket(2));
    EXPECT_TRUE(ring.hasPacket(6)); // same slot, wrapped
    auto out = ring.detachPacket(6);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->payloadBytes, 99u);
    EXPECT_FALSE(ring.hasPacket(2));
    EXPECT_FALSE(ring.detachPacket(2).has_value());
}

TEST(Descriptor, LenSumsScatterGather)
{
    DmaDescriptor d;
    d.sg = {{0, 100}, {8192, 400}};
    EXPECT_EQ(d.len(), 500u);
    EXPECT_FALSE(d.valid());
    d.flags = kDescValid | kDescEop;
    EXPECT_TRUE(d.valid());
}

// ------------------------------------------------------------- mailbox ----

TEST(Mailbox, PageReadWrite)
{
    MailboxPage page;
    page.write(0, 42);
    page.write(23, 7);
    EXPECT_EQ(page.read(0), 42u);
    EXPECT_EQ(page.read(23), 7u);
    EXPECT_EQ(page.read(5), 0u);
}

TEST(MailboxHier, PostAndPopLowestFirst)
{
    MailboxEventHier h;
    EXPECT_FALSE(h.pending());
    h.post(5, 3);
    h.post(2, 7);
    h.post(2, 1);
    EXPECT_TRUE(h.pending());
    EXPECT_EQ(h.contextVector(), (1u << 5) | (1u << 2));
    EXPECT_EQ(h.mailboxVector(2), (1u << 7) | (1u << 1));

    std::uint32_t c, m;
    ASSERT_TRUE(h.popLowest(&c, &m));
    EXPECT_EQ(c, 2u);
    EXPECT_EQ(m, 1u);
    ASSERT_TRUE(h.popLowest(&c, &m));
    EXPECT_EQ(c, 2u);
    EXPECT_EQ(m, 7u);
    ASSERT_TRUE(h.popLowest(&c, &m));
    EXPECT_EQ(c, 5u);
    EXPECT_EQ(m, 3u);
    EXPECT_FALSE(h.popLowest(&c, &m));
    EXPECT_FALSE(h.pending());
}

TEST(MailboxHier, DuplicatePostsMerge)
{
    MailboxEventHier h;
    h.post(1, 2);
    h.post(1, 2);
    std::uint32_t c, m;
    EXPECT_TRUE(h.popLowest(&c, &m));
    EXPECT_FALSE(h.popLowest(&c, &m));
}

TEST(MailboxHier, ClearContextDropsAll)
{
    MailboxEventHier h;
    h.post(3, 0);
    h.post(3, 9);
    h.post(4, 1);
    h.clearContext(3);
    std::uint32_t c, m;
    ASSERT_TRUE(h.popLowest(&c, &m));
    EXPECT_EQ(c, 4u);
    EXPECT_FALSE(h.popLowest(&c, &m));
}

/** Property sweep: encode/decode over every (context, mailbox) pair. */
class MailboxHierProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(MailboxHierProperty, RoundTripsEverySlot)
{
    auto [cxt, mbox] = GetParam();
    MailboxEventHier h;
    h.post(cxt, mbox);
    std::uint32_t c, m;
    ASSERT_TRUE(h.popLowest(&c, &m));
    EXPECT_EQ(c, static_cast<std::uint32_t>(cxt));
    EXPECT_EQ(m, static_cast<std::uint32_t>(mbox));
    EXPECT_FALSE(h.pending());
}

INSTANTIATE_TEST_SUITE_P(
    AllSlots, MailboxHierProperty,
    ::testing::Combine(::testing::Values(0, 1, 7, 15, 31),
                       ::testing::Values(0, 1, 11, 23)));

// ------------------------------------------------------- packet buffer ----

TEST(PacketBufferPool, ReserveRelease)
{
    PacketBufferPool pool(1000);
    EXPECT_TRUE(pool.tryReserve(600));
    EXPECT_FALSE(pool.tryReserve(500));
    EXPECT_TRUE(pool.tryReserve(400));
    EXPECT_EQ(pool.available(), 0u);
    pool.release(600);
    EXPECT_EQ(pool.used(), 400u);
    EXPECT_EQ(pool.highWater(), 1000u);
}

// ------------------------------------------------------------ firmware ----

TEST(FirmwareProc, JobsSerialize)
{
    sim::SimContext ctx;
    FirmwareProc fw(ctx, "fw");
    sim::Time first = 0, second = 0;
    fw.exec(sim::microseconds(2), [&] { first = ctx.now(); });
    fw.exec(sim::microseconds(3), [&] { second = ctx.now(); });
    ctx.events().run();
    EXPECT_EQ(first, sim::microseconds(2));
    EXPECT_EQ(second, sim::microseconds(5));
    EXPECT_EQ(fw.jobsRun(), 2u);
    EXPECT_NEAR(fw.utilization(ctx.now()), 1.0, 1e-9);
}

// ------------------------------------------------------------ IntelNic ----

namespace {

/**
 * A minimal "host" that drives an IntelNic the way a driver would,
 * without any CPU modeling: it writes descriptors and rings doorbells.
 */
struct IntelHarness
{
    sim::SimContext ctx;
    mem::PhysMemory mem{ctx, 4096};
    mem::PciBus bus{ctx, "pci"};
    net::EthLink link{ctx, "eth"};
    net::TrafficPeer peer{ctx, "peer", link};
    IntelNic nic;
    mem::DomainId dom = 1;
    std::uint32_t txProducer = 0;
    std::uint32_t rxProducer = 0;
    std::vector<mem::PageNum> rxPages;

    IntelHarness()
        : nic(ctx, "nic", bus, mem, 0, link)
    {
        nic.setDmaDomain(dom);
        nic.setMac(net::MacAddr::fromId(1));
        nic.configureTxRing(16, mem::addrOf(mem.allocOne(dom)));
        nic.configureRxRing(16, mem::addrOf(mem.allocOne(dom)));
        nic.setStatusBlockAddr(mem::addrOf(mem.allocOne(dom)));
    }

    void
    queueTx(std::uint32_t payload)
    {
        mem::PageNum page = mem.allocOne(dom);
        DmaDescriptor d;
        d.sg = {{mem::addrOf(page), payload}};
        d.flags = kDescValid | kDescEop;
        net::Packet p;
        p.src = nic.mac();
        p.dst = peer.mac();
        p.payloadBytes = payload;
        p.hostSg = d.sg;
        p.srcDomain = dom;
        nic.txRing().write(txProducer, d);
        nic.txRing().attachPacket(txProducer, std::move(p));
        ++txProducer;
    }

    void
    postRxBuffers(std::uint32_t n)
    {
        for (std::uint32_t i = 0; i < n; ++i) {
            mem::PageNum page = mem.allocOne(dom);
            rxPages.push_back(page);
            DmaDescriptor d;
            d.sg = {{mem::addrOf(page), net::kMtu}};
            d.flags = kDescValid;
            nic.rxRing().write(rxProducer, d);
            ++rxProducer;
        }
        nic.pioWriteRxProducer(rxProducer);
    }
};

} // namespace

TEST(IntelNic, TransmitsQueuedDescriptors)
{
    IntelHarness h;
    for (int i = 0; i < 5; ++i)
        h.queueTx(1000);
    h.nic.pioWriteTxProducer(h.txProducer);
    h.ctx.events().run();
    EXPECT_EQ(h.nic.txPackets(), 5u);
    EXPECT_EQ(h.peer.payloadReceived(), 5000u);
    EXPECT_EQ(h.nic.txConsumer(), 5u);
    EXPECT_GE(h.nic.irqCount(), 1u);
    EXPECT_EQ(h.mem.violationCount(), 0u);
}

TEST(IntelNic, TsoSegmentOccupiesManyFrames)
{
    IntelHarness h;
    h.queueTx(65536);
    h.nic.pioWriteTxProducer(h.txProducer);
    h.ctx.events().run();
    EXPECT_EQ(h.nic.txPackets(), 1u);
    EXPECT_EQ(h.peer.payloadReceived(), 65536u);
    EXPECT_EQ(h.peer.framesReceived(), (65536u + net::kMss - 1) / net::kMss);
}

TEST(IntelNic, ReceiveIntoPostedBuffers)
{
    IntelHarness h;
    h.postRxBuffers(8);
    h.ctx.events().run(); // let descriptor prefetch complete

    net::Packet p;
    p.src = h.peer.mac();
    p.dst = h.nic.mac();
    p.payloadBytes = 800;
    h.link.port(0).send(p);
    h.link.port(0).send(p);
    h.ctx.events().run();

    EXPECT_EQ(h.nic.rxPackets(), 2u);
    auto got = h.nic.drainRx();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].pos, 0u);
    EXPECT_EQ(got[1].pos, 1u);
    EXPECT_EQ(h.nic.rxConsumer(), 2u);
}

TEST(IntelNic, MacFilterDropsForeignFrames)
{
    IntelHarness h;
    h.postRxBuffers(4);
    h.ctx.events().run();
    net::Packet p;
    p.dst = net::MacAddr::fromId(999);
    p.payloadBytes = 100;
    h.link.port(0).send(p);
    h.ctx.events().run();
    EXPECT_EQ(h.nic.rxPackets(), 0u);
    EXPECT_EQ(h.nic.rxDropFilter(), 1u);

    h.nic.setPromiscuous(true);
    h.link.port(0).send(p);
    h.ctx.events().run();
    EXPECT_EQ(h.nic.rxPackets(), 1u);
}

TEST(IntelNic, DropsWhenNoRxDescriptors)
{
    IntelHarness h; // no buffers posted
    net::Packet p;
    p.dst = h.nic.mac();
    p.payloadBytes = 100;
    h.link.port(0).send(p);
    h.ctx.events().run();
    EXPECT_EQ(h.nic.rxDropNoDesc(), 1u);
    EXPECT_EQ(h.nic.rxPackets(), 0u);
}

TEST(IntelNic, GhostDescriptorCounted)
{
    IntelHarness h;
    // Valid descriptor but no packet attached (host lied about buffer).
    DmaDescriptor d;
    d.sg = {{mem::addrOf(h.mem.allocOne(h.dom)), 500}};
    d.flags = kDescValid | kDescEop;
    h.nic.txRing().write(0, d);
    h.nic.pioWriteTxProducer(1);
    h.ctx.events().run();
    EXPECT_EQ(h.nic.txPackets(), 0u);
    EXPECT_EQ(h.nic.txConsumer(), 1u); // consumed without transmit
}

TEST(IntelNic, RingWrapsAcrossManyLaps)
{
    IntelHarness h;
    for (int lap = 0; lap < 5; ++lap) {
        for (int i = 0; i < 8; ++i)
            h.queueTx(500);
        h.nic.pioWriteTxProducer(h.txProducer);
        h.ctx.events().run();
    }
    EXPECT_EQ(h.nic.txPackets(), 40u);
    EXPECT_EQ(h.nic.txConsumer(), 40u);
    EXPECT_EQ(h.peer.payloadReceived(), 20000u);
}

TEST(IntelNic, CoalescingBoundsIrqRate)
{
    IntelHarness h;
    IntelNicParams params;
    // Generous window: one interrupt should cover the whole burst.
    CoalesceParams co{sim::milliseconds(5), 1000};
    h.nic.setCoalesce(co);
    for (int i = 0; i < 10; ++i)
        h.queueTx(100);
    h.nic.pioWriteTxProducer(h.txProducer);
    h.ctx.events().run();
    EXPECT_EQ(h.nic.irqCount(), 1u);
    (void)params;
}
