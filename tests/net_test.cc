/**
 * @file
 * Unit tests for the network substrate: packets/framing math, links,
 * and the ideal traffic peer (including TCP-ACK generation).
 */

#include <gtest/gtest.h>

#include "net/eth_link.hh"
#include "net/packet.hh"
#include "net/traffic_peer.hh"
#include "sim/sim_object.hh"

using namespace cdna;
using namespace cdna::net;

// ----------------------------------------------------------------- mac ----

TEST(MacAddr, FromIdDistinct)
{
    EXPECT_EQ(MacAddr::fromId(7), MacAddr::fromId(7));
    EXPECT_NE(MacAddr::fromId(7), MacAddr::fromId(8));
    EXPECT_NE(MacAddr::fromId(7).hash(), MacAddr::fromId(8).hash());
}

TEST(MacAddr, StringForm)
{
    std::string s = MacAddr::fromId(0x123456).str();
    EXPECT_EQ(s, "02:cd:4a:12:34:56");
}

// -------------------------------------------------------------- packet ----

TEST(Packet, SingleFrameWireMath)
{
    Packet p;
    p.payloadBytes = kMss;
    EXPECT_EQ(p.wireFrames(), 1u);
    EXPECT_EQ(p.wireBytes(), kMss + kWireOverhead);
    // A full frame occupies 1538 bytes of wire.
    EXPECT_EQ(p.wireBytes(), 1538u);
}

TEST(Packet, TsoSegmentFrameCount)
{
    Packet p;
    p.payloadBytes = 65536;
    EXPECT_EQ(p.wireFrames(), (65536 + kMss - 1) / kMss);
    EXPECT_EQ(p.wireBytes(),
              65536ull + p.wireFrames() * std::uint64_t(kWireOverhead));
}

TEST(Packet, PureAckIsOneSmallFrame)
{
    Packet p;
    p.payloadBytes = 0;
    EXPECT_EQ(p.wireFrames(), 1u);
    EXPECT_EQ(p.wireBytes(), kWireOverhead);
}

TEST(Packet, GoodputCeilingMatchesPaperPlateau)
{
    // 1 Gb/s x 1460/1538 = 949.3 Mb/s per NIC; two NICs ~1899 Mb/s --
    // the ceiling under the paper's 1867/1874 Mb/s CDNA results.
    double per_nic = 1e9 * double(kMss) / double(kMss + kWireOverhead);
    EXPECT_NEAR(2 * per_nic / 1e6, 1899.0, 1.0);
}

// ---------------------------------------------------------------- link ----

namespace {

struct Sink : LinkEndpoint
{
    std::vector<Packet> got;
    sim::Time last_at = 0;
    sim::EventQueue *eq = nullptr;

    void
    receiveFrame(Packet pkt) override
    {
        got.push_back(std::move(pkt));
        if (eq)
            last_at = eq->now();
    }
};

} // namespace

TEST(EthLink, SerializationAndPropagationTiming)
{
    sim::SimContext ctx;
    EthLink link(ctx, "eth", 1.0e9, sim::nanoseconds(500));
    Sink sink;
    sink.eq = &ctx.events();
    link.bind(sink);

    Packet p;
    p.payloadBytes = kMss;
    sim::Time serialized = 0;
    link.port(1).send(p, 0, [&] { serialized = ctx.now(); });
    ctx.events().run();
    // 1538 bytes at 8 ns/byte = 12.304 us.
    EXPECT_EQ(serialized, sim::nanoseconds(1538 * 8));
    ASSERT_EQ(sink.got.size(), 1u);
    EXPECT_EQ(sink.last_at, serialized + sim::nanoseconds(500));
}

TEST(EthLink, BackToBackFramesQueue)
{
    sim::SimContext ctx;
    EthLink link(ctx, "eth", 1.0e9, 0);
    Sink sink;
    sink.eq = &ctx.events();
    link.bind(sink);
    Packet p;
    p.payloadBytes = kMss;
    link.port(1).send(p);
    link.port(1).send(p);
    ctx.events().run();
    ASSERT_EQ(sink.got.size(), 2u);
    EXPECT_EQ(sink.last_at, 2 * sim::nanoseconds(1538 * 8));
    EXPECT_EQ(link.port(1).payloadCarried(), 2ull * kMss);
    EXPECT_EQ(link.port(0).payloadDelivered(), 2ull * kMss);
}

TEST(EthLink, ExtraGapDelaysNextFrame)
{
    sim::SimContext ctx;
    EthLink link(ctx, "eth", 1.0e9, 0);
    Sink sink;
    sink.eq = &ctx.events();
    link.bind(sink);
    Packet p;
    p.payloadBytes = kMss;
    link.port(1).send(p, sim::microseconds(5));
    link.port(1).send(p);
    ctx.events().run();
    EXPECT_EQ(sink.last_at,
              2 * sim::nanoseconds(1538 * 8) + sim::microseconds(5));
}

TEST(EthLink, DirectionsIndependent)
{
    sim::SimContext ctx;
    EthLink link(ctx, "eth", 1.0e9, 0);
    Sink a, b;
    Port &pa = link.bind(a);
    Port &pb = link.bind(b);
    Packet p;
    p.payloadBytes = 100;
    pa.send(p);
    pb.send(p);
    ctx.events().run();
    EXPECT_EQ(a.got.size(), 1u);
    EXPECT_EQ(b.got.size(), 1u);
}

TEST(EthLink, HostSgClearedOnWire)
{
    sim::SimContext ctx;
    EthLink link(ctx, "eth");
    Sink sink;
    link.bind(sink);
    Packet p;
    p.payloadBytes = 100;
    p.hostSg = {{0x1000, 100}};
    link.port(1).send(std::move(p));
    ctx.events().run();
    ASSERT_EQ(sink.got.size(), 1u);
    EXPECT_TRUE(sink.got[0].hostSg.empty());
}

// ---------------------------------------------------------------- peer ----

TEST(TrafficPeer, SourcesRoundRobinAtLineRate)
{
    sim::SimContext ctx;
    EthLink link(ctx, "eth");
    TrafficPeer peer(ctx, "peer", link);
    Sink sink;
    link.bind(sink);

    auto m1 = MacAddr::fromId(1);
    auto m2 = MacAddr::fromId(2);
    peer.applyWorkload(workload::WorkloadSpec{}
                           .toward({m1, m2})
                           .withClass(workload::FlowClass::saturating()));
    ctx.events().runUntil(sim::milliseconds(1));
    peer.stopSource();

    // ~81 full frames fit in 1 ms at 1 Gb/s.
    EXPECT_NEAR(static_cast<double>(sink.got.size()), 81.0, 2.0);
    int to1 = 0, to2 = 0;
    for (const auto &p : sink.got) {
        to1 += p.dst == m1;
        to2 += p.dst == m2;
    }
    EXPECT_LE(std::abs(to1 - to2), 1);
}

TEST(TrafficPeer, SinkCountsPayloadBySource)
{
    sim::SimContext ctx;
    EthLink link(ctx, "eth");
    TrafficPeer peer(ctx, "peer", link);
    Packet p;
    p.src = MacAddr::fromId(5);
    p.payloadBytes = 1000;
    link.port(1).send(p);
    link.port(1).send(p);
    ctx.events().run();
    EXPECT_EQ(peer.payloadReceived(), 2000u);
    EXPECT_EQ(peer.receivedBySrc().at(MacAddr::fromId(5)), 2000u);
}

TEST(TrafficPeer, AcksEveryNthFrame)
{
    sim::SimContext ctx;
    EthLink link(ctx, "eth");
    TrafficPeer peer(ctx, "peer", link);
    peer.applyWorkload(workload::WorkloadSpec{}.ackingEvery(2));
    Sink sink;
    link.bind(sink);

    Packet p;
    p.src = MacAddr::fromId(5);
    p.payloadBytes = kMss;
    for (int i = 0; i < 10; ++i)
        link.port(1).send(p);
    ctx.events().run();
    // 10 data frames -> 5 acks back to the sender.
    ASSERT_EQ(sink.got.size(), 5u);
    for (const auto &ack : sink.got) {
        EXPECT_EQ(ack.payloadBytes, 0u);
        EXPECT_EQ(ack.dst, MacAddr::fromId(5));
    }
}

TEST(TrafficPeer, TsoBurstAckedPerWireFrame)
{
    sim::SimContext ctx;
    EthLink link(ctx, "eth");
    TrafficPeer peer(ctx, "peer", link);
    peer.applyWorkload(workload::WorkloadSpec{}.ackingEvery(2));
    Sink sink;
    link.bind(sink);

    Packet p;
    p.src = MacAddr::fromId(5);
    p.payloadBytes = 10 * kMss; // 10 wire frames in one burst
    link.port(1).send(p);
    ctx.events().run();
    EXPECT_EQ(sink.got.size(), 5u);
}

TEST(TrafficPeer, BadChecksumFramesCountedNotAcked)
{
    sim::SimContext ctx;
    EthLink link(ctx, "eth");
    TrafficPeer peer(ctx, "peer", link);
    peer.applyWorkload(workload::WorkloadSpec{}.ackingEvery(1));
    Sink sink;
    link.bind(sink);
    Packet p;
    p.src = MacAddr::fromId(5);
    p.payloadBytes = kMss;
    p.intact = false; // failed FCS/checksum on the wire
    link.port(1).send(p);
    ctx.events().run();
    EXPECT_TRUE(sink.got.empty());
    EXPECT_EQ(peer.rxDropsBadCsum(), 1u);
    EXPECT_EQ(peer.payloadReceived(), 0u);
}

TEST(TrafficPeer, NeverAcksAnAck)
{
    sim::SimContext ctx;
    EthLink link(ctx, "eth");
    TrafficPeer peer(ctx, "peer", link);
    peer.applyWorkload(workload::WorkloadSpec{}.ackingEvery(1));
    Sink sink;
    link.bind(sink);
    Packet ack;
    ack.src = MacAddr::fromId(5);
    ack.payloadBytes = 0;
    for (int i = 0; i < 4; ++i)
        link.port(1).send(ack);
    ctx.events().run();
    EXPECT_TRUE(sink.got.empty());
}
