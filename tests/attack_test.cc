/**
 * @file
 * Security experiments: the attacks of paper section 3.3, run against
 * the full system.  With protection on, every attack is contained and
 * reported; with protection off, the same attacks demonstrably corrupt
 * or disclose other domains' memory (observable as DMA ownership
 * violations and ghost transmissions).
 */

#include <gtest/gtest.h>

#include "core/system.hh"

using namespace cdna;
using namespace cdna::core;

namespace {

/** CDNA system with two guests; guest 0 is the attacker, 1 the victim. */
struct AttackFixture : ::testing::TestWithParam<bool>
{
    SystemConfig
    baseConfig(bool protection)
    {
        SystemConfig cfg = SystemConfig::cdna(2).withProtection(protection);
        cfg.numNics = 1;
        return cfg;
    }
};

} // namespace

TEST_F(AttackFixture, ForeignPageEnqueueRejectedWhenProtected)
{
    System sys(baseConfig(true));
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(5));

    auto *attacker = sys.guestDomain(0);
    auto *victim = sys.guestDomain(1);
    CdnaNic &nic = *sys.cdnaNic(0);

    // The attacker brings up a fresh context and tries to enqueue a
    // descriptor naming the victim's memory through the only interface
    // it has: the protected hypercall.
    auto cxt = nic.allocContext(attacker->id(), net::MacAddr::fromId(777));
    ASSERT_TRUE(cxt.has_value());
    nic.configureContextRings(
        *cxt, 8, mem::addrOf(sys.mem().allocOne(attacker->id())), 8,
        mem::addrOf(sys.mem().allocOne(attacker->id())));
    auto handle = sys.protection()->registerRing(nic, *cxt,
                                                 attacker->id(), true);

    mem::PageNum victim_page = sys.mem().allocOne(victim->id());
    DmaProtection::Request req;
    req.sg = {{mem::addrOf(victim_page), 1460}};
    DmaProtection::Result res;
    std::vector<DmaProtection::Request> reqs;
    reqs.push_back(std::move(req));
    sys.protection()->enqueue(handle, std::move(reqs),
                              [&](DmaProtection::Result r) { res = r; });
    sys.ctx().events().runUntil(sys.ctx().now() + sim::milliseconds(5));

    EXPECT_EQ(res.fault, vmm::Fault::kNotOwner);
    EXPECT_EQ(res.accepted, 0u);
    EXPECT_GE(sys.hv().faultCount(attacker->id(), vmm::Fault::kNotOwner),
              1u);
    // The victim's page was never touched by the device.
    EXPECT_EQ(sys.mem().violationCount(), 0u);
}

TEST_F(AttackFixture, ProducerOverrunCaughtBySeqno)
{
    System sys(baseConfig(true));
    sys.start();
    // Let real traffic flow so the rings hold stale-but-once-valid
    // descriptors.
    sys.ctx().events().runUntil(sim::milliseconds(30));

    auto *drv = sys.cdnaDriver(0, 0);
    ASSERT_NE(drv, nullptr);
    CdnaNic &nic = *sys.cdnaNic(0);
    auto cxt = drv->context();
    ASSERT_FALSE(nic.contextFaulted(cxt));

    // Malicious doorbell: advertise descriptors that were never
    // enqueued through the hypervisor.
    std::uint64_t faults_before = nic.seqnoFaults();
    nic.pioWriteMailbox(cxt, nic::kMboxTxProducer, 0xFFFFu);
    sys.ctx().events().runUntil(sys.ctx().now() + sim::milliseconds(5));

    EXPECT_TRUE(nic.contextFaulted(cxt));
    EXPECT_GT(nic.seqnoFaults(), faults_before);
    EXPECT_GE(sys.hv().faultCount(sys.guestDomain(0)->id(),
                                  vmm::Fault::kBadSeqno),
              1u);
    // The faulted context stopped; no memory was disclosed.
    EXPECT_EQ(sys.mem().violationCount(), 0u);

    // The victim guest's context is unaffected and keeps transmitting.
    auto *victim_drv = sys.cdnaDriver(1, 0);
    EXPECT_FALSE(nic.contextFaulted(victim_drv->context()));
}

TEST_F(AttackFixture, ProducerOverrunDisclosesMemoryWhenUnprotected)
{
    System sys(baseConfig(false));
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(5));

    auto *attacker = sys.guestDomain(0);
    CdnaNic &nic = *sys.cdnaNic(0);

    // A context with a few consumed descriptors...
    auto cxt = nic.allocContext(attacker->id(), net::MacAddr::fromId(778));
    ASSERT_TRUE(cxt.has_value());
    nic.configureContextRings(
        *cxt, 8, mem::addrOf(sys.mem().allocOne(attacker->id())), 8,
        mem::addrOf(sys.mem().allocOne(attacker->id())));
    for (std::uint32_t i = 0; i < 4; ++i) {
        mem::PageNum page = sys.mem().allocOne(attacker->id());
        nic::DmaDescriptor d;
        d.sg = {{mem::addrOf(page), 800}};
        d.flags = nic::kDescValid | nic::kDescEop;
        net::Packet p;
        p.dst = sys.peer(0).mac();
        p.payloadBytes = 800;
        p.hostSg = d.sg;
        nic.txRing(*cxt).write(i, d);
        nic.txRing(*cxt).attachPacket(i, std::move(p));
    }
    nic.pioWriteMailbox(*cxt, nic::kMboxTxProducer, 4);
    sys.ctx().events().runUntil(sys.ctx().now() + sim::milliseconds(15));
    EXPECT_EQ(nic.txConsumer(*cxt), 4u);

    // ...then the driver bumps the producer past the last valid entry.
    std::uint64_t ghosts_before = nic.ghostTxCount();
    nic.pioWriteMailbox(*cxt, nic::kMboxTxProducer, 6);
    sys.ctx().events().runUntil(sys.ctx().now() + sim::milliseconds(15));

    // With no sequence check, the NIC happily walks the never-written
    // slots and transmits from memory the attacker never provided.
    EXPECT_FALSE(nic.contextFaulted(*cxt));
    EXPECT_EQ(nic.ghostTxCount(), ghosts_before + 2);
}

namespace {

/** Set up a fresh hardware context fully under the attacker's control
 *  and aim one direct-written descriptor at the victim's page. */
CdnaNic::ContextId
craftDirectAttack(System &sys, mem::PageNum victim_page)
{
    auto *attacker = sys.guestDomain(0);
    CdnaNic &nic = *sys.cdnaNic(0);
    auto cxt = nic.allocContext(attacker->id(), net::MacAddr::fromId(777));
    EXPECT_TRUE(cxt.has_value());
    nic.configureContextRings(
        *cxt, 8, mem::addrOf(sys.mem().allocOne(attacker->id())), 8,
        mem::addrOf(sys.mem().allocOne(attacker->id())));

    nic::DmaDescriptor d;
    d.sg = {{mem::addrOf(victim_page), 1460}};
    d.flags = nic::kDescValid | nic::kDescEop;
    nic.txRing(*cxt).write(0, d);
    // No packet attached: the NIC will transmit whatever the victim's
    // memory holds (a ghost frame) if the DMA is allowed through.
    nic.pioWriteMailbox(*cxt, nic::kMboxTxProducer, 1);
    return *cxt;
}

} // namespace

TEST_F(AttackFixture, DirectForeignDmaCorruptsWhenUnprotected)
{
    // Without hypervisor validation, the attacker writes a descriptor
    // naming the victim's page straight into its ring: classic 2007-era
    // x86 DMA, and exactly the hole CDNA closes.
    System sys(baseConfig(false));
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(5));

    auto *attacker = sys.guestDomain(0);
    auto *victim = sys.guestDomain(1);
    mem::PageNum victim_page = sys.mem().allocOne(victim->id());
    craftDirectAttack(sys, victim_page);
    sys.ctx().events().runUntil(sys.ctx().now() + sim::milliseconds(5));

    // The device read the victim's memory on the attacker's behalf.
    EXPECT_GE(sys.mem().violationCount(), 1u);
    bool found = false;
    for (const auto &v : sys.mem().violations())
        if (v.page == victim_page && v.expected == attacker->id() &&
            v.actual == victim->id())
            found = true;
    EXPECT_TRUE(found);
    EXPECT_GT(sys.cdnaNic(0)->ghostTxCount(), 0u);
}

TEST_F(AttackFixture, PerContextIommuBlocksDirectForeignDma)
{
    // Section 5.3: with a context-aware IOMMU, even the unprotected
    // direct path cannot reach foreign memory.
    SystemConfig cfg = SystemConfig::cdna(2).withProtection(false);
    cfg.numNics = 1;
    cfg.iommuMode = mem::Iommu::Mode::kPerContext;
    System sys(cfg);
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(5));

    auto *attacker = sys.guestDomain(0);
    auto *victim = sys.guestDomain(1);
    mem::PageNum victim_page = sys.mem().allocOne(victim->id());
    auto cxt = craftDirectAttack(sys, victim_page);
    sys.iommu()->bindContext(0, cxt, attacker->id());
    std::uint64_t blocked_before = sys.iommu()->blockedCount();
    sys.ctx().events().runUntil(sys.ctx().now() + sim::milliseconds(5));

    EXPECT_GT(sys.iommu()->blockedCount(), blocked_before);
    // The IOMMU suppressed the access: no violation recorded.
    EXPECT_EQ(sys.mem().violationCount(), 0u);
}

TEST_F(AttackFixture, RevokedContextStopsOperating)
{
    System sys(baseConfig(true));
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(20));

    CdnaNic &nic = *sys.cdnaNic(0);
    auto *drv = sys.cdnaDriver(0, 0);
    auto cxt = drv->context();
    std::uint64_t tx_before = nic.txPackets();
    ASSERT_GT(tx_before, 0u);

    // The hypervisor revokes the attacker's context (section 3.1:
    // "the hypervisor can also revoke a context at any time").
    nic.revokeContext(cxt);
    EXPECT_FALSE(nic.contextAllocated(cxt));

    // Frames to the revoked context's MAC are now dropped, and the
    // victim continues unharmed.
    auto *victim_drv = sys.cdnaDriver(1, 0);
    EXPECT_TRUE(nic.contextAllocated(victim_drv->context()));
}

TEST_F(AttackFixture, DoorbellFloodIsThrottledAndContained)
{
    // A malicious guest hammers its mailbox with PIO writes, trying to
    // burn firmware time decoding doorbells and starve the victim.
    // The per-context storm guard coalesces everything beyond the
    // burst allowance into one deferred event per window, so only the
    // attacker's own doorbells are delayed.
    System base(baseConfig(true));
    Report rb = base.run(sim::milliseconds(50), sim::milliseconds(100));
    ASSERT_EQ(rb.perGuestMbps.size(), 2u);

    System sys(baseConfig(true));
    sys.ctx().events().schedule(sim::milliseconds(60), [&sys] {
        CdnaNic &nic = *sys.cdnaNic(0);
        auto cxt = nic.allocContext(sys.guestDomain(0)->id(),
                                    net::MacAddr::fromId(779));
        ASSERT_TRUE(cxt.has_value());
        nic.configureContextRings(
            *cxt, 8,
            mem::addrOf(sys.mem().allocOne(sys.guestDomain(0)->id())), 8,
            mem::addrOf(sys.mem().allocOne(sys.guestDomain(0)->id())));
        // Producer stays at 0: each write is a no-op doorbell whose
        // only effect is the firmware decode cost the guard bounds.
        for (int i = 0; i < 2000; ++i)
            nic.pioWriteMailbox(*cxt, nic::kMboxTxProducer, 0);
    });
    Report rk = sys.run(sim::milliseconds(50), sim::milliseconds(100));

    // The guard engaged (2000 writes in one window >> the allowance)...
    EXPECT_GT(sys.cdnaNic(0)->mailboxThrottled(), 1000u);
    EXPECT_GT(rk.mailboxThrottled, 1000u);
    // ...the storming context never faulted anyone else, and the
    // victim's throughput is preserved.
    EXPECT_EQ(rk.dmaViolations, 0u);
    ASSERT_EQ(rk.perGuestMbps.size(), 2u);
    EXPECT_GE(rk.perGuestMbps[1], 0.9 * rb.perGuestMbps[1]);
}

INSTANTIATE_TEST_SUITE_P(Protection, AttackFixture, ::testing::Bool());

TEST_P(AttackFixture, NormalTrafficNeverViolatesRegardlessOfProtection)
{
    // Well-behaved guests never trigger violations, protected or not.
    System sys(baseConfig(GetParam()));
    auto r = sys.run(sim::milliseconds(30), sim::milliseconds(100));
    EXPECT_EQ(r.dmaViolations, 0u);
    EXPECT_EQ(r.protectionFaults, 0u);
    EXPECT_GT(r.mbps, 500.0);
}
