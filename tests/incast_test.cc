/**
 * @file
 * Incast sweep tests: the preset's Runner-driven multi-host cells are
 * byte-identical across worker counts, and the buffer-limited cells
 * actually exhibit loss-driven degradation (tail drops, sender
 * retransmissions, lower per-flow goodput) relative to deep buffers.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/sweep.hh"
#include "sim/sweep_presets.hh"

using namespace cdna;

namespace {

/** The incast preset shrunk to a sub-second grid (same runner). */
sim::ExperimentSpec
smallIncast()
{
    auto spec = sim::presets::byName("incast");
    EXPECT_TRUE(spec.has_value());
    return spec->warmup(sim::milliseconds(2)).measure(sim::milliseconds(10));
}

} // namespace

TEST(Incast, SweepDeterministicJ1J8)
{
    sim::SweepOptions j1;
    j1.jobs = 1;
    sim::SweepOptions j8;
    j8.jobs = 8;
    auto a = sim::runSweep(smallIncast(), j1);
    auto b = sim::runSweep(smallIncast(), j8);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].point.cell, b.runs[i].point.cell);
        EXPECT_EQ(a.runs[i].json, b.runs[i].json) << a.runs[i].point.cell;
        EXPECT_EQ(a.runs[i].extra, b.runs[i].extra) << a.runs[i].point.cell;
    }
    EXPECT_EQ(sim::sweepToJson(a), sim::sweepToJson(b));
}

TEST(Incast, BufferLimitedCellDropsAndDegrades)
{
    // Full measurement window so congestion control reaches steady
    // state, but only the two cells the assertion needs.
    auto spec = sim::presets::byName("incast");
    ASSERT_TRUE(spec.has_value());
    sim::SweepOptions opt;
    opt.jobs = 2;
    auto result = sim::runSweep(*spec, opt);

    std::map<std::string, const sim::RunResult *> by_cell;
    for (const auto &r : result.runs)
        by_cell[r.point.cell] = &r;

    const auto *shallow = by_cell.at("cdna/f16/buf32k");
    const auto *deep = by_cell.at("cdna/f16/buf256k");

    // The 32 KiB egress queue tail-drops under 16-way incast ...
    EXPECT_GT(shallow->report.switchDrops, 0u);
    EXPECT_GT(shallow->extra.at("sender_retrans"), 0.0);
    // ... and the peak queue depth is pinned at the configured cap.
    EXPECT_LE(shallow->report.switchQueuePeakBytes, 32u * 1024u);
    EXPECT_GT(shallow->report.switchQueuePeakBytes, 30u * 1024u);
    EXPECT_GT(deep->report.switchQueuePeakBytes, 200u * 1024u);

    // Loss-driven degradation: deep buffers deliver more aggregate
    // goodput and a healthier slowest flow than the shallow queue.
    EXPECT_GT(deep->report.mbps, shallow->report.mbps);
    EXPECT_GT(shallow->extra.at("flow_mbps_mean"), 0.0);
    EXPECT_LT(shallow->extra.at("flow_mbps_min"),
              deep->extra.at("flow_mbps_min"));
}
