/**
 * @file
 * End-to-end tests of the request/response RPC workload: requests reach
 * the guests through every virtualization path, responses come back
 * with measured tail latency, timeouts count outages, and the layer is
 * deterministic and -- when idle -- byte-inert (the six paper headline
 * reports stay bit-identical to their goldens with a zero-rate spec
 * attached).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/system.hh"
#include "net/workload/workload_engine.hh"
#include "sim/sweep.hh"
#include "sim/sweep_presets.hh"

using namespace cdna;
using namespace cdna::core;
namespace wl = cdna::net::workload;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** 512 B requests, 8 KB responses, Poisson arrivals at @p rate. */
wl::WorkloadSpec
rpcSpec(double rate)
{
    return wl::WorkloadSpec{}.withClass(
        wl::FlowClass::rpc(512, 8192).poissonAt(rate).timingOutAfter(
            sim::milliseconds(50)));
}

} // namespace

TEST(Rpc, RequestsAnsweredUnderCdna)
{
    System sys(SystemConfig::cdna(2).withNics(1).receive().withWorkload(
        rpcSpec(4000.0)));
    auto r = sys.run(sim::milliseconds(20), sim::milliseconds(100));
    EXPECT_GT(r.rpcRequests, 300u);
    // Nearly every request completes (edge-of-window stragglers aside).
    EXPECT_GT(r.rpcResponses, r.rpcRequests * 9 / 10);
    EXPECT_EQ(r.rpcTimeouts, 0u);
    EXPECT_GT(r.rpcOfferedRps, 3000.0);
    EXPECT_GT(r.rpcAchievedRps, 3000.0);
    // Latency is measured, sane, and its quantiles are ordered.
    EXPECT_GT(r.rpcLatMeanUs, 10.0);
    EXPECT_LT(r.rpcLatMeanUs, 10000.0);
    EXPECT_LE(r.rpcLatP50Us, r.rpcLatP99Us);
    EXPECT_LE(r.rpcLatP99Us, r.rpcLatP999Us);
    // Flow accounting rides along.
    EXPECT_EQ(r.flowsStarted, r.rpcRequests);
    EXPECT_EQ(r.flowsCompleted, r.rpcResponses);
}

TEST(Rpc, RequestsAnsweredUnderXen)
{
    System sys(SystemConfig::xenRice(2).withNics(1).receive().withWorkload(
        rpcSpec(4000.0)));
    auto r = sys.run(sim::milliseconds(20), sim::milliseconds(100));
    EXPECT_GT(r.rpcRequests, 300u);
    EXPECT_GT(r.rpcResponses, r.rpcRequests * 9 / 10);
    EXPECT_LE(r.rpcLatP50Us, r.rpcLatP99Us);
    EXPECT_LE(r.rpcLatP99Us, r.rpcLatP999Us);
}

TEST(Rpc, XenTailExceedsCdnaTail)
{
    // The software-multiplexed path adds driver-domain work per
    // request; its p99 must sit above CDNA's at the same offered load.
    auto tail = [](SystemConfig cfg) {
        System sys(std::move(cfg));
        return sys.run(sim::milliseconds(20), sim::milliseconds(200))
            .rpcLatP99Us;
    };
    double xen = tail(SystemConfig::xenRice(4).withNics(1).receive()
                          .withWorkload(rpcSpec(8000.0)));
    double cdna = tail(SystemConfig::cdna(4).withNics(1).receive()
                           .withWorkload(rpcSpec(8000.0)));
    EXPECT_GT(xen, 0.0);
    EXPECT_GT(cdna, 0.0);
    EXPECT_GT(xen, cdna);
}

TEST(Rpc, DriverDomainKillTimesOutXenButNotCdna)
{
    auto timeouts = [](SystemConfig cfg) {
        System sys(std::move(cfg).withFaults(
            FaultPlan{}.killingDriverDomain(30)));
        return sys.run(sim::milliseconds(20), sim::milliseconds(100))
            .rpcTimeouts;
    };
    // Xen funnels every request through dom0: the kill strands them.
    EXPECT_GT(timeouts(SystemConfig::xenRice(2).withNics(1).receive()
                           .withWorkload(rpcSpec(4000.0))),
              0u);
    // CDNA datapaths never touch dom0; no request is lost.
    EXPECT_EQ(timeouts(SystemConfig::cdna(2).withNics(1).receive()
                           .withWorkload(rpcSpec(4000.0))),
              0u);
}

TEST(Rpc, ClosedLoopKeepsConcurrencyOutstanding)
{
    wl::WorkloadSpec spec;
    spec.withClass(wl::FlowClass::rpc(512, 4096).closedLoop(4));
    System sys(
        SystemConfig::cdna(1).withNics(1).receive().withWorkload(spec));
    auto r = sys.run(sim::milliseconds(20), sim::milliseconds(100));
    // The loop self-clocks: every completion launches the next request,
    // so requests can exceed responses only by the outstanding window.
    EXPECT_GT(r.rpcResponses, 100u);
    EXPECT_LE(r.rpcRequests, r.rpcResponses + r.rpcTimeouts + 4);
}

TEST(Rpc, ReportIsDeterministicAcrossRebuilds)
{
    auto run = [] {
        System sys(SystemConfig::cdna(2).withNics(1).receive().withWorkload(
            rpcSpec(4000.0)));
        return reportToJson(
            sys.run(sim::milliseconds(20), sim::milliseconds(100)));
    };
    EXPECT_EQ(run(), run());
}

TEST(Rpc, LatencyPresetDeterministicAcrossJobs)
{
    // The full preset is 18 cells; two seeds of its grid suffice here.
    auto spec = sim::presets::latency()
                    .warmup(sim::milliseconds(5))
                    .measure(sim::milliseconds(20));
    sim::SweepOptions j1;
    j1.jobs = 1;
    sim::SweepOptions j8;
    j8.jobs = 8;
    auto a = sim::runSweep(spec, j1);
    auto b = sim::runSweep(spec, j8);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    EXPECT_EQ(sim::sweepToJson(a), sim::sweepToJson(b));
    // The preset's cells actually exercise the RPC machinery.
    bool any_rpc = false;
    for (const auto &run : a.runs)
        any_rpc |= run.json.find("\"rpc_requests\": 0,") == std::string::npos;
    EXPECT_TRUE(any_rpc);
}

/**
 * The workload layer must be byte-inert when idle: attaching a
 * zero-rate spec (plus, on receive, the saturating class replicating
 * the legacy flood) leaves all six paper headline reports bit-identical
 * to the PR-7 goldens.  This pins the RNG-stream isolation -- engine
 * construction draws nothing from the context stream -- and the
 * append-only report schema.
 */
TEST(Rpc, ZeroRateSpecKeepsHeadlineGoldensBitIdentical)
{
    // Poisson at rate 0 never fires; the class exists only to force the
    // engine (and the guests' rpc-server handler) to be built.
    auto idle_rpc = wl::FlowClass::rpc(512, 8192).poissonAt(0.0);
    wl::WorkloadSpec tx_spec = wl::WorkloadSpec{}.withClass(idle_rpc);
    wl::WorkloadSpec rx_spec =
        wl::WorkloadSpec{}
            .withClass(wl::FlowClass::saturating())
            .withClass(idle_rpc);
    struct Cfg
    {
        const char *file;
        SystemConfig cfg;
    };
    std::vector<Cfg> cfgs = {
        {"headline-xen-intel-tx.json",
         SystemConfig::xenIntel(1).withWorkload(tx_spec)},
        {"headline-xen-intel-rx.json",
         SystemConfig::xenIntel(1).receive().withWorkload(rx_spec)},
        {"headline-xen-rice-tx.json",
         SystemConfig::xenRice(1).withWorkload(tx_spec)},
        {"headline-xen-rice-rx.json",
         SystemConfig::xenRice(1).receive().withWorkload(rx_spec)},
        {"headline-cdna-rice-tx.json",
         SystemConfig::cdna(1).withWorkload(tx_spec)},
        {"headline-cdna-rice-rx.json",
         SystemConfig::cdna(1).receive().withWorkload(rx_spec)},
    };
    for (auto &c : cfgs) {
        std::string golden =
            readFile(std::string(CDNA_GOLDEN_DIR) + "/" + c.file);
        ASSERT_FALSE(golden.empty()) << c.file;
        System sys(c.cfg);
        auto r = sys.run(sim::milliseconds(50), sim::milliseconds(200));
        std::string json = reportToJson(r);
        EXPECT_EQ(r.rpcRequests, 0u) << c.file;
        std::istringstream lines(golden);
        std::string line;
        while (std::getline(lines, line)) {
            if (line.find("\"schema_version\"") != std::string::npos)
                continue;
            EXPECT_NE(json.find(line), std::string::npos)
                << c.file << ": line diverged under idle workload: "
                << line;
        }
    }
}
