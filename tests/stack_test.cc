/**
 * @file
 * Unit tests for the kernel network stack model: segmentation (TSO vs
 * MSS), scatter/gather page mapping, device-full backpressure, RX
 * batching, and ACK generation.
 */

#include <gtest/gtest.h>

#include <memory>

#include "os/net_stack.hh"
#include "vmm/hypervisor.hh"

using namespace cdna;
using namespace cdna::os;

namespace {

/** Scriptable in-memory NetDevice. */
struct FakeDevice : NetDevice
{
    bool tso = false;
    std::size_t capacity = 1000;
    std::vector<net::Packet> sent;
    net::MacAddr addr = net::MacAddr::fromId(42);

    bool canTransmit() const override { return sent.size() < capacity; }
    void transmit(net::Packet pkt) override { sent.push_back(std::move(pkt)); }
    net::MacAddr mac() const override { return addr; }
    bool tsoCapable() const override { return tso; }

    using NetDevice::deliverRx;
    using NetDevice::deliverTxComplete;
    using NetDevice::deliverTxSpace;
};

struct StackFixture : ::testing::Test
{
    sim::SimContext ctx;
    mem::PhysMemory mem{ctx, 4096};
    cpu::SimCpu cpu{ctx, "cpu"};
    vmm::Hypervisor hv{ctx, cpu, mem};
    core::CostModel costs;
    FakeDevice dev;
    vmm::Domain *dom = nullptr;
    std::unique_ptr<NetStack> stack;

    void
    SetUp() override
    {
        dom = &hv.createDomain(vmm::Domain::Kind::kGuest, "g");
        stack = std::make_unique<NetStack>(ctx, "stack", *dom, dev, costs);
        stack->setDefaultDst(net::MacAddr::fromId(99));
    }

    std::vector<mem::PageNum>
    buffer(std::uint32_t pages)
    {
        return mem.alloc(dom->id(), pages);
    }
};

} // namespace

TEST_F(StackFixture, NonTsoSegmentsAtMss)
{
    dev.tso = false;
    stack->sendBurst(65536, 1, buffer(16));
    ctx.events().run();
    // ceil(65536 / 1460) = 45 frames.
    ASSERT_EQ(dev.sent.size(), 45u);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < dev.sent.size(); ++i) {
        const auto &p = dev.sent[i];
        EXPECT_LE(p.payloadBytes, net::kMss);
        if (i + 1 < dev.sent.size())
            EXPECT_EQ(p.payloadBytes, net::kMss);
        EXPECT_EQ(p.dst, net::MacAddr::fromId(99));
        EXPECT_EQ(p.src, dev.addr);
        EXPECT_EQ(p.srcDomain, dom->id());
        total += p.payloadBytes;
    }
    EXPECT_EQ(total, 65536u);
    EXPECT_EQ(stack->txBytes(), 65536u);
}

TEST_F(StackFixture, TsoSendsWholeSegments)
{
    dev.tso = true;
    stack->sendBurst(65536, 1, buffer(16));
    ctx.events().run();
    ASSERT_EQ(dev.sent.size(), 1u);
    EXPECT_EQ(dev.sent[0].payloadBytes, 65536u);
}

TEST_F(StackFixture, SgEntriesCoverExactBytes)
{
    dev.tso = false;
    auto pages = buffer(16);
    stack->sendBurst(65536, 1, pages);
    ctx.events().run();
    // Every packet's SG list sums to its payload and stays inside the
    // buffer pages.
    for (const auto &p : dev.sent) {
        EXPECT_EQ(mem::sgBytes(p.hostSg), p.payloadBytes);
        for (const auto &e : p.hostSg) {
            mem::PageNum pg = mem::pageOf(e.addr);
            bool inside = false;
            for (auto bp : pages)
                inside |= pg == bp ||
                          mem::pageOf(e.addr + e.len - 1) == bp;
            EXPECT_TRUE(inside);
        }
    }
}

TEST_F(StackFixture, FramesCrossingPagesGetTwoSgEntries)
{
    dev.tso = false;
    stack->sendBurst(4 * 1460, 1, buffer(2));
    ctx.events().run();
    ASSERT_EQ(dev.sent.size(), 4u);
    // Frame 0 fits in page 0; frames 2 (offset 2920..4380) crosses the
    // 4096 boundary.
    EXPECT_EQ(dev.sent[0].hostSg.size(), 1u);
    EXPECT_EQ(dev.sent[2].hostSg.size(), 2u);
}

TEST_F(StackFixture, DeviceFullQueuesAndResumesOnSpace)
{
    dev.tso = false;
    dev.capacity = 10;
    stack->sendBurst(30 * 1460, 1, buffer(11));
    ctx.events().run();
    EXPECT_EQ(dev.sent.size(), 10u);

    // The device frees up and reports space; the stack drains.
    dev.capacity = 1000;
    dev.deliverTxSpace();
    ctx.events().run();
    EXPECT_EQ(dev.sent.size(), 30u);
}

TEST_F(StackFixture, DeviceFullPreservesFlushOrdering)
{
    // Frames requeued while the device was full must drain in their
    // original order: every frame's first SG entry maps the buffer
    // offset its position implies.
    dev.tso = false;
    dev.capacity = 10;
    auto pages = buffer(11);
    stack->sendBurst(30 * 1460, 1, pages);
    ctx.events().run();
    dev.capacity = 1000;
    dev.deliverTxSpace();
    ctx.events().run();
    ASSERT_EQ(dev.sent.size(), 30u);
    for (std::size_t i = 0; i < dev.sent.size(); ++i) {
        std::uint64_t off = i * 1460ull;
        mem::PhysAddr expect =
            mem::addrOf(pages[off / mem::kPageSize]) + off % mem::kPageSize;
        ASSERT_FALSE(dev.sent[i].hostSg.empty());
        EXPECT_EQ(dev.sent[i].hostSg[0].addr, expect) << "frame " << i;
    }
}

TEST_F(StackFixture, BacklogWatermarkTracksDeviceFull)
{
    dev.tso = false;
    dev.capacity = 10;
    stack->sendBurst(30 * 1460, 1, buffer(11));
    ctx.events().run();
    // 30 frames, 10 accepted: 20 sit in the backlog.
    EXPECT_EQ(stack->txBacklogDepth(), 20u);
    EXPECT_EQ(stack->txBacklogPeak(), 20u);

    dev.capacity = 1000;
    dev.deliverTxSpace();
    ctx.events().run();
    EXPECT_EQ(stack->txBacklogDepth(), 0u);
    // The peak is a lifetime high-watermark, not a current depth.
    EXPECT_EQ(stack->txBacklogPeak(), 20u);
}

TEST_F(StackFixture, BadChecksumFramesDroppedBeforeDelivery)
{
    std::uint32_t pkts = 0;
    stack->setRxDeliverHandler(
        [&](std::uint64_t, std::uint32_t p) { pkts += p; });
    net::Packet bad;
    bad.payloadBytes = 1460;
    bad.src = net::MacAddr::fromId(7);
    bad.intact = false;
    dev.deliverRx(std::move(bad));
    ctx.events().run();
    EXPECT_EQ(pkts, 0u);
    EXPECT_EQ(stack->rxDropsBadCsum(), 1u);
    EXPECT_EQ(stack->rxBytes(), 0u);
    // No ACK is generated for a frame that failed its checksum.
    EXPECT_TRUE(dev.sent.empty());
}

TEST_F(StackFixture, TcpModeSegmentsRespectInitialWindow)
{
    dev.tso = false;
    stack->enableTcp(net::transport::TcpParams{});
    stack->sendBurst(30 * 1460, 1, buffer(11));
    // Run to just before the first RTO (3 ms): with no ACKs, only the
    // initial congestion window (IW10) leaves.
    ctx.events().runUntil(sim::milliseconds(1));
    ASSERT_EQ(dev.sent.size(), 10u);
    for (std::size_t i = 0; i < dev.sent.size(); ++i) {
        EXPECT_TRUE(dev.sent[i].tcpData);
        EXPECT_EQ(dev.sent[i].seq, i * 1460ull);
        EXPECT_EQ(dev.sent[i].payloadBytes, 1460u);
    }

    // An ACK for the first two segments opens the window again.
    net::Packet ack;
    ack.src = net::MacAddr::fromId(99);
    ack.tcpAck = true;
    ack.flowId = 1;
    ack.ackNo = 2 * 1460;
    dev.deliverRx(std::move(ack));
    ctx.events().runUntil(sim::milliseconds(2));
    EXPECT_GT(dev.sent.size(), 10u);
    EXPECT_EQ(dev.sent[10].seq, 10 * 1460ull);
}

TEST_F(StackFixture, TxCompleteForwarded)
{
    std::uint64_t completed = 0;
    stack->setTxCompleteHandler([&](std::uint64_t b) { completed += b; });
    dev.deliverTxComplete(1460);
    dev.deliverTxComplete(1460);
    EXPECT_EQ(completed, 2920u);
}

TEST_F(StackFixture, RxBatchDeliveredToApp)
{
    std::uint64_t bytes = 0;
    std::uint32_t pkts = 0;
    stack->setRxDeliverHandler([&](std::uint64_t b, std::uint32_t p) {
        bytes += b;
        pkts += p;
    });
    for (int i = 0; i < 5; ++i) {
        net::Packet p;
        p.payloadBytes = 1460;
        p.src = net::MacAddr::fromId(7);
        dev.deliverRx(std::move(p));
    }
    ctx.events().run();
    EXPECT_EQ(bytes, 5u * 1460);
    EXPECT_EQ(pkts, 5u);
    EXPECT_EQ(stack->rxBytes(), 5u * 1460);
    // OS and user time were charged for the delivery.
    EXPECT_GT(cpu.profile().domainTime(dom->id(), cpu::Bucket::kOs), 0);
    EXPECT_GT(cpu.profile().domainTime(dom->id(), cpu::Bucket::kUser), 0);
}

TEST_F(StackFixture, GeneratesDelayedAcks)
{
    // 6 data frames with ack-every-2 -> 3 ACKs out the device.
    for (int i = 0; i < 6; ++i) {
        net::Packet p;
        p.payloadBytes = 1460;
        p.src = net::MacAddr::fromId(7);
        dev.deliverRx(std::move(p));
    }
    ctx.events().run();
    ASSERT_EQ(dev.sent.size(), 3u);
    for (const auto &ack : dev.sent) {
        EXPECT_EQ(ack.payloadBytes, 0u);
        EXPECT_EQ(ack.dst, net::MacAddr::fromId(7));
    }
}

TEST_F(StackFixture, IncomingAcksNotDeliveredToApp)
{
    std::uint32_t pkts = 0;
    stack->setRxDeliverHandler(
        [&](std::uint64_t, std::uint32_t p) { pkts += p; });
    net::Packet ack;
    ack.payloadBytes = 0;
    ack.src = net::MacAddr::fromId(7);
    dev.deliverRx(std::move(ack));
    ctx.events().run();
    EXPECT_EQ(pkts, 0u);
    // And no ACK was generated in response.
    EXPECT_TRUE(dev.sent.empty());
}

TEST_F(StackFixture, AckDebtCarriesAcrossBatches)
{
    // 3 data frames (ack-every-2): one ACK now, debt 1 carried; one
    // more frame completes the second ACK.
    for (int i = 0; i < 3; ++i) {
        net::Packet p;
        p.payloadBytes = 100;
        p.src = net::MacAddr::fromId(7);
        dev.deliverRx(std::move(p));
    }
    ctx.events().run();
    EXPECT_EQ(dev.sent.size(), 1u);
    net::Packet p;
    p.payloadBytes = 100;
    p.src = net::MacAddr::fromId(7);
    dev.deliverRx(std::move(p));
    ctx.events().run();
    EXPECT_EQ(dev.sent.size(), 2u);
}

/** Property sweep: segmentation conserves bytes for arbitrary sizes. */
class StackSegmentation : public StackFixture,
                          public ::testing::WithParamInterface<std::uint32_t>
{
};

TEST_P(StackSegmentation, ConservesBytes)
{
    dev.tso = false;
    std::uint32_t bytes = GetParam();
    stack->sendBurst(bytes, 1, buffer((bytes + 4095) / 4096));
    ctx.events().run();
    std::uint64_t total = 0;
    for (const auto &p : dev.sent) {
        EXPECT_GT(p.payloadBytes, 0u);
        EXPECT_LE(p.payloadBytes, net::kMss);
        EXPECT_EQ(mem::sgBytes(p.hostSg), p.payloadBytes);
        total += p.payloadBytes;
    }
    EXPECT_EQ(total, bytes);
    EXPECT_EQ(dev.sent.size(), (bytes + net::kMss - 1) / net::kMss);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StackSegmentation,
                         ::testing::Values(1, 100, 1460, 1461, 2920, 4096,
                                           10000, 65536, 65535, 32768));
