/**
 * @file
 * Unit tests for the benchmark application (window bookkeeping,
 * connection round-robin, sink accounting) and for the declarative
 * workload layer (spec fluency, applyWorkload equivalence with the
 * legacy setter sequence, seeded arrival/size distributions).
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "net/eth_link.hh"
#include "net/traffic_peer.hh"
#include "net/workload/workload_engine.hh"
#include "os/net_stack.hh"
#include "vmm/hypervisor.hh"
#include "workload/traffic_app.hh"

using namespace cdna;

namespace {

/** NetDevice that records transmissions and completes them on demand. */
struct EchoDevice : os::NetDevice
{
    std::vector<net::Packet> sent;
    bool tso = true;

    bool canTransmit() const override { return true; }
    void transmit(net::Packet pkt) override { sent.push_back(std::move(pkt)); }
    net::MacAddr mac() const override { return net::MacAddr::fromId(1); }
    bool tsoCapable() const override { return tso; }

    void
    completeAll()
    {
        auto batch = std::exchange(sent, {});
        for (auto &p : batch)
            deliverTxComplete(p.payloadBytes);
    }

    using NetDevice::deliverRx;
};

struct AppFixture : ::testing::Test
{
    sim::SimContext ctx;
    mem::PhysMemory mem{ctx, 4096};
    cpu::SimCpu cpu{ctx, "cpu"};
    vmm::Hypervisor hv{ctx, cpu, mem};
    core::CostModel costs;
    EchoDevice dev;
    vmm::Domain *dom = nullptr;
    std::unique_ptr<os::NetStack> stack;

    void
    SetUp() override
    {
        dom = &hv.createDomain(vmm::Domain::Kind::kGuest, "g");
        stack = std::make_unique<os::NetStack>(ctx, "stack", *dom, dev,
                                               costs);
        stack->setDefaultDst(net::MacAddr::fromId(2));
    }
};

} // namespace

TEST_F(AppFixture, TransmitFillsWindowThenWaits)
{
    workload::TrafficApp::Params params;
    params.connections = 2;
    params.windowBytes = 4 * 65536;
    params.chunkBytes = 65536;
    params.transmit = true;
    workload::TrafficApp app(ctx, "app", *stack, costs, params);
    app.start();
    ctx.events().run();

    // Exactly window/chunk chunks in flight; generation paused.
    EXPECT_EQ(app.bytesSent(), 4u * 65536);
    EXPECT_EQ(dev.sent.size(), 4u); // one TSO segment per chunk

    // Completions reopen the window.
    dev.completeAll();
    ctx.events().run();
    EXPECT_EQ(app.bytesSent(), 8u * 65536);
}

TEST_F(AppFixture, RoundRobinAcrossConnections)
{
    workload::TrafficApp::Params params;
    params.connections = 4;
    params.windowBytes = 4 * 65536;
    params.transmit = true;
    workload::TrafficApp app(ctx, "app", *stack, costs, params);
    app.start();
    ctx.events().run();
    ASSERT_EQ(dev.sent.size(), 4u);
    // Each chunk came from a different connection (flow ids 1..4).
    std::set<std::uint64_t> flows;
    for (const auto &p : dev.sent)
        flows.insert(p.flowId);
    EXPECT_EQ(flows.size(), 4u);
}

TEST_F(AppFixture, ReceiveModeOnlySinks)
{
    workload::TrafficApp::Params params;
    params.transmit = false;
    workload::TrafficApp app(ctx, "app", *stack, costs, params);
    app.start();
    ctx.events().run();
    EXPECT_EQ(app.bytesSent(), 0u);
    EXPECT_TRUE(dev.sent.empty());

    net::Packet p;
    p.payloadBytes = 1000;
    p.src = net::MacAddr::fromId(9);
    dev.deliverRx(std::move(p));
    ctx.events().run();
    EXPECT_EQ(app.bytesReceived(), 1000u);
    EXPECT_EQ(app.packetsReceived(), 1u);
}

TEST_F(AppFixture, StartIsIdempotent)
{
    workload::TrafficApp::Params params;
    params.windowBytes = 65536;
    params.transmit = true;
    workload::TrafficApp app(ctx, "app", *stack, costs, params);
    app.start();
    app.start();
    ctx.events().run();
    EXPECT_EQ(app.bytesSent(), 65536u);
}

TEST_F(AppFixture, UserTimeChargedForWrites)
{
    workload::TrafficApp::Params params;
    params.windowBytes = 2 * 65536;
    params.transmit = true;
    workload::TrafficApp app(ctx, "app", *stack, costs, params);
    app.start();
    ctx.events().run();
    EXPECT_GT(cpu.profile().domainTime(dom->id(), cpu::Bucket::kUser), 0);
}

// ------------------------------------------------- declarative specs ----

namespace {

/** Far-end frame counter for peer-driven workload tests. */
struct FrameSink : net::LinkEndpoint
{
    std::vector<net::Packet> got;
    void receiveFrame(net::Packet pkt) override
    {
        got.push_back(std::move(pkt));
    }
};

} // namespace

TEST(Workload, SpecFluencyAndPredicates)
{
    namespace wl = net::workload;
    wl::WorkloadSpec spec;
    EXPECT_TRUE(spec.empty());
    EXPECT_FALSE(spec.hasRpc());
    spec.withClass(wl::FlowClass::rpc(512, 8192).poissonAt(5000.0))
        .filteringMac()
        .ackingEvery(2)
        .seeded(7);
    EXPECT_FALSE(spec.empty());
    EXPECT_TRUE(spec.hasRpc());
    EXPECT_TRUE(spec.needsEngine());
    ASSERT_EQ(spec.classes.size(), 1u);
    const wl::FlowClass &fc = spec.classes[0];
    EXPECT_EQ(fc.kind, wl::FlowKind::kRpc);
    EXPECT_EQ(fc.arrival, wl::Arrival::kPoisson);
    EXPECT_EQ(fc.ratePerSec, 5000.0);
    EXPECT_EQ(fc.sizeBytes, 512u);
    EXPECT_EQ(fc.rpcRespBytes, 8192u);
    EXPECT_EQ(spec.seed, 7u);
    ASSERT_TRUE(spec.macFilter.has_value());
    EXPECT_TRUE(*spec.macFilter);
    ASSERT_TRUE(spec.ackEvery.has_value());
    EXPECT_EQ(*spec.ackEvery, 2u);

    // A saturating-only spec runs on the legacy source machinery.
    wl::WorkloadSpec flood;
    flood.withClass(wl::FlowClass::saturating());
    EXPECT_FALSE(flood.needsEngine());
    EXPECT_FALSE(flood.hasRpc());
}

TEST(Workload, PoissonArrivalsAreSeededDeterministically)
{
    // Same seed => identical arrival sequence; different seed =>
    // different draws from the dedicated workload stream.
    namespace wl = net::workload;
    auto run = [](std::uint64_t seed) {
        sim::SimContext ctx;
        net::EthLink link(ctx, "eth");
        net::TrafficPeer peer(ctx, "peer", link);
        FrameSink sink;
        link.bind(sink);
        peer.applyWorkload(
            wl::WorkloadSpec{}
                .seeded(seed)
                .toward({net::MacAddr::fromId(1)})
                .withClass(wl::FlowClass::stream(1000, 20000.0)
                               .poissonAt(20000.0)));
        ctx.events().runUntil(sim::milliseconds(20));
        std::vector<sim::Time> stamps;
        for (const auto &p : sink.got)
            stamps.push_back(p.created);
        return stamps;
    };
    auto a1 = run(42);
    auto a2 = run(42);
    auto b = run(43);
    EXPECT_FALSE(a1.empty());
    EXPECT_EQ(a1, a2);
    EXPECT_NE(a1, b);
}

TEST(Workload, BoundedParetoSizesStayInBounds)
{
    // hi <= MSS keeps each burst in one wire frame, exposing the raw
    // size draws; every draw must respect [lo, hi] and the heavy tail
    // must actually spread (not collapse to a constant).
    namespace wl = net::workload;
    sim::SimContext ctx;
    net::EthLink link(ctx, "eth");
    net::TrafficPeer peer(ctx, "peer", link);
    FrameSink sink;
    link.bind(sink);
    peer.applyWorkload(
        wl::WorkloadSpec{}
            .toward({net::MacAddr::fromId(1)})
            .withClass(wl::FlowClass::stream(0, 50000.0)
                           .at(50000.0)
                           .sizedPareto(64, 1400, 1.2)));
    ctx.events().runUntil(sim::milliseconds(20));
    ASSERT_GT(sink.got.size(), 100u);
    std::set<std::uint32_t> sizes;
    for (const auto &p : sink.got) {
        EXPECT_GE(p.payloadBytes, 64u);
        EXPECT_LE(p.payloadBytes, 1400u);
        sizes.insert(p.payloadBytes);
    }
    EXPECT_GT(sizes.size(), 10u);
}

TEST(Workload, OnOffBurstsPreserveMeanRate)
{
    // ON/OFF at 25% duty must deliver roughly the configured mean rate
    // (the ON phase runs 4x hot), and the OFF phases must be silent.
    namespace wl = net::workload;
    sim::SimContext ctx;
    net::EthLink link(ctx, "eth");
    net::TrafficPeer peer(ctx, "peer", link);
    FrameSink sink;
    link.bind(sink);
    const double rate = 20000.0;
    peer.applyWorkload(
        wl::WorkloadSpec{}
            .toward({net::MacAddr::fromId(1)})
            .withClass(wl::FlowClass::stream(100, rate).burstyAt(
                rate, 0.25, sim::milliseconds(2))));
    const double secs = 0.1;
    ctx.events().runUntil(sim::milliseconds(100));
    double got = static_cast<double>(sink.got.size());
    EXPECT_GT(got, 0.6 * rate * secs);
    EXPECT_LT(got, 1.4 * rate * secs);
    // No arrival may land in an OFF window (phase >= 25% of period).
    for (const auto &p : sink.got) {
        sim::Time phase = p.created % sim::milliseconds(2);
        EXPECT_LT(phase, sim::milliseconds(2) / 4);
    }
}

TEST(Workload, FlowStatsAggregatesPeerCounters)
{
    namespace wl = net::workload;
    sim::SimContext ctx;
    net::EthLink link(ctx, "eth");
    net::TrafficPeer peer(ctx, "peer", link);
    net::Packet p;
    p.src = net::MacAddr::fromId(5);
    p.payloadBytes = 1000;
    link.port(1).send(p);
    link.port(1).send(p);
    ctx.events().run();
    net::FlowStats fs = peer.flowStats();
    EXPECT_EQ(fs.payloadDelivered, 2000u);
    EXPECT_EQ(fs.framesReceived, 2u);
    EXPECT_EQ(fs.receivedBySrc.at(net::MacAddr::fromId(5)), 2000u);
    EXPECT_EQ(fs.rxDuplicates, 0u);
    EXPECT_EQ(fs.ackedBytes, 0u); // no TCP endpoint
}
