/**
 * @file
 * Unit tests for the benchmark application: window bookkeeping,
 * connection round-robin, and sink accounting.
 */

#include <gtest/gtest.h>

#include <memory>

#include "os/net_stack.hh"
#include "vmm/hypervisor.hh"
#include "workload/traffic_app.hh"

using namespace cdna;

namespace {

/** NetDevice that records transmissions and completes them on demand. */
struct EchoDevice : os::NetDevice
{
    std::vector<net::Packet> sent;
    bool tso = true;

    bool canTransmit() const override { return true; }
    void transmit(net::Packet pkt) override { sent.push_back(std::move(pkt)); }
    net::MacAddr mac() const override { return net::MacAddr::fromId(1); }
    bool tsoCapable() const override { return tso; }

    void
    completeAll()
    {
        auto batch = std::exchange(sent, {});
        for (auto &p : batch)
            deliverTxComplete(p.payloadBytes);
    }

    using NetDevice::deliverRx;
};

struct AppFixture : ::testing::Test
{
    sim::SimContext ctx;
    mem::PhysMemory mem{ctx, 4096};
    cpu::SimCpu cpu{ctx, "cpu"};
    vmm::Hypervisor hv{ctx, cpu, mem};
    core::CostModel costs;
    EchoDevice dev;
    vmm::Domain *dom = nullptr;
    std::unique_ptr<os::NetStack> stack;

    void
    SetUp() override
    {
        dom = &hv.createDomain(vmm::Domain::Kind::kGuest, "g");
        stack = std::make_unique<os::NetStack>(ctx, "stack", *dom, dev,
                                               costs);
        stack->setDefaultDst(net::MacAddr::fromId(2));
    }
};

} // namespace

TEST_F(AppFixture, TransmitFillsWindowThenWaits)
{
    workload::TrafficApp::Params params;
    params.connections = 2;
    params.windowBytes = 4 * 65536;
    params.chunkBytes = 65536;
    params.transmit = true;
    workload::TrafficApp app(ctx, "app", *stack, costs, params);
    app.start();
    ctx.events().run();

    // Exactly window/chunk chunks in flight; generation paused.
    EXPECT_EQ(app.bytesSent(), 4u * 65536);
    EXPECT_EQ(dev.sent.size(), 4u); // one TSO segment per chunk

    // Completions reopen the window.
    dev.completeAll();
    ctx.events().run();
    EXPECT_EQ(app.bytesSent(), 8u * 65536);
}

TEST_F(AppFixture, RoundRobinAcrossConnections)
{
    workload::TrafficApp::Params params;
    params.connections = 4;
    params.windowBytes = 4 * 65536;
    params.transmit = true;
    workload::TrafficApp app(ctx, "app", *stack, costs, params);
    app.start();
    ctx.events().run();
    ASSERT_EQ(dev.sent.size(), 4u);
    // Each chunk came from a different connection (flow ids 1..4).
    std::set<std::uint64_t> flows;
    for (const auto &p : dev.sent)
        flows.insert(p.flowId);
    EXPECT_EQ(flows.size(), 4u);
}

TEST_F(AppFixture, ReceiveModeOnlySinks)
{
    workload::TrafficApp::Params params;
    params.transmit = false;
    workload::TrafficApp app(ctx, "app", *stack, costs, params);
    app.start();
    ctx.events().run();
    EXPECT_EQ(app.bytesSent(), 0u);
    EXPECT_TRUE(dev.sent.empty());

    net::Packet p;
    p.payloadBytes = 1000;
    p.src = net::MacAddr::fromId(9);
    dev.deliverRx(std::move(p));
    ctx.events().run();
    EXPECT_EQ(app.bytesReceived(), 1000u);
    EXPECT_EQ(app.packetsReceived(), 1u);
}

TEST_F(AppFixture, StartIsIdempotent)
{
    workload::TrafficApp::Params params;
    params.windowBytes = 65536;
    params.transmit = true;
    workload::TrafficApp app(ctx, "app", *stack, costs, params);
    app.start();
    app.start();
    ctx.events().run();
    EXPECT_EQ(app.bytesSent(), 65536u);
}

TEST_F(AppFixture, UserTimeChargedForWrites)
{
    workload::TrafficApp::Params params;
    params.windowBytes = 2 * 65536;
    params.transmit = true;
    workload::TrafficApp app(ctx, "app", *stack, costs, params);
    app.start();
    ctx.events().run();
    EXPECT_GT(cpu.profile().domainTime(dom->id(), cpu::Bucket::kUser), 0);
}
