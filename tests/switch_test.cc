/**
 * @file
 * Unit tests for the output-queued Ethernet switch: forwarding and
 * learning, FIFO ordering, finite-buffer tail drop, store-and-forward
 * latency, and the per-port drain/backpressure surface two endpoints
 * share without starving each other.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "net/eth_switch.hh"
#include "net/packet.hh"
#include "net/traffic_peer.hh"
#include "sim/sim_object.hh"

using namespace cdna;
using namespace cdna::net;

namespace {

struct Sink : LinkEndpoint
{
    std::vector<Packet> got;
    sim::Time last_at = 0;
    sim::EventQueue *eq = nullptr;

    void
    receiveFrame(Packet pkt) override
    {
        got.push_back(std::move(pkt));
        if (eq)
            last_at = eq->now();
    }
};

Packet
frame(MacAddr src, MacAddr dst, std::uint32_t payload = kMss)
{
    Packet p;
    p.src = src;
    p.dst = dst;
    p.payloadBytes = payload;
    return p;
}

} // namespace

TEST(Switch, StaticRouteForwardsToPinnedPort)
{
    sim::SimContext ctx;
    EthSwitch sw(ctx, "sw", 3);
    Sink a, b, c;
    Port &pa = sw.bind(a);
    sw.bind(b);
    sw.bind(c);

    auto mb = MacAddr::fromId(2);
    sw.setRoute(mb, 1);
    pa.send(frame(MacAddr::fromId(1), mb));
    ctx.events().run();
    EXPECT_EQ(b.got.size(), 1u);
    EXPECT_TRUE(c.got.empty());
    EXPECT_TRUE(a.got.empty());
}

TEST(Switch, LearningFloodsUnknownThenUnicasts)
{
    sim::SimContext ctx;
    EthSwitch sw(ctx, "sw", 3);
    Sink a, b, c;
    Port &pa = sw.bind(a);
    Port &pb = sw.bind(b);
    sw.bind(c);

    auto ma = MacAddr::fromId(1);
    auto mb = MacAddr::fromId(2);
    // Unknown destination: flooded to both other ports (never the
    // ingress port, so no loop through a two-switch trunk either).
    pa.send(frame(ma, mb));
    ctx.events().run();
    EXPECT_EQ(b.got.size(), 1u);
    EXPECT_EQ(c.got.size(), 1u);
    EXPECT_TRUE(a.got.empty());

    // b replies; the switch learned a's port from the flood, so the
    // reply unicasts, and the next a->b frame unicasts too.
    pb.send(frame(mb, ma));
    ctx.events().run();
    EXPECT_EQ(a.got.size(), 1u);
    EXPECT_EQ(c.got.size(), 1u);

    pa.send(frame(ma, mb));
    ctx.events().run();
    EXPECT_EQ(b.got.size(), 2u);
    EXPECT_EQ(c.got.size(), 1u);
}

TEST(Switch, RoutingOffDropsUnroutedFrames)
{
    sim::SimContext ctx;
    EthSwitchParams params;
    params.learning = false;
    EthSwitch sw(ctx, "sw", 2, params);
    Sink a, b;
    Port &pa = sw.bind(a);
    sw.bind(b);

    pa.send(frame(MacAddr::fromId(1), MacAddr::fromId(2)));
    ctx.events().run();
    EXPECT_TRUE(b.got.empty());
    EXPECT_EQ(sw.unrouted(), 1u);
}

TEST(Switch, FifoOrderingPerPortPair)
{
    sim::SimContext ctx;
    EthSwitch sw(ctx, "sw", 2);
    Sink a, b;
    Port &pa = sw.bind(a);
    sw.bind(b);

    auto mb = MacAddr::fromId(2);
    sw.setRoute(mb, 1);
    for (std::uint64_t i = 1; i <= 8; ++i) {
        Packet p = frame(MacAddr::fromId(1), mb);
        p.id = i;
        pa.send(std::move(p));
    }
    ctx.events().run();
    ASSERT_EQ(b.got.size(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(b.got[i].id, i + 1);
}

TEST(Switch, StoreAndForwardLatency)
{
    sim::SimContext ctx;
    EthSwitchParams params;
    params.propagation = sim::nanoseconds(500);
    params.forwardLatency = sim::microseconds(4);
    EthSwitch sw(ctx, "sw", 2, params);
    Sink a, b;
    b.eq = &ctx.events();
    Port &pa = sw.bind(a);
    sw.bind(b);

    auto mb = MacAddr::fromId(2);
    sw.setRoute(mb, 1);
    pa.send(frame(MacAddr::fromId(1), mb));
    ctx.events().run();
    ASSERT_EQ(b.got.size(), 1u);
    // Ingress serialization (1538 B at 8 ns/B) + cable propagation +
    // forwarding latency + egress serialization + cable propagation.
    sim::Time wire = sim::nanoseconds(1538 * 8);
    EXPECT_EQ(b.last_at, 2 * wire + 2 * sim::nanoseconds(500) +
                             sim::microseconds(4));
}

TEST(Switch, TailDropIncrementsRightCounter)
{
    sim::SimContext ctx;
    EthSwitchParams params;
    // Room for exactly two full frames in an egress queue.
    params.bufBytesPerPort = 2 * 1538;
    params.forwardLatency = 0;
    EthSwitch sw(ctx, "sw", 3, params);
    Sink a, b, c;
    Port &pa = sw.bind(a);
    sw.bind(b);
    Port &pc = sw.bind(c);

    auto mb = MacAddr::fromId(2);
    sw.setRoute(mb, 1);
    // Burst arrives faster than port 1 can drain: ingress on two ports
    // at once converges on one egress queue.  Each ingress delivers a
    // frame every 12.3 us; egress takes 12.3 us per frame, so the queue
    // grows by ~1 frame per 12.3 us until the 2-frame cap tail-drops.
    for (int i = 0; i < 6; ++i) {
        pa.send(frame(MacAddr::fromId(1), mb));
        pc.send(frame(MacAddr::fromId(3), mb));
    }
    ctx.events().run();
    EXPECT_GT(sw.port(1).egressDrops(), 0u);
    EXPECT_EQ(sw.port(1).egressDrops(), sw.totalDrops());
    EXPECT_EQ(sw.port(1).egressDropBytes(),
              sw.port(1).egressDrops() * 1538u);
    EXPECT_EQ(sw.port(0).egressDrops(), 0u);
    EXPECT_EQ(sw.port(2).egressDrops(), 0u);
    // Everything not dropped was delivered.
    EXPECT_EQ(b.got.size(), 12u - sw.totalDrops());
    EXPECT_EQ(sw.port(1).queuePeakBytes(), 2u * 1538u);
}

TEST(Switch, CorruptFramesConsumeBuffer)
{
    sim::SimContext ctx;
    EthSwitchParams params;
    params.bufBytesPerPort = 2 * 1538;
    params.forwardLatency = 0;
    EthSwitch sw(ctx, "sw", 3, params);
    Sink a, b, c;
    Port &pa = sw.bind(a);
    sw.bind(b);
    Port &pc = sw.bind(c);

    auto mb = MacAddr::fromId(2);
    sw.setRoute(mb, 1);
    // The corrupted burst still fills the egress queue -- a switch
    // cannot validate payload checksums -- so intact frames arriving
    // behind it tail-drop exactly as if the burst were clean.
    for (int i = 0; i < 6; ++i) {
        Packet p = frame(MacAddr::fromId(1), mb);
        p.intact = false;
        pa.send(std::move(p));
        pc.send(frame(MacAddr::fromId(3), mb));
    }
    ctx.events().run();
    EXPECT_GT(sw.port(1).egressDrops(), 0u);
    int corrupt = 0;
    for (const auto &p : b.got)
        corrupt += !p.intact;
    EXPECT_GT(corrupt, 0);
    EXPECT_EQ(b.got.size(), 12u - sw.totalDrops());
}

TEST(Switch, PerPortBusyAndDrainAreIndependent)
{
    sim::SimContext ctx;
    EthSwitch sw(ctx, "sw", 3);
    Sink a, b, c;
    Port &pa = sw.bind(a);
    Port &pb = sw.bind(b);
    sw.bind(c);

    auto mc = MacAddr::fromId(3);
    sw.setRoute(mc, 2);
    int a_drained = 0, b_drained = 0;
    pa.setDrainHook([&] { ++a_drained; });
    pb.setDrainHook([&] { ++b_drained; });

    pa.send(frame(MacAddr::fromId(1), mc));
    // Port a's ingress serializer is busy; port b's is not -- the
    // handles never alias each other's transmit state.
    EXPECT_TRUE(pa.busy());
    EXPECT_FALSE(pb.busy());
    pb.send(frame(MacAddr::fromId(2), mc));
    EXPECT_TRUE(pb.busy());
    ctx.events().run();
    EXPECT_FALSE(pa.busy());
    EXPECT_FALSE(pb.busy());
    EXPECT_EQ(a_drained, 1);
    EXPECT_EQ(b_drained, 1);
}

TEST(Switch, SharedEgressQueueNeverStarvesEitherSender)
{
    // Two ACK-clocked sources converge on one receiver port at 2:1
    // oversubscription.  The shared egress queue must interleave them
    // (global FIFO) and each sender's completions and window credits
    // must flow through its own port -- neither flow may stall out
    // because the other occupies the bottleneck.
    sim::SimContext ctx;
    EthSwitchParams params;
    params.bufBytesPerPort = 64 * 1024;
    EthSwitch sw(ctx, "sw", 3, params);
    TrafficPeer s1(ctx, "s1", sw);
    TrafficPeer s2(ctx, "s2", sw);
    TrafficPeer rx(ctx, "rx", sw);
    rx.applyWorkload(
        workload::WorkloadSpec{}.filteringMac(true).ackingEvery(2));
    sw.setRoute(rx.mac(), 2);
    sw.setRoute(s1.mac(), 0);
    sw.setRoute(s2.mac(), 1);

    for (TrafficPeer *s : {&s1, &s2})
        s->applyWorkload(
            workload::WorkloadSpec{}
                .ackingEvery(2)
                .windowed(8)
                .toward({rx.mac()})
                .withClass(workload::FlowClass::saturating()));
    ctx.events().runUntil(sim::milliseconds(20));
    s1.stopSource();
    s2.stopSource();
    ctx.events().run();

    auto by_src = rx.receivedBySrc();
    std::uint64_t from1 = by_src[s1.mac()];
    std::uint64_t from2 = by_src[s2.mac()];
    ASSERT_GT(from1, 0u);
    ASSERT_GT(from2, 0u);
    // Deterministic ACK phasing need not split the port exactly in
    // half, but neither clocked flow may be starved below a solid
    // share of the bottleneck.
    double total = static_cast<double>(from1 + from2);
    EXPECT_GT(static_cast<double>(std::min(from1, from2)), 0.25 * total);
    // And the bottleneck port stayed saturated: ~20 ms of full frames.
    double line = 1e9 / 8.0 * 0.020 * (1460.0 / 1538.0);
    EXPECT_GT(total, 0.8 * line);
}

TEST(Switch, TrunkRelaysAcrossSwitches)
{
    sim::SimContext ctx;
    EthSwitch swa(ctx, "swa", 3);
    EthSwitch swb(ctx, "swb", 3);
    Sink a, b;
    Port &pa = swa.bind(a);
    swb.bind(b);
    SwitchTrunk trunk(ctx, "trunk", swa, swb);

    auto ma = MacAddr::fromId(1);
    auto mb = MacAddr::fromId(2);
    swa.setRoute(mb, trunk.portOnA());
    swb.setRoute(mb, 0);
    swb.setRoute(ma, trunk.portOnB());

    pa.send(frame(ma, mb));
    ctx.events().run();
    ASSERT_EQ(b.got.size(), 1u);
    EXPECT_EQ(trunk.relayedAToB(), 1u);
    EXPECT_EQ(trunk.relayedBToA(), 0u);
    EXPECT_TRUE(a.got.empty());
}
