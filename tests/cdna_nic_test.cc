/**
 * @file
 * Unit tests for the CDNA NIC (paper sections 3 and 4): hardware
 * contexts, mailbox-driven descriptor fetch, sequence-number
 * validation, MAC demultiplexing, fair transmit interleave, and
 * interrupt bit vectors.
 */

#include <gtest/gtest.h>

#include "core/cdna_nic.hh"
#include "core/interrupt_ring.hh"
#include "net/eth_link.hh"
#include "net/traffic_peer.hh"
#include "sim/sim_object.hh"

using namespace cdna;
using namespace cdna::core;

namespace {

struct CdnaHarness
{
    sim::SimContext ctx;
    mem::PhysMemory mem{ctx, 8192};
    mem::PciBus bus{ctx, "pci"};
    net::EthLink link{ctx, "eth"};
    net::TrafficPeer peer{ctx, "peer", link};
    CdnaNic nic;

    std::vector<std::uint32_t> producers;
    std::vector<std::uint64_t> seqnos;
    std::vector<std::uint32_t> rxProducers;
    std::vector<std::uint64_t> rxSeqnos;

    explicit CdnaHarness(CdnaNicParams params = {})
        : nic(ctx, "cdna", bus, mem, 0, link,
              params)
    {
    }

    CdnaNic::ContextId
    makeContext(mem::DomainId dom, std::uint32_t mac_id,
                std::uint32_t entries = 16)
    {
        auto cxt = nic.allocContext(dom, net::MacAddr::fromId(mac_id));
        EXPECT_TRUE(cxt.has_value());
        mem::PageNum txp = mem.allocOne(dom);
        mem::PageNum rxp = mem.allocOne(dom);
        nic.configureContextRings(*cxt, entries, mem::addrOf(txp),
                                  entries, mem::addrOf(rxp));
        if (producers.size() <= *cxt) {
            producers.resize(*cxt + 1, 0);
            seqnos.resize(*cxt + 1, 1);
            rxProducers.resize(*cxt + 1, 0);
            rxSeqnos.resize(*cxt + 1, 1);
        }
        return *cxt;
    }

    /** Enqueue one TX descriptor the way the hypervisor would. */
    void
    queueTx(CdnaNic::ContextId cxt, std::uint32_t payload,
            net::MacAddr dst)
    {
        mem::DomainId dom = nic.contextDomain(cxt);
        mem::PageNum page = mem.allocOne(dom);
        nic::DmaDescriptor d;
        d.sg = {{mem::addrOf(page), payload}};
        d.flags = nic::kDescValid | nic::kDescEop;
        d.seqno = seqnos[cxt]++;
        net::Packet p;
        p.src = net::MacAddr::fromId(100 + cxt);
        p.dst = dst;
        p.payloadBytes = payload;
        p.hostSg = d.sg;
        p.srcDomain = dom;
        nic.txRing(cxt).write(producers[cxt], d);
        nic.txRing(cxt).attachPacket(producers[cxt], std::move(p));
        ++producers[cxt];
    }

    void
    doorbellTx(CdnaNic::ContextId cxt)
    {
        nic.pioWriteMailbox(cxt, nic::kMboxTxProducer, producers[cxt]);
    }

    void
    postRx(CdnaNic::ContextId cxt, std::uint32_t n)
    {
        mem::DomainId dom = nic.contextDomain(cxt);
        for (std::uint32_t i = 0; i < n; ++i) {
            mem::PageNum page = mem.allocOne(dom);
            nic::DmaDescriptor d;
            d.sg = {{mem::addrOf(page), net::kMtu}};
            d.flags = nic::kDescValid;
            d.seqno = rxSeqnos[cxt]++;
            nic.rxRing(cxt).write(rxProducers[cxt], d);
            ++rxProducers[cxt];
        }
        nic.pioWriteMailbox(cxt, nic::kMboxRxProducer, rxProducers[cxt]);
    }
};

} // namespace

// ---------------------------------------------------------- contexts ----

TEST(CdnaNic, ContextAllocationAndLimits)
{
    CdnaNicParams params;
    params.numContexts = 3;
    CdnaHarness h(params);
    auto a = h.nic.allocContext(1, net::MacAddr::fromId(1));
    auto b = h.nic.allocContext(2, net::MacAddr::fromId(2));
    auto c = h.nic.allocContext(3, net::MacAddr::fromId(3));
    auto d = h.nic.allocContext(4, net::MacAddr::fromId(4));
    EXPECT_TRUE(a && b && c);
    EXPECT_FALSE(d.has_value());
    EXPECT_EQ(h.nic.allocatedContexts(), 3u);
    EXPECT_EQ(h.nic.contextDomain(*b), 2u);
}

TEST(CdnaNic, RevocationFreesContextForReuse)
{
    CdnaHarness h;
    auto cxt = h.makeContext(1, 10);
    h.nic.revokeContext(cxt);
    EXPECT_FALSE(h.nic.contextAllocated(cxt));
    auto again = h.nic.allocContext(9, net::MacAddr::fromId(11));
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, cxt); // lowest free slot reused
}

// ---------------------------------------------------------- transmit ----

TEST(CdnaNic, MailboxDoorbellDrivesTransmit)
{
    CdnaHarness h;
    auto cxt = h.makeContext(1, 10);
    for (int i = 0; i < 4; ++i)
        h.queueTx(cxt, 1000, h.peer.mac());
    h.doorbellTx(cxt);
    h.ctx.events().run();
    EXPECT_EQ(h.nic.txPackets(), 4u);
    EXPECT_EQ(h.peer.payloadReceived(), 4000u);
    EXPECT_EQ(h.nic.txConsumer(cxt), 4u);
    EXPECT_EQ(h.mem.violationCount(), 0u);
    EXPECT_GE(h.nic.irqCount(), 1u);
}

TEST(CdnaNic, FairInterleaveAcrossContexts)
{
    CdnaHarness h;
    auto a = h.makeContext(1, 10);
    auto b = h.makeContext(2, 20);
    // Queue a large burst on 'a' first, then 'b'.
    for (int i = 0; i < 8; ++i)
        h.queueTx(a, net::kMss, h.peer.mac());
    for (int i = 0; i < 8; ++i)
        h.queueTx(b, net::kMss, h.peer.mac());
    h.doorbellTx(a);
    h.doorbellTx(b);
    h.ctx.events().run();

    // Both contexts drained fully and fairly: by total payload each
    // sent half.
    auto by_src = h.peer.receivedBySrc();
    EXPECT_EQ(by_src.at(net::MacAddr::fromId(100 + a)),
              8ull * net::kMss);
    EXPECT_EQ(by_src.at(net::MacAddr::fromId(100 + b)),
              8ull * net::kMss);
    EXPECT_EQ(h.nic.txConsumer(a), 8u);
    EXPECT_EQ(h.nic.txConsumer(b), 8u);
}

// --------------------------------------------------- sequence numbers ----

TEST(CdnaNic, StaleDescriptorTriggersSeqnoFault)
{
    CdnaHarness h;
    auto cxt = h.makeContext(1, 10, /*entries=*/8);
    // Fill one lap legitimately.
    for (int i = 0; i < 8; ++i)
        h.queueTx(cxt, 500, h.peer.mac());
    h.doorbellTx(cxt);
    h.ctx.events().run();
    EXPECT_EQ(h.nic.txPackets(), 8u);
    ASSERT_FALSE(h.nic.contextFaulted(cxt));

    // Malicious driver bumps the producer past the last valid entry:
    // slot contents are stale (seqno from the previous lap).
    bool fault_reported = false;
    h.nic.setFaultHandler([&](CdnaNic::ContextId c, mem::DomainId dom,
                              vmm::Fault f) {
        fault_reported = true;
        EXPECT_EQ(c, cxt);
        EXPECT_EQ(dom, 1u);
        EXPECT_EQ(f, vmm::Fault::kBadSeqno);
    });
    h.nic.pioWriteMailbox(cxt, nic::kMboxTxProducer, h.producers[cxt] + 3);
    h.ctx.events().run();

    EXPECT_TRUE(fault_reported);
    EXPECT_TRUE(h.nic.contextFaulted(cxt));
    EXPECT_EQ(h.nic.seqnoFaults(), 1u);
    // Nothing further transmitted from the stale slots.
    EXPECT_EQ(h.nic.txPackets(), 8u);
}

TEST(CdnaNic, ForgedSeqnoCaught)
{
    CdnaHarness h;
    auto cxt = h.makeContext(1, 10);
    h.queueTx(cxt, 500, h.peer.mac());
    // Tamper: rewrite the descriptor with a wrong sequence number.
    nic::DmaDescriptor d = h.nic.txRing(cxt).at(0);
    d.seqno = 42;
    h.nic.txRing(cxt).write(0, d);
    h.doorbellTx(cxt);
    h.ctx.events().run();
    EXPECT_TRUE(h.nic.contextFaulted(cxt));
    EXPECT_EQ(h.nic.txPackets(), 0u);
}

TEST(CdnaNic, SeqnoCheckDisabledTransmitsStaleGarbage)
{
    CdnaNicParams params;
    params.seqnoCheck = false;
    CdnaHarness h(params);
    auto cxt = h.makeContext(1, 10, 8);
    for (int i = 0; i < 8; ++i)
        h.queueTx(cxt, 500, h.peer.mac());
    h.doorbellTx(cxt);
    h.ctx.events().run();

    // Producer overrun with checks off: the NIC transmits whatever the
    // stale descriptors point at (ghost frames).
    h.nic.pioWriteMailbox(cxt, nic::kMboxTxProducer, h.producers[cxt] + 3);
    h.ctx.events().run();
    EXPECT_FALSE(h.nic.contextFaulted(cxt));
    EXPECT_EQ(h.nic.ghostTxCount(), 3u);
}

/** Aliasing property (section 3.3): the sequence-number modulus must be
 *  at least twice the ring size, or a stale descriptor exactly one lap
 *  old aliases the expected value and escapes detection. */
class SeqnoModulus : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeqnoModulus, DetectsStaleUnlessAliased)
{
    const std::uint32_t ring = 8;
    CdnaNicParams params;
    params.seqnoModulus = GetParam();
    CdnaHarness h(params);
    auto cxt = h.makeContext(1, 10, ring);

    // One full lap with correctly stamped (mod M) descriptors.
    for (std::uint32_t i = 0; i < ring; ++i) {
        mem::PageNum page = h.mem.allocOne(1);
        nic::DmaDescriptor d;
        d.sg = {{mem::addrOf(page), 300}};
        d.flags = nic::kDescValid | nic::kDescEop;
        d.seqno = (i + 1) % params.seqnoModulus;
        net::Packet p;
        p.dst = h.peer.mac();
        p.payloadBytes = 300;
        p.hostSg = d.sg;
        h.nic.txRing(cxt).write(i, d);
        h.nic.txRing(cxt).attachPacket(i, std::move(p));
    }
    h.nic.pioWriteMailbox(cxt, nic::kMboxTxProducer, ring);
    h.ctx.events().run();
    EXPECT_EQ(h.nic.txPackets(), ring);

    // Overrun onto one stale slot.
    h.nic.pioWriteMailbox(cxt, nic::kMboxTxProducer, ring + 1);
    h.ctx.events().run();

    if (GetParam() >= 2 * ring) {
        EXPECT_TRUE(h.nic.contextFaulted(cxt))
            << "modulus " << GetParam() << " must detect the stale slot";
    } else {
        // M == ring size: stale seqno aliases the expected one exactly.
        EXPECT_FALSE(h.nic.contextFaulted(cxt))
            << "modulus " << GetParam()
            << " cannot detect a one-lap-old descriptor";
    }
}

INSTANTIATE_TEST_SUITE_P(ModulusSweep, SeqnoModulus,
                         ::testing::Values(8, 16, 32, 64, 1024));

// ------------------------------------------------------------ receive ----

TEST(CdnaNic, DemuxByMacToContexts)
{
    CdnaHarness h;
    auto a = h.makeContext(1, 10);
    auto b = h.makeContext(2, 20);
    h.postRx(a, 4);
    h.postRx(b, 4);
    h.ctx.events().run();

    net::Packet to_a;
    to_a.dst = net::MacAddr::fromId(10);
    to_a.payloadBytes = 700;
    net::Packet to_b;
    to_b.dst = net::MacAddr::fromId(20);
    to_b.payloadBytes = 900;
    h.link.port(0).send(to_a);
    h.link.port(0).send(to_b);
    h.link.port(0).send(to_b);
    h.ctx.events().run();

    EXPECT_EQ(h.nic.drainRx(a).size(), 1u);
    EXPECT_EQ(h.nic.drainRx(b).size(), 2u);
    EXPECT_EQ(h.nic.rxConsumer(a), 1u);
    EXPECT_EQ(h.nic.rxConsumer(b), 2u);
    EXPECT_EQ(h.mem.violationCount(), 0u);
}

TEST(CdnaNic, UnknownMacDropped)
{
    CdnaHarness h;
    auto a = h.makeContext(1, 10);
    h.postRx(a, 4);
    h.ctx.events().run();
    net::Packet p;
    p.dst = net::MacAddr::fromId(999);
    p.payloadBytes = 100;
    h.link.port(0).send(p);
    h.ctx.events().run();
    EXPECT_EQ(h.nic.rxPackets(), 0u);
    EXPECT_EQ(h.nic.rxDropFilter(), 1u);
}

TEST(CdnaNic, PromiscuousContextCatchesUnknownMacs)
{
    CdnaHarness h;
    auto a = h.makeContext(1, 10);
    h.postRx(a, 4);
    h.nic.setPromiscuousContext(a);
    h.ctx.events().run();
    net::Packet p;
    p.dst = net::MacAddr::fromId(999);
    p.payloadBytes = 100;
    h.link.port(0).send(p);
    h.ctx.events().run();
    EXPECT_EQ(h.nic.drainRx(a).size(), 1u);
}

TEST(CdnaNic, RxDropWithoutDescriptors)
{
    CdnaHarness h;
    auto a = h.makeContext(1, 10);
    net::Packet p;
    p.dst = net::MacAddr::fromId(10);
    p.payloadBytes = 100;
    h.link.port(0).send(p);
    h.ctx.events().run();
    EXPECT_EQ(h.nic.rxDropNoDesc(), 1u);
}

// ------------------------------------------------- interrupt vectors ----

TEST(CdnaNic, InterruptRingCarriesContextBits)
{
    CdnaHarness h;
    auto a = h.makeContext(1, 10);
    auto b = h.makeContext(2, 20);
    mem::PageNum hv_page = h.mem.allocOne(mem::kDomHypervisor);
    h.nic.setInterruptRing(mem::addrOf(hv_page));
    int irqs = 0;
    h.nic.setIrqLine([&] { ++irqs; });

    h.queueTx(a, 400, h.peer.mac());
    h.queueTx(b, 400, h.peer.mac());
    h.doorbellTx(a);
    h.doorbellTx(b);
    h.ctx.events().run();

    ASSERT_GE(irqs, 1);
    InterruptRing *ring = h.nic.interruptRing();
    ASSERT_NE(ring, nullptr);
    std::uint32_t seen = 0;
    while (!ring->empty())
        seen |= ring->pop();
    EXPECT_EQ(seen, (1u << a) | (1u << b));
}

TEST(InterruptRing, ProducerConsumerProtocol)
{
    InterruptRing ring(4, 0x4000);
    EXPECT_TRUE(ring.empty());
    ring.push(0x1);
    ring.push(0x2);
    EXPECT_EQ(ring.producerAddr(), 0x4000u + 2 * sizeof(std::uint32_t));
    EXPECT_EQ(ring.pop(), 0x1u);
    EXPECT_EQ(ring.pop(), 0x2u);
    EXPECT_TRUE(ring.empty());
    for (int i = 0; i < 4; ++i)
        ring.push(i);
    EXPECT_TRUE(ring.full());
}

TEST(CdnaNic, CoalescingMergesUpdatesIntoOneVector)
{
    CdnaNicParams params;
    params.coalesce.delay = sim::milliseconds(2); // wide window
    CdnaHarness h(params);
    auto a = h.makeContext(1, 10);
    mem::PageNum hv_page = h.mem.allocOne(mem::kDomHypervisor);
    h.nic.setInterruptRing(mem::addrOf(hv_page));
    int irqs = 0;
    h.nic.setIrqLine([&] { ++irqs; });

    for (int i = 0; i < 6; ++i)
        h.queueTx(a, 300, h.peer.mac());
    h.doorbellTx(a);
    h.ctx.events().run();
    EXPECT_EQ(irqs, 1);
}

TEST(CdnaNic, FirmwareUtilizationObservable)
{
    CdnaHarness h;
    auto a = h.makeContext(1, 10);
    h.queueTx(a, 1000, h.peer.mac());
    h.doorbellTx(a);
    h.ctx.events().run();
    EXPECT_GT(h.nic.firmwareUtilization(h.ctx.now()), 0.0);
    EXPECT_LT(h.nic.firmwareUtilization(h.ctx.now()), 1.0);
}
