/**
 * @file
 * Tests for the end-to-end latency instrumentation: measurements exist,
 * are ordered sensibly (p50 <= p99), track queueing, and the histogram
 * merge used for aggregation is correct.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "sim/stats.hh"

using namespace cdna;
using namespace cdna::core;

TEST(Latency, HistogramMerge)
{
    sim::Histogram a, b;
    for (int i = 0; i < 100; ++i)
        a.record(10);
    for (int i = 0; i < 100; ++i)
        b.record(100000);
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_LE(a.quantile(0.25), 15u);
    EXPECT_GE(a.quantile(0.9), 65535u);
}

TEST(Latency, TransmitLatencyMeasured)
{
    System sys(SystemConfig::cdna(1));
    auto r = sys.run(sim::milliseconds(40), sim::milliseconds(150));
    EXPECT_GT(r.latencyMeanUs, 10.0);   // at least the wire + NIC path
    EXPECT_LT(r.latencyMeanUs, 50000.0);
    EXPECT_LE(r.latencyP50Us, r.latencyP99Us);
}

TEST(Latency, ReceiveLatencyMeasured)
{
    System sys(SystemConfig::cdna(1).receive());
    auto r = sys.run(sim::milliseconds(40), sim::milliseconds(150));
    EXPECT_GT(r.latencyMeanUs, 5.0);
    EXPECT_LE(r.latencyP50Us, r.latencyP99Us);
}

TEST(Latency, QueueingDominatesTransmit)
{
    // CDNA receive latency (shallow queues: NIC ring only) is far
    // below CDNA transmit latency (the sender's in-flight window sits
    // queued ahead of every new frame).
    System tx_sys(SystemConfig::cdna(1));
    auto tx = tx_sys.run(sim::milliseconds(40), sim::milliseconds(150));
    System rx_sys(SystemConfig::cdna(1).receive());
    auto rx = rx_sys.run(sim::milliseconds(40), sim::milliseconds(150));
    EXPECT_LT(rx.latencyMeanUs, tx.latencyMeanUs);
}

TEST(Latency, XenAddsLatencyOverCdnaOnReceive)
{
    // The software path adds driver-domain queueing and a second
    // scheduling hop on every received frame.
    System xen(SystemConfig::xenIntel(1).receive());
    auto xr = xen.run(sim::milliseconds(40), sim::milliseconds(150));
    System cdna(SystemConfig::cdna(1).receive());
    auto cr = cdna.run(sim::milliseconds(40), sim::milliseconds(150));
    EXPECT_GT(xr.latencyMeanUs, cr.latencyMeanUs);
}
