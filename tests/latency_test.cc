/**
 * @file
 * Tests for the end-to-end latency instrumentation: measurements exist,
 * are ordered sensibly (p50 <= p99), track queueing, and the histogram
 * merge used for aggregation is correct.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "sim/stats.hh"

using namespace cdna;
using namespace cdna::core;

TEST(Latency, HistogramMerge)
{
    sim::Histogram a, b;
    for (int i = 0; i < 100; ++i)
        a.record(10);
    for (int i = 0; i < 100; ++i)
        b.record(100000);
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_LE(a.quantile(0.25), 15u);
    EXPECT_GE(a.quantile(0.9), 65535u);
}

TEST(Latency, TransmitLatencyMeasured)
{
    System sys(SystemConfig::cdna(1));
    auto r = sys.run(sim::milliseconds(40), sim::milliseconds(150));
    EXPECT_GT(r.latencyMeanUs, 10.0);   // at least the wire + NIC path
    EXPECT_LT(r.latencyMeanUs, 50000.0);
    EXPECT_LE(r.latencyP50Us, r.latencyP99Us);
}

TEST(Latency, ReceiveLatencyMeasured)
{
    System sys(SystemConfig::cdna(1).receive());
    auto r = sys.run(sim::milliseconds(40), sim::milliseconds(150));
    EXPECT_GT(r.latencyMeanUs, 5.0);
    EXPECT_LE(r.latencyP50Us, r.latencyP99Us);
}

TEST(Latency, QueueingDominatesTransmit)
{
    // CDNA receive latency (shallow queues: NIC ring only) is far
    // below CDNA transmit latency (the sender's in-flight window sits
    // queued ahead of every new frame).
    System tx_sys(SystemConfig::cdna(1));
    auto tx = tx_sys.run(sim::milliseconds(40), sim::milliseconds(150));
    System rx_sys(SystemConfig::cdna(1).receive());
    auto rx = rx_sys.run(sim::milliseconds(40), sim::milliseconds(150));
    EXPECT_LT(rx.latencyMeanUs, tx.latencyMeanUs);
}

TEST(Latency, XenAddsLatencyOverCdnaOnReceive)
{
    // The software path adds driver-domain queueing and a second
    // scheduling hop on every received frame.
    System xen(SystemConfig::xenIntel(1).receive());
    auto xr = xen.run(sim::milliseconds(40), sim::milliseconds(150));
    System cdna(SystemConfig::cdna(1).receive());
    auto cr = cdna.run(sim::milliseconds(40), sim::milliseconds(150));
    EXPECT_GT(xr.latencyMeanUs, cr.latencyMeanUs);
}

TEST(Latency, ZeroSubBucketBitsKeepsLegacyGeometry)
{
    // The default histogram must keep the one-bucket-per-octave layout
    // bit-for-bit: a sample of 100 lands in the [64,128) octave whose
    // upper bound is 127.
    sim::Histogram h;
    EXPECT_EQ(h.subBucketBits(), 0);
    h.record(100);
    EXPECT_EQ(h.quantile(1.0), 127u);
}

TEST(Latency, SubBucketsResolveSubOctaveTails)
{
    // Tail samples clustered at 1000..1100 us: the coarse octave
    // histogram can only answer "somewhere under 2048", while 3
    // sub-bucket bits bound the error at 12.5% -- the resolution the
    // p999 column needs to separate, say, 959 us from 2303 us tails.
    sim::Histogram coarse;
    sim::Histogram fine(160, 3);
    for (std::uint64_t v = 1000; v <= 1100; ++v) {
        coarse.record(v);
        fine.record(v);
    }
    EXPECT_EQ(coarse.quantile(0.99), 2047u);
    EXPECT_LE(fine.quantile(0.99), 1151u);
    EXPECT_GE(fine.quantile(0.99), 1100u);
}

TEST(Latency, FineQuantilesAreMonotonic)
{
    // p50 <= p99 <= p999 must hold on the sub-bucketed geometry across
    // a spread-out sample set (uniform-ish plus a heavy tail).
    sim::Histogram h(160, 3);
    for (std::uint64_t i = 1; i <= 1000; ++i)
        h.record(i);
    for (int i = 0; i < 10; ++i)
        h.record(50000);
    std::uint64_t p50 = h.quantile(0.5);
    std::uint64_t p99 = h.quantile(0.99);
    std::uint64_t p999 = h.quantile(0.999);
    EXPECT_LE(p50, p99);
    EXPECT_LE(p99, p999);
    // And they are tight: the median of 1..1000 sits near 500, the
    // p999 lands in the 50000 spike's sub-bucket.
    EXPECT_GE(p50, 448u);
    EXPECT_LE(p50, 576u);
    EXPECT_GE(p999, 50000u * 7 / 8);
}

TEST(Latency, SubBucketedMergePreservesQuantiles)
{
    sim::Histogram a(160, 3), b(160, 3);
    for (int i = 0; i < 100; ++i)
        a.record(400);
    for (int i = 0; i < 100; ++i)
        b.record(900);
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    // Lower half resolves near 400, upper half near 900 -- within one
    // sub-bucket (12.5%) each, not one octave.
    EXPECT_LE(a.quantile(0.25), 448u);
    EXPECT_GE(a.quantile(0.9), 900u);
    EXPECT_LE(a.quantile(0.9), 1024u);
}
