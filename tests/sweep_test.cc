/**
 * @file
 * Tests for the sweep subsystem and the event-queue hot path it runs
 * on: the pooled/generation-tagged EventQueue, the work-stealing
 * parallelFor, ExperimentSpec expansion, seed-ensemble statistics, and
 * the determinism contract (-j1 == -jN == standalone run,
 * byte-for-byte).
 */

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/report.hh"
#include "core/system.hh"
#include "sim/event_queue.hh"
#include "sim/sweep.hh"
#include "sim/sweep_presets.hh"
#include "sim/thread_pool.hh"

namespace cdna {
namespace {

// --- EventQueue: pooled nodes, generations, cancellation ----------------

TEST(EventQueuePool, FifoAtEqualTimestamps)
{
    sim::EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(100, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueuePool, CancelIsIdempotent)
{
    sim::EventQueue q;
    bool fired = false;
    auto id = q.schedule(10, [&fired] { fired = true; });
    EXPECT_EQ(q.pendingCount(), 1u);
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id)); // second cancel of the same handle
    EXPECT_TRUE(q.empty());
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueuePool, CancelAfterFireFails)
{
    sim::EventQueue q;
    auto id = q.schedule(10, [] {});
    EXPECT_TRUE(q.runOne());
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueuePool, StaleHandleCannotCancelSlotReuse)
{
    sim::EventQueue q;
    // Fire an event, freeing its pool slot.
    auto stale = q.schedule(10, [] {});
    q.run();
    // The next schedule reuses that slot with a bumped generation.
    bool fired = false;
    auto fresh = q.schedule(10, [&fired] { fired = true; });
    EXPECT_NE(stale, fresh);
    EXPECT_FALSE(q.cancel(stale)); // must not kill the new event
    q.run();
    EXPECT_TRUE(fired);
}

TEST(EventQueuePool, CancelledSlotReusedForLaterEvent)
{
    sim::EventQueue q;
    int fired = 0;
    auto a = q.schedule(50, [&fired] { ++fired; });
    EXPECT_TRUE(q.cancel(a));
    // Heavy churn across the freed slot: every handle must stay distinct
    // and every live event must fire exactly once.
    std::set<sim::EventId> ids;
    for (int i = 0; i < 100; ++i)
        ids.insert(q.schedule(10 + i, [&fired] { ++fired; }));
    EXPECT_EQ(ids.size(), 100u);
    EXPECT_EQ(ids.count(a), 0u);
    q.run();
    EXPECT_EQ(fired, 100);
}

TEST(EventQueuePool, NextEventTimeSkipsNothingAfterCancel)
{
    sim::EventQueue q;
    auto early = q.schedule(10, [] {});
    q.schedule(20, [] {});
    EXPECT_EQ(q.nextEventTime(), 10);
    EXPECT_TRUE(q.cancel(early));
    // Cancellation removes the node immediately -- no tombstone at top.
    EXPECT_EQ(q.nextEventTime(), 20);
    EXPECT_EQ(q.pendingCount(), 1u);
}

TEST(EventQueuePool, LargeCaptureFallsBackToHeap)
{
    sim::EventQueue q;
    struct Big
    {
        char pad[96];
    } big{};
    big.pad[0] = 7;
    big.pad[95] = 9;
    int sum = 0;
    static_assert(sizeof(Big) > sim::InplaceCallback::kInlineSize);
    q.schedule(5, [big, &sum] { sum = big.pad[0] + big.pad[95]; });
    q.run();
    EXPECT_EQ(sum, 16);
}

TEST(EventQueuePool, RescheduleFromCallbackKeepsOrdering)
{
    sim::EventQueue q;
    std::vector<sim::Time> times;
    std::function<void()> tick = [&] {
        times.push_back(q.now());
        if (times.size() < 5)
            q.schedule(100, tick);
    };
    q.schedule(0, tick);
    q.run();
    ASSERT_EQ(times.size(), 5u);
    for (std::size_t i = 0; i < times.size(); ++i)
        EXPECT_EQ(times[i], static_cast<sim::Time>(100 * i));
}

// --- parallelFor --------------------------------------------------------

TEST(ParallelFor, VisitsEveryIndexExactlyOnce)
{
    constexpr std::size_t kN = 503;
    std::vector<std::atomic<int>> hits(kN);
    sim::parallelFor(4, kN, [&hits](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, InlineWhenSingleThread)
{
    std::vector<std::size_t> order;
    sim::parallelFor(1, 5, [&order](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesTaskException)
{
    EXPECT_THROW(sim::parallelFor(3, 16,
                                  [](std::size_t i) {
                                      if (i == 7)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
}

// --- MetricStats --------------------------------------------------------

TEST(MetricStats, SingleSampleHasNoSpread)
{
    auto s = sim::MetricStats::of({42.0});
    EXPECT_DOUBLE_EQ(s.mean, 42.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

TEST(MetricStats, KnownEnsemble)
{
    auto s = sim::MetricStats::of({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_NEAR(s.stddev, 2.13809, 1e-4); // sample stddev, n-1
    EXPECT_NEAR(s.ci95, 1.96 * 2.13809 / std::sqrt(8.0), 1e-4);
}

// --- ExperimentSpec expansion -------------------------------------------

TEST(ExperimentSpec, ExpansionOrderAndLabels)
{
    auto spec = sim::ExperimentSpec("t")
                    .config("a", core::SystemConfig::cdna(1))
                    .config("b", core::SystemConfig::xenIntel(1))
                    .directions(true, true)
                    .seeds(2);
    auto points = spec.expand();
    ASSERT_EQ(points.size(), 8u); // 2 configs x 2 dirs x 2 seeds
    // Configs outermost, then axes, then seeds innermost.
    EXPECT_EQ(points[0].cell, "a/tx");
    EXPECT_EQ(points[0].seed, 1u);
    EXPECT_EQ(points[1].cell, "a/tx");
    EXPECT_EQ(points[1].seed, 2u);
    EXPECT_EQ(points[2].cell, "a/rx");
    EXPECT_EQ(points[4].cell, "b/tx");
    EXPECT_EQ(points[7].cell, "b/rx");
    EXPECT_EQ(points[7].seed, 2u);
}

TEST(ExperimentSpec, GuestSuffixOnlyWithMultipleCounts)
{
    auto one = sim::ExperimentSpec("t")
                   .config("c", [](std::uint32_t g) {
                       return core::SystemConfig::cdna(g);
                   });
    EXPECT_EQ(one.expand()[0].cell, "c");

    auto many = sim::ExperimentSpec("t")
                    .config("c",
                            [](std::uint32_t g) {
                                return core::SystemConfig::cdna(g);
                            })
                    .guests({1, 4});
    auto points = many.expand();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].cell, "c/g1");
    EXPECT_EQ(points[1].cell, "c/g4");
    EXPECT_EQ(points[1].config.numGuests, 4u);
}

TEST(ExperimentSpec, VaryAxisMutatesConfig)
{
    auto spec = sim::ExperimentSpec("t")
                    .config("c", core::SystemConfig::cdna(1))
                    .vary("nics", {{"n1",
                                    [](core::SystemConfig &c) {
                                        c.numNics = 1;
                                    }},
                                   {"n4", [](core::SystemConfig &c) {
                                        c.numNics = 4;
                                    }}});
    auto points = spec.expand();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].cell, "c/n1");
    EXPECT_EQ(points[0].config.numNics, 1u);
    EXPECT_EQ(points[1].cell, "c/n4");
    EXPECT_EQ(points[1].config.numNics, 4u);
}

// --- Sweep determinism contract -----------------------------------------

/** A small but non-trivial grid that still runs in well under a second. */
sim::ExperimentSpec
smallSpec()
{
    return sim::ExperimentSpec("small")
        .config("cdna", core::SystemConfig::cdna(2))
        .config("xen", core::SystemConfig::xenIntel(1))
        .directions(true, true)
        .seeds(2)
        .warmup(sim::milliseconds(2))
        .measure(sim::milliseconds(10));
}

TEST(SweepDeterminism, SameJsonForOneAndEightJobs)
{
    sim::SweepOptions j1;
    j1.jobs = 1;
    sim::SweepOptions j8;
    j8.jobs = 8;
    auto a = sim::runSweep(smallSpec(), j1);
    auto b = sim::runSweep(smallSpec(), j8);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].point.cell, b.runs[i].point.cell);
        EXPECT_EQ(a.runs[i].json, b.runs[i].json) << a.runs[i].point.cell;
    }
    EXPECT_EQ(sim::sweepToJson(a), sim::sweepToJson(b));
}

TEST(SweepDeterminism, CellMatchesStandaloneRun)
{
    auto spec = smallSpec();
    sim::SweepOptions opt;
    opt.jobs = 2;
    auto result = sim::runSweep(spec, opt);

    // Re-run the first cell's first seed exactly as a standalone
    // program would: same config, seed, warmup, and measure window.
    const auto &run = result.runs[result.cells[0].firstRun];
    core::SystemConfig cfg = run.point.config;
    core::System sys(cfg);
    core::Report report = sys.run(run.point.warmup, run.point.measure);
    EXPECT_EQ(core::reportToJson(report), run.json);
}

TEST(SweepDeterminism, ObservedRunStaysByteIdentical)
{
    sim::SweepOptions plain;
    plain.jobs = 1;
    auto baseline = sim::runSweep(smallSpec(), plain);

    sim::SweepOptions observed;
    observed.jobs = 2;
    observed.observeCell = "cdna/tx";
    observed.obs.statsJsonFile = "/dev/null";
    auto traced = sim::runSweep(smallSpec(), observed);
    ASSERT_EQ(baseline.runs.size(), traced.runs.size());
    for (std::size_t i = 0; i < baseline.runs.size(); ++i)
        EXPECT_EQ(baseline.runs[i].json, traced.runs[i].json);
}

TEST(SweepAggregate, CellsGroupSeedsInFirstAppearanceOrder)
{
    sim::SweepOptions opt;
    opt.jobs = 4;
    auto result = sim::runSweep(smallSpec(), opt);
    ASSERT_EQ(result.cells.size(), 4u); // 2 configs x 2 directions
    EXPECT_EQ(result.cells[0].cell, "cdna/tx");
    EXPECT_EQ(result.cells[1].cell, "cdna/rx");
    EXPECT_EQ(result.cells[2].cell, "xen/tx");
    EXPECT_EQ(result.cells[3].cell, "xen/rx");
    for (const auto &cs : result.cells) {
        EXPECT_EQ(cs.runs, 2u); // the two seeds
        ASSERT_FALSE(cs.metrics.empty());
        // mbps must aggregate to the mean of the two per-seed reports.
        double sum = 0;
        std::size_t n = 0;
        for (const auto &run : result.runs)
            if (run.point.cell == cs.cell) {
                sum += run.report.mbps;
                ++n;
            }
        ASSERT_EQ(n, 2u);
        EXPECT_NEAR(cs.metrics[0].second.mean, sum / 2.0, 1e-9);
    }
}

TEST(SweepJson, DocumentShapeAndVersion)
{
    sim::SweepOptions opt;
    opt.jobs = 1;
    auto result = sim::runSweep(sim::ExperimentSpec("tiny")
                                    .config("cdna",
                                            core::SystemConfig::cdna(1))
                                    .warmup(sim::milliseconds(1))
                                    .measure(sim::milliseconds(5)),
                                opt);
    std::string json = sim::sweepToJson(result);
    std::string version_key = "\"schema_version\": " +
                              std::to_string(core::kReportSchemaVersion);
    EXPECT_NE(json.find(version_key), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"cdna-sweep\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"tiny\""), std::string::npos);
    // The nested report is spliced verbatim, so the single-run document
    // must appear as a substring of the sweep document (modulo indent).
    ASSERT_EQ(result.runs.size(), 1u);
    std::string report = result.runs[0].json;
    std::string firstLine = report.substr(0, report.find('\n'));
    EXPECT_NE(json.find(firstLine), std::string::npos);
    // No wall-clock or thread-count leakage into the canonical output.
    EXPECT_EQ(json.find("jobs"), std::string::npos);
    EXPECT_EQ(json.find("wall"), std::string::npos);
}

TEST(SweepPresets, RegistryResolvesEveryPreset)
{
    for (const auto &[name, make] : sim::presets::all()) {
        auto spec = sim::presets::byName(name);
        ASSERT_TRUE(spec.has_value()) << name;
        EXPECT_EQ(spec->name(), name);
        EXPECT_FALSE(spec->expand().empty()) << name;
    }
    EXPECT_FALSE(sim::presets::byName("nope").has_value());
}

} // namespace
} // namespace cdna
