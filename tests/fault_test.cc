/**
 * @file
 * Fault-injection subsystem tests: plan parsing, determinism, the
 * fault matrix (no fault sequence may produce a DMA protection
 * violation or a hung simulation), and the recovery paths (driver
 * watchdog resync after a firmware reset, guest kill mid-transfer).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/fault_plan.hh"
#include "core/system.hh"

using namespace cdna;
using namespace cdna::core;

namespace {

constexpr sim::Time kWarmup = sim::milliseconds(50);
constexpr sim::Time kMeasure = sim::milliseconds(150);

Report
runOnce(SystemConfig cfg, sim::Time warmup = kWarmup,
        sim::Time measure = kMeasure)
{
    System sys(std::move(cfg));
    return sys.run(warmup, measure);
}

} // namespace

// ------------------------------------------------------ plan parsing ----

TEST(FaultPlan, ParsesEveryDirective)
{
    std::string err;
    auto plan = FaultPlan::parse("# a comment\n"
                                 "drop-rate 0.01\n"
                                 "corrupt-rate 0.002\n"
                                 "\n"
                                 "dup-rate 0.001\n"
                                 "dma-delay 0.05 25\n"
                                 "firmware-stall 0@20:5\n"
                                 "firmware-stall 1@30:2 no-reset\n"
                                 "kill-guest 1@40\n",
                                 &err);
    ASSERT_TRUE(plan.has_value()) << err;
    EXPECT_DOUBLE_EQ(plan->dropRate, 0.01);
    EXPECT_DOUBLE_EQ(plan->corruptRate, 0.002);
    EXPECT_DOUBLE_EQ(plan->dupRate, 0.001);
    EXPECT_DOUBLE_EQ(plan->dmaDelayRate, 0.05);
    EXPECT_DOUBLE_EQ(plan->dmaDelayUs, 25.0);
    ASSERT_EQ(plan->firmwareStalls.size(), 2u);
    EXPECT_EQ(plan->firmwareStalls[0].nic, 0u);
    EXPECT_DOUBLE_EQ(plan->firmwareStalls[0].atMs, 20.0);
    EXPECT_DOUBLE_EQ(plan->firmwareStalls[0].durMs, 5.0);
    EXPECT_TRUE(plan->firmwareStalls[0].watchdogReset);
    EXPECT_FALSE(plan->firmwareStalls[1].watchdogReset);
    ASSERT_EQ(plan->guestKills.size(), 1u);
    EXPECT_EQ(plan->guestKills[0].guest, 1u);
    EXPECT_DOUBLE_EQ(plan->guestKills[0].atMs, 40.0);
    EXPECT_FALSE(plan->empty());
}

TEST(FaultPlan, ParseErrorsNameTheLine)
{
    std::string err;
    EXPECT_FALSE(FaultPlan::parse("drop-rate 0.01\nbogus 1\n", &err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_FALSE(FaultPlan::parse("drop-rate nine\n", &err));
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;
    EXPECT_FALSE(FaultPlan::parse("drop-rate 1.5\n", &err));
    EXPECT_FALSE(FaultPlan::parse("firmware-stall zero\n", &err));
    EXPECT_FALSE(FaultPlan::parse("kill-guest 1\n", &err));
}

TEST(FaultPlan, SpecParsers)
{
    auto fs = parseStallSpec("2@15.5:3");
    ASSERT_TRUE(fs.has_value());
    EXPECT_EQ(fs->nic, 2u);
    EXPECT_DOUBLE_EQ(fs->atMs, 15.5);
    EXPECT_DOUBLE_EQ(fs->durMs, 3.0);
    EXPECT_FALSE(parseStallSpec("2@15.5").has_value());
    EXPECT_FALSE(parseStallSpec("x@1:2").has_value());

    auto gk = parseKillSpec("3@40");
    ASSERT_TRUE(gk.has_value());
    EXPECT_EQ(gk->guest, 3u);
    EXPECT_DOUBLE_EQ(gk->atMs, 40.0);
    EXPECT_FALSE(parseKillSpec("3").has_value());
    EXPECT_FALSE(parseKillSpec("@40").has_value());
}

TEST(FaultPlan, EmptyMeansInert)
{
    EXPECT_TRUE(FaultPlan{}.empty());
    EXPECT_FALSE(FaultPlan{}.dropping(0.1).empty());
    EXPECT_FALSE(FaultPlan{}.stallingFirmware(0, 1, 1).empty());
    EXPECT_FALSE(FaultPlan{}.killingGuest(0, 1).empty());
    // A delay probability without a magnitude can never fire, but a
    // scheduled event always does.
    EXPECT_TRUE(FaultPlan{}.delayingDma(0.5, 0.0).empty());
}

// ------------------------------------------------------- determinism ----

TEST(FaultDeterminism, ZeroPlanMatchesNoPlanBitForBit)
{
    auto base = SystemConfig::cdna(2).withSeed(7);
    Report without = runOnce(base);
    Report with = runOnce(SystemConfig(base).withFaults(FaultPlan{}));
    EXPECT_EQ(reportToJson(without), reportToJson(with));
}

TEST(FaultDeterminism, NoInjectorWithoutAPlan)
{
    System sys(SystemConfig::cdna(1));
    EXPECT_EQ(sys.faultInjector(), nullptr);
    System chaotic(
        SystemConfig::cdna(1).withFaults(FaultPlan{}.dropping(0.01)));
    EXPECT_NE(chaotic.faultInjector(), nullptr);
}

// The fault matrix: every plan on every config, run twice.  Identical
// seed + plan must give identical stats; no run may record a DMA
// protection violation; every run must terminate (a hung simulation
// fails the ctest timeout).
TEST(FaultMatrix, DeterministicAndNoProtectionViolations)
{
    struct NamedPlan
    {
        const char *name;
        FaultPlan plan;
    };
    const std::vector<NamedPlan> plans = {
        {"drop", FaultPlan{}.dropping(0.02)},
        {"corrupt+dup", FaultPlan{}.corrupting(0.01).duplicating(0.01)},
        {"dma-delay", FaultPlan{}.delayingDma(0.1, 25.0)},
        {"fw-stall", FaultPlan{}.stallingFirmware(0, 60.0, 4.0)},
        {"kill", FaultPlan{}.killingGuest(1, 100.0)},
        {"everything", FaultPlan{}
                           .dropping(0.01)
                           .corrupting(0.005)
                           .duplicating(0.005)
                           .delayingDma(0.05, 25.0)
                           .stallingFirmware(0, 60.0, 4.0)
                           .killingGuest(1, 100.0)},
    };

    for (bool transmit : {true, false}) {
        for (const auto &[name, plan] : plans) {
            auto cfg = SystemConfig::cdna(2)
                           .transmit(transmit)
                           .withSeed(11)
                           .withFaults(plan);
            Report a = runOnce(cfg);
            Report b = runOnce(cfg);
            EXPECT_EQ(reportToJson(a), reportToJson(b))
                << name << (transmit ? "/tx" : "/rx");
            EXPECT_EQ(a.dmaViolations, 0u)
                << name << (transmit ? "/tx" : "/rx");
            EXPECT_GT(a.mbps, 0.0) << name;
        }
    }
}

// ---------------------------------------------------- fault behavior ----

TEST(FaultBehavior, DropsDegradeButDontZeroGoodput)
{
    auto base = SystemConfig::cdna(1).withSeed(3);
    Report clean = runOnce(base);
    Report lossy =
        runOnce(SystemConfig(base).withFaults(FaultPlan{}.dropping(0.05)));
    EXPECT_GT(lossy.faultFramesDropped, 0u);
    EXPECT_LT(lossy.mbps, clean.mbps);
    EXPECT_GT(lossy.mbps, 0.2 * clean.mbps);
}

TEST(FaultBehavior, DuplicatesNeverInflateGoodput)
{
    auto base = SystemConfig::cdna(1).withSeed(3);
    Report clean = runOnce(base);
    Report dupped = runOnce(
        SystemConfig(base).withFaults(FaultPlan{}.duplicating(0.05)));
    EXPECT_GT(dupped.faultFramesDuplicated, 0u);
    EXPECT_LE(dupped.mbps, clean.mbps * 1.01);
}

TEST(FaultBehavior, DmaDelaysAreCounted)
{
    Report r = runOnce(SystemConfig::cdna(1).withFaults(
        FaultPlan{}.delayingDma(0.2, 25.0)));
    EXPECT_GT(r.faultDmaDelays, 0u);
    EXPECT_EQ(r.dmaViolations, 0u);
    EXPECT_GT(r.mbps, 0.0);
}

TEST(FaultBehavior, ReportSurfacesFaultCounters)
{
    Report r = runOnce(SystemConfig::cdna(1).withFaults(
        FaultPlan{}.dropping(0.05)));
    EXPECT_TRUE(r.anyFaultActivity());
    EXPECT_NE(r.faultSummary().find("drop="), std::string::npos);
    Report clean = runOnce(SystemConfig::cdna(1));
    EXPECT_FALSE(clean.anyFaultActivity());
}

// ---------------------------------------------------- recovery paths ----

TEST(FaultRecovery, WatchdogResyncsAfterFirmwareReset)
{
    // Stall NIC 0's firmware for 10 ms mid-run and reboot it, losing
    // every queued doorbell.  The driver watchdog must time out,
    // re-ring the producer mailboxes, and traffic must resume.  The
    // stall must comfortably exceed the NIC's on-board packet buffer
    // drain time (~3 ms of frames already handed to the wire keep
    // completing descriptors after the firmware wedges) plus the 1 ms
    // watchdog period, or the driver never sees a no-progress window.
    auto cfg = SystemConfig::cdna(1).withNics(1).withFaults(
        FaultPlan{}.stallingFirmware(0, 60.0, 10.0));
    Report r = runOnce(cfg);
    Report clean = runOnce(SystemConfig::cdna(1).withNics(1));
    EXPECT_EQ(r.firmwareStalls, 1u);
    EXPECT_GE(r.mailboxTimeouts, 1u);
    EXPECT_GE(r.ringResyncs, 1u);
    EXPECT_EQ(r.dmaViolations, 0u);
    // Recovery within the watchdog budget: most of the goodput remains.
    EXPECT_GT(r.mbps, 0.5 * clean.mbps);
}

TEST(FaultRecovery, StallWithoutResetRecoversByItself)
{
    auto cfg = SystemConfig::cdna(1).withNics(1).withFaults(
        FaultPlan{}.stallingFirmware(0, 60.0, 2.0, /*watchdog_reset=*/false));
    Report r = runOnce(cfg);
    EXPECT_EQ(r.firmwareStalls, 1u);
    EXPECT_EQ(r.dmaViolations, 0u);
    EXPECT_GT(r.mbps, 0.0);
}

TEST(FaultRecovery, ScheduledKillRevokesEveryContext)
{
    auto cfg = SystemConfig::cdna(2).withFaults(
        FaultPlan{}.killingGuest(0, 60.0));
    System sys(cfg);
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(100));
    EXPECT_TRUE(sys.cdnaDriver(0, 0)->detached());
    ASSERT_NE(sys.faultInjector(), nullptr);
    EXPECT_EQ(sys.faultInjector()->guestKills(), 1u);
    EXPECT_EQ(sys.mem().violationCount(), 0u);
}

TEST(FaultRecovery, KillOfUnknownGuestIsIgnored)
{
    auto cfg = SystemConfig::cdna(1).withFaults(
        FaultPlan{}.killingGuest(9, 60.0));
    Report r = runOnce(cfg);
    EXPECT_EQ(r.guestKills, 0u);
    EXPECT_GT(r.mbps, 0.0);
}
