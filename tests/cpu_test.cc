/**
 * @file
 * Unit tests for the CPU model: task execution, accounting buckets,
 * hypervisor priority, domain switching, boost, contention.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/sim_cpu.hh"
#include "sim/sim_object.hh"

using namespace cdna;
using namespace cdna::cpu;

namespace {

CpuParams
plainParams()
{
    CpuParams p;
    p.domainSwitchCost = 0;
    p.cacheColdSurcharge = 0;
    p.cacheContentionAlpha = 0.0;
    return p;
}

struct CpuFixture : ::testing::Test
{
    sim::SimContext ctx;
};

} // namespace

TEST_F(CpuFixture, TaskChargesBucket)
{
    SimCpu cpu(ctx, "cpu", plainParams());
    Vcpu &v = cpu.createVcpu(1, "v1");
    bool done = false;
    v.post(Bucket::kOs, sim::microseconds(5), [&] { done = true; });
    ctx.events().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(cpu.profile().domainTime(1, Bucket::kOs),
              sim::microseconds(5));
    EXPECT_EQ(cpu.profile().domainTime(1, Bucket::kUser), 0);
}

TEST_F(CpuFixture, UserAndOsSeparate)
{
    SimCpu cpu(ctx, "cpu", plainParams());
    Vcpu &v = cpu.createVcpu(1, "v1");
    v.post(Bucket::kUser, sim::microseconds(2));
    v.post(Bucket::kOs, sim::microseconds(3));
    ctx.events().run();
    EXPECT_EQ(cpu.profile().domainTime(1, Bucket::kUser),
              sim::microseconds(2));
    EXPECT_EQ(cpu.profile().domainTime(1, Bucket::kOs),
              sim::microseconds(3));
}

TEST_F(CpuFixture, IdleAccountedBetweenWork)
{
    SimCpu cpu(ctx, "cpu", plainParams());
    Vcpu &v = cpu.createVcpu(1, "v1");
    ctx.events().schedule(sim::microseconds(10), [&] {
        v.post(Bucket::kOs, sim::microseconds(5));
    });
    ctx.events().run();
    cpu.syncIdle();
    EXPECT_EQ(cpu.profile().idle(), sim::microseconds(10));
    EXPECT_EQ(cpu.profile().total(), sim::microseconds(15));
}

TEST_F(CpuFixture, HypervisorPreemptsDomains)
{
    SimCpu cpu(ctx, "cpu", plainParams());
    Vcpu &v = cpu.createVcpu(1, "v1");
    std::vector<int> order;
    // Queue two domain tasks, then hv work while the first runs.
    v.post(Bucket::kOs, sim::microseconds(1), [&] { order.push_back(1); });
    v.post(Bucket::kOs, sim::microseconds(1), [&] { order.push_back(2); });
    cpu.runHypervisor(sim::microseconds(1), [&] { order.push_back(0); });
    ctx.events().run();
    // Hypervisor runs before any queued domain task.
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(cpu.profile().hypervisor(), sim::microseconds(1));
}

TEST_F(CpuFixture, DomainSwitchCostCharged)
{
    CpuParams params = plainParams();
    params.domainSwitchCost = sim::microseconds(2);
    SimCpu cpu(ctx, "cpu", params);
    Vcpu &a = cpu.createVcpu(1, "a");
    Vcpu &b = cpu.createVcpu(2, "b");
    a.post(Bucket::kOs, sim::microseconds(1));
    b.post(Bucket::kOs, sim::microseconds(1));
    ctx.events().run();
    // Two switches (idle->a, a->b), each 2us of hypervisor time.
    EXPECT_EQ(cpu.domainSwitches(), 2u);
    EXPECT_EQ(cpu.profile().hypervisor(), sim::microseconds(4));
}

TEST_F(CpuFixture, SameDomainRewakeIsFree)
{
    CpuParams params = plainParams();
    params.domainSwitchCost = sim::microseconds(2);
    SimCpu cpu(ctx, "cpu", params);
    Vcpu &a = cpu.createVcpu(1, "a");
    a.post(Bucket::kOs, sim::microseconds(1));
    ctx.events().schedule(sim::microseconds(50), [&] {
        a.post(Bucket::kOs, sim::microseconds(1));
    });
    ctx.events().run();
    // Only the initial idle->a transition pays the switch.
    EXPECT_EQ(cpu.domainSwitches(), 1u);
}

TEST_F(CpuFixture, ColdCacheSurchargeOnFirstTask)
{
    CpuParams params = plainParams();
    params.cacheColdSurcharge = sim::microseconds(3);
    SimCpu cpu(ctx, "cpu", params);
    Vcpu &a = cpu.createVcpu(1, "a");
    a.post(Bucket::kOs, sim::microseconds(1));
    a.post(Bucket::kOs, sim::microseconds(1));
    ctx.events().run();
    // First task pays 1+3, second only 1.
    EXPECT_EQ(cpu.profile().domainTime(1, Bucket::kOs),
              sim::microseconds(5));
}

TEST_F(CpuFixture, BoostedWakePreemptsAtTaskBoundary)
{
    SimCpu cpu(ctx, "cpu", plainParams());
    Vcpu &busy = cpu.createVcpu(1, "busy");
    Vcpu &irq = cpu.createVcpu(2, "irq");
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        busy.post(Bucket::kUser, sim::microseconds(10),
                  [&, i] { order.push_back(i); });
    // Arrives while task 0 runs; must run before tasks 1-3.
    ctx.events().schedule(sim::microseconds(5), [&] {
        irq.postIrq(Bucket::kOs, sim::microseconds(1),
                    [&] { order.push_back(100); });
    });
    ctx.events().run();
    ASSERT_EQ(order.size(), 5u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 100);
}

TEST_F(CpuFixture, IrqTasksRunBeforeNormalTasksInVcpu)
{
    SimCpu cpu(ctx, "cpu", plainParams());
    Vcpu &v = cpu.createVcpu(1, "v");
    std::vector<int> order;
    v.post(Bucket::kUser, sim::microseconds(1), [&] {
        // While this runs, both a normal and an irq task are queued.
        v.post(Bucket::kUser, 0, [&] { order.push_back(1); });
        v.postIrq(Bucket::kOs, 0, [&] { order.push_back(2); });
    });
    ctx.events().run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 2); // irq context first
}

TEST_F(CpuFixture, SliceRotationBetweenBusyVcpus)
{
    CpuParams params = plainParams();
    params.slice = sim::microseconds(20);
    SimCpu cpu(ctx, "cpu", params);
    Vcpu &a = cpu.createVcpu(1, "a");
    Vcpu &b = cpu.createVcpu(2, "b");
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) {
        a.post(Bucket::kUser, sim::microseconds(10),
               [&] { order.push_back(1); });
        b.post(Bucket::kUser, sim::microseconds(10),
               [&] { order.push_back(2); });
    }
    ctx.events().run();
    // 'a' cannot run all four tasks before 'b' gets the CPU.
    ASSERT_EQ(order.size(), 8u);
    bool b_before_last_a = false;
    bool seen_b = false;
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (order[i] == 2)
            seen_b = true;
        if (order[i] == 1 && seen_b)
            b_before_last_a = true;
    }
    EXPECT_TRUE(b_before_last_a);
}

TEST_F(CpuFixture, ResetAccountingStartsFresh)
{
    SimCpu cpu(ctx, "cpu", plainParams());
    Vcpu &v = cpu.createVcpu(1, "v");
    v.post(Bucket::kOs, sim::microseconds(5));
    ctx.events().run();
    cpu.resetAccounting();
    EXPECT_EQ(cpu.profile().total(), 0);
    EXPECT_EQ(cpu.elapsed(), 0);
    v.post(Bucket::kOs, sim::microseconds(2));
    ctx.events().run();
    EXPECT_EQ(cpu.profile().domainTime(1, Bucket::kOs),
              sim::microseconds(2));
}

TEST_F(CpuFixture, ContentionMultiplierScalesWithActiveGuests)
{
    CpuParams params = plainParams();
    params.cacheContentionAlpha = 1.0;
    params.contentionWindow = sim::milliseconds(30);
    SimCpu cpu(ctx, "cpu", params);
    Vcpu &a = cpu.createVcpu(1, "a");
    Vcpu &b = cpu.createVcpu(2, "b");
    a.setContends(true);
    b.setContends(true);

    // Single active guest: no inflation.
    a.post(Bucket::kOs, sim::microseconds(10));
    ctx.events().run();
    EXPECT_EQ(cpu.profile().domainTime(1, Bucket::kOs),
              sim::microseconds(10));

    // Two active guests: a's task is dispatched before b posts (n = 1,
    // no inflation); b's task then runs with both active, costing
    // 1 + 1*(1 - 1/2) = 1.5x.
    cpu.resetAccounting();
    a.post(Bucket::kOs, sim::microseconds(10));
    b.post(Bucket::kOs, sim::microseconds(10));
    ctx.events().run();
    EXPECT_EQ(cpu.profile().domainTime(1, Bucket::kOs),
              sim::microseconds(10));
    EXPECT_EQ(cpu.profile().domainTime(2, Bucket::kOs),
              sim::microseconds(15));
}

TEST_F(CpuFixture, NonContendingVcpusDoNotInflate)
{
    CpuParams params = plainParams();
    params.cacheContentionAlpha = 1.0;
    SimCpu cpu(ctx, "cpu", params);
    Vcpu &guest = cpu.createVcpu(1, "g");
    Vcpu &driver = cpu.createVcpu(2, "d");
    guest.setContends(true);
    driver.setContends(false);
    guest.post(Bucket::kOs, sim::microseconds(10));
    driver.post(Bucket::kOs, sim::microseconds(10));
    ctx.events().run();
    // n = 1 contending guest, so no inflation anywhere.
    EXPECT_EQ(cpu.profile().allDomainTime(), sim::microseconds(20));
}

TEST_F(CpuFixture, ExecProfileAggregates)
{
    ExecProfile p;
    p.chargeDomain(1, Bucket::kOs, 100);
    p.chargeDomain(1, Bucket::kUser, 50);
    p.chargeDomain(2, Bucket::kOs, 25);
    p.chargeHypervisor(10);
    p.chargeIdle(15);
    EXPECT_EQ(p.allDomainTime(), 175);
    EXPECT_EQ(p.total(), 200);
    EXPECT_EQ(p.domainTime(1, Bucket::kUser), 50);
    EXPECT_EQ(p.domainTime(3, Bucket::kOs), 0);
    p.reset();
    EXPECT_EQ(p.total(), 0);
}

TEST_F(CpuFixture, TasksRunCountsAndHvItems)
{
    SimCpu cpu(ctx, "cpu", plainParams());
    Vcpu &v = cpu.createVcpu(1, "v");
    v.post(Bucket::kOs, 1);
    v.post(Bucket::kOs, 1);
    cpu.runHypervisor(1);
    ctx.events().run();
    EXPECT_EQ(cpu.tasksRun(), 2u);
    EXPECT_EQ(cpu.hvItemsRun(), 1u);
}

TEST_F(CpuFixture, ZeroCostTasksComplete)
{
    SimCpu cpu(ctx, "cpu", plainParams());
    Vcpu &v = cpu.createVcpu(1, "v");
    int count = 0;
    for (int i = 0; i < 100; ++i)
        v.post(Bucket::kOs, 0, [&] { ++count; });
    ctx.events().run();
    EXPECT_EQ(count, 100);
}
